"""Shared helpers for the figure-reproduction benchmark harness.

Every ``bench_fig*.py`` regenerates one table/figure of the paper at the
``model`` (closed-form) and ``sim`` (fringe-aware loop simulator) fidelity
tiers priced with the paper's machine constants, writes the series to
``benchmarks/results/*.csv``, and wall-clock-benchmarks a reduced-scale
real execution so pytest-benchmark tracks engine performance over time.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_wisdom(tmp_path_factory):
    """Benchmarks must not read or write the developer's real wisdom store."""
    from repro.tune import set_default_store

    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_WISDOM",
              str(tmp_path_factory.mktemp("wisdom") / "wisdom.json"))
    set_default_store(None)
    yield
    mp.undo()
    set_default_store(None)


@pytest.fixture(scope="session")
def paper_machine():
    from repro.model.machines import ivy_bridge_e5_2680_v2

    return ivy_bridge_e5_2680_v2(1)


@pytest.fixture(scope="session")
def paper_machine_10core():
    from repro.model.machines import ivy_bridge_e5_2680_v2

    return ivy_bridge_e5_2680_v2(10)


@pytest.fixture
def rng():
    return np.random.default_rng(2017)


def print_and_save(name: str, series_list, xlabel: str = "shape") -> None:
    """Render a series table + ASCII chart to stdout; persist as CSV."""
    from repro.bench.plotting import ascii_chart
    from repro.bench.reporting import results_dir, series_table, write_csv

    print()
    print(f"=== {name} ===")
    print(series_table(series_list, xlabel=xlabel))
    # Chart only a readable handful of curves (baseline + first few).
    print(ascii_chart(series_list[:6], title=name))
    out = write_csv(results_dir() / f"{name}.csv", series_list)
    print(f"[saved {out}]")
