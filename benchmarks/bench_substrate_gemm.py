"""Substrate sanity benchmarks: the simulated-BLIS GEMM itself.

Wall-clock pytest-benchmark of the packed five-loop engine against plain
``numpy.matmul``, plus counter-vs-model consistency at paper blocking.
These quantify the Python-substrate overhead documented in DESIGN.md
substitution #2 (we preserve structure and traffic accounting, not
absolute speed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blis.gemm import packed_gemm
from repro.blis.params import IVY_BRIDGE_BLOCKING, BlockingParams
from repro.blis.simulator import simulate_gemm
from repro.model.machines import ivy_bridge_e5_2680_v2
from repro.model.terms import gemm_term_table

N = 768


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(7)
    return rng.standard_normal((N, N)), rng.standard_normal((N, N))


def test_numpy_matmul_baseline(benchmark, operands):
    A, B = operands
    C = benchmark(lambda: A @ B)
    assert C.shape == (N, N)


def test_packed_gemm_slab(benchmark, operands):
    A, B = operands

    def run():
        C = np.zeros((N, N))
        packed_gemm([(1.0, A)], [(1.0, B)], [(1.0, C)], IVY_BRIDGE_BLOCKING)
        return C

    C = benchmark(run)
    assert np.abs(C - A @ B).max() < 1e-9


def test_packed_gemm_micro_small(benchmark, operands):
    # Micro-tile loop is the faithful-but-slow mode: bench at 1/4 the size.
    A = operands[0][:192, :192]
    B = operands[1][:192, :192]
    params = BlockingParams(mc=96, kc=96, nc=192, mr=8, nr=4)

    def run():
        C = np.zeros((192, 192))
        packed_gemm([(1.0, A)], [(1.0, B)], [(1.0, C)], params, mode="micro")
        return C

    C = benchmark(run)
    assert np.abs(C - A @ B).max() < 1e-9


def test_simulator_matches_model_on_divisible_sizes(benchmark):
    """Closed-form model and loop simulator agree when nothing is ragged."""
    mach = ivy_bridge_e5_2680_v2(1)

    def both():
        out = []
        for (m, k, n) in [(4096, 4096, 4096), (8192, 1024, 8192)]:
            sim = simulate_gemm(m, k, n, mach.blocking)
            tab = gemm_term_table(m, k, n, mach)
            t_sim_mem = sim.dram_elements(mach.lam) * mach.tau_b
            t_sim_arith = sim.total_flops * mach.tau_a
            out.append((t_sim_arith, t_sim_mem, tab))
        return out

    for t_sim_arith, t_sim_mem, tab in benchmark.pedantic(both, rounds=1, iterations=1):
        # Memory traffic is identical term by term.
        assert t_sim_mem == pytest.approx(tab.memory_time, rel=1e-12)
        # Arithmetic differs only by the engine's explicit C accumulation
        # per k_C pass (BLIS hides it in register accumulation): < 1%.
        assert t_sim_arith == pytest.approx(tab.arithmetic_time, rel=0.01)
        assert t_sim_arith >= tab.arithmetic_time
