"""Fig. 10 reproduction: 10-core performance, ours vs the reference [1].

The paper's top row is its generated implementations (best variant per
point); the bottom row approximates [1], which is structurally the Naive
variant (explicit M_r and operand-sum temporaries).  Bandwidth contention
at 10 cores flattens all curves toward the memory roofline; our analog
prices the same counters with the shared-socket machine config.
"""

from __future__ import annotations

import pytest

from conftest import print_and_save
from repro.algorithms.catalog import fig2_family
from repro.bench.runner import run_series
from repro.bench.workloads import (
    fig7_fixed_k_sweep,
    fig7_rank_k_sweep,
    fig7_square_sweep,
)

SWEEPS = {
    "square": fig7_square_sweep,
    "rank_k": fig7_rank_k_sweep,
    "fixed_k": fig7_fixed_k_sweep,
}


def build(machine, sweep, variant):
    """variant='best' mirrors the paper's 'best of our generated code'."""
    series = [run_series(sweep, None, 1, "abc", machine, tier="sim", label="BLIS")]
    for entry in fig2_family():
        label = "<%d,%d,%d>" % entry.dims
        if variant != "best":
            series.append(
                run_series(sweep, entry.algorithm, 1, variant, machine,
                           tier="sim", label=label)
            )
            continue
        per_variant = [
            run_series(sweep, entry.algorithm, 1, v, machine, tier="sim", label=label)
            for v in ("naive", "ab", "abc")
        ]
        best = per_variant[0]
        for s in per_variant[1:]:
            for i, p in enumerate(s.points):
                if p.time < best.points[i].time:
                    best.points[i] = p
        series.append(best)
    return series


@pytest.mark.parametrize("regime", list(SWEEPS))
def test_fig10_ours_vs_reference(paper_machine_10core, benchmark, regime):
    sweep = SWEEPS[regime]()[::2]
    ours = benchmark.pedantic(
        build, args=(paper_machine_10core, sweep, "best"), rounds=1, iterations=1
    )
    reference = build(paper_machine_10core, sweep, "naive")
    print_and_save(f"fig10_{regime}_ours", ours)
    print_and_save(f"fig10_{regime}_reference", reference)

    strassen_ours = ours[1].gflops()
    strassen_ref = reference[1].gflops()
    gemm = ours[0].gflops()

    if regime in ("rank_k", "fixed_k"):
        # Paper §5.3: "ours" (best generated variant per point) beats the
        # reference-style Naive implementation everywhere, strictly so in
        # the genuinely rank-k regime where the fused ABC variant shines.
        for (mm, kk, nn), o, r in zip(
            ours[1].shapes(), strassen_ours, strassen_ref
        ):
            assert o >= r * (1 - 1e-9), (mm, kk, nn)
            if kk <= 2048:
                assert o > r * 1.02, (mm, kk, nn)
        # And beat multithreaded GEMM at the large end.
        assert strassen_ours[-1] > gemm[-1]

    if regime == "square":
        # At large square sizes the gap narrows (temporaries amortize).
        ratio_small = strassen_ours[0] / strassen_ref[0]
        ratio_big = strassen_ours[-1] / strassen_ref[-1]
        assert ratio_big < ratio_small


def test_fig10_bandwidth_ceiling(paper_machine_10core, benchmark):
    """All 10-core curves sit below the 248 GFLOPS peak; GEMM well below it
    at rank-k shapes (memory-bound), matching the paper's flattened plots."""

    def measure():
        small_k = run_series(
            [(14400, 1024, 14400)], None, 1, "abc", paper_machine_10core, tier="sim"
        )
        square = run_series(
            [(12288, 12288, 12288)], None, 1, "abc", paper_machine_10core, tier="sim"
        )
        return small_k.gflops()[0], square.gflops()[0]

    g_small, g_square = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert g_small < g_square < 248.0


def test_fig10_modeled_vs_measured_scaling(benchmark):
    """Modeled and measured strong scaling side by side on this machine.

    The modeled curve is the paper's machine model; the measured curves
    are the real task-graph runtime (:mod:`repro.core.runtime`) executing
    the same configuration at each worker count under both worker modes —
    the shared thread pool and the GIL-free shared-memory process runtime
    (:mod:`repro.core.procpool`).  On shared 1-2 core CI the measured
    curves carry little signal, so the assertion is only that neither
    worker mode catastrophically degrades; run
    ``benchmarks/bench_parallel_runtime.py`` and
    ``benchmarks/bench_process_runtime.py`` on a >= 4-core box for the
    2x / 1.5x acceptance bars.
    """
    import os

    from repro.core.executor import resolve_levels
    from repro.core.parallel import measured_scaling_curve, scaling_curve
    from repro.core.procpool import shutdown_process_pools

    m = k = n = 768
    threads = tuple(t for t in (1, 2, 4) if t <= (os.cpu_count() or 1)) or (1,)

    measured = benchmark.pedantic(
        measured_scaling_curve, args=(m, k, n),
        kwargs=dict(algorithm="strassen", levels=1, variant="abc",
                    threads_list=threads, repeats=2),
        rounds=1, iterations=1,
    )
    try:
        measured_proc = measured_scaling_curve(
            m, k, n, algorithm="strassen", levels=1, variant="abc",
            threads_list=threads, repeats=2, workers="processes",
        )
    finally:
        shutdown_process_pools()
    modeled = {
        p.cores: p
        for p in scaling_curve(m, k, n, resolve_levels("strassen", 1), "abc",
                               max_cores=max(threads))
    }
    proc_by_cores = {p.cores: p for p in measured_proc}
    print(f"\n{'workers':>7} {'threads s':>10} {'procs s':>9} "
          f"{'thr spdup':>10} {'proc spdup':>11} {'model spdup':>12}")
    for p in measured:
        mp = modeled.get(p.cores)
        pp = proc_by_cores.get(p.cores)
        print(f"{p.cores:7d} {p.time:10.4f} "
              f"{pp.time if pp else float('nan'):9.4f} {p.speedup:9.2f}x "
              f"{pp.speedup if pp else 1.0:10.2f}x "
              f"{mp.speedup if mp else 1.0:11.2f}x")
    assert measured[0].speedup == 1.0
    # Neither worker mode may catastrophically degrade the runtime.
    assert all(p.time < measured[0].time * 3.0 for p in measured)
    assert all(p.time < measured_proc[0].time * 3.0 for p in measured_proc)
