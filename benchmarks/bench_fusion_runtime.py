"""Fusion-runtime benchmark: staged vs streaming-fused pipelines.

The tentpole acceptance bench for the variant-aware runtime
(:mod:`repro.core.runtime`): the same compiled plans are executed through
the **staged** lowering (all R products' ``S``/``T``/``M`` slabs plus the
scatter staging materialized — the reference-framework memory behavior)
and the **fused** lowering (per-worker group-streamed product buffers,
immediate C scatter), across square, skewed and batched shapes at one and
— where the cores exist — N threads.  Two claims are regression-tracked:

* **memory** — the fused pipeline's measured peak workspace bytes (from
  the arena high-water meter on the execution report) are strictly below
  the staged pipeline's on the 2-level 1024^3 problem and on at least two
  shapes overall (deterministic: byte counts, not wall-clock);
* **speed** — summed across the sweep, fused is no slower than staged
  (within a 10% noise margin for shared machines; typical measured ratio
  is ~1.0x with ~3.5x less workspace).

Run standalone (``python benchmarks/bench_fusion_runtime.py``) for a
table plus machine-readable ``benchmarks/results/
BENCH_fusion_runtime.json`` telemetry, or through pytest for the
regression-tracked assertions.
"""

from __future__ import annotations

import os
import time

import numpy as np

#: (shape, algorithm spec, levels, batch) sweep points.  Sizes are chosen
#: so the staged slabs genuinely outgrow the caches (the regime the fused
#: pipeline exists for); the 1536^3 point is past the staged pipeline's
#: ``vector_cap`` — there staged legally falls back to its serial
#: per-step loop while fused stays on the task graph; the batched point
#: exercises the chunked 3-D path.
SHAPES = (
    ((1024, 1024, 1024), "strassen", 2, None),
    ((1536, 1536, 1536), "strassen", 2, None),
    ((1536, 512, 1536), "<3,2,3>@1,strassen@1", 1, None),
    ((128, 128, 128), "strassen", 1, 64),
)
REPEATS = 3
#: Wall-clock tolerance for the "no slower overall" acceptance: shared
#: machines are noisy and the two pipelines are designed to be at parity.
SPEED_MARGIN = 1.10


def _threads_here(limit: int | None = None) -> tuple[int, ...]:
    """Benchmark thread counts, never exceeding this host's cores."""
    avail = limit or os.cpu_count() or 1
    return (1, 2) if avail >= 2 else (1,)


def _operands(shape, batch, dtype=np.float64, seed=2017):
    m, k, n = shape
    rng = np.random.default_rng(seed)
    lead = (batch,) if batch else ()
    A = rng.standard_normal(lead + (m, k)).astype(dtype, copy=False)
    B = rng.standard_normal(lead + (k, n)).astype(dtype, copy=False)
    C = np.zeros(lead + (m, n), dtype=dtype)
    return A, B, C


def measure_point(shape, spec, levels, batch, threads=1, repeats=REPEATS):
    """Interleaved best-of-``repeats`` timings + peak bytes for both modes.

    Staged and fused runs alternate so slow drift on a shared machine
    hits both pipelines equally.
    """
    from repro.core import compile as plancache
    from repro.core import runtime

    A, B, C = _operands(shape, batch)
    plans = {
        mode: plancache.compile(shape, spec, levels=levels, fusion=mode)
        for mode in ("staged", "fused")
    }
    peaks: dict[str, int] = {}
    paths: dict[str, str] = {}
    for mode, cplan in plans.items():  # warm: compile, arena, pools
        runtime.execute_plan(cplan, A, B, C, threads=threads)
        report = runtime.last_report()
        peaks[mode] = report.peak_workspace_bytes
        paths[mode] = report.core_path
    times: dict[str, float] = {mode: float("inf") for mode in plans}
    for _ in range(repeats):
        for mode, cplan in plans.items():
            t0 = time.perf_counter()
            runtime.execute_plan(cplan, A, B, C, threads=threads)
            times[mode] = min(times[mode], time.perf_counter() - t0)
    return times, peaks, paths


def run_sweep(threads_list=None):
    """Measure every (shape, threads) point; returns a list of row dicts."""
    rows = []
    for threads in threads_list or _threads_here():
        for shape, spec, levels, batch in SHAPES:
            times, peaks, paths = measure_point(
                shape, spec, levels, batch, threads
            )
            rows.append({
                "shape": list(shape),
                "algorithm": f"{spec}-L{levels}",
                "batch": batch or 1,
                "threads": threads,
                "staged_ms": times["staged"] * 1e3,
                "fused_ms": times["fused"] * 1e3,
                "staged_peak_bytes": peaks["staged"],
                "fused_peak_bytes": peaks["fused"],
                "staged_core_path": paths["staged"],
                "fused_core_path": paths["fused"],
                "speed_ratio": times["staged"] / times["fused"],
            })
    return rows


# ---------------------------------------------------------------------- #
# pytest mode
# ---------------------------------------------------------------------- #
def test_fused_peak_below_staged_at_1024_cubed_two_level():
    """Acceptance: fused ABC peak workspace < staged on 2-level 1024^3.

    Deterministic (byte counts from the arena high-water meter, no
    wall-clock), and checked against the performance model's workspace
    twin so model and runtime agree on the memory win.
    """
    from repro.core.spec import resolve_levels
    from repro.model.perfmodel import predict_workspace_bytes

    times, peaks, _ = measure_point((1024, 1024, 1024), "strassen", 2, None,
                                    threads=1, repeats=1)
    assert peaks["fused"] < peaks["staged"], peaks
    ml = resolve_levels("strassen", 2)
    for mode in ("staged", "fused"):
        predicted = predict_workspace_bytes(1024, 1024, 1024, ml, mode)
        assert peaks[mode] == predicted, (mode, peaks[mode], predicted)
    # The headline: >3x less live workspace for the same multiply.
    assert peaks["staged"] > 3 * peaks["fused"]


def test_fused_no_slower_overall_and_lower_peak_on_two_shapes():
    """Acceptance: summed over the sweep, fused is no slower than staged
    (10% noise margin), and its peak workspace is strictly lower on at
    least two shapes."""
    rows = run_sweep(threads_list=(1,))
    total_staged = sum(r["staged_ms"] for r in rows)
    total_fused = sum(r["fused_ms"] for r in rows)
    assert total_fused <= total_staged * SPEED_MARGIN, (
        f"fused {total_fused:.1f}ms vs staged {total_staged:.1f}ms "
        f"(> {SPEED_MARGIN:.0%} margin)"
    )
    lower = [r for r in rows if r["fused_peak_bytes"] < r["staged_peak_bytes"]]
    assert len(lower) >= 2, [
        (r["shape"], r["staged_peak_bytes"], r["fused_peak_bytes"])
        for r in rows
    ]


def test_fused_exact_across_sweep_shapes():
    """Both lowerings produce the numpy-exact product on every sweep shape."""
    from repro.core import compile as plancache
    from repro.core import runtime

    for shape, spec, levels, batch in SHAPES:
        small = tuple(max(d // 8, 4) for d in shape)  # scaled-down twin
        A, B, C = _operands(small, batch and max(batch // 8, 2))
        ref = A @ B
        for mode in ("staged", "fused"):
            cplan = plancache.compile(small, spec, levels=levels, fusion=mode)
            C[...] = 0.0
            runtime.execute_plan(cplan, A, B, C)
            assert np.abs(C - ref).max() < 1e-8, (small, mode)


# ---------------------------------------------------------------------- #
# standalone mode
# ---------------------------------------------------------------------- #
def main() -> None:
    from repro.bench.reporting import write_bench_json

    print(f"fusion-runtime benchmark (host has {os.cpu_count()} cores)")
    print(f"{'shape':>18} {'algorithm':>22} {'t':>2} "
          f"{'staged ms':>10} {'fused ms':>9} {'ratio':>6} "
          f"{'staged MiB':>11} {'fused MiB':>10}")
    rows = run_sweep()
    for r in rows:
        shape = "x".join(str(d) for d in r["shape"])
        if r["batch"] > 1:
            shape += f"(x{r['batch']})"
        print(f"{shape:>18} {r['algorithm']:>22} {r['threads']:>2} "
              f"{r['staged_ms']:10.1f} {r['fused_ms']:9.1f} "
              f"{r['speed_ratio']:5.2f}x "
              f"{r['staged_peak_bytes'] / 2**20:11.1f} "
              f"{r['fused_peak_bytes'] / 2**20:10.1f}")
    total_staged = sum(r["staged_ms"] for r in rows)
    total_fused = sum(r["fused_ms"] for r in rows)
    print(f"\ntotal: staged {total_staged:.1f}ms, fused {total_fused:.1f}ms "
          f"({total_staged / total_fused:.2f}x); fused peak workspace is "
          f"lower on "
          f"{sum(r['fused_peak_bytes'] < r['staged_peak_bytes'] for r in rows)}"
          f"/{len(rows)} points")
    out = write_bench_json("fusion_runtime", {
        "points": rows,
        "total_staged_ms": total_staged,
        "total_fused_ms": total_fused,
    })
    print(f"[saved {out}]")


if __name__ == "__main__":
    main()
