"""Ablation: what each fusion stage of the generator buys (DESIGN.md §5).

Naive -> AB ablates packing-fused operand sums; AB -> ABC ablates the
kernel-fused multi-destination C update.  Measured as modeled DRAM traffic
per classical flop and as wall-clock of the blocked engine at reduced
scale, in the regime each fusion targets (rank-k updates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blis.simulator import simulate_fmm
from repro.core.executor import BlockedEngine, resolve_levels
from repro.model.machines import ivy_bridge_e5_2680_v2

MACH = ivy_bridge_e5_2680_v2(1)


def traffic_per_flop(variant: str, m=14400, k=1024, n=14400) -> float:
    ml = resolve_levels("strassen", 1)
    c = simulate_fmm(m, k, n, ml, variant, MACH.blocking)
    return c.dram_elements(MACH.lam) / (2.0 * m * k * n)


def test_fusion_reduces_traffic_rank_k(benchmark):
    """Each fusion strictly reduces DRAM traffic in the rank-k regime."""
    vals = benchmark.pedantic(
        lambda: {v: traffic_per_flop(v) for v in ("naive", "ab", "abc")},
        rounds=1, iterations=1,
    )
    print("\nDRAM elements per classical flop (k=1024 rank-k):", vals)
    assert vals["ab"] < vals["naive"]
    assert vals["abc"] < vals["ab"]


def test_fusion_tradeoff_large_square(benchmark):
    """For large square problems ABC's extra C streams cost more than the
    M_r buffer it avoids — the §4.3 crossover, as an ablation."""
    vals = benchmark.pedantic(
        lambda: {
            v: traffic_per_flop(v, m=12000, k=12000, n=12000)
            for v in ("ab", "abc")
        },
        rounds=1, iterations=1,
    )
    assert vals["ab"] < vals["abc"]


@pytest.mark.parametrize("variant", ["naive", "ab", "abc"])
def test_wallclock_variants(benchmark, variant):
    """Blocked-engine wall-clock of the three variants, rank-k shape."""
    rng = np.random.default_rng(3)
    m, k, n = 720, 256, 720
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))
    ml = resolve_levels("strassen", 1)

    def run():
        C = np.zeros((m, n))
        BlockedEngine(variant=variant).multiply(A, B, C, ml)
        return C

    C = benchmark(run)
    assert np.abs(C - A @ B).max() < 1e-9


def test_slab_vs_micro_overhead(benchmark):
    """Ablate macro-kernel granularity: the slab mode trades loop fidelity
    for Python-overhead reduction; both move identical traffic."""
    from repro.blis.counters import OpCounters
    from repro.blis.gemm import packed_gemm
    from repro.blis.params import BlockingParams

    rng = np.random.default_rng(4)
    A = rng.standard_normal((192, 192))
    B = rng.standard_normal((192, 192))
    params = BlockingParams(mc=48, kc=48, nc=96, mr=8, nr=4)

    def run():
        out = {}
        for mode in ("slab", "micro"):
            C = np.zeros((192, 192))
            cnt = OpCounters()
            packed_gemm([(1.0, A)], [(1.0, B)], [(1.0, C)], params, cnt, mode=mode)
            out[mode] = cnt
        return out

    counters = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counters["slab"].as_dict() == counters["micro"].as_dict()
