"""Serving benchmark: coalesced batching vs naive per-request dispatch.

The acceptance bench for the serving layer (:mod:`repro.serve`): the
same small-matrix workload — the regime services actually see, where
per-call overhead rivals the arithmetic — is pushed through a
:class:`~repro.serve.MultiplyService` twice.  Once with coalescing on
(the default batch window and max-batch), and once with
``max_batch=1``, which is exactly naive per-request dispatch through
the identical queue/scheduler machinery, so the ratio isolates what
batching buys rather than penalizing the baseline with a different code
path.  Coalesced throughput must reach **>= 1.3x** the naive dispatch
throughput; the bitwise invariant (batch path == direct ``multiply``)
is asserted on every measured run, not just in the test suite.

Run standalone (``python benchmarks/bench_serve.py``) for a table plus
a machine-readable ``benchmarks/results/BENCH_serve.json`` record
(per-shape throughputs, speedup, coalesce ratios), or through pytest
for the regression-tracked assertions — the wall-clock 1.3x bar runs in
the pytest mode locally; CI keeps the standalone report-only run
(shared runners are too noisy for timing gates).
"""

from __future__ import annotations

import threading
import time

import numpy as np

#: Small shapes: the service's home turf, where coalescing pays.
SHAPES = (
    (48, 48, 48),
    (64, 64, 64),
)
ALGORITHM = "strassen"
LEVELS = 1
JOBS = 64
SUBMITTERS = 4

#: Acceptance bar: coalesced throughput vs naive per-request dispatch.
SPEEDUP_BAR = 1.3


def _run_service(A, B, *, max_batch, jobs=JOBS, submitters=SUBMITTERS):
    """Push ``jobs`` submissions through one service; return
    ``(elapsed_s, results, stats)``."""
    from repro.serve import MultiplyService

    svc = MultiplyService(max_batch=max_batch)
    results = [None] * jobs
    try:
        # Warm the plan cache and the scheduler outside the timed window.
        svc.submit(A, B, algorithm=ALGORITHM,
                   levels=LEVELS).result(timeout=60.0)

        def submit_range(lo, hi):
            for i in range(lo, hi):
                results[i] = svc.submit(A, B, algorithm=ALGORITHM,
                                        levels=LEVELS)

        per = jobs // submitters
        bounds = [(t * per, (t + 1) * per if t < submitters - 1 else jobs)
                  for t in range(submitters)]
        t0 = time.perf_counter()
        threads = [threading.Thread(target=submit_range, args=b)
                   for b in bounds]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        out = [h.result(timeout=120.0) for h in results]
        elapsed = time.perf_counter() - t0
        stats = svc.stats()
    finally:
        svc.shutdown(timeout=120.0)
    return elapsed, out, stats


def measure(shapes=SHAPES, jobs=JOBS, repeats=3):
    """Per-shape dict rows: coalesced vs per-request dispatch throughput."""
    from repro.core.executor import multiply

    rows = []
    for m, k, n in shapes:
        rng = np.random.default_rng(2017)
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        ref = multiply(A, B, algorithm=ALGORITHM, levels=LEVELS)
        best = {}
        for label, max_batch in (("coalesced", None), ("naive", 1)):
            best_t, stats = float("inf"), None
            for _ in range(repeats):
                elapsed, out, st = _run_service(A, B, max_batch=max_batch,
                                                jobs=jobs)
                # The invariant rides along on every measured run.
                for C in out:
                    assert np.array_equal(C, ref), (
                        f"{label} dispatch diverged from direct multiply "
                        f"on {m}x{k}x{n}")
                if elapsed < best_t:
                    best_t, stats = elapsed, st
            best[label] = (best_t, stats)
        t_co, st_co = best["coalesced"]
        t_naive, st_naive = best["naive"]
        rows.append({
            "shape": [m, k, n],
            "algorithm": f"{ALGORITHM}-L{LEVELS}",
            "jobs": jobs,
            "submitters": SUBMITTERS,
            "coalesced_time_s": t_co,
            "naive_time_s": t_naive,
            "coalesced_jobs_per_s": jobs / t_co,
            "naive_jobs_per_s": jobs / t_naive,
            "speedup": t_naive / t_co,
            "coalesced_batches": st_co["batches"],
            "coalesce_ratio": st_co["coalesce_ratio"],
            "naive_batches": st_naive["batches"],
        })
    return rows


# ---------------------------------------------------------------------- #
# pytest mode
# ---------------------------------------------------------------------- #
def test_service_results_match_direct_multiply():
    """Deterministic part: the coalesced batch path is bitwise-faithful."""
    from repro.core.executor import multiply

    rng = np.random.default_rng(7)
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    _, out, stats = _run_service(A, B, max_batch=None, jobs=16,
                                 submitters=2)
    ref = multiply(A, B, algorithm=ALGORITHM, levels=LEVELS)
    assert all(np.array_equal(C, ref) for C in out)
    assert stats["errors"] == 0


def test_coalesced_throughput_acceptance():
    """Acceptance: coalescing >= 1.3x naive per-request dispatch."""
    rows = measure(repeats=3)
    print()
    for r in rows:
        print(f"{r['shape']}: coalesced {r['coalesced_jobs_per_s']:.0f} "
              f"jobs/s ({r['coalesce_ratio']:.1f} jobs/batch), naive "
              f"{r['naive_jobs_per_s']:.0f} jobs/s -> {r['speedup']:.2f}x")
    wins = sum(r["speedup"] >= SPEEDUP_BAR for r in rows)
    assert wins >= 1, (
        f"coalescing beat per-request dispatch >= {SPEEDUP_BAR}x on none "
        f"of {len(rows)} shapes: "
        + ", ".join(f"{r['shape']}={r['speedup']:.2f}x" for r in rows)
    )


# ---------------------------------------------------------------------- #
# standalone mode
# ---------------------------------------------------------------------- #
def main() -> None:
    from repro.bench.reporting import write_bench_json

    rows = measure()
    print(f"{'shape':>14} {'coalesced':>12} {'naive':>12} "
          f"{'speedup':>8} {'jobs/batch':>11}")
    for r in rows:
        shape = "x".join(str(s) for s in r["shape"])
        print(f"{shape:>14} {r['coalesced_jobs_per_s']:>9.0f}/s "
              f"{r['naive_jobs_per_s']:>9.0f}/s "
              f"{r['speedup']:>7.2f}x {r['coalesce_ratio']:>11.1f}")
    path = write_bench_json("serve", {
        "rows": rows,
        "speedup_bar": SPEEDUP_BAR,
        "bar_met": any(r["speedup"] >= SPEEDUP_BAR for r in rows),
    })
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
