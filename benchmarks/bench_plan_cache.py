"""Plan-cache benchmark: repeated small multiplies amortize compilation.

The compiled-plan refactor makes every multiply flow through
:func:`repro.core.compile.compile`; this benchmark quantifies what the LRU
cache buys on the serve-many-small-multiplies workload the ROADMAP targets:
repeated 96x96 Strassen multiplies with the plan cached vs. recompiled
every call (cache cleared between calls).

Run standalone (``python benchmarks/bench_plan_cache.py``) for a summary
table, or through pytest for the regression-tracked assertion that the
cached path is at least 2x the uncached throughput.
"""

from __future__ import annotations

import time

import numpy as np

N = 96
ITERS = 200
REPEATS = 3


def _operands(n=N):
    rng = np.random.default_rng(2017)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


def _time_multiply(A, B, levels: int, uncached: bool, iters: int = ITERS) -> float:
    """Best-of-REPEATS mean seconds per multiply call."""
    from repro.core import compile as plancache
    from repro.core.executor import multiply

    best = float("inf")
    for _ in range(REPEATS):
        plancache.plan_cache_clear()
        multiply(A, B, algorithm="strassen", levels=levels)  # warm-up/compile
        t0 = time.perf_counter()
        for _ in range(iters):
            if uncached:
                plancache.plan_cache_clear()
            multiply(A, B, algorithm="strassen", levels=levels)
        best = min(best, (time.perf_counter() - t0) / iters)
    return best


def measure(levels: int = 2):
    """Return ``(cached_s, uncached_s, ratio)`` for one configuration."""
    A, B = _operands()
    cached = _time_multiply(A, B, levels, uncached=False)
    uncached = _time_multiply(A, B, levels, uncached=True)
    return cached, uncached, uncached / cached


def test_plan_cache_speedup():
    """Acceptance: cached repeated 96x96 Strassen multiplies >= 2x uncached."""
    cached, uncached, ratio = measure(levels=2)
    print(
        f"\n96x96 strassen L2: cached {cached * 1e6:.0f} us/call, "
        f"uncached {uncached * 1e6:.0f} us/call -> {ratio:.2f}x"
    )
    assert ratio >= 2.0, (
        f"plan cache speedup {ratio:.2f}x below the 2x bar "
        f"(cached {cached:.2e}s, uncached {uncached:.2e}s)"
    )


def test_cache_hits_accumulate():
    """The repeated-multiply loop is served from the cache, not recompiled."""
    from repro.core import compile as plancache
    from repro.core.executor import multiply

    A, B = _operands()
    plancache.plan_cache_clear()
    for _ in range(10):
        multiply(A, B, algorithm="strassen", levels=2)
    info = plancache.plan_cache_info()
    assert info.misses == 1
    assert info.hits == 9


def main() -> None:
    from repro.bench.reporting import write_bench_json

    print(f"plan-cache benchmark: repeated {N}x{N} Strassen multiplies")
    print(f"{'config':<14} {'cached us':>10} {'uncached us':>12} {'speedup':>8}")
    rows = []
    for levels in (1, 2):
        cached, uncached, ratio = measure(levels)
        print(
            f"strassen L{levels:<4} {cached * 1e6:10.1f} "
            f"{uncached * 1e6:12.1f} {ratio:7.2f}x"
        )
        rows.append({
            "shape": [N, N, N],
            "algorithm": f"strassen-L{levels}",
            "threads": 1,
            "cached_us": cached * 1e6,
            "uncached_us": uncached * 1e6,
            "speedup": ratio,
        })
    # Batched amortization: one compiled plan + chunked vectorized passes
    # for the whole stack vs. one multiply() call per element.
    from repro.core.executor import multiply, multiply_batched

    rng = np.random.default_rng(7)
    print(f"\n{'batched config':<22} {'us/elem':>10} {'looped us':>10} {'speedup':>8}")
    for batch, size, levels in ((32, N, 2), (256, 32, 1)):
        A = rng.standard_normal((batch, size, size))
        B = rng.standard_normal((batch, size, size))
        multiply_batched(A, B, algorithm="strassen", levels=levels)  # warm
        t0 = time.perf_counter()
        multiply_batched(A, B, algorithm="strassen", levels=levels)
        t_batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        for i in range(batch):
            multiply(A[i], B[i], algorithm="strassen", levels=levels)
        t_looped = time.perf_counter() - t0
        label = f"{size}x{size} L{levels} x{batch}"
        print(
            f"{label:<22} {t_batched / batch * 1e6:10.1f} "
            f"{t_looped / batch * 1e6:10.1f} {t_looped / t_batched:7.2f}x"
        )
        rows.append({
            "shape": [size, size, size],
            "algorithm": f"strassen-L{levels}",
            "batch": batch,
            "batched_us_per_elem": t_batched / batch * 1e6,
            "looped_us_per_elem": t_looped / batch * 1e6,
            "speedup": t_looped / t_batched,
        })
    out = write_bench_json("plan_cache", {"points": rows})
    print(f"[saved {out}]")


if __name__ == "__main__":
    main()
