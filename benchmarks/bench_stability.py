"""Numerical-stability experiment (paper §1/§2.2 discussion, refs [8-10]).

Strassen-like algorithms are "not numerically unstable but less stable
than classical"; error grows with recursion depth.  This bench measures
max-norm forward error of the generated implementations against float128
ground truth across levels and algorithms — the experiment motivating the
paper's choice to use at most two levels and exclude APA algorithms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import multiply


def forward_errors(levels_list, algorithm="strassen", n=256, seed=11):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    ref = A @ B
    scale = np.abs(A).sum(axis=1).max() * np.abs(B).sum(axis=0).max()
    out = {}
    for lv in levels_list:
        C = multiply(A, B, algorithm=algorithm, levels=lv)
        out[lv] = float(np.abs(C - ref).max() / scale)
    return out


def test_error_grows_with_levels(benchmark):
    errs = benchmark.pedantic(
        forward_errors, args=([1, 2, 3],), rounds=1, iterations=1
    )
    print("\nStrassen relative forward error by level:", errs)
    assert errs[1] <= errs[2] * 1.5  # broad monotone trend
    assert errs[2] <= errs[3] * 1.5
    assert errs[3] < 1e-12  # still fully usable at fp64


@pytest.mark.parametrize("spec", ["strassen", (3, 2, 3), (4, 2, 2)])
def test_one_level_error_near_classical(benchmark, spec):
    """One-level FMM loses at most ~1 decimal digit vs classical GEMM."""
    rng = np.random.default_rng(5)
    n = 240
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    ref = A @ B

    def run():
        C = multiply(A, B, algorithm=spec, levels=1)
        return float(np.abs(C - ref).max())

    err = benchmark.pedantic(run, rounds=1, iterations=1)
    classical_err = float(
        np.abs((A.astype(np.float32) @ B.astype(np.float32)) - ref).max()
    )
    # fp64 FMM must be orders of magnitude better than fp32 classical.
    assert err < classical_err * 1e-3
