"""Fig. 2 reproduction: theoretical + practical speedups for all 23 shapes.

Regenerates the paper's table: per algorithm, the theoretical speedup
(m~k~n~/R per step) and the one-level practical speedup over GEMM at
Practical #1 (m=n=14400, k=480, rank-k update) and Practical #2
(m=n=14400, k=12000, near-square), on the modeled 1-core Ivy Bridge.
Practical speedups use the best variant per shape, as the paper reports
the best generated implementation.
"""

from __future__ import annotations

import pytest

from repro.algorithms.catalog import fig2_family
from repro.bench.paper_data import FIG2_ROWS, PRACTICAL1_SHAPE, PRACTICAL2_SHAPE
from repro.bench.reporting import format_table, results_dir, write_bench_json
from repro.blis.simulator import simulate_time
from repro.core.kronecker import MultiLevelFMM

VARIANTS = ("naive", "ab", "abc")


def best_speedup_pct(shape, machine, entry) -> tuple[float, str]:
    """Best simulated speedup (%) over GEMM across variants, one level."""
    m, k, n = shape
    t_gemm = simulate_time(m, k, n, None, "abc", machine)
    ml = MultiLevelFMM([entry.algorithm])
    best = -1e9
    best_var = "?"
    for var in VARIANTS:
        t = simulate_time(m, k, n, ml, var, machine)
        s = (t_gemm / t - 1.0) * 100.0
        if s > best:
            best, best_var = s, var
    return best, best_var


def build_rows(machine):
    rows = []
    paper = {r.dims: r for r in FIG2_ROWS}
    for entry in fig2_family():
        p = paper[entry.dims]
        th = (entry.algorithm.classical_multiplies / entry.achieved_rank - 1) * 100
        s1, v1 = best_speedup_pct(PRACTICAL1_SHAPE, machine, entry)
        s2, v2 = best_speedup_pct(PRACTICAL2_SHAPE, machine, entry)
        rows.append(
            [
                "<%d,%d,%d>" % entry.dims,
                str(p.rank),
                str(entry.achieved_rank),
                f"{p.theory_pct:5.1f}",
                f"{th:5.1f}",
                f"{p.ours_p1_pct:6.1f}",
                f"{s1:6.1f}/{v1}",
                f"{p.ours_p2_pct:6.1f}",
                f"{s2:6.1f}/{v2}",
            ]
        )
    return rows


def test_fig2_table(paper_machine, benchmark):
    rows = benchmark.pedantic(build_rows, args=(paper_machine,), rounds=1, iterations=1)
    table = format_table(
        [
            "shape", "R(paper)", "R(ours)", "theory%(paper)", "theory%(ours)",
            "p1%(paper)", "p1%(ours)", "p2%(paper)", "p2%(ours)",
        ],
        rows,
        title="Fig. 2: speedup over GEMM, one level, 1 core",
    )
    print()
    print(table)
    (results_dir() / "fig2_table.txt").write_text(table + "\n")
    write_bench_json("fig2_speedup_table", {
        "practical1_shape": list(PRACTICAL1_SHAPE),
        "practical2_shape": list(PRACTICAL2_SHAPE),
        "rows": [
            {
                "shape": row[0],
                "rank_paper": int(row[1]),
                "rank_ours": int(row[2]),
                "theory_pct_paper": float(row[3]),
                "theory_pct_ours": float(row[4]),
                "p1_pct_paper": float(row[5]),
                "p1_pct_ours": float(row[6].split("/")[0]),
                "p1_variant": row[6].split("/")[1],
                "p2_pct_paper": float(row[7]),
                "p2_pct_ours": float(row[8].split("/")[0]),
                "p2_variant": row[8].split("/")[1],
            }
            for row in rows
        ],
    })

    # Shape assertions: near-square speedups must be positive for every
    # exact-rank entry (the paper's p2 column is positive everywhere).
    paper = {r.dims: r for r in FIG2_ROWS}
    for entry, row in zip(fig2_family(), rows):
        ours_p2 = float(row[8].split("/")[0])
        if entry.status == "exact":
            assert ours_p2 > 0, entry.dims
        # Large-R shapes lose at rank-k updates in the paper too; don't
        # assert sign there, but near-square should track the paper within
        # a loose band for exact entries.
        if entry.status == "exact":
            assert abs(ours_p2 - paper[entry.dims].ours_p2_pct) < 12.0, entry.dims


@pytest.mark.parametrize("dims", [(2, 2, 2), (3, 2, 3), (4, 2, 2)])
def test_fig2_rank_k_regime_sign(paper_machine, benchmark, dims):
    # Low-rank shapes with modest nnz gain even at k=480 in the paper.
    entry = {e.dims: e for e in fig2_family()}[dims]
    s1, _ = benchmark.pedantic(
        best_speedup_pct,
        args=(PRACTICAL1_SHAPE, paper_machine, entry),
        rounds=1,
        iterations=1,
    )
    assert s1 > 0
