"""Rectangular/mixed-schedule benchmark: the right family member per shape.

The paper's headline claim is that the *family* beats any single
algorithm: skewed problems want base cases whose ``<m~,k~,n~>`` aspect
matches theirs.  This bench measures, on tall-skinny x wide problems,
the model-guided ``engine="auto"`` pick (which enumerates rectangular
and mixed schedules via ``hybrid_shapes_for``) against the pure-square
Strassen incumbent (best of 1 and 2 levels) and ``np.matmul``.

Acceptance (pytest mode): on at least one skewed shape auto selects a
non-square or mixed schedule, and that pick is no slower than the
pure-square incumbent.  Standalone mode prints the table and writes
``benchmarks/results/BENCH_rectangular.json``.
"""

from __future__ import annotations

import time

import numpy as np

#: Tall-skinny x wide (outer-product-flavored) shapes: m, n >> k, all
#: divisible by both the square and the <3,2,3>-family partitions.
SKEWED_SHAPES = ((1152, 384, 1152), (1536, 256, 1536), (2304, 256, 2304))

#: The pure-square incumbent schedules auto must not lose to.
SQUARE_INCUMBENTS = (("strassen", 1), ("strassen", 2))

_REPEATS = 5


def _best_time(m, k, n, algorithm, levels=1, repeats=_REPEATS) -> float:
    """Wall-clock of one config via the shared tune harness (GC-pinned).

    One group of ``repeats`` calls, min taken — best-case timing, robust
    to background noise on shared runners.
    """
    from repro.tune.measure import MeasureConfig, measure_candidate

    meas = measure_candidate(
        m, k, n, algorithm, levels=levels, variant="abc", engine="direct",
        config=MeasureConfig(warmup=1, repeats=1, inner=repeats),
    )
    return meas.time_s


def _auto_pick(m, k, n):
    """The model-guided configuration (cold model, no wisdom)."""
    from repro.core.selection import auto_config
    from repro.core.spec import Schedule

    algo, levels, variant, engine, threads, _backend = auto_config(m, k, n, tune="off")
    if algo == "classical":
        return "classical", "classical@1", levels
    sched = Schedule(tuple(tuple(s) for s in algo))
    return algo, sched.signature, levels


def _is_square_only(signature: str) -> bool:
    """True when every schedule atom is a square ``<d,d,d>`` (or classical)."""
    from repro.core.spec import spec_key

    for kind, val in spec_key(signature):
        if kind == "shape" and len(set(val)) == 1:
            continue
        if kind == "name" and val == "classical":
            continue
        return False
    return True


def measure(shapes=SKEWED_SHAPES, repeats=_REPEATS):
    """Per-shape rows: auto pick vs square incumbent vs np.matmul."""
    rows = []
    for (m, k, n) in shapes:
        algo, signature, levels = _auto_pick(m, k, n)
        t_auto = _best_time(m, k, n, algo, levels, repeats)
        t_square, square_label = min(
            (_best_time(m, k, n, a, lv, repeats), f"{a}@{lv}")
            for a, lv in SQUARE_INCUMBENTS
        )
        rng = np.random.default_rng(0)
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        A @ B
        t0 = time.perf_counter()
        A @ B
        t_np = time.perf_counter() - t0
        flops = 2.0 * m * k * n
        rows.append({
            "shape": [m, k, n],
            "auto_schedule": signature,
            "auto_time_s": t_auto,
            "auto_gflops": flops / t_auto / 1e9,
            "square_incumbent": square_label,
            "square_time_s": t_square,
            "square_gflops": flops / t_square / 1e9,
            "matmul_time_s": t_np,
            "speedup_vs_square": t_square / t_auto,
        })
    return rows


# ---------------------------------------------------------------------- #
# pytest mode
# ---------------------------------------------------------------------- #
def test_auto_selects_non_square_schedule_on_a_skewed_shape():
    """Acceptance: the selector leaves the square family for skewed shapes."""
    picks = {shape: _auto_pick(*shape)[1] for shape in SKEWED_SHAPES}
    assert any(not _is_square_only(sig) for sig in picks.values()), picks


def test_auto_pick_is_exact_on_skewed_shapes():
    from repro.core.executor import multiply

    rng = np.random.default_rng(3)
    m, k, n = 288, 96, 288  # small instance of the same skew class
    algo, signature, levels = _auto_pick(*SKEWED_SHAPES[0])
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))
    C = multiply(A, B, algorithm=algo, levels=levels)
    assert np.allclose(C, A @ B, atol=1e-8), signature


def test_rectangular_pick_no_slower_than_square_incumbent():
    """Acceptance: auto's (rectangular/mixed) pick does not lose to square."""
    wins = []
    for shape in SKEWED_SHAPES:
        algo, signature, levels = _auto_pick(*shape)
        if _is_square_only(signature):
            continue
        m, k, n = shape
        t_auto = _best_time(m, k, n, algo, levels)
        t_square = min(_best_time(m, k, n, a, lv)
                       for a, lv in SQUARE_INCUMBENTS)
        wins.append((shape, signature, t_auto, t_square))
    assert wins, "auto picked square schedules on every skewed shape"
    # No-slower with a wall-clock noise margin on at least one shape, and
    # never catastrophically slower anywhere.
    assert any(t_auto <= t_square * 1.05 for _, _, t_auto, t_square in wins), wins
    assert all(t_auto <= t_square * 1.5 for _, _, t_auto, t_square in wins), wins


# ---------------------------------------------------------------------- #
# standalone mode
# ---------------------------------------------------------------------- #
def main() -> None:
    from repro.bench.reporting import write_bench_json

    print(f"rectangular-schedule benchmark (min of {_REPEATS}):")
    print(f"{'shape':>16} {'auto schedule':>22} {'auto ms':>9} "
          f"{'square ms':>10} {'matmul ms':>10} {'vs square':>9}")
    rows = measure()
    for r in rows:
        m, k, n = r["shape"]
        print(f"{m:>5}x{k:>4}x{n:>5} {r['auto_schedule']:>22} "
              f"{r['auto_time_s'] * 1e3:9.1f} {r['square_time_s'] * 1e3:10.1f} "
              f"{r['matmul_time_s'] * 1e3:10.1f} "
              f"{r['speedup_vs_square']:8.2f}x")
    out = write_bench_json("rectangular", {"points": rows})
    print(f"[saved {out}]")


if __name__ == "__main__":
    main()
