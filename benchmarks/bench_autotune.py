"""Autotuned vs cold-model dispatch on the repeated-multiply workload.

The wisdom store exists for one reason: a serving process restarts, and
every restart used to pay the model's candidate enumeration again for
every problem class it dispatches.  This benchmark measures that directly.
The workload is the bench-suite's repeated-multiply serve pattern — a mix
of square, rank-k and outer-panel shapes, several ``multiply`` calls per
shape — executed per "process epoch": before each epoch the in-process
model cache is cleared and the wisdom store re-loaded from disk, exactly
the state a fresh process starts in.  ``tune="off"`` pays cold model
enumeration per shape per epoch; ``tune="readonly"`` pays one JSON read.

Run standalone for a table + ``BENCH_autotune.json``, or through pytest
for the acceptance assertion: tuned dispatch is no slower overall and
strictly faster on at least two shapes.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

#: One problem class per row: squares at three size bins, a rank-k
#: update and an outer-panel shape (distinct wisdom buckets).
SHAPES = [
    (64, 64, 64),
    (128, 128, 128),
    (256, 256, 256),
    (256, 32, 256),
    (96, 384, 96),
]
EPOCHS = 3          # simulated process restarts per shape
CALLS_PER_EPOCH = 4  # repeated multiplies after each restart


def _operands(shapes):
    rng = np.random.default_rng(2017)
    ops = {}
    for (m, k, n) in shapes:
        ops[(m, k, n)] = (rng.standard_normal((m, k)),
                          rng.standard_normal((k, n)))
    return ops


def _fresh_process_state(store) -> None:
    """Reset everything that does NOT survive a process restart — and
    re-load the one thing that does (the wisdom file, from disk)."""
    from repro.core import selection

    selection._model_config.cache_clear()
    store.load()


def run_workload(tune_mode: str, store, shapes=SHAPES,
                 epochs: int = EPOCHS, calls: int = CALLS_PER_EPOCH) -> dict:
    """Total seconds per shape for the restart-heavy serve workload."""
    from repro.core.executor import multiply

    ops = _operands(shapes)
    totals = {}
    for shape in shapes:
        A, B = ops[shape]
        multiply(A, B, engine="auto", tune=tune_mode)  # warm plans/arena
        total = 0.0
        for _ in range(epochs):
            _fresh_process_state(store)
            t0 = time.perf_counter()
            for _ in range(calls):
                multiply(A, B, engine="auto", tune=tune_mode)
            total += time.perf_counter() - t0
        totals[shape] = total
    return totals


def _tuned_store(path: Path):
    """A wisdom store populated for every workload shape."""
    from repro.tune import WisdomStore, set_default_store, tune_sweep

    store = WisdomStore(path)
    set_default_store(store)
    tune_sweep(SHAPES, budget_s=8.0, store=store, top=2)
    return store


def compare(path: Path) -> tuple[dict, dict]:
    """(model_only_totals, tuned_totals) over the same workload."""
    store = _tuned_store(path)
    model = run_workload("off", store)
    tuned = run_workload("readonly", store)
    return model, tuned


def test_tuned_dispatch_beats_cold_model(tmp_path):
    """Acceptance: tuned is no slower overall, faster on >= 2 shapes."""
    from repro.tune import set_default_store

    try:
        model, tuned = compare(tmp_path / "wisdom.json")
    finally:
        set_default_store(None)
    total_model = sum(model.values())
    total_tuned = sum(tuned.values())
    faster = [s for s in SHAPES if tuned[s] < model[s]]
    print(f"\nmodel-only {total_model * 1e3:.1f} ms, "
          f"tuned {total_tuned * 1e3:.1f} ms, "
          f"faster on {len(faster)}/{len(SHAPES)} shapes")
    assert total_tuned <= total_model * 1.05, (
        f"tuned workload slower: {total_tuned:.3f}s vs {total_model:.3f}s"
    )
    assert len(faster) >= 2, (
        f"tuned faster on only {len(faster)} shapes: "
        f"{ {s: (model[s], tuned[s]) for s in SHAPES} }"
    )


def main() -> None:
    from repro.bench.reporting import write_bench_json
    from repro.tune import set_default_store

    with tempfile.TemporaryDirectory() as td:
        try:
            model, tuned = compare(Path(td) / "wisdom.json")
        finally:
            set_default_store(None)
    print(f"repeated-multiply serve workload: {EPOCHS} restarts x "
          f"{CALLS_PER_EPOCH} calls per shape")
    print(f"{'shape':<14} {'model-only ms':>14} {'tuned ms':>10} {'speedup':>8}")
    rows = []
    for s in SHAPES:
        label = "x".join(str(d) for d in s)
        ratio = model[s] / tuned[s] if tuned[s] > 0 else float("inf")
        print(f"{label:<14} {model[s] * 1e3:14.2f} {tuned[s] * 1e3:10.2f} "
              f"{ratio:7.2f}x")
        rows.append({
            "shape": list(s),
            "model_only_s": model[s],
            "tuned_s": tuned[s],
            "speedup": ratio,
        })
    total_m, total_t = sum(model.values()), sum(tuned.values())
    print(f"{'TOTAL':<14} {total_m * 1e3:14.2f} {total_t * 1e3:10.2f} "
          f"{total_m / total_t:7.2f}x")
    out = write_bench_json("autotune", {
        "epochs": EPOCHS,
        "calls_per_epoch": CALLS_PER_EPOCH,
        "points": rows,
        "total_model_only_s": total_m,
        "total_tuned_s": total_t,
        "total_speedup": total_m / total_t,
    })
    print(f"[saved {out}]")


if __name__ == "__main__":
    main()
