"""Fig. 6 reproduction: one-level ABC / AB / Naive, m = n = 14400, k sweep.

The paper's six panels show actual (top) and modeled (bottom) Effective
GFLOPS for all 23 one-level algorithms plus BLIS/MKL as k grows.  Here the
"actual" analog is the fringe-aware loop simulator and "modeled" is the
closed-form Fig.-5 model, both priced with the 1-core Ivy Bridge config.
A reduced-scale wall-clock benchmark keeps the engines honest.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import print_and_save
from repro.algorithms.catalog import fig2_family
from repro.bench.runner import run_series
from repro.bench.workloads import fig6_sweep
from repro.core.executor import multiply

VARIANTS = ("abc", "ab", "naive")


def build_panel(machine, variant: str, tier: str):
    sweep = fig6_sweep()
    series = [run_series(sweep, None, 1, variant, machine, tier=tier, label="BLIS")]
    for entry in fig2_family():
        series.append(
            run_series(
                sweep, entry.algorithm, 1, variant, machine, tier=tier,
                label="<%d,%d,%d>" % entry.dims,
            )
        )
    return series


@pytest.mark.parametrize("variant", VARIANTS)
def test_fig6_panels(paper_machine, benchmark, variant):
    modeled = benchmark.pedantic(
        build_panel, args=(paper_machine, variant, "model"), rounds=1, iterations=1
    )
    actual = build_panel(paper_machine, variant, "sim")
    print_and_save(f"fig6_{variant}_modeled", modeled)
    print_and_save(f"fig6_{variant}_actual", actual)

    gemm_m = modeled[0]
    strassen_m = modeled[1]  # first family row is <2,2,2>
    ks = [s[1] for s in gemm_m.shapes()]

    if variant == "abc":
        # Paper: ABC <2,2,2> beats GEMM across the k sweep, most at small k
        # once k exceeds one k_C panel.
        for i, k in enumerate(ks):
            if k >= 2048:
                assert strassen_m.gflops()[i] > gemm_m.gflops()[i], k
    if variant in ("ab", "naive"):
        # Paper: AB/Naive suffer at small k (M_r traffic) and win big at
        # large k — the advantage over GEMM must grow along the sweep.
        adv_small = strassen_m.gflops()[0] / gemm_m.gflops()[0]
        adv_big = strassen_m.gflops()[-1] / gemm_m.gflops()[-1]
        assert adv_big > adv_small
        assert strassen_m.gflops()[-1] > gemm_m.gflops()[-1]

    # Modeled and simulated tiers agree closely on divisible sizes.
    strassen_a = actual[1]
    for g_m, g_a in zip(strassen_m.gflops(), strassen_a.gflops()):
        assert abs(g_m - g_a) / g_m < 0.08


def test_fig6_crossover_abc_vs_ab(paper_machine, benchmark):
    """ABC wins small k; AB overtakes as k grows (paper §4.3 bullet 3)."""

    def crossover():
        sweep = fig6_sweep()
        abc = run_series(sweep, "strassen", 1, "abc", paper_machine, tier="model")
        ab = run_series(sweep, "strassen", 1, "ab", paper_machine, tier="model")
        return abc, ab

    abc, ab = benchmark.pedantic(crossover, rounds=1, iterations=1)
    assert abc.gflops()[0] > ab.gflops()[0]  # k = 1024: ABC ahead
    assert ab.gflops()[-1] > abc.gflops()[-1]  # k = 12288: AB ahead


def test_fig6_wallclock_reduced(benchmark, rng):
    """Wall-clock sanity at 1/10 scale: 1-level Strassen vs numpy matmul."""
    m, k, n = 1440, 1024, 1440
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))

    def fmm():
        return multiply(A, B, algorithm="strassen", levels=1, engine="direct")

    C = benchmark(fmm)
    assert np.abs(C - A @ B).max() < 1e-9
