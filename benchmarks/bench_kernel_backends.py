"""Kernel-backend benchmark: interpreted leaf loop vs compiled plan kernels.

The acceptance bench for the pluggable leaf-kernel substrate
(:mod:`repro.kernels`): the same compiled plans are executed through the
**reference** backend (the generic recursion interpreter walking the
factor tables step by step) and the **specialized** backend (one
exec-compiled numpy kernel per plan, coefficients unrolled into the
source, gather/scatter index vectors precomputed and cached alongside
the plan).  Runs alternate backend-by-backend so slow drift on a shared
machine hits both equally.  Three claims are regression-tracked:

* **speed** — summed across the sweep, the specialized backend is no
  slower than the interpreter (10% noise margin), and at least two
  sweep shapes are >=1.10x faster — the interpreter-overhead regime
  (many small leaf ops per multiply) the compiled kernels exist for;
* **path** — every specialized run actually executes the compiled
  kernel (``backend_path == "compiled"``), never a silent delegation
  back to the interpreter;
* **float32 parity** — on a fused-lowering shape with non-unit C
  coefficients (the dtype-matched scratch path), the specialized/
  reference time ratio at float32 stays within 5% of the float64 ratio,
  so the f32 scratch fix doesn't tax the compiled pipeline.

Run standalone (``python benchmarks/bench_kernel_backends.py``) for a
table plus machine-readable ``benchmarks/results/
BENCH_kernel_backends.json`` telemetry, or through pytest for the
regression-tracked assertions.
"""

from __future__ import annotations

import time

import numpy as np

#: (shape, algorithm spec, levels, fusion) sweep points.  Sizes sit in
#: the interpreter-overhead regime: 2- and 3-level schedules put 49-343
#: leaf products behind one multiply, so the per-step dispatch the
#: compiled kernels remove is a visible fraction of the wall-clock; the
#: rectangular-mixed and fused points are correctness/parity coverage
#: more than headline wins.
SHAPES = (
    ((64, 64, 64), "strassen", 2, "staged"),
    ((96, 96, 96), "strassen", 3, "staged"),
    ((128, 128, 128), "strassen", 3, "staged"),
    ((120, 80, 120), "<3,2,3>@1,strassen@1", 2, "staged"),
    ((128, 128, 128), "strassen", 2, "fused"),
)
BACKENDS = ("reference", "specialized")
REPEATS = 5
#: Wall-clock tolerances: summed sweep must not regress past 10%, and
#: the per-shape win threshold the issue tracks is 1.10x on >=2 shapes.
SPEED_MARGIN = 1.10
WIN_RATIO = 1.10
#: float32/float64 relative-parity margin for the fused scratch path.
F32_PARITY_MARGIN = 1.05
#: The f32-parity point: fused lowering + non-unit C coefficients, so
#: the dtype-matched scratch buffer is genuinely on the hot path.
F32_SHAPE = ((144, 144, 144), "smirnov333", 1, "fused")


def _operands(shape, dtype=np.float64, seed=2017):
    m, k, n = shape
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, k)).astype(dtype, copy=False)
    B = rng.standard_normal((k, n)).astype(dtype, copy=False)
    C = np.zeros((m, n), dtype=dtype)
    return A, B, C


def measure_point(shape, spec, levels, fusion, dtype=np.float64,
                  repeats=REPEATS):
    """Interleaved best-of-``repeats`` timings per backend for one plan.

    The warmup pass also compiles the specialized kernel (kernel build
    cost is a one-time-per-plan event, amortized by the plan cache, and
    is reported separately rather than folded into the steady-state
    timing) and records which executor path each backend actually took.
    """
    from repro.core import compile as plancache
    from repro.core import runtime

    A, B, C = _operands(shape, dtype)
    cplan = plancache.compile(shape, spec, levels=levels, fusion=fusion,
                              dtype=dtype)
    paths: dict[str, str] = {}
    compile_ms = 0.0
    for backend in BACKENDS:  # warm: kernel compile, arena, pools
        t0 = time.perf_counter()
        runtime.execute_plan(cplan, A, B, C, backend=backend)
        warm = time.perf_counter() - t0
        report = runtime.last_report()
        paths[backend] = report.backend_path
        if backend == "specialized" and not report.kernel_cached:
            compile_ms = warm * 1e3
    times: dict[str, float] = {b: float("inf") for b in BACKENDS}
    for _ in range(repeats):
        for backend in BACKENDS:
            t0 = time.perf_counter()
            runtime.execute_plan(cplan, A, B, C, backend=backend)
            times[backend] = min(times[backend], time.perf_counter() - t0)
    return times, paths, compile_ms


def run_sweep(shapes=SHAPES, dtype=np.float64):
    """Measure every sweep point; returns a list of row dicts."""
    rows = []
    for shape, spec, levels, fusion in shapes:
        times, paths, compile_ms = measure_point(shape, spec, levels,
                                                 fusion, dtype)
        rows.append({
            "shape": list(shape),
            "algorithm": f"{spec}-L{levels}",
            "fusion": fusion,
            "dtype": np.dtype(dtype).name,
            "reference_ms": times["reference"] * 1e3,
            "specialized_ms": times["specialized"] * 1e3,
            "speedup": times["reference"] / times["specialized"],
            "reference_path": paths["reference"],
            "specialized_path": paths["specialized"],
            "kernel_compile_ms": compile_ms,
        })
    return rows


def f32_parity_point(trials=5, repeats=9):
    """specialized/reference time ratios at f32 and f64 on the fused
    non-unit-coefficient shape; returns the row dict the gate checks.

    At the ~1ms scale of this point, a single best-of ratio still swings
    several percent either way on a shared machine, so the gated number
    is the **median relative ratio over ``trials`` independent trials**
    — a systematic f32 scratch tax would shift every trial, noise only
    scatters them.
    """
    shape, spec, levels, fusion = F32_SHAPE
    relatives = []
    ratios = {"float64": [], "float32": []}
    for _ in range(trials):
        trial = {}
        for dtype in (np.float64, np.float32):
            times, paths, _ = measure_point(shape, spec, levels, fusion,
                                            dtype, repeats=repeats)
            assert paths["specialized"] == "compiled", paths
            trial[np.dtype(dtype).name] = (
                times["specialized"] / times["reference"]
            )
        ratios["float64"].append(trial["float64"])
        ratios["float32"].append(trial["float32"])
        relatives.append(trial["float32"] / trial["float64"])
    return {
        "shape": list(shape),
        "algorithm": f"{spec}-L{levels}",
        "fusion": fusion,
        "ratio_f64": float(np.median(ratios["float64"])),
        "ratio_f32": float(np.median(ratios["float32"])),
        "relative": float(np.median(relatives)),
        "relative_trials": relatives,
    }


# ---------------------------------------------------------------------- #
# pytest mode
# ---------------------------------------------------------------------- #
def test_specialized_runs_compiled_and_wins_on_small_shapes():
    """Acceptance: every sweep point executes the compiled kernel, the
    summed sweep is no slower than the interpreter (10% margin), and at
    least two shapes clear the 1.10x speedup bar."""
    rows = run_sweep()
    for r in rows:
        assert r["reference_path"] == "interpreted", r
        assert r["specialized_path"] == "compiled", r
    total_ref = sum(r["reference_ms"] for r in rows)
    total_spec = sum(r["specialized_ms"] for r in rows)
    assert total_spec <= total_ref * SPEED_MARGIN, (
        f"specialized {total_spec:.1f}ms vs reference {total_ref:.1f}ms "
        f"(> {SPEED_MARGIN:.0%} margin)"
    )
    wins = [r for r in rows if r["speedup"] >= WIN_RATIO]
    assert len(wins) >= 2, [
        (r["shape"], round(r["speedup"], 3)) for r in rows
    ]


def test_float32_fused_scratch_keeps_relative_parity():
    """Acceptance: the dtype-matched fused scratch path costs the
    compiled backend no more than 5% relative to its float64 ratio."""
    row = f32_parity_point()
    assert row["relative"] <= F32_PARITY_MARGIN, row


def test_backends_exact_across_sweep_shapes():
    """Both backends produce the interpreter-exact product on every
    sweep shape (scaled-down twins keep pytest mode fast)."""
    from repro.core import compile as plancache
    from repro.core import runtime

    for shape, spec, levels, fusion in SHAPES:
        small = tuple(max(d // 2, 24) for d in shape)
        A, B, C = _operands(small)
        cplan = plancache.compile(small, spec, levels=levels, fusion=fusion)
        outs = {}
        for backend in BACKENDS:
            C[...] = 0.0
            runtime.execute_plan(cplan, A, B, C, backend=backend)
            outs[backend] = C.copy()
        np.testing.assert_array_equal(
            outs["specialized"], outs["reference"], err_msg=str(small)
        )
        assert np.abs(outs["reference"] - A @ B).max() < 1e-8, small


# ---------------------------------------------------------------------- #
# standalone mode
# ---------------------------------------------------------------------- #
def main() -> None:
    from repro.bench.reporting import write_bench_json

    print("kernel-backend benchmark (reference interpreter vs "
          "compiled plan kernels)")
    print(f"{'shape':>12} {'algorithm':>22} {'fusion':>6} "
          f"{'ref ms':>8} {'spec ms':>8} {'speedup':>7} "
          f"{'spec path':>9} {'compile ms':>10}")
    rows = run_sweep()
    for r in rows:
        shape = "x".join(str(d) for d in r["shape"])
        print(f"{shape:>12} {r['algorithm']:>22} {r['fusion']:>6} "
              f"{r['reference_ms']:8.2f} {r['specialized_ms']:8.2f} "
              f"{r['speedup']:6.2f}x {r['specialized_path']:>9} "
              f"{r['kernel_compile_ms']:10.1f}")
    total_ref = sum(r["reference_ms"] for r in rows)
    total_spec = sum(r["specialized_ms"] for r in rows)
    parity = f32_parity_point()
    print(f"\ntotal: reference {total_ref:.1f}ms, specialized "
          f"{total_spec:.1f}ms ({total_ref / total_spec:.2f}x); "
          f">=1.10x on "
          f"{sum(r['speedup'] >= WIN_RATIO for r in rows)}/{len(rows)} "
          f"shapes")
    print(f"f32 fused-scratch parity at "
          f"{'x'.join(str(d) for d in parity['shape'])} "
          f"{parity['algorithm']}: spec/ref ratio f64 "
          f"{parity['ratio_f64']:.3f}, f32 {parity['ratio_f32']:.3f} "
          f"(relative {parity['relative']:.3f}, gate <= "
          f"{F32_PARITY_MARGIN:.2f})")
    out = write_bench_json("kernel_backends", {
        "points": rows,
        "total_reference_ms": total_ref,
        "total_specialized_ms": total_spec,
        "f32_parity": parity,
    })
    print(f"[saved {out}]")


if __name__ == "__main__":
    main()
