"""Out-of-core benchmark: the tiled streaming lowering vs in-core pipelines.

The acceptance bench for ``fusion="tiled"`` (:mod:`repro.core.runtime` +
:mod:`repro.core.tiles`): the same compiled plans run through the
**staged**, **fused** and **tiled** lowerings, the last under a memory
budget of ``1/BUDGET_DIV`` of its operand slabs — so the slab-scale
temporaries genuinely spill to mmap files and only the strip window
stays in RAM.  Three claims are regression-tracked:

* **memory** — the tiled execution's measured peak RAM workspace (arena
  high-water meter; mmap-spilled bytes deliberately do not count) is
  strictly below the staged pipeline's on at least two shapes, and never
  exceeds the priced window (``predict_tile_window_bytes`` — asserted
  equal to the report's ``tile_window_bytes``).  Deterministic byte
  counts, no wall-clock.
* **speed** — summed across the sweep, tiled wall-clock stays within
  ``SPEED_MARGIN`` (1.3x) of the in-core fused pipeline at these in-RAM
  sizes: streaming through the window must not wreck the kernel
  efficiency the task graph was built for.
* **out-of-core completion** — a 2-level multiply on ``np.memmap``
  operands whose slabs are 4x the configured budget completes through
  the tiled lowering, bitwise-equal to the in-core result at the same
  worker count, with measured peak RAM <= the priced window.

Run standalone (``python benchmarks/bench_out_of_core.py``) for a table
plus machine-readable ``benchmarks/results/BENCH_out_of_core.json``
telemetry, or through pytest for the regression-tracked assertions
(CI runs the deterministic peak/acceptance bars under a capped
``REPRO_MEM_BUDGET``; the wall-clock bar is for quiet machines).
"""

from __future__ import annotations

import os
import time

import numpy as np

#: (shape, algorithm spec, levels) sweep points.  Sizes are in-RAM on any
#: CI runner (the wall-clock bar compares pipelines, not disks) but big
#: enough that the staged slabs dwarf the tiled strip window.
SHAPES = (
    ((384, 384, 384), "strassen", 2),
    ((512, 512, 512), "strassen", 2),
    ((576, 192, 576), "<3,2,3>@1,strassen@1", 1),
)
REPEATS = 3
#: Tiled runs under a budget of ``operand_slab_bytes / BUDGET_DIV`` —
#: well past the auto-tiling trigger (slabs > budget), so the strip
#: height genuinely solves from the budget.
BUDGET_DIV = 8
#: Wall-clock tolerance vs the in-core fused pipeline at in-RAM sizes.
SPEED_MARGIN = 1.30


def _threads_here(limit: int | None = None) -> tuple[int, ...]:
    """Benchmark thread counts, never exceeding this host's cores."""
    avail = limit or os.cpu_count() or 1
    return (1, 2) if avail >= 2 else (1,)


def _operands(shape, dtype=np.float64, seed=2017):
    m, k, n = shape
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, k)).astype(dtype, copy=False)
    B = rng.standard_normal((k, n)).astype(dtype, copy=False)
    C = np.zeros((m, n), dtype=dtype)
    return A, B, C


def _budget_for(shape, spec, levels) -> int:
    from repro.core.spec import operand_slab_bytes
    from repro.core.executor import resolve_levels

    m, k, n = shape
    ml = resolve_levels(spec, levels)
    return operand_slab_bytes(m, k, n, ml) // BUDGET_DIV


def measure_point(shape, spec, levels, threads=1, repeats=REPEATS):
    """Interleaved best-of-``repeats`` timings + peaks for all three modes.

    The tiled plan executes under the shape's reduced memory budget
    (slabs / ``BUDGET_DIV``); the budget tunable is restored afterwards.
    Runs alternate modes so slow drift on a shared machine hits every
    pipeline equally.
    """
    from repro.core import compile as plancache
    from repro.core import runtime
    from repro.core.spec import set_runtime_tunables
    from repro.core.executor import resolve_levels
    from repro.model.perfmodel import predict_tile_window_bytes

    A, B, C = _operands(shape)
    budget = _budget_for(shape, spec, levels)
    plans = {
        mode: plancache.compile(shape, spec, levels=levels, fusion=mode)
        for mode in ("staged", "fused", "tiled")
    }

    def _run(mode):
        if mode == "tiled":
            set_runtime_tunables(mem_budget_bytes=budget)
        try:
            runtime.execute_plan(plans[mode], A, B, C, threads=threads)
        finally:
            if mode == "tiled":
                set_runtime_tunables(mem_budget_bytes=0)
        return runtime.last_report()

    peaks: dict[str, int] = {}
    tiled_rep = None
    for mode in plans:  # warm: compile, arena, pools, spill files
        report = _run(mode)
        peaks[mode] = report.peak_workspace_bytes
        if mode == "tiled":
            tiled_rep = report
    times: dict[str, float] = {mode: float("inf") for mode in plans}
    for _ in range(repeats):
        for mode in plans:
            t0 = time.perf_counter()
            _run(mode)
            times[mode] = min(times[mode], time.perf_counter() - t0)
    m, k, n = shape
    set_runtime_tunables(mem_budget_bytes=budget)
    try:
        predicted = predict_tile_window_bytes(
            m, k, n, resolve_levels(spec, levels), threads=threads
        )
    finally:
        set_runtime_tunables(mem_budget_bytes=0)
    stats = {
        "budget_bytes": budget,
        "tile_window_bytes": tiled_rep.tile_window_bytes,
        "predicted_window_bytes": predicted,
        "n_tiles": tiled_rep.n_tiles,
        "io_bytes": tiled_rep.io_bytes,
    }
    return times, peaks, stats


def run_sweep(threads_list=None):
    """Measure every (shape, threads) point; returns a list of row dicts."""
    rows = []
    for threads in threads_list or _threads_here():
        for shape, spec, levels in SHAPES:
            times, peaks, stats = measure_point(shape, spec, levels, threads)
            rows.append({
                "shape": list(shape),
                "algorithm": f"{spec}-L{levels}",
                "threads": threads,
                "staged_ms": times["staged"] * 1e3,
                "fused_ms": times["fused"] * 1e3,
                "tiled_ms": times["tiled"] * 1e3,
                "staged_peak_bytes": peaks["staged"],
                "fused_peak_bytes": peaks["fused"],
                "tiled_peak_bytes": peaks["tiled"],
                "tiled_vs_fused": times["tiled"] / times["fused"],
                **stats,
            })
    return rows


# ---------------------------------------------------------------------- #
# pytest mode
# ---------------------------------------------------------------------- #
def test_tiled_peak_below_staged_on_at_least_two_shapes():
    """Acceptance: tiled peak RAM < staged peak on >= 2 shapes, and the
    measured peak never exceeds the priced window (which equals the
    report's ``tile_window_bytes`` by construction).  Deterministic
    byte counts from the arena high-water meter, no wall-clock."""
    rows = run_sweep(threads_list=(1,))
    for r in rows:
        assert r["tile_window_bytes"] == r["predicted_window_bytes"], r
        assert 0 < r["tiled_peak_bytes"] <= r["tile_window_bytes"], r
        assert r["n_tiles"] > 0 and r["io_bytes"] > 0, r
    lower = [r for r in rows if r["tiled_peak_bytes"] < r["staged_peak_bytes"]]
    assert len(lower) >= 2, [
        (r["shape"], r["staged_peak_bytes"], r["tiled_peak_bytes"])
        for r in rows
    ]


def test_tiled_wallclock_within_margin_of_incore():
    """Acceptance: summed over the sweep, tiled wall-clock stays within
    ``SPEED_MARGIN`` of the in-core fused pipeline at in-RAM sizes."""
    rows = run_sweep(threads_list=(1,))
    total_fused = sum(r["fused_ms"] for r in rows)
    total_tiled = sum(r["tiled_ms"] for r in rows)
    assert total_tiled <= total_fused * SPEED_MARGIN, (
        f"tiled {total_tiled:.1f}ms vs fused {total_fused:.1f}ms "
        f"(> {SPEED_MARGIN:.0%} margin)"
    )


def test_out_of_core_acceptance_memmap_operands_4x_budget(tmp_path):
    """Acceptance: a 2-level multiply on memmap operands whose slabs are
    4x the budget completes via the tiled lowering, bitwise-equal to the
    in-core result, with measured peak RAM <= the priced window."""
    from repro.core.executor import multiply, resolve_levels
    from repro.core.runtime import last_report
    from repro.core.spec import operand_slab_bytes, set_runtime_tunables
    from repro.model.perfmodel import predict_tile_window_bytes

    m = k = n = 256
    ml = resolve_levels("strassen", 2)
    budget = operand_slab_bytes(m, k, n, ml) // 4
    rng = np.random.default_rng(2017)
    Am = np.memmap(tmp_path / "A.dat", dtype=np.float64, mode="w+",
                   shape=(m, k))
    Bm = np.memmap(tmp_path / "B.dat", dtype=np.float64, mode="w+",
                   shape=(k, n))
    Am[:] = rng.standard_normal((m, k))
    Bm[:] = rng.standard_normal((k, n))
    ref = multiply(np.array(Am), np.array(Bm), algorithm="strassen",
                   levels=2, variant="abc", fusion="fused", threads=1)
    set_runtime_tunables(mem_budget_bytes=budget)
    try:
        out = multiply(Am, Bm, algorithm="strassen", levels=2,
                       variant="abc", fusion="auto", threads=1)
        rep = last_report()
        predicted = predict_tile_window_bytes(m, k, n, ml, threads=1)
    finally:
        set_runtime_tunables(mem_budget_bytes=0)
    assert rep.fusion == "tiled", rep.fusion
    assert rep.tile_window_bytes == predicted
    assert 0 < rep.peak_workspace_bytes <= predicted
    np.testing.assert_array_equal(out, ref)


# ---------------------------------------------------------------------- #
# standalone mode
# ---------------------------------------------------------------------- #
def main() -> None:
    from repro.bench.reporting import write_bench_json

    print(f"out-of-core benchmark (host has {os.cpu_count()} cores, "
          f"tiled budget = slabs/{BUDGET_DIV})")
    print(f"{'shape':>14} {'algorithm':>22} {'t':>2} "
          f"{'staged ms':>10} {'fused ms':>9} {'tiled ms':>9} {'t/f':>5} "
          f"{'staged MiB':>11} {'tiled MiB':>10} {'window MiB':>11} "
          f"{'tiles':>6}")
    rows = run_sweep()
    for r in rows:
        shape = "x".join(str(d) for d in r["shape"])
        print(f"{shape:>14} {r['algorithm']:>22} {r['threads']:>2} "
              f"{r['staged_ms']:10.1f} {r['fused_ms']:9.1f} "
              f"{r['tiled_ms']:9.1f} {r['tiled_vs_fused']:4.2f}x "
              f"{r['staged_peak_bytes'] / 2**20:11.2f} "
              f"{r['tiled_peak_bytes'] / 2**20:10.2f} "
              f"{r['tile_window_bytes'] / 2**20:11.2f} "
              f"{r['n_tiles']:>6}")
    total_fused = sum(r["fused_ms"] for r in rows)
    total_tiled = sum(r["tiled_ms"] for r in rows)
    print(f"\ntotal: fused {total_fused:.1f}ms, tiled {total_tiled:.1f}ms "
          f"({total_tiled / total_fused:.2f}x; margin {SPEED_MARGIN:.2f}x)")
    out = write_bench_json("out_of_core", {
        "budget_divisor": BUDGET_DIV,
        "speed_margin": SPEED_MARGIN,
        "rows": rows,
    })
    print(f"[saved {out}]")


if __name__ == "__main__":
    main()
