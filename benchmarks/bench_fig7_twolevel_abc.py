"""Fig. 7 reproduction: two-level ABC FMM in three shape regimes.

Panels: m = k = n square sweep; m = n = 14400 with k varying; k = 1024
with m = n varying — actual (simulator) and modeled, 1 core, all 23
two-level homogeneous algorithms plus GEMM.
"""

from __future__ import annotations

import pytest

from conftest import print_and_save
from repro.algorithms.catalog import fig2_family
from repro.bench.runner import run_series
from repro.bench.workloads import (
    fig7_fixed_k_sweep,
    fig7_rank_k_sweep,
    fig7_square_sweep,
)

SWEEPS = {
    "square": fig7_square_sweep,
    "rank_k": fig7_rank_k_sweep,
    "fixed_k": fig7_fixed_k_sweep,
}


def build_panel(machine, sweep, tier):
    series = [run_series(sweep, None, 2, "abc", machine, tier=tier, label="BLIS")]
    for entry in fig2_family():
        series.append(
            run_series(
                sweep, entry.algorithm, 2, "abc", machine, tier=tier,
                label="<%d,%d,%d>^2" % entry.dims,
            )
        )
    return series


@pytest.mark.parametrize("regime", list(SWEEPS))
def test_fig7_panels(paper_machine, benchmark, regime):
    sweep = SWEEPS[regime]()
    modeled = benchmark.pedantic(
        build_panel, args=(paper_machine, sweep, "model"), rounds=1, iterations=1
    )
    actual = build_panel(paper_machine, sweep, "sim")
    print_and_save(f"fig7_{regime}_modeled", modeled)
    print_and_save(f"fig7_{regime}_actual", actual)

    gemm = modeled[0]
    strassen2 = modeled[1]
    if regime == "square":
        # Two-level Strassen overtakes GEMM and keeps growing with size.
        assert strassen2.gflops()[-1] > gemm.gflops()[-1]
        assert strassen2.gflops()[-1] > strassen2.gflops()[0]
    if regime == "rank_k":
        # Paper: ABC peaks when k is a multiple of K~_L * k_C (= 1024 for
        # 2-level Strassen): every sweep point is such a multiple, and
        # <2,2,2> 2-level beats GEMM once k is large enough to amortize.
        assert strassen2.gflops()[-1] > gemm.gflops()[-1]
    if regime == "fixed_k":
        # k = 1024 fixed: one full k_C pass per level partition; 2-level
        # <2,2,2> ABC stays ahead of GEMM at large m = n.
        assert strassen2.gflops()[-1] > gemm.gflops()[-1]


def test_fig7_two_level_beats_one_level_big_square(paper_machine, benchmark):
    """At m=k=n=12288 the second level pays off for <2,2,2> (paper Fig. 7)."""

    def both():
        sweep = [(12288, 12288, 12288)]
        l1 = run_series(sweep, "strassen", 1, "abc", paper_machine, tier="sim")
        l2 = run_series(sweep, "strassen", 2, "abc", paper_machine, tier="sim")
        return l1.gflops()[0], l2.gflops()[0]

    g1, g2 = benchmark.pedantic(both, rounds=1, iterations=1)
    assert g2 > g1


def test_fig7_small_sizes_favor_gemm(paper_machine, benchmark):
    """At m=k=n=1024 two-level FMM cannot amortize its additions."""

    def both():
        sweep = [(1024, 1024, 1024)]
        gemm = run_series(sweep, None, 2, "abc", paper_machine, tier="sim")
        l2 = run_series(sweep, "strassen", 2, "abc", paper_machine, tier="sim")
        return gemm.gflops()[0], l2.gflops()[0]

    g_gemm, g_l2 = benchmark.pedantic(both, rounds=1, iterations=1)
    assert g_gemm > g_l2 * 0.9  # GEMM competitive-or-better at small sizes
