"""Parallel-runtime benchmark: measured thread scaling of the task DAG.

The tentpole acceptance bench for the task-graph runtime
(:mod:`repro.core.runtime`): a 1024x1024x1024 one-level Strassen multiply
is executed at 1/2/4 threads through the real runtime (gather/product/
scatter tasks over the arena workspace) and the measured speedups are
reported next to the machine model's prediction.  On a >= 4-core machine
``threads=4`` must reach >= 2x the serial wall-clock; on smaller hosts the
speedup assertions are skipped and the run is report-only.

Run standalone (``python benchmarks/bench_parallel_runtime.py``) for a
table plus a machine-readable ``benchmarks/results/
BENCH_parallel_runtime.json`` record (shape, threads, GFLOPS, speedup),
or through pytest for the regression-tracked assertions (correctness,
zero per-call workspace allocation, and — where the cores exist — the 2x
speedup bar).
"""

from __future__ import annotations

import os

import numpy as np

SHAPE = (1024, 1024, 1024)
ALGORITHM = "strassen"
LEVELS = 1
THREADS = (1, 2, 4)


def _threads_here(limit: int | None = None) -> tuple[int, ...]:
    """The benchmark thread counts, never exceeding this host's cores."""
    avail = limit or os.cpu_count() or 1
    picked = [t for t in THREADS if t <= avail]
    return tuple(picked) or (1,)


def measure(shape=SHAPE, threads=None, repeats: int = 3):
    """Measured ScalingPoints for the runtime at each thread count."""
    from repro.core.parallel import measured_scaling_curve

    m, k, n = shape
    return measured_scaling_curve(
        m, k, n,
        algorithm=ALGORITHM, levels=LEVELS, variant="abc",
        threads_list=threads or _threads_here(), repeats=repeats,
    )


# ---------------------------------------------------------------------- #
# pytest mode
# ---------------------------------------------------------------------- #
def test_parallel_matches_serial():
    """threads in {1,2,4} all agree with the classical oracle."""
    from repro.core.executor import multiply

    rng = np.random.default_rng(7)
    A = rng.standard_normal((192, 192))
    B = rng.standard_normal((192, 192))
    ref = A @ B
    C1 = multiply(A, B, algorithm=ALGORITHM, levels=LEVELS, threads=1)
    for t in (2, 4):
        Ct = multiply(A, B, algorithm=ALGORITHM, levels=LEVELS, threads=t)
        assert np.abs(Ct - ref).max() < 1e-9
        assert np.abs(Ct - C1).max() < 1e-10
    assert np.abs(C1 - ref).max() < 1e-9


def test_workspace_arena_zero_alloc():
    """Repeated same-plan multiplies allocate no new workspace buffers."""
    from repro.core.executor import multiply
    from repro.core.workspace import arena_stats

    rng = np.random.default_rng(11)
    A = rng.standard_normal((128, 128))
    B = rng.standard_normal((128, 128))
    C = np.zeros((128, 128))
    for t in (1, 2):
        multiply(A, B, C, algorithm=ALGORITHM, levels=LEVELS, threads=t)  # warm
        allocated = arena_stats().allocations
        reused = arena_stats().reuses
        for _ in range(5):
            multiply(A, B, C, algorithm=ALGORITHM, levels=LEVELS, threads=t)
        stats = arena_stats()
        assert stats.allocations == allocated, "hot path allocated a workspace"
        assert stats.reuses >= reused + 5


def test_parallel_speedup_on_multicore():
    """Acceptance: >= 2x at 4 threads for 1024^3 Strassen (>= 4 cores only)."""
    import pytest

    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs a >= 4-core machine (acceptance criterion scope)")
    pts = measure(threads=(1, 4), repeats=3)
    t1, t4 = pts[0].time, pts[-1].time
    print(f"\n1024^3 strassen L1: 1 thread {t1:.3f}s, 4 threads {t4:.3f}s "
          f"({t1 / t4:.2f}x)")
    assert t1 / t4 >= 2.0, (
        f"parallel runtime speedup {t1 / t4:.2f}x below the 2x bar"
    )


# ---------------------------------------------------------------------- #
# standalone mode
# ---------------------------------------------------------------------- #
def main() -> None:
    from repro.bench.reporting import write_bench_json
    from repro.core.parallel import scaling_curve
    from repro.core.spec import resolve_levels

    m, k, n = SHAPE
    threads = _threads_here()
    print(f"parallel-runtime benchmark: {m}x{k}x{n} {ALGORITHM} L{LEVELS} "
          f"(host has {os.cpu_count()} cores)")
    pts = measure(threads=threads)
    ml = resolve_levels(ALGORITHM, LEVELS)
    modeled = {p.cores: p for p in
               scaling_curve(m, k, n, ml, "abc", max_cores=max(threads))}
    print(f"{'threads':>7} {'time s':>9} {'GFLOPS':>8} {'speedup':>8} "
          f"{'modeled':>8}")
    rows = []
    for p in pts:
        mp = modeled.get(p.cores)
        print(f"{p.cores:7d} {p.time:9.3f} {p.gflops:8.2f} "
              f"{p.speedup:7.2f}x {mp.speedup if mp else 1.0:7.2f}x")
        rows.append({
            "shape": [m, k, n],
            "algorithm": f"{ALGORITHM}-L{LEVELS}",
            "threads": p.cores,
            "time_s": p.time,
            "gflops": p.gflops,
            "speedup": p.speedup,
            "modeled_speedup": mp.speedup if mp else 1.0,
        })
    out = write_bench_json("parallel_runtime", {"points": rows})
    print(f"[saved {out}]")


if __name__ == "__main__":
    main()
