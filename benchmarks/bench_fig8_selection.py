"""Fig. 8 reproduction: model-guided selection across the three sweeps.

The paper plots BLIS, MKL, the exhaustive best FMM, and the model-selected
FMM; the claim is that the selected implementation tracks the best closely,
avoiding exhaustive search.  We regenerate the three curves (GEMM baseline,
exhaustive-best over the candidate set, model-guided top-2 selection) with
the simulator as ground truth.
"""

from __future__ import annotations

import pytest

from conftest import print_and_save
from repro.bench.reporting import write_bench_json
from repro.bench.runner import Series, SeriesPoint
from repro.bench.workloads import (
    fig7_fixed_k_sweep,
    fig7_rank_k_sweep,
    fig7_square_sweep,
)
from repro.blis.simulator import simulate_time
from repro.core.selection import enumerate_candidates, rank_candidates, select
from repro.model.perfmodel import effective_gflops

SWEEPS = {
    "square": fig7_square_sweep,
    "rank_k": fig7_rank_k_sweep,
    "fixed_k": fig7_fixed_k_sweep,
}


def _simulated(c, m, k, n, machine) -> float:
    return simulate_time(m, k, n, c.multilevel(), c.variant, machine)


def build_curves(machine, sweep, probe_top: int = 8):
    gemm = Series(label="BLIS", tier="sim")
    best = Series(label="Best FMM", tier="sim")
    selected = Series(label="Selected FMM", tier="sim")
    regret = []
    for (m, k, n) in sweep:
        t_gemm = simulate_time(m, k, n, None, "abc", machine)
        gemm.points.append(SeriesPoint((m, k, n), effective_gflops(m, k, n, t_gemm), t_gemm))

        ranked = rank_candidates(enumerate_candidates(m, k, n, machine, max_levels=2))
        # "Best FMM": exhaustive simulation over the model's top slice —
        # the candidate pool itself (hundreds) is too slow to simulate at
        # every sweep point, so probe deep enough to contain the winner.
        probe = ranked[:probe_top]
        t_best = min(_simulated(c, m, k, n, machine) for c in probe)
        best.points.append(SeriesPoint((m, k, n), effective_gflops(m, k, n, t_best), t_best))

        winner, _ = select(m, k, n, machine, top=2)
        t_sel = _simulated(winner, m, k, n, machine)
        selected.points.append(SeriesPoint((m, k, n), effective_gflops(m, k, n, t_sel), t_sel))
        regret.append(t_sel / t_best - 1.0)
    return gemm, best, selected, regret


@pytest.mark.parametrize("regime", list(SWEEPS))
def test_fig8_selection_tracks_best(paper_machine, benchmark, regime):
    sweep = SWEEPS[regime]()[::2]  # every other point keeps runtime modest
    gemm, best, selected, regret = benchmark.pedantic(
        build_curves, args=(paper_machine, sweep), rounds=1, iterations=1
    )
    print_and_save(f"fig8_{regime}", [gemm, best, selected])
    print(f"selection regret vs best ({regime}):",
          " ".join(f"{r * 100:.1f}%" for r in regret))
    write_bench_json(f"fig8_selection_{regime}", {
        "regime": regime,
        "max_regret": max(regret),
        "points": [
            {
                "shape": list(shape),
                "gemm_gflops": gemm.points[i].gflops,
                "best_fmm_gflops": best.points[i].gflops,
                "selected_fmm_gflops": selected.points[i].gflops,
                "regret": regret[i],
            }
            for i, shape in enumerate(gemm.shapes())
        ],
    })

    # The paper's headline: top-2 selection is within a few percent of the
    # exhaustive best everywhere (model is accurate in *relative* terms).
    assert max(regret) < 0.06
    # And the selected FMM beats plain GEMM at large sizes in every regime.
    assert selected.gflops()[-1] > gemm.gflops()[-1]
