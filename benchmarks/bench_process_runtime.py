"""Process-runtime benchmark: GIL-free sharded execution vs the thread pool.

The acceptance bench for the shared-memory multi-process runtime
(:mod:`repro.core.procpool`): fig-10-style shapes are executed through
the real task-graph runtime at the same worker count under both worker
modes, and the measured thread-vs-process ratio is reported next to the
performance model's prediction
(:func:`repro.model.perfmodel.predict_worker_times`).  On a >= 4-core
machine the process runtime must reach >= 1.5x the thread runtime on at
least two of the shapes at 4 workers; on smaller hosts the speedup
assertion is skipped (never faked) and the run is report-only.

Run standalone (``python benchmarks/bench_process_runtime.py``) for a
table plus a machine-readable ``benchmarks/results/
BENCH_process_runtime.json`` record (shape, workers, per-mode seconds and
GFLOPS, measured and modeled ratios), or through pytest for the
regression-tracked assertions (correctness, report plumbing, and — where
the cores exist — the 1.5x acceptance bar).
"""

from __future__ import annotations

import os
import time

import numpy as np

#: Fig-10-style shapes: one square, one rank-k, one fixed-k panel.
SHAPES = (
    (2048, 2048, 2048),
    (3072, 512, 3072),
    (1536, 3072, 1536),
)
ALGORITHM = "strassen"
LEVELS = 1
WORKERS = 4


def _measure_mode(shape, workers_mode, n_workers, repeats=3):
    """Best-of-``repeats`` wall-clock for one shape under one worker mode."""
    from repro.core.executor import multiply

    m, k, n = shape
    rng = np.random.default_rng(2017)
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))
    multiply(A, B, algorithm=ALGORITHM, levels=LEVELS,
             threads=n_workers, workers=workers_mode)  # warm pools + plan
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        multiply(A, B, algorithm=ALGORITHM, levels=LEVELS,
                 threads=n_workers, workers=workers_mode)
        best = min(best, time.perf_counter() - t0)
    return best


def measure(shapes=SHAPES, n_workers=WORKERS, repeats=3):
    """Per-shape dict rows: measured thread/process times + model ratio."""
    from repro.model.perfmodel import predict_worker_times

    rows = []
    for shape in shapes:
        m, k, n = shape
        t_thread = _measure_mode(shape, "threads", n_workers, repeats)
        t_proc = _measure_mode(shape, "processes", n_workers, repeats)
        flops = 2.0 * m * k * n
        model_t, model_p = predict_worker_times(
            m, k, n, t_serial=_measure_mode(shape, "threads", 1, 1),
            workers=n_workers,
        )
        rows.append({
            "shape": list(shape),
            "algorithm": f"{ALGORITHM}-L{LEVELS}",
            "workers": n_workers,
            "threads_time_s": t_thread,
            "processes_time_s": t_proc,
            "threads_gflops": flops / t_thread / 1e9,
            "processes_gflops": flops / t_proc / 1e9,
            "measured_ratio": t_thread / t_proc,
            "modeled_ratio": model_t / model_p,
        })
    return rows


# ---------------------------------------------------------------------- #
# pytest mode
# ---------------------------------------------------------------------- #
def test_process_matches_thread_runtime():
    """Both modes agree bitwise at the same worker count (small shapes)."""
    from repro.core.executor import multiply
    from repro.core.procpool import shutdown_process_pools

    rng = np.random.default_rng(7)
    A = rng.standard_normal((192, 192))
    B = rng.standard_normal((192, 192))
    try:
        Ct = multiply(A, B, algorithm=ALGORITHM, levels=LEVELS,
                      threads=2, workers="threads")
        Cp = multiply(A, B, algorithm=ALGORITHM, levels=LEVELS,
                      threads=2, workers="processes")
    finally:
        shutdown_process_pools()
    assert np.array_equal(Ct, Cp)
    assert np.abs(Cp - A @ B).max() < 1e-9


def test_process_report_prices_ipc():
    """The report's ipc_bytes matches the model's shm-traffic predictor."""
    from repro.core.executor import multiply
    from repro.core.procpool import shutdown_process_pools
    from repro.core.runtime import last_report

    rng = np.random.default_rng(9)
    A = rng.standard_normal((256, 256))
    B = rng.standard_normal((256, 256))
    try:
        multiply(A, B, algorithm=ALGORITHM, levels=LEVELS, procs=2)
    finally:
        shutdown_process_pools()
    rep = last_report()
    assert rep.worker_mode == "processes"
    # The lowering ships the core slabs once: never more than the whole
    # operands + two C passes, never less than one operand panel.
    from repro.model.perfmodel import predict_ipc_bytes

    assert 0 < rep.ipc_bytes <= predict_ipc_bytes(256, 256, 256)


def test_process_speedup_on_multicore():
    """Acceptance: >= 1.5x over threads on >= 2 fig-10 shapes (>= 4 cores)."""
    import pytest

    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs a >= 4-core machine (acceptance criterion scope)")
    from repro.core.procpool import shutdown_process_pools

    try:
        rows = measure(repeats=3)
    finally:
        shutdown_process_pools()
    print()
    for r in rows:
        print(f"{r['shape']}: threads {r['threads_time_s']:.3f}s, "
              f"processes {r['processes_time_s']:.3f}s "
              f"({r['measured_ratio']:.2f}x, model {r['modeled_ratio']:.2f}x)")
    wins = sum(r["measured_ratio"] >= 1.5 for r in rows)
    assert wins >= 2, (
        f"process runtime beat threads >= 1.5x on only {wins} of "
        f"{len(rows)} shapes: "
        + ", ".join(f"{r['shape']}={r['measured_ratio']:.2f}x" for r in rows)
    )


# ---------------------------------------------------------------------- #
# standalone mode
# ---------------------------------------------------------------------- #
def main() -> None:
    from repro.bench.reporting import write_bench_json
    from repro.core.procpool import shutdown_process_pools

    cores = os.cpu_count() or 1
    n_workers = min(WORKERS, cores)
    print(f"process-runtime benchmark: {ALGORITHM} L{LEVELS} at "
          f"{n_workers} workers (host has {cores} cores)")
    try:
        rows = measure(n_workers=n_workers)
    finally:
        shutdown_process_pools()
    print(f"{'shape':>18} {'threads s':>10} {'procs s':>9} "
          f"{'measured':>9} {'modeled':>8}")
    for r in rows:
        shape = "x".join(str(s) for s in r["shape"])
        print(f"{shape:>18} {r['threads_time_s']:10.3f} "
              f"{r['processes_time_s']:9.3f} {r['measured_ratio']:8.2f}x "
              f"{r['modeled_ratio']:7.2f}x")
    out = write_bench_json("process_runtime",
                           {"workers": n_workers, "points": rows})
    print(f"[saved {out}]")


if __name__ == "__main__":
    main()
