"""Observability overhead benchmark: tracing must be free when off.

The span tracer (:mod:`repro.obs.trace`) instruments the hottest paths
in the stack — plan-cache lookup, every runtime phase, arena
acquire/recycle, kernel dispatch.  Its contract is that the disabled
fast path is a flag check plus returning a shared no-op context
manager, cheap enough that serving workloads never pay for the
instrumentation they are not using.

This benchmark pins that contract down two ways:

* microbenchmark the disabled ``span()`` call directly (nanoseconds
  per call), and
* bound the end-to-end cost: count the spans one cached multiply would
  emit, multiply by the per-call cost, and compare against the measured
  cached-multiply latency from the plan-cache workload.

The pytest acceptance gates the end-to-end fraction below 2% — the
CI overhead-regression smoke.  Run standalone
(``python benchmarks/bench_observability.py``) for the summary table
and the ``BENCH_observability.json`` telemetry record.
"""

from __future__ import annotations

import time

import numpy as np

N = 96
LEVELS = 2
SPAN_ITERS = 200_000
REPEATS = 3

#: Acceptance bar: disabled-tracer cost as a fraction of one cached
#: multiply (the worst realistic ratio: tiny problem, hot plan cache).
MAX_OVERHEAD_FRACTION = 0.02


def _operands(n=N):
    rng = np.random.default_rng(2017)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


def disabled_span_cost_ns(iters: int = SPAN_ITERS) -> float:
    """Best-of-REPEATS nanoseconds per disabled ``span()`` call."""
    from repro.obs import trace

    assert not trace.is_enabled()
    best = float("inf")
    span = trace.span
    for _ in range(REPEATS):
        t0 = time.perf_counter_ns()
        for _ in range(iters):
            with span("bench", "bench"):
                pass
        best = min(best, (time.perf_counter_ns() - t0) / iters)
    return best


def spans_per_multiply() -> int:
    """Span records one warm (plan-cached) multiply emits."""
    from repro.core.executor import multiply
    from repro.obs import trace

    A, B = _operands()
    multiply(A, B, algorithm="strassen", levels=LEVELS)  # compile outside
    trace.enable()
    trace.clear()
    try:
        multiply(A, B, algorithm="strassen", levels=LEVELS)
        count = len(trace.spans())
    finally:
        trace.disable()
        trace.clear()
    return count


def cached_multiply_s() -> float:
    """Best-of-REPEATS seconds for one warm cached multiply."""
    from repro.core.executor import multiply

    A, B = _operands()
    multiply(A, B, algorithm="strassen", levels=LEVELS)  # warm-up/compile
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(50):
            multiply(A, B, algorithm="strassen", levels=LEVELS)
        best = min(best, (time.perf_counter() - t0) / 50)
    return best


def measure() -> dict:
    """The overhead record: per-span cost, span count, bounded fraction."""
    cost_ns = disabled_span_cost_ns()
    n_spans = spans_per_multiply()
    call_s = cached_multiply_s()
    overhead_s = cost_ns * 1e-9 * n_spans
    return {
        "shape": [N, N, N],
        "algorithm": f"strassen-L{LEVELS}",
        "disabled_span_ns": cost_ns,
        "spans_per_multiply": n_spans,
        "cached_multiply_us": call_s * 1e6,
        "overhead_fraction": overhead_s / call_s,
    }


def test_disabled_tracer_overhead():
    """Acceptance: disabled tracing costs < 2% of a hot cached multiply."""
    rec = measure()
    print(
        f"\ndisabled span: {rec['disabled_span_ns']:.0f} ns/call x "
        f"{rec['spans_per_multiply']} spans vs "
        f"{rec['cached_multiply_us']:.0f} us/multiply -> "
        f"{rec['overhead_fraction'] * 100:.3f}% overhead"
    )
    assert rec["overhead_fraction"] < MAX_OVERHEAD_FRACTION, (
        f"disabled tracer overhead {rec['overhead_fraction'] * 100:.2f}% "
        f"exceeds the {MAX_OVERHEAD_FRACTION * 100:.0f}% bar"
    )


def test_enabled_tracer_records_phases():
    """Sanity: enabling actually records the runtime phase spans."""
    from repro.core.executor import multiply
    from repro.obs import trace

    A, B = _operands()
    multiply(A, B, algorithm="strassen", levels=1)
    trace.enable()
    trace.clear()
    try:
        multiply(A, B, algorithm="strassen", levels=1)
        names = {s.name for s in trace.spans()}
    finally:
        trace.disable()
        trace.clear()
    assert "execute_plan" in names
    assert any(n.startswith("phase:") for n in names)


def main() -> None:
    from repro.bench.reporting import write_bench_json

    rec = measure()
    print("observability overhead: disabled tracer on a hot cached multiply")
    print(f"{'metric':<26} {'value':>12}")
    print(f"{'disabled span ns/call':<26} {rec['disabled_span_ns']:>12.1f}")
    print(f"{'spans per multiply':<26} {rec['spans_per_multiply']:>12d}")
    print(f"{'cached multiply us':<26} {rec['cached_multiply_us']:>12.1f}")
    print(f"{'overhead fraction':<26} {rec['overhead_fraction']:>11.5f}")
    out = write_bench_json("observability", {"points": [rec]})
    print(f"[saved {out}]")


if __name__ == "__main__":
    main()
