"""Fig. 9 reproduction: hybrid partitions beat homogeneous ones at k = 1200.

k = 1200 ~ 2 x 3 x k_C on the paper's machine, so two-level hybrids that
split k as 2 x 3 (<2,2,2>+<2,3,2>, <2,2,2>+<3,3,3>) fit the packing
granularity better than <2,2,2>^2 (k split 4) or <3,3,3>^2 (k split 9).
ABC variant throughout (rank-k regime), 1 core and 10 cores.
"""

from __future__ import annotations

import pytest

from conftest import print_and_save
from repro.bench.runner import run_series
from repro.bench.workloads import fig9_sweep

CONFIGS = [
    ("<2,2,2> 1L", "strassen", 1),
    ("<2,3,2> 1L", (2, 3, 2), 1),
    ("<3,3,3> 1L", (3, 3, 3), 1),
    ("<2,2,2>^2", "strassen", 2),
    ("<2,3,2>^2", (2, 3, 2), 2),
    ("<3,3,3>^2", (3, 3, 3), 2),
    ("<2,2,2>+<2,3,2>", ["strassen", "<2,3,2>"], 1),
    ("<2,2,2>+<3,3,3>", ["strassen", "<3,3,3>"], 1),
]


def build(machine):
    sweep = fig9_sweep()
    series = [run_series(sweep, None, 1, "abc", machine, tier="sim", label="BLIS")]
    for label, spec, levels in CONFIGS:
        series.append(
            run_series(sweep, spec, levels, "abc", machine, tier="sim", label=label)
        )
    return series


@pytest.mark.parametrize("cores", [1, 10])
def test_fig9_hybrid_beats_homogeneous(benchmark, cores):
    from repro.model.machines import ivy_bridge_e5_2680_v2

    machine = ivy_bridge_e5_2680_v2(cores)
    series = benchmark.pedantic(build, args=(machine,), rounds=1, iterations=1)
    print_and_save(f"fig9_{cores}core", series)

    by_label = {s.label: s for s in series}
    big = -1  # largest m = n point
    hybrid232 = by_label["<2,2,2>+<2,3,2>"].gflops()[big]
    hybrid333 = by_label["<2,2,2>+<3,3,3>"].gflops()[big]
    homo2 = by_label["<2,2,2>^2"].gflops()[big]
    homo3 = by_label["<3,3,3>^2"].gflops()[big]
    gemm = by_label["BLIS"].gflops()[big]

    # The paper's claim: hybrids win over two-level homogeneous partitions
    # at k = 1200, and everything fast beats GEMM at large m = n.
    assert max(hybrid232, hybrid333) > max(homo2, homo3)
    assert max(hybrid232, hybrid333) > gemm

    if cores == 10:
        # Bandwidth contention compresses the spread (paper §5.2) but the
        # hybrid advantage survives.
        one_core = {s.label: s for s in build(ivy_bridge_e5_2680_v2(1))}
        spread_1 = one_core["<2,2,2>+<2,3,2>"].gflops()[big] / one_core["BLIS"].gflops()[big]
        spread_10 = hybrid232 / gemm
        assert spread_10 < spread_1


def test_fig9_k_granularity_effect(paper_machine, benchmark):
    """The hybrid advantage is specifically a k-granularity effect.

    With k = 1200 and k_C = 256, a 2x3 split of k gives sub-k = 200 per
    packing pass... the key comparison the paper draws is against the 4-way
    k split of <2,2,2>^2 (sub-k = 300 -> two ragged k_C passes).
    """

    def measure():
        from repro.bench.runner import run_series

        sweep = [(14400, 1200, 14400)]
        hy = run_series(sweep, ["strassen", "<2,3,2>"], 1, "abc", paper_machine, tier="sim")
        ho = run_series(sweep, "strassen", 2, "abc", paper_machine, tier="sim")
        return hy.gflops()[0], ho.gflops()[0]

    hy, ho = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert hy > ho
