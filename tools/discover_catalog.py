#!/usr/bin/env python
"""Offline driver: search for the irreducible base-case algorithms.

Runs the ALS -> LM-polish -> gauge-sparsify -> round pipeline for each base
shape that cannot be constructed exactly by transforms, across many seeds in
parallel, and writes any exact triple found to
``src/repro/algorithms/data/<m>_<k>_<n>_<rank>.json``.

Usage:  python tools/discover_catalog.py [--budget SECONDS] [--targets m,k,n,R ...]
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.algorithms.loader import save_json  # noqa: E402
from repro.search.discovery import discover  # noqa: E402

# (m, k, n, rank): the paper's Fig.-2 base cases beyond transform reach.
DEFAULT_TARGETS = [
    (2, 3, 3, 15),
    (3, 3, 3, 23),
    (2, 3, 4, 20),
    (3, 4, 3, 29),
    (4, 2, 4, 26),
    (3, 5, 3, 36),
    (3, 3, 6, 40),
]


def _search_one(args):
    m, k, n, rank, seed, budget = args
    algo, rep = discover(
        m, k, n, rank,
        max_restarts=10_000,
        time_budget=budget,
        seed=seed,
        als_iters=1500,
    )
    return (m, k, n, rank, seed, algo, rep)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--budget", type=float, default=600.0, help="seconds per worker")
    ap.add_argument("--seeds", type=int, default=3, help="parallel seeds per target")
    ap.add_argument("--targets", nargs="*", default=None, help="m,k,n,R tuples")
    args = ap.parse_args()

    targets = DEFAULT_TARGETS
    if args.targets:
        targets = [tuple(int(x) for x in t.split(",")) for t in args.targets]

    out_dir = REPO / "src" / "repro" / "algorithms" / "data"
    done: set[tuple[int, int, int, int]] = set()
    jobs = []
    for m, k, n, rank in targets:
        path = out_dir / f"{m}_{k}_{n}_{rank}.json"
        if path.exists():
            print(f"skip <{m},{k},{n}>:{rank} (already on disk)")
            done.add((m, k, n, rank))
            continue
        for s in range(args.seeds):
            jobs.append((m, k, n, rank, 1000 * s + hash((m, k, n)) % 997, args.budget))

    t0 = time.time()
    with ProcessPoolExecutor(max_workers=min(len(jobs), 20) or 1) as pool:
        futs = {pool.submit(_search_one, j): j for j in jobs}
        for fut in as_completed(futs):
            m, k, n, rank, seed, algo, rep = fut.result()
            key = (m, k, n, rank)
            tag = f"<{m},{k},{n}>:{rank} seed={seed}"
            if algo is None or key in done:
                print(
                    f"[{time.time() - t0:7.1f}s] {tag}: {rep.found} "
                    f"(best residual {rep.best_residual:.2e}, "
                    f"{rep.restarts} restarts)"
                )
                continue
            if "exact" in algo.source:
                done.add(key)
                p = save_json(algo, out_dir / f"{m}_{k}_{n}_{rank}.json")
                print(f"[{time.time() - t0:7.1f}s] {tag}: EXACT -> {p.name}")
            else:
                p = save_json(algo, out_dir / f"{m}_{k}_{n}_{rank}.float.json")
                print(f"[{time.time() - t0:7.1f}s] {tag}: float -> {p.name}")
    missing = [t for t in targets if t not in done]
    print("missing:", missing or "none")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
