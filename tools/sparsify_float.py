#!/usr/bin/env python
"""Reduce the nnz of float catalog entries via gauge + zero-pattern fixing.

For each ``*.float.json`` without an exact sibling, repeatedly: optimize a
sparsifying gauge from a random start, pin near-zero entries, re-solve the
rest, and keep the sparsest verified result.  Overwrites the float file in
place when it improves nnz.

Usage: python tools/sparsify_float.py [--budget S] [--seeds N]
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.algorithms.loader import load_json, save_json  # noqa: E402
from repro.core.fmm import FMMAlgorithm  # noqa: E402
from repro.search.als import als_decompose  # noqa: E402
from repro.search.fixing import sparsify_zeros  # noqa: E402
from repro.search.gauge import sparsify_gauge  # noqa: E402
from repro.search.rounding import normalize_columns  # noqa: E402


def _attack(args):
    path_str, seed, budget = args
    algo = load_json(path_str)
    m, k, n = algo.dims
    rng = np.random.default_rng(seed)
    best = None
    best_nnz = sum(algo.nnz_uvw())
    t0 = time.time()
    U, V, W = algo.U, algo.V, algo.W
    tries = 0
    while time.time() - t0 < budget:
        tries += 1
        if tries % 4 == 0:  # fresh decomposition, new orbit point
            res = als_decompose(m, k, n, algo.rank, rng, max_iter=2500)
            if res.residual > 1e-8:
                res = als_decompose(
                    m, k, n, algo.rank, rng, max_iter=3000,
                    mu_start=1e-8, mu_end=1e-12, init=(res.U, res.V, res.W),
                )
            if res.residual > 1e-9:
                continue
            U, V, W = res.U, res.V, res.W
        Ug, Vg, Wg = sparsify_gauge(
            U, V, W, m, k, n, rng, restarts=4,
            eps_schedule=(0.3, 0.03, 0.003) if tries % 2 else (0.1, 0.01, 0.001),
        )
        Ug, Vg, Wg = normalize_columns(Ug, Vg, Wg)
        for tol in (0.12, 0.06, 0.03):
            out = sparsify_zeros(Ug, Vg, Wg, m, k, n, zero_tol=tol)
            if out.factors is None:
                continue
            nz = sum(int(np.count_nonzero(x)) for x in out.factors)
            if nz < best_nnz:
                cand = FMMAlgorithm(
                    m=m, k=k, n=n,
                    U=out.factors[0], V=out.factors[1], W=out.factors[2],
                    name=algo.name,
                    source=algo.source + f"+zero-sparsified(seed={seed})",
                )
                if cand.is_valid(tol=1e-9):
                    best, best_nnz = cand, nz
    return (path_str, seed, best, best_nnz, tries)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--budget", type=float, default=900.0)
    ap.add_argument("--seeds", type=int, default=5)
    args = ap.parse_args()

    data = REPO / "src" / "repro" / "algorithms" / "data"
    jobs = []
    for fl in sorted(data.glob("*.float.json")):
        if (data / fl.name.replace(".float", "")).exists():
            continue
        for s in range(args.seeds):
            jobs.append((str(fl), 40_000 + 977 * s + len(fl.name), args.budget))
    if not jobs:
        print("nothing to sparsify")
        return 0

    best_by_file: dict[str, tuple[int, FMMAlgorithm]] = {}
    t0 = time.time()
    with ProcessPoolExecutor(max_workers=min(len(jobs), 20)) as pool:
        futs = [pool.submit(_attack, j) for j in jobs]
        for fut in as_completed(futs):
            path_str, seed, algo, nz, tries = fut.result()
            name = Path(path_str).name
            if algo is None:
                print(f"[{time.time() - t0:7.1f}s] {name} seed={seed}: "
                      f"no improvement ({tries} tries)")
                continue
            cur = best_by_file.get(path_str)
            if cur is None or nz < cur[0]:
                best_by_file[path_str] = (nz, algo)
                save_json(algo, path_str)
                print(f"[{time.time() - t0:7.1f}s] {name} seed={seed}: "
                      f"nnz -> {nz} (saved)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
