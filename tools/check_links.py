#!/usr/bin/env python
"""Offline markdown link checker for README.md and docs/.

Verifies every ``[text](target)`` and bare reference in the given
markdown files:

* relative file targets must exist (anchors are stripped first);
* ``#anchor`` targets — same-file or cross-file — must match a heading
  slug in the target document (GitHub slug rules, simplified);
* ``http(s)``/``mailto`` targets are format-checked only (CI runs
  offline; no network fetches).

Exit status 1 when any link is broken, listing every failure.

Usage: python tools/check_links.py [files...]   (default: README.md docs/*.md)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the matching paren.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug (lowercase, spaces->dashes, punct dropped)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(md_path: Path) -> set[str]:
    text = _CODE_FENCE_RE.sub("", md_path.read_text())
    return {_slugify(h) for h in _HEADING_RE.findall(text)}


def check_file(md_path: Path) -> list[str]:
    """All broken-link descriptions for one markdown file."""
    problems: list[str] = []
    text = _CODE_FENCE_RE.sub("", md_path.read_text())
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://")):
            if " " in target or "://" not in target:
                problems.append(f"{md_path}: malformed URL {target!r}")
            continue
        if target.startswith("mailto:"):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            dest = (md_path.parent / path_part).resolve()
            if not dest.exists():
                problems.append(f"{md_path}: missing file target {target!r}")
                continue
        else:
            dest = md_path
        if anchor and dest.suffix == ".md":
            if _slugify(anchor) not in _anchors(dest):
                problems.append(
                    f"{md_path}: anchor {'#' + anchor!r} not found in {dest.name}"
                )
    return problems


def main(argv=None) -> int:
    args = (argv if argv is not None else sys.argv[1:])
    if args:
        files = [Path(a) for a in args]
    else:
        files = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

    problems: list[str] = []
    for f in files:
        if not f.exists():
            problems.append(f"{f}: file does not exist")
            continue
        problems.extend(check_file(f))

    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all links ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
