#!/usr/bin/env python
"""Post-process float decompositions into exact discrete triples.

Round-1 discovery often lands machine-precision *float* decompositions at
the target rank whose entries are generic (a point on the symmetry-group
orbit).  This tool re-attacks each ``*.float.json`` with many gauge
sparsification restarts and incremental rounding, writing the exact triple
next to it on success.

Usage: python tools/refine_float.py [--attempts N] [--budget SECONDS]
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.algorithms.loader import load_json, save_json  # noqa: E402
from repro.core.fmm import FMMAlgorithm  # noqa: E402
from repro.search.als import als_decompose, lm_polish  # noqa: E402
from repro.search.fixing import incremental_rounding  # noqa: E402
from repro.search.gauge import sparsify_gauge  # noqa: E402
from repro.search.rounding import discretize, normalize_columns  # noqa: E402


def _one_attempt(args):
    path_str, seed, budget = args
    path = Path(path_str)
    algo = load_json(path)
    m, k, n, rank = algo.m, algo.k, algo.n, algo.rank
    rng = np.random.default_rng(seed)
    t0 = time.time()
    U, V, W = algo.U, algo.V, algo.W
    attempt = 0
    while time.time() - t0 < budget:
        attempt += 1
        # Re-randomize the orbit point: apply the gauge optimizer from a
        # random start, sometimes after regenerating a fresh ALS solution.
        if attempt % 3 == 0:
            res = als_decompose(m, k, n, rank, rng, max_iter=2000)
            if res.residual > 0.5:
                continue
            pol = lm_polish(res.U, res.V, res.W, m, k, n, max_nfev=1200)
            if pol.residual > 1e-8:
                continue
            U, V, W = pol.U, pol.V, pol.W
        Ug, Vg, Wg = sparsify_gauge(
            U, V, W, m, k, n, rng,
            restarts=3,
            eps_schedule=(0.2, 0.02, 0.002) if attempt % 2 else (0.1, 0.01, 0.001),
        )
        got = discretize(Ug, Vg, Wg, m, k, n)
        if got is None:
            fix = incremental_rounding(*normalize_columns(Ug, Vg, Wg), m, k, n)
            got = fix.factors
        if got is not None:
            out = FMMAlgorithm(
                m=m, k=k, n=n, U=got[0], V=got[1], W=got[2],
                name=f"<{m},{k},{n}>:{rank}",
                source=f"als-search+gauge-refine(seed={seed},exact)",
            ).validate()
            return (path_str, seed, out, attempt)
    return (path_str, seed, None, attempt)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--budget", type=float, default=600.0)
    ap.add_argument("--seeds", type=int, default=6)
    args = ap.parse_args()

    data = REPO / "src" / "repro" / "algorithms" / "data"
    jobs = []
    for fl in sorted(data.glob("*.float.json")):
        exact = data / fl.name.replace(".float", "")
        if exact.exists():
            continue
        for s in range(args.seeds):
            jobs.append((str(fl), 7000 + 131 * s + len(fl.name), args.budget))
    if not jobs:
        print("nothing to refine")
        return 0

    done: set[str] = set()
    t0 = time.time()
    with ProcessPoolExecutor(max_workers=min(len(jobs), 20)) as pool:
        futs = {pool.submit(_one_attempt, j): j for j in jobs}
        for fut in as_completed(futs):
            path_str, seed, algo, attempts = fut.result()
            name = Path(path_str).name
            if algo is None or path_str in done:
                print(f"[{time.time() - t0:7.1f}s] {name} seed={seed}: no ({attempts} attempts)")
                continue
            done.add(path_str)
            exact = Path(path_str).with_name(name.replace(".float", ""))
            save_json(algo, exact)
            print(f"[{time.time() - t0:7.1f}s] {name} seed={seed}: EXACT -> {exact.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
