#!/usr/bin/env python
"""Live algorithm discovery: find Strassen's rank-7 algorithm from scratch.

Runs the search substrate end to end on the smallest interesting case:
CP-ALS on the <2,2,2> tensor at rank 7, Levenberg-Marquardt polish, gauge
(symmetry-group) sparsification, and incremental rounding to an exact
discrete triple — machine-verified against the Brent equations over the
rationals.  Typically finishes in a few seconds.

Run:  python examples/discover_algorithm.py
"""

import numpy as np

from repro.core.fmm import nnz
from repro.search.brent import verify_brent_exact
from repro.search.discovery import discover

print("searching for a <2,2,2> rank-7 algorithm (Strassen's rank) ...")
algo, report = discover(2, 2, 2, 7, max_restarts=40, time_budget=90, seed=0)

print(f"restarts: {report.restarts}, polished: {report.polished}, "
      f"elapsed: {report.elapsed:.1f}s, outcome: {report.found}")
if algo is None:
    raise SystemExit("no luck this run — try a different seed")

print(f"\nfound {algo.name}  (source: {algo.source})")
print(f"nnz(U), nnz(V), nnz(W) = {nnz(algo.U)}, {nnz(algo.V)}, {nnz(algo.W)}"
      "  (Strassen's own triple has 12, 12, 12)")
print("exact rational Brent verification:",
      verify_brent_exact(algo.U, algo.V, algo.W, 2, 2, 2))

print("\nU =")
print(algo.U)

rng = np.random.default_rng(0)
A = rng.standard_normal((64, 64))
B = rng.standard_normal((64, 64))
C = np.zeros((64, 64))
algo.apply_once(A, B, C)
print("\nusing it to multiply: max |C - AB| =", np.abs(C - A @ B).max())
