#!/usr/bin/env python
"""Blocked LU factorization powered by FMM trailing updates.

The rank-k update inside blocked LU is exactly the matrix shape the paper
optimizes for (m, n large; k = panel width).  This example factors a
matrix with the classical update and with one-/two-level Strassen updates,
compares backward error and solve accuracy, and reports what the paper's
performance model predicts for the trailing updates at LAPACK-like scale.

Run:  python examples/lu_factorization.py
"""

import numpy as np

import repro
from repro.apps.lu import backward_error, lu_factor, lu_solve

rng = np.random.default_rng(7)
n, block = 384, 96
A = rng.standard_normal((n, n)) + n * np.eye(n)
x_true = rng.standard_normal(n)
b = A @ x_true

print(f"factoring {n}x{n}, panel width {block}:")
for label, kwargs in [
    ("classical update", dict(use_fmm=False)),
    ("strassen 1-level", dict(algorithm="strassen", levels=1)),
    ("strassen 2-level", dict(algorithm="strassen", levels=2)),
    ("<4,2,4> 1-level", dict(algorithm=(4, 2, 4), levels=1)),
]:
    res = lu_factor(A, block=block, **kwargs)
    x = lu_solve(res, b)
    print(f"  {label:<18} backward err {backward_error(A, res):.2e}   "
          f"solve err {np.abs(x - x_true).max():.2e}   "
          f"({res.updates} trailing updates)")

# What the model says about the trailing updates at production scale.
mach = repro.ivy_bridge_e5_2680_v2(1)
m_trail, k_panel = 14400, 256
gemm = repro.predict_gemm(m_trail, k_panel, m_trail, mach)
fmm = repro.predict_fmm(
    m_trail, k_panel, m_trail, repro.resolve_levels("strassen", 1), "abc", mach
)
print(f"\nmodeled trailing update ({m_trail}x{k_panel} rank-{k_panel}) on "
      f"{mach.name}:")
print(f"  BLIS gemm     {gemm.effective_gflops:6.2f} GFLOPS")
print(f"  strassen/abc  {fmm.effective_gflops:6.2f} GFLOPS "
      f"({(gemm.time / fmm.time - 1) * 100:+.1f}%)")
