#!/usr/bin/env python
"""Mixed-level schedules on skewed shapes: the right family member wins.

A tall-skinny x wide product (m, n >> k) is a bad fit for square <2,2,2>
recursion: every Strassen level halves k too, and k is already small.
Rectangular catalog entries like <3,2,3> cut m and n by 3 while touching
k only by 2 — and mixed schedules place a rectangular split at the outer
level with square recursion below it.  ``engine="auto"`` finds this by
itself: ``hybrid_shapes_for`` widens the candidate schedules with the
catalog shapes matching the problem's aspect ratio.

Run:  PYTHONPATH=src python examples/rectangular.py
"""

import time

import numpy as np

import repro

M, K, N = 1152, 384, 1152  # tall-skinny x wide: m = n = 3k

rng = np.random.default_rng(0)
A = rng.standard_normal((M, K))
B = rng.standard_normal((K, N))


def best_of(algorithm, levels=1, reps=5):
    C = np.zeros((M, N))
    repro.multiply(A, B, C, algorithm=algorithm, levels=levels)  # warm
    best = float("inf")
    for _ in range(reps):
        C[:] = 0.0
        t0 = time.perf_counter()
        repro.multiply(A, B, C, algorithm=algorithm, levels=levels)
        best = min(best, time.perf_counter() - t0)
    return best, C


# -- what does the model-guided selector pick for this skew? ----------- #
algo, levels, variant, engine, threads, backend = repro.auto_config(
    M, K, N, tune="off"
)
schedule = repro.Schedule(tuple(tuple(s) for s in algo)) \
    if algo != "classical" else repro.Schedule(("classical",))
print(f"problem {M}x{K}x{N} (aspect m/k = {M / K:.1f})")
print(f"auto pick: schedule {schedule.signature!r}, variant {variant!r}")
print("hybrid shapes considered:",
      ", ".join("<%d,%d,%d>" % s for s in repro.hybrid_shapes_for(M, K, N)))

# -- measure the family members against each other --------------------- #
configs = [
    ("pure square  strassen@1", "strassen", 1),
    ("pure square  strassen@2", "strassen", 2),
    ("rectangular  <3,2,3>@1", "<3,2,3>", 1),
    ("mixed        <3,2,3>@1,strassen@1", "<3,2,3>@1,strassen@1", 1),
    ("auto's pick", algo, levels),
]
print(f"\n{'schedule':<36} {'time ms':>9} {'GFLOPS':>8} {'max err':>10}")
flops = 2.0 * M * K * N
times = {}
for label, a, lv in configs:
    t, C = best_of(a, lv)
    times[label] = t
    err = float(np.abs(C - A @ B).max())
    print(f"{label:<36} {t * 1e3:9.1f} {flops / t / 1e9:8.2f} {err:10.2e}")

square = min(times["pure square  strassen@1"], times["pure square  strassen@2"])
rect = times["rectangular  <3,2,3>@1"]
verdict = ("beat" if rect < square else
           "matched" if rect <= square * 1.05 else "trailed")
print(f"\nEvery schedule is exact; the rectangular family member {verdict} "
      f"the best pure-square schedule here\n({rect * 1e3:.1f} ms vs "
      f"{square * 1e3:.1f} ms) — the paper's point: pick the <m,k,n> whose "
      f"aspect fits the problem.")
print("Schedule strings accept any catalog atom: "
      "repro.multiply(A, B, algorithm='strassen@2,smirnov333@1').")
