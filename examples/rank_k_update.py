#!/usr/bin/env python
"""Rank-k updates: the shape where this paper beats prior FMM work.

Rank-k updates (m, n large; k small) dominate blocked dense factorizations
(LU, QR, Cholesky) — the workloads the paper's introduction motivates.
Prior FMM implementations lose to GEMM there; the generator's ABC variant
wins because the operand sums ride along with packing and no M_r buffer
exists.  This example sweeps k at fixed m = n, reporting the performance
model's Effective GFLOPS on the paper's testbed and measuring real wall
clock at reduced scale on this machine.

Run:  python examples/rank_k_update.py
"""


import repro
from repro.bench.runner import measure_wall, run_series

mach = repro.ivy_bridge_e5_2680_v2(1)
m = n = 14400

print(f"Modeled Effective GFLOPS on {mach.name} (m=n={m}):")
print(f"{'k':>6}  {'GEMM':>7}  {'ABC':>7}  {'AB':>7}  {'Naive':>7}  winner")
for k in (256, 512, 1024, 2048, 4096, 8192, 12000):
    sweep = [(m, k, n)]
    g = run_series(sweep, None, 1, "abc", mach, tier="model").gflops()[0]
    rows = {}
    for var in ("abc", "ab", "naive"):
        rows[var] = run_series(sweep, "strassen", 1, var, mach, tier="model").gflops()[0]
    best = max(rows, key=rows.get)
    print(f"{k:>6}  {g:7.2f}  {rows['abc']:7.2f}  {rows['ab']:7.2f}"
          f"  {rows['naive']:7.2f}  {best}")

print("\nReal wall-clock on this machine (reduced scale, m=n=1440):")
ml = repro.resolve_levels("strassen", 1)
for k in (128, 480, 1024):
    t_np = measure_wall(1440, k, 1440, None, "abc", repeats=3)
    t_fmm = measure_wall(1440, k, 1440, ml, "abc", repeats=3)
    print(f"  k={k:5d}: numpy {t_np * 1e3:7.2f} ms   strassen-direct "
          f"{t_fmm * 1e3:7.2f} ms   ratio {t_np / t_fmm:.2f}x")

print("\n(The pure-Python engine cannot beat native BLAS wall-clock; the "
      "modeled numbers show what the generated C implementations achieve.)")
