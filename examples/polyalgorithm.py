#!/usr/bin/env python
"""Model-guided poly-algorithm selection (paper §4.4 / Fig. 8).

For each problem size/shape, the generator's performance model ranks every
implementation in the family (23 shapes x levels x hybrids x 3 variants)
and the top-2 are measured to pick a winner — no exhaustive search.  This
example shows the selected implementation changing with problem shape,
exactly the poly-algorithm behaviour the paper advocates.

Run:  python examples/polyalgorithm.py
"""

import repro
from repro.blis.simulator import simulate_time
from repro.model.perfmodel import effective_gflops

mach = repro.ivy_bridge_e5_2680_v2(1)

problems = [
    ("square small", (1440, 1440, 1440)),
    ("square large", (12000, 12000, 12000)),
    ("rank-480 update", (14400, 480, 14400)),
    ("rank-1200 update", (14400, 1200, 14400)),
    ("outer-panel (k=m, n small)", (12000, 12000, 1200)),
    ("tall-skinny C (m large)", (14400, 2400, 2400)),
]

print(f"{'problem':<28} {'m x k x n':<20} {'selected':<24} {'GF(sel)':>8} {'GF(gemm)':>9}")
for name, (m, k, n) in problems:
    winner, ranked = repro.select(m, k, n, mach, top=2)
    t_sel = simulate_time(m, k, n, winner.multilevel(), winner.variant, mach)
    t_gemm = simulate_time(m, k, n, None, "abc", mach)
    print(
        f"{name:<28} {f'{m}x{k}x{n}':<20} {winner.label:<24} "
        f"{effective_gflops(m, k, n, t_sel):8.2f} "
        f"{effective_gflops(m, k, n, t_gemm):9.2f}"
    )

print("\nTop-5 model ranking for the rank-1200 update:")
_, ranked = repro.select(14400, 1200, 14400, mach, top=2)
for c in ranked[:5]:
    print(f"  {c.label:<26} predicted {c.prediction.effective_gflops:7.2f} GF")
