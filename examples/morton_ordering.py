#!/usr/bin/env python
"""Recursive block storage indexing — reproduces the paper's Fig. 3.

Multi-level FMM indexes operand blocks in recursive (Morton-like) order so
the Kronecker-product coefficients line up with memory locality.  This
example prints the exact 8x8 grid of Fig. 3 (three levels of <2,2>
splitting) and a hybrid example, then shows the permutation to flat
row-major order.

Run:  python examples/morton_ordering.py
"""

from repro.core.morton import block_index_grid, recursive_to_rowmajor

print("Fig. 3: three-level <2,2> recursive block indexing of A (8x8 blocks)")
grid = block_index_grid([(2, 2)] * 3)
for row in grid:
    print("  " + " ".join(f"{v:2d}" for v in row))

print("\nHybrid two-level <2,3> over <3,2> indexing (6x6 blocks):")
grid2 = block_index_grid([(2, 3), (3, 2)])
for row in grid2:
    print("  " + " ".join(f"{v:2d}" for v in row))

perm = recursive_to_rowmajor([(2, 2), (2, 2)])
print("\nRecursive -> row-major permutation for two-level <2,2>:")
print(" ", perm.tolist())
print("(block visited 4th in recursive order sits at flat position"
      f" {perm[4]} of the 4x4 grid)")
