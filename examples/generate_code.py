#!/usr/bin/env python
"""The code generator's visible output: emit and run a specialized source.

The paper's framework generates C; this reproduction emits standalone
NumPy Python with the operand linear combinations fully unrolled.  The
emitted function is shape-generic (dynamic peeling built in) and depends
on nothing but the interpreter.

Run:  python examples/generate_code.py
"""

import numpy as np

import repro
from repro.core.codegen import compile_plan
from repro.core.plan import build_plan

# Generate one-level Strassen, ABC flavor.
ml = repro.resolve_levels("strassen", 1)
plan = build_plan(1024, 1024, 1024, ml, "abc")
fn, src = compile_plan(plan)

print("=" * 72)
print(src)
print("=" * 72)

rng = np.random.default_rng(1)
A = rng.standard_normal((513, 740))
B = rng.standard_normal((740, 299))
C = fn(A, B, np.zeros((513, 299)))
print("generated fn max |C - AB| =", np.abs(C - A @ B).max())

# A hybrid two-level plan: <2,2,2> outer, <3,2,3> inner -> <6,4,6> overall.
ml2 = repro.resolve_levels(["strassen", "<3,2,3>"])
plan2 = build_plan(600, 400, 600, ml2, "ab")
fn2, src2 = compile_plan(plan2, "fmm_hybrid_626")
print(f"\nhybrid plan: {plan2.rank_total} products, "
      f"{plan2.operation_counts()}")
C2 = fn2(A, B, np.zeros((513, 299)))
print("hybrid fn max |C - AB|    =", np.abs(C2 - A @ B).max())
print(f"(emitted {len(src2.splitlines())} lines of Python)")
