#!/usr/bin/env python
"""Pluggable leaf-kernel backends: interpreter vs per-plan compiled kernels.

The direct engine's hot loop is a pluggable ``LeafBackend``
(``repro.kernels``).  The ``reference`` backend interprets the compiled
plan's task graph step by step — the exactness baseline.  The
``specialized`` backend exec-compiles one numpy function per plan
(coefficients unrolled into the source, gather/scatter index vectors
precomputed) and caches it on the plan itself, removing the per-step
dispatch that dominates multi-level schedules over small blocks.

This walkthrough: enumerate the registry, race the two backends on one
plan, show the compile-once/cache-hit behavior and the delegation rules,
and let ``engine="auto"`` pick the backend via the performance model.

Run:  python examples/backends.py
"""

import time

import numpy as np

import repro
from repro import kernels

rng = np.random.default_rng(7)
A = rng.standard_normal((96, 96))
B = rng.standard_normal((96, 96))

# ---------------------------------------------------------------- registry
print("registered backends:")
for info in kernels.backend_infos():
    status = "available" if info.available else f"needs {info.requires}"
    print(f"  {info.name:<12} [{status}] {info.summary}")

# ------------------------------------------------------- race the backends
print("\nstrassen@3 on 96x96 (343 leaf products -> interpreter-bound):")
for backend in ("reference", "specialized"):
    repro.multiply(A, B, algorithm="strassen", levels=3,
                   backend=backend)  # warm: plan + kernel compile
    t0 = time.perf_counter()
    for _ in range(20):
        C = repro.multiply(A, B, algorithm="strassen", levels=3,
                           backend=backend)
    ms = (time.perf_counter() - t0) / 20 * 1e3
    rep = repro.last_report()
    err = np.abs(C - A @ B).max()
    print(f"  {backend:<12} {ms:6.2f} ms/call  path={rep.backend_path:<11} "
          f"kernel_cached={rep.kernel_cached}  max err {err:.2e}")

# The specialized kernel is compiled once per plan and cached with it:
stats = kernels.get_backend("specialized").cache_stats()
print(f"\nspecialized cache: {stats['kernels']} kernel(s), "
      f"{stats['compiles']} compile(s), {stats['hits']} hit(s)")

# ------------------------------------------------------------- delegation
# Calls the compiled kernel cannot serve fall back to the interpreter —
# observable on the report, never silent, never wrong.
repro.multiply(A, B, algorithm="strassen", levels=2,
               backend="specialized", threads=2)
rep = repro.last_report()
print(f"\nthreads=2 with backend=specialized -> "
      f"backend_path={rep.backend_path} (delegated)")

# ------------------------------------------------------------ auto engine
# Under engine="auto" the backend is a priced dimension: the model adds
# each backend's per-call dispatch overhead, the tuner can overrule it
# empirically, and wisdom remembers the verdict.
C = repro.multiply(A, B, engine="auto")
rep = repro.last_report()
print(f"\nengine='auto' picked backend={rep.backend} "
      f"(path={rep.backend_path}); max err "
      f"{np.abs(C - A @ B).max():.2e}")
