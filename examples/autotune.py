#!/usr/bin/env python
"""Empirical autotuning with persistent wisdom: cold model vs tuned dispatch.

``multiply(engine="auto")`` normally prices every candidate implementation
with the performance model on the first call for each problem shape — the
cold-model cost a fresh process pays again and again.  The tune subsystem
measures the model's favorites once, persists the verdicts in a wisdom
file (ATLAS/FFTW style), and from then on every process dispatches on a
dict probe: ``tune="readonly"`` consults wisdom first and falls back to
the model.

Run:  python examples/autotune.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.core import selection
from repro.tune import WisdomStore, set_default_store, tune_problem

SHAPES = [(64, 64, 64), (128, 128, 128), (256, 32, 256)]

rng = np.random.default_rng(0)
ops = {s: (rng.standard_normal(s[:2]), rng.standard_normal(s[1:])) for s in SHAPES}


def cold_dispatch_ms(tune_mode: str, store: WisdomStore) -> dict:
    """Per-shape first-call latency as a fresh process would see it."""
    out = {}
    for shape, (A, B) in ops.items():
        selection._model_config.cache_clear()  # what a restart forgets
        store.load()                           # what a restart remembers
        t0 = time.perf_counter()
        repro.multiply(A, B, engine="auto", tune=tune_mode)
        out[shape] = (time.perf_counter() - t0) * 1e3
    return out


with tempfile.TemporaryDirectory() as td:
    store = WisdomStore(Path(td) / "wisdom.json")
    set_default_store(store)
    try:
        # Warm the plan cache so both paths time pure dispatch + execute.
        for A, B in ops.values():
            repro.multiply(A, B, engine="auto", tune="off")

        cold = cold_dispatch_ms("off", store)

        print("tuning each problem class once (measures model top-2 + GEMM)...")
        for m, k, n in SHAPES:
            rep = tune_problem(m, k, n, store=store, top=2, budget_s=1.0)
            note = "  <- measurement overturned the model" if rep.beat_model else ""
            print(f"  {m}x{k}x{n}: winner {rep.winner.label} "
                  f"({rep.winner.gflops:.2f} GF){note}")

        tuned = cold_dispatch_ms("readonly", store)

        print(f"\n{'shape':<14} {'cold model ms':>14} {'tuned ms':>10} {'speedup':>8}")
        for s in SHAPES:
            label = "x".join(str(d) for d in s)
            print(f"{label:<14} {cold[s]:14.2f} {tuned[s]:10.2f} "
                  f"{cold[s] / tuned[s]:7.1f}x")
        print(f"\nwisdom file ({len(store)} entries) survives restarts: "
              f"{store.path.name}")
    finally:
        set_default_store(None)
