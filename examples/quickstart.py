#!/usr/bin/env python
"""Quickstart: multiply matrices with a generated FMM algorithm.

Covers the one-call API, multi-level and hybrid compositions, arbitrary
(non-divisible) sizes via dynamic peeling, and a peek at the catalog.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

rng = np.random.default_rng(0)

# --- one-level Strassen on a non-divisible size -------------------------
A = rng.standard_normal((1001, 777))
B = rng.standard_normal((777, 1234))
C = repro.multiply(A, B, algorithm="strassen")
print("one-level Strassen   max |C - AB| =", np.abs(C - A @ B).max())

# --- two-level (Kronecker) Strassen --------------------------------------
C2 = repro.multiply(A, B, algorithm="strassen", levels=2)
print("two-level Strassen   max |C - AB| =", np.abs(C2 - A @ B).max())

# --- a hybrid composition: different algorithm per level ----------------
C3 = repro.multiply(A, B, algorithm=["strassen", "<3,2,3>"])
print("hybrid <2,2,2>+<3,2,3> max err    =", np.abs(C3 - A @ B).max())

# --- any member of the Fig.-2 family by shape ----------------------------
C4 = repro.multiply(A, B, algorithm=(4, 2, 4))
print("<4,2,4> (rank %d)    max err     =" % repro.get_algorithm((4, 2, 4)).rank,
      np.abs(C4 - A @ B).max())

# --- the instrumented simulated-BLIS engine ------------------------------
eng = repro.BlockedEngine(variant="abc")
C5 = np.zeros((1001, 1234))
eng.multiply(A, B, C5, repro.resolve_levels("strassen", 1))
print("blocked engine       max err     =", np.abs(C5 - A @ B).max())
print("  counters:", eng.counters)

# --- what the catalog holds ----------------------------------------------
print()
print(repro.catalog_summary())
