#!/usr/bin/env python
"""Hybrid partitions (paper §5.2 / Fig. 9): why k = 1200 wants 2 x 3.

With k_C = 256, a k of 1200 holds ~4.7 panels: a <2,2,2>^2 algorithm
splits k by 4 (sub-k 300 -> ragged 256+44 passes), while the hybrid
<2,2,2>+<2,3,2> splits k by 6 (sub-k 200) and <2,2,2>+<3,3,3> by 6 as
well — matching the packing granularity far better.  The Kronecker
representation makes these hybrids one-liners.

Run:  python examples/hybrid_multilevel.py
"""

import numpy as np

import repro
from repro.bench.runner import run_series
from repro.bench.workloads import fig9_sweep

mach = repro.ivy_bridge_e5_2680_v2(1)
sweep = fig9_sweep()[::3]

configs = [
    ("BLIS gemm", None, 1),
    ("<2,2,2> 1-level", "strassen", 1),
    ("<2,2,2>^2", "strassen", 2),
    ("<3,3,3>^2", (3, 3, 3), 2),
    ("<2,2,2>+<2,3,2>", ["strassen", "<2,3,2>"], 1),
    ("<2,2,2>+<3,3,3>", ["strassen", "<3,3,3>"], 1),
]

print("Effective GFLOPS (simulated, k=1200, 1 core):")
header = f"{'m=n':>7}" + "".join(f"{label:>18}" for label, _, _ in configs)
print(header)
series = [
    run_series(sweep, spec, lv, "abc", mach, tier="sim", label=label)
    for label, spec, lv in configs
]
for i, (m, k, n) in enumerate(series[0].shapes()):
    row = f"{m:>7}" + "".join(f"{s.points[i].gflops:>18.2f}" for s in series)
    print(row)

# Hybrids really do compute the right thing, at full generality.
rng = np.random.default_rng(2)
A = rng.standard_normal((1201, 1199))
B = rng.standard_normal((1199, 1203))
C = repro.multiply(A, B, algorithm=["strassen", "<2,3,2>"])
print("\nhybrid <2,2,2>+<2,3,2> on 1201x1199x1203: max err =",
      np.abs(C - A @ B).max())

ml = repro.resolve_levels(["strassen", "<2,3,2>"])
print("composed algorithm:", ml)
print("k split:", ml.dims_total[1], " products:", ml.rank_total,
      " vs classical", np.prod([a.classical_multiplies for a in ml.levels]))
