"""Parallel execution quickstart: the task-graph runtime on real cores.

``multiply(..., threads=N)`` lowers the compiled plan into a task DAG —
gather the operand blocks into arena workspace, compute the coefficient
products ``M_r``, scatter into conflict-free destination tiles — and runs
it on a reusable worker pool.  ``threads=1`` executes the identical
schedule serially, so parallel results match the serial ones.

Run with ``PYTHONPATH=src python examples/parallel_multiply.py``.
"""

import os

import numpy as np

from repro import (
    arena_stats,
    measured_scaling_curve,
    multiply,
    pick_threads,
    resolve_levels,
)


def main() -> None:
    rng = np.random.default_rng(0)
    n = 512
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))

    # 1. Explicit thread counts: same answer, more cores.
    C1 = multiply(A, B, algorithm="strassen", levels=1, threads=1)
    C4 = multiply(A, B, algorithm="strassen", levels=1, threads=4)
    print(f"serial vs 4-thread max diff: {np.abs(C4 - C1).max():.3e}")
    print(f"vs numpy oracle:             {np.abs(C4 - A @ B).max():.3e}")

    # 2. The workspace arena recycles every temporary: repeated same-plan
    #    multiplies allocate nothing on the hot path.
    before = arena_stats()
    for _ in range(10):
        multiply(A, B, algorithm="strassen", levels=1, threads=4)
    after = arena_stats()
    print(f"arena: {after.allocations} workspaces allocated, "
          f"{after.reuses - before.reuses} reuses over 10 calls")

    # 3. Auto-dispatch also picks the thread count from the machine model.
    t = pick_threads(n, n, n, resolve_levels("strassen", 1))
    print(f"model-picked threads for {n}^3 on this host "
          f"({os.cpu_count()} cores): {t}")
    C = multiply(A, B, engine="auto")
    print(f"engine='auto' max err:       {np.abs(C - A @ B).max():.3e}")

    # 4. Measured strong scaling of the real runtime on this machine.
    threads = tuple(
        t for t in (1, 2, 4) if t <= (os.cpu_count() or 1)
    ) or (1,)
    print(f"\nmeasured scaling at {n}^3 (strassen L1):")
    for p in measured_scaling_curve(n, n, n, threads_list=threads, repeats=2):
        print(f"  {p.cores} thread(s): {p.time * 1e3:7.2f} ms  "
              f"{p.gflops:6.2f} GFLOPS  speedup {p.speedup:4.2f}x")


if __name__ == "__main__":
    main()
