"""Out-of-core property suite: memmap operands, bitwise equality, leaks.

The tiled lowering's reproducibility contract:

* ``fusion="tiled"`` with ``np.memmap``-backed operands is **bitwise**
  identical to the in-core in-RAM result of the same lowering *and* to
  the fused pipeline at the same worker count — across schedules,
  variants, strip heights, and both worker modes (threads and
  processes).
* The measured peak RAM workspace never exceeds the priced tile window
  (``predict_tile_window_bytes``), and the report carries the spill
  accounting (``io_bytes``/``n_tiles``/``tile_window_bytes``).
* A budget-capped soak leaks neither mmap handles nor arena bytes:
  after ``arena_clear()`` + GC the arena reports zero open mmap
  buffers and zero bytes in use.

The PR-7 BLAS row-split tail-kernel caveat is **regression-pinned**
(xfail, not skipped) in :class:`TestRowSplitCaveat`: rectangular/odd
block shapes such as 27^3 are not row-split-stable under this BLAS, and
the runtime's probe gate (:func:`repro.core.tiles.strip_split_is_exact`)
is what keeps the tiled path bitwise-equal anyway — by degrading those
plans to full-block strips.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.core import spec, tiles
from repro.core.executor import multiply
from repro.core.procpool import shutdown_process_pools
from repro.core.runtime import last_report
from repro.core.workspace import arena_clear, arena_stats

# (algorithm, levels, problem) — square and rectangular schedules, one
# and two levels; every problem divides its schedule exactly so the
# whole multiply runs through the core (no fringe noise in the bitwise
# comparison).
SCHEDULES = [
    ("strassen", 2, (64, 64, 64)),
    ("<3,2,3>", 1, (96, 64, 96)),
    ("strassen+<3,2,3>", 2, (96, 64, 96)),
    ("<3,3,3>", 1, (81, 81, 81)),
]
VARIANTS = ["ab", "abc"]
WORKERS = [("threads", 1), ("threads", 2), ("processes", 2)]


@pytest.fixture(scope="module", autouse=True)
def _clean_pools():
    yield
    shutdown_process_pools()


@pytest.fixture(autouse=True)
def _default_tunables():
    yield
    spec.set_runtime_tunables(tile_rows=0, mem_budget_bytes=0)


def _memmap_operands(tmp_path, rng, m, k, n, dtype=np.float64):
    A = np.memmap(tmp_path / "A.dat", dtype=dtype, mode="w+", shape=(m, k))
    B = np.memmap(tmp_path / "B.dat", dtype=dtype, mode="w+", shape=(k, n))
    A[:] = rng.standard_normal((m, k))
    B[:] = rng.standard_normal((k, n))
    A.flush()
    B.flush()
    return A, B


class TestMemmapBitwise:
    @pytest.mark.parametrize("workers,nworkers", WORKERS)
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("algorithm,levels,mkn", SCHEDULES)
    def test_memmap_equals_incore_fused(self, tmp_path, rng, algorithm,
                                        levels, mkn, variant, workers,
                                        nworkers):
        """Tiled x memmap == in-RAM tiled == fused, at every worker mode."""
        m, k, n = mkn
        Am, Bm = _memmap_operands(tmp_path, rng, m, k, n)
        A, B = np.array(Am), np.array(Bm)
        kw = dict(algorithm=algorithm, levels=levels, variant=variant,
                  threads=nworkers, workers=workers)
        ref = multiply(A, B, fusion="fused", **kw)
        spec.set_runtime_tunables(tile_rows=8)
        tiled_ram = multiply(A, B, fusion="tiled", **kw)
        tiled_mmap = multiply(Am, Bm, fusion="tiled", **kw)
        rep = last_report()
        np.testing.assert_array_equal(tiled_ram, ref)
        np.testing.assert_array_equal(tiled_mmap, ref)
        assert rep.fusion == "tiled"
        assert rep.n_tiles > 0
        assert rep.io_bytes > 0
        if workers == "threads":
            assert 0 < rep.peak_workspace_bytes <= rep.tile_window_bytes
        else:
            # The process runtime stages the spilled slabs in shared
            # memory (documented limitation: the strip window is
            # bounded, the slabs stay shm-resident), so its peak
            # reflects the segment, not the RAM window.
            assert rep.tile_window_bytes > 0

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_auto_budget_goes_tiled(self, tmp_path, rng, dtype):
        """fusion="auto" resolves tiled once the slabs exceed the budget,
        and the result matches the explicit in-core lowering bitwise."""
        m = k = n = 64
        Am, Bm = _memmap_operands(tmp_path, rng, m, k, n, dtype)
        A, B = np.array(Am), np.array(Bm)
        ref = multiply(A, B, algorithm="strassen", levels=2, variant="abc",
                       fusion="fused", threads=2)
        spec.set_runtime_tunables(mem_budget_bytes=16 * 1024)
        out = multiply(Am, Bm, algorithm="strassen", levels=2,
                       variant="abc", fusion="auto", threads=2)
        rep = last_report()
        assert rep.fusion == "tiled"
        assert rep.tile_window_bytes <= 16 * 1024
        np.testing.assert_array_equal(out, ref)

    def test_batched_tiled_matches_fused(self, rng):
        """The lead (batch) axis streams through the same strips."""
        A = rng.standard_normal((3, 64, 64))
        B = rng.standard_normal((3, 64, 64))
        from repro.core.executor import multiply_batched

        ref = multiply_batched(A, B, algorithm="strassen", levels=2,
                               variant="abc", fusion="fused")
        spec.set_runtime_tunables(tile_rows=8)
        out = multiply_batched(A, B, algorithm="strassen", levels=2,
                               variant="abc", fusion="tiled")
        np.testing.assert_array_equal(out, ref)


class TestRowSplitCaveat:
    """The PR-7 BLAS row-split tail-kernel caveat, regression-pinned.

    Splitting a dgemm by rows can switch the BLAS library's
    blocking/accumulation kernel; which block shapes are affected is an
    implementation detail of the installed BLAS.  These cells document
    the measured behavior rather than assuming it: they xfail where the
    caveat bites today and xpass (not silently skip) on a BLAS where it
    does not, so a library upgrade that shifts the boundary is noticed.
    """

    @pytest.mark.xfail(
        reason="PR-7 caveat: 27^3 blocks are not row-split bitwise-stable "
        "under this BLAS (tail-kernel switch); the runtime's probe gate "
        "degrades such plans to full-block strips instead",
        strict=False,
    )
    @pytest.mark.parametrize("tile_rows", [2, 5, 9])
    def test_raw_split_rectangular_blocks(self, tile_rows):
        assert tiles.strip_split_is_exact(27, 27, 27, tile_rows)

    @pytest.mark.xfail(
        reason="PR-7 caveat: height-1 strips always take a GEMV-style "
        "kernel with a different k-accumulation order",
        strict=False,
    )
    def test_raw_single_row_split(self):
        rng = np.random.default_rng(0)
        S = rng.standard_normal((2, 63, 63))
        T = rng.standard_normal((2, 63, 63))
        full = np.matmul(S, T)
        out = np.empty_like(full)
        for lo in range(63):
            np.matmul(S[:, lo:lo + 1, :], T, out=out[:, lo:lo + 1, :])
        assert np.array_equal(out, full)

    def test_probe_gate_keeps_unstable_shapes_bitwise(self, rng):
        """The caveat never reaches users: <3,3,3> at 81^3 (27^3 blocks)
        stays bitwise-equal because the probe gate rejects the split."""
        A = rng.standard_normal((81, 81))
        B = rng.standard_normal((81, 81))
        ref = multiply(A, B, algorithm="<3,3,3>", variant="abc",
                       fusion="fused", threads=1)
        spec.set_runtime_tunables(tile_rows=5)
        out = multiply(A, B, algorithm="<3,3,3>", variant="abc",
                       fusion="tiled", threads=1)
        np.testing.assert_array_equal(out, ref)
        if not tiles.strip_split_is_exact(27, 27, 27, 5):
            # fallback path: one full-block strip per product group
            assert last_report().n_tiles <= 3


class TestLeakSoak:
    def test_budget_capped_soak_no_leaked_mmaps(self, rng):
        """A budget-capped soak leaks neither mmap handles nor arena
        bytes.  ``mmap_open`` decrements only from the buffers'
        ``weakref.finalize`` callbacks, so it counts every spill file
        the OS still holds — the direct instrument for handle leaks.
        """
        A = rng.standard_normal((64, 64))
        B = rng.standard_normal((64, 64))
        spec.set_runtime_tunables(mem_budget_bytes=64 * 1024)
        for i in range(10):
            threads = 1 + (i % 2)
            out = multiply(A, B, algorithm="strassen", levels=2,
                           variant="abc", fusion="tiled", threads=threads)
            rep = last_report()
            assert rep.fusion == "tiled"
            assert rep.peak_workspace_bytes <= rep.tile_window_bytes
        assert np.allclose(out, A @ B)
        arena_clear()
        gc.collect()
        st = arena_stats()
        assert st.mmap_open == 0, f"leaked mmap buffers: {st}"
        assert st.mmap_bytes_in_use == 0
        assert st.bytes_in_use == 0
        assert st.in_use == 0
