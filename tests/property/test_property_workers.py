"""Worker-mode invariance: serial vs threads vs processes.

The runtime's reproducibility contract across worker modes:

* Threads and processes at the **same worker count** are always
  **bitwise** identical — the process runtime partitions tasks and
  reduces slots in exactly the thread pipeline's order, for both
  lowering modes.
* ``staged`` fusion is additionally bitwise invariant across worker
  *counts* (serial included) for the +-1-coefficient schedules: every
  count materializes the same slabs and accumulates in the same slot
  order, and splitting a +-1 gemm by rows does not re-associate it.
  General-coefficient schedules (``<3,3,3>``) may differ from the serial
  baseline in final-ulp tail elements, because changing a dgemm's row
  count can switch BLAS accumulation kernels — those compare to
  tolerance.
* ``fused`` fusion reassociates the reduction across counts (slot-private
  accumulators), so the serial comparison is to tolerance only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import multiply
from repro.core.procpool import shutdown_process_pools

# (algorithm, levels, serial_bitwise_staged).  The serial-bitwise flag is
# empirical per schedule: splitting the <2,2,2>-family gemms by rows is
# accumulation-stable, while the rectangular factors can hit different
# BLAS tail kernels at different row counts.
SCHEDULES = [
    ("strassen", 1, True),
    ("strassen", 2, True),
    ("<3,3,3>", 1, False),
    ("strassen+<3,2,3>", 2, False),
]
VARIANTS = ["naive", "ab", "abc"]
DTYPES = [np.float64, np.float32]
FUSIONS = ["staged", "fused"]


@pytest.fixture(scope="module", autouse=True)
def _clean_pools():
    yield
    shutdown_process_pools()


def _problem(algorithm, levels, dtype):
    # Sides past the core block shape, plus a ragged fringe so peeling
    # stays exercised.
    base = 24 if levels == 1 else 36
    m, k, n = 2 * base + 5, 2 * base + 3, 2 * base + 7
    import zlib

    rng = np.random.default_rng(zlib.crc32(f"{algorithm}@{levels}".encode()))
    A = rng.standard_normal((m, k)).astype(dtype)
    B = rng.standard_normal((k, n)).astype(dtype)
    return A, B


@pytest.mark.parametrize("algorithm,levels,serial_bitwise", SCHEDULES)
@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("fusion", FUSIONS)
def test_worker_mode_invariance(algorithm, levels, serial_bitwise,
                                variant, dtype, fusion):
    A, B = _problem(algorithm, levels, dtype)
    kw = dict(algorithm=algorithm, levels=levels, variant=variant,
              fusion=fusion)
    C_serial = multiply(A, B, threads=1, **kw)
    C_thread = multiply(A, B, threads=2, workers="threads", **kw)
    C_proc = multiply(A, B, threads=2, workers="processes", **kw)

    # The tentpole guarantee: the GIL-free process runtime is bitwise
    # indistinguishable from the thread runtime at the same worker count.
    assert np.array_equal(C_thread, C_proc), (
        f"processes diverged from threads for {kw}"
    )
    if fusion == "staged" and serial_bitwise:
        assert np.array_equal(C_serial, C_thread), (
            f"staged lowering not bitwise across worker counts for {kw}"
        )
    else:
        rtol = 1e-10 if dtype == np.float64 else 1e-4
        np.testing.assert_allclose(C_serial, C_thread, rtol=rtol, atol=rtol)

    ref = (A.astype(np.float64) @ B.astype(np.float64)).astype(dtype)
    tol = 1e-9 if dtype == np.float64 else 1e-2
    scale = max(1.0, float(np.abs(ref).max()))
    assert float(np.abs(C_serial - ref).max()) / scale < tol
