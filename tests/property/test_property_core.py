"""Property-based tests (hypothesis) for the core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.classical import classical
from repro.algorithms.strassen import strassen
from repro.core.morton import recursive_to_rowmajor, rowmajor_to_recursive
from repro.core.peeling import peel
from repro.core.transforms import (
    direct_sum_k,
    direct_sum_m,
    direct_sum_n,
    kron_compose,
    rotate,
    transpose_dual,
)

dims = st.integers(min_value=1, max_value=3)
big = st.integers(min_value=1, max_value=40)


class TestMortonProperties:
    @given(st.lists(st.tuples(dims, dims), min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_permutation_is_bijection(self, grids):
        perm = recursive_to_rowmajor(grids)
        assert sorted(perm.tolist()) == list(range(len(perm)))

    @given(st.lists(st.tuples(dims, dims), min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_inverse_composes_to_identity(self, grids):
        p = recursive_to_rowmajor(grids)
        q = rowmajor_to_recursive(grids)
        assert np.array_equal(p[q], np.arange(len(p)))


class TestPeelProperties:
    @given(big, big, big, dims, dims, dims)
    @settings(max_examples=120, deadline=None)
    def test_flop_cover(self, m, k, n, Mt, Kt, Nt):
        plan = peel(m, k, n, Mt, Kt, Nt)
        mc, kc, nc = plan.core
        total = mc * kc * nc + sum(
            f.shape[0] * f.shape[1] * f.shape[2] for f in plan.fringes
        )
        assert total == m * k * n

    @given(big, big, big, dims, dims, dims)
    @settings(max_examples=60, deadline=None)
    def test_core_divisibility(self, m, k, n, Mt, Kt, Nt):
        plan = peel(m, k, n, Mt, Kt, Nt)
        mc, kc, nc = plan.core
        assert mc % Mt == 0 and kc % Kt == 0 and nc % Nt == 0
        assert mc <= m and kc <= k and nc <= n


class TestTransformProperties:
    @given(dims, dims, dims)
    @settings(max_examples=30, deadline=None)
    def test_rotation_preserves_validity(self, m, k, n):
        a = classical(m, k, n)
        r = rotate(a)  # rotate() validates internally; reaching here = pass
        assert r.rank == a.rank
        assert r.dims == (k, n, m)

    @given(dims, dims, dims)
    @settings(max_examples=30, deadline=None)
    def test_dual_preserves_validity(self, m, k, n):
        a = classical(m, k, n)
        d = transpose_dual(a)
        assert d.dims == (n, k, m)

    @given(dims, dims, dims, dims)
    @settings(max_examples=20, deadline=None)
    def test_direct_sums_add_ranks(self, m, k, n, extra):
        a = classical(m, k, n)
        bn = classical(m, k, extra)
        s = direct_sum_n(a, bn)
        assert s.rank == a.rank + bn.rank
        bm = classical(extra, k, n)
        assert direct_sum_m(a, bm).rank == a.rank + bm.rank
        bk = classical(m, extra, n)
        assert direct_sum_k(a, bk).rank == a.rank + bk.rank

    @given(dims, dims, dims)
    @settings(max_examples=15, deadline=None)
    def test_kron_with_strassen(self, m, k, n):
        a = kron_compose(strassen(), classical(m, k, n))
        assert a.dims == (2 * m, 2 * k, 2 * n)
        assert a.rank == 7 * m * k * n


class TestMultiplyProperties:
    @given(
        st.integers(min_value=1, max_value=33),
        st.integers(min_value=1, max_value=33),
        st.integers(min_value=1, max_value=33),
        st.sampled_from(["strassen", (3, 2, 3), (2, 3, 2)]),
        st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_shape_multiplies(self, m, k, n, spec, levels):
        from repro.core.executor import multiply

        rng = np.random.default_rng(m * 10000 + k * 100 + n)
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        C = multiply(A, B, algorithm=spec, levels=levels)
        assert np.abs(C - A @ B).max() < 1e-8

    @given(
        st.integers(min_value=1, max_value=33),
        st.integers(min_value=1, max_value=33),
        st.integers(min_value=1, max_value=33),
        st.sampled_from([np.float64, np.float32]),
        st.sampled_from(["naive", "ab", "abc"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_thread_invariance(self, m, k, n, dtype, variant):
        """multiply(..., threads=t) for t in {1, 2, 4} agrees with the
        classical oracle to the same tolerance, and the parallel results
        agree with the serial ones bit-for-tolerance."""
        from repro.core.executor import multiply

        rng = np.random.default_rng(m * 10000 + k * 100 + n)
        A = rng.standard_normal((m, k)).astype(dtype)
        B = rng.standard_normal((k, n)).astype(dtype)
        ref = A.astype(np.float64) @ B.astype(np.float64)
        scale = max(1.0, float(np.abs(ref).max()))
        tol = 1e-9 if dtype == np.float64 else 200 * np.finfo(np.float32).eps
        results = {}
        for t in (1, 2, 4):
            C = multiply(A, B, algorithm="strassen", variant=variant, threads=t)
            assert C.dtype == dtype
            assert np.abs(C - ref).max() / scale < tol, f"threads={t}"
            results[t] = C
        for t in (2, 4):
            assert np.abs(results[t] - results[1]).max() / scale < tol

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_blocked_engine_any_shape(self, m, k, n):
        from repro.blis.params import BlockingParams
        from repro.core.executor import multiply

        rng = np.random.default_rng(n * 10000 + m * 100 + k)
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        C = multiply(
            A, B, algorithm="strassen", engine="blocked",
            params=BlockingParams(mc=8, kc=8, nc=8, mr=4, nr=4),
        )
        assert np.abs(C - A @ B).max() < 1e-8
