"""Property-based tests for the search substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.strassen import strassen
from repro.search.brent import brent_max_residual, matmul_tensor
from repro.search.gauge import apply_gauge
from repro.search.rounding import normalize_columns, snap


class TestTensorProperties:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_tensor_slices_are_permutation_like(self, m, k, n):
        # Fixing the A-index, the (j, p) slice has exactly n ones: block
        # A_{i1,i2} pairs with each of the n B-blocks in its row.
        T = matmul_tensor(m, k, n)
        for i in range(m * k):
            assert T[i].sum() == n

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_tensor_transpose_symmetry(self, m, k, n):
        # T_{m,k,n}[i,j,p] relates to T_{k,n,m} by the cyclic index map the
        # rotate() transform implements; verify total mass is invariant.
        assert matmul_tensor(m, k, n).sum() == matmul_tensor(k, n, m).sum()


class TestGaugeProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_gauges_preserve_brent(self, seed):
        rng = np.random.default_rng(seed)
        s = strassen()
        X = np.eye(2) + 0.5 * rng.standard_normal((2, 2))
        Y = np.eye(2) + 0.5 * rng.standard_normal((2, 2))
        Z = np.eye(2) + 0.5 * rng.standard_normal((2, 2))
        if min(
            abs(np.linalg.det(X)), abs(np.linalg.det(Y)), abs(np.linalg.det(Z))
        ) < 1e-3:
            return  # skip near-singular draws
        U, V, W = apply_gauge(s.U, s.V, s.W, 2, 2, 2, X, Y, Z)
        assert brent_max_residual(U, V, W, 2, 2, 2) < 1e-8


class TestRoundingProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_normalize_preserves_cp(self, seed):
        rng = np.random.default_rng(seed)
        s = strassen()
        U, V, W = s.U.copy(), s.V.copy(), s.W.copy()
        for r in range(7):
            a, b = rng.uniform(0.25, 4.0, 2)
            U[:, r] *= a
            V[:, r] *= b
            W[:, r] /= a * b
        Un, Vn, Wn = normalize_columns(U, V, W)
        assert brent_max_residual(Un, Vn, Wn, 2, 2, 2) < 1e-10

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_snap_is_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(-2.5, 2.5, size=(5, 7))
        S1, _ = snap(X)
        S2, move = snap(S1)
        assert np.array_equal(S1, S2)
        assert move == 0.0
