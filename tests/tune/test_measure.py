"""The timing harness: sampling discipline, GC pinning, budgets."""

import gc

import numpy as np
import pytest

from repro.tune.measure import MeasureConfig, measure_candidate, measure_plan


class TestMeasureCandidate:
    def test_basic_measurement(self):
        meas = measure_candidate(
            64, 64, 64, "strassen",
            config=MeasureConfig(warmup=1, repeats=3, inner=2),
        )
        assert meas.shape == (64, 64, 64)
        assert meas.label.endswith("/abc")
        assert meas.engine == "direct" and meas.threads == 1
        assert meas.dtype == "float64"
        assert 0 < meas.best_s <= meas.time_s
        assert meas.samples == 3 * 2
        assert len(meas.group_minima) == 3
        assert meas.gflops > 0

    def test_median_of_min(self):
        meas = measure_candidate(
            32, 32, 32, "strassen",
            config=MeasureConfig(repeats=5, inner=3),
        )
        import statistics

        assert meas.time_s == statistics.median(meas.group_minima)
        assert meas.best_s == min(meas.group_minima)

    def test_classical_baseline_measurable(self):
        meas = measure_candidate(48, 48, 48, "classical")
        assert meas.time_s > 0

    def test_float32(self):
        meas = measure_candidate(32, 32, 32, "strassen", dtype=np.float32)
        assert meas.dtype == "float32"

    def test_blocked_engine(self):
        meas = measure_candidate(
            16, 16, 16, "strassen", engine="blocked",
            config=MeasureConfig(warmup=0, repeats=1, inner=1),
        )
        assert meas.engine == "blocked" and meas.samples == 1

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="engine"):
            measure_candidate(16, 16, 16, "strassen", engine="warp")

    def test_hybrid_spec(self):
        meas = measure_candidate(
            36, 24, 36, "strassen+<3,2,3>",
            config=MeasureConfig(warmup=0, repeats=1, inner=1),
        )
        assert meas.time_s > 0


class TestBudget:
    def test_budget_caps_samples(self):
        # A budget far below one call's cost still takes >= 1 sample and
        # stops immediately after.
        meas = measure_candidate(
            128, 128, 128, "strassen",
            config=MeasureConfig(warmup=0, repeats=50, inner=50,
                                 budget_s=1e-4),
        )
        assert 1 <= meas.samples < 50 * 50
        assert len(meas.group_minima) >= 1

    def test_no_budget_takes_all_samples(self):
        meas = measure_candidate(
            16, 16, 16, "strassen",
            config=MeasureConfig(warmup=0, repeats=2, inner=2),
        )
        assert meas.samples == 4


class TestGCPinning:
    def test_gc_restored_when_enabled(self):
        assert gc.isenabled()
        measure_candidate(16, 16, 16, "strassen",
                          config=MeasureConfig(repeats=1, inner=1))
        assert gc.isenabled()

    def test_gc_left_alone_when_disabled(self):
        gc.disable()
        try:
            measure_candidate(16, 16, 16, "strassen",
                              config=MeasureConfig(repeats=1, inner=1))
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_gc_restored_on_failure(self):
        from repro.core import compile as plancache

        cplan = plancache.compile((16, 16, 16), "strassen")
        assert gc.isenabled()
        with pytest.raises(ValueError):
            measure_plan(cplan, engine="nope")
        assert gc.isenabled()


class TestConfigValidation:
    @pytest.mark.parametrize("kw", [
        {"warmup": -1}, {"repeats": 0}, {"inner": 0}, {"budget_s": 0.0},
        {"budget_s": -1.0},
    ])
    def test_bad_config_raises(self, kw):
        with pytest.raises(ValueError):
            MeasureConfig(**kw)
