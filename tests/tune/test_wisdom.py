"""Wisdom store: buckets, round-trips, corruption recovery, fingerprints."""

import json

import pytest

from repro.tune.wisdom import (
    SCHEMA_VERSION,
    WisdomStore,
    default_store,
    default_wisdom_path,
    fingerprint_digest,
    machine_fingerprint,
    problem_bucket,
    set_default_store,
)


class TestProblemBucket:
    def test_deterministic(self):
        assert problem_bucket(96, 96, 96) == problem_bucket(96, 96, 96)

    def test_size_bins_separate(self):
        assert problem_bucket(64, 64, 64) != problem_bucket(256, 256, 256)

    def test_shape_ratio_separates_rank_k_from_square(self):
        assert problem_bucket(14400, 480, 14400) != problem_bucket(
            12000, 12000, 12000
        )

    def test_nearby_sizes_share_a_bucket(self):
        # The whole point of a bucket: verdicts generalize to neighbors.
        assert problem_bucket(96, 96, 96) == problem_bucket(100, 100, 100)

    def test_dtype_and_threads_scope(self):
        base = problem_bucket(96, 96, 96, "float64", None)
        assert problem_bucket(96, 96, 96, "float32", None) != base
        assert problem_bucket(96, 96, 96, "float64", 4) != base

    def test_invalid_problem_raises(self):
        with pytest.raises(ValueError):
            problem_bucket(0, 10, 10)


class TestFingerprint:
    def test_fields(self):
        fp = machine_fingerprint()
        assert {"cpu_count", "machine", "python", "numpy", "repro"} <= set(fp)

    def test_digest_stable(self):
        assert fingerprint_digest() == fingerprint_digest(machine_fingerprint())
        assert len(fingerprint_digest()) == 12


class TestRoundTrip:
    def test_record_lookup(self, store, sample_config):
        cfg = sample_config()
        store.record(96, 96, 96, config=cfg, gflops=5.0, time_s=1e-3, samples=9)
        # record() stamps the canonical schedule signature into the config.
        assert store.lookup(96, 96, 96) == {**cfg, "schedule": "<2,2,2>@1"}

    def test_record_stamps_schedule_signature(self, store, sample_config):
        store.record(96, 96, 96, config=sample_config(2), gflops=5.0,
                     time_s=1e-3, samples=9)
        assert store.lookup(96, 96, 96)["schedule"] == "<2,2,2>@2"
        classical = dict(sample_config(), algorithm="classical")
        store.record(8, 8, 8, config=classical, gflops=1.0, time_s=1e-3,
                     samples=3)
        assert store.lookup(8, 8, 8)["schedule"] == "classical@1"

    def test_lookup_tuple_form(self, store, sample_config):
        store.record(96, 96, 96, config=sample_config(2), gflops=5.0,
                     time_s=1e-3, samples=9)
        assert store.lookup_tuple(96, 96, 96) == (
            ((2, 2, 2), (2, 2, 2)), 2, "abc", "direct", 1, "reference",
            "threads",
        )

    def test_survives_process_restart(self, store, sample_config):
        store.record(96, 96, 96, config=sample_config(), gflops=5.0,
                     time_s=1e-3, samples=9)
        reborn = WisdomStore(store.path)  # a new process does exactly this
        assert reborn.lookup(96, 96, 96) == {
            **sample_config(), "schedule": "<2,2,2>@1"
        }
        assert len(reborn) == 1

    def test_miss_returns_none(self, store):
        assert store.lookup(500, 10, 500) is None

    def test_classical_config(self, store, sample_config):
        cfg = dict(sample_config(), algorithm="classical")
        store.record(8, 8, 8, config=cfg, gflops=1.0, time_s=1e-3, samples=3)
        assert store.lookup_tuple(8, 8, 8) == (
            "classical", 1, "abc", "direct", 1, "reference", "threads"
        )

    def test_file_is_versioned_json(self, store, sample_config):
        store.record(96, 96, 96, config=sample_config(), gflops=5.0,
                     time_s=1e-3, samples=9)
        doc = json.loads(store.path.read_text())
        assert doc["version"] == SCHEMA_VERSION
        assert doc["fingerprint"] == machine_fingerprint()

    def test_record_validates_config(self, store):
        with pytest.raises(ValueError):
            store.record(96, 96, 96, config={"algorithm": "nonsense"},
                         gflops=1.0, time_s=1e-3, samples=1)

    def test_worker_mode_round_trips(self, store, sample_config):
        from repro.tune.wisdom import config_tuple

        cfg = {**sample_config(), "threads": 2, "workers": "processes"}
        store.record(96, 96, 96, config=cfg, gflops=5.0, time_s=1e-3,
                     samples=3)
        hit = WisdomStore(store.path).lookup(96, 96, 96)
        assert hit["workers"] == "processes"
        assert config_tuple(hit)[6] == "processes"

    def test_workers_defaults_to_threads(self, store, sample_config):
        from repro.tune.wisdom import config_tuple

        cfg = sample_config()  # pre-worker-mode configs carry no key
        store.record(96, 96, 96, config=cfg, gflops=5.0, time_s=1e-3,
                     samples=3)
        assert config_tuple(store.lookup(96, 96, 96))[6] == "threads"

    def test_invalid_worker_mode_rejected(self, store, sample_config):
        cfg = {**sample_config(), "workers": "fibers"}
        with pytest.raises(ValueError, match="workers"):
            store.record(96, 96, 96, config=cfg, gflops=5.0, time_s=1e-3,
                         samples=1)

    def test_machine_params_round_trip(self, store):
        from repro.model.machines import generic_laptop

        store.record_machine(generic_laptop(2))
        mp = WisdomStore(store.path).machine_params()
        assert mp is not None
        assert mp.cores == 2 and mp.peak_gflops_per_core == 8.0

    def test_clear(self, store, sample_config):
        store.record(96, 96, 96, config=sample_config(), gflops=5.0,
                     time_s=1e-3, samples=9)
        store.clear()
        assert len(store) == 0
        assert WisdomStore(store.path).lookup(96, 96, 96) is None


class TestCorruptionRecovery:
    def test_garbage_degrades_to_empty(self, tmp_path):
        path = tmp_path / "wisdom.json"
        path.write_text("{this is not json")
        s = WisdomStore(path)
        assert s.recovered_corrupt
        assert len(s) == 0
        assert s.lookup(96, 96, 96) is None
        # The bad file is set aside, not silently destroyed.
        assert path.with_suffix(".json.corrupt").exists()

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "wisdom.json"
        path.write_text(json.dumps({"version": 999, "entries": {}}))
        s = WisdomStore(path)
        assert s.recovered_corrupt and len(s) == 0

    def test_malformed_entry_config(self, tmp_path):
        path = tmp_path / "wisdom.json"
        path.write_text(json.dumps({
            "version": SCHEMA_VERSION,
            "fingerprint": machine_fingerprint(),
            "entries": {"b": {"config": {"algorithm": 42}}},
        }))
        s = WisdomStore(path)
        assert s.recovered_corrupt and len(s) == 0

    def test_entry_missing_metadata_is_corrupt(self, tmp_path, sample_config):
        # A valid config with no problem/gflops fields must not pass load:
        # the CLI renders those fields without re-checking.
        path = tmp_path / "wisdom.json"
        path.write_text(json.dumps({
            "version": SCHEMA_VERSION,
            "fingerprint": machine_fingerprint(),
            "entries": {"b": {"config": sample_config()}},
        }))
        s = WisdomStore(path)
        assert s.recovered_corrupt and len(s) == 0

    def test_recovered_store_records_fine(self, tmp_path, sample_config):
        path = tmp_path / "wisdom.json"
        path.write_text("garbage")
        s = WisdomStore(path)
        s.record(96, 96, 96, config=sample_config(), gflops=5.0,
                 time_s=1e-3, samples=9)
        assert WisdomStore(path).lookup(96, 96, 96) == {
            **sample_config(), "schedule": "<2,2,2>@1"
        }

    def test_foreign_fingerprint_ignored(self, tmp_path, sample_config):
        path = tmp_path / "wisdom.json"
        fp = dict(machine_fingerprint(), cpu_count=4096, machine="alien")
        path.write_text(json.dumps({
            "version": SCHEMA_VERSION,
            "fingerprint": fp,
            "entries": {
                problem_bucket(96, 96, 96): {
                    "config": sample_config(), "gflops": 1.0, "time_s": 1e-3,
                    "samples": 1, "problem": [96, 96, 96], "dtype": "float64",
                    "created_utc": "2026-01-01T00:00:00Z",
                },
            },
        }))
        s = WisdomStore(path)
        assert s.ignored_stale and not s.recovered_corrupt
        assert s.lookup(96, 96, 96) is None


class TestHotLRU:
    def test_repeat_lookups_hit_hot_layer(self, store, sample_config):
        store.record(96, 96, 96, config=sample_config(), gflops=5.0,
                     time_s=1e-3, samples=9)
        store.lookup(96, 96, 96)
        h0 = store.hot_hits
        for _ in range(5):
            store.lookup(96, 96, 96)
        assert store.hot_hits == h0 + 5

    def test_negative_lookups_also_cached(self, store):
        store.lookup(500, 10, 500)
        h0 = store.hot_hits
        store.lookup(500, 10, 500)
        assert store.hot_hits == h0 + 1

    def test_record_invalidates(self, store, sample_config):
        assert store.lookup(96, 96, 96) is None
        store.record(96, 96, 96, config=sample_config(), gflops=5.0,
                     time_s=1e-3, samples=9)
        assert store.lookup(96, 96, 96) == {
            **sample_config(), "schedule": "<2,2,2>@1"
        }

    def test_bounded(self, tmp_path):
        s = WisdomStore(tmp_path / "w.json", hot_size=4)
        for i in range(1, 10):
            s.lookup(8 * i, 8 * i, 8 * i)
        assert len(s._hot) <= 4


class TestConcurrentProcesses:
    def test_save_merges_other_writers(self, tmp_path, sample_config):
        # Two processes share one file: neither may erase the other's
        # verdicts when it persists its own.
        path = tmp_path / "wisdom.json"
        a = WisdomStore(path)  # both load while the file is empty
        b = WisdomStore(path)
        a.record(64, 64, 64, config=sample_config(), gflops=1.0,
                 time_s=1e-3, samples=1)
        b.record(256, 256, 256, config=sample_config(2), gflops=2.0,
                 time_s=1e-3, samples=1)
        reborn = WisdomStore(path)
        assert reborn.lookup(64, 64, 64) is not None
        assert reborn.lookup(256, 256, 256) is not None

    def test_machine_calibration_not_erased_by_other_writer(self, tmp_path,
                                                            sample_config):
        from repro.model.machines import generic_laptop

        path = tmp_path / "wisdom.json"
        a = WisdomStore(path)
        b = WisdomStore(path)
        a.record_machine(generic_laptop(2))
        b.record(64, 64, 64, config=sample_config(), gflops=1.0,
                 time_s=1e-3, samples=1)
        reborn = WisdomStore(path)
        assert reborn.machine_params() is not None
        assert reborn.lookup(64, 64, 64) is not None

    def test_clear_does_not_resurrect_disk_entries(self, store, sample_config):
        store.record(64, 64, 64, config=sample_config(), gflops=1.0,
                     time_s=1e-3, samples=1)
        store.clear()
        assert len(WisdomStore(store.path)) == 0


class TestDefaultStore:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WISDOM", str(tmp_path / "env.json"))
        set_default_store(None)
        try:
            assert default_wisdom_path() == tmp_path / "env.json"
            assert default_store().path == tmp_path / "env.json"
        finally:
            set_default_store(None)

    def test_set_default_store_by_path(self, tmp_path):
        try:
            set_default_store(tmp_path / "explicit.json")
            assert default_store().path == tmp_path / "explicit.json"
        finally:
            set_default_store(None)
