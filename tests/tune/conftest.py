"""Fixtures for the autotuning subsystem tests: isolated wisdom stores."""

from __future__ import annotations

import pytest


@pytest.fixture
def store(tmp_path):
    """A fresh wisdom store in a temp directory (not the process default)."""
    from repro.tune import WisdomStore

    return WisdomStore(tmp_path / "wisdom.json")


@pytest.fixture
def default_wisdom(tmp_path):
    """A temp store installed as the process-wide default, restored after."""
    from repro.tune import WisdomStore, set_default_store

    s = WisdomStore(tmp_path / "wisdom.json")
    set_default_store(s)
    yield s
    set_default_store(None)


@pytest.fixture
def sample_config():
    """Factory for a valid stored-config document (Strassen, serial direct)."""

    def make(levels: int = 1) -> dict:
        return {
            "algorithm": [[2, 2, 2]] * levels,
            "levels": levels,
            "variant": "abc",
            "engine": "direct",
            "threads": 1,
        }

    return make
