"""Budgeted tuning loops and the machine-model back-fit."""

import numpy as np
import pytest

from repro.tune.measure import MeasureConfig
from repro.tune.tuner import (
    calibrate_machine,
    fit_machine_params,
    tune_problem,
    tune_sweep,
)

FAST = MeasureConfig(warmup=0, repeats=1, inner=1)


class TestTuneProblem:
    def test_records_winner_in_store(self, store):
        rep = tune_problem(64, 64, 64, store=store, top=2, budget_s=1.0,
                           measure_config=FAST)
        assert rep.problem == (64, 64, 64)
        assert rep.bucket is not None
        assert len(store) == 1
        assert store.lookup_tuple(64, 64, 64) == rep.config

    def test_measures_model_top_plus_classical(self, store):
        rep = tune_problem(64, 64, 64, store=store, top=2, budget_s=1.0,
                           measure_config=FAST)
        # top-2 + GEMM baseline + one duplicate of the rank-1
        # finalist per available non-reference backend
        backends = [ms.backend for ms in rep.measurements]
        assert backends.count("reference") == 3
        assert "specialized" in backends
        assert len(rep.measurements) >= 4
        labels = {m.label for m in rep.measurements}
        assert any("classical" in lab for lab in labels)

    def test_winner_is_fastest_measured(self, store):
        rep = tune_problem(64, 64, 64, store=store, top=3, budget_s=1.0,
                           measure_config=FAST)
        assert rep.winner.time_s == min(m.time_s for m in rep.measurements)

    def test_record_false_leaves_store_empty(self, store):
        rep = tune_problem(64, 64, 64, store=store, record=False,
                           budget_s=1.0, measure_config=FAST)
        assert rep.bucket is None and len(store) == 0

    def test_budget_respected_loosely(self, store):
        # Generous slack: the budget bounds sampling, not compile time.
        rep = tune_problem(96, 96, 96, store=store, top=2, budget_s=0.3,
                           measure_config=MeasureConfig(repeats=100, inner=100))
        assert rep.elapsed_s < 5.0

    def test_explicit_threads_scope_bucket(self, store):
        tune_problem(64, 64, 64, store=store, threads=1, budget_s=1.0,
                     measure_config=FAST)
        assert store.lookup(64, 64, 64, threads=1) is not None
        assert store.lookup(64, 64, 64, threads=None) is None

    def test_bad_threads_fail_before_measuring(self, store):
        with pytest.raises(ValueError, match="threads"):
            tune_problem(64, 64, 64, store=store, threads=0, budget_s=1.0)
        assert len(store) == 0

    def test_float32(self, store):
        rep = tune_problem(64, 64, 64, store=store, dtype=np.float32,
                           budget_s=1.0, measure_config=FAST)
        assert rep.dtype == "float32"
        assert store.lookup(64, 64, 64, dtype="float32") is not None
        assert store.lookup(64, 64, 64, dtype="float64") is None

    def test_config_is_auto_config_shaped(self, store):
        rep = tune_problem(64, 64, 64, store=store, budget_s=1.0,
                           measure_config=FAST)
        algo, levels, variant, engine, threads, backend, workers = rep.config
        assert engine == "direct" and threads >= 1
        assert backend in ("reference", "specialized", "numba")
        assert workers in ("threads", "processes")
        assert variant in ("naive", "ab", "abc")
        assert algo == "classical" or isinstance(algo, tuple)


class TestTuneSweep:
    def test_covers_all_problems(self, store):
        reports = tune_sweep([(64, 64, 64), (128, 128, 128)], store=store,
                             budget_s=2.0, top=1, measure_config=FAST)
        assert len(reports) == 2
        assert len(store) == 2  # distinct size bins -> distinct buckets

    def test_empty_sweep(self, store):
        assert tune_sweep([], store=store) == []


class TestMachineBackfit:
    def test_fit_machine_params(self):
        mp = fit_machine_params(10.0, 20.0, cores=2)
        assert mp.cores == 2
        assert mp.peak_gflops_per_core >= 10.0
        assert mp.bandwidth_gbs == 20.0
        assert 0 < mp.lam <= 1.0
        assert mp.name.startswith("tuned-")

    def test_fit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_machine_params(0.0, 10.0)

    def test_calibrate_records_into_store(self, store):
        assert store.machine_params() is None
        mp = calibrate_machine(store=store, size=128)
        assert store.machine_params() == mp
        assert mp.peak_gflops_per_core > 0 and mp.bandwidth_gbs > 0

    def test_model_fallback_uses_calibrated_machine(self, default_wisdom):
        # After calibration, a wisdom-miss auto_config prices candidates
        # with the fitted machine instead of the generic default.
        from repro.core.selection import _model_config, auto_config

        calibrate_machine(store=default_wisdom, size=128)
        mp = default_wisdom.machine_params()
        _model_config.cache_clear()
        cfg = auto_config(200, 200, 200, tune="readonly")
        assert cfg == _model_config(200, 200, 200, mp, 2)
