"""Wisdom-driven auto-dispatch: the hot path skips the model entirely."""

import numpy as np
import pytest

from repro.core import selection
from repro.core.executor import multiply, multiply_batched


@pytest.fixture
def model_counters(monkeypatch):
    """Count every model-path invocation inside the selection module."""
    calls = {"enumerate_candidates": 0, "predict_fmm": 0, "predict_gemm": 0}

    def counting(name):
        real = getattr(selection, name)

        def wrapper(*args, **kwargs):
            calls[name] += 1
            return real(*args, **kwargs)

        return wrapper

    for name in calls:
        monkeypatch.setattr(selection, name, counting(name))
    selection._model_config.cache_clear()
    yield calls
    selection._model_config.cache_clear()


def _populate(store, m, k, n, **kw):
    store.record(
        m, k, n,
        config={"algorithm": [[2, 2, 2]], "levels": 1, "variant": "abc",
                "engine": "direct", "threads": 1},
        gflops=10.0, time_s=1e-3, samples=3, **kw,
    )


class TestReadonlyHotPath:
    def test_wisdom_hit_never_touches_model(self, default_wisdom,
                                            model_counters):
        # Acceptance: with a populated store, auto-dispatch must not call
        # enumerate_candidates / predict_fmm / predict_gemm at all.
        _populate(default_wisdom, 80, 80, 80)
        rng = np.random.default_rng(0)
        A, B = rng.standard_normal((80, 80)), rng.standard_normal((80, 80))
        C = multiply(A, B, engine="auto", tune="readonly")
        assert np.allclose(C, A @ B)
        assert model_counters == {
            "enumerate_candidates": 0, "predict_fmm": 0, "predict_gemm": 0,
        }

    def test_wisdom_hit_dispatches_process_runtime(self, default_wisdom,
                                                   model_counters):
        # A stored worker mode round-trips through auto-dispatch: the hit
        # runs on the process runtime with zero model calls.
        from repro.core.procpool import shutdown_process_pools
        from repro.core.runtime import last_report

        default_wisdom.record(
            80, 80, 80,
            config={"algorithm": [[2, 2, 2]], "levels": 1, "variant": "abc",
                    "engine": "direct", "threads": 2, "workers": "processes"},
            gflops=10.0, time_s=1e-3, samples=3,
        )
        rng = np.random.default_rng(0)
        A, B = rng.standard_normal((80, 80)), rng.standard_normal((80, 80))
        try:
            C = multiply(A, B, engine="auto", tune="readonly")
        finally:
            shutdown_process_pools()
        assert np.allclose(C, A @ B)
        assert last_report().worker_mode == "processes"
        assert model_counters == {
            "enumerate_candidates": 0, "predict_fmm": 0, "predict_gemm": 0,
        }

    def test_wisdom_miss_falls_back_to_model(self, default_wisdom,
                                             model_counters):
        rng = np.random.default_rng(0)
        A, B = rng.standard_normal((80, 80)), rng.standard_normal((80, 80))
        C = multiply(A, B, engine="auto", tune="readonly")
        assert np.allclose(C, A @ B)
        assert model_counters["enumerate_candidates"] >= 1

    def test_tune_off_ignores_wisdom(self, default_wisdom, model_counters):
        _populate(default_wisdom, 80, 80, 80)
        rng = np.random.default_rng(0)
        A, B = rng.standard_normal((80, 80)), rng.standard_normal((80, 80))
        multiply(A, B, engine="auto", tune="off")
        assert model_counters["enumerate_candidates"] >= 1

    def test_batched_auto_uses_wisdom(self, default_wisdom, model_counters):
        _populate(default_wisdom, 64, 64, 64)
        rng = np.random.default_rng(1)
        A = rng.standard_normal((3, 64, 64))
        B = rng.standard_normal((3, 64, 64))
        C = multiply_batched(A, B, engine="auto", tune="readonly")
        assert np.allclose(C, A @ B)
        assert model_counters["enumerate_candidates"] == 0

    def test_explicit_threads_bypass_wisdom_bucket(self, default_wisdom):
        # Wisdom tuned under the "auto" thread class does not answer an
        # explicit-threads request; dispatch still works via the model.
        _populate(default_wisdom, 80, 80, 80)
        rng = np.random.default_rng(0)
        A, B = rng.standard_normal((80, 80)), rng.standard_normal((80, 80))
        C = multiply(A, B, engine="auto", tune="readonly", threads=1)
        assert np.allclose(C, A @ B)


class TestTuneOn:
    def test_miss_tunes_then_dispatches(self, default_wisdom):
        assert len(default_wisdom) == 0
        rng = np.random.default_rng(0)
        A, B = rng.standard_normal((64, 64)), rng.standard_normal((64, 64))
        C = multiply(A, B, engine="auto", tune="on")
        assert np.allclose(C, A @ B)
        assert len(default_wisdom) == 1  # the miss was tuned and recorded
        # Second call hits the freshly-written wisdom.
        assert default_wisdom.lookup(64, 64, 64) is not None
        C2 = multiply(A, B, engine="auto", tune="on")
        assert np.allclose(C2, A @ B)


class TestProcessRestart:
    def test_wisdom_survives_a_real_process_restart(self, tmp_path):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro
        from repro.tune import WisdomStore

        path = tmp_path / "wisdom.json"
        store = WisdomStore(path)
        store.record(
            96, 96, 96,
            config={"algorithm": [[2, 2, 2]], "levels": 1, "variant": "abc",
                    "engine": "direct", "threads": 1},
            gflops=10.0, time_s=1e-3, samples=3,
        )
        src_dir = str(Path(repro.__file__).parents[1])
        env = dict(os.environ, REPRO_WISDOM=str(path))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "import sys, numpy as np\n"
            "from repro.tune import default_store\n"
            "from repro import multiply\n"
            "cfg = default_store().lookup_tuple(96, 96, 96)\n"
            "assert cfg is not None, 'wisdom did not survive the restart'\n"
            "A = np.ones((96, 96)); B = np.ones((96, 96))\n"
            "C = multiply(A, B, engine='auto', tune='readonly')\n"
            "assert np.allclose(C, A @ B)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr


class TestDegradation:
    def test_corrupt_default_store_degrades_to_model(self, tmp_path):
        from repro.tune import WisdomStore, set_default_store

        path = tmp_path / "wisdom.json"
        path.write_text('{"version": 1, "entries": "trash"')
        try:
            set_default_store(WisdomStore(path))
            rng = np.random.default_rng(0)
            A, B = rng.standard_normal((64, 64)), rng.standard_normal((64, 64))
            C = multiply(A, B, engine="auto", tune="readonly")
            assert np.allclose(C, A @ B)
        finally:
            set_default_store(None)

    def test_bad_tune_value_raises_up_front(self):
        A = np.ones((8, 8))
        with pytest.raises(ValueError, match="tune"):
            multiply(A, A, tune="sometimes")
        with pytest.raises(ValueError, match="tune"):
            multiply_batched(A[None], A[None], tune=1)
