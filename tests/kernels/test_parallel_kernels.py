"""The phase-parallel kernel emission: specialized backends at threads > 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import multiply
from repro.core.runtime import last_report
from repro.kernels import get_backend
from repro.kernels.base import ParallelKernelEntry, kernel_key


def _mats(m, k, n, seed=11):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


class TestParallelKernelPath:
    @pytest.mark.parametrize("fusion", ["staged", "fused"])
    def test_backend_path_reflects_parallel_kernel(self, fusion):
        A, B = _mats(96, 96, 96)
        multiply(A, B, algorithm="strassen", threads=2,
                 backend="specialized", fusion=fusion)
        rep = last_report()
        assert rep.backend_path == "compiled-parallel"
        assert rep.core_path == "kernel"
        assert rep.worker_mode == "threads"
        assert rep.n_workers == 2

    def test_staged_bitwise_vs_serial_kernel(self):
        A, B = _mats(96, 96, 96)
        Cs = multiply(A, B, algorithm="strassen", threads=1,
                      backend="specialized", fusion="staged")
        Cp = multiply(A, B, algorithm="strassen", threads=2,
                      backend="specialized", fusion="staged")
        assert np.array_equal(Cs, Cp)

    def test_fused_matches_serial_kernel(self):
        A, B = _mats(96, 96, 96)
        Cs = multiply(A, B, algorithm="strassen", threads=1,
                      backend="specialized", fusion="fused")
        Cp = multiply(A, B, algorithm="strassen", threads=2,
                      backend="specialized", fusion="fused")
        np.testing.assert_allclose(Cs, Cp, rtol=1e-12, atol=1e-12)

    def test_matches_interpreter(self):
        A, B = _mats(72, 96, 72)
        for fusion in ("staged", "fused"):
            Ck = multiply(A, B, algorithm="<3,4,3>", threads=2,
                          backend="specialized", fusion=fusion)
            Ci = multiply(A, B, algorithm="<3,4,3>", threads=2,
                          backend="reference", fusion=fusion)
            np.testing.assert_allclose(Ck, Ci, rtol=1e-12, atol=1e-12)

    def test_ragged_fringe_served(self):
        # The kernel serves the peeled core; fringes run the serial loop.
        A, B = _mats(101, 97, 103)
        C = multiply(A, B, algorithm="strassen", threads=2,
                     backend="specialized")
        assert last_report().backend_path == "compiled-parallel"
        assert np.allclose(C, A @ B)

    def test_process_runtime_never_uses_kernels(self):
        from repro.core.procpool import shutdown_process_pools

        A, B = _mats(96, 96, 96)
        try:
            multiply(A, B, algorithm="strassen", threads=2,
                     workers="processes", backend="specialized")
        finally:
            shutdown_process_pools()
        rep = last_report()
        # Compiled kernel buffers are process-local: process mode
        # interprets, and the report says so.
        assert rep.backend_path == "interpreted"
        assert rep.worker_mode == "processes"


class TestParallelKernelCache:
    def test_cached_per_thread_count(self):
        A, B = _mats(64, 64, 64, seed=5)
        backend = get_backend("specialized")
        before = backend.cache_stats()["compiles"]
        multiply(A, B, algorithm="<2,2,2>", levels=1, threads=2,
                 backend="specialized", fusion="staged")
        assert not last_report().kernel_cached
        multiply(A, B, algorithm="<2,2,2>", levels=1, threads=2,
                 backend="specialized", fusion="staged")
        assert last_report().kernel_cached
        multiply(A, B, algorithm="<2,2,2>", levels=1, threads=3,
                 backend="specialized", fusion="staged")
        assert not last_report().kernel_cached  # new partition, new kernel
        assert backend.cache_stats()["compiles"] == before + 2

    def test_kernel_key_carries_threads(self):
        class _Plan:
            dtype = np.dtype(np.float64)
            variant = "abc"

        k1 = kernel_key(_Plan, "staged")
        k2 = kernel_key(_Plan, "staged", 2)
        assert k1 != k2
        assert k1[:3] == k2[:3]


class TestEmission:
    def test_phase_grid_shape(self):
        from repro.core.codegen import compile_parallel_plan_kernel
        from repro.core.compile import compile as compile_plan

        cplan = compile_plan((96, 96, 96), "strassen", 1, "abc")
        kern = compile_parallel_plan_kernel(cplan, 2, fusion="staged")
        assert kern.threads == 2
        assert len(kern.phases) >= 2
        for fns in kern.phases:
            assert 1 <= len(fns) <= 2
            assert all(callable(fn) for fn in fns)
        assert "def " in kern.source

    def test_threads_one_rejected(self):
        from repro.core.codegen import compile_parallel_plan_kernel
        from repro.core.compile import compile as compile_plan

        cplan = compile_plan((64, 64, 64), "strassen", 1, "abc")
        with pytest.raises(ValueError):
            compile_parallel_plan_kernel(cplan, 1)

    def test_entry_type(self):
        A, B = _mats(64, 64, 64)
        backend = get_backend("specialized")
        multiply(A, B, algorithm="strassen", threads=2,
                 backend="specialized", fusion="staged")
        entries = [
            e for d in backend._kernels.values() for e in d.values()
            if isinstance(e, ParallelKernelEntry)
        ]
        assert entries
        assert all(e.path == "compiled-parallel" for e in entries)
