"""Runtime tunables: spec knobs, wisdom persistence, tuner helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spec import (
    DEFAULT_FUSED_GROUP,
    DEFAULT_MEM_BUDGET_BYTES,
    DEFAULT_TILE_ROWS,
    FUSED_AUTO_THRESHOLD,
    SERVE_BATCH_WINDOW_US,
    SERVE_MAX_BATCH,
    TUNABLE_DEFAULTS,
    effective_fused_auto_threshold,
    effective_fused_group,
    runtime_tunables,
    set_runtime_tunables,
)
from repro.tune.wisdom import WisdomStore, set_default_store


@pytest.fixture(autouse=True)
def _restore_tunables():
    yield
    set_runtime_tunables()


class TestSpecKnobs:
    def test_defaults(self):
        assert TUNABLE_DEFAULTS == {
            "fused_group": DEFAULT_FUSED_GROUP,
            "fused_auto_threshold": FUSED_AUTO_THRESHOLD,
            "serve_batch_window_us": SERVE_BATCH_WINDOW_US,
            "serve_max_batch": SERVE_MAX_BATCH,
            "tile_rows": DEFAULT_TILE_ROWS,
            "mem_budget_bytes": DEFAULT_MEM_BUDGET_BYTES,
        }
        assert effective_fused_group() == DEFAULT_FUSED_GROUP
        assert effective_fused_auto_threshold() == FUSED_AUTO_THRESHOLD

    def test_override_and_reset(self):
        out = set_runtime_tunables(fused_group=16, fused_auto_threshold=1024)
        assert out == {
            "fused_group": 16,
            "fused_auto_threshold": 1024,
            "serve_batch_window_us": SERVE_BATCH_WINDOW_US,
            "serve_max_batch": SERVE_MAX_BATCH,
            "tile_rows": DEFAULT_TILE_ROWS,
            "mem_budget_bytes": DEFAULT_MEM_BUDGET_BYTES,
        }
        assert effective_fused_group() == 16
        # Each call fully respecifies: omitting a knob reverts it.
        set_runtime_tunables(fused_group=32)
        assert effective_fused_auto_threshold() == FUSED_AUTO_THRESHOLD
        set_runtime_tunables()
        assert runtime_tunables() == TUNABLE_DEFAULTS

    def test_validation(self):
        with pytest.raises(ValueError):
            set_runtime_tunables(fused_group=0)
        with pytest.raises(ValueError):
            set_runtime_tunables(fused_auto_threshold=-1)

    def test_auto_fusion_threshold_is_live(self):
        from repro.core.spec import resolve_fusion

        # A threshold of 0 pushes every abc plan to fused...
        set_runtime_tunables(fused_auto_threshold=0)
        assert resolve_fusion("auto", "abc", staged_elements=10) == "fused"
        # ...and a huge one keeps small plans staged.
        set_runtime_tunables(fused_auto_threshold=1 << 60)
        assert resolve_fusion("auto", "abc", staged_elements=10) == "staged"

    def test_fused_group_reaches_the_runtime(self, rng):
        import repro

        A = rng.standard_normal((96, 96))
        B = rng.standard_normal((96, 96))
        set_runtime_tunables(fused_group=3)
        C = repro.multiply(A, B, algorithm="strassen", levels=2,
                           fusion="fused")
        rep = repro.last_report()
        assert rep.fusion == "fused"
        np.testing.assert_allclose(C, A @ B, atol=1e-10)


class TestWisdomTunables:
    def test_round_trip(self, tmp_path):
        store = WisdomStore(tmp_path / "w.json")
        store.record_tunables(fused_group=16)
        store.record_tunables(fused_auto_threshold=4096)  # merges
        assert store.tunables() == {
            "fused_group": 16, "fused_auto_threshold": 4096,
        }
        reborn = WisdomStore(store.path)
        assert reborn.tunables() == store.tunables()

    def test_clear_section(self, tmp_path):
        store = WisdomStore(tmp_path / "w.json")
        store.record_tunables(fused_group=16)
        store.record_tunables()  # both None -> clears
        assert store.tunables() == {}

    def test_malformed_tunables_set_file_aside(self, tmp_path):
        import json

        store = WisdomStore(tmp_path / "w.json")
        store.record_tunables(fused_group=16)
        doc = json.loads(store.path.read_text())
        doc["tunables"] = {"fused_group": "huge"}
        store.path.write_text(json.dumps(doc))
        reborn = WisdomStore(store.path)
        assert reborn.recovered_corrupt
        assert reborn.tunables() == {}

    def test_default_store_applies_tunables(self, tmp_path):
        store = WisdomStore(tmp_path / "w.json")
        store.record_tunables(fused_group=24)
        set_default_store(store)
        try:
            assert effective_fused_group() == 24
        finally:
            set_default_store(None)
        assert effective_fused_group() == DEFAULT_FUSED_GROUP

    def test_validation_rejects_bad_knobs(self, tmp_path):
        store = WisdomStore(tmp_path / "w.json")
        with pytest.raises(ValueError):
            store.record_tunables(fused_group=0)


class TestTuneFusedGroup:
    def test_measures_records_and_applies(self, tmp_path):
        from repro.tune.measure import MeasureConfig
        from repro.tune.tuner import tune_fused_group

        store = WisdomStore(tmp_path / "w.json")
        fast = MeasureConfig(warmup=1, repeats=1, inner=1, budget_s=0.5)
        best = tune_fused_group(
            64, 64, 64, algorithm="strassen", levels=1,
            candidates=(4, 8), store=store, measure_config=fast,
        )
        assert best in (4, 8)
        assert store.tunables()["fused_group"] == best
        assert effective_fused_group() == best

    def test_no_candidates_rejected(self, tmp_path):
        from repro.tune.tuner import tune_fused_group

        with pytest.raises(ValueError):
            tune_fused_group(candidates=(),
                             store=WisdomStore(tmp_path / "w.json"))
