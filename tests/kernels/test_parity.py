"""Backend parity: every registered backend against the interpreter.

The reference backend *is* the interpreter, so its parity check is
bitwise.  Compiling backends legally reassociate sums (operand combos
run as dense GEMMs instead of per-term gathers), so they get a
dtype-appropriate tolerance instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.core import compile as plancache
from repro.core.runtime import execute_plan, last_report

#: (label, shape, algorithm-spec, levels) — square, rectangular, mixed
#: per-level schedules, a fringe-peeling shape, and the non-unit-C-
#: coefficient algorithm that exercises the scatter scratch strip.
SCHEDULES = [
    ("square-2lvl", (96, 96, 96), "strassen", 2),
    ("rect", (96, 64, 96), "<3,2,3>", 1),
    ("mixed", (96, 64, 96), "<3,2,3>@1,strassen@1", 2),
    ("fringe", (100, 100, 100), "strassen", 1),
    ("float-coeffs", (96, 96, 96), "smirnov333", 1),
]

DTYPES = [np.float64, np.float32]
VARIANTS = ["naive", "ab", "abc"]
FUSIONS = ["staged", "fused"]


def _operands(shape, dtype, batch=None, seed=7):
    m, k, n = shape
    rng = np.random.default_rng(seed)
    sa = (m, k) if batch is None else (batch, m, k)
    sb = (k, n) if batch is None else (batch, k, n)
    A = rng.standard_normal(sa).astype(dtype)
    B = rng.standard_normal(sb).astype(dtype)
    C = np.zeros(sa[:-1] + (n,), dtype=dtype)
    return A, B, C


def _run(backend, shape, spec, levels, variant, fusion, dtype, threads=1):
    cplan = plancache.compile(shape, spec, levels, variant,
                              dtype=dtype, fusion=fusion)
    A, B, C = _operands(shape, dtype)
    execute_plan(cplan, A, B, C, threads=threads, backend=backend)
    return C, last_report()


def _tolerance(dtype, shape):
    # Scaled for the k-sized dot products both pipelines accumulate.
    eps = np.finfo(dtype).eps
    return 50.0 * eps * shape[1]


class TestParityMatrix:
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
    @pytest.mark.parametrize("fusion", FUSIONS)
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("label,shape,spec,levels",
                             SCHEDULES, ids=[s[0] for s in SCHEDULES])
    def test_backends_match_interpreter(self, label, shape, spec, levels,
                                        variant, fusion, dtype):
        base, base_rep = _run("reference", shape, spec, levels,
                              variant, fusion, dtype)
        assert base_rep.backend_path == "interpreted"
        for b in kernels.available_backends():
            got, rep = _run(b.name, shape, spec, levels, variant,
                            fusion, dtype)
            assert rep.backend == b.name
            if b.name == "reference":
                np.testing.assert_array_equal(got, base)
            else:
                scale = max(1.0, float(np.abs(base).max()))
                err = float(np.abs(got - base).max()) / scale
                assert err <= _tolerance(dtype, shape), (
                    f"{b.name} diverged on {label}/{variant}/{fusion}: {err}"
                )

    def test_exactness_vs_matmul(self):
        # The compiled kernel is not just self-consistent — it is right.
        for b in kernels.available_backends():
            C, _ = _run(b.name, (96, 96, 96), "strassen", 2,
                        "abc", "fused", np.float64)
            A, B, _ = _operands((96, 96, 96), np.float64)
            np.testing.assert_allclose(C, A @ B, atol=1e-10)


class TestDelegation:
    """Call shapes compiling backends hand back to the interpreter."""

    def test_threads_served_and_stay_reproducible(self):
        # Thread-pooled calls no longer delegate: the backend emits a
        # phase-parallel kernel for them (deterministic slot order, so
        # threaded reruns stay bitwise equal).
        shape = (96, 96, 96)
        runs = []
        for _ in range(2):
            C, rep = _run("specialized", shape, "strassen", 2,
                          "abc", "fused", np.float64, threads=2)
            assert rep.backend == "specialized"
            assert rep.backend_path == "compiled-parallel"
            runs.append(C)
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_process_runtime_delegates(self):
        from repro.core.procpool import shutdown_process_pools

        cplan = plancache.compile((96, 96, 96), "strassen", 1, "abc",
                                  dtype=np.float64)
        A, B, C = _operands((96, 96, 96), np.float64)
        try:
            execute_plan(cplan, A, B, C, backend="specialized",
                         threads=2, workers="processes")
        finally:
            shutdown_process_pools()
        rep = last_report()
        assert rep.backend_path == "interpreted"
        np.testing.assert_allclose(C, A @ B, atol=1e-10)

    def test_noncontiguous_operand_delegates(self):
        cplan = plancache.compile((64, 64, 64), "strassen", 1, "abc",
                                  dtype=np.float64)
        A_big, B, C = _operands((64, 128, 64), np.float64)
        A = A_big[:, ::2]  # non-contiguous view
        execute_plan(cplan, A, B[:64], C, backend="specialized")
        rep = last_report()
        assert rep.backend_path == "interpreted"
        np.testing.assert_allclose(C, A @ B[:64], atol=1e-10)

    def test_dtype_mismatch_delegates(self):
        # float32 plan executed with float64 operands: the compiled
        # kernel's preallocated buffers cannot serve it.
        cplan = plancache.compile((64, 64, 64), "strassen", 1, "abc",
                                  dtype=np.float32)
        A, B, C = _operands((64, 64, 64), np.float64)
        execute_plan(cplan, A, B, C, backend="specialized")
        assert last_report().backend_path == "interpreted"


class TestFloat32Scratch:
    def test_nonunit_coefficients_use_dtype_matched_scratch(self):
        # smirnov333 carries non-unit C coefficients; the fused
        # interpreter path must stay in float32 (no float64 upcast
        # round trip) and still match the float64 reference closely.
        shape = (96, 96, 96)
        cplan = plancache.compile(shape, "smirnov333", 1, "abc",
                                  dtype=np.float32, fusion="fused")
        assert cplan.has_nonunit_c_coeffs
        A, B, C = _operands(shape, np.float32)
        execute_plan(cplan, A, B, C, backend="reference")
        exact = A.astype(np.float64) @ B.astype(np.float64)
        scale = max(1.0, float(np.abs(exact).max()))
        err = float(np.abs(C - exact).max()) / scale
        assert err < 5e-4

    def test_scratch_strip_in_workspace_model(self):
        from repro.core.runtime import _grouped_workspace_spec
        from repro.core.spec import resolve_levels
        from repro.model.perfmodel import predict_workspace_bytes

        # Runtime: smirnov333 (non-unit C coefficients) checks out a
        # per-slot scratch strip; strassen (all +-1) does not.
        cplan = plancache.compile((96, 96, 96), "smirnov333", 1, "abc",
                                  fusion="fused")
        spec = _grouped_workspace_spec(cplan, (), 32, 32, 32, 1, 8)
        assert spec["scratch"][0] == (1, 32, 32)
        cplan_u = plancache.compile((96, 96, 96), "strassen", 1, "abc",
                                    fusion="fused")
        assert "scratch" not in _grouped_workspace_spec(
            cplan_u, (), 48, 48, 48, 1, 8
        )
        # Model twin: the fused prediction prices exactly one extra
        # bm*bn strip per slot for the non-unit-coefficient algorithm.
        ml = resolve_levels("smirnov333", 1)
        base = predict_workspace_bytes(96, 96, 96, ml, fusion="fused")
        W = ml.W
        assert bool(((W != 0) & (W != 1) & (W != -1)).any())
        assert base >= 32 * 32 * 8  # includes the slots * bm * bn strip
