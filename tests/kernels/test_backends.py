"""Registry and protocol behavior of the pluggable leaf backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.kernels.base import LeafBackend
from repro.kernels.reference import NUMPY_LEAF


class TestRegistry:
    def test_shipped_backends_registered_reference_first(self):
        names = kernels.backend_names()
        assert names[0] == "reference"
        assert set(names) >= {"reference", "specialized", "numba"}

    def test_get_backend_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="reference"):
            kernels.get_backend("no-such-backend")

    def test_register_duplicate_rejected_unless_replace(self):
        backend = kernels.get_backend("reference")
        with pytest.raises(ValueError, match="already registered"):
            kernels.register_backend(backend)
        kernels.register_backend(backend, replace=True)  # idempotent

    def test_available_excludes_missing_deps(self):
        available = {b.name for b in kernels.available_backends()}
        assert "reference" in available
        assert "specialized" in available
        try:
            import numba  # noqa: F401
            assert "numba" in available
        except ImportError:
            assert "numba" not in available

    def test_backend_infos_shape(self):
        infos = {i.name: i for i in kernels.backend_infos()}
        assert infos["reference"].available is True
        assert infos["reference"].requires is None
        assert infos["numba"].requires == "numba"
        for info in infos.values():
            assert info.summary


class TestProtocol:
    def test_reference_leaf_is_the_interpreter_singleton(self):
        assert kernels.get_backend("reference").leaf() is NUMPY_LEAF

    def test_default_kernel_for_is_none(self, rng):
        from repro.core import compile as plancache

        class Plain(LeafBackend):
            name = "plain-test"

        cplan = plancache.compile((64, 64, 64), "strassen", 1, "abc")
        A = rng.standard_normal((64, 64))
        entry = Plain().kernel_for(cplan, A, A, A.copy(), "staged", 1, 10**9)
        assert entry is None
        assert Plain().cache_stats()["kernels"] == 0

    def test_normalize_backend(self):
        from repro.core.spec import normalize_backend

        assert normalize_backend(None) == "reference"
        assert normalize_backend("specialized") == "specialized"
        with pytest.raises(ValueError, match="unknown backend"):
            normalize_backend("bogus")
        try:
            import numba  # noqa: F401
        except ImportError:
            with pytest.raises(ValueError, match="numba"):
                normalize_backend("numba")


class TestDispatch:
    def test_report_records_backend_and_path(self, rng):
        import repro

        A = rng.standard_normal((64, 64))
        B = rng.standard_normal((64, 64))
        repro.multiply(A, B, algorithm="strassen", backend="reference")
        rep = repro.last_report()
        assert rep.backend == "reference"
        assert rep.backend_path == "interpreted"
        assert rep.kernel_cached is None

        repro.multiply(A, B, algorithm="strassen", backend="specialized")
        rep = repro.last_report()
        assert rep.backend == "specialized"
        assert rep.backend_path in ("compiled", "jit")
        assert rep.kernel_cached in (False, True)

    def test_blocked_engine_rejects_compiling_backend(self, rng):
        import repro

        A = rng.standard_normal((32, 32))
        with pytest.raises(ValueError, match="blocked"):
            repro.multiply(A, A, engine="blocked", backend="specialized")

    def test_explicit_leaf_demands_reference(self, rng):
        from repro.core import compile as plancache
        from repro.core.runtime import execute_plan
        from repro.kernels.reference import NumpyProductLeaf

        cplan = plancache.compile((32, 32, 32), "strassen", 1, "abc")
        A = rng.standard_normal((32, 32))
        C = np.zeros((32, 32))
        with pytest.raises(ValueError, match="leaf"):
            execute_plan(cplan, A, A, C, leaf=NumpyProductLeaf(),
                         backend="specialized")

    def test_batched_request_delegates_to_interpreter(self, rng):
        import repro

        A = rng.standard_normal((4, 32, 32))
        B = rng.standard_normal((4, 32, 32))
        C = repro.multiply_batched(A, B, algorithm="strassen",
                                   backend="specialized")
        rep = repro.last_report()
        assert rep.backend == "specialized"
        assert rep.backend_path == "interpreted"
        np.testing.assert_allclose(C, A @ B, atol=1e-10)
