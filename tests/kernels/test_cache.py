"""Per-plan kernel cache: compile once, hit afterwards, die with the plan."""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro import kernels
from repro.core import compile as plancache
from repro.core.runtime import execute_plan, last_report
from repro.kernels.base import kernel_key
from repro.kernels.specialized import SpecializedBackend


@pytest.fixture
def backend():
    """A private backend instance so counters start at zero."""
    return SpecializedBackend()


def _operands(shape, dtype=np.float64, seed=3):
    m, k, n = shape
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, k)).astype(dtype)
    B = rng.standard_normal((k, n)).astype(dtype)
    return A, B, np.zeros((m, n), dtype=dtype)


class TestCompileOnce:
    def test_repeat_calls_compile_one_kernel(self, backend):
        cplan = plancache.compile((64, 64, 64), "strassen", 1, "abc")
        A, B, C = _operands((64, 64, 64))
        entries = []
        for _ in range(4):
            entry = backend.kernel_for(cplan, A, B, C, "staged", 1, 10**9)
            assert entry is not None
            entries.append(entry)
        assert len({id(e) for e in entries}) == 1
        stats = backend.cache_stats()
        assert stats == {"plans": 1, "kernels": 1, "compiles": 1, "hits": 3}
        assert entries[0].hits == 3
        assert entries[0].key == kernel_key(cplan, "staged")

    def test_distinct_fusions_compile_distinct_kernels(self, backend):
        cplan = plancache.compile((64, 64, 64), "strassen", 1, "abc")
        A, B, C = _operands((64, 64, 64))
        staged = backend.kernel_for(cplan, A, B, C, "staged", 1, 10**9)
        fused = backend.kernel_for(cplan, A, B, C, "fused", 1, 10**9)
        assert staged is not fused
        stats = backend.cache_stats()
        assert stats["plans"] == 1 and stats["kernels"] == 2
        assert stats["compiles"] == 2 and stats["hits"] == 0

    def test_kernel_cached_flag_in_report(self):
        # A fresh plan key so the process-wide backend has no entry yet.
        cplan = plancache.compile((72, 60, 72), "<3,2,3>", 1, "abc")
        A, B, C = _operands((72, 60, 72))
        execute_plan(cplan, A, B, C, backend="specialized")
        first = last_report()
        execute_plan(cplan, A, B, C, backend="specialized")
        second = last_report()
        assert first.core_path == "kernel" and second.core_path == "kernel"
        assert first.kernel_cached is False
        assert second.kernel_cached is True

    def test_kernel_source_is_carried(self, backend):
        cplan = plancache.compile((64, 64, 64), "strassen", 1, "abc")
        A, B, C = _operands((64, 64, 64))
        entry = backend.kernel_for(cplan, A, B, C, "fused", 1, 10**9)
        assert "def fmm_kernel_" in entry.source
        assert entry.path in ("compiled", "jit")
        assert entry.workspace_bytes > 0


class TestEviction:
    def test_kernels_die_with_their_plan(self, backend):
        cplan = plancache.compile((60, 60, 60), "<3,3,3>", 1, "abc")
        A, B, C = _operands((60, 60, 60))
        assert backend.kernel_for(cplan, A, B, C, "staged", 1, 10**9)
        assert backend.cache_stats()["plans"] == 1
        del cplan
        plancache.plan_cache_clear()
        gc.collect()
        assert backend.cache_stats()["plans"] == 0
        assert backend.cache_stats()["kernels"] == 0

    def test_eviction_then_recompile(self, backend):
        cplan = plancache.compile((64, 64, 64), "strassen", 1, "abc")
        A, B, C = _operands((64, 64, 64))
        backend.kernel_for(cplan, A, B, C, "staged", 1, 10**9)
        del cplan
        plancache.plan_cache_clear()
        gc.collect()
        cplan = plancache.compile((64, 64, 64), "strassen", 1, "abc")
        entry = backend.kernel_for(cplan, A, B, C, "staged", 1, 10**9)
        assert entry is not None
        assert backend.cache_stats()["compiles"] == 2

    def test_process_backend_stats_visible_in_registry(self):
        stats = kernels.get_backend("specialized").cache_stats()
        assert set(stats) == {"plans", "kernels", "compiles", "hits"}
