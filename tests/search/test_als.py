"""Tests for the CP-ALS decomposition machinery."""

import numpy as np
import pytest

from repro.algorithms.strassen import strassen
from repro.search.als import als_decompose, khatri_rao, lm_polish
from repro.search.brent import brent_max_residual


class TestKhatriRao:
    def test_matches_definition(self, rng):
        X = rng.standard_normal((3, 4))
        Y = rng.standard_normal((5, 4))
        Z = khatri_rao(X, Y)
        assert Z.shape == (15, 4)
        for r in range(4):
            assert np.allclose(Z[:, r], np.kron(X[:, r], Y[:, r]))

    def test_rank_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            khatri_rao(rng.standard_normal((3, 4)), rng.standard_normal((5, 3)))


class TestAls:
    def test_trivial_rank_full(self):
        # rank m*k*n always exists (classical); ALS must find it easily.
        rng = np.random.default_rng(0)
        res = als_decompose(1, 1, 2, 2, rng, max_iter=400)
        assert res.residual < 1e-8

    def test_finds_strassen_rank(self):
        # Deterministic seed known to converge (checked in CI of this repo).
        rng = np.random.default_rng(0)
        best = np.inf
        for _ in range(8):
            res = als_decompose(2, 2, 2, 7, rng, max_iter=1500)
            best = min(best, res.residual)
            if best < 1e-6:
                break
        assert best < 1e-6

    def test_rank_too_low_stalls(self):
        # Rank 6 < R(2,2,2): residual must stay bounded away from zero
        # (border rank is 7 too, so no epsilon-approach at 6 in few iters).
        rng = np.random.default_rng(1)
        res = als_decompose(2, 2, 2, 6, rng, max_iter=600)
        assert res.residual > 1e-2

    def test_warm_start_continues(self, rng):
        res1 = als_decompose(2, 2, 2, 8, rng, max_iter=100)
        res2 = als_decompose(
            2, 2, 2, 8, rng, max_iter=200, init=(res1.U, res1.V, res1.W)
        )
        assert res2.residual <= res1.residual * 1.5  # no catastrophic reset

    def test_clip_bounds_entries(self, rng):
        res = als_decompose(2, 2, 2, 8, rng, max_iter=150, clip=1.5)
        for X in (res.U, res.V, res.W):
            assert np.max(np.abs(X)) <= 1.5 + 1e-12


class TestLmPolish:
    def test_polishes_perturbed_strassen(self, rng):
        s = strassen()
        U = s.U + 1e-3 * rng.standard_normal(s.U.shape)
        V = s.V + 1e-3 * rng.standard_normal(s.V.shape)
        W = s.W + 1e-3 * rng.standard_normal(s.W.shape)
        assert brent_max_residual(U, V, W, 2, 2, 2) > 1e-4
        pol = lm_polish(U, V, W, 2, 2, 2)
        assert pol.residual < 1e-10

    def test_jacobian_consistency(self, rng):
        # lm_polish's analytic Jacobian must agree with finite differences;
        # probe indirectly: polishing an exact solution stays exact.
        s = strassen()
        pol = lm_polish(s.U, s.V, s.W, 2, 2, 2, max_nfev=3)
        assert pol.residual < 1e-12
