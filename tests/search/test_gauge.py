"""Tests for symmetry-group (gauge) transformations and sparsification."""

import numpy as np

from repro.algorithms.strassen import strassen
from repro.search.brent import brent_max_residual
from repro.search.gauge import apply_gauge, gauge_objective, sparsify_gauge


class TestApplyGauge:
    def test_identity_is_noop(self):
        s = strassen()
        U, V, W = apply_gauge(
            s.U, s.V, s.W, 2, 2, 2, np.eye(2), np.eye(2), np.eye(2)
        )
        assert np.allclose(U, s.U)
        assert np.allclose(V, s.V)
        assert np.allclose(W, s.W)

    def test_random_gauge_preserves_brent(self, rng):
        s = strassen()
        for _ in range(5):
            X = np.eye(2) + 0.5 * rng.standard_normal((2, 2))
            Y = np.eye(2) + 0.5 * rng.standard_normal((2, 2))
            Z = np.eye(2) + 0.5 * rng.standard_normal((2, 2))
            U, V, W = apply_gauge(s.U, s.V, s.W, 2, 2, 2, X, Y, Z)
            assert brent_max_residual(U, V, W, 2, 2, 2) < 1e-10

    def test_gauge_composition(self, rng):
        # Applying (X1,Y1,Z1) then (X2,Y2,Z2) equals the single gauge
        # (X1 X2, Y2 Y1, Z2 Z1): U transforms through X^T / Y^T so X
        # composes left-to-right while Y and Z pick up the reversed order.
        s = strassen()
        X1, Y1, Z1, X2, Y2, Z2 = (
            np.eye(2) + 0.3 * rng.standard_normal((2, 2)) for _ in range(6)
        )
        a = apply_gauge(*apply_gauge(s.U, s.V, s.W, 2, 2, 2, X1, Y1, Z1),
                        2, 2, 2, X2, Y2, Z2)
        b = apply_gauge(s.U, s.V, s.W, 2, 2, 2, X1 @ X2, Y2 @ Y1, Z2 @ Z1)
        for p, q in zip(a, b):
            assert np.allclose(p, q)

    def test_nonsquare_shape(self, rng):
        from repro.algorithms.classical import classical

        c = classical(2, 3, 4)
        X = np.eye(2) + 0.2 * rng.standard_normal((2, 2))
        Y = np.eye(3) + 0.2 * rng.standard_normal((3, 3))
        Z = np.eye(4) + 0.2 * rng.standard_normal((4, 4))
        U, V, W = apply_gauge(c.U, c.V, c.W, 2, 3, 4, X, Y, Z)
        assert brent_max_residual(U, V, W, 2, 3, 4) < 1e-9


class TestSparsifyGauge:
    def test_objective_penalizes_singular(self):
        s = strassen()
        params = np.concatenate([np.zeros(4), np.eye(2).ravel(), np.eye(2).ravel()])
        assert gauge_objective(params, s.U, s.V, s.W, 2, 2, 2, 0.01) >= 1e12

    def test_scrambled_strassen_resparsifies(self, rng):
        # Scramble Strassen with a random gauge; sparsification should get
        # the nonzero count back near the original 36 (allow slack).
        s = strassen()
        X = np.eye(2) + 0.4 * rng.standard_normal((2, 2))
        Y = np.eye(2) + 0.4 * rng.standard_normal((2, 2))
        Z = np.eye(2) + 0.4 * rng.standard_normal((2, 2))
        U, V, W = apply_gauge(s.U, s.V, s.W, 2, 2, 2, X, Y, Z)
        dense_nnz = sum(int(np.sum(np.abs(M) > 1e-6)) for M in (U, V, W))
        Ug, Vg, Wg = sparsify_gauge(U, V, W, 2, 2, 2, rng, restarts=2)
        assert brent_max_residual(Ug, Vg, Wg, 2, 2, 2) < 1e-8
        sparse_nnz = sum(int(np.sum(np.abs(M) > 1e-3)) for M in (Ug, Vg, Wg))
        assert sparse_nnz <= dense_nnz
        assert sparse_nnz <= 48  # Strassen orbit representative is 36
