"""Tests for gauge normalization, snapping and refit-based discretization."""

import numpy as np
import pytest

from repro.algorithms.strassen import strassen
from repro.search.brent import brent_max_residual
from repro.search.rounding import (
    DEFAULT_CANDIDATES,
    discretize,
    normalize_columns,
    refit_factor,
    snap,
)


class TestNormalizeColumns:
    def test_preserves_decomposition(self, rng):
        s = strassen()
        # Randomly rescale the gauge, then normalize back.
        U, V, W = s.U.copy(), s.V.copy(), s.W.copy()
        for r in range(7):
            a, b = rng.uniform(0.5, 2.0, 2)
            U[:, r] *= a
            V[:, r] *= b
            W[:, r] /= a * b
        Un, Vn, Wn = normalize_columns(U, V, W)
        assert brent_max_residual(Un, Vn, Wn, 2, 2, 2) < 1e-12

    def test_unit_max_columns(self, rng):
        s = strassen()
        U, V, W = s.U * 3.0, s.V * 0.25, s.W.copy()
        Un, Vn, Wn = normalize_columns(U, V, W)
        for r in range(7):
            assert np.isclose(np.max(np.abs(Un[:, r])), 1.0)
            assert np.isclose(np.max(np.abs(Vn[:, r])), 1.0)


class TestSnap:
    def test_exact_values_unchanged(self):
        X = np.array([[0.0, 1.0, -0.5], [2.0, -1.0, 0.25]])
        S, move = snap(X)
        assert np.array_equal(S, X)
        assert move == 0.0

    def test_reports_max_move(self):
        X = np.array([[0.97, 0.02]])
        S, move = snap(X)
        assert np.allclose(S, [[1.0, 0.0]])
        assert move == pytest.approx(0.03, abs=1e-12)

    def test_candidate_set_contains_basics(self):
        vals = {float(c) for c in DEFAULT_CANDIDATES}
        for v in (0.0, 1.0, -1.0, 0.5, -0.5, 2.0):
            assert v in vals


class TestRefitFactor:
    @pytest.mark.parametrize("which", [0, 1, 2])
    def test_recovers_deleted_factor(self, which):
        s = strassen()
        factors = [s.U.copy(), s.V.copy(), s.W.copy()]
        factors[which] = np.zeros_like(factors[which])
        got = refit_factor(which, tuple(factors), 2, 2, 2)
        factors[which] = got
        assert brent_max_residual(*factors, 2, 2, 2) < 1e-10


class TestDiscretize:
    def test_roundtrip_perturbed_strassen(self, rng):
        s = strassen()
        U = s.U + 0.01 * rng.standard_normal(s.U.shape)
        V = s.V + 0.01 * rng.standard_normal(s.V.shape)
        W = s.W + 0.01 * rng.standard_normal(s.W.shape)
        out = discretize(U, V, W, 2, 2, 2)
        assert out is not None
        assert brent_max_residual(*out, 2, 2, 2) == 0.0

    def test_rescaled_columns_recovered(self, rng):
        # Per-column scaling is pure gauge: discretize must undo it.
        s = strassen()
        U, V, W = s.U.copy(), s.V.copy(), s.W.copy()
        for r in range(7):
            a = rng.uniform(0.6, 1.7)
            U[:, r] *= a
            W[:, r] /= a
        out = discretize(U, V, W, 2, 2, 2)
        assert out is not None

    def test_garbage_returns_none(self, rng):
        U = rng.standard_normal((4, 7))
        V = rng.standard_normal((4, 7))
        W = rng.standard_normal((4, 7))
        assert discretize(U, V, W, 2, 2, 2) is None
