"""Tests for the matmul tensor and Brent-equation verification."""

import numpy as np
import pytest

from repro.algorithms.classical import classical
from repro.algorithms.strassen import strassen, winograd
from repro.search import brent


class TestMatmulTensor:
    def test_shape(self):
        T = brent.matmul_tensor(2, 3, 4)
        assert T.shape == (6, 12, 8)

    def test_entry_count(self):
        # Exactly m*k*n unit entries: one per scalar multiply of classical.
        for m, k, n in [(1, 1, 1), (2, 2, 2), (2, 3, 4), (3, 1, 5)]:
            T = brent.matmul_tensor(m, k, n)
            assert T.sum() == m * k * n
            assert set(np.unique(T)) <= {0.0, 1.0}

    def test_entries_match_classical_product(self):
        m, k, n = 2, 3, 2
        T = brent.matmul_tensor(m, k, n)
        # T[i,j,p]=1 iff A-block i and B-block j multiply into C-block p.
        for i1 in range(m):
            for i2 in range(k):
                for j1 in range(k):
                    for j2 in range(n):
                        for p1 in range(m):
                            for p2 in range(n):
                                expect = (i2 == j1) and (i1 == p1) and (j2 == p2)
                                got = T[i1 * k + i2, j1 * n + j2, p1 * n + p2]
                                assert got == float(expect)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            brent.matmul_tensor(0, 2, 2)


class TestVerification:
    def test_strassen_satisfies_brent(self):
        s = strassen()
        assert brent.verify_brent(s.U, s.V, s.W, 2, 2, 2)
        assert brent.brent_max_residual(s.U, s.V, s.W, 2, 2, 2) == 0.0

    def test_winograd_satisfies_brent(self):
        w = winograd()
        assert brent.verify_brent(w.U, w.V, w.W, 2, 2, 2)

    def test_classical_satisfies_brent(self):
        for dims in [(1, 1, 1), (2, 3, 4), (3, 3, 3)]:
            c = classical(*dims)
            assert brent.verify_brent(c.U, c.V, c.W, *dims)

    def test_corrupted_algorithm_fails(self):
        s = strassen()
        U = s.U.copy()
        U[0, 0] += 0.5
        assert not brent.verify_brent(U, s.V, s.W, 2, 2, 2)
        assert brent.brent_max_residual(U, s.V, s.W, 2, 2, 2) >= 0.5

    def test_frobenius_vs_max(self):
        s = strassen()
        U = s.U.copy()
        U[0, 0] += 1e-3
        fro = brent.brent_frobenius_residual(U, s.V, s.W, 2, 2, 2)
        mx = brent.brent_max_residual(U, s.V, s.W, 2, 2, 2)
        assert fro >= mx > 0

    def test_exact_verification_strassen(self):
        s = strassen()
        assert brent.verify_brent_exact(s.U, s.V, s.W, 2, 2, 2)

    def test_exact_verification_rejects_epsilon_error(self):
        s = strassen()
        U = s.U.copy()
        U[0, 0] = 1.0 + 1.0 / 1024  # a representable small rational error
        assert not brent.verify_brent_exact(U, s.V, s.W, 2, 2, 2)

    def test_exact_verification_halves(self):
        # Rescale one Strassen column by 2 / 0.5 — still exact.
        s = strassen()
        U = s.U.copy()
        W = s.W.copy()
        U[:, 0] *= 2.0
        W[:, 0] *= 0.5
        assert brent.verify_brent_exact(U, s.V, W, 2, 2, 2)

    def test_shape_validation(self):
        s = strassen()
        with pytest.raises(ValueError):
            brent.verify_brent(s.U[:3], s.V, s.W, 2, 2, 2)
        with pytest.raises(ValueError):
            brent.verify_brent(s.U, s.V[:, :6], s.W, 2, 2, 2)
        with pytest.raises(ValueError):
            brent.verify_brent(s.U.ravel(), s.V, s.W, 2, 2, 2)
