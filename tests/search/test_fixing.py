"""Tests for incremental (fix-and-refit) rounding."""

import numpy as np

from repro.algorithms.strassen import strassen
from repro.search.brent import brent_max_residual, verify_brent_exact
from repro.search.fixing import (
    GRID,
    _snap_grid,
    incremental_rounding,
    sparsify_zeros,
)


class TestSnapGrid:
    def test_snaps_to_nearest(self):
        X = np.array([0.49, -0.9, 0.1, 1.6])
        S = _snap_grid(X, GRID)
        assert np.allclose(S, [0.5, -1.0, 0.0, 1.5])

    def test_grid_contains_published_values(self):
        for v in (0.0, 0.5, -0.5, 1.0, -1.0, 2.0, 0.25):
            assert v in GRID


class TestIncrementalRounding:
    def test_fixes_noisy_strassen(self, rng):
        s = strassen()
        U = s.U + 5e-3 * rng.standard_normal(s.U.shape)
        V = s.V + 5e-3 * rng.standard_normal(s.V.shape)
        W = s.W + 5e-3 * rng.standard_normal(s.W.shape)
        out = incremental_rounding(U, V, W, 2, 2, 2)
        assert out.factors is not None
        assert out.fixed_fraction == 1.0
        assert brent_max_residual(*out.factors, 2, 2, 2) < 1e-9
        assert verify_brent_exact(*out.factors, 2, 2, 2)

    def test_exact_input_is_fixed_point(self):
        s = strassen()
        out = incremental_rounding(s.U, s.V, s.W, 2, 2, 2)
        assert out.factors is not None
        assert np.allclose(out.factors[0], s.U)
        assert np.allclose(out.factors[1], s.V)
        assert np.allclose(out.factors[2], s.W)

    def test_garbage_fails_cleanly(self, rng):
        U = rng.standard_normal((4, 7))
        V = rng.standard_normal((4, 7))
        W = rng.standard_normal((4, 7))
        out = incremental_rounding(U, V, W, 2, 2, 2)
        assert out.factors is None
        assert 0.0 <= out.fixed_fraction <= 1.0


class TestSparsifyZeros:
    def test_recovers_zero_pattern_under_noise(self, rng):
        # Perturb Strassen's zeros slightly: the zero pattern must come
        # back exactly, and the result must still decompose the tensor.
        s = strassen()
        noise = 0.02 * rng.standard_normal(s.U.shape)
        U = s.U + noise * (s.U == 0)
        out = sparsify_zeros(U, s.V, s.W, 2, 2, 2)
        assert out.factors is not None
        assert np.count_nonzero(out.factors[0]) <= np.count_nonzero(s.U)
        assert brent_max_residual(*out.factors, 2, 2, 2) < 1e-9

    def test_keeps_float_values_float(self, rng):
        # Rescale a Strassen column by an irrational-ish factor: zeros are
        # pinned but the scaled values survive (no snap to the grid).
        s = strassen()
        U, W = s.U.copy(), s.W.copy()
        U[:, 0] *= 1.37
        W[:, 0] /= 1.37
        out = sparsify_zeros(U, s.V, W, 2, 2, 2)
        assert out.factors is not None
        assert brent_max_residual(*out.factors, 2, 2, 2) < 1e-9
        assert np.any(np.abs(np.abs(out.factors[0]) - 1.37) < 1e-6)

    def test_dense_garbage_reports_failure(self, rng):
        U = 1.0 + 0.1 * rng.standard_normal((4, 7))  # nothing near zero
        out = sparsify_zeros(U, U, U, 2, 2, 2)
        assert out.factors is None
