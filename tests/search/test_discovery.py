"""Tests for the search orchestration (kept cheap: tiny tensors + one real hit)."""

import pytest

from repro.search.discovery import discover


class TestDiscover:
    def test_trivial_rank(self):
        # <1,1,2> has rank exactly 2; any restart should succeed quickly.
        algo, rep = discover(1, 1, 2, 2, max_restarts=5, time_budget=30, seed=0)
        assert algo is not None
        assert algo.rank == 2
        assert rep.found in ("exact", "float")

    def test_report_counts(self):
        _, rep = discover(1, 1, 2, 2, max_restarts=3, time_budget=30, seed=0)
        assert rep.restarts >= 1
        assert len(rep.history) == rep.restarts
        assert rep.elapsed >= 0

    def test_impossible_rank_returns_none(self):
        # Rank 5 < R(<2,2,2>) = 7: nothing to find.
        algo, rep = discover(2, 2, 2, 5, max_restarts=3, time_budget=15, seed=0)
        assert algo is None
        assert rep.found == "none"
        assert rep.best_residual > 1e-3

    @pytest.mark.slow
    def test_finds_strassen_rank7_exact(self):
        algo, rep = discover(2, 2, 2, 7, max_restarts=20, time_budget=120, seed=0)
        assert algo is not None
        assert rep.found == "exact"
        assert algo.rank == 7
        nnz = sum(int((abs(M) > 0).sum()) for M in (algo.U, algo.V, algo.W))
        assert nnz <= 48  # discrete representative, Strassen-orbit sparse
