"""Tests for the parallel-scaling analysis (modeled and measured)."""

import pytest

from repro.core.executor import resolve_levels
from repro.core.parallel import (
    bandwidth_bound_fraction,
    measured_scaling_curve,
    parallel_efficiency,
    pick_threads,
    pick_workers,
    scaling_curve,
)
from repro.model.machines import ivy_bridge_e5_2680_v2


class TestScalingCurve:
    def test_monotone_speedup(self):
        ml = resolve_levels("strassen", 1)
        pts = scaling_curve(8192, 8192, 8192, ml, "abc", max_cores=10)
        assert len(pts) == 10
        assert pts[0].speedup == pytest.approx(1.0)
        for a, b in zip(pts, pts[1:]):
            assert b.speedup >= a.speedup * 0.999

    def test_efficiency_decays(self):
        # Bandwidth saturation at ~5 cores drops efficiency below 1.
        pts = scaling_curve(8192, 1024, 8192, None, "abc", max_cores=10)
        assert pts[-1].efficiency < 0.95
        assert pts[0].efficiency == pytest.approx(1.0)

    def test_gemm_baseline_supported(self):
        pts = scaling_curve(4096, 4096, 4096, None, "abc", max_cores=2)
        assert all(p.time > 0 for p in pts)


class TestMeasuredScaling:
    def test_measured_curve_drives_real_runtime(self):
        # Small problem, 1 and 2 threads: the probe must return wall-clock
        # points with the baseline normalized to speedup 1.0.
        pts = measured_scaling_curve(
            64, 64, 64, algorithm="strassen", levels=1,
            threads_list=(1, 2), repeats=1,
        )
        assert [p.cores for p in pts] == [1, 2]
        assert pts[0].speedup == pytest.approx(1.0)
        assert all(p.time > 0 and p.gflops > 0 for p in pts)


class TestPickThreads:
    def test_small_problems_stay_serial(self):
        assert pick_threads(32, 32, 32, None) == 1

    def test_capped_by_max_threads(self):
        ml = resolve_levels("strassen", 1)
        assert pick_threads(4096, 4096, 4096, ml, max_threads=1) == 1

    def test_never_exceeds_host_cores(self):
        import os

        ml = resolve_levels("strassen", 1)
        t = pick_threads(4096, 4096, 4096, ml)
        assert 1 <= t <= (os.cpu_count() or 1)


class TestEfficiencyAndBoundness:
    def test_parallel_efficiency_in_range(self):
        ml = resolve_levels("strassen", 1)
        e = parallel_efficiency(8192, 8192, 8192, ml, "abc", cores=10)
        assert 0.0 < e <= 1.0

    def test_rank_k_more_bandwidth_bound_than_square(self):
        # GEMM at a thin rank-k update re-reads C every k_C panel, so its
        # per-flop traffic dwarfs the near-square case.
        mach = ivy_bridge_e5_2680_v2(10)
        f_rank_k = bandwidth_bound_fraction(14400, 256, 14400, None, "abc", mach)
        f_square = bandwidth_bound_fraction(12288, 12288, 12288, None, "abc", mach)
        assert f_rank_k > f_square

    def test_more_cores_more_bandwidth_bound(self):
        ml = resolve_levels("strassen", 1)
        f1 = bandwidth_bound_fraction(
            8192, 8192, 8192, ml, "abc", ivy_bridge_e5_2680_v2(1)
        )
        f10 = bandwidth_bound_fraction(
            8192, 8192, 8192, ml, "abc", ivy_bridge_e5_2680_v2(10)
        )
        assert f10 > f1

    def test_fraction_bounds(self):
        mach = ivy_bridge_e5_2680_v2(1)
        f = bandwidth_bound_fraction(1024, 1024, 1024, None, "abc", mach)
        assert 0.0 <= f <= 1.0


class TestPickWorkers:
    def test_serial_stays_threads(self):
        # A 1-worker run has no GIL contention to escape and nothing to
        # amortize IPC against.
        assert pick_workers(64, 64, 64, None, threads=1) == "threads"

    def test_large_problem_prefers_processes(self):
        ml = resolve_levels("strassen", 1)
        assert pick_workers(2048, 2048, 2048, ml, "abc", threads=4) == "processes"

    def test_small_problem_prefers_threads(self):
        # At tiny sizes the per-call attach/copy overhead dominates any
        # GIL-freed arithmetic win.
        ml = resolve_levels("strassen", 1)
        assert pick_workers(256, 256, 256, ml, "abc", threads=4) == "threads"

    def test_returns_valid_mode(self):
        from repro.core.spec import WORKER_MODES

        for shape in [(128,) * 3, (1024,) * 3, (4096, 256, 4096)]:
            assert pick_workers(*shape, None, threads=2) in WORKER_MODES
