"""Tests for the execution-plan IR."""

import pytest

from repro.core.executor import resolve_levels
from repro.core.plan import build_plan


class TestBuildPlan:
    def test_strassen_step_count(self):
        ml = resolve_levels("strassen", 1)
        plan = build_plan(64, 64, 64, ml, "abc")
        assert plan.rank_total == 7
        assert len(plan.steps) == 7

    def test_step_terms_match_eq2(self):
        # Product M1 = (A2 + A3) B0; C2 += M1; C3 -= M1 (paper eq. (2)).
        ml = resolve_levels("strassen", 1)
        plan = build_plan(64, 64, 64, ml, "abc")
        s = plan.steps[1]
        assert s.a_terms == ((2, 1.0), (3, 1.0))
        assert s.b_terms == ((0, 1.0),)
        assert s.c_terms == ((2, 1.0), (3, -1.0))

    def test_operation_counts(self):
        ml = resolve_levels("strassen", 1)
        plan = build_plan(64, 64, 64, ml, "abc")
        counts = plan.operation_counts()
        assert counts["products"] == 7
        # nnz(U) - R = 12 - 7 = 5 A-side additions, same for B; 12 C updates.
        assert counts["a_additions"] == 5
        assert counts["b_additions"] == 5
        assert counts["c_updates"] == 12
        assert counts["fringe_gemms"] == 0

    def test_fringes_recorded(self):
        ml = resolve_levels("strassen", 1)
        plan = build_plan(65, 65, 65, ml, "abc")
        assert plan.operation_counts()["fringe_gemms"] == 3

    def test_two_level_counts(self):
        ml = resolve_levels("strassen", 2)
        plan = build_plan(64, 64, 64, ml, "ab")
        assert plan.rank_total == 49
        counts = plan.operation_counts()
        assert counts["a_additions"] == 144 - 49  # nnz(U (x) U) - R^2
        assert counts["c_updates"] == 144

    def test_bad_variant(self):
        ml = resolve_levels("strassen", 1)
        with pytest.raises(ValueError):
            build_plan(8, 8, 8, ml, "fused")
