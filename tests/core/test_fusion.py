"""Tests for the streaming fused-product runtime (staged vs fused lowering).

Covers the tentpole guarantees of the variant-aware pipeline:

* exactness of every write-back variant x fusion mode x 1-2 levels
  (including a pairwise mixed-schedule sweep reusing the
  ``test_schedule.py`` harness shapes);
* thread invariance — the fused pipeline's per-worker Cacc + deterministic
  reduce must reproduce the serial result;
* the workspace high-water regression: fused peak bytes < staged peak
  bytes at two levels, with the performance model's workspace twin
  agreeing byte-for-byte with the runtime's measured peaks;
* both engines executing through the one runtime entry point
  (``execute_plan``) — no standalone loop nests anywhere;
* spec-level validation: unknown engine/variant/fusion strings raise
  ``ValueError``s that list the valid names.
"""

import itertools

import numpy as np
import pytest

from repro.core import compile as plancache
from repro.core import runtime
from repro.core.executor import BlockedEngine, DirectEngine, multiply
from repro.core.spec import (
    FUSED_AUTO_THRESHOLD,
    FUSION_MODES,
    VARIANTS,
    normalize_fusion,
    normalize_variant,
    resolve_fusion,
)
from repro.core.workspace import WorkspaceArena


@pytest.fixture(autouse=True)
def fresh_cache():
    plancache.plan_cache_clear()
    yield
    plancache.plan_cache_clear()


#: Representative catalog pairs for the mixed-schedule fused sweep — the
#: square/skewed corners of the ``test_schedule.py`` pairwise harness.
_PAIR_SHAPES = ((2, 2, 2), (3, 2, 3), (2, 3, 2), (3, 3, 3), (2, 5, 2))
_PAIRS = sorted(itertools.product(_PAIR_SHAPES, repeat=2))


class TestExactness:
    @pytest.mark.parametrize("fusion", ["staged", "fused"])
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("levels,shape", [(1, (34, 38, 30)), (2, (37, 41, 45))])
    def test_variant_by_fusion_exact(self, rng, fusion, variant, levels, shape):
        """Every variant x lowering mode x depth is numpy-exact (with peel)."""
        m, k, n = shape
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        C = multiply(A, B, algorithm="strassen", levels=levels,
                     variant=variant, fusion=fusion)
        assert np.abs(C - A @ B).max() < 1e-9

    @pytest.mark.parametrize("outer,inner", _PAIRS)
    def test_pairwise_mixed_schedules_fused(self, outer, inner):
        """Fused pipeline is exact on 2-level mixed schedules with fringes."""
        rng = np.random.default_rng(hash((outer, inner)) % 2**32)
        Mt, Kt, Nt = (outer[0] * inner[0], outer[1] * inner[1],
                      outer[2] * inner[2])
        m, k, n = Mt + 1, Kt + 2, Nt + 1  # peel every side
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        C = multiply(A, B, algorithm=[outer, inner], fusion="fused")
        assert np.allclose(C, A @ B, atol=1e-8), (outer, inner)

    @pytest.mark.parametrize("fusion", ["staged", "fused"])
    def test_float32_preserved(self, rng, fusion):
        A = rng.standard_normal((24, 24)).astype(np.float32)
        C = multiply(A, A, algorithm="strassen", fusion=fusion)
        assert C.dtype == np.float32

    @pytest.mark.parametrize("fusion", ["staged", "fused"])
    def test_batched_stack_exact(self, rng, fusion):
        cplan = plancache.compile((24, 24, 24), "strassen", fusion=fusion)
        A = rng.standard_normal((9, 24, 24))
        B = rng.standard_normal((9, 24, 24))
        C = runtime.execute_plan(cplan, A, B, np.zeros((9, 24, 24)), threads=2)
        assert np.abs(C - A @ B).max() < 1e-10


class TestThreadInvariance:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("fusion", ["staged", "fused"])
    def test_threads_reproduce_serial(self, rng, variant, fusion):
        """Private Cacc slabs + deterministic reduce: threads agree with
        serial to fp-reassociation precision for every mode."""
        cplan = plancache.compile((48, 48, 48), "strassen", levels=2,
                                  variant=variant, fusion=fusion)
        A = rng.standard_normal((48, 48))
        B = rng.standard_normal((48, 48))
        C1 = runtime.execute_plan(cplan, A, B, np.zeros((48, 48)), threads=1)
        for t in (2, 3, 5):
            Ct = runtime.execute_plan(cplan, A, B, np.zeros((48, 48)), threads=t)
            assert np.abs(Ct - C1).max() < 1e-10, (variant, fusion, t)

    def test_same_thread_count_is_deterministic(self, rng):
        """The fused reduce folds worker slabs in slot order — bitwise
        reproducible across runs for a fixed thread count."""
        cplan = plancache.compile((32, 32, 32), "strassen", fusion="fused")
        A = rng.standard_normal((32, 32))
        B = rng.standard_normal((32, 32))
        runs = [
            runtime.execute_plan(cplan, A, B, np.zeros((32, 32)), threads=3)
            for _ in range(3)
        ]
        assert np.array_equal(runs[0], runs[1])
        assert np.array_equal(runs[1], runs[2])


class TestFusedLowering:
    def test_fused_phase_structure(self):
        cplan = plancache.compile((64, 64, 64), "strassen", levels=1)
        g = runtime.lower_plan(cplan, workers=2, fusion="fused")
        kinds = [p[0].kind for p in g.phases]
        assert kinds == ["gather_a", "fproduct", "reduce"]
        assert g.n_slots == 2

    def test_serial_fused_has_no_reduce(self):
        cplan = plancache.compile((64, 64, 64), "strassen", levels=1)
        g = runtime.lower_plan(cplan, workers=1, fusion="fused")
        assert [p[0].kind for p in g.phases] == ["gather_a", "fproduct"]

    def test_ungathered_fused_skips_gather_phase(self):
        cplan = plancache.compile((64, 64, 64), "strassen", levels=1)
        g = runtime.lower_plan(cplan, workers=1, fusion="fused", gathered=False)
        assert [p[0].kind for p in g.phases] == ["fproduct"]

    def test_fproduct_tasks_cover_all_products_once(self):
        cplan = plancache.compile((96, 96, 96), "strassen", levels=2)
        for workers in (1, 3, 8, 100):
            g = runtime.lower_plan(cplan, workers, fusion="fused")
            covered = sorted(
                i for p in g.phases for t in p if t.kind == "fproduct"
                for i in range(t.lo, t.hi)
            )
            assert covered == list(range(cplan.rank_total)), workers
            slots = [t.slot for p in g.phases for t in p if t.kind == "fproduct"]
            assert slots == list(range(len(slots)))  # one buffer set per task

    def test_auto_resolution_variant_and_size(self):
        """naive always lowers staged; ab/abc lower fused past the slab
        threshold and staged below it."""
        assert resolve_fusion("auto", "naive", 10 * FUSED_AUTO_THRESHOLD) == "staged"
        assert resolve_fusion("auto", "abc", FUSED_AUTO_THRESHOLD + 1) == "fused"
        assert resolve_fusion("auto", "abc", FUSED_AUTO_THRESHOLD - 1) == "staged"
        assert resolve_fusion("staged", "abc", 10**12) == "staged"
        assert resolve_fusion("fused", "naive", 0) == "fused"

    def test_compiled_plan_carries_resolved_fusion(self):
        small = plancache.compile((64, 64, 64), "strassen", levels=2)
        assert small.fusion == "staged"  # tiny slabs: auto stays staged
        big = plancache.compile((1024, 1024, 1024), "strassen", levels=2)
        assert big.fusion == "fused"  # slabs past the threshold
        naive = plancache.compile((1024, 1024, 1024), "strassen", levels=2,
                                  variant="naive")
        assert naive.fusion == "staged"  # naive *means* materialize

    def test_candidate_fusion_matches_compiled_plan(self):
        """Candidate.fusion uses the compiler's own resolution rule, so
        selection labels never contradict what compile() runs."""
        from repro.core.selection import enumerate_candidates
        from repro.model.machines import generic_laptop

        for m in (96, 2048):
            for cand in enumerate_candidates(m, m, m, generic_laptop(),
                                             max_levels=2)[:12]:
                cplan = plancache.compile(
                    (m, m, m), cand.shapes, variant=cand.variant
                )
                assert cand.fusion == cplan.fusion, (m, cand.label)

    def test_fusion_modes_are_distinct_cache_entries(self):
        a = plancache.compile((32, 32, 32), "strassen", fusion="staged")
        b = plancache.compile((32, 32, 32), "strassen", fusion="fused")
        assert a is not b
        assert a.fusion == "staged" and b.fusion == "fused"

    def test_auto_and_resolved_twin_share_one_cache_entry(self):
        """fusion='auto' and its resolved explicit spelling dedupe to one
        CompiledPlan, in either compile order."""
        auto = plancache.compile((48, 48, 48), "strassen")  # resolves staged
        assert plancache.compile((48, 48, 48), "strassen",
                                 fusion="staged") is auto
        assert plancache.plan_cache_info().currsize == 1
        explicit = plancache.compile((64, 64, 64), "strassen", fusion="staged")
        assert plancache.compile((64, 64, 64), "strassen") is explicit
        assert plancache.plan_cache_info().currsize == 2


class TestWorkspaceHighWater:
    def test_fused_peak_below_staged_at_two_levels(self, rng):
        """The memory claim, in-process: at 2 levels the fused pipeline's
        measured peak workspace is strictly below the staged pipeline's."""
        arena = WorkspaceArena()
        shape = (256, 256, 256)
        A = rng.standard_normal(shape[:2])
        B = rng.standard_normal(shape[1:])
        peaks = {}
        for fusion in ("staged", "fused"):
            cplan = plancache.compile(shape, "strassen", levels=2, fusion=fusion)
            runtime.execute_plan(cplan, A, B, np.zeros((shape[0], shape[2])),
                                 arena=arena)
            peaks[fusion] = runtime.last_report().peak_workspace_bytes
        assert 0 < peaks["fused"] < peaks["staged"]

    @pytest.mark.parametrize("fusion,threads", [
        ("staged", 1), ("fused", 1), ("fused", 2), ("fused", 4),
    ])
    def test_model_and_runtime_agree_on_peak_bytes(self, rng, fusion, threads):
        """perfmodel.predict_workspace_bytes is the runtime's exact twin."""
        from repro.core.spec import resolve_levels
        from repro.model.perfmodel import predict_workspace_bytes

        m = k = n = 192
        ml = resolve_levels("strassen", 2)
        cplan = plancache.compile((m, k, n), "strassen", levels=2, fusion=fusion)
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        runtime.execute_plan(cplan, A, B, np.zeros((m, n)), threads=threads)
        measured = runtime.last_report().peak_workspace_bytes
        predicted = predict_workspace_bytes(m, k, n, ml, fusion, threads=threads)
        assert measured == predicted

    def test_fusion_savings_priced_and_guarded(self):
        """predict_fusion_savings scales with the removed slab traffic and
        is zero when no core exists (like predict_workspace_bytes)."""
        from repro.core.spec import resolve_levels
        from repro.model.machines import generic_laptop
        from repro.model.perfmodel import (
            predict_fusion_savings,
            predict_workspace_bytes,
        )

        ml = resolve_levels("strassen", 2)
        machine = generic_laptop()
        small = predict_fusion_savings(256, 256, 256, ml, machine)
        large = predict_fusion_savings(1024, 1024, 1024, ml, machine)
        assert 0 < small < large
        # 4x the linear dims -> 16x the per-slab elements removed.
        assert large == pytest.approx(16 * small)
        # 2-level strassen partitions 4x4x4; a 2^3 problem has no core.
        assert predict_fusion_savings(2, 2, 2, ml, machine) == 0.0
        assert predict_workspace_bytes(2, 2, 2, ml, "staged") == 0

    def test_report_published_for_every_execution(self, rng):
        cplan = plancache.compile((16, 16, 16), "strassen")
        A = rng.standard_normal((16, 16))
        runtime.execute_plan(cplan, A, A, np.zeros((16, 16)))
        rep = runtime.last_report()
        assert rep.shape == (16, 16, 16)
        assert rep.core_path == "graph"
        assert rep.peak_workspace_bytes > 0
        assert rep.fusion in ("staged", "fused")


class TestSharedRuntimeEntryPoint:
    def test_both_engines_execute_through_execute_plan(self, rng, monkeypatch):
        """Acceptance: direct and blocked both run via ``lower_plan`` task
        graphs — their execute() funnels into the one runtime entry."""
        calls = []
        real = runtime.execute_plan

        def spy(cplan, A, B, C, *args, **kwargs):
            calls.append(kwargs.get("leaf"))
            return real(cplan, A, B, C, *args, **kwargs)

        monkeypatch.setattr(runtime, "execute_plan", spy)
        A = rng.standard_normal((32, 32))
        cplan = plancache.compile((32, 32, 32), "strassen")
        DirectEngine().execute(cplan, A, A, np.zeros((32, 32)))
        BlockedEngine().execute(cplan, A, A, np.zeros((32, 32)))
        assert len(calls) == 2
        from repro.core.variants import BlisProductLeaf

        assert calls[0] is None  # direct: the default NumPy leaf
        assert isinstance(calls[1], BlisProductLeaf)

    def test_blocked_engine_runs_on_the_task_graph(self, rng):
        eng = BlockedEngine(variant="ab", threads=2)
        A = rng.standard_normal((64, 64))
        eng.multiply(A, A, np.zeros((64, 64)),
                     plancache.compile((64, 64, 64), "strassen").ml)
        assert eng.last_report is not None
        assert eng.last_report.core_path == "graph"
        assert eng.last_report.fusion == "fused"  # packed leaves always stream


class TestValidationListings:
    def test_unknown_engine_lists_engines(self, rng):
        A = rng.standard_normal((4, 4))
        with pytest.raises(ValueError, match="direct.*blocked.*auto"):
            multiply(A, A, engine="gpu")

    def test_unknown_variant_lists_variants(self, rng):
        A = rng.standard_normal((4, 4))
        with pytest.raises(ValueError, match="naive.*ab.*abc"):
            multiply(A, A, variant="fast")

    def test_unknown_fusion_lists_modes(self, rng):
        A = rng.standard_normal((4, 4))
        with pytest.raises(ValueError, match="auto.*staged.*fused"):
            multiply(A, A, fusion="zap")

    def test_normalizers_accept_case_insensitive(self):
        assert normalize_variant("ABC") == "abc"
        assert normalize_fusion("Fused") == "fused"
        assert set(FUSION_MODES) == {"auto", "staged", "fused", "tiled"}

    @pytest.mark.parametrize("bad", [None, 3, b"abc"])
    def test_non_string_variant_rejected(self, bad):
        with pytest.raises(ValueError):
            normalize_variant(bad)

    def test_lower_plan_rejects_auto(self):
        cplan = plancache.compile((8, 8, 8), "strassen")
        with pytest.raises(ValueError, match="staged.*fused"):
            runtime.lower_plan(cplan, 1, fusion="auto")

    def test_execute_plan_rejects_bad_fusion(self, rng):
        cplan = plancache.compile((8, 8, 8), "strassen")
        A = rng.standard_normal((8, 8))
        with pytest.raises(ValueError, match="staged.*fused"):
            runtime.execute_plan(cplan, A, A, np.zeros((8, 8)), fusion="zap")


class TestCustomLeaf:
    def test_custom_leaf_streams_through_generic_pipeline(self, rng):
        """Any custom leaf runs the ungathered per-product pipeline (the
        generic leaf protocol the BLIS substrate uses), so its kernel is
        always honored — never silently bypassed by the grouped
        shortcut the built-in NumPy leaf takes."""

        class CountingLeaf(runtime.NumpyProductLeaf):
            supports_batch = False

            def __init__(self):
                self.products = 0

            def product(self, step, Av, Bv, Ct, S, T, M, slot):
                self.products += 1
                super().product(step, Av, Bv, Ct, S, T, M, slot)

        leaf = CountingLeaf()
        cplan = plancache.compile((32, 32, 32), "strassen", levels=2)
        A = rng.standard_normal((32, 32))
        B = rng.standard_normal((32, 32))
        C = runtime.execute_plan(cplan, A, B, np.zeros((32, 32)), leaf=leaf)
        assert np.abs(C - A @ B).max() < 1e-10
        assert leaf.products == cplan.rank_total == 49
        assert runtime.last_report().fusion == "fused"
