"""Tests for Naive / AB / ABC variant semantics and their cost signatures.

Since the streaming-runtime refactor the variants are leaf-kernel modes of
the one task-graph runtime (:class:`repro.core.variants.BlisProductLeaf`),
not a standalone loop nest — these tests pin the §4.1 cost signatures
through the BlockedEngine client and the leaf's own validation.
"""

import numpy as np
import pytest

from repro.core.executor import BlockedEngine, resolve_levels
from repro.core.variants import VARIANTS, BlisProductLeaf


def _run(variant, rng, shape=(64, 64, 64), spec="strassen", levels=1):
    ml = resolve_levels(spec, levels)
    m, k, n = shape
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))
    C = np.zeros((m, n))
    eng = BlockedEngine(variant=variant)
    eng.multiply(A, B, C, ml)
    assert np.abs(C - A @ B).max() < 1e-9
    return eng.counters


class TestCostSignatures:
    def test_abc_has_no_temporaries(self, rng):
        c = _run("abc", rng)
        assert c.temp_a_traffic == 0
        assert c.temp_b_traffic == 0
        assert c.temp_c_traffic == 0

    def test_ab_has_only_c_temporary(self, rng):
        c = _run("ab", rng)
        assert c.temp_a_traffic == 0
        assert c.temp_b_traffic == 0
        assert c.temp_c_traffic > 0

    def test_naive_has_all_temporaries(self, rng):
        c = _run("naive", rng)
        assert c.temp_a_traffic > 0
        assert c.temp_b_traffic > 0
        assert c.temp_c_traffic > 0

    def test_packing_read_ordering(self, rng):
        # ABC/AB read each A submatrix once per use (nnz(U) reads); naive
        # reads only R packed temporaries — fewer packing reads, paid back
        # as temporary traffic.
        abc = _run("abc", rng)
        naive = _run("naive", rng)
        assert abc.a_read > naive.a_read
        assert naive.temp_a_traffic > 0

    def test_c_kernel_traffic_ordering(self, rng):
        # ABC writes every destination from the kernel: nnz(W) > R streams.
        abc = _run("abc", rng)
        ab = _run("ab", rng)
        assert abc.c_traffic > ab.c_traffic

    def test_same_multiplication_flops(self, rng):
        flops = {v: _run(v, rng).mul_flops for v in VARIANTS}
        assert flops["abc"] == flops["ab"] == flops["naive"]
        # One-level Strassen: 7 products of (32)^3 blocks: 7 * 2 * 32^3.
        assert flops["abc"] == 7 * 2 * 32**3

    def test_threaded_counters_match_serial(self, rng):
        """Per-slot counter fan-out merges to the same totals as serial."""
        ml = resolve_levels("strassen", 1)
        A = rng.standard_normal((64, 64))
        B = rng.standard_normal((64, 64))
        serial = BlockedEngine(variant="abc", threads=1)
        serial.multiply(A, B, np.zeros((64, 64)), ml)
        threaded = BlockedEngine(variant="abc", threads=3)
        threaded.multiply(A, B, np.zeros((64, 64)), ml)
        assert threaded.counters.as_dict() == serial.counters.as_dict()


class TestLeafValidation:
    def test_unknown_variant_lists_valid_names(self):
        with pytest.raises(ValueError, match="naive.*ab.*abc"):
            BlisProductLeaf(variant="xyz")

    def test_unknown_variant_rejected_by_engine(self):
        with pytest.raises(ValueError, match="expected one of"):
            BlockedEngine(variant="xyz")

    def test_leaf_capabilities(self):
        leaf = BlisProductLeaf()
        assert not leaf.supports_batch
        assert not leaf.parallel_fringe
        assert leaf.needs_buffers == ()  # abc: fully fused, no buffers


class TestNoStandaloneLoopNest:
    def test_run_fmm_blocked_is_gone(self):
        """The blocked loop nest is deleted: products iterate only in the
        runtime's task graphs."""
        import repro.core.variants as variants

        assert not hasattr(variants, "run_fmm_blocked")
