"""Tests for Naive / AB / ABC variant semantics and their cost signatures."""

import numpy as np
import pytest

from repro.core.executor import BlockedEngine, resolve_levels
from repro.core.variants import VARIANTS, run_fmm_blocked


def _run(variant, rng, shape=(64, 64, 64), spec="strassen", levels=1):
    ml = resolve_levels(spec, levels)
    m, k, n = shape
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))
    C = np.zeros((m, n))
    eng = BlockedEngine(variant=variant)
    eng.multiply(A, B, C, ml)
    assert np.abs(C - A @ B).max() < 1e-9
    return eng.counters


class TestCostSignatures:
    def test_abc_has_no_temporaries(self, rng):
        c = _run("abc", rng)
        assert c.temp_a_traffic == 0
        assert c.temp_b_traffic == 0
        assert c.temp_c_traffic == 0

    def test_ab_has_only_c_temporary(self, rng):
        c = _run("ab", rng)
        assert c.temp_a_traffic == 0
        assert c.temp_b_traffic == 0
        assert c.temp_c_traffic > 0

    def test_naive_has_all_temporaries(self, rng):
        c = _run("naive", rng)
        assert c.temp_a_traffic > 0
        assert c.temp_b_traffic > 0
        assert c.temp_c_traffic > 0

    def test_packing_read_ordering(self, rng):
        # ABC/AB read each A submatrix once per use (nnz(U) reads); naive
        # reads only R packed temporaries — fewer packing reads, paid back
        # as temporary traffic.
        abc = _run("abc", rng)
        naive = _run("naive", rng)
        assert abc.a_read > naive.a_read
        assert naive.temp_a_traffic > 0

    def test_c_kernel_traffic_ordering(self, rng):
        # ABC writes every destination from the kernel: nnz(W) > R streams.
        abc = _run("abc", rng)
        ab = _run("ab", rng)
        assert abc.c_traffic > ab.c_traffic

    def test_same_multiplication_flops(self, rng):
        flops = {v: _run(v, rng).mul_flops for v in VARIANTS}
        assert flops["abc"] == flops["ab"] == flops["naive"]
        # One-level Strassen: 7 products of (32)^3 blocks: 7 * 2 * 32^3.
        assert flops["abc"] == 7 * 2 * 32**3


class TestRunFmmBlockedValidation:
    def test_unknown_variant(self, rng):
        ml = resolve_levels("strassen", 1)
        from repro.core.morton import block_views

        A = rng.standard_normal((8, 8))
        B = rng.standard_normal((8, 8))
        C = np.zeros((8, 8))
        with pytest.raises(ValueError):
            run_fmm_blocked(
                block_views(A, ml.grids("A")),
                block_views(B, ml.grids("B")),
                block_views(C, ml.grids("C")),
                ml,
                variant="xyz",
            )
