"""Tests for the persistent worker-process pool (core/procpool.py)."""

from __future__ import annotations

import multiprocessing as mp
import os

import pytest

from repro.core import procpool
from repro.core.procpool import (
    default_start_method,
    get_process_pool,
    process_pool_info,
    shutdown_process_pools,
)

START_METHODS = [
    m for m in ("fork", "spawn") if m in mp.get_all_start_methods()
]


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    shutdown_process_pools()


class TestDefaultStartMethod:
    def test_is_available(self):
        assert default_start_method() in mp.get_all_start_methods()

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert default_start_method() == "spawn"

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "telepathy")
        with pytest.raises(ValueError, match="REPRO_START_METHOD"):
            default_start_method()


class TestProcessPool:
    def test_ping_returns_worker_pids(self):
        pool = get_process_pool(2)
        pids = pool.ping()
        assert len(pids) == 2
        assert len(set(pids)) == 2
        assert os.getpid() not in pids

    def test_pool_reused_across_requests(self):
        pool = get_process_pool(2)
        assert get_process_pool(2) is pool

    def test_distinct_counts_distinct_pools(self):
        assert get_process_pool(1) is not get_process_pool(2)

    def test_pool_info_covers_live_pools(self):
        pool = get_process_pool(2)
        info = process_pool_info()
        key = (2, pool.start_method)
        assert key in info
        assert info[key]["workers"] == 2
        assert info[key]["alive"] == 2
        assert info[key]["start_method"] == pool.start_method

    def test_shutdown_drops_workers_and_registry(self):
        pool = get_process_pool(2)
        procs = list(pool._procs)
        shutdown_process_pools()
        assert process_pool_info() == {}
        for p in procs:
            p.join(timeout=10)
            assert not p.is_alive()

    def test_broken_pool_replaced(self):
        pool = get_process_pool(1)
        pool.broken = True
        fresh = get_process_pool(1)
        assert fresh is not pool
        assert fresh.ping()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            get_process_pool(0)

    @pytest.mark.parametrize("method", START_METHODS)
    def test_start_methods(self, method):
        pool = get_process_pool(2, start_method=method)
        assert pool.start_method == method
        assert len(pool.ping()) == 2

    def test_fork_registry_reset_leaves_parent_pool_alone(self):
        # Simulate the at-fork child hook: the child must drop the
        # inherited registry entries without touching the parent's
        # worker processes.
        pool = get_process_pool(2)
        saved = dict(procpool._proc_pools)
        try:
            procpool._reset_after_fork_in_child()
            assert procpool._proc_pools == {}
            assert pool.alive() == 2  # parent workers untouched
        finally:
            with procpool._proc_lock:
                procpool._proc_pools.update(saved)
