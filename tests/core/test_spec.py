"""Tests for the shared algorithm-spec normalizer."""

import numpy as np
import pytest

from repro.algorithms.strassen import strassen
from repro.core.kronecker import MultiLevelFMM
from repro.core.spec import (
    normalize_spec,
    normalize_threads,
    resolve_levels,
    spec_key,
)


class TestNormalizeSpec:
    def test_name_replicates_levels(self):
        assert normalize_spec("strassen", 3) == ("strassen",) * 3

    def test_shape_tuple_is_one_atom(self):
        assert normalize_spec((2, 3, 4), 2) == ((2, 3, 4), (2, 3, 4))

    def test_plus_string_splits_per_level(self):
        assert normalize_spec("strassen+<3,3,3>") == ("strassen", "<3,3,3>")

    def test_plus_string_ignores_levels(self):
        # Explicit stacks fix the level count; `levels` is documented as
        # ignored (matching the historical CLI behavior).
        assert normalize_spec("strassen+classical", levels=5) == (
            "strassen",
            "classical",
        )

    def test_list_is_per_level_stack(self):
        spec = ["strassen", (3, 3, 3)]
        assert normalize_spec(spec) == ("strassen", (3, 3, 3))

    def test_algorithm_object_atom(self):
        s = strassen()
        assert normalize_spec(s, 2) == (s, s)

    def test_multilevel_passthrough(self):
        ml = MultiLevelFMM([strassen(), strassen()])
        assert normalize_spec(ml) == ml.levels

    def test_bad_levels(self):
        with pytest.raises(ValueError):
            normalize_spec("strassen", 0)

    def test_empty_stack(self):
        with pytest.raises(ValueError):
            normalize_spec([])

    def test_unknown_form(self):
        with pytest.raises(TypeError):
            normalize_spec(3.14)

    def test_bad_atom_in_stack(self):
        with pytest.raises(TypeError):
            normalize_spec(["strassen", 7])


class TestNormalizeThreads:
    def test_valid_counts_pass_through(self):
        assert normalize_threads(1) == 1
        assert normalize_threads(4) == 4
        assert normalize_threads(np.int64(2)) == 2

    def test_none_means_unspecified(self):
        assert normalize_threads(None) is None

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_nonpositive_raise_value_error(self, bad):
        with pytest.raises(ValueError, match="threads"):
            normalize_threads(bad)

    @pytest.mark.parametrize("bad", [2.5, "4", True])
    def test_non_integers_raise_type_error(self, bad):
        with pytest.raises(TypeError, match="threads"):
            normalize_threads(bad)

    def test_multiply_rejects_bad_threads_up_front(self):
        # The satellite fix: multiply(threads=0) must fail at
        # spec-normalization time, before any compilation or execution.
        from repro.core.executor import multiply

        A = np.ones((4, 4))
        for bad in (0, -3):
            with pytest.raises(ValueError, match="threads"):
                multiply(A, A, threads=bad)

    def test_multiply_rejects_negative_levels_up_front(self):
        from repro.core.executor import multiply

        A = np.ones((4, 4))
        for bad in (0, -1):
            with pytest.raises(ValueError, match="levels"):
                multiply(A, A, algorithm="strassen", levels=bad)


class TestResolveLevels:
    def test_hybrid_plus_string(self):
        ml = resolve_levels("strassen+<3,2,3>")
        assert ml.L == 2
        assert ml.dims_total == (6, 4, 6)

    def test_matches_list_form(self):
        a = resolve_levels("strassen+<3,3,3>")
        b = resolve_levels(["strassen", "<3,3,3>"])
        assert a.dims_total == b.dims_total
        assert a.rank_total == b.rank_total


class TestSpecKey:
    def test_equivalent_shape_spellings_coincide(self):
        assert (
            spec_key("<2,3,2>")
            == spec_key((2, 3, 2))
            == spec_key("2,3,2")
        )

    def test_names_are_case_insensitive(self):
        assert spec_key("Strassen") == spec_key("strassen")

    def test_levels_change_key(self):
        assert spec_key("strassen", 1) != spec_key("strassen", 2)

    def test_object_atoms_keyed_by_identity(self):
        s1, s2 = strassen(), strassen()
        assert spec_key(s1) != spec_key(s2)
        assert spec_key(s1) == spec_key(s1)
