"""Tests for Freivalds' randomized product verification."""

import numpy as np
import pytest

from repro.core.executor import multiply
from repro.core.verify import freivalds, verify_product


class TestFreivalds:
    def test_accepts_correct_product(self, rng):
        A = rng.standard_normal((50, 40))
        B = rng.standard_normal((40, 60))
        assert freivalds(A, B, A @ B)

    def test_accepts_fmm_roundoff(self, rng):
        A = rng.standard_normal((100, 100))
        B = rng.standard_normal((100, 100))
        C = multiply(A, B, algorithm="strassen", levels=2)
        assert freivalds(A, B, C)

    def test_rejects_wrong_product(self, rng):
        A = rng.standard_normal((32, 32))
        B = rng.standard_normal((32, 32))
        C = A @ B
        C[3, 4] += 1.0
        assert not freivalds(A, B, C)

    def test_rejects_small_corruption(self, rng):
        A = rng.standard_normal((64, 64))
        B = rng.standard_normal((64, 64))
        C = A @ B
        C[0, 0] += 1e-2 * np.abs(C).max()
        assert not freivalds(A, B, C, trials=32)

    def test_rejects_transposed_result(self, rng):
        A = rng.standard_normal((48, 48))
        B = rng.standard_normal((48, 48))
        assert not freivalds(A, B, (A @ B).T)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            freivalds(
                rng.standard_normal((4, 4)),
                rng.standard_normal((5, 4)),
                np.zeros((4, 4)),
            )


class TestVerifyProduct:
    def test_small_exact_path(self, rng):
        A = rng.standard_normal((20, 20))
        B = rng.standard_normal((20, 20))
        assert verify_product(A, B, A @ B)
        bad = A @ B + 1e-3
        assert not verify_product(A, B, bad)

    def test_large_randomized_path(self, rng):
        A = rng.standard_normal((600, 64))
        B = rng.standard_normal((64, 600))
        C = multiply(A, B, algorithm=(4, 2, 2))
        assert verify_product(A, B, C, exact_threshold=128)
