"""Tests for the execution engines and the public multiply()."""

import numpy as np
import pytest

from repro.core.executor import (
    BlockedEngine,
    DirectEngine,
    multiply,
    resolve_levels,
)


class TestResolveLevels:
    def test_name(self):
        ml = resolve_levels("strassen", 2)
        assert ml.L == 2
        assert ml.dims_total == (4, 4, 4)

    def test_tuple(self):
        ml = resolve_levels((3, 2, 3), 1)
        assert ml.dims_total == (3, 2, 3)

    def test_hybrid_list(self):
        ml = resolve_levels(["strassen", "<3,2,3>"])
        assert ml.dims_total == (6, 4, 6)

    def test_passthrough(self):
        ml = resolve_levels("strassen", 1)
        assert resolve_levels(ml) is ml

    def test_bad_levels(self):
        with pytest.raises(ValueError):
            resolve_levels("strassen", 0)


class TestDirectEngine:
    @pytest.mark.parametrize(
        "spec,levels,shape",
        [
            ("strassen", 1, (32, 32, 32)),
            ("strassen", 2, (36, 40, 44)),
            ("strassen", 3, (64, 64, 64)),
            ("winograd", 1, (30, 30, 30)),
            ((3, 3, 3), 1, (27, 27, 27)),
            ((2, 5, 2), 1, (32, 40, 36)),
            ((3, 3, 6), 1, (33, 36, 66)),
            (["strassen", "<3,3,3>"], 1, (48, 48, 48)),
        ],
    )
    def test_matches_numpy(self, rng, spec, levels, shape):
        m, k, n = shape
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        C = np.zeros((m, n))
        DirectEngine().multiply(A, B, C, resolve_levels(spec, levels))
        assert np.abs(C - A @ B).max() < 1e-9

    def test_peeling_shapes(self, rng):
        ml = resolve_levels("strassen", 2)
        for shape in [(17, 19, 23), (4, 100, 4), (101, 3, 57)]:
            m, k, n = shape
            A = rng.standard_normal((m, k))
            B = rng.standard_normal((k, n))
            C = np.zeros((m, n))
            DirectEngine().multiply(A, B, C, ml)
            assert np.abs(C - A @ B).max() < 1e-9

    def test_accumulates_into_c(self, rng):
        ml = resolve_levels("strassen", 1)
        A = rng.standard_normal((8, 8))
        B = rng.standard_normal((8, 8))
        C = np.ones((8, 8))
        DirectEngine().multiply(A, B, C, ml)
        assert np.allclose(C, 1.0 + A @ B)


class TestBlockedEngine:
    @pytest.mark.parametrize("variant", ["naive", "ab", "abc"])
    def test_variants_match_numpy(self, rng, variant):
        ml = resolve_levels("strassen", 2)
        A = rng.standard_normal((100, 104))
        B = rng.standard_normal((104, 96))
        C = np.zeros((100, 96))
        BlockedEngine(variant=variant).multiply(A, B, C, ml)
        assert np.abs(C - A @ B).max() < 1e-9

    def test_micro_mode_matches_slab(self, rng):
        ml = resolve_levels("strassen", 1)
        A = rng.standard_normal((40, 40))
        B = rng.standard_normal((40, 40))
        C1 = np.zeros((40, 40))
        C2 = np.zeros((40, 40))
        BlockedEngine(mode="micro").multiply(A, B, C1, ml)
        BlockedEngine(mode="slab").multiply(A, B, C2, ml)
        assert np.allclose(C1, C2)

    def test_threads_match_sequential(self, rng):
        ml = resolve_levels((3, 2, 3), 1)
        A = rng.standard_normal((300, 200))
        B = rng.standard_normal((200, 300))
        C1 = np.zeros((300, 300))
        C2 = np.zeros((300, 300))
        BlockedEngine(threads=1).multiply(A, B, C1, ml)
        BlockedEngine(threads=4).multiply(A, B, C2, ml)
        assert np.allclose(C1, C2)
        assert np.abs(C1 - A @ B).max() < 1e-9

    def test_counters_populated(self, rng):
        eng = BlockedEngine(variant="abc")
        A = rng.standard_normal((64, 64))
        B = rng.standard_normal((64, 64))
        eng.multiply(A, B, np.zeros((64, 64)), resolve_levels("strassen", 1))
        c = eng.counters
        assert c.mul_flops > 0
        assert c.a_read > 0 and c.b_read > 0
        assert c.c_traffic > 0
        assert c.temp_c_traffic == 0  # ABC never materializes M_r

    def test_gemm_baseline(self, rng):
        eng = BlockedEngine()
        A = rng.standard_normal((70, 80))
        B = rng.standard_normal((80, 90))
        C = np.zeros((70, 90))
        eng.gemm(A, B, C)
        assert np.abs(C - A @ B).max() < 1e-10
        # Plain GEMM on one block: exactly 2mnk multiply flops.
        assert eng.counters.mul_flops == 2 * 70 * 80 * 90


class TestPublicMultiply:
    def test_default_strassen(self, rng):
        A = rng.standard_normal((64, 64))
        B = rng.standard_normal((64, 64))
        C = multiply(A, B)
        assert np.allclose(C, A @ B)

    def test_all_engines_variants(self, rng):
        A = rng.standard_normal((48, 48))
        B = rng.standard_normal((48, 48))
        for engine in ("direct", "blocked"):
            for variant in ("naive", "ab", "abc"):
                C = multiply(
                    A, B, algorithm=(3, 2, 3), engine=engine, variant=variant
                )
                assert np.allclose(C, A @ B)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            multiply(rng.standard_normal((4, 5)), rng.standard_normal((4, 5)))

    def test_rejects_unknown_engine(self, rng):
        A = rng.standard_normal((4, 4))
        with pytest.raises(ValueError):
            multiply(A, A, engine="gpu")

    def test_int_inputs_promoted(self):
        A = np.arange(16).reshape(4, 4)
        B = np.eye(4, dtype=int)
        C = multiply(A, B, algorithm="strassen")
        assert np.allclose(C, A)
