"""Tests for model-guided selection (the poly-algorithm)."""

import pytest

from repro.core.selection import Candidate, enumerate_candidates, rank_candidates, select
from repro.model.machines import ivy_bridge_e5_2680_v2

MACH = ivy_bridge_e5_2680_v2(1)


class TestEnumerate:
    def test_counts(self):
        cands = enumerate_candidates(4800, 4800, 4800, MACH, max_levels=1)
        # 23 one-level shapes x 3 variants.
        assert len(cands) == 23 * 3

    def test_two_level_includes_hybrids(self):
        cands = enumerate_candidates(4800, 4800, 4800, MACH, max_levels=2)
        labels = {c.label for c in cands}
        assert any("+" in lab for lab in labels)
        assert "<2,2,2>+<3,3,3>/abc" in labels

    def test_too_small_problem_filters(self):
        cands = enumerate_candidates(3, 3, 3, MACH, max_levels=2)
        for c in cands:
            Mt = 1
            for s in c.shapes:
                Mt *= s[0]
            assert Mt <= 3

    def test_variants_restricted(self):
        cands = enumerate_candidates(1000, 1000, 1000, MACH, variants=("abc",))
        assert {c.variant for c in cands} == {"abc"}


class TestRankAndSelect:
    def test_ranking_sorted(self):
        ranked = rank_candidates(enumerate_candidates(4800, 480, 4800, MACH))
        times = [c.prediction.time for c in ranked]
        assert times == sorted(times)

    def test_select_returns_finalist(self):
        winner, ranked = select(14400, 480, 14400, MACH, top=2)
        assert isinstance(winner, Candidate)
        assert winner.label in {c.label for c in ranked[:2]}

    def test_rank_k_update_prefers_abc(self):
        # Paper §4.3: for small k the ABC variant wins (no M_r traffic).
        winner, _ = select(14400, 480, 14400, MACH)
        assert winner.variant == "abc"

    def test_large_square_prefers_ab_or_naive(self):
        # Paper §4.3: for large k the AB/Naive variants overtake ABC.
        winner, _ = select(12000, 12000, 12000, MACH)
        assert winner.variant in ("ab", "naive")

    def test_empty_problem_raises(self):
        with pytest.raises(ValueError):
            select(1, 1, 1, MACH)

    def test_measure_hook(self):
        # A custom measurement can override the model's favorite.
        calls = []

        def fake_measure(c):
            calls.append(c.label)
            return float(len(calls))  # first finalist "measures" fastest

        winner, ranked = select(4800, 4800, 4800, MACH, top=3, measure=fake_measure)
        assert len(calls) == 3
        assert winner.label == ranked[0].label
