"""Tests for model-guided selection (the poly-algorithm)."""

import pytest

from repro.core.selection import (
    Candidate,
    enumerate_candidates,
    hybrid_shapes_for,
    rank_candidates,
    select,
)
from repro.model.machines import ivy_bridge_e5_2680_v2

MACH = ivy_bridge_e5_2680_v2(1)


class TestEnumerate:
    def test_counts(self):
        cands = enumerate_candidates(4800, 4800, 4800, MACH, max_levels=1)
        # 23 one-level shapes x 3 variants.
        assert len(cands) == 23 * 3

    def test_two_level_includes_hybrids(self):
        cands = enumerate_candidates(4800, 4800, 4800, MACH, max_levels=2)
        labels = {c.label for c in cands}
        assert any("+" in lab for lab in labels)
        assert "<2,2,2>+<3,3,3>/abc" in labels

    def test_too_small_problem_filters(self):
        cands = enumerate_candidates(3, 3, 3, MACH, max_levels=2)
        for c in cands:
            Mt = 1
            for s in c.shapes:
                Mt *= s[0]
            assert Mt <= 3

    def test_variants_restricted(self):
        cands = enumerate_candidates(1000, 1000, 1000, MACH, variants=("abc",))
        assert {c.variant for c in cands} == {"abc"}


class TestHybridShapesFor:
    def test_square_problem_keeps_default_set(self):
        from repro.core.selection import _DEFAULT_HYBRID_SHAPES, hybrid_shapes_for

        shapes = hybrid_shapes_for(1024, 1024, 1024)
        assert set(_DEFAULT_HYBRID_SHAPES) <= set(shapes)

    def test_skewed_problem_adds_matching_rectangular_shapes(self):
        # m = n = 3k: shapes cutting m, n harder than k must appear.
        shapes = hybrid_shapes_for(1152, 384, 1152)
        assert any(s[0] > s[1] and s[2] > s[1] for s in shapes), shapes

    def test_deterministic_and_duplicate_free(self):
        a = hybrid_shapes_for(2048, 256, 2048)
        assert a == hybrid_shapes_for(2048, 256, 2048)
        assert len(a) == len(set(a))

    def test_degenerate_dims_fall_back_to_default_set(self):
        from repro.core.selection import _DEFAULT_HYBRID_SHAPES

        assert hybrid_shapes_for(64, 0, 64) == _DEFAULT_HYBRID_SHAPES
        assert hybrid_shapes_for(0, 8, 8) == _DEFAULT_HYBRID_SHAPES

    def test_empty_operand_auto_multiply_still_works(self):
        # Regression: the aspect-ratio math must not crash the auto path
        # for empty multiplies (classical fallback handles them).
        import numpy as np

        from repro.core.executor import multiply

        C = multiply(np.ones((16, 0)), np.ones((0, 16)), engine="auto",
                     tune="off")
        assert C.shape == (16, 16) and not C.any()


class TestSkewedSelection:
    def test_auto_config_picks_non_square_schedule_on_skewed_shape(self):
        # The tentpole acceptance: the model path leaves the square family
        # when the problem's aspect ratio calls for it.
        from repro.core.selection import _model_config

        algo, levels, variant, engine, threads, backend, workers = _model_config(
            1152, 384, 1152
        )
        assert algo != "classical"
        assert any(tuple(s) != (2, 2, 2) for s in algo), algo

    def test_candidate_carries_schedule_signature(self):
        cands = enumerate_candidates(4800, 4800, 4800, MACH, max_levels=2)
        labeled = {c.signature for c in cands}
        assert "<2,2,2>@2" in labeled
        assert any("," in sig for sig in labeled)  # mixed schedules present


class TestRankAndSelect:
    def test_ranking_sorted(self):
        ranked = rank_candidates(enumerate_candidates(4800, 480, 4800, MACH))
        times = [c.prediction.time for c in ranked]
        assert times == sorted(times)

    def test_select_returns_finalist(self):
        winner, ranked = select(14400, 480, 14400, MACH, top=2)
        assert isinstance(winner, Candidate)
        assert winner.label in {c.label for c in ranked[:2]}

    def test_rank_k_update_prefers_abc(self):
        # Paper §4.3: for small k the ABC variant wins (no M_r traffic).
        winner, _ = select(14400, 480, 14400, MACH)
        assert winner.variant == "abc"

    def test_large_square_prefers_ab_or_naive(self):
        # Paper §4.3: for large k the AB/Naive variants overtake ABC.
        winner, _ = select(12000, 12000, 12000, MACH)
        assert winner.variant in ("ab", "naive")

    def test_empty_problem_raises(self):
        with pytest.raises(ValueError):
            select(1, 1, 1, MACH)

    def test_measure_hook(self):
        # A custom measurement can override the model's favorite.
        calls = []

        def fake_measure(c):
            calls.append(c.label)
            return float(len(calls))  # first finalist "measures" fastest

        winner, ranked = select(4800, 4800, 4800, MACH, top=3, measure=fake_measure)
        assert len(calls) == 3
        assert winner.label == ranked[0].label

    def test_measurement_can_overturn_model_rank1(self):
        # The §4.4 point of measuring at all: fringe effects invisible to
        # the model can make the measured winner differ from its rank-1.
        def contrarian(c):
            return -c.prediction.time  # model's worst finalist "wins"

        winner, ranked = select(4800, 4800, 4800, MACH, top=3,
                                measure=contrarian)
        # The winner is the slowest-predicted finalist (mirror-schedule
        # candidates can tie exactly, so compare times, not labels).
        assert winner.prediction.time == max(
            c.prediction.time for c in ranked[:3]
        )
        assert winner.prediction.time > ranked[0].prediction.time

    def test_select_with_real_measuring_callable(self):
        # Drive selection with actual wall-clock measurements through the
        # runtime (the tune harness), not the simulator.
        from repro.tune.measure import MeasureConfig, measure_candidate

        measured = []

        def real_measure(c):
            meas = measure_candidate(
                96, 96, 96, c.shapes, levels=c.levels, variant=c.variant,
                config=MeasureConfig(warmup=1, repeats=2, inner=2),
            )
            measured.append(meas)
            return meas.time_s

        winner, ranked = select(96, 96, 96, MACH, top=2, max_levels=1,
                                measure=real_measure)
        assert len(measured) == 2
        assert all(m.time_s > 0 for m in measured)
        # The measured winner is whichever finalist clocked fastest —
        # which may or may not be the model's rank-1.
        finalists = {c.label for c in ranked[:2]}
        assert winner.label in finalists
        # measure runs in finalist order, so measured[i] <-> ranked[i].
        fastest = min(measured, key=lambda m: m.time_s)
        assert winner.label == ranked[measured.index(fastest)].label
