"""Tests for the workspace arena allocator."""

import threading

import numpy as np
import pytest

from repro.core.workspace import WorkspaceArena, arena_clear, arena_stats


@pytest.fixture
def arena():
    return WorkspaceArena()


def spec_small():
    return {"x": ((4, 4), np.dtype(np.float64)), "y": ((2, 8), np.dtype(np.float32))}


class TestArena:
    def test_acquire_builds_buffers(self, arena):
        ws = arena.acquire(("k",), spec_small)
        assert ws["x"].shape == (4, 4) and ws["x"].dtype == np.float64
        assert ws["y"].shape == (2, 8) and ws["y"].dtype == np.float32
        assert ws.nbytes == 4 * 4 * 8 + 2 * 8 * 4

    def test_release_then_reacquire_reuses(self, arena):
        ws = arena.acquire(("k",), spec_small)
        arena.release(ws)
        again = arena.acquire(("k",), spec_small)
        assert again is ws
        st = arena.stats()
        assert st.allocations == 1 and st.reuses == 1

    def test_spec_factory_not_called_on_reuse(self, arena):
        calls = []

        def spec():
            calls.append(1)
            return spec_small()

        arena.release(arena.acquire(("k",), spec))
        arena.release(arena.acquire(("k",), spec))
        assert len(calls) == 1

    def test_distinct_keys_do_not_share(self, arena):
        w1 = arena.acquire(("a",), spec_small)
        w2 = arena.acquire(("b",), spec_small)
        assert w1 is not w2
        arena.release(w1)
        assert arena.acquire(("b",), spec_small) is not w1

    def test_concurrent_acquires_get_distinct_workspaces(self, arena):
        """Two in-flight checkouts of one key never alias."""
        w1 = arena.acquire(("k",), spec_small)
        w2 = arena.acquire(("k",), spec_small)
        assert w1 is not w2
        assert arena.stats().allocations == 2
        arena.release(w1)
        arena.release(w2)
        assert arena.stats().free == 2

    def test_clear_resets(self, arena):
        arena.release(arena.acquire(("k",), spec_small))
        arena.clear()
        st = arena.stats()
        assert st == (0,) * len(st)

    def test_idle_pool_bounded_by_max_bytes(self):
        nbytes = 4 * 4 * 8 + 2 * 8 * 4
        arena = WorkspaceArena(max_bytes=nbytes)  # room for exactly one
        w1 = arena.acquire(("a",), spec_small)
        w2 = arena.acquire(("b",), spec_small)
        arena.release(w1)
        arena.release(w2)  # over the idle bound -> dropped, not pooled
        st = arena.stats()
        assert st.free == 1
        assert st.bytes_pooled == nbytes <= arena.max_bytes
        # The hot config still reuses its pooled workspace.
        assert arena.acquire(("a",), spec_small) is w1

    def test_in_use_and_peak_bytes_tracked(self, arena):
        nbytes = 4 * 4 * 8 + 2 * 8 * 4
        w1 = arena.acquire(("a",), spec_small)
        assert arena.stats().bytes_in_use == nbytes
        w2 = arena.acquire(("b",), spec_small)
        assert arena.stats().bytes_in_use == 2 * nbytes
        assert arena.stats().peak_bytes == 2 * nbytes
        arena.release(w1)
        arena.release(w2)
        st = arena.stats()
        assert st.bytes_in_use == 0
        assert st.peak_bytes == 2 * nbytes  # high-water is sticky

    def test_meter_windows_measure_per_execution_peak(self, arena):
        nbytes = 4 * 4 * 8 + 2 * 8 * 4
        # A workspace held before the window does not count against it.
        outside = arena.acquire(("pre",), spec_small)
        meter = arena.start_meter()
        w1 = arena.acquire(("a",), spec_small)
        w2 = arena.acquire(("b",), spec_small)
        arena.release(w1)
        arena.release(w2)
        assert arena.finish_meter(meter) == 2 * nbytes
        arena.release(outside)
        # A quiet window measures zero; finishing twice is idempotent.
        meter = arena.start_meter()
        assert arena.finish_meter(meter) == 0
        assert arena.finish_meter(meter) == 0

    def test_meter_counts_reused_workspaces(self, arena):
        nbytes = 4 * 4 * 8 + 2 * 8 * 4
        arena.release(arena.acquire(("k",), spec_small))  # pre-pool
        meter = arena.start_meter()
        arena.release(arena.acquire(("k",), spec_small))  # pure reuse
        assert arena.finish_meter(meter) == nbytes

    def test_thread_safety_smoke(self, arena):
        errors = []

        def worker():
            try:
                for _ in range(50):
                    ws = arena.acquire(("k",), spec_small)
                    ws["x"][0, 0] = 1.0
                    arena.release(ws)
            except Exception as e:  # pragma: no cover
                errors.append(e)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        st = arena.stats()
        assert st.in_use == 0
        assert st.allocations + st.reuses == 200


class TestGlobalArena:
    def test_stats_and_clear_roundtrip(self):
        from repro.core.executor import multiply

        arena_clear()
        rng = np.random.default_rng(0)
        A = rng.standard_normal((32, 32))
        multiply(A, A, algorithm="strassen", levels=1)
        st = arena_stats()
        assert st.allocations >= 1 and st.in_use == 0
        arena_clear()
        assert arena_stats().allocations == 0
