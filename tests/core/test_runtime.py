"""Tests for the task-graph parallel runtime."""

import numpy as np
import pytest

from repro.core import compile as plancache
from repro.core.runtime import (
    execute_plan,
    get_pool,
    lower_plan,
    pool_info,
)
from repro.core.workspace import WorkspaceArena


@pytest.fixture(autouse=True)
def fresh_cache():
    plancache.plan_cache_clear()
    yield
    plancache.plan_cache_clear()


class TestLowering:
    def test_phase_structure(self):
        cplan = plancache.compile((64, 64, 64), "strassen", levels=1)
        g = lower_plan(cplan, workers=2)
        kinds = [p[0].kind for p in g.phases]
        assert kinds == ["gather_a", "product", "scatter"]  # no fringes
        # gather phase holds both operands' tasks
        assert {t.kind for t in g.phases[0]} == {"gather_a", "gather_b"}

    def test_tasks_cover_index_spaces_exactly_once(self):
        cplan = plancache.compile((96, 96, 96), "strassen", levels=2)
        for workers in (1, 2, 3, 8):
            g = lower_plan(cplan, workers)
            for kind, total in (
                ("gather_a", len(cplan.a_table)),
                ("gather_b", len(cplan.b_table)),
                ("product", cplan.rank_total),
                ("scatter", len(cplan.c_table)),
            ):
                covered = sorted(
                    i
                    for p in g.phases
                    for t in p
                    if t.kind == kind
                    for i in range(t.lo, t.hi)
                )
                assert covered == list(range(total)), (kind, workers)

    def test_scatter_tasks_are_write_disjoint(self):
        """Each destination block of C is owned by exactly one scatter task."""
        cplan = plancache.compile((64, 64, 64), "strassen", levels=2)
        g = lower_plan(cplan, workers=4)
        owned = [
            i
            for p in g.phases
            for t in p
            if t.kind == "scatter"
            for i in range(t.lo, t.hi)
        ]
        assert len(owned) == len(set(owned))

    def test_fringe_tasks_emitted_for_peeled_shapes(self):
        cplan = plancache.compile((17, 19, 23), "strassen", levels=1)
        g = lower_plan(cplan, workers=2)
        assert any(t.kind == "fringe" for p in g.phases for t in p)

    def test_lowering_is_memoized(self):
        cplan = plancache.compile((64, 64, 64), "strassen")
        assert lower_plan(cplan, 2) is lower_plan(cplan, 2)
        assert lower_plan(cplan, 2) is not lower_plan(cplan, 3)

    def test_workers_validated(self):
        cplan = plancache.compile((8, 8, 8), "strassen")
        with pytest.raises(ValueError):
            lower_plan(cplan, 0)


class TestExecution:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize(
        "spec,levels,shape",
        [
            ("strassen", 1, (32, 32, 32)),
            ("strassen", 2, (36, 40, 44)),
            ((3, 2, 3), 1, (33, 22, 33)),
            (["strassen", "<3,3,3>"], 1, (48, 48, 48)),
        ],
    )
    def test_matches_numpy(self, rng, threads, spec, levels, shape):
        m, k, n = shape
        cplan = plancache.compile(shape, spec, levels=levels)
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        C = execute_plan(cplan, A, B, np.zeros((m, n)), threads=threads)
        assert np.abs(C - A @ B).max() < 1e-9

    @pytest.mark.parametrize("threads", [1, 3])
    def test_peeled_shapes(self, rng, threads):
        for shape in [(17, 19, 23), (4, 100, 4), (101, 3, 57)]:
            m, k, n = shape
            cplan = plancache.compile(shape, "strassen", levels=2)
            A = rng.standard_normal((m, k))
            B = rng.standard_normal((k, n))
            C = execute_plan(cplan, A, B, np.zeros((m, n)), threads=threads)
            assert np.abs(C - A @ B).max() < 1e-9, shape

    def test_threads_agree_with_serial(self, rng):
        cplan = plancache.compile((96, 96, 96), "strassen", levels=2)
        A = rng.standard_normal((96, 96))
        B = rng.standard_normal((96, 96))
        C1 = execute_plan(cplan, A, B, np.zeros((96, 96)), threads=1)
        for t in (2, 4):
            Ct = execute_plan(cplan, A, B, np.zeros((96, 96)), threads=t)
            assert np.abs(Ct - C1).max() < 1e-10

    def test_batched_stack(self, rng):
        cplan = plancache.compile((24, 24, 24), "strassen", levels=1)
        A = rng.standard_normal((9, 24, 24))
        B = rng.standard_normal((9, 24, 24))
        C = execute_plan(cplan, A, B, np.zeros((9, 24, 24)), threads=2)
        assert np.abs(C - A @ B).max() < 1e-10

    def test_accumulates_into_c(self, rng):
        cplan = plancache.compile((8, 8, 8), "strassen")
        A = rng.standard_normal((8, 8))
        C = execute_plan(cplan, A, A, np.ones((8, 8)), threads=2)
        assert np.allclose(C, 1.0 + A @ A)

    def test_step_fallback_when_workspace_capped(self, rng):
        cplan = plancache.compile((52, 52, 52), "strassen", levels=2)
        A = rng.standard_normal((52, 52))
        B = rng.standard_normal((52, 52))
        C_graph = execute_plan(cplan, A, B, np.zeros((52, 52)))
        C_steps = execute_plan(cplan, A, B, np.zeros((52, 52)), vector_cap=0)
        assert np.abs(C_graph - C_steps).max() < 1e-10

    def test_integer_c_preserved_via_step_path(self, rng):
        cplan = plancache.compile((8, 8, 8), "strassen")
        A = rng.integers(-5, 5, size=(8, 8))
        B = rng.integers(-5, 5, size=(8, 8))
        C = np.zeros((8, 8), dtype=np.int64)
        execute_plan(cplan, A, B, C, threads=2)
        assert C.dtype == np.int64
        assert np.array_equal(C, A @ B)

    def test_shape_mismatch_raises(self, rng):
        cplan = plancache.compile((16, 16, 16), "strassen")
        A = rng.standard_normal((8, 8))
        with pytest.raises(ValueError):
            execute_plan(cplan, A, A, np.zeros((8, 8)))

    def test_bad_threads_raise(self, rng):
        cplan = plancache.compile((8, 8, 8), "strassen")
        A = rng.standard_normal((8, 8))
        with pytest.raises(ValueError):
            execute_plan(cplan, A, A, np.zeros((8, 8)), threads=0)


class TestArenaIntegration:
    def test_private_arena_reused_across_calls(self, rng):
        arena = WorkspaceArena()
        cplan = plancache.compile((32, 32, 32), "strassen")
        A = rng.standard_normal((32, 32))
        execute_plan(cplan, A, A, np.zeros((32, 32)), arena=arena)
        first = arena.stats().allocations
        for _ in range(4):
            execute_plan(cplan, A, A, np.zeros((32, 32)), arena=arena)
        st = arena.stats()
        assert st.allocations == first
        assert st.reuses == 4
        assert st.in_use == 0

    def test_distinct_plans_get_distinct_workspaces(self, rng):
        arena = WorkspaceArena()
        for size in (16, 32):
            cplan = plancache.compile((size, size, size), "strassen")
            A = rng.standard_normal((size, size))
            execute_plan(cplan, A, A, np.zeros((size, size)), arena=arena)
        assert arena.stats().allocations == 2


class TestPools:
    def test_pools_are_reused(self):
        assert get_pool(2) is get_pool(2)
        assert get_pool(2) is not get_pool(3)
        info = pool_info()
        assert info[2] == 2 and info[3] == 3

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            get_pool(0)
