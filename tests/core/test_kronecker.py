"""Tests for multi-level Kronecker composition."""

import numpy as np
import pytest

from repro.algorithms.classical import classical
from repro.core.kronecker import MultiLevelFMM


class TestStructure:
    def test_one_level_passthrough(self, strassen_algo):
        ml = MultiLevelFMM([strassen_algo])
        assert ml.L == 1
        assert ml.dims_total == (2, 2, 2)
        assert ml.rank_total == 7
        assert np.array_equal(ml.U, strassen_algo.U)

    def test_two_level_strassen(self, strassen_algo):
        ml = MultiLevelFMM([strassen_algo, strassen_algo])
        assert ml.dims_total == (4, 4, 4)
        assert ml.rank_total == 49
        assert ml.U.shape == (16, 49)
        assert ml.V.shape == (16, 49)
        assert ml.W.shape == (16, 49)

    def test_hybrid_dims(self, strassen_algo):
        c = classical(3, 1, 2)
        ml = MultiLevelFMM([strassen_algo, c])
        assert ml.dims_total == (6, 2, 4)
        assert ml.rank_total == 7 * 6

    def test_kron_coefficients_match_numpy(self, strassen_algo):
        ml = MultiLevelFMM([strassen_algo, strassen_algo])
        assert np.array_equal(ml.U, np.kron(strassen_algo.U, strassen_algo.U))

    def test_empty_levels_raise(self):
        with pytest.raises(ValueError):
            MultiLevelFMM([])

    def test_grids(self, strassen_algo):
        ml = MultiLevelFMM([strassen_algo, classical(3, 1, 2)])
        assert ml.grids("A") == [(2, 2), (3, 1)]
        assert ml.grids("B") == [(2, 2), (1, 2)]
        assert ml.grids("C") == [(2, 2), (3, 2)]
        with pytest.raises(ValueError):
            ml.grids("D")


class TestNnz:
    def test_nnz_is_multiplicative(self, strassen_algo):
        # nnz(kron(X, Y)) = nnz(X) * nnz(Y) for exact zero patterns.
        ml = MultiLevelFMM([strassen_algo, strassen_algo])
        u1, v1, w1 = strassen_algo.nnz_uvw()
        u2, v2, w2 = ml.nnz_uvw()
        assert (u2, v2, w2) == (u1 * u1, v1 * v1, w1 * w1)

    def test_theoretical_speedup_compounds(self, strassen_algo):
        ml = MultiLevelFMM([strassen_algo] * 3)
        assert ml.theoretical_speedup() == pytest.approx((8 / 7) ** 3)


class TestColumns:
    def test_columns_reconstruct_matrices(self, strassen_algo):
        ml = MultiLevelFMM([strassen_algo, strassen_algo])
        cols = ml.columns
        assert len(cols) == 49
        U2 = np.zeros_like(ml.U)
        for r, (ai, ac, _, _, _, _) in enumerate(cols):
            U2[ai, r] = ac
        assert np.array_equal(U2, ml.U)

    def test_columns_are_nonempty(self, strassen_algo):
        # Every product must touch at least one block of each operand.
        ml = MultiLevelFMM([strassen_algo, classical(2, 1, 2)])
        for ai, _, bi, _, ci, _ in ml.columns:
            assert len(ai) >= 1 and len(bi) >= 1 and len(ci) >= 1
