"""Tests for the shared-memory process runtime (workers="processes")."""

from __future__ import annotations

import glob
import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core.executor import multiply, multiply_batched
from repro.core.procpool import shutdown_process_pools
from repro.core.runtime import last_report
from repro.core.workspace import (
    SHM_PREFIX,
    shared_arena_clear,
    shared_arena_stats,
)

START_METHODS = [
    m for m in ("fork", "spawn") if m in mp.get_all_start_methods()
]


def _host_shm_names() -> set[str]:
    return {
        os.path.basename(p)
        for p in glob.glob(f"/dev/shm/{SHM_PREFIX}_*")
    }


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    shutdown_process_pools()


def _mats(m, k, n, dtype=np.float64, seed=7):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, k)).astype(dtype)
    B = rng.standard_normal((k, n)).astype(dtype)
    return A, B


class TestProcessCorrectness:
    @pytest.mark.parametrize("fusion", ["staged", "fused"])
    def test_matches_thread_runtime_bitwise(self, fusion):
        A, B = _mats(96, 96, 96)
        Ct = multiply(A, B, algorithm="strassen", threads=2,
                      workers="threads", fusion=fusion)
        Cp = multiply(A, B, algorithm="strassen", threads=2,
                      workers="processes", fusion=fusion)
        assert np.array_equal(Ct, Cp)

    def test_staged_bitwise_vs_serial(self):
        A, B = _mats(80, 80, 80)
        Cs = multiply(A, B, algorithm="strassen", threads=1, fusion="staged")
        Cp = multiply(A, B, algorithm="strassen", threads=2,
                      workers="processes", fusion="staged")
        assert np.array_equal(Cs, Cp)

    def test_accumulates_into_c(self):
        A, B = _mats(64, 64, 64)
        C0 = np.random.default_rng(1).standard_normal((64, 64))
        C = multiply(A, B, C0.copy(), algorithm="strassen", procs=2)
        assert np.allclose(C, C0 + A @ B)

    def test_float32(self):
        A, B = _mats(64, 64, 64, dtype=np.float32)
        C = multiply(A, B, algorithm="strassen", procs=2)
        assert C.dtype == np.float32
        assert np.allclose(C, A @ B, atol=1e-2)

    def test_batched(self):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((3, 64, 64))
        B = rng.standard_normal((3, 64, 64))
        C = multiply_batched(A, B, algorithm="strassen",
                             threads=2, workers="processes")
        assert np.allclose(C, A @ B)

    @pytest.mark.parametrize("method", START_METHODS)
    def test_start_methods(self, method, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", method)
        shutdown_process_pools()
        A, B = _mats(64, 64, 64)
        C = multiply(A, B, algorithm="strassen", procs=2)
        assert np.allclose(C, A @ B)


class TestProcessReport:
    def test_report_fields(self):
        A, B = _mats(96, 96, 96)
        multiply(A, B, algorithm="strassen", threads=2, workers="processes")
        rep = last_report()
        assert rep.worker_mode == "processes"
        assert rep.n_workers == 2
        assert rep.ipc_bytes > 0
        assert rep.backend_path == "interpreted"  # kernels are process-local

    def test_thread_mode_reports_zero_ipc(self):
        A, B = _mats(96, 96, 96)
        multiply(A, B, algorithm="strassen", threads=2, workers="threads")
        rep = last_report()
        assert rep.worker_mode == "threads"
        assert rep.ipc_bytes == 0

    def test_serial_mode(self):
        A, B = _mats(64, 64, 64)
        multiply(A, B, algorithm="strassen", threads=1, workers="processes")
        rep = last_report()
        # threads=1 executes inline regardless of the requested mode.
        assert rep.worker_mode == "serial"
        assert rep.n_workers == 1


class TestKnobs:
    def test_procs_shorthand(self):
        A, B = _mats(64, 64, 64)
        multiply(A, B, algorithm="strassen", procs=2)
        rep = last_report()
        assert rep.worker_mode == "processes"
        assert rep.threads == 2

    def test_procs_conflicts_with_thread_workers(self):
        A, B = _mats(64, 64, 64)
        with pytest.raises(ValueError, match="workers"):
            multiply(A, B, algorithm="strassen", procs=2, workers="threads")

    def test_procs_conflicts_with_other_thread_count(self):
        A, B = _mats(64, 64, 64)
        with pytest.raises(ValueError, match="threads"):
            multiply(A, B, algorithm="strassen", procs=2, threads=4)

    def test_procs_agreeing_thread_count_ok(self):
        A, B = _mats(64, 64, 64)
        C = multiply(A, B, algorithm="strassen", procs=2, threads=2)
        assert np.allclose(C, A @ B)

    def test_invalid_workers_rejected(self):
        A, B = _mats(64, 64, 64)
        with pytest.raises(ValueError, match="workers"):
            multiply(A, B, algorithm="strassen", workers="fibers")

    def test_blocked_engine_rejects_processes(self):
        A, B = _mats(64, 64, 64)
        with pytest.raises(ValueError, match="blocked"):
            multiply(A, B, algorithm="strassen", engine="blocked",
                     threads=2, workers="processes")


class TestShmHygiene:
    def test_no_leaked_segments_and_arena_recycles(self):
        shared_arena_clear()
        before = _host_shm_names()
        A, B = _mats(96, 96, 96)
        for _ in range(3):
            multiply(A, B, algorithm="strassen", procs=2)
        stats = shared_arena_stats()
        assert stats.segments >= 1
        assert stats.reuses >= 1  # second call recycled the first's slab
        shared_arena_clear()
        stats = shared_arena_stats()
        assert stats.live_names == 0
        leaked = _host_shm_names() - before
        assert leaked == set(), f"leaked shm segments: {leaked}"
