"""The first-class Schedule object and the ``atom@count`` spec grammar."""

import itertools

import numpy as np
import pytest

from repro.algorithms.catalog import FIG2_SHAPES
from repro.algorithms.strassen import strassen
from repro.core import compile as plancache
from repro.core.executor import multiply
from repro.core.spec import (
    Schedule,
    normalize_schedule,
    normalize_spec,
    schedule_signature,
    spec_key,
)


class TestScheduleGrammar:
    def test_at_count_replicates(self):
        assert normalize_spec("strassen@3") == ("strassen",) * 3

    def test_comma_separated_schedule(self):
        assert normalize_spec("strassen@2,smirnov333@1") == (
            "strassen", "strassen", "smirnov333",
        )

    def test_commas_inside_shape_brackets_are_not_separators(self):
        assert normalize_spec("<2,3,4>@1,<2,2,2>@2") == (
            "<2,3,4>", "<2,2,2>", "<2,2,2>",
        )

    def test_bare_shape_string_still_one_atom(self):
        # Without "@" a comma string keeps its historical shape meaning.
        assert normalize_spec("2,3,2", 2) == ("2,3,2", "2,3,2")

    def test_plus_and_at_mix(self):
        assert normalize_spec("strassen@2+<3,3,3>") == (
            "strassen", "strassen", "<3,3,3>",
        )

    @pytest.mark.parametrize("bad", ["strassen@x", "strassen@0", "strassen@-1",
                                     "@2", "strassen@"])
    def test_malformed_token_raises_value_error(self, bad):
        with pytest.raises(ValueError, match="schedule token"):
            normalize_spec(bad)


class TestScheduleObject:
    def test_from_spec_and_len(self):
        s = Schedule.from_spec("strassen", 3)
        assert len(s) == 3
        assert list(s) == ["strassen"] * 3

    def test_signature_run_length_encodes(self):
        s = Schedule.from_spec("strassen+strassen+<3,3,3>")
        assert s.signature == "strassen@2,<3,3,3>@1"

    def test_signature_round_trips(self):
        s = Schedule.from_spec("<3,2,3>@1,<2,2,2>@2")
        assert Schedule.from_spec(s.signature) == s

    def test_alias_signature_coincides_with_shape(self):
        assert schedule_signature("smirnov333") == schedule_signature("<3,3,3>")

    def test_equality_and_hash_by_key(self):
        a = Schedule.from_spec("<2,3,2>@1")
        b = Schedule.from_spec("2,3,2")
        assert a == b and hash(a) == hash(b)

    def test_resolve_and_dims(self):
        s = Schedule.from_spec("<3,2,3>@1,strassen@1")
        assert s.dims_total() == (6, 4, 6)
        assert s.rank_total() == 15 * 7
        ml = s.resolve()
        assert [a.dims for a in ml.levels] == [(3, 2, 3), (2, 2, 2)]

    def test_empty_schedule_raises(self):
        with pytest.raises(ValueError):
            Schedule(())

    def test_bad_atom_raises(self):
        with pytest.raises(TypeError):
            Schedule((3.5,))

    def test_object_atoms_allowed(self):
        s = Schedule((strassen(),))
        assert len(s) == 1
        assert "strassen" in s.signature

    def test_normalize_schedule_passthrough(self):
        s = Schedule.from_spec("strassen@2")
        assert normalize_schedule(s) is s

    def test_spec_key_accepts_schedule(self):
        assert spec_key(Schedule.from_spec("strassen@2")) == spec_key(
            "strassen", 2
        )


class TestCompiledPlanSchedule:
    def test_plan_exposes_schedule(self):
        cp = plancache.compile((12, 12, 12), "<3,3,3>@1,strassen@1")
        assert cp.schedule == Schedule(((3, 3, 3), (2, 2, 2)))
        assert cp.schedule.signature == "<3,3,3>@1,<2,2,2>@1"

    def test_equivalent_spellings_share_a_cache_entry(self):
        a = plancache.compile((24, 24, 24), "smirnov333")
        b = plancache.compile((24, 24, 24), "<3,3,3>")
        assert a is b

    def test_schedule_string_spellings_share_a_cache_entry(self):
        a = plancache.compile((16, 16, 16), "strassen@2")
        b = plancache.compile((16, 16, 16), "strassen+strassen")
        assert a is b

    def test_ad_hoc_algorithm_not_misattributed_to_catalog(self):
        # classical(2,2,2) shares dims with catalog Strassen but is a
        # different (rank-8) algorithm; its schedule must not claim to be
        # the catalog <2,2,2> entry.
        from repro.algorithms.classical import classical

        cp = plancache.compile((8, 8, 8), classical(2, 2, 2))
        assert cp.rank_total == 8
        assert cp.schedule.signature != "<2,2,2>@1"

    def test_winograd_schedule_keeps_its_name(self):
        from repro.algorithms.strassen import winograd

        cp = plancache.compile((8, 8, 8), winograd())
        assert cp.schedule.signature == "winograd@1"


#: Block scale 1 with +1/+2 fringes: the smallest problems that exercise a
#: full 2-level core *and* all three peel fringes for every pairing.
_PAIRS = sorted(itertools.product(sorted(FIG2_SHAPES), repeat=2))


class TestMixedSchedulesExact:
    """Acceptance: every 2-level pairing of catalog entries is exact."""

    @pytest.mark.parametrize("outer", sorted(FIG2_SHAPES))
    def test_all_pairs_with_fringe_peeling(self, outer):
        rng = np.random.default_rng(hash(outer) % 2**32)
        for inner in sorted(FIG2_SHAPES):
            Mt, Kt, Nt = (outer[0] * inner[0], outer[1] * inner[1],
                          outer[2] * inner[2])
            m, k, n = Mt + 1, Kt + 2, Nt + 1  # non-divisible: peel all sides
            A = rng.standard_normal((m, k))
            B = rng.standard_normal((k, n))
            C = multiply(A, B, algorithm=[outer, inner])
            assert np.allclose(C, A @ B, atol=1e-8), (outer, inner)

    def test_pair_count_covers_whole_catalog(self):
        assert len(_PAIRS) == len(FIG2_SHAPES) ** 2

    def test_schedule_string_matches_list_form(self):
        rng = np.random.default_rng(7)
        A = rng.standard_normal((13, 14))
        B = rng.standard_normal((14, 25))
        via_list = multiply(A, B, algorithm=[(3, 2, 3), (2, 2, 2)])
        via_string = multiply(A, B, algorithm="<3,2,3>@1,<2,2,2>@1")
        np.testing.assert_allclose(via_list, via_string)
