"""Tests for recursive block (Morton-like) indexing."""

import numpy as np
import pytest

from repro.core.morton import (
    block_index_grid,
    block_shape,
    block_views,
    recursive_to_rowmajor,
    rowmajor_to_recursive,
)


class TestPermutations:
    def test_single_level_is_identity(self):
        perm = recursive_to_rowmajor([(3, 4)])
        assert np.array_equal(perm, np.arange(12))

    def test_bijection(self):
        for grids in ([(2, 2), (2, 2)], [(2, 3), (3, 2)], [(2, 2), (3, 1), (1, 2)]):
            perm = recursive_to_rowmajor(grids)
            assert sorted(perm.tolist()) == list(range(len(perm)))

    def test_inverse(self):
        grids = [(2, 3), (2, 2)]
        p = recursive_to_rowmajor(grids)
        q = rowmajor_to_recursive(grids)
        assert np.array_equal(p[q], np.arange(len(p)))
        assert np.array_equal(q[p], np.arange(len(p)))

    def test_two_level_2x2_explicit(self):
        # Recursive index 1 is the NE quadrant's NW block: grid position
        # (row 0, col 2) in the 4x4 flat grid => flat index 2.
        perm = recursive_to_rowmajor([(2, 2), (2, 2)])
        assert perm[0] == 0
        assert perm[1] == 1
        assert perm[4] == 2  # quadrant 1 (NE), inner 0
        assert perm[12] == 10  # quadrant 3 (SE), inner 0

    def test_rejects_empty_and_bad_grids(self):
        with pytest.raises(ValueError):
            recursive_to_rowmajor([])
        with pytest.raises(ValueError):
            recursive_to_rowmajor([(0, 2)])


class TestFig3:
    def test_paper_figure_grid(self):
        # Fig. 3: three-level <2,2> splitting of an 8x8 block grid.
        g = block_index_grid([(2, 2)] * 3)
        assert g.shape == (8, 8)
        # First quadrant rows as printed in the paper's figure.
        assert g[0, :4].tolist() == [0, 1, 4, 5]
        assert g[1, :4].tolist() == [2, 3, 6, 7]
        assert g[0, 4:].tolist() == [16, 17, 20, 21]
        assert g[4, :4].tolist() == [32, 33, 36, 37]
        assert g[7, 7] == 63

    def test_grid_holds_all_indices(self):
        g = block_index_grid([(2, 3), (3, 2)])
        assert sorted(g.ravel().tolist()) == list(range(36))


class TestBlockViews:
    def test_views_cover_matrix(self, rng):
        X = rng.standard_normal((12, 8))
        views = block_views(X, [(2, 2), (3, 2)])
        assert len(views) == 4 * 6
        total = sum(v.sum() for v in views)
        assert np.isclose(total, X.sum())

    def test_views_are_writable_views(self, rng):
        X = np.zeros((4, 4))
        views = block_views(X, [(2, 2)])
        views[3] += 1.0  # bottom-right quadrant
        assert X[2:, 2:].sum() == 4.0
        assert X[:2, :2].sum() == 0.0

    def test_recursive_order_matches_kron(self, rng):
        # Writing index r into view r must reproduce block_index_grid.
        grids = [(2, 2), (2, 2)]
        X = np.zeros((8, 8))
        for r, v in enumerate(block_views(X, grids)):
            v[:] = r
        g = block_index_grid(grids)
        assert np.array_equal(X[::2, ::2], g.reshape(4, 4))

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            block_shape((5, 4), [(2, 2)])
