"""Tests for the plan compiler, its cache, and the unified execution paths."""

import numpy as np
import pytest

from repro.core import compile as plancache
from repro.core.codegen import compile_plan, generate_source
from repro.core.executor import (
    BlockedEngine,
    DirectEngine,
    multiply,
    multiply_batched,
    resolve_levels,
)
from repro.core.plan import build_plan


@pytest.fixture(autouse=True)
def fresh_cache():
    plancache.plan_cache_clear()
    yield
    plancache.plan_cache_clear()


class TestCacheBehavior:
    def test_hit_returns_same_object(self):
        p1 = plancache.compile((96, 96, 96), "strassen", levels=2)
        p2 = plancache.compile((96, 96, 96), "strassen", levels=2)
        assert p1 is p2
        info = plancache.plan_cache_info()
        assert info.hits == 1 and info.misses == 1 and info.currsize == 1

    def test_equivalent_specs_share_one_entry(self):
        p1 = plancache.compile((32, 32, 32), "<2,2,2>")
        p2 = plancache.compile((32, 32, 32), (2, 2, 2))
        assert p1 is p2

    def test_distinct_configs_miss(self):
        base = plancache.compile((64, 64, 64), "strassen")
        assert plancache.compile((64, 64, 64), "strassen", variant="ab") is not base
        assert (
            plancache.compile((64, 64, 64), "strassen", dtype=np.float32) is not base
        )
        assert plancache.compile((64, 64, 32), "strassen") is not base
        assert plancache.plan_cache_info().misses == 4

    def test_lru_eviction(self):
        old = plancache.plan_cache_info().maxsize
        plancache.set_plan_cache_maxsize(2)
        try:
            plancache.compile((8, 8, 8), "strassen")
            plancache.compile((16, 16, 16), "strassen")
            plancache.compile((32, 32, 32), "strassen")  # evicts (8, 8, 8)
            assert plancache.plan_cache_info().currsize == 2
            plancache.compile((8, 8, 8), "strassen")
            assert plancache.plan_cache_info().misses == 4
        finally:
            plancache.set_plan_cache_maxsize(old)

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError):
            plancache.compile((8, 8, 8), "strassen", dtype=np.int32)

    def test_engine_multiply_populates_cache(self, rng):
        ml = resolve_levels("strassen", 1)
        A = rng.standard_normal((16, 16))
        C = np.zeros((16, 16))
        DirectEngine().multiply(A, A, C, ml)
        DirectEngine().multiply(A, A, np.zeros((16, 16)), ml)
        info = plancache.plan_cache_info()
        assert info.misses == 1 and info.hits == 1


class TestPlanEquivalence:
    def test_compiled_plan_matches_build_plan_counts(self):
        for spec, levels, shape in [
            ("strassen", 2, (64, 64, 64)),
            ((3, 2, 3), 1, (33, 22, 33)),
            (["strassen", "<3,3,3>"], 1, (48, 48, 48)),
        ]:
            ml = resolve_levels(spec, levels)
            old = build_plan(*shape, ml, "abc")
            new = plancache.compile(shape, spec, levels=levels)
            assert new.plan.operation_counts() == old.operation_counts()
            assert [s.a_terms for s in new.steps] == [s.a_terms for s in old.steps]

    def test_step_gather_arrays_match_terms(self):
        cplan = plancache.compile((64, 64, 64), "strassen")
        for s in cplan.steps:
            assert list(zip(s.a_idx, s.a_coef)) == list(s.a_terms)
            assert list(zip(s.b_idx, s.b_coef)) == list(s.b_terms)
            assert list(zip(s.c_idx, s.c_coef)) == list(s.c_terms)

    def test_all_consumers_agree(self, rng):
        """Direct, blocked, and generated code interpret one CompiledPlan."""
        cplan = plancache.compile((68, 72, 76), "strassen", levels=2)
        A = rng.standard_normal((68, 72))
        B = rng.standard_normal((72, 76))
        ref = A @ B
        C_direct = DirectEngine().execute(cplan, A, B, np.zeros((68, 76)))
        C_blocked = BlockedEngine().execute(cplan, A, B, np.zeros((68, 76)))
        fn, _ = compile_plan(cplan)
        C_gen = fn(A, B, np.zeros((68, 76)))
        assert np.abs(C_direct - ref).max() < 1e-9
        assert np.abs(C_blocked - ref).max() < 1e-9
        assert np.abs(C_gen - ref).max() < 1e-9

    def test_codegen_accepts_compiled_plan(self):
        cplan = plancache.compile((8, 8, 8), "strassen")
        src_compiled = generate_source(cplan)
        src_plan = generate_source(cplan.plan)
        assert src_compiled == src_plan

    def test_vectorized_and_step_paths_agree(self, rng):
        cplan = plancache.compile((52, 52, 52), "strassen", levels=2)
        A = rng.standard_normal((52, 52))
        B = rng.standard_normal((52, 52))
        C_vec = DirectEngine().execute(cplan, A, B, np.zeros((52, 52)))
        C_steps = DirectEngine(vector_cap=0).execute(cplan, A, B, np.zeros((52, 52)))
        assert np.abs(C_vec - C_steps).max() < 1e-10

    def test_shape_mismatch_raises(self, rng):
        cplan = plancache.compile((16, 16, 16), "strassen")
        A = rng.standard_normal((8, 8))
        with pytest.raises(ValueError):
            DirectEngine().execute(cplan, A, A, np.zeros((8, 8)))


class TestBatchedMultiply:
    def test_matches_looped_oracle(self, rng):
        A = rng.standard_normal((5, 36, 40))
        B = rng.standard_normal((5, 40, 44))
        got = multiply_batched(A, B, algorithm="strassen", levels=2)
        want = np.stack(
            [multiply(A[i], B[i], algorithm="strassen", levels=2) for i in range(5)]
        )
        assert got.shape == (5, 36, 44)
        assert np.abs(got - want).max() < 1e-10

    def test_peeled_sizes(self, rng):
        A = rng.standard_normal((4, 17, 19))
        B = rng.standard_normal((4, 19, 23))
        got = multiply_batched(A, B, algorithm="strassen", levels=2)
        assert np.abs(got - A @ B).max() < 1e-9

    def test_shared_operand_broadcast(self, rng):
        A = rng.standard_normal((6, 24, 24))
        B = rng.standard_normal((24, 24))
        got = multiply_batched(A, B)
        assert np.abs(got - A @ B).max() < 1e-9

    def test_blocked_engine_loops_plan(self, rng):
        A = rng.standard_normal((3, 32, 32))
        B = rng.standard_normal((3, 32, 32))
        got = multiply_batched(A, B, engine="blocked")
        assert np.abs(got - A @ B).max() < 1e-9
        assert plancache.plan_cache_info().misses == 1

    def test_chunking_matches_unchunked(self, rng):
        cplan = plancache.compile((16, 16, 16), "strassen")
        A = rng.standard_normal((40, 16, 16))
        B = rng.standard_normal((40, 16, 16))
        C1 = DirectEngine(chunk_target=1).execute(cplan, A, B, np.zeros((40, 16, 16)))
        C2 = DirectEngine().execute(cplan, A, B, np.zeros((40, 16, 16)))
        assert np.abs(C1 - C2).max() == 0.0

    def test_rejects_2d_pair(self, rng):
        A = rng.standard_normal((8, 8))
        with pytest.raises(ValueError):
            multiply_batched(A, A)

    def test_rejects_batch_mismatch(self, rng):
        with pytest.raises(ValueError):
            multiply_batched(
                rng.standard_normal((3, 8, 8)), rng.standard_normal((2, 8, 8))
            )


class TestDtypePreservation:
    @pytest.mark.parametrize("engine", ["direct", "blocked"])
    def test_float32_preserved(self, rng, engine):
        A = rng.standard_normal((48, 48)).astype(np.float32)
        B = rng.standard_normal((48, 48)).astype(np.float32)
        C = multiply(A, B, algorithm="strassen", levels=2, engine=engine)
        assert C.dtype == np.float32

    def test_float32_accuracy_bound(self, rng):
        # 2-level Strassen amplifies roundoff by a modest constant; stay
        # within ~100x float32 eps relative to the result magnitude.
        A = rng.standard_normal((96, 96)).astype(np.float32)
        B = rng.standard_normal((96, 96)).astype(np.float32)
        C = multiply(A, B, algorithm="strassen", levels=2)
        ref = A.astype(np.float64) @ B.astype(np.float64)
        rel = np.abs(C - ref).max() / np.abs(ref).max()
        assert rel < 100 * np.finfo(np.float32).eps

    def test_float64_default_unchanged(self, rng):
        A = rng.standard_normal((32, 32))
        C = multiply(A, A)
        assert C.dtype == np.float64

    def test_explicit_dtype_override(self, rng):
        A = rng.standard_normal((32, 32))
        C = multiply(A, A, dtype=np.float32)
        assert C.dtype == np.float32

    def test_batched_float32(self, rng):
        A = rng.standard_normal((4, 32, 32)).astype(np.float32)
        B = rng.standard_normal((4, 32, 32)).astype(np.float32)
        C = multiply_batched(A, B)
        assert C.dtype == np.float32
        assert np.abs(C - A @ B).max() < 1e-3

    def test_int_inputs_still_promote(self):
        A = np.arange(16).reshape(4, 4)
        C = multiply(A, np.eye(4, dtype=int))
        assert C.dtype == np.float64
        assert np.allclose(C, A)

    def test_engine_accepts_integer_c(self, rng):
        # Regression: feeding integer operands straight to the engine (as
        # the classic DirectEngine allowed for +-1-coefficient algorithms)
        # must not crash on casting the float compute dtype into C.
        A = rng.integers(-5, 5, size=(8, 8))
        B = rng.integers(-5, 5, size=(8, 8))
        C = np.zeros((8, 8), dtype=np.int64)
        DirectEngine().multiply(A, B, C, resolve_levels("strassen", 1))
        assert C.dtype == np.int64
        assert np.array_equal(C, A @ B)


class TestAutoDispatch:
    def test_auto_engine_correct(self, rng):
        A = rng.standard_normal((100, 90))
        B = rng.standard_normal((90, 110))
        C = multiply(A, B, engine="auto")
        assert np.abs(C - A @ B).max() < 1e-9

    def test_auto_config_large_problem_uses_fmm(self):
        import os

        from repro.core.selection import auto_config

        algorithm, levels, variant, engine, threads, backend, workers = (
            auto_config(1536, 1536, 1536)
        )
        assert engine == "direct"
        assert variant in ("naive", "ab", "abc")
        assert algorithm != "classical" and levels >= 1
        assert 1 <= threads <= (os.cpu_count() or 1)
        assert workers in ("threads", "processes")

    def test_auto_config_tiny_problem_falls_back(self):
        from repro.core.selection import auto_config

        algorithm, levels, variant, engine, threads, backend, workers = (
            auto_config(4, 4, 4)
        )
        assert algorithm == "classical"
        assert threads == 1  # too small for thread-level parallelism
        assert workers == "threads"  # nothing for the process runtime here

    def test_apply_once_uses_plan_cache(self, rng):
        from repro.algorithms.strassen import strassen

        s = strassen()
        A = rng.standard_normal((8, 8))
        s.apply_once(A, A.copy(), np.zeros((8, 8)))
        s.apply_once(A, A.copy(), np.zeros((8, 8)))
        info = plancache.plan_cache_info()
        assert info.misses == 1 and info.hits == 1
