"""Tests for the rank-preserving transform calculus."""

import numpy as np
import pytest

from repro.algorithms.classical import classical
from repro.algorithms.strassen import strassen
from repro.core.transforms import (
    all_orientations,
    direct_sum_k,
    direct_sum_m,
    direct_sum_n,
    kron_compose,
    rotate,
    rotations,
    transpose_dual,
    transpose_rows,
)


def _check_semantics(algo, rng, scale=2):
    """Every transform output must actually multiply matrices."""
    m, k, n = algo.dims
    A = rng.standard_normal((m * scale, k * scale))
    B = rng.standard_normal((k * scale, n * scale))
    C = np.zeros((m * scale, n * scale))
    algo.apply_once(A, B, C)
    assert np.allclose(C, A @ B), algo.name


class TestTransposeRows:
    def test_involution(self, rng):
        X = rng.standard_normal((12, 5))
        assert np.allclose(transpose_rows(transpose_rows(X, 3, 4), 4, 3), X)

    def test_wrong_rows_raise(self, rng):
        with pytest.raises(ValueError):
            transpose_rows(rng.standard_normal((5, 2)), 2, 3)


class TestRotate:
    def test_strassen_rotation_valid(self, rng):
        r = rotate(strassen())
        assert r.dims == (2, 2, 2)
        assert r.rank == 7
        _check_semantics(r, rng)

    def test_rotation_cycles_dims(self):
        c = classical(2, 3, 4)
        r1 = rotate(c)
        r2 = rotate(r1)
        r3 = rotate(r2)
        assert r1.dims == (3, 4, 2)
        assert r2.dims == (4, 2, 3)
        assert r3.dims == (2, 3, 4)

    def test_triple_rotation_is_identity_semantically(self, rng):
        c = classical(2, 3, 4)
        r3 = rotate(rotate(rotate(c)))
        _check_semantics(r3, rng)
        # Same shape and rank; coefficients may be permuted but the triple
        # must reconstruct the same tensor (checked by validate inside).
        assert r3.dims == c.dims
        assert r3.rank == c.rank

    def test_rotations_list(self):
        rs = rotations(classical(2, 3, 4))
        assert [a.dims for a in rs] == [(2, 3, 4), (3, 4, 2), (4, 2, 3)]


class TestTransposeDual:
    def test_dual_dims(self):
        d = transpose_dual(classical(2, 3, 4))
        assert d.dims == (4, 3, 2)
        assert d.rank == 24

    def test_dual_involution_semantics(self, rng):
        s = strassen()
        dd = transpose_dual(transpose_dual(s))
        assert dd.dims == s.dims
        _check_semantics(dd, rng)

    def test_dual_of_rotation(self, rng):
        a = transpose_dual(rotate(classical(2, 3, 4)))
        assert a.dims == (2, 4, 3)
        _check_semantics(a, rng)


class TestAllOrientations:
    def test_distinct_dims_give_six(self):
        os_ = all_orientations(classical(2, 3, 4))
        assert set(os_) == {
            (2, 3, 4), (3, 4, 2), (4, 2, 3), (4, 3, 2), (3, 2, 4), (2, 4, 3)
        }

    def test_repeated_dims_collapse(self):
        os_ = all_orientations(strassen())
        assert set(os_) == {(2, 2, 2)}

    def test_all_orientations_preserve_rank(self, rng):
        base = classical(1, 2, 3)
        for dims, algo in all_orientations(base).items():
            assert algo.rank == 6
            _check_semantics(algo, rng)


class TestDirectSums:
    def test_n_sum(self, rng):
        a = direct_sum_n(strassen(), classical(2, 2, 1))
        assert a.dims == (2, 2, 3)
        assert a.rank == 11
        _check_semantics(a, rng)

    def test_m_sum(self, rng):
        a = direct_sum_m(classical(1, 2, 2), strassen())
        assert a.dims == (3, 2, 2)
        assert a.rank == 11
        _check_semantics(a, rng)

    def test_k_sum(self, rng):
        a = direct_sum_k(strassen(), classical(2, 1, 2))
        assert a.dims == (2, 3, 2)
        assert a.rank == 11
        _check_semantics(a, rng)

    def test_mismatched_sums_raise(self):
        with pytest.raises(ValueError):
            direct_sum_n(strassen(), classical(3, 2, 1))
        with pytest.raises(ValueError):
            direct_sum_m(strassen(), classical(1, 3, 2))
        with pytest.raises(ValueError):
            direct_sum_k(strassen(), classical(3, 1, 2))

    def test_sum_rank_additivity(self):
        a = direct_sum_n(classical(2, 2, 2), classical(2, 2, 3))
        assert a.rank == 8 + 12


class TestKronCompose:
    def test_strassen_squared(self, rng):
        a = kron_compose(strassen(), strassen())
        assert a.dims == (4, 4, 4)
        assert a.rank == 49
        _check_semantics(a, rng, scale=1)

    def test_with_classical_identity(self, rng):
        a = kron_compose(strassen(), classical(1, 1, 1))
        assert a.dims == (2, 2, 2)
        assert a.rank == 7
        _check_semantics(a, rng)

    def test_rectangular_composition(self, rng):
        a = kron_compose(strassen(), classical(1, 1, 2))
        assert a.dims == (2, 2, 4)
        assert a.rank == 14
        _check_semantics(a, rng)

    def test_hybrid_composition(self, rng):
        a = kron_compose(classical(1, 2, 1), strassen())
        assert a.dims == (2, 4, 2)
        assert a.rank == 14
        _check_semantics(a, rng)
