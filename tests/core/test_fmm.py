"""Tests for the FMMAlgorithm value object."""

import numpy as np
import pytest

from repro.algorithms.classical import classical
from repro.algorithms.strassen import strassen
from repro.core.fmm import FMMAlgorithm, nnz


class TestNnz:
    def test_counts_nonzeros(self):
        assert nnz(np.array([[0.0, 1.0], [-2.0, 0.0]])) == 2

    def test_tolerance(self):
        assert nnz(np.array([1e-14, 1.0]), tol=1e-12) == 1


class TestProperties:
    def test_strassen_metadata(self, strassen_algo):
        s = strassen_algo
        assert s.dims == (2, 2, 2)
        assert s.rank == 7
        assert s.classical_multiplies == 8
        assert s.theoretical_speedup == pytest.approx(8 / 7)
        assert s.exponent == pytest.approx(np.log2(7) * 3 / 3, rel=1e-12)

    def test_strassen_nnz(self, strassen_algo):
        # The eq.-(4) triple has 12 nonzeros per factor (18 additions total
        # on the A/B side: (12-7)+(12-7), plus 12 C updates).
        assert strassen_algo.nnz_uvw() == (12, 12, 12)

    def test_winograd_addition_counts(self, strassen_algo, winograd_algo):
        # Winograd's 15-addition advantage relies on reusing intermediate
        # sums (CSE).  The flat [[U,V,W]] representation used by the paper's
        # generator cannot express that reuse, so counted via nnz the
        # Winograd triple actually needs MORE additions (28 vs 22) — this
        # pins down why the paper generates from eq. (4), not Winograd.
        def total_adds(a):
            u, v, w = a.nnz_uvw()
            return (u - a.rank) + (v - a.rank) + w

        assert total_adds(strassen_algo) == 22
        assert total_adds(winograd_algo) == 28

    def test_classical_exponent_is_three(self):
        c = classical(2, 2, 2)
        assert c.exponent == pytest.approx(3.0)
        assert c.theoretical_speedup == pytest.approx(1.0)

    def test_default_name(self):
        c = classical(3, 2, 4)
        algo = FMMAlgorithm(m=3, k=2, n=4, U=c.U, V=c.V, W=c.W)
        assert algo.name == "<3,2,4>:24"

    def test_coefficients_frozen(self, strassen_algo):
        with pytest.raises(ValueError):
            strassen_algo.U[0, 0] = 5.0


class TestValidation:
    def test_validate_passes_strassen(self, strassen_algo):
        assert strassen_algo.validate() is strassen_algo
        assert strassen_algo.is_valid()

    def test_validate_raises_on_corrupt(self):
        s = strassen()
        U = s.U.copy()
        U[0, 0] = 9.0
        bad = FMMAlgorithm(m=2, k=2, n=2, U=U, V=s.V, W=s.W, name="bad")
        assert not bad.is_valid()
        with pytest.raises(ValueError, match="Brent residual"):
            bad.validate()

    def test_shape_mismatch_raises_at_construction(self):
        s = strassen()
        with pytest.raises(ValueError):
            FMMAlgorithm(m=2, k=2, n=3, U=s.U, V=s.V, W=s.W)


class TestApplyOnce:
    def test_matches_numpy(self, rng):
        s = strassen()
        A = rng.standard_normal((8, 8))
        B = rng.standard_normal((8, 8))
        C = rng.standard_normal((8, 8))
        ref = C + A @ B
        s.apply_once(A, B, C)
        assert np.allclose(C, ref)

    def test_rectangular(self, rng):
        c = classical(2, 3, 4)
        A = rng.standard_normal((4, 9))
        B = rng.standard_normal((9, 8))
        C = np.zeros((4, 8))
        c.apply_once(A, B, C)
        assert np.allclose(C, A @ B)

    def test_indivisible_raises(self, rng):
        s = strassen()
        with pytest.raises(ValueError):
            s.apply_once(
                rng.standard_normal((5, 4)),
                rng.standard_normal((4, 4)),
                np.zeros((5, 4)),
            )

    def test_inconsistent_shapes_raise(self, rng):
        s = strassen()
        with pytest.raises(ValueError):
            s.apply_once(
                rng.standard_normal((4, 4)),
                rng.standard_normal((6, 4)),
                np.zeros((4, 4)),
            )
