"""Tests for dynamic peeling."""

import numpy as np
import pytest

from repro.core.peeling import peel


class TestPeel:
    def test_divisible_has_no_fringes(self):
        plan = peel(8, 8, 8, 2, 2, 2)
        assert plan.core == (8, 8, 8)
        assert plan.fringes == ()
        assert plan.core_fraction == 1.0

    def test_all_dims_ragged(self):
        plan = peel(9, 9, 9, 2, 2, 2)
        assert plan.core == (8, 8, 8)
        assert len(plan.fringes) == 3

    def test_flop_cover_identity(self):
        # Core flops + fringe flops must equal m*k*n exactly — the peeling
        # decomposition tiles the computation with no overlap or gap.
        for (m, k, n, Mt, Kt, Nt) in [
            (9, 9, 9, 2, 2, 2),
            (100, 103, 97, 4, 4, 4),
            (5, 7, 11, 3, 2, 6),
            (6, 6, 6, 2, 3, 2),
            (2, 2, 2, 3, 3, 3),  # core empty
        ]:
            plan = peel(m, k, n, Mt, Kt, Nt)
            mc, kc, nc = plan.core
            total = mc * kc * nc + sum(
                f.shape[0] * f.shape[1] * f.shape[2] for f in plan.fringes
            )
            assert total == m * k * n, (m, k, n, Mt, Kt, Nt)

    def test_semantic_cover(self, rng):
        # Executing core (as plain matmul) + fringes reproduces A @ B.
        m, k, n, Mt, Kt, Nt = 11, 7, 13, 2, 3, 4
        plan = peel(m, k, n, Mt, Kt, Nt)
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        C = np.zeros((m, n))
        mp, kp, np_ = plan.core
        if plan.has_core:
            C[:mp, :np_] += A[:mp, :kp] @ B[:kp, :np_]
        for f in plan.fringes:
            C[f.c_rows, f.c_cols] += A[f.a_rows, f.a_cols] @ B[f.b_rows, f.b_cols]
        assert np.allclose(C, A @ B)

    def test_core_smaller_than_partition(self):
        plan = peel(3, 3, 3, 4, 4, 4)
        assert not plan.has_core
        # Everything lands in fringes; cover identity still holds.
        total = sum(f.shape[0] * f.shape[1] * f.shape[2] for f in plan.fringes)
        assert total == 27

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            peel(4, 4, 4, 0, 2, 2)
        with pytest.raises(ValueError):
            peel(-1, 4, 4, 2, 2, 2)

    def test_zero_dims(self):
        plan = peel(0, 4, 4, 2, 2, 2)
        assert not plan.has_core
