"""Tests for the Python source emitter."""

import numpy as np
import pytest

from repro.core.codegen import compile_plan, generate_source
from repro.core.executor import resolve_levels
from repro.core.plan import build_plan


def _compile(spec, levels=1, variant="abc", shape=(64, 64, 64)):
    ml = resolve_levels(spec, levels)
    plan = build_plan(*shape, ml, variant)
    return compile_plan(plan)


class TestGenerateSource:
    def test_source_structure(self):
        ml = resolve_levels("strassen", 1)
        src = generate_source(build_plan(64, 64, 64, ml, "abc"))
        assert src.startswith("def fmm_2x2x2_L1_abc_r7(A, B, C):")
        assert "_m0 =" in src and "_m6 =" in src
        assert "dynamic peeling" in src
        assert src.count("@") == 7 + 3 + 1  # products + fringes + docstring

    def test_custom_name(self):
        ml = resolve_levels("strassen", 1)
        src = generate_source(build_plan(8, 8, 8, ml, "abc"), "my_fmm")
        assert "def my_fmm(A, B, C):" in src

    def test_coefficients_rendered_as_literals(self):
        # <4,2,4> fallback / searched algorithms may carry +-1/2 entries;
        # classical triples carry only 1s.  Check a known -1 from Strassen.
        ml = resolve_levels("strassen", 1)
        src = generate_source(build_plan(8, 8, 8, ml, "abc"))
        assert "- Av[" in src or "-1 * Av[" in src


class TestCompiledFunctions:
    @pytest.mark.parametrize(
        "spec,levels,shape",
        [
            ("strassen", 1, (64, 64, 64)),
            ("strassen", 2, (68, 72, 76)),
            ((3, 2, 3), 1, (33, 22, 33)),
            ((2, 5, 2), 1, (20, 50, 20)),
            (["strassen", "<3,3,3>"], 1, (48, 48, 48)),
        ],
    )
    def test_generated_equals_numpy(self, rng, spec, levels, shape):
        fn, _ = _compile(spec, levels, shape=shape)
        m, k, n = shape
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        C = fn(A, B, np.zeros((m, n)))
        assert np.abs(C - A @ B).max() < 1e-9

    def test_generated_handles_fringes(self, rng):
        fn, _ = _compile("strassen", 2, shape=(64, 64, 64))
        # Same compiled function on *different* ragged sizes (shape-generic).
        for m, k, n in [(65, 67, 69), (9, 100, 33), (3, 3, 3)]:
            A = rng.standard_normal((m, k))
            B = rng.standard_normal((k, n))
            C = fn(A, B, np.zeros((m, n)))
            assert np.abs(C - A @ B).max() < 1e-8, (m, k, n)

    def test_generated_accumulates(self, rng):
        fn, _ = _compile("strassen")
        A = rng.standard_normal((8, 8))
        B = rng.standard_normal((8, 8))
        C0 = rng.standard_normal((8, 8))
        C = fn(A, B, C0.copy())
        assert np.allclose(C, C0 + A @ B)

    def test_generated_source_is_standalone(self):
        # The emitted text must exec with no imports beyond builtins.
        ml = resolve_levels("strassen", 1)
        src = generate_source(build_plan(8, 8, 8, ml, "abc"))
        ns: dict = {}
        exec(src, ns)
        assert callable(ns["fmm_2x2x2_L1_abc_r7"])
