"""Tests for the Morton tile-window addressing layer (``repro.core.tiles``).

The out-of-core tiled lowering stands on three invariants pinned here:

* **Addressing**: :class:`TileMap` windows are exactly the blocks
  ``CompiledPlan.block_views`` materializes, per operand, in the same
  Morton order — the two layers share one permutation and cannot
  disagree on which bytes a block covers.
* **Strip geometry**: :func:`strip_bounds` covers the block with
  half-open strips that are never one row high (single-row GEMMs take a
  GEMV-style BLAS kernel with a different accumulation order) and never
  taller than the resolved ``tile_rows``, so window buffers always fit.
* **Resolution**: :func:`resolve_tile_rows` is the single shared
  solver — explicit tunable, else memory budget, else full block —
  gated by the measured :func:`strip_split_is_exact` probe, and
  :func:`repro.model.perfmodel.predict_tile_window_bytes` prices the
  byte-identical window the runtime then allocates and measures.
"""

import numpy as np
import pytest

from repro.core import compile as plancache
from repro.core import spec, tiles
from repro.core.kronecker import MultiLevelFMM
from repro.core.spec import operand_slab_bytes, resolve_fusion
from repro.algorithms.catalog import get_algorithm


@pytest.fixture(autouse=True)
def _default_tunables():
    yield
    spec.set_runtime_tunables(tile_rows=0, mem_budget_bytes=0)


def _ml(*shapes):
    return MultiLevelFMM([get_algorithm(s) for s in shapes])


class TestTileMap:
    @pytest.mark.parametrize("shapes,mkn", [
        (((2, 2, 2),), (32, 32, 32)),
        (((2, 2, 2), (2, 2, 2)), (64, 64, 64)),
        (((3, 2, 3), (2, 2, 2)), (96, 64, 96)),
        (((2, 5, 2),), (64, 160, 64)),
    ])
    @pytest.mark.parametrize("operand", ["A", "B", "C"])
    def test_windows_match_block_views(self, rng, shapes, mkn, operand):
        """TileMap views == CompiledPlan.block_views, same Morton order."""
        m, k, n = mkn
        ml = _ml(*shapes)
        cplan = plancache.compile((m, k, n), list(shapes), len(shapes), "abc")
        Mt, Kt, Nt = ml.dims_total
        bm, bk, bn = m // Mt, k // Kt, n // Nt
        shape = {"A": (m, k), "B": (k, n), "C": (m, n)}[operand]
        dims = {"A": (bm, bk), "B": (bk, bn), "C": (bm, bn)}[operand]
        X = rng.standard_normal(shape)
        tm = tiles.TileMap.for_operand(ml, operand, shape)
        expected = cplan.block_views(X, operand, *dims)
        got = tm.views(X)
        assert len(got) == len(expected) == tm.n_blocks
        for v_tm, v_plan in zip(got, expected):
            assert v_tm.shape == v_plan.shape == dims
            assert np.shares_memory(v_tm, X)
            np.testing.assert_array_equal(v_tm, v_plan)

    def test_views_slice_trailing_axes(self, rng):
        """Batched stacks slice the trailing two axes (memmaps unchanged)."""
        ml = _ml((2, 2, 2))
        tm = tiles.TileMap.for_operand(ml, "A", (8, 8))
        X = rng.standard_normal((3, 8, 8))
        v = tm.view(X, 0)
        assert v.shape == (3, 4, 4)
        assert np.shares_memory(v, X)

    def test_indivisible_shape_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            tiles.TileMap((9, 8), [(2, 2)])

    def test_empty_grids_raise(self):
        with pytest.raises(ValueError, match="at least one level"):
            tiles.TileMap((8, 8), [])


class TestStripBounds:
    @pytest.mark.parametrize("rows", [2, 3, 7, 27, 32, 63, 64, 81, 125])
    @pytest.mark.parametrize("tile_rows", [1, 2, 3, 5, 17, 64])
    def test_cover_and_no_single_rows(self, rows, tile_rows):
        """Strips partition [0, rows); no strip is 1 row high (rows > 1)."""
        bounds = tiles.strip_bounds(rows, tile_rows)
        assert bounds[0][0] == 0 and bounds[-1][1] == rows
        for (lo, hi), (lo2, _) in zip(bounds, bounds[1:]):
            assert hi == lo2
        heights = [hi - lo for lo, hi in bounds]
        assert all(h >= (2 if rows > 1 else 1) for h in heights)
        # every height fits a buffer sized for the clamped tile_rows
        assert max(heights) <= tiles.clamp_tile_rows(rows, tile_rows)

    def test_degenerate_single_strip(self):
        assert tiles.strip_bounds(16, 16) == [(0, 16)]
        assert tiles.strip_bounds(16, 99) == [(0, 16)]
        assert tiles.strip_bounds(1, 1) == [(0, 1)]

    def test_tail_rebalance(self):
        """A would-be 1-row tail takes a row from the preceding strip."""
        assert tiles.strip_bounds(64, 21) == [(0, 21), (21, 42), (42, 62),
                                              (62, 64)]

    def test_odd_rows_at_height_two_bump_to_three(self):
        """Odd row counts cannot be covered by 2-row strips without a
        1-row tail; the clamp bumps to 3."""
        assert tiles.clamp_tile_rows(7, 2) == 3
        heights = [hi - lo for lo, hi in tiles.strip_bounds(7, 2)]
        assert heights == [3, 2, 2]


class TestResolution:
    def test_pick_solves_budget(self):
        # window/row = n_slots*group*lead*bn*item = 2*4*1*16*8 = 1024 B
        assert tiles.pick_tile_rows(4096, 64, 16, 2, 4) == 4
        # scratch adds n_slots*lead*bn*item = 256 B/row -> 3 rows fit
        assert tiles.pick_tile_rows(4096, 64, 16, 2, 4, has_scratch=True) == 3

    def test_pick_clamps_to_safe_floor(self):
        assert tiles.pick_tile_rows(0, 64, 16, 2, 4) == 2
        assert tiles.pick_tile_rows(10**12, 64, 16, 2, 4) == 64

    def test_resolve_explicit_tunable_wins(self):
        spec.set_runtime_tunables(tile_rows=8, mem_budget_bytes=10**12)
        assert tiles.resolve_tile_rows(64, 64, 64, 1, 8) == 8

    def test_resolve_budget_else_full_block(self):
        assert tiles.resolve_tile_rows(64, 64, 64, 1, 8) == 64
        # per-row window = group(8) * bn(64) * 8 B = 4096 B; buy 8 rows
        spec.set_runtime_tunables(mem_budget_bytes=8 * 4096)
        assert tiles.resolve_tile_rows(64, 64, 64, 1, 8, lead_elems=1) == 8

    def test_mem_budget_env_parses_suffixes(self, monkeypatch):
        monkeypatch.setenv(spec.MEM_BUDGET_ENV, "64M")
        assert spec.effective_mem_budget_bytes() == 64 * 2**20
        monkeypatch.setenv(spec.MEM_BUDGET_ENV, "2g")
        assert spec.effective_mem_budget_bytes() == 2 * 2**30

    def test_probe_gate_degrades_unsafe_splits(self, monkeypatch):
        """When the split probe reports instability the resolution
        falls back to the full block (the unsplit fused call)."""
        monkeypatch.setattr(tiles, "strip_split_is_exact",
                            lambda *a, **kw: False)
        spec.set_runtime_tunables(tile_rows=8)
        assert tiles.resolve_tile_rows(64, 64, 64, 1, 8) == 64

    def test_probe_accepts_stable_shapes(self):
        """32^3 blocks are split-stable at every height (measured)."""
        assert tiles.strip_split_is_exact(32, 32, 32, 4)
        assert tiles.strip_split_is_exact(32, 32, 32, 32)  # no-split case


class TestFusionPricing:
    def test_operand_slab_bytes(self):
        ml = _ml((2, 2, 2))
        # Mt*Kt*bm*bk + Kt*Nt*bk*bn = 4*32*32 + 4*32*32 elements
        assert operand_slab_bytes(64, 64, 64, ml) == 2 * 4 * 32 * 32 * 8
        assert operand_slab_bytes(1, 1, 1, ml) == 0  # coarser than problem

    def test_auto_resolves_tiled_past_budget(self):
        ml = _ml((2, 2, 2))
        slab = operand_slab_bytes(64, 64, 64, ml)
        spec.set_runtime_tunables(mem_budget_bytes=slab - 1)
        assert resolve_fusion("auto", "abc", 10**9, slab) == "tiled"
        # at or under budget the in-core rule stands
        spec.set_runtime_tunables(mem_budget_bytes=slab)
        assert resolve_fusion("auto", "abc", 10**9, slab) in ("staged", "fused")
        # the naive variant has no fused/tiled interpretation
        spec.set_runtime_tunables(mem_budget_bytes=slab - 1)
        assert resolve_fusion("auto", "naive", 10**9, slab) == "staged"

    def test_auto_resolution_tracks_live_budget_across_compiles(self):
        """The plan cache must not pin an ``"auto"`` request to the
        lowering it resolved to under an earlier memory budget."""
        from repro.core import compile as plancache

        plancache.plan_cache_clear()
        ml = _ml((2, 2, 2))
        slab = operand_slab_bytes(64, 64, 64, ml)
        spec.set_runtime_tunables(mem_budget_bytes=slab - 1)
        tight = plancache.compile((64, 64, 64), "strassen", 1, fusion="auto")
        assert tight.fusion == "tiled"
        spec.set_runtime_tunables()  # budget back to unlimited
        relaxed = plancache.compile((64, 64, 64), "strassen", 1, fusion="auto")
        assert relaxed.fusion != "tiled"
        # ...and flipping the budget back re-routes to the tiled twin.
        spec.set_runtime_tunables(mem_budget_bytes=slab - 1)
        again = plancache.compile((64, 64, 64), "strassen", 1, fusion="auto")
        assert again is tight

    def test_window_model_matches_runtime(self, rng):
        """predict_tile_window_bytes == the runtime's measured peak."""
        from repro.core.executor import multiply
        from repro.core.runtime import last_report
        from repro.model.perfmodel import predict_tile_window_bytes

        ml = _ml((2, 2, 2), (2, 2, 2))
        A = rng.standard_normal((64, 64))
        B = rng.standard_normal((64, 64))
        for threads in (1, 2):
            spec.set_runtime_tunables(tile_rows=8)
            multiply(A, B, algorithm="strassen", levels=2, variant="abc",
                     fusion="tiled", threads=threads)
            rep = last_report()
            priced = predict_tile_window_bytes(64, 64, 64, ml,
                                               threads=threads)
            assert rep.tile_window_bytes == priced
            assert rep.peak_workspace_bytes <= priced
            assert rep.n_tiles > 0 and rep.io_bytes > 0
