"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_wisdom(tmp_path_factory):
    """Keep the whole suite away from the developer's real wisdom store.

    ``multiply(engine="auto")`` defaults to ``tune="readonly"``, so any
    auto-dispatch test would otherwise consult ``~/.cache/repro`` and a
    previously tuned machine could flip model-path assertions.  Pointing
    ``REPRO_WISDOM`` at a session temp file isolates even code that
    resets the default store mid-test (it re-resolves from the env).
    """
    from repro.tune import set_default_store

    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_WISDOM",
              str(tmp_path_factory.mktemp("wisdom") / "wisdom.json"))
    set_default_store(None)
    yield
    mp.undo()
    set_default_store(None)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def strassen_algo():
    from repro.algorithms.strassen import strassen

    return strassen()


@pytest.fixture(scope="session")
def winograd_algo():
    from repro.algorithms.strassen import winograd

    return winograd()


def assert_multiplies(algo_or_ml, m, k, n, seed=0, tol=1e-9, **mult_kwargs):
    """Utility: check C += A@B via the public API for one configuration."""
    from repro.core.executor import multiply

    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))
    C0 = rng.standard_normal((m, n))
    C = multiply(A, B, C0.copy(), algorithm=algo_or_ml, **mult_kwargs)
    ref = C0 + A @ B
    err = float(np.abs(C - ref).max())
    assert err < tol, f"max err {err} for {(m, k, n)} kwargs={mult_kwargs}"
