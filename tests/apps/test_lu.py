"""Tests for blocked LU with FMM trailing updates."""

import numpy as np
import pytest

from repro.apps.lu import backward_error, lu_factor, lu_solve


def _well_conditioned(n, rng):
    A = rng.standard_normal((n, n))
    A += n * np.eye(n)  # diagonally dominant-ish: benign pivot growth
    return A


class TestFactorization:
    @pytest.mark.parametrize("n,block", [(64, 16), (100, 32), (96, 96), (50, 7)])
    def test_pa_equals_lu(self, rng, n, block):
        A = _well_conditioned(n, rng)
        res = lu_factor(A, block=block, algorithm="strassen")
        assert backward_error(A, res) < 1e-12

    def test_matches_classical_update_path(self, rng):
        A = _well_conditioned(80, rng)
        fmm = lu_factor(A, block=20, algorithm="strassen", use_fmm=True)
        cls = lu_factor(A, block=20, use_fmm=False)
        assert np.array_equal(fmm.piv, cls.piv)
        assert np.allclose(fmm.lu, cls.lu, atol=1e-9)

    def test_pivoting_handles_zero_leading_entry(self):
        A = np.array([[0.0, 1.0], [1.0, 0.0]])
        res = lu_factor(A, block=1)
        assert backward_error(A, res) < 1e-15

    def test_update_count(self, rng):
        A = _well_conditioned(64, rng)
        res = lu_factor(A, block=16)
        assert res.updates == 3  # panels at 0,16,32 update; last doesn't

    def test_rejects_nonsquare(self, rng):
        with pytest.raises(ValueError):
            lu_factor(rng.standard_normal((4, 5)))

    def test_rejects_bad_block(self, rng):
        with pytest.raises(ValueError):
            lu_factor(np.eye(4), block=0)

    def test_multilevel_fmm_update(self, rng):
        A = _well_conditioned(120, rng)
        res = lu_factor(A, block=40, algorithm="strassen", levels=2)
        assert backward_error(A, res) < 1e-11


class TestSolve:
    def test_solves_system(self, rng):
        A = _well_conditioned(60, rng)
        x_true = rng.standard_normal(60)
        res = lu_factor(A, block=16, algorithm=(3, 2, 3))
        x = lu_solve(res, A @ x_true)
        assert np.abs(x - x_true).max() < 1e-8

    def test_factor_objects(self, rng):
        A = _well_conditioned(32, rng)
        res = lu_factor(A, block=8)
        L, U, P = res.L(), res.U(), res.permutation()
        assert np.allclose(np.tril(L, -1), L - np.eye(32))
        assert np.allclose(np.triu(U), U)
        assert np.allclose(P @ A, L @ U, atol=1e-10)


class TestAccuracyVsLevels:
    def test_fmm_backward_error_stays_small(self, rng):
        # The stability concern of paper refs [8-10], probed on a real
        # workload: deeper FMM recursion may grow the backward error but it
        # must stay far below anything user-visible at fp64.
        A = _well_conditioned(128, rng)
        errs = {}
        for lv in (1, 2):
            res = lu_factor(A, block=64, algorithm="strassen", levels=lv)
            errs[lv] = backward_error(A, res)
        assert errs[2] < 1e-11
