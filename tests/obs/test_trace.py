"""Span tracer: nesting, ring wraparound, no-op fast path, Chrome export."""

import json
import os
import threading

import numpy as np
import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_tracer():
    trace.disable()
    trace.clear()
    yield
    trace.disable()
    trace.clear()
    trace.enable(trace.DEFAULT_CAPACITY)
    trace.disable()


def test_disabled_span_is_shared_noop():
    assert not trace.is_enabled()
    a = trace.span("x", "t")
    b = trace.span("y", "t", detail=1)
    assert a is b  # one shared singleton, no allocation per call
    with a as sp:
        sp.set(anything="ignored")
    assert trace.spans() == []


def test_span_records_and_nesting_parent_ids():
    trace.enable()
    with trace.span("outer", "t", depth=0):
        with trace.span("inner", "t", depth=1):
            pass
        with trace.span("inner2", "t"):
            pass
    recs = {r.name: r for r in trace.spans()}
    assert set(recs) == {"outer", "inner", "inner2"}
    outer = recs["outer"]
    assert recs["inner"].parent_id == outer.span_id
    assert recs["inner2"].parent_id == outer.span_id
    assert outer.parent_id == 0  # 0 marks a root span
    # Children close before the parent, so they are recorded first.
    assert outer.start_ns <= recs["inner"].start_ns
    assert outer.dur_ns >= recs["inner"].dur_ns
    assert outer.args == {"depth": 0}


def test_instant_records_zero_duration():
    trace.enable()
    trace.instant("tick", "t", n=3)
    (rec,) = trace.spans()
    assert rec.name == "tick"
    assert rec.dur_ns == 0
    assert rec.args == {"n": 3}


def test_ring_wraparound_keeps_newest():
    trace.enable(capacity=4)
    for i in range(10):
        trace.instant(f"e{i}", "t")
    names = [r.name for r in trace.spans()]
    assert names == ["e6", "e7", "e8", "e9"]  # oldest first, newest kept


def test_clear_and_drain():
    trace.enable()
    trace.instant("a", "t")
    trace.clear()
    assert trace.spans() == []
    trace.instant("b", "t")
    drained = trace.drain()
    assert [r.name for r in drained] == ["b"]
    assert trace.spans() == []  # drain is atomic take-and-clear


def test_ingest_merges_foreign_records():
    trace.enable()
    trace.instant("local", "t")
    foreign = trace.SpanRecord(
        name="remote", cat="worker", start_ns=0, dur_ns=5,
        pid=99999, tid=1, span_id=1, parent_id=0, args={},
    )
    assert trace.ingest([foreign]) == 1
    names = {r.name for r in trace.spans()}
    assert names == {"local", "remote"}


def test_span_ids_unique_across_threads():
    trace.enable(capacity=512)
    # Span ids are per-thread counters; (tid, span_id) is unique only
    # among concurrently-live threads (the OS reuses thread ids), so
    # hold every worker alive until all have started.
    barrier = threading.Barrier(4)

    def work():
        barrier.wait()
        for _ in range(20):
            with trace.span("w", "t"):
                pass

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    recs = trace.spans()
    assert len(recs) == 80
    assert len({(r.tid, r.span_id) for r in recs}) == 80


def test_export_chrome_structure(tmp_path):
    trace.enable()
    with trace.span("outer", "runtime", shape="2x2x2"):
        trace.instant("mark", "compile")
    path = tmp_path / "trace.json"
    doc = trace.export_chrome(path)
    on_disk = json.loads(path.read_text())
    assert on_disk == doc
    events = doc["traceEvents"]
    assert len(events) == 2
    by_name = {e["name"]: e for e in events}
    outer = by_name["outer"]
    assert outer["ph"] == "X"
    assert outer["cat"] == "runtime"
    assert outer["dur"] >= 0
    assert outer["pid"] == os.getpid()
    assert outer["args"]["shape"] == "2x2x2"
    assert by_name["mark"]["ph"] == "i"


def test_runtime_phases_traced_end_to_end():
    from repro.core.executor import multiply

    rng = np.random.default_rng(0)
    A, B = rng.standard_normal((64, 64)), rng.standard_normal((64, 64))
    multiply(A, B, algorithm="strassen", levels=1)  # compile untraced
    trace.enable()
    multiply(A, B, algorithm="strassen", levels=1)
    names = [r.name for r in trace.spans()]
    assert "execute_plan" in names
    assert "plan_cache.hit" in names
    assert any(n.startswith("phase:") for n in names)
    assert "arena.acquire" in names and "arena.recycle" in names
    exec_rec = next(r for r in trace.spans() if r.name == "execute_plan")
    assert exec_rec.args["shape"] == "64x64x64"
    assert exec_rec.args["peak_bytes"] > 0


def test_process_worker_spans_merged():
    """Worker task spans ship back and land in the parent timeline."""
    from repro.core.executor import multiply

    rng = np.random.default_rng(1)
    n = 128
    A, B = rng.standard_normal((n, n)), rng.standard_normal((n, n))
    trace.enable()
    C = multiply(A, B, algorithm="strassen", levels=1,
                 workers="processes", procs=2)
    assert np.allclose(C, A @ B)
    recs = trace.spans()
    pids = {r.pid for r in recs}
    assert len(pids) >= 2, "expected spans from parent and worker pids"
    worker_recs = [r for r in recs if r.pid != os.getpid()]
    assert worker_recs
    assert all(r.name.startswith("task:") for r in worker_recs)
    assert {r.cat for r in worker_recs} == {"worker"}
    # The parent still recorded the coordinating phase + ipc spans.
    names = {r.name for r in recs if r.pid == os.getpid()}
    assert "ipc.stage_in" in names and "ipc.copy_out" in names
