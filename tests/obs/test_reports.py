"""Report history: bounded ring, aggregation, batched reports, wisdom seeds."""

import numpy as np
import pytest

from repro.core.runtime import ExecutionReport
from repro.obs import reports
from repro.obs.reports import ReportHistory


def _report(duration_s=0.001, schedule="<2,2,2>@1", shape=(64, 64, 64),
            batch=1, **kw):
    defaults = dict(
        shape=shape, batch=batch, variant="abc", fusion="staged",
        threads=1, core_path="graph", n_tasks=4,
        peak_workspace_bytes=1 << 20, schedule=schedule,
        dtype="float64", duration_s=duration_s,
    )
    defaults.update(kw)
    return ExecutionReport(**defaults)


@pytest.fixture(autouse=True)
def _clean_history():
    reports.clear()
    yield
    reports.clear()


def test_history_is_bounded_oldest_evicted():
    h = ReportHistory(capacity=3)
    for i in range(5):
        h.record(_report(duration_s=float(i + 1)))
    assert len(h) == 3
    assert [r.duration_s for r in h.recent()] == [3.0, 4.0, 5.0]
    assert [r.duration_s for r in h.recent(2)] == [4.0, 5.0]


def test_aggregate_groups_by_plan_key():
    h = ReportHistory()
    for ms in (1, 2, 3, 4):
        h.record(_report(duration_s=ms / 1e3))
    h.record(_report(shape=(128, 128, 128), duration_s=0.01,
                     backend="specialized", worker_mode="threads"))
    agg = h.aggregate()
    assert len(agg) == 2
    small = agg["64x64x64 float64 <2,2,2>@1/abc"]
    assert small.count == 4
    assert small.best_s == pytest.approx(0.001)
    assert small.p50_s == pytest.approx(0.0025)
    assert small.mean_s == pytest.approx(0.0025)
    assert small.peak_bytes_hw == 1 << 20
    assert small.backends == {"reference": 4}
    big = agg["128x128x128 float64 <2,2,2>@1/abc"]
    assert big.count == 1
    assert big.worker_modes == {"threads": 1}


def test_stats_for_matches_plan_key():
    h = ReportHistory()
    rep = _report()
    h.record(rep)
    st = h.stats_for(rep)
    assert st is not None and st.count == 1
    assert h.stats_for(_report(shape=(8, 8, 8))) is None


def test_batched_key_is_distinct():
    h = ReportHistory()
    h.record(_report())
    h.record(_report(batch=16, n_chunks=4))
    agg = h.aggregate()
    assert "64x64x64[b16] float64 <2,2,2>@1/abc" in agg
    assert agg["64x64x64[b16] float64 <2,2,2>@1/abc"].total_batch == 16


def test_observed_measurements_grouping_and_filters():
    h = ReportHistory()
    for ms in (3, 1, 2):
        h.record(_report(duration_s=ms / 1e3))
    h.record(_report(duration_s=0.005, threads=4, worker_mode="threads"))
    h.record(_report(schedule="", duration_s=0.001))      # no signature
    h.record(_report(batch=8, duration_s=0.01))           # batched excluded
    obs = h.observed_measurements()
    assert len(obs) == 2
    by_threads = {o["threads"]: o for o in obs}
    assert by_threads[1]["count"] == 3
    assert by_threads[1]["best_s"] == pytest.approx(0.001)
    assert by_threads[1]["p50_s"] == pytest.approx(0.002)
    assert by_threads[4]["count"] == 1
    assert h.observed_measurements(min_count=2) == [by_threads[1]]


def test_execute_publishes_into_global_history():
    from repro.core.executor import multiply

    rng = np.random.default_rng(0)
    A, B = rng.standard_normal((48, 48)), rng.standard_normal((48, 48))
    before = len(reports.recent())
    multiply(A, B, algorithm="strassen", levels=1)
    recent = reports.recent()
    assert len(recent) == before + 1
    rep = recent[-1]
    assert rep.shape == (48, 48, 48)
    assert rep.schedule  # signature captured for aggregation
    assert rep.duration_s > 0
    assert reports.stats_for(rep).count >= 1


def test_batched_call_publishes_one_aggregated_report():
    """A batched multiply yields ONE report covering every chunk."""
    from repro.core.compile import compile as compile_plan
    from repro.core.executor import multiply_batched
    from repro.core.runtime import execute_plan, last_report

    rng = np.random.default_rng(1)
    batch, n = 6, 32
    A = rng.standard_normal((batch, n, n))
    B = rng.standard_normal((batch, n, n))
    before = len(reports.recent())
    C = multiply_batched(A, B, algorithm="strassen", levels=1)
    assert np.allclose(C, A @ B)
    assert len(reports.recent()) == before + 1  # not one per chunk
    rep = reports.recent()[-1]
    assert rep.batch == batch

    # Force multiple chunks and check the report still aggregates.
    cplan = compile_plan((n, n, n), "strassen", levels=1, dtype=np.float64)
    C2 = np.zeros((batch, n, n))
    before = len(reports.recent())
    execute_plan(cplan, A, B, C2, chunk_target=1)
    assert np.allclose(C2, A @ B)
    assert len(reports.recent()) == before + 1
    rep = last_report()
    assert rep.n_chunks > 1
    assert rep.batch == batch


def test_seed_wisdom_from_observations(tmp_path):
    from repro.tune import seed_wisdom_from_observations
    from repro.tune.wisdom import WisdomStore

    # Three observations of the same configuration -> one seeded bucket.
    for ms in (3, 2, 4):
        reports.record(_report(duration_s=ms / 1e3, schedule="strassen@1"))
    store = WisdomStore(path=tmp_path / "wisdom.json")
    written = seed_wisdom_from_observations(store, min_count=3)
    assert len(written) == 1
    cfg = store.lookup(64, 64, 64, dtype=np.float64)  # returns the config
    assert cfg is not None
    assert cfg["engine"] == "direct"
    assert cfg["algorithm"] == [[2, 2, 2]]
    (entry,) = store.entries().values()
    assert entry["samples"] == 3
    assert entry["time_s"] == pytest.approx(0.002)

    # A second seeding never overwrites the existing verdict...
    reports.record(_report(duration_s=1e-6, schedule="strassen@1"))
    assert seed_wisdom_from_observations(store, min_count=3) == []
    (entry,) = store.entries().values()
    assert entry["time_s"] == pytest.approx(0.002)
    # ...unless asked to.
    written = seed_wisdom_from_observations(store, min_count=3,
                                            overwrite=True)
    assert len(written) == 1
    (entry,) = store.entries().values()
    assert entry["time_s"] == pytest.approx(1e-6)


def test_seed_skips_unparseable_schedules(tmp_path):
    from repro.tune import seed_wisdom_from_observations
    from repro.tune.wisdom import WisdomStore

    for _ in range(3):
        reports.record(_report(schedule="not-a-real-algorithm@1"))
    store = WisdomStore(path=tmp_path / "wisdom.json")
    assert seed_wisdom_from_observations(store, min_count=3) == []
