"""Metrics registry: counters under threads, gauges, histograms, snapshot."""

import threading

import numpy as np
import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    percentile,
    registry,
)


def test_counter_exact_under_threads():
    reg = MetricsRegistry()
    c = reg.counter("t.hits", "test counter")
    n_threads, per_thread = 8, 2500

    def work():
        for _ in range(per_thread):
            c.inc()

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value() == n_threads * per_thread
    assert reg.snapshot()["counters"]["t.hits"] == n_threads * per_thread


def test_counter_idempotent_registration():
    reg = MetricsRegistry()
    a = reg.counter("same", "first")
    b = reg.counter("same", "second registration ignored")
    assert a is b
    assert a.description == "first"


def test_gauge_reads_live_and_degrades_to_none():
    reg = MetricsRegistry()
    state = {"v": 1}
    reg.gauge("ok", "live read", lambda: state["v"])
    reg.gauge("broken", "raises", lambda: 1 / 0)
    assert reg.snapshot()["gauges"] == {"ok": 1, "broken": None}
    state["v"] = 7
    assert reg.snapshot()["gauges"]["ok"] == 7


def test_histogram_summary_and_percentiles():
    h = Histogram("lat", reservoir=100)
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    val = h.value()
    assert val["count"] == 100
    assert val["min"] == 1.0 and val["max"] == 100.0
    assert val["mean"] == pytest.approx(50.5)
    assert val["p50"] == pytest.approx(50.5)
    assert val["p95"] == pytest.approx(95.05)


def test_histogram_reservoir_is_recency_weighted():
    h = Histogram("lat", reservoir=10)
    for v in range(1000):
        h.observe(float(v))
    val = h.value()
    assert val["count"] == 1000  # exact totals survive the bounded window
    assert val["max"] == 999.0
    assert val["p50"] >= 990.0  # percentiles reflect the recent window


def test_percentile_interpolation():
    assert percentile([], 0.5) is None
    assert percentile([3.0], 0.95) == 3.0
    assert percentile([1.0, 2.0], 0.5) == pytest.approx(1.5)


def test_plain_coerces_namedtuples_nested():
    from collections import namedtuple

    Point = namedtuple("Point", "x y")
    out = metrics._plain({"p": Point(1, [Point(2, 3)])})
    assert out == {"p": {"x": 1, "y": [{"x": 2, "y": 3}]}}


def test_builtin_gauges_cover_core_stat_surfaces():
    import repro.core.runtime  # noqa: F401  (registers runtime metrics)

    snap = registry.snapshot()
    for name in ("plan_cache", "workspace.arena", "workspace.shared_arena",
                 "pools.threads", "pools.processes", "kernels.cache",
                 "wisdom.hot_cache"):
        assert name in snap["gauges"], name
    assert {"hits", "misses", "maxsize", "currsize"} <= set(
        snap["gauges"]["plan_cache"])
    assert "runtime.executions" in snap["counters"]
    assert "runtime.latency_s" in snap["histograms"]


def test_runtime_execution_updates_metrics():
    import repro.core.runtime  # noqa: F401
    from repro.core.executor import multiply

    before = registry.snapshot()
    rng = np.random.default_rng(0)
    A, B = rng.standard_normal((48, 48)), rng.standard_normal((48, 48))
    multiply(A, B, algorithm="strassen", levels=1)
    after = registry.snapshot()
    assert (after["counters"]["runtime.executions"]
            == before["counters"]["runtime.executions"] + 1)
    lat = after["histograms"]["runtime.latency_s"]
    assert lat["count"] >= 1
    assert lat["min"] > 0


def test_describe_lists_registered_metrics():
    import repro.core.runtime  # noqa: F401

    rows = registry.describe()
    kinds = {(kind, name) for kind, name, _ in rows}
    assert ("gauge", "plan_cache") in kinds
    assert ("counter", "runtime.executions") in kinds
    assert ("histogram", "runtime.latency_s") in kinds
    assert all(desc for kind, name, desc in rows
               if name.startswith(("plan_cache", "runtime.")))
    assert rows == sorted(rows, key=lambda r: (r[0], r[1]))


def test_snapshot_is_json_serializable():
    import json

    import repro.core.runtime  # noqa: F401

    json.dumps(registry.snapshot())
