"""Tests for the ASCII chart renderer."""

from repro.bench.plotting import ascii_chart
from repro.bench.runner import Series, SeriesPoint


def _series(label, values, ks=None):
    s = Series(label=label, tier="model")
    ks = ks or [1024 * (i + 1) for i in range(len(values))]
    s.points = [
        SeriesPoint((14400, k, 14400), v, 1.0) for k, v in zip(ks, values)
    ]
    return s


class TestAsciiChart:
    def test_renders_marks_and_legend(self):
        out = ascii_chart([_series("gemm", [26, 26.5, 27]),
                           _series("strassen", [25, 28, 30])], title="panel")
        assert out.startswith("panel")
        assert "o gemm" in out and "x strassen" in out
        body = "\n".join(out.splitlines()[1:-3])  # chart rows only
        assert "o" in body and "x" in body  # both series plotted

    def test_y_axis_covers_range(self):
        out = ascii_chart([_series("s", [10.0, 50.0])])
        assert "50.0" in out and "10.0" in out

    def test_flat_series_no_crash(self):
        out = ascii_chart([_series("flat", [5.0, 5.0, 5.0])])
        assert "flat" in out

    def test_empty(self):
        assert ascii_chart([]) == "(no series)"

    def test_x_axis_bounds_printed(self):
        out = ascii_chart([_series("s", [1, 2, 3], ks=[100, 200, 300])])
        assert "100" in out and "300" in out
