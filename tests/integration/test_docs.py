"""The docs subsystem: generated catalog table stays in sync, links resolve."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def _run(*argv):
    return subprocess.run(
        [sys.executable, *argv], cwd=REPO, capture_output=True, text=True
    )


class TestCatalogDocs:
    def test_algorithms_md_is_committed(self):
        assert (REPO / "docs" / "algorithms.md").exists()

    def test_generated_docs_have_not_drifted(self):
        # The acceptance gate CI enforces: regenerating must be a no-op.
        res = _run("tools/gen_catalog_docs.py", "--check")
        assert res.returncode == 0, res.stderr or res.stdout

    def test_check_detects_drift(self, tmp_path):
        stale = tmp_path / "algorithms.md"
        stale.write_text("# stale\n")
        res = _run("tools/gen_catalog_docs.py", "--check", "--out", str(stale))
        assert res.returncode == 1
        assert "stale" in res.stderr

    def test_table_covers_every_catalog_shape(self):
        from repro.algorithms.catalog import FIG2_SHAPES

        text = (REPO / "docs" / "algorithms.md").read_text()
        for (m, k, n) in FIG2_SHAPES:
            assert f"`<{m},{k},{n}>`" in text


class TestFusionSection:
    def test_architecture_md_has_generated_fusion_section(self):
        text = (REPO / "docs" / "architecture.md").read_text()
        assert "fusion-modes:begin" in text and "fusion-modes:end" in text
        # Every variant appears in the generated lowering-mode table.
        for variant in ("naive", "ab", "abc"):
            assert f"`{variant}`" in text

    def test_fusion_section_matches_live_model(self):
        """The committed workspace numbers are the model's (drift gate)."""
        import sys

        sys.path.insert(0, str(REPO / "tools"))
        try:
            import gen_catalog_docs as gen
        finally:
            sys.path.pop(0)
        text = (REPO / "docs" / "architecture.md").read_text()
        assert gen.render_fusion_section() in text

    def test_check_detects_stale_fusion_section(self, tmp_path):
        """--check (with the default targets) fails when the architecture
        section is edited by hand."""
        import shutil
        import subprocess

        tools = tmp_path / "tools"
        docs = tmp_path / "docs"
        tools.mkdir(), docs.mkdir()
        shutil.copy(REPO / "tools" / "gen_catalog_docs.py", tools)
        shutil.copy(REPO / "docs" / "algorithms.md", docs)
        stale = (REPO / "docs" / "architecture.md").read_text().replace(
            "MiB", "GiB"
        )
        (docs / "architecture.md").write_text(stale)
        (tmp_path / "src").symlink_to(REPO / "src")
        res = subprocess.run(
            [sys.executable, "tools/gen_catalog_docs.py", "--check"],
            cwd=tmp_path, capture_output=True, text=True,
        )
        assert res.returncode == 1
        assert "architecture.md" in res.stderr


class TestLinkChecker:
    def test_readme_and_docs_links_resolve(self):
        res = _run("tools/check_links.py")
        assert res.returncode == 0, res.stderr

    def test_broken_link_fails(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](does-not-exist.md)\n")
        res = _run("tools/check_links.py", str(bad))
        assert res.returncode == 1
        assert "missing file target" in res.stderr

    def test_bad_anchor_fails(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("# Only Heading\n\nsee [x](#no-such-heading)\n")
        res = _run("tools/check_links.py", str(bad))
        assert res.returncode == 1
        assert "anchor" in res.stderr
