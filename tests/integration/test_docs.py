"""The docs subsystem: generated catalog table stays in sync, links resolve."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def _run(*argv):
    return subprocess.run(
        [sys.executable, *argv], cwd=REPO, capture_output=True, text=True
    )


class TestCatalogDocs:
    def test_algorithms_md_is_committed(self):
        assert (REPO / "docs" / "algorithms.md").exists()

    def test_generated_docs_have_not_drifted(self):
        # The acceptance gate CI enforces: regenerating must be a no-op.
        res = _run("tools/gen_catalog_docs.py", "--check")
        assert res.returncode == 0, res.stderr or res.stdout

    def test_check_detects_drift(self, tmp_path):
        stale = tmp_path / "algorithms.md"
        stale.write_text("# stale\n")
        res = _run("tools/gen_catalog_docs.py", "--check", "--out", str(stale))
        assert res.returncode == 1
        assert "stale" in res.stderr

    def test_table_covers_every_catalog_shape(self):
        from repro.algorithms.catalog import FIG2_SHAPES

        text = (REPO / "docs" / "algorithms.md").read_text()
        for (m, k, n) in FIG2_SHAPES:
            assert f"`<{m},{k},{n}>`" in text


class TestLinkChecker:
    def test_readme_and_docs_links_resolve(self):
        res = _run("tools/check_links.py")
        assert res.returncode == 0, res.stderr

    def test_broken_link_fails(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](does-not-exist.md)\n")
        res = _run("tools/check_links.py", str(bad))
        assert res.returncode == 1
        assert "missing file target" in res.stderr

    def test_bad_anchor_fails(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("# Only Heading\n\nsee [x](#no-such-heading)\n")
        res = _run("tools/check_links.py", str(bad))
        assert res.returncode == 1
        assert "anchor" in res.stderr
