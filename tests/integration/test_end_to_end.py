"""Cross-module integration tests: full pipeline consistency."""

import numpy as np
import pytest

import repro
from repro.bench.runner import run_series
from repro.bench.workloads import fig6_sweep, reduced
from repro.blis.simulator import simulate_time
from repro.core.codegen import compile_plan
from repro.core.plan import build_plan


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_docstring_example(self, rng):
        A, B = rng.random((128, 96)), rng.random((96, 160))
        C = repro.multiply(A, B, algorithm="strassen", levels=2)
        assert np.allclose(C, A @ B)

    def test_catalog_to_multiply_roundtrip(self, rng):
        for entry in repro.fig2_family()[:6]:
            m, k, n = entry.dims
            A = rng.standard_normal((m * 8 + 1, k * 8 + 1))
            B = rng.standard_normal((k * 8 + 1, n * 8 + 1))
            C = repro.multiply(A, B, algorithm=entry.algorithm)
            assert np.abs(C - A @ B).max() < 1e-8


class TestGeneratorEngineAgreement:
    @pytest.mark.parametrize("variant", ["naive", "ab", "abc"])
    def test_codegen_equals_engines(self, rng, variant):
        ml = repro.resolve_levels("strassen", 2)
        fn, _ = compile_plan(build_plan(64, 64, 64, ml, variant))
        A = rng.standard_normal((68, 72))
        B = rng.standard_normal((72, 76))
        from_gen = fn(A, B, np.zeros((68, 76)))
        from_direct = repro.multiply(A, B, algorithm="strassen", levels=2)
        from_blocked = repro.multiply(
            A, B, algorithm="strassen", levels=2, engine="blocked", variant=variant
        )
        assert np.allclose(from_gen, from_direct)
        assert np.allclose(from_gen, from_blocked)


class TestSelectionPipeline:
    def test_selected_candidate_is_runnable(self, rng):
        mach = repro.ivy_bridge_e5_2680_v2(1)
        winner, _ = repro.select(480, 480, 480, mach)
        ml = winner.multilevel()
        A = rng.standard_normal((481, 483))
        B = rng.standard_normal((483, 479))
        C = np.zeros((481, 479))
        repro.DirectEngine().multiply(A, B, C, ml)
        assert np.abs(C - A @ B).max() < 1e-7

    def test_model_agrees_with_simulator_ordering(self):
        # For the clean divisible sizes of the paper sweeps, the model and
        # the fringe-aware simulator must broadly agree on who wins.
        mach = repro.ivy_bridge_e5_2680_v2(1)
        ml = repro.resolve_levels("strassen", 1)
        m = n = 14400
        for k in (1024, 4096, 12288):
            t_model = repro.predict_fmm(m, k, n, ml, "abc", mach).time
            t_sim = simulate_time(m, k, n, ml, "abc", mach)
            assert t_model == pytest.approx(t_sim, rel=0.05), k


class TestBenchHarness:
    def test_run_series_model_tier(self):
        mach = repro.ivy_bridge_e5_2680_v2(1)
        sweep = fig6_sweep()[:3]
        s = run_series(sweep, "strassen", 1, "abc", mach, tier="model")
        assert len(s.points) == 3
        assert all(p.gflops > 0 for p in s.points)

    def test_run_series_sim_tier(self):
        mach = repro.ivy_bridge_e5_2680_v2(1)
        sweep = fig6_sweep()[:2]
        s = run_series(sweep, "strassen", 1, "abc", mach, tier="sim")
        assert all(p.gflops > 10 for p in s.points)

    def test_run_series_wall_tier_small(self):
        mach = repro.generic_laptop(1)
        sweep = reduced(fig6_sweep()[:1], factor=100)
        s = run_series(sweep, "strassen", 1, "abc", mach, tier="wall")
        assert s.points[0].time > 0

    def test_gemm_baseline_series(self):
        mach = repro.ivy_bridge_e5_2680_v2(1)
        s = run_series(fig6_sweep()[:2], None, 1, "abc", mach, tier="model")
        assert s.label == "gemm"


class TestNumericalBehaviour:
    def test_fmm_error_grows_with_levels(self, rng):
        # Known FMM property ([8-10] in the paper): deeper recursion loses
        # accuracy relative to classical GEMM.  Use a well-scaled problem.
        n = 128
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        ref = A @ B
        errs = []
        for levels in (1, 2, 3):
            C = repro.multiply(A, B, algorithm="strassen", levels=levels)
            errs.append(np.abs(C - ref).max())
        assert errs[0] < errs[2] * 1.001  # non-decreasing overall trend
        assert errs[2] < 1e-10  # still tiny at fp64

    def test_float32_supported_via_promotion(self, rng):
        A = rng.standard_normal((32, 32)).astype(np.float32)
        B = rng.standard_normal((32, 32)).astype(np.float32)
        C = repro.multiply(A, B, algorithm="strassen")
        assert np.abs(C - A.astype(np.float64) @ B.astype(np.float64)).max() < 1e-5
