"""Tests for the benchmark support package (workloads/runner/reporting)."""


from repro.bench.paper_data import FIG2_ROWS, PRACTICAL1_SHAPE, PRACTICAL2_SHAPE
from repro.bench.reporting import format_table, series_table, write_csv
from repro.bench.runner import Series, SeriesPoint, measure_wall, run_series
from repro.bench.workloads import (
    fig6_sweep,
    fig7_fixed_k_sweep,
    fig7_square_sweep,
    fig9_sweep,
    reduced,
)
from repro.core.executor import resolve_levels
from repro.model.machines import generic_laptop, ivy_bridge_e5_2680_v2


class TestWorkloads:
    def test_fig6_sweep_matches_paper_axis(self):
        sweep = fig6_sweep()
        assert sweep[0] == (14400, 1024, 14400)
        assert sweep[-1] == (14400, 12288, 14400)
        assert len(sweep) == 12

    def test_fig7_square(self):
        assert all(m == k == n for m, k, n in fig7_square_sweep())

    def test_fig7_fixed_k(self):
        assert all(k == 1024 for _, k, _ in fig7_fixed_k_sweep())

    def test_fig9_axis(self):
        sweep = fig9_sweep()
        assert sweep[0] == (1200, 1200, 1200)
        assert sweep[-1] == (15600, 1200, 15600)

    def test_reduced_floors(self):
        r = reduced([(14400, 480, 14400)], factor=1000, minimum=48)
        assert r == [(48, 48, 48)]


class TestPaperData:
    def test_fig2_rows_complete(self):
        assert len(FIG2_ROWS) == 23
        assert {r.dims for r in FIG2_ROWS} == {
            tuple(d) for d in [r.dims for r in FIG2_ROWS]
        }

    def test_theory_consistent_with_rank(self):
        for r in FIG2_ROWS:
            expect = (r.classical_muls / r.rank - 1) * 100
            assert abs(expect - r.theory_pct) < 0.1, r.dims

    def test_practical_shapes(self):
        assert PRACTICAL1_SHAPE == (14400, 480, 14400)
        assert PRACTICAL2_SHAPE == (14400, 12000, 14400)


class TestRunner:
    def test_model_and_sim_tiers(self):
        mach = ivy_bridge_e5_2680_v2(1)
        sweep = [(2048, 2048, 2048), (4096, 4096, 4096)]
        for tier in ("model", "sim"):
            s = run_series(sweep, "strassen", 1, "abc", mach, tier=tier)
            assert s.tier == tier
            assert len(s.points) == 2
            assert s.points[1].gflops > s.points[0].gflops * 0.5

    def test_wall_tier_direct(self):
        mach = generic_laptop(1)
        s = run_series([(96, 96, 96)], "strassen", 1, "abc", mach, tier="wall")
        assert s.points[0].time > 0

    def test_measure_wall_blocked(self):
        ml = resolve_levels("strassen", 1)
        t = measure_wall(64, 64, 64, ml, "abc", engine="blocked", repeats=1)
        assert t > 0

    def test_unknown_tier(self):
        mach = generic_laptop(1)
        import pytest

        with pytest.raises(ValueError):
            run_series([(8, 8, 8)], None, 1, "abc", mach, tier="psychic")


class TestReporting:
    def _series(self):
        s = Series(label="x", tier="model")
        s.points = [
            SeriesPoint((10, 10, 10), 1.5, 2.0),
            SeriesPoint((20, 20, 20), 2.5, 3.0),
        ]
        return s

    def test_format_table_alignment(self):
        t = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = t.splitlines()
        assert lines[0] == "T"
        assert lines[3].startswith("1")
        assert "333" in lines[4]

    def test_series_table(self):
        out = series_table([self._series()])
        assert "x [model]" in out
        assert "10x10x10" in out

    def test_write_csv(self, tmp_path):
        p = write_csv(tmp_path / "out.csv", [self._series()])
        text = p.read_text()
        assert "m,k,n,x|model" in text
        assert "20,20,20,2.5000" in text

    def test_empty_series_table(self):
        assert "no series" in series_table([])
