"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_multiply_defaults(self):
        args = build_parser().parse_args(["multiply"])
        assert args.m == 1024 and args.algorithm == "strassen"


class TestCommands:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "<2,2,2>" in out and "<6,3,3>" in out

    def test_multiply_direct(self, capsys):
        rc = main(["multiply", "-m", "32", "-k", "40", "-n", "36"])
        assert rc == 0
        assert "max |C - AB|" in capsys.readouterr().out

    def test_multiply_blocked_hybrid(self, capsys):
        rc = main(
            ["multiply", "-m", "30", "-k", "20", "-n", "30",
             "--algorithm", "strassen+<3,2,3>", "--engine", "blocked",
             "--variant", "ab"]
        )
        assert rc == 0
        assert "counters" in capsys.readouterr().out

    def test_multiply_threads(self, capsys):
        rc = main(["multiply", "-m", "32", "-k", "32", "-n", "32",
                   "--threads", "2"])
        assert rc == 0
        assert "max |C - AB|" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["direct", "blocked"])
    def test_multiply_rejects_zero_threads(self, engine):
        # Both engine paths must honor the spec-level threads validation.
        with pytest.raises(ValueError, match="threads"):
            main(["multiply", "-m", "8", "-k", "8", "-n", "8",
                  "--engine", engine, "--threads", "0"])

    def test_select(self, capsys):
        rc = main(["select", "-m", "4800", "-k", "480", "-n", "4800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selected:" in out

    def test_codegen(self, capsys):
        rc = main(["codegen", "-m", "64", "-k", "64", "-n", "64"])
        assert rc == 0
        src = capsys.readouterr().out
        assert src.startswith("def fmm_")
        ns: dict = {}
        exec(src, ns)  # emitted source must be runnable as-is

    def test_model(self, capsys):
        rc = main(["model", "-m", "14400", "-k", "480", "-n", "14400"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gemm (BLIS model)" in out and "strassen/abc" in out

    def test_discover_trivial(self, capsys):
        rc = main(
            ["discover", "-m", "1", "-k", "1", "-n", "2", "--rank", "2",
             "--restarts", "4", "--budget", "20"]
        )
        assert rc == 0

    def test_discover_impossible(self):
        rc = main(
            ["discover", "-m", "2", "-k", "2", "-n", "2", "--rank", "4",
             "--restarts", "2", "--budget", "5"]
        )
        assert rc == 1
