"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_multiply_defaults(self):
        args = build_parser().parse_args(["multiply"])
        assert args.m == 1024 and args.algorithm == "strassen"


class TestCommands:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "<2,2,2>" in out and "<6,3,3>" in out

    def test_multiply_direct(self, capsys):
        rc = main(["multiply", "-m", "32", "-k", "40", "-n", "36"])
        assert rc == 0
        assert "max |C - AB|" in capsys.readouterr().out

    def test_multiply_blocked_hybrid(self, capsys):
        rc = main(
            ["multiply", "-m", "30", "-k", "20", "-n", "30",
             "--algorithm", "strassen+<3,2,3>", "--engine", "blocked",
             "--variant", "ab"]
        )
        assert rc == 0
        assert "counters" in capsys.readouterr().out

    def test_multiply_threads(self, capsys):
        rc = main(["multiply", "-m", "32", "-k", "32", "-n", "32",
                   "--threads", "2"])
        assert rc == 0
        assert "max |C - AB|" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["direct", "blocked"])
    def test_multiply_rejects_zero_threads(self, engine):
        # Both engine paths must honor the spec-level threads validation.
        with pytest.raises(ValueError, match="threads"):
            main(["multiply", "-m", "8", "-k", "8", "-n", "8",
                  "--engine", engine, "--threads", "0"])

    def test_select(self, capsys):
        rc = main(["select", "-m", "4800", "-k", "480", "-n", "4800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selected:" in out

    def test_select_json(self, capsys):
        import json

        rc = main(["select", "-m", "4800", "-k", "480", "-n", "4800", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["problem"] == [4800, 480, 4800]
        assert doc["selected"]["variant"] in ("naive", "ab", "abc")
        assert doc["selected"]["predicted_gflops"] > 0
        assert len(doc["ranked"]) >= 2
        # ranked is sorted fastest-first
        times = [c["predicted_time_s"] for c in doc["ranked"]]
        assert times == sorted(times)

    def test_codegen(self, capsys):
        rc = main(["codegen", "-m", "64", "-k", "64", "-n", "64"])
        assert rc == 0
        src = capsys.readouterr().out
        assert src.startswith("def fmm_")
        ns: dict = {}
        exec(src, ns)  # emitted source must be runnable as-is

    def test_model(self, capsys):
        rc = main(["model", "-m", "14400", "-k", "480", "-n", "14400"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gemm (BLIS model)" in out and "strassen/abc" in out

    def test_discover_trivial(self, capsys):
        rc = main(
            ["discover", "-m", "1", "-k", "1", "-n", "2", "--rank", "2",
             "--restarts", "4", "--budget", "20"]
        )
        assert rc == 0

    def test_discover_impossible(self):
        rc = main(
            ["discover", "-m", "2", "-k", "2", "-n", "2", "--rank", "4",
             "--restarts", "2", "--budget", "5"]
        )
        assert rc == 1


class TestTuneAndWisdomCommands:
    def _store_arg(self, tmp_path):
        return ["--store", str(tmp_path / "wisdom.json")]

    def test_tune_records_wisdom(self, tmp_path, capsys):
        rc = main(["tune", "-m", "64", "-k", "64", "-n", "64",
                   "--budget", "500ms", "--top", "1", "--no-calibrate",
                   *self._store_arg(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "winner" in out and "wisdom: 1 entry" in out
        assert (tmp_path / "wisdom.json").exists()

    def test_tune_json(self, tmp_path, capsys):
        import json

        rc = main(["tune", "-m", "64", "-k", "64", "-n", "64",
                   "--budget", "500ms", "--top", "1", "--no-calibrate",
                   "--json", *self._store_arg(tmp_path)])
        assert rc == 0
        docs = json.loads(capsys.readouterr().out)
        assert docs[0]["problem"] == [64, 64, 64]
        assert docs[0]["gflops"] > 0
        # top-1 + classical baseline + one backend duplicate of the
        # rank-1 finalist per available non-reference backend.
        labels = [ms["backend"] for ms in docs[0]["measured"]]
        assert len(docs[0]["measured"]) >= 3
        assert labels.count("reference") == 2
        assert "specialized" in labels

    def test_tune_budget_suffixes(self, tmp_path):
        for budget in ("1", "1s", "1000ms"):
            rc = main(["tune", "-m", "32", "-k", "32", "-n", "32",
                       "--budget", budget, "--top", "1", "--no-calibrate",
                       *self._store_arg(tmp_path)])
            assert rc == 0

    def test_tune_bad_budget_exits(self, tmp_path):
        import pytest

        with pytest.raises(SystemExit):
            main(["tune", "-m", "32", "-k", "32", "-n", "32",
                  "--budget", "soon", *self._store_arg(tmp_path)])

    def test_wisdom_show_empty(self, tmp_path, capsys):
        rc = main(["wisdom", *self._store_arg(tmp_path)])
        assert rc == 0
        assert "no tuned entries" in capsys.readouterr().out

    def test_wisdom_show_after_tune(self, tmp_path, capsys):
        main(["tune", "-m", "64", "-k", "64", "-n", "64", "--budget", "500ms",
              "--top", "1", "--no-calibrate", *self._store_arg(tmp_path)])
        capsys.readouterr()
        rc = main(["wisdom", *self._store_arg(tmp_path)])
        assert rc == 0
        assert "float64" in capsys.readouterr().out

    def test_wisdom_json(self, tmp_path, capsys):
        import json

        main(["tune", "-m", "64", "-k", "64", "-n", "64", "--budget", "500ms",
              "--top", "1", "--no-calibrate", *self._store_arg(tmp_path)])
        capsys.readouterr()
        rc = main(["wisdom", "--json", *self._store_arg(tmp_path)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["entries"]) == 1
        assert not doc["recovered_corrupt"]

    def test_wisdom_clear_and_path(self, tmp_path, capsys):
        main(["tune", "-m", "64", "-k", "64", "-n", "64", "--budget", "500ms",
              "--top", "1", "--no-calibrate", *self._store_arg(tmp_path)])
        rc = main(["wisdom", "clear", *self._store_arg(tmp_path)])
        assert rc == 0
        rc = main(["wisdom", "path", *self._store_arg(tmp_path)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["wisdom", *self._store_arg(tmp_path)])
        assert "no tuned entries" in capsys.readouterr().out

    def test_wisdom_show_survives_partial_entries(self, tmp_path, capsys):
        # Valid config but missing problem/gflops metadata: the store must
        # treat the file as corrupt and the CLI must not traceback.
        import json

        from repro.tune.wisdom import SCHEMA_VERSION, machine_fingerprint

        p = tmp_path / "wisdom.json"
        p.write_text(json.dumps({
            "version": SCHEMA_VERSION,
            "fingerprint": machine_fingerprint(),
            "entries": {"b": {"config": {
                "algorithm": [[2, 2, 2]], "levels": 1, "variant": "abc",
                "engine": "direct", "threads": 1,
            }}},
        }))
        rc = main(["wisdom", "--store", str(p)])
        assert rc == 0
        assert "corrupt" in capsys.readouterr().out

    def test_tune_rejects_zero_threads(self, tmp_path):
        with pytest.raises(ValueError, match="threads"):
            main(["tune", "-m", "32", "-k", "32", "-n", "32",
                  "--threads", "0", "--no-calibrate",
                  *self._store_arg(tmp_path)])

    def test_multiply_auto_with_tune_off(self, capsys):
        rc = main(["multiply", "-m", "64", "-k", "64", "-n", "64",
                   "--engine", "auto", "--tune", "off"])
        assert rc == 0
        assert "max |C - AB|" in capsys.readouterr().out


class TestObservabilityCommands:
    def test_multiply_report_prints_history(self, capsys):
        rc = main(["multiply", "-m", "32", "-k", "32", "-n", "32",
                   "--report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "report:" in out and "n_chunks=" in out
        assert "history:" in out and "p95=" in out
        assert "plan-cache hit-rate" in out

    def test_trace_run_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        rc = main(["trace", "run", "-m", "48", "-k", "48", "-n", "48",
                   "-o", str(out_path)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "execute_plan" in names
        assert "plan.compile" in names      # cold first run
        assert "plan_cache.hit" in names    # warm second run
        assert any(n.startswith("phase:") for n in names)

    def test_trace_run_process_workers(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        rc = main(["trace", "run", "-m", "128", "-k", "128", "-n", "128",
                   "--procs", "2", "--repeat", "1", "-o", str(out_path)])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert len(pids) >= 2  # parent + worker timelines merged

    def test_trace_leaves_tracer_disabled(self, tmp_path):
        from repro.obs import trace

        main(["trace", "run", "-m", "32", "-k", "32", "-n", "32",
              "-o", str(tmp_path / "t.json")])
        assert not trace.is_enabled()

    def test_stats_text(self, capsys):
        rc = main(["stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "counters:" in out and "gauges:" in out
        assert "plan_cache" in out

    def test_stats_json(self, capsys):
        import json

        main(["multiply", "-m", "32", "-k", "32", "-n", "32"])
        capsys.readouterr()
        rc = main(["stats", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        snap = doc["metrics"]
        for name in ("plan_cache", "workspace.arena", "pools.threads",
                     "pools.processes", "kernels.cache"):
            assert name in snap["gauges"], name
        assert snap["counters"]["runtime.executions"] >= 1
        assert doc["reports"]  # the multiply above landed in the history
