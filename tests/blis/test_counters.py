"""Tests for the counter accounting object."""

from repro.blis.counters import OpCounters


class TestOpCounters:
    def test_starts_zero(self):
        c = OpCounters()
        assert c.total_flops == 0
        assert c.dram_elements() == 0

    def test_accumulate(self):
        a = OpCounters(mul_flops=10, a_read=5)
        b = OpCounters(mul_flops=2, c_traffic=4)
        a += b
        assert a.mul_flops == 12
        assert a.c_traffic == 4

    def test_lambda_scales_only_c_kernel_traffic(self):
        c = OpCounters(a_read=10, c_traffic=100, temp_c_traffic=7)
        assert c.dram_elements(lam=1.0) == 117
        assert c.dram_elements(lam=0.5) == 67

    def test_pack_writes_excluded_by_default(self):
        c = OpCounters(a_read=1, a_pack_write=50, b_pack_write=50)
        assert c.dram_elements() == 1
        assert c.dram_elements(count_pack_writes=True) == 101

    def test_reset(self):
        c = OpCounters(mul_flops=5)
        c.reset()
        assert c.total_flops == 0

    def test_copy_is_independent(self):
        a = OpCounters(mul_flops=3)
        b = a.copy()
        b.mul_flops = 9
        assert a.mul_flops == 3

    def test_as_dict_roundtrip(self):
        c = OpCounters(b_read=2.5)
        d = c.as_dict()
        assert d["b_read"] == 2.5
        assert len(d) == 12
