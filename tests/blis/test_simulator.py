"""Tests for the loop-walking cost simulator.

The key property: for every variant, level count and (ragged) shape, the
simulator's counters must equal the instrumented engine's counters exactly
— they walk the same loop structure, one with arrays, one without.
"""

import numpy as np
import pytest

from repro.blis.params import BlockingParams
from repro.blis.simulator import (
    counters_to_time,
    simulate_fmm,
    simulate_gemm,
    simulate_time,
)
from repro.core.executor import BlockedEngine, resolve_levels
from repro.model.machines import ivy_bridge_e5_2680_v2

SMALL = BlockingParams(mc=16, kc=16, nc=32, mr=4, nr=4)
MACH = ivy_bridge_e5_2680_v2(1)


class TestGemmSimulation:
    def test_matches_engine(self, rng):
        m, k, n = 50, 33, 71
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        eng = BlockedEngine(params=SMALL)
        eng.gemm(A, B, np.zeros((m, n)))
        sim = simulate_gemm(m, k, n, SMALL)
        assert sim.as_dict() == eng.counters.as_dict()

    def test_flops_identity(self):
        sim = simulate_gemm(100, 200, 300, SMALL)
        assert sim.mul_flops == 2 * 100 * 200 * 300


class TestFmmSimulation:
    @pytest.mark.parametrize("variant", ["naive", "ab", "abc"])
    @pytest.mark.parametrize(
        "spec,levels,shape",
        [
            ("strassen", 1, (64, 64, 64)),
            ("strassen", 2, (100, 103, 97)),
            ((3, 2, 3), 1, (66, 44, 66)),
            ((2, 5, 2), 1, (32, 50, 20)),
        ],
    )
    def test_matches_engine_exactly(self, rng, variant, spec, levels, shape):
        ml = resolve_levels(spec, levels)
        m, k, n = shape
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        eng = BlockedEngine(params=SMALL, variant=variant)
        eng.multiply(A, B, np.zeros((m, n)), ml)
        sim = simulate_fmm(m, k, n, ml, variant, SMALL)
        for key, val in eng.counters.as_dict().items():
            assert sim.as_dict()[key] == pytest.approx(val), (key, variant, spec)

    def test_fmm_saves_flops(self):
        ml = resolve_levels("strassen", 1)
        sim = simulate_fmm(1024, 1024, 1024, ml, "abc", SMALL)
        gemm = simulate_gemm(1024, 1024, 1024, SMALL)
        # 7/8 of the multiplies, plus lower-order addition flops.
        assert sim.mul_flops == gemm.mul_flops * 7 / 8

    def test_unknown_variant_raises(self):
        ml = resolve_levels("strassen", 1)
        with pytest.raises(ValueError):
            simulate_fmm(64, 64, 64, ml, "xyz", SMALL)


class TestPricing:
    def test_counters_to_time_positive(self):
        sim = simulate_gemm(512, 512, 512, MACH.blocking)
        t = counters_to_time(sim, MACH)
        assert t > 0

    def test_multicore_speeds_up_arithmetic(self):
        m1 = ivy_bridge_e5_2680_v2(1)
        m10 = ivy_bridge_e5_2680_v2(10)
        t1 = simulate_time(4096, 4096, 4096, None, "abc", m1)
        t10 = simulate_time(4096, 4096, 4096, None, "abc", m10)
        assert t10 < t1

    def test_paper_scale_is_fast_to_simulate(self):
        # The whole point: m=n=14400 in milliseconds, not teraflops.
        import time

        ml = resolve_levels("strassen", 2)
        t0 = time.perf_counter()
        simulate_time(14400, 12000, 14400, ml, "abc", MACH)
        assert time.perf_counter() - t0 < 5.0
