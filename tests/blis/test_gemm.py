"""Tests for the five-loop packed GEMM."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.blis.counters import OpCounters
from repro.blis.gemm import loop_bounds, packed_gemm
from repro.blis.params import BlockingParams

SMALL = BlockingParams(mc=16, kc=16, nc=32, mr=4, nr=4)


class TestLoopBounds:
    def test_exact_division(self):
        assert list(loop_bounds(8, 4)) == [(0, 4), (4, 4)]

    def test_remainder(self):
        assert list(loop_bounds(10, 4)) == [(0, 4), (4, 4), (8, 2)]

    def test_oversized_step(self):
        assert list(loop_bounds(3, 100)) == [(0, 3)]

    def test_zero_dim(self):
        assert list(loop_bounds(0, 4)) == []


class TestPackedGemm:
    @pytest.mark.parametrize("shape", [(16, 16, 16), (50, 33, 71), (7, 100, 3)])
    def test_matches_numpy(self, rng, shape):
        m, k, n = shape
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        C = np.zeros((m, n))
        packed_gemm([(1.0, A)], [(1.0, B)], [(1.0, C)], SMALL)
        assert np.abs(C - A @ B).max() < 1e-10

    def test_weighted_operands(self, rng):
        A1 = rng.standard_normal((20, 20))
        A2 = rng.standard_normal((20, 20))
        B1 = rng.standard_normal((20, 20))
        B2 = rng.standard_normal((20, 20))
        C1 = np.zeros((20, 20))
        C2 = np.zeros((20, 20))
        packed_gemm(
            [(1.0, A1), (-1.0, A2)],
            [(0.5, B1), (2.0, B2)],
            [(1.0, C1), (-1.0, C2)],
            SMALL,
        )
        M = (A1 - A2) @ (0.5 * B1 + 2 * B2)
        assert np.allclose(C1, M)
        assert np.allclose(C2, -M)

    def test_micro_mode_matches(self, rng):
        A = rng.standard_normal((24, 20))
        B = rng.standard_normal((20, 36))
        C1 = np.zeros((24, 36))
        C2 = np.zeros((24, 36))
        packed_gemm([(1.0, A)], [(1.0, B)], [(1.0, C1)], SMALL, mode="slab")
        packed_gemm([(1.0, A)], [(1.0, B)], [(1.0, C2)], SMALL, mode="micro")
        assert np.allclose(C1, C2)

    def test_pool_matches_sequential(self, rng):
        A = rng.standard_normal((64, 48))
        B = rng.standard_normal((48, 64))
        C1 = np.zeros((64, 64))
        C2 = np.zeros((64, 64))
        packed_gemm([(1.0, A)], [(1.0, B)], [(1.0, C1)], SMALL)
        with ThreadPoolExecutor(4) as pool:
            packed_gemm([(1.0, A)], [(1.0, B)], [(1.0, C2)], SMALL, pool=pool)
        assert np.allclose(C1, C2)

    def test_inner_dim_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            packed_gemm(
                [(1.0, rng.standard_normal((4, 5)))],
                [(1.0, rng.standard_normal((6, 4)))],
                [(1.0, np.zeros((4, 4)))],
                SMALL,
            )

    def test_operand_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            packed_gemm(
                [(1.0, rng.standard_normal((4, 4))), (1.0, rng.standard_normal((4, 5)))],
                [(1.0, rng.standard_normal((4, 4)))],
                [(1.0, np.zeros((4, 4)))],
                SMALL,
            )


class TestGemmCounters:
    def test_divisible_case_closed_form(self, rng):
        m = k = 32
        n = 64
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        C = np.zeros((m, n))
        c = OpCounters()
        packed_gemm([(1.0, A)], [(1.0, B)], [(1.0, C)], SMALL, c)
        # kc=16 -> 2 k-blocks; nc=32 -> 2 n-blocks; mc=16 -> 2 m-blocks.
        assert c.mul_flops == 2 * m * n * k
        assert c.b_read == k * n  # B packed once per (jc, pc), disjoint
        assert c.a_read == m * k * (n // 32)  # A repacked per jc iteration
        assert c.c_traffic == 2 * m * n * (k // 16)  # C touched per pc

    def test_counters_optional(self, rng):
        A = rng.standard_normal((8, 8))
        C = np.zeros((8, 8))
        packed_gemm([(1.0, A)], [(1.0, A)], [(1.0, C)], SMALL, None)
        assert np.allclose(C, A @ A)
