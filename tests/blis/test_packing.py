"""Tests for fused-sum packing and multi-destination updates."""

import numpy as np
import pytest

from repro.blis.counters import OpCounters
from repro.blis.packing import pack_weighted, weighted_update


class TestPackWeighted:
    def test_single_operand_copies(self, rng):
        X = rng.standard_normal((10, 12))
        buf = pack_weighted([(1.0, X)], slice(2, 6), slice(0, 5))
        assert np.array_equal(buf, X[2:6, 0:5])
        buf[0, 0] = 99  # must be a copy, not a view
        assert X[2, 0] != 99

    def test_weighted_sum(self, rng):
        X = rng.standard_normal((8, 8))
        Y = rng.standard_normal((8, 8))
        buf = pack_weighted([(1.0, X), (-2.0, Y)], slice(0, 8), slice(0, 8))
        assert np.allclose(buf, X - 2 * Y)

    def test_counters_a(self, rng):
        X = rng.standard_normal((6, 4))
        c = OpCounters()
        pack_weighted([(1.0, X), (1.0, X), (-1.0, X)], slice(0, 6), slice(0, 4), c, "A")
        assert c.a_read == 3 * 24
        assert c.a_pack_write == 24
        assert c.a_add_flops == 2 * 2 * 24
        assert c.b_read == 0

    def test_counters_b(self, rng):
        X = rng.standard_normal((6, 4))
        c = OpCounters()
        pack_weighted([(1.0, X)], slice(0, 3), slice(0, 4), c, "B")
        assert c.b_read == 12
        assert c.b_pack_write == 12
        assert c.b_add_flops == 0

    def test_preallocated_out(self, rng):
        X = rng.standard_normal((8, 8))
        out = np.empty((16, 16))
        buf = pack_weighted([(1.0, X)], slice(0, 8), slice(0, 4), out=out)
        assert buf.shape == (8, 4)
        assert buf.base is out

    def test_empty_operands_raise(self):
        with pytest.raises(ValueError):
            pack_weighted([], slice(0, 1), slice(0, 1))


class TestWeightedUpdate:
    def test_multi_destination(self, rng):
        block = rng.standard_normal((4, 4))
        C1 = np.zeros((8, 8))
        C2 = np.zeros((8, 8))
        weighted_update(
            [(1.0, C1), (-0.5, C2)], block, slice(4, 8), slice(0, 4)
        )
        assert np.allclose(C1[4:8, 0:4], block)
        assert np.allclose(C2[4:8, 0:4], -0.5 * block)
        assert C1[:4].sum() == 0

    def test_counters(self, rng):
        block = rng.standard_normal((3, 3))
        C = np.zeros((3, 3))
        c = OpCounters()
        weighted_update([(1.0, C), (1.0, C)], block, slice(0, 3), slice(0, 3), c)
        assert c.c_traffic == 2 * 9 * 2
        assert c.c_add_flops == 2 * 9 * 2
