"""Tests for blocking parameters."""

import pytest

from repro.blis.params import IVY_BRIDGE_BLOCKING, BlockingParams


class TestBlockingParams:
    def test_paper_defaults(self):
        p = IVY_BRIDGE_BLOCKING
        assert (p.mc, p.kc, p.nc, p.mr, p.nr) == (96, 256, 4096, 8, 4)

    def test_paper_buffer_sizes(self):
        # §5.1: A~ is 192 KB (fits 256 KB L2), B~ is 8192 KB (fits L3).
        assert IVY_BRIDGE_BLOCKING.a_buffer_bytes == 192 * 1024
        assert IVY_BRIDGE_BLOCKING.b_buffer_bytes == 8192 * 1024

    def test_mc_must_divide_mr(self):
        with pytest.raises(ValueError):
            BlockingParams(mc=100, mr=8)

    def test_nc_must_divide_nr(self):
        with pytest.raises(ValueError):
            BlockingParams(nc=4098, nr=4)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            BlockingParams(kc=0)

    def test_scaled_copy(self):
        p = IVY_BRIDGE_BLOCKING.scaled(kc=128)
        assert p.kc == 128
        assert p.mc == 96
        assert IVY_BRIDGE_BLOCKING.kc == 256  # original untouched
