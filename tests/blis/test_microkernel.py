"""Tests for the macro/micro-kernel."""

import numpy as np
import pytest

from repro.blis.counters import OpCounters
from repro.blis.microkernel import macro_kernel
from repro.blis.params import BlockingParams

P = BlockingParams(mc=16, kc=16, nc=32, mr=4, nr=4)


class TestMacroKernel:
    def test_slab_computes_product(self, rng):
        At = rng.standard_normal((8, 12))
        Bt = rng.standard_normal((12, 8))
        C = np.zeros((16, 16))
        macro_kernel(At, Bt, [(1.0, C)], 4, 8, P, mode="slab")
        assert np.allclose(C[4:12, 8:16], At @ Bt)
        assert C[:4].sum() == 0

    def test_micro_equals_slab(self, rng):
        At = rng.standard_normal((10, 12))  # ragged vs mr=4
        Bt = rng.standard_normal((12, 10))  # ragged vs nr=4
        C1 = np.zeros((10, 10))
        C2 = np.zeros((10, 10))
        macro_kernel(At, Bt, [(1.0, C1)], 0, 0, P, mode="slab")
        macro_kernel(At, Bt, [(1.0, C2)], 0, 0, P, mode="micro")
        assert np.allclose(C1, C2)

    def test_multi_destination_weights(self, rng):
        At = rng.standard_normal((4, 4))
        Bt = rng.standard_normal((4, 4))
        C1 = np.zeros((4, 4))
        C2 = np.zeros((4, 4))
        macro_kernel(At, Bt, [(2.0, C1), (-1.0, C2)], 0, 0, P)
        assert np.allclose(C1, 2 * (At @ Bt))
        assert np.allclose(C2, -(At @ Bt))

    def test_flop_counting(self, rng):
        At = rng.standard_normal((8, 12))
        Bt = rng.standard_normal((12, 8))
        c = OpCounters()
        macro_kernel(At, Bt, [(1.0, np.zeros((8, 8)))], 0, 0, P, counters=c)
        assert c.mul_flops == 2 * 8 * 8 * 12

    def test_scratch_reuse(self, rng):
        At = rng.standard_normal((8, 8))
        Bt = rng.standard_normal((8, 8))
        C = np.zeros((8, 8))
        scratch = np.empty((16, 32))
        macro_kernel(At, Bt, [(1.0, C)], 0, 0, P, mode="slab", scratch=scratch)
        assert np.allclose(C, At @ Bt)

    def test_unknown_mode_raises(self, rng):
        At = rng.standard_normal((4, 4))
        with pytest.raises(ValueError):
            macro_kernel(At, At, [(1.0, np.zeros((4, 4)))], 0, 0, P, mode="x")
