"""Tests for machine parameter configs."""

import pytest

from repro.model.machines import MachineParams, generic_laptop, ivy_bridge_e5_2680_v2


class TestMachineParams:
    def test_tau_a(self):
        m = ivy_bridge_e5_2680_v2(1)
        assert m.tau_a == pytest.approx(1.0 / 28.32e9)

    def test_tau_b(self):
        m = ivy_bridge_e5_2680_v2(1)
        assert m.tau_b == pytest.approx(8.0 / 12.0e9)

    def test_single_core_peak(self):
        assert ivy_bridge_e5_2680_v2(1).peak_gflops == pytest.approx(28.32)

    def test_ten_core_peak_matches_paper(self):
        # 24.8 GFLOPS/core x 10 = 248, the line marked in Figs. 9-10.
        assert ivy_bridge_e5_2680_v2(10).peak_gflops == pytest.approx(248.0)

    def test_bandwidth_saturates_at_socket(self):
        assert ivy_bridge_e5_2680_v2(10).bandwidth_gbs == pytest.approx(59.7)
        assert ivy_bridge_e5_2680_v2(2).bandwidth_gbs == pytest.approx(24.0)

    def test_with_lam(self):
        m = ivy_bridge_e5_2680_v2(1)
        m2 = m.with_lam(0.55)
        assert m2.lam == 0.55
        assert m.lam == 0.7  # frozen original

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineParams(name="x", peak_gflops_per_core=0, bandwidth_gbs=10)
        with pytest.raises(ValueError):
            MachineParams(name="x", peak_gflops_per_core=10, bandwidth_gbs=10, lam=1.5)
        with pytest.raises(ValueError):
            MachineParams(name="x", peak_gflops_per_core=10, bandwidth_gbs=10, cores=0)

    def test_generic_laptop(self):
        m = generic_laptop(4)
        assert m.cores == 4
        assert m.peak_gflops > 0
