"""Tests for the numerical-stability bounds."""

import numpy as np
import pytest

from repro.algorithms.catalog import fig2_family
from repro.algorithms.classical import classical
from repro.algorithms.strassen import strassen
from repro.core.executor import multiply, resolve_levels
from repro.model.stability import (
    estimate_forward_error,
    growth_factor,
    rank_by_stability,
)


class TestGrowthFactor:
    def test_classical_is_minimal(self):
        # Classical <2,2,2>: each column of U/V/W has a single 1 -> Q = 1.
        assert growth_factor(classical(2, 2, 2)) == 1.0

    def test_strassen_growth(self):
        # eq.-(4): every column of U, V and W has at most two unit entries,
        # so the max column sums are 2, 2, 2 -> Q = 8.
        assert growth_factor(strassen()) == 8.0

    def test_all_catalog_entries_bounded(self):
        for e in fig2_family():
            q = growth_factor(e.algorithm)
            assert 1.0 <= q < 1000.0, e.dims

    def test_fmm_less_stable_than_classical(self):
        for e in fig2_family()[:5]:
            assert growth_factor(e.algorithm) > growth_factor(classical(*e.dims)) * 0.99


class TestEstimate:
    def test_growth_compounds_with_levels(self):
        e1 = estimate_forward_error(resolve_levels("strassen", 1), 1024)
        e2 = estimate_forward_error(resolve_levels("strassen", 2), 1024)
        assert e2.growth == pytest.approx(e1.growth**2)
        assert e2.bound_coefficient > e1.bound_coefficient

    def test_bound_dominates_measured_error(self, rng):
        # The bound must actually hold (it is loose by construction).
        n = 128
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        ref = A @ B
        for levels in (1, 2):
            ml = resolve_levels("strassen", levels)
            C = multiply(A, B, algorithm="strassen", levels=levels)
            est = estimate_forward_error(ml, n)
            bound = est.absolute_bound(
                float(np.linalg.norm(A, np.inf)), float(np.linalg.norm(B, np.inf))
            )
            measured = float(np.abs(C - ref).max())
            assert measured < bound, (levels, measured, bound)


class TestRanking:
    def test_strassen_among_most_stable(self):
        algos = [e.algorithm for e in fig2_family()]
        ranked = rank_by_stability(algos)
        names = [a.name for a, _ in ranked[:8]]
        assert "strassen" in names

    def test_sorted_ascending(self):
        ranked = rank_by_stability([e.algorithm for e in fig2_family()])
        qs = [q for _, q in ranked]
        assert qs == sorted(qs)
