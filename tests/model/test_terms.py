"""Tests for the Fig.-5 term tables."""

import math

import pytest

from repro.core.executor import resolve_levels
from repro.model.machines import ivy_bridge_e5_2680_v2
from repro.model.terms import gemm_term_table, term_table

MACH = ivy_bridge_e5_2680_v2(1)


class TestGemmTable:
    def test_arithmetic_is_2mnk(self):
        m, k, n = 1000, 2000, 3000
        tab = gemm_term_table(m, k, n, MACH)
        assert tab.arithmetic_time == pytest.approx(2 * m * n * k * MACH.tau_a)

    def test_memory_formula(self):
        m, k, n = 5000, 300, 7000
        tab = gemm_term_table(m, k, n, MACH)
        kc, nc = MACH.blocking.kc, MACH.blocking.nc
        expect = (
            m * k * math.ceil(n / nc)
            + n * k
            + 2 * MACH.lam * m * n * math.ceil(k / kc)
        ) * MACH.tau_b
        assert tab.memory_time == pytest.approx(expect)


class TestFmmCounts:
    def setup_method(self):
        self.ml = resolve_levels("strassen", 1)

    def test_abc_counts(self):
        tab = term_table(1000, 1000, 1000, self.ml, "abc", MACH)
        assert tab.n_mul == 7
        assert tab.n_a_add == 5 and tab.n_b_add == 5 and tab.n_c_add == 12
        assert tab.n_a_pack_read == 12 and tab.n_b_pack_read == 12
        assert tab.n_c_kernel == 12
        assert tab.n_a_temp == tab.n_b_temp == tab.n_c_temp == 0

    def test_ab_counts(self):
        tab = term_table(1000, 1000, 1000, self.ml, "ab", MACH)
        assert tab.n_c_kernel == 7  # M_r buffer, one stream per product
        assert tab.n_c_temp == 36  # 3 * nnz(W)
        assert tab.n_a_temp == 0

    def test_naive_counts(self):
        tab = term_table(1000, 1000, 1000, self.ml, "naive", MACH)
        assert tab.n_a_pack_read == 7  # packs the temporary, R_L times
        assert tab.n_a_temp == 12 + 7  # nnz(U) + R_L
        assert tab.n_b_temp == 12 + 7
        assert tab.n_c_temp == 36

    def test_two_level_counts_compound(self):
        ml2 = resolve_levels("strassen", 2)
        tab = term_table(1000, 1000, 1000, ml2, "abc", MACH)
        assert tab.n_mul == 49
        assert tab.n_a_pack_read == 144  # nnz(U (x) U) = 12^2

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            term_table(100, 100, 100, self.ml, "zzz", MACH)


class TestUnitTimes:
    def test_submatrix_sizes_divide(self):
        ml = resolve_levels("strassen", 1)
        tab = term_table(1000, 1000, 1000, ml, "abc", MACH)
        # T_a^x is 2 * (m/2)(n/2)(k/2) * tau_a.
        assert tab.t_mul == pytest.approx(2 * 500**3 * MACH.tau_a)
        assert tab.t_a_add == pytest.approx(2 * 500 * 500 * MACH.tau_a)

    def test_c_kernel_has_lambda_and_ceiling(self):
        ml = resolve_levels("strassen", 1)
        tab = term_table(1000, 600, 1000, ml, "abc", MACH)
        expect = (
            2 * MACH.lam * 500 * 500 * math.ceil(300 / MACH.blocking.kc) * MACH.tau_b
        )
        assert tab.t_c_kernel == pytest.approx(expect)

    def test_breakdown_sums_to_total(self):
        ml = resolve_levels("strassen", 2)
        tab = term_table(2000, 2000, 2000, ml, "ab", MACH)
        parts = tab.breakdown()
        assert sum(parts.values()) == pytest.approx(
            tab.arithmetic_time + tab.memory_time
        )
