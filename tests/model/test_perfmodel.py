"""Tests for the performance-model predictions."""

import pytest

from repro.core.executor import resolve_levels
from repro.model.machines import ivy_bridge_e5_2680_v2
from repro.model.perfmodel import (
    calibrate_lambda,
    effective_gflops,
    predict_fmm,
    predict_gemm,
)

MACH = ivy_bridge_e5_2680_v2(1)


class TestEffectiveGflops:
    def test_definition(self):
        assert effective_gflops(1000, 1000, 1000, 1.0) == pytest.approx(2.0)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            effective_gflops(10, 10, 10, 0.0)


class TestGemmPrediction:
    def test_below_peak(self):
        p = predict_gemm(12000, 12000, 12000, MACH)
        assert 0.85 * 28.32 < p.effective_gflops < 28.32

    def test_rank_k_lower_than_square(self):
        # Memory-bound rank-k updates run below big-square GEMM.
        small_k = predict_gemm(14400, 480, 14400, MACH)
        square = predict_gemm(14400, 12000, 14400, MACH)
        assert small_k.effective_gflops < square.effective_gflops


class TestFmmPrediction:
    def test_strassen_beats_gemm_when_large(self):
        ml = resolve_levels("strassen", 1)
        fmm = predict_fmm(14400, 12000, 14400, ml, "abc", MACH)
        gemm = predict_gemm(14400, 12000, 14400, MACH)
        assert fmm.effective_gflops > gemm.effective_gflops

    def test_exceeds_nominal_peak(self):
        # Effective GFLOPS counts 2mnk classical flops: a 2-level Strassen
        # at huge sizes must exceed the machine's nominal peak.
        ml = resolve_levels("strassen", 2)
        p = predict_fmm(14400, 12000, 14400, ml, "ab", MACH)
        assert p.effective_gflops > 28.32

    def test_abc_wins_rank_k_ab_wins_square(self):
        # The central §4.3 observation, at the model level.
        ml = resolve_levels("strassen", 1)
        m = n = 14400
        abc_small = predict_fmm(m, 480, n, ml, "abc", MACH)
        ab_small = predict_fmm(m, 480, n, ml, "ab", MACH)
        assert abc_small.effective_gflops > ab_small.effective_gflops
        abc_big = predict_fmm(m, 12000, n, ml, "abc", MACH)
        ab_big = predict_fmm(m, 12000, n, ml, "ab", MACH)
        assert ab_big.effective_gflops > abc_big.effective_gflops

    def test_time_decomposition(self):
        ml = resolve_levels("strassen", 1)
        p = predict_fmm(4800, 4800, 4800, ml, "abc", MACH)
        assert p.time == pytest.approx(p.arithmetic_time + p.memory_time)

    def test_multicore_divides_arithmetic_only(self):
        ml = resolve_levels("strassen", 1)
        m10 = ivy_bridge_e5_2680_v2(10)
        p1 = predict_fmm(10000, 10000, 10000, ml, "abc", ivy_bridge_e5_2680_v2(1))
        p10 = predict_fmm(10000, 10000, 10000, ml, "abc", m10)
        assert p10.time < p1.time
        # Less than 10x: bandwidth does not scale 10x (59.7/12 ~ 5x).
        assert p1.time / p10.time < 10.0


class TestCalibrateLambda:
    def test_recovers_known_lambda(self):
        target = predict_gemm(14400, 12000, 14400, MACH.with_lam(0.62)).effective_gflops
        fitted = calibrate_lambda(MACH, target)
        assert fitted.lam == pytest.approx(0.62, abs=0.01)

    def test_clamps_at_bounds(self):
        too_fast = calibrate_lambda(MACH, 1e9)
        assert too_fast.lam == pytest.approx(0.05)
        too_slow = calibrate_lambda(MACH, 0.1)
        assert too_slow.lam == pytest.approx(1.0)
