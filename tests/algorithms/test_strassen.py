"""Tests for the Strassen triples."""

import numpy as np

from repro.algorithms.strassen import strassen, winograd
from repro.search.brent import verify_brent_exact


class TestStrassen:
    def test_valid_and_exact(self):
        s = strassen()
        assert s.max_residual() == 0.0
        assert verify_brent_exact(s.U, s.V, s.W, 2, 2, 2)

    def test_matches_eq2_products(self):
        # Column 0 is M0 = (A0 + A3)(B0 + B3); C0 += M0; C3 += M0.
        s = strassen()
        assert s.U[:, 0].tolist() == [1, 0, 0, 1]
        assert s.V[:, 0].tolist() == [1, 0, 0, 1]
        assert s.W[:, 0].tolist() == [1, 0, 0, 1]
        # Column 4 is M4 = (A0 + A1) B3; C1 += M4; C0 -= M4.
        assert s.U[:, 4].tolist() == [1, 1, 0, 0]
        assert s.V[:, 4].tolist() == [0, 0, 0, 1]
        assert s.W[:, 4].tolist() == [-1, 1, 0, 0]

    def test_integer_coefficients(self):
        s = strassen()
        for M in (s.U, s.V, s.W):
            assert set(np.unique(M)) <= {-1.0, 0.0, 1.0}

    def test_multiplies(self, rng):
        s = strassen()
        A = rng.standard_normal((10, 10))
        B = rng.standard_normal((10, 10))
        C = np.zeros((10, 10))
        s.apply_once(A, B, C)
        assert np.allclose(C, A @ B)


class TestWinograd:
    def test_valid_and_exact(self):
        w = winograd()
        assert w.max_residual() == 0.0
        assert verify_brent_exact(w.U, w.V, w.W, 2, 2, 2)

    def test_rank_seven(self):
        assert winograd().rank == 7

    def test_distinct_from_strassen(self):
        assert not np.array_equal(winograd().U, strassen().U)

    def test_multiplies(self, rng):
        w = winograd()
        A = rng.standard_normal((6, 6))
        B = rng.standard_normal((6, 6))
        C = np.zeros((6, 6))
        w.apply_once(A, B, C)
        assert np.allclose(C, A @ B)
