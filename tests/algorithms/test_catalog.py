"""Tests for the Fig.-2 catalog registry."""

import numpy as np
import pytest

from repro.algorithms.catalog import (
    FIG2_SHAPES,
    base_case,
    catalog_summary,
    fig2_family,
    get_algorithm,
    get_entry,
)


class TestFamily:
    def test_twenty_three_entries(self):
        fam = fig2_family()
        assert len(fam) == 23
        assert [e.dims for e in fam] == list(FIG2_SHAPES)

    def test_every_entry_is_valid(self):
        for e in fig2_family():
            assert e.algorithm.is_valid(), e.dims
            assert e.algorithm.dims == e.dims

    def test_rank_never_below_paper(self):
        # The paper's ranks are best-known; beating them would mean a new
        # world record (i.e., a bug).
        for e in fig2_family():
            assert e.achieved_rank >= e.paper_rank, e.dims
            assert e.rank_gap >= 0

    def test_exact_entries_present(self):
        # These are constructed exactly regardless of search results.
        for dims in [(2, 2, 2), (2, 3, 2), (3, 2, 2), (2, 5, 2), (5, 2, 2), (4, 2, 2)]:
            assert get_entry(*dims).status == "exact", dims

    def test_every_entry_beats_classical_or_ties(self):
        for e in fig2_family():
            m, k, n = e.dims
            assert e.achieved_rank < m * k * n, e.dims

    def test_entries_multiply_correctly(self, rng):
        for e in fig2_family():
            m, k, n = e.dims
            A = rng.standard_normal((2 * m, 2 * k))
            B = rng.standard_normal((2 * k, 2 * n))
            C = np.zeros((2 * m, 2 * n))
            e.algorithm.apply_once(A, B, C)
            assert np.abs(C - A @ B).max() < 1e-8, e.dims


class TestLookup:
    def test_by_name(self):
        assert get_algorithm("strassen").name == "strassen"
        assert get_algorithm("winograd").rank == 7
        assert get_algorithm("classical").dims == (1, 1, 1)

    def test_by_string_shape(self):
        a = get_algorithm("<3,2,3>")
        assert a.dims == (3, 2, 3)
        assert get_algorithm(" < 3 ,2, 3 >") .dims == (3, 2, 3)

    def test_by_tuple(self):
        assert get_algorithm((4, 2, 2)).dims == (4, 2, 2)

    def test_passthrough(self):
        s = get_algorithm("strassen")
        assert get_algorithm(s) is s

    def test_unknown_shape_raises(self):
        with pytest.raises(KeyError):
            get_entry(7, 7, 7)

    def test_bad_spec_raises(self):
        with pytest.raises(TypeError):
            get_algorithm(3.14)

    def test_named_aliases_resolve(self):
        assert get_algorithm("smirnov333").dims == (3, 3, 3)
        assert get_algorithm("smirnov336").dims == (3, 3, 6)
        assert get_algorithm("hopcroft-kerr").dims == (2, 2, 3)

    def test_unknown_name_raises_value_error_listing_catalog(self):
        # The satellite fix: malformed algo strings must surface as
        # ValueError naming the vocabulary, never a bare loader KeyError.
        with pytest.raises(ValueError) as exc:
            get_algorithm("smirnov999")
        msg = str(exc.value)
        assert "smirnov999" in msg
        assert "strassen" in msg and "<2,3,2>" in msg

    def test_unknown_shape_string_raises_value_error(self):
        with pytest.raises(ValueError, match="known catalog names"):
            get_algorithm("<7,7,7>")

    def test_unknown_shape_tuple_raises_value_error(self):
        with pytest.raises(ValueError, match="known catalog names"):
            get_algorithm((7, 7, 7))

    def test_multiply_surfaces_value_error_for_bad_algo(self):
        import numpy as np

        from repro.core.executor import multiply

        A = np.ones((4, 4))
        with pytest.raises(ValueError, match="known catalog names"):
            multiply(A, A, algorithm="strasssen")  # typo'd name

    def test_known_names_cover_aliases_and_shapes(self):
        from repro.algorithms.catalog import known_algorithm_names

        names = known_algorithm_names()
        assert "strassen" in names and "smirnov333" in names
        assert "<6,3,3>" in names
        assert len(names) == len(set(names))


class TestBrentValidationOfShippedEntries:
    def test_every_catalog_entry_satisfies_brent(self):
        # Acceptance: each shipped entry (constructed, searched-exact or
        # searched-float) re-verifies its Brent equations within a tight
        # tolerance — rectangular bases included.
        for e in fig2_family():
            res = e.algorithm.max_residual()
            assert res <= 1e-9, (e.dims, e.status, res)

    def test_searched_data_files_validate_on_load(self):
        from repro.algorithms.loader import data_dir, load_directory

        d = data_dir()
        if not d.exists():
            pytest.skip("no searched coefficient files shipped")
        for name, algo in load_directory(d).items():
            assert algo.max_residual() <= 1e-9, name


class TestBaseCases:
    def test_base_223_rank_11(self):
        assert base_case(2, 2, 3).rank == 11

    def test_base_225_rank_18(self):
        assert base_case(2, 2, 5).rank == 18

    def test_base_224_rank_14(self):
        assert base_case(2, 2, 4).rank == 14

    def test_unknown_base_raises(self):
        with pytest.raises(KeyError):
            base_case(9, 9, 9)

    def test_caching_returns_same_object(self):
        assert base_case(2, 2, 3) is base_case(2, 2, 3)


class TestSummary:
    def test_summary_mentions_all_shapes(self):
        text = catalog_summary()
        for (m, k, n) in FIG2_SHAPES:
            assert f"<{m},{k},{n}>" in text
