"""Tests for coefficient JSON (de)serialization."""

import json

import numpy as np
import pytest

from repro.algorithms.loader import (
    algorithm_from_dict,
    algorithm_to_dict,
    load_json,
    save_json,
)
from repro.algorithms.strassen import strassen


class TestRoundTrip:
    def test_dict_roundtrip(self):
        s = strassen()
        d = algorithm_to_dict(s)
        s2 = algorithm_from_dict(d)
        assert s2.dims == s.dims
        assert np.array_equal(s2.U, s.U)
        assert np.array_equal(s2.V, s.V)
        assert np.array_equal(s2.W, s.W)

    def test_file_roundtrip(self, tmp_path):
        s = strassen()
        p = save_json(s, tmp_path / "strassen.json")
        s2 = load_json(p)
        assert s2.rank == 7
        assert np.array_equal(s2.W, s.W)

    def test_json_is_plain(self, tmp_path):
        p = save_json(strassen(), tmp_path / "x.json")
        data = json.loads(p.read_text())
        assert data["m"] == 2 and data["rank"] == 7
        assert isinstance(data["U"], list)


class TestValidationOnLoad:
    def test_corrupt_coefficients_rejected(self, tmp_path):
        d = algorithm_to_dict(strassen())
        d["U"][0][0] = 5.0
        with pytest.raises(ValueError):
            algorithm_from_dict(d)

    def test_rank_mismatch_rejected(self):
        d = algorithm_to_dict(strassen())
        d["rank"] = 6
        with pytest.raises(ValueError):
            algorithm_from_dict(d)
