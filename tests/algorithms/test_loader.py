"""Tests for coefficient JSON (de)serialization."""

import json

import numpy as np
import pytest

from repro.algorithms.classical import classical
from repro.algorithms.loader import (
    algorithm_from_dict,
    algorithm_to_dict,
    data_dir,
    load_directory,
    load_json,
    save_json,
)
from repro.algorithms.strassen import strassen


class TestRoundTrip:
    def test_dict_roundtrip(self):
        s = strassen()
        d = algorithm_to_dict(s)
        s2 = algorithm_from_dict(d)
        assert s2.dims == s.dims
        assert np.array_equal(s2.U, s.U)
        assert np.array_equal(s2.V, s.V)
        assert np.array_equal(s2.W, s.W)

    def test_file_roundtrip(self, tmp_path):
        s = strassen()
        p = save_json(s, tmp_path / "strassen.json")
        s2 = load_json(p)
        assert s2.rank == 7
        assert np.array_equal(s2.W, s.W)

    def test_json_is_plain(self, tmp_path):
        p = save_json(strassen(), tmp_path / "x.json")
        data = json.loads(p.read_text())
        assert data["m"] == 2 and data["rank"] == 7
        assert isinstance(data["U"], list)


class TestValidationOnLoad:
    def test_corrupt_coefficients_rejected(self, tmp_path):
        d = algorithm_to_dict(strassen())
        d["U"][0][0] = 5.0
        with pytest.raises(ValueError):
            algorithm_from_dict(d)

    def test_rank_mismatch_rejected(self):
        d = algorithm_to_dict(strassen())
        d["rank"] = 6
        with pytest.raises(ValueError):
            algorithm_from_dict(d)

    def test_rectangular_uvw_dims_must_agree(self):
        # A rectangular <2,3,4> entry whose W has the wrong row count
        # (m*n = 8, not 6) must be rejected at load time, not executed.
        d = algorithm_to_dict(classical(2, 3, 4))
        d["W"] = d["W"][:6]
        with pytest.raises(ValueError):
            algorithm_from_dict(d)

    def test_rectangular_uvw_width_mismatch_rejected(self):
        d = algorithm_to_dict(classical(2, 3, 4))
        d["V"] = [row[:-1] for row in d["V"]]  # V one product short of U
        with pytest.raises(ValueError):
            algorithm_from_dict(d)


class TestLoadDirectory:
    def test_loads_and_validates_all(self, tmp_path):
        save_json(strassen(), tmp_path / "a.json")
        save_json(classical(2, 3, 4), tmp_path / "b.json")
        loaded = load_directory(tmp_path)
        assert len(loaded) == 2
        assert all(a.is_valid() for a in loaded.values())

    def test_duplicate_entry_names_raise(self, tmp_path):
        save_json(strassen(), tmp_path / "one.json")
        save_json(strassen(), tmp_path / "two.json")
        with pytest.raises(ValueError, match="duplicate catalog entry"):
            load_directory(tmp_path)

    def test_shipped_data_dir_has_no_duplicates(self):
        # The committed coefficient files must themselves pass the
        # duplicate/validation sweep (empty dir is fine pre-search).
        d = data_dir()
        if d.exists():
            loaded = load_directory(d)
            assert all(a.is_valid(tol=1e-9) for a in loaded.values())
