"""Tests for the classical algorithm generator."""

import numpy as np
import pytest

from repro.algorithms.classical import classical


class TestClassical:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 2, 2), (3, 2, 4), (1, 6, 1)])
    def test_rank_is_mkn(self, dims):
        c = classical(*dims)
        assert c.rank == dims[0] * dims[1] * dims[2]
        assert c.max_residual() == 0.0

    def test_unit_coefficients(self):
        c = classical(2, 3, 2)
        for M in (c.U, c.V, c.W):
            assert set(np.unique(M)) <= {0.0, 1.0}

    def test_one_nonzero_per_column(self):
        c = classical(2, 2, 2)
        for M in (c.U, c.V, c.W):
            assert (np.count_nonzero(M, axis=0) == 1).all()

    def test_no_speedup(self):
        assert classical(4, 4, 4).theoretical_speedup == 1.0

    def test_multiplies(self, rng):
        c = classical(2, 3, 4)
        A = rng.standard_normal((6, 9))
        B = rng.standard_normal((9, 8))
        C = np.zeros((6, 8))
        c.apply_once(A, B, C)
        assert np.allclose(C, A @ B)
