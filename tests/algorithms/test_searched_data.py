"""Validation of the shipped search-discovered coefficient data files."""

import numpy as np
import pytest

from repro.algorithms.loader import data_dir, load_json
from repro.core.fmm import nnz
from repro.search.brent import verify_brent_exact

FILES = sorted(data_dir().glob("*.json"))


@pytest.mark.skipif(not FILES, reason="no shipped search data")
class TestShippedData:
    @pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
    def test_loads_and_validates(self, path):
        algo = load_json(path)  # load_json re-runs Brent validation
        m, k, n, rank = (
            int(path.name.split("_")[0]),
            int(path.name.split("_")[1]),
            int(path.name.split("_")[2]),
            int(path.name.split("_")[3].split(".")[0]),
        )
        assert algo.dims == (m, k, n)
        assert algo.rank == rank

    @pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
    def test_beats_classical_rank(self, path):
        algo = load_json(path)
        assert algo.rank < algo.classical_multiplies

    @pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
    def test_multiplies_matrices(self, path):
        algo = load_json(path)
        rng = np.random.default_rng(1)
        m, k, n = algo.dims
        A = rng.standard_normal((3 * m, 3 * k))
        B = rng.standard_normal((3 * k, 3 * n))
        C = np.zeros((3 * m, 3 * n))
        algo.apply_once(A, B, C)
        assert np.abs(C - A @ B).max() < 1e-8

    @pytest.mark.parametrize(
        "path",
        [p for p in FILES if ".float" not in p.name],
        ids=lambda p: p.name,
    )
    def test_discrete_entries_are_exact_rationals(self, path):
        algo = load_json(path)
        assert verify_brent_exact(algo.U, algo.V, algo.W, *algo.dims)
        # Discrete entries should also be reasonably sparse — far from the
        # dense m*k*R worst case.
        u, v, w = algo.nnz_uvw()
        assert u < 0.7 * algo.U.size
        assert v < 0.7 * algo.V.size

    @pytest.mark.parametrize(
        "path",
        [p for p in FILES if ".float" in p.name],
        ids=lambda p: p.name,
    )
    def test_float_entries_have_tiny_residual(self, path):
        algo = load_json(path)
        assert algo.max_residual() < 1e-9
        assert nnz(algo.U) > 0
