"""Property: the service is exactly-once and bitwise-faithful under load.

N concurrent submitter threads fire mixed shapes / dtypes / schedules at
one service.  Whatever the coalescer does with that interleaving, every
job must terminate exactly once (complete or error, never both, never
neither), every result must be **bitwise** equal to a direct serial
:func:`repro.multiply` with the same spec, and every result must carry
the per-request dtype — a float32 request must never come back upcast
because it rode through a batch.

Bitwise equality across the batch path is a real invariant, not a
tolerance shortcut: the batched lowering folds the stack into the same
task slabs with the same per-element accumulation order as the 2-D run
(see ``tests/core`` batched-equivalence coverage) — so coalescing is
observationally invisible.
"""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import multiply
from repro.serve import MultiplyService
from repro.serve.testing import FaultInjectingExecutor, ServiceTestClock

# The mixed-spec pool: shape x dtype x schedule.  Shapes include a
# ragged one so peeling rides through the batch path too.
SPECS = [
    ((32, 32, 32), np.float64, "strassen", 1),
    ((32, 32, 32), np.float32, "strassen", 1),
    ((48, 48, 48), np.float64, "strassen", 2),
    ((48, 48, 48), np.float32, "strassen", 2),
    ((45, 51, 39), np.float64, "strassen", 1),
    ((54, 48, 54), np.float64, "<3,3,3>", 1),
    ((54, 48, 54), np.float32, "<3,3,3>", 1),
]


def _operands(spec_idx: int, seed: int):
    (m, k, n), dtype, algorithm, levels = SPECS[spec_idx]
    rng = np.random.default_rng(seed * len(SPECS) + spec_idx)
    A = rng.standard_normal((m, k)).astype(dtype)
    B = rng.standard_normal((k, n)).astype(dtype)
    return A, B, dtype, algorithm, levels


@given(
    jobs=st.lists(st.integers(min_value=0, max_value=len(SPECS) - 1),
                  min_size=1, max_size=24),
    seed=st.integers(min_value=0, max_value=2**16),
    submitters=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=12, deadline=None)
def test_concurrent_mixed_load_is_exactly_once_and_bitwise(
        jobs, seed, submitters):
    clock = ServiceTestClock()
    ex = FaultInjectingExecutor()
    svc = MultiplyService(batch_window_s=1.0, max_batch=8,
                          clock=clock, executor=ex)
    results: dict[int, tuple] = {}
    lock = threading.Lock()

    def submit_range(lo: int, hi: int) -> None:
        for i in range(lo, hi):
            A, B, dtype, algorithm, levels = _operands(jobs[i], seed)
            h = svc.submit(A, B, algorithm=algorithm, levels=levels)
            with lock:
                results[i] = (h, A, B, dtype, algorithm, levels)

    try:
        per = len(jobs) // submitters
        bounds = [(t * per,
                   (t + 1) * per if t < submitters - 1 else len(jobs))
                  for t in range(submitters)]
        threads = [threading.Thread(target=submit_range, args=b)
                   for b in bounds if b[0] < b[1]]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == len(jobs)
        clock.run_until(
            lambda: all(h.done() for h, *_ in results.values()),
            timeout_s=60.0)
    finally:
        svc.shutdown(timeout=30.0)

    # Exactly once: every handle reached exactly one terminal state, and
    # the executor saw each job id exactly once.
    seen_ids = [jid for call in ex.calls for jid in call]
    assert sorted(seen_ids) == sorted(h.id for h, *_ in results.values())
    st_counts = svc.stats()
    assert st_counts["completed"] + st_counts["errors"] == len(jobs)
    assert st_counts["queue_depth"] == 0

    for i, (h, A, B, dtype, algorithm, levels) in results.items():
        assert h.status == "complete", f"job {i}: {h.status}"
        C = h.result(timeout=1.0)
        # Per-request dtype preserved: no upcast through the batch path.
        assert C.dtype == dtype
        # Bitwise equal to the direct serial multiply of the same spec.
        ref = multiply(A, B, algorithm=algorithm, levels=levels)
        assert ref.dtype == dtype
        assert np.array_equal(C, ref), (
            f"job {i} ({SPECS[jobs[i]]}) diverged from direct multiply; "
            f"max |delta| = {np.abs(C - ref).max()}"
        )
