"""The concurrency harness itself: deterministic windows, races, faults.

These tests drive the scheduler entirely through the injectable seams —
:class:`ServiceTestClock` (manual time; a coalescing window only closes
when the test advances the clock) and :class:`FaultInjectingExecutor`
(delay / raise / deadlock on command).  No assertion in this module
depends on wall-clock timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import multiply
from repro.serve import JobCancelledError, MultiplyService
from repro.serve.testing import FaultInjectingExecutor, ServiceTestClock


@pytest.fixture
def ops(rng):
    A = rng.standard_normal((48, 48))
    B = rng.standard_normal((48, 48))
    return A, B


@pytest.fixture
def rig(ops):
    """A service on a frozen clock with a programmable executor."""
    clock = ServiceTestClock()
    ex = FaultInjectingExecutor()
    svc = MultiplyService(batch_window_s=1.0, max_batch=32,
                          clock=clock, executor=ex)
    yield svc, clock, ex
    svc.shutdown(timeout=30.0)


class TestCoalescingWindow:
    def test_window_holds_until_the_clock_advances(self, rig, ops):
        svc, clock, ex = rig
        A, B = ops
        handles = [svc.submit(A, B) for _ in range(5)]
        # Simulated time is frozen: the window cannot expire on its own,
        # so every same-plan job lands in one batch once time moves.
        clock.run_until(lambda: all(h.done() for h in handles))
        assert ex.calls == [[h.id for h in handles]]
        assert all(h.batch_size == 5 for h in handles)

    def test_max_batch_caps_a_burst(self, ops):
        clock = ServiceTestClock()
        ex = FaultInjectingExecutor()
        svc = MultiplyService(batch_window_s=1.0, max_batch=2,
                              clock=clock, executor=ex)
        A, B = ops
        try:
            gate = ex.push_block()  # freeze batch #1 so all 5 queue first
            handles = [svc.submit(A, B) for _ in range(5)]
            gate.set()
            clock.run_until(lambda: all(h.done() for h in handles))
            sizes = sorted(len(call) for call in ex.calls)
            assert sum(sizes) == 5
            assert max(sizes) <= 2
        finally:
            svc.shutdown(timeout=30.0)

    def test_different_plans_never_share_a_batch(self, rig, rng):
        svc, clock, ex = rig
        A64 = rng.standard_normal((48, 48))
        B64 = rng.standard_normal((48, 48))
        h_f64 = [svc.submit(A64, B64) for _ in range(3)]
        h_f32 = [svc.submit(A64.astype(np.float32), B64.astype(np.float32))
                 for _ in range(3)]
        h_lvl2 = [svc.submit(A64, B64, levels=2) for _ in range(2)]
        everyone = h_f64 + h_f32 + h_lvl2
        clock.run_until(lambda: all(h.done() for h in everyone))
        groups = {frozenset(call) for call in ex.calls}
        assert frozenset(h.id for h in h_f64) in groups
        assert frozenset(h.id for h in h_f32) in groups
        assert frozenset(h.id for h in h_lvl2) in groups
        # dtype preserved through (and across) the batch path
        for h in h_f32:
            assert h.result(timeout=30.0).dtype == np.float32
        for h in h_f64 + h_lvl2:
            assert h.result(timeout=30.0).dtype == np.float64

    def test_execution_knobs_split_the_coalescing_key(self, rig, ops):
        svc, clock, ex = rig
        A, B = ops
        h1 = svc.submit(A, B, threads=1)
        h2 = svc.submit(A, B, threads=2)
        clock.run_until(lambda: h1.done() and h2.done())
        assert {frozenset(c) for c in ex.calls} == {
            frozenset([h1.id]), frozenset([h2.id])}


class TestCancellationRaces:
    def test_pending_job_cancels_while_scheduler_is_mid_batch(self, rig, ops):
        svc, clock, ex = rig
        A, B = ops
        gate = ex.push_block()
        running = svc.submit(A, B)
        clock.run_until(lambda: running.status == "running")
        pending = svc.submit(A, B)
        assert pending.cancel() is True
        assert pending.status == "cancelled"
        with pytest.raises(JobCancelledError):
            pending.result(timeout=1.0)
        gate.set()
        clock.run_until(lambda: running.done())
        assert running.status == "complete"
        # The cancelled job never reached the executor.
        assert all(pending.id not in call for call in ex.calls)

    def test_running_job_refuses_cancellation(self, rig, ops):
        svc, clock, ex = rig
        A, B = ops
        gate = ex.push_block()
        h = svc.submit(A, B)
        clock.run_until(lambda: h.status == "running")
        assert h.cancel() is False
        gate.set()
        clock.run_until(lambda: h.done())
        assert np.array_equal(h.result(timeout=30.0), multiply(A, B))

    def test_double_cancel_reports_false_the_second_time(self, rig, ops):
        svc, clock, ex = rig
        A, B = ops
        gate = ex.push_block()
        running = svc.submit(A, B)
        clock.run_until(lambda: running.status == "running")
        pending = svc.submit(A, B)
        assert pending.cancel() is True
        assert pending.cancel() is False
        gate.set()

    def test_terminal_job_refuses_cancellation(self, rig, ops):
        svc, clock, ex = rig
        A, B = ops
        h = svc.submit(A, B)
        clock.run_until(lambda: h.done())
        assert h.cancel() is False
        assert h.status == "complete"


class TestErrorPropagation:
    def test_executor_exception_reaches_every_job_in_the_batch(self, rig, ops):
        svc, clock, ex = rig
        A, B = ops
        boom = ArithmeticError("singular universe")
        ex.push_raise(boom)
        h1 = svc.submit(A, B)
        h2 = svc.submit(A, B)
        clock.run_until(lambda: h1.done() and h2.done())
        assert h1.status == h2.status == "error"
        for h in (h1, h2):
            with pytest.raises(ArithmeticError, match="singular universe"):
                h.result(timeout=1.0)
            assert h.exception(timeout=1.0) is boom
        assert svc.stats()["errors"] == 2

    def test_error_batch_does_not_poison_the_next_batch(self, rig, ops):
        svc, clock, ex = rig
        A, B = ops
        ex.push_raise(ValueError("transient"))
        bad = svc.submit(A, B)
        clock.run_until(lambda: bad.done())
        good = svc.submit(A, B)
        clock.run_until(lambda: good.done())
        assert bad.status == "error"
        assert good.status == "complete"
        assert np.array_equal(good.result(timeout=30.0), multiply(A, B))


class TestDeadlockedExecutor:
    def test_shutdown_times_out_while_executor_hangs_then_recovers(
            self, ops):
        clock = ServiceTestClock()
        ex = FaultInjectingExecutor()
        svc = MultiplyService(batch_window_s=1.0, clock=clock, executor=ex)
        A, B = ops
        gate = ex.push_block()
        h = svc.submit(A, B)
        clock.run_until(lambda: h.status == "running")
        # The scheduler is deadlocked inside the executor: a bounded
        # shutdown reports failure instead of hanging the caller.
        assert svc.shutdown(drain=True, timeout=0.1) is False
        gate.set()
        assert svc.shutdown(drain=True, timeout=30.0) is True
        assert h.status == "complete"
