"""Budget-capped stress/soak: sustained load leaks nothing, drains clean.

A two-thread service absorbs a sustained mixed-shape submit load for a
wall-clock budget (``REPRO_SOAK_BUDGET_S``, default 2 s — CI keeps it
small, a local run can raise it for a real soak).  The load mixes
dtypes, schedules, a ragged shape, and a slice of ``workers="processes"``
jobs so the shared-memory staging path is exercised too.  Afterwards the
invariants the serving layer promises:

* ``shutdown(drain=True)`` returns ``True`` and every accepted job
  reaches a terminal state — the queue drains to empty, nothing wedges.
* Zero leaked arena bytes: every workspace the batched executions
  checked out went back (``arena_stats().bytes_in_use == 0``).
* Zero leaked SHM segments: any ``/dev/shm`` entry with our prefix that
  appeared during the soak is owned by the shared arena's pool (and a
  pool clear removes it from the host).
"""

from __future__ import annotations

import glob
import itertools
import os
import time

import numpy as np
import pytest

from repro.core.executor import multiply
from repro.core.procpool import shutdown_process_pools
from repro.core.workspace import (
    SHM_PREFIX,
    arena_stats,
    shared_arena,
    shared_arena_clear,
)
from repro.serve import MultiplyService

SOAK_BUDGET_S = float(os.environ.get("REPRO_SOAK_BUDGET_S", "2.0"))

# Small shapes keep per-job latency tiny so the budget buys many jobs;
# the mix covers both dtypes, two schedules, and a ragged (peeled) shape.
SPECS = [
    ((48, 48, 48), np.float64, "strassen", 1, "threads"),
    ((48, 48, 48), np.float32, "strassen", 1, "threads"),
    ((45, 51, 39), np.float64, "strassen", 1, "threads"),
    ((54, 48, 54), np.float64, "<3,3,3>", 1, "threads"),
    ((64, 64, 64), np.float64, "strassen", 2, "threads"),
    ((64, 64, 64), np.float64, "strassen", 1, "processes"),
]


def _host_shm_names() -> set[str]:
    return {
        os.path.basename(p)
        for p in glob.glob(f"/dev/shm/{SHM_PREFIX}_*")
    }


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    shutdown_process_pools()


def test_sustained_load_leaks_nothing_and_drains(rng):
    operands = [
        (rng.standard_normal((m, k)).astype(dt),
         rng.standard_normal((k, n)).astype(dt), alg, lv, wk)
        for (m, k, n), dt, alg, lv, wk in SPECS
    ]
    shm_before = _host_shm_names()

    handles = []
    submitted = 0
    deadline = time.monotonic() + SOAK_BUDGET_S
    svc = MultiplyService(threads=2)
    try:
        for idx in itertools.count():
            if time.monotonic() >= deadline:
                break
            A, B, alg, lv, wk = operands[idx % len(operands)]
            handles.append(
                (svc.submit(A, B, algorithm=alg, levels=lv, workers=wk),
                 idx % len(operands))
            )
            submitted += 1
            # Bound the outstanding window so the soak exercises steady
            # state (queue fills and drains repeatedly), not one giant
            # backlog.
            if len(handles) >= 64:
                for h, _ in handles[:32]:
                    h.result(timeout=60.0)
                del handles[:32]
        drained = svc.shutdown(drain=True, timeout=120.0)
    finally:
        svc.shutdown(timeout=120.0)

    assert submitted > 0
    assert drained is True

    # The queue drained: every accepted job reached a terminal state.
    stats = svc.stats()
    assert stats["queue_depth"] == 0
    assert stats["pending_bytes"] == 0
    assert stats["completed"] == submitted
    assert stats["errors"] == 0
    for h, _ in handles:
        assert h.status == "complete"

    # Spot-check correctness of the tail against the direct serial path.
    for h, spec_idx in handles[-len(SPECS):]:
        A, B, alg, lv, _ = operands[spec_idx]
        assert np.array_equal(h.result(timeout=1.0),
                              multiply(A, B, algorithm=alg, levels=lv))

    # Zero leaked arena bytes: every checked-out workspace went back.
    assert arena_stats().bytes_in_use == 0

    # Zero leaked SHM segments: anything new on the host is pool-owned...
    leaked = _host_shm_names() - shm_before - set(shared_arena.segment_names())
    assert not leaked, f"orphaned SHM segments: {sorted(leaked)}"

    # ...and clearing the pool returns the host to its baseline.
    shutdown_process_pools()
    shared_arena_clear()
    assert _host_shm_names() - shm_before == set()


def test_drain_false_discards_backlog_without_leaking(rng):
    """The non-draining path must also leak nothing: pending jobs are
    cancelled, in-flight work completes, arenas come back empty."""
    A = rng.standard_normal((48, 48))
    B = rng.standard_normal((48, 48))
    svc = MultiplyService(threads=2)
    handles = [svc.submit(A, B) for _ in range(16)]
    svc.shutdown(drain=False, timeout=60.0)
    for h in handles:
        assert h.status in ("complete", "cancelled")
    assert svc.stats()["queue_depth"] == 0
    assert svc.stats()["pending_bytes"] == 0
    assert arena_stats().bytes_in_use == 0
