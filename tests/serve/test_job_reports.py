"""Per-job reports route through ReportHistory, never the thread-local.

``runtime.last_report()`` is a *thread-local* convenience: a service
client that reads it from its own thread observes that thread's last
execution (usually nothing), not its submitted job — the race the PR-8
docs used to paper over.  The serving layer therefore attributes each
job's ExecutionReport in the bounded history keyed by job id
(``repro.obs.reports.record_job`` / ``report_for``), and
``JobHandle.report()`` reads it back race-free from any thread.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.runtime import last_report
from repro.obs.reports import ReportHistory
from repro.serve import MultiplyService
from repro.serve.testing import ServiceTestClock


class TestReportHistoryJobIndex:
    def test_record_and_lookup_by_job_id(self):
        hist = ReportHistory(capacity=4)
        hist.record_job("job-a", "report-a")
        hist.record_job("job-b", "report-b")
        assert hist.report_for("job-a") == "report-a"
        assert hist.report_for("job-b") == "report-b"
        assert hist.report_for("job-zzz") is None

    def test_index_is_bounded_by_capacity(self):
        hist = ReportHistory(capacity=3)
        for i in range(10):
            hist.record_job(f"job-{i}", f"report-{i}")
        assert hist.report_for("job-0") is None  # evicted oldest-first
        assert hist.report_for("job-9") == "report-9"

    def test_batchmates_share_one_report(self):
        hist = ReportHistory(capacity=8)
        shared = object()
        hist.record_job("job-1", shared)
        hist.record_job("job-2", shared)
        assert hist.report_for("job-1") is hist.report_for("job-2") is shared

    def test_clear_drops_the_job_index(self):
        hist = ReportHistory(capacity=8)
        hist.record_job("job-1", "report")
        hist.clear()
        assert hist.report_for("job-1") is None


class TestInterleavedJobsNeverSwapReports:
    """The regression: two interleaved jobs, each sees only its own."""

    def test_two_interleaved_jobs_get_their_own_reports(self, rng):
        # Distinct plans (shape and dtype differ) so a swapped report is
        # unambiguous, submitted into one frozen window so both are in
        # flight together.
        A1 = rng.standard_normal((64, 48))
        B1 = rng.standard_normal((48, 72))
        A2 = rng.standard_normal((32, 32)).astype(np.float32)
        B2 = rng.standard_normal((32, 32)).astype(np.float32)
        clock = ServiceTestClock()
        svc = MultiplyService(batch_window_s=1.0, clock=clock)
        try:
            h1 = svc.submit(A1, B1)
            h2 = svc.submit(A2, B2)
            clock.run_until(lambda: h1.done() and h2.done())
        finally:
            svc.shutdown(timeout=30.0)
        r1, r2 = h1.report(), h2.report()
        assert r1 is not None and r2 is not None
        assert r1.shape == (64, 48, 72) and r1.dtype == "float64"
        assert r2.shape == (32, 32, 32) and r2.dtype == "float32"

    def test_reports_stay_attributed_under_concurrent_readback(self, rng):
        specs = [((64, 48, 72), np.float64), ((32, 32, 32), np.float32)]
        ops = []
        for (m, k, n), dt in specs:
            ops.append((rng.standard_normal((m, k)).astype(dt),
                        rng.standard_normal((k, n)).astype(dt), (m, k, n), dt))
        with MultiplyService() as svc:
            failures: list[str] = []

            def worker(A, B, shape, dt):
                for _ in range(8):
                    h = svc.submit(A, B)
                    h.result(timeout=30.0)
                    rep = h.report()
                    if rep is None or rep.shape != shape \
                            or rep.dtype != np.dtype(dt).name:
                        failures.append(
                            f"{h.id} expected {shape}/{dt}, got "
                            f"{None if rep is None else (rep.shape, rep.dtype)}")

            threads = [threading.Thread(target=worker, args=op)
                       for op in ops for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not failures, failures

    def test_client_thread_local_is_documented_racy_and_empty(self, rng):
        """The failure mode the fix closes: the submitting thread's
        ``last_report()`` does not see its job's execution (the scheduler
        thread ran it), so it must not be used service-side."""
        A = rng.standard_normal((40, 40))
        B = rng.standard_normal((40, 40))
        observed = []

        def fresh_client():
            with MultiplyService() as svc:
                h = svc.submit(A, B)
                h.result(timeout=30.0)
                observed.append((last_report(), h.report()))

        t = threading.Thread(target=fresh_client)
        t.start()
        t.join(30.0)
        tls_report, job_report = observed[0]
        assert tls_report is None  # the client thread executed nothing
        assert job_report is not None
        assert job_report.shape == (40, 40, 40)

    def test_docstring_names_the_history_route(self):
        assert "report_for" in last_report.__doc__
        assert "thread" in last_report.__doc__.lower()


class TestModuleLevelHelpers:
    def test_record_job_and_report_for_roundtrip(self):
        from repro.obs import reports

        sentinel = object()
        reports.record_job("job-helper-test", sentinel)
        assert reports.report_for("job-helper-test") is sentinel

    def test_report_for_unknown_id_is_none(self):
        from repro.obs import reports

        assert reports.report_for("job-never-existed") is None

    def test_public_surface(self):
        from repro.obs import reports

        assert "record_job" in reports.__all__
        assert "report_for" in reports.__all__
