"""MultiplyService basics: lifecycle, correctness, admission control.

Everything time-sensitive here runs through the deterministic seams in
``repro.serve.testing``; no test sleeps a wall-clock coalescing window.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.executor import multiply
from repro.obs import metrics as obs_metrics
from repro.serve import (
    JOB_STATUSES,
    JobCancelledError,
    MultiplyService,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve.testing import FaultInjectingExecutor, ServiceTestClock


@pytest.fixture
def ops(rng):
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    return A, B


def priced_bytes(A, B) -> int:
    """What the service charges one (A, B) strassen@1 job: probed via a
    throwaway 1-byte-budget service so tests size budgets off the real
    price instead of hardcoding model output."""
    svc = MultiplyService(byte_budget=1, policy="reject")
    try:
        with pytest.raises(ServiceOverloadedError) as ei:
            svc.submit(A, B)
        return ei.value.job_bytes
    finally:
        svc.shutdown()


def wait_for(predicate, timeout_s: float = 10.0) -> None:
    """Poll a cheap predicate without asserting any particular timing."""
    done = threading.Event()
    for _ in range(int(timeout_s / 0.005)):
        if predicate():
            return
        done.wait(0.005)
    raise TimeoutError("predicate never became true")


class TestJobLifecycle:
    def test_submit_returns_completing_handle(self, ops):
        A, B = ops
        with MultiplyService() as svc:
            h = svc.submit(A, B)
            C = h.result(timeout=30.0)
            assert h.status == "complete"
            assert h.done()
            assert h.id.startswith("job-")
            assert np.array_equal(C, multiply(A, B))

    def test_statuses_are_the_documented_set(self):
        assert JOB_STATUSES == (
            "pending", "running", "complete", "error", "cancelled")

    def test_result_bitwise_equal_to_direct_multiply(self, ops):
        A, B = ops
        with MultiplyService() as svc:
            handles = [svc.submit(A, B, levels=2) for _ in range(6)]
            ref = multiply(A, B, levels=2)
            for h in handles:
                assert np.array_equal(h.result(timeout=30.0), ref)

    def test_spec_errors_raise_synchronously_in_the_caller(self, ops):
        A, B = ops
        with MultiplyService() as svc:
            with pytest.raises(ValueError, match="2-D"):
                svc.submit(np.zeros((2, 64, 64)), B)
            with pytest.raises(ValueError, match="incompatible"):
                svc.submit(A, np.zeros((63, 64)))
            with pytest.raises(ValueError):
                svc.submit(A, B, variant="bogus")
            assert svc.stats()["submitted"] == 0

    def test_result_timeout_raises(self, ops):
        A, B = ops
        ex = FaultInjectingExecutor()
        gate = ex.push_block()
        svc = MultiplyService(executor=ex)
        try:
            h = svc.submit(A, B)
            with pytest.raises(TimeoutError):
                h.result(timeout=0.05)
        finally:
            gate.set()
            assert svc.shutdown(timeout=30.0)
        assert h.result(timeout=30.0) is not None

    def test_exception_accessor(self, ops):
        A, B = ops
        ex = FaultInjectingExecutor()
        boom = RuntimeError("kernel exploded")
        ex.push_raise(boom)
        with MultiplyService(executor=ex) as svc:
            h = svc.submit(A, B)
            assert h.exception(timeout=30.0) is boom
            with pytest.raises(RuntimeError, match="kernel exploded"):
                h.result(timeout=30.0)
            assert h.status == "error"

    def test_dtype_preserved_end_to_end(self, ops):
        A, B = ops
        with MultiplyService() as svc:
            h32 = svc.submit(A.astype(np.float32), B.astype(np.float32))
            h64 = svc.submit(A, B)
            assert h32.result(timeout=30.0).dtype == np.float32
            assert h64.result(timeout=30.0).dtype == np.float64


class TestAdmissionControl:
    def test_reject_policy_raises_typed_overload(self, ops):
        A, B = ops
        svc = MultiplyService(byte_budget=64, policy="reject")
        try:
            with pytest.raises(ServiceOverloadedError) as ei:
                svc.submit(A, B)
            assert ei.value.job_bytes > ei.value.byte_budget == 64
            assert svc.stats()["rejected"] == 1
            assert svc.stats()["submitted"] == 0
        finally:
            svc.shutdown()

    def test_reject_fires_only_past_the_budget(self, ops):
        A, B = ops
        cost = priced_bytes(A, B)
        ex = FaultInjectingExecutor()
        gate = ex.push_block()
        # Budget sized for one queued job of this spec, not two.
        svc = MultiplyService(byte_budget=int(1.5 * cost), policy="reject",
                              executor=ex)
        try:
            first = svc.submit(A, B)   # claimed by the frozen batch
            wait_for(lambda: first.status == "running")
            second = svc.submit(A, B)  # queued: fits alone
            with pytest.raises(ServiceOverloadedError):
                svc.submit(A, B)       # queued bytes + job > budget
            gate.set()
            assert np.array_equal(first.result(timeout=30.0),
                                  second.result(timeout=30.0))
        finally:
            gate.set()
            svc.shutdown()

    def test_serial_policy_degrades_in_caller(self, ops):
        A, B = ops
        svc = MultiplyService(byte_budget=64, policy="serial")
        try:
            h = svc.submit(A, B)
            # Already terminal: the caller executed it synchronously.
            assert h.status == "complete"
            assert np.array_equal(h.result(), multiply(A, B))
            st = svc.stats()
            assert st["degraded_serial"] == 1
            assert st["queue_depth"] == 0
        finally:
            svc.shutdown()

    def test_queue_policy_blocks_until_the_queue_drains(self, ops):
        A, B = ops
        cost = priced_bytes(A, B)
        ex = FaultInjectingExecutor()
        gate = ex.push_block()
        svc = MultiplyService(byte_budget=int(1.5 * cost), policy="queue",
                              executor=ex)
        try:
            first = svc.submit(A, B)   # claimed by the frozen batch
            wait_for(lambda: first.status == "running")
            svc.submit(A, B)           # queued: budget now full
            entered = threading.Event()
            done = threading.Event()
            handle = []

            def blocked_submit():
                entered.set()
                handle.append(svc.submit(A, B))
                done.set()

            t = threading.Thread(target=blocked_submit, daemon=True)
            t.start()
            entered.wait(10.0)
            assert not done.wait(0.15), "submit should block while over budget"
            gate.set()
            assert done.wait(30.0), "submit should unblock once drained"
            assert handle[0].result(timeout=30.0) is not None
            t.join(10.0)
        finally:
            gate.set()
            svc.shutdown()

    def test_queue_policy_rejects_a_job_no_budget_could_admit(self, ops):
        A, B = ops
        svc = MultiplyService(byte_budget=64, policy="queue")
        try:
            with pytest.raises(ServiceOverloadedError):
                svc.submit(A, B)  # bigger than the whole budget: never fits
        finally:
            svc.shutdown()

    def test_policy_validates_at_construction(self):
        # Normalization runs before the scheduler thread starts, so a bad
        # policy never leaks a thread.
        with pytest.raises(ValueError, match="overload policy"):
            MultiplyService(policy="explode")


class TestShutdown:
    def test_drain_completes_queued_jobs(self, ops):
        A, B = ops
        ex = FaultInjectingExecutor()
        gate = ex.push_block()
        svc = MultiplyService(executor=ex)
        hs = [svc.submit(A, B) for _ in range(4)]
        gate.set()
        assert svc.shutdown(drain=True, timeout=30.0)
        assert all(h.status == "complete" for h in hs)
        assert svc.queue_depth == 0
        assert svc.pending_bytes == 0

    def test_no_drain_cancels_queued_jobs(self, ops):
        A, B = ops
        ex = FaultInjectingExecutor()
        gate = ex.push_block()
        svc = MultiplyService(executor=ex)
        running = svc.submit(A, B)
        # Wait for the scheduler to actually claim the first batch so the
        # later submissions are deterministically still queued.
        wait_for(lambda: running.status == "running")
        queued = [svc.submit(A, B) for _ in range(3)]
        gate.set()
        assert svc.shutdown(drain=False, timeout=30.0)
        assert running.status == "complete"
        for h in queued:
            assert h.status == "cancelled"
            with pytest.raises(JobCancelledError):
                h.result(timeout=1.0)

    def test_submit_after_shutdown_raises(self, ops):
        A, B = ops
        svc = MultiplyService()
        svc.shutdown()
        with pytest.raises(ServiceClosedError):
            svc.submit(A, B)

    def test_shutdown_is_idempotent(self, ops):
        svc = MultiplyService()
        assert svc.shutdown(timeout=30.0)
        assert svc.shutdown(timeout=30.0)

    def test_context_manager_drains(self, ops):
        A, B = ops
        with MultiplyService() as svc:
            h = svc.submit(A, B)
        assert h.status == "complete"
        assert svc.closed


class TestObservabilityPublication:
    def test_serve_metrics_live_in_the_shared_registry(self, ops):
        A, B = ops
        before = obs_metrics.registry.snapshot()
        assert "serve.submitted" in before["counters"]
        assert "serve.queue_depth" in before["gauges"]
        assert "serve.coalesce_ratio" in before["gauges"]
        assert "serve.job_latency_s" in before["histograms"]
        base = before["counters"]["serve.completed"]
        with MultiplyService() as svc:
            svc.submit(A, B).result(timeout=30.0)
        after = obs_metrics.registry.snapshot()
        assert after["counters"]["serve.completed"] == base + 1

    def test_queue_depth_gauge_tracks_live_services(self, ops):
        A, B = ops
        # A frozen test clock keeps the coalescing window open forever, so
        # both jobs deterministically sit in the queue (still pending)
        # when the gauge is read.
        svc = MultiplyService(clock=ServiceTestClock(), batch_window_s=10.0)
        try:
            svc.submit(A, B)
            svc.submit(A, B)
            snap = obs_metrics.registry.snapshot()
            assert snap["gauges"]["serve.queue_depth"] == 2
            assert snap["gauges"]["serve.pending_bytes"] > 0
        finally:
            svc.shutdown()

    def test_per_job_report_attributed_by_id(self, ops):
        A, B = ops
        with MultiplyService() as svc:
            h = svc.submit(A, B)
            h.result(timeout=30.0)
            rep = h.report()
            assert rep is not None
            assert rep.shape == (64, 64, 64)
            assert h.batch_size >= 1


class TestTunableDefaults:
    def test_window_and_cap_default_from_tunables(self):
        from repro.core.spec import set_runtime_tunables

        svc = MultiplyService()
        try:
            set_runtime_tunables(serve_batch_window_us=7000,
                                 serve_max_batch=5)
            assert svc.batch_window_s == pytest.approx(0.007)
            assert svc.max_batch == 5
        finally:
            set_runtime_tunables()
            svc.shutdown()

    def test_explicit_knobs_beat_tunables(self):
        from repro.core.spec import set_runtime_tunables

        svc = MultiplyService(batch_window_s=0.5, max_batch=3)
        try:
            set_runtime_tunables(serve_batch_window_us=7000,
                                 serve_max_batch=99)
            assert svc.batch_window_s == 0.5
            assert svc.max_batch == 3
        finally:
            set_runtime_tunables()
            svc.shutdown()

    def test_wisdom_store_round_trips_serve_tunables(self, tmp_path):
        from repro.core.spec import runtime_tunables, set_runtime_tunables
        from repro.tune.wisdom import WisdomStore

        path = tmp_path / "wisdom.json"
        store = WisdomStore(path=path)
        store.record_tunables(serve_batch_window_us=12345, serve_max_batch=9)
        loaded = WisdomStore(path=path)
        assert loaded.tunables() == {
            "serve_batch_window_us": 12345, "serve_max_batch": 9}
        try:
            loaded.apply_tunables()
            eff = runtime_tunables()
            assert eff["serve_batch_window_us"] == 12345
            assert eff["serve_max_batch"] == 9
        finally:
            set_runtime_tunables()

    def test_wisdom_rejects_malformed_serve_tunables(self, tmp_path):
        from repro.tune.wisdom import WisdomStore

        store = WisdomStore(path=tmp_path / "wisdom.json")
        with pytest.raises(ValueError):
            store.record_tunables(serve_max_batch=0)
        with pytest.raises(ValueError):
            store.record_tunables(serve_batch_window_us=-1)


class TestCoalescingAcceptance:
    """The ISSUE acceptance criterion, end to end."""

    def test_32_concurrent_same_plan_submissions_coalesce(self, rng):
        A = rng.standard_normal((64, 64))
        B = rng.standard_normal((64, 64))
        clock = ServiceTestClock()
        ex = FaultInjectingExecutor()
        svc = MultiplyService(batch_window_s=1.0, max_batch=8,
                              clock=clock, executor=ex)
        try:
            handles = []
            lock = threading.Lock()

            def submit_one():
                h = svc.submit(A, B)
                with lock:
                    handles.append(h)

            threads = [threading.Thread(target=submit_one)
                       for _ in range(32)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            clock.run_until(lambda: all(h.done() for h in handles))

            # <= 8 batched runs, observable via the coalesce-ratio stat.
            st = svc.stats()
            assert st["completed"] == 32
            assert st["batches"] <= 8
            assert st["coalesce_ratio"] >= 4.0
            assert len(ex.calls) == st["batches"]
            # ... and via the registry gauge.
            snap = obs_metrics.registry.snapshot()
            assert snap["gauges"]["serve.coalesce_ratio"] > 1.0

            # Results bitwise-equal to serial multiply.
            ref = multiply(A, B)
            for h in handles:
                assert np.array_equal(h.result(timeout=30.0), ref)
        finally:
            svc.shutdown()

    def test_over_budget_submission_raises_instead_of_ooming(self, rng):
        A = rng.standard_normal((256, 256))
        B = rng.standard_normal((256, 256))
        svc = MultiplyService(byte_budget=1 * 2**20, policy="reject")
        try:
            with pytest.raises(ServiceOverloadedError):
                svc.submit(A, B, levels=1)
        finally:
            svc.shutdown()
