"""Numerical-stability bounds for FMM algorithms.

The paper excludes APA algorithms for "questionable numerical stability"
and caps recursion at two levels, citing Higham [8], Demmel et al. [9] and
Ballard et al. [10].  Following [10], the forward error of an L-level
stationary FMM satisfies

    |C - C_computed| <= ( Q^L * (n_0 + additions) ... ) * u * ||A|| ||B||

where the *growth factor* ``Q`` is governed by the 1-norms of the
coefficient triple:

    Q = ||U||_1 * ||V||_1 * ||W||_1

(maximum absolute column sums — each level multiplies the error bound by
at most this factor).  This module computes per-algorithm growth factors
and bound estimates, enabling the stability-aware ranking [10] proposes
(and the paper's Fig.-2 family inherits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fmm import FMMAlgorithm
from repro.core.kronecker import MultiLevelFMM

__all__ = ["growth_factor", "StabilityEstimate", "estimate_forward_error", "rank_by_stability"]

_EPS64 = float(np.finfo(np.float64).eps)


def growth_factor(algo: FMMAlgorithm) -> float:
    """Per-level error growth ``||U||_1 ||V||_1 ||W||_1`` (Ballard et al.).

    Classical multiplication has factor equal to the inner partition dim
    (e.g. 2 for <1,2,1>); Strassen's eq.-(4) triple has 4 * 4 * 4 ... the
    point is *relative* ranking: smaller is more stable.
    """
    u = float(np.max(np.sum(np.abs(algo.U), axis=0)))
    v = float(np.max(np.sum(np.abs(algo.V), axis=0)))
    w = float(np.max(np.sum(np.abs(algo.W), axis=0)))
    return u * v * w


@dataclass(frozen=True)
class StabilityEstimate:
    """Bound components for one multi-level configuration."""

    growth: float          # product of per-level growth factors
    levels: int
    base_dim: int          # classical GEMM dimension at the recursion base
    unit_roundoff: float

    @property
    def bound_coefficient(self) -> float:
        """Leading coefficient of the normwise forward-error bound."""
        return self.growth * max(self.base_dim, 1)

    def absolute_bound(self, norm_a: float, norm_b: float) -> float:
        """Normwise bound ``coef * u * ||A|| * ||B||``."""
        return self.bound_coefficient * self.unit_roundoff * norm_a * norm_b


def estimate_forward_error(
    ml: MultiLevelFMM, n: int, unit_roundoff: float = _EPS64
) -> StabilityEstimate:
    """Error-bound estimate for applying ``ml`` to an ``n x n x n`` problem.

    The base dimension is ``n / K~_L`` — the classical GEMM that remains
    below the FMM levels contributes the usual ``k * u`` term.
    """
    g = 1.0
    for algo in ml.levels:
        g *= growth_factor(algo)
    Kt = ml.dims_total[1]
    return StabilityEstimate(
        growth=g,
        levels=ml.L,
        base_dim=max(n // Kt, 1),
        unit_roundoff=unit_roundoff,
    )


def rank_by_stability(algos: list[FMMAlgorithm]) -> list[tuple[FMMAlgorithm, float]]:
    """Sort algorithms by growth factor, most stable first."""
    return sorted(((a, growth_factor(a)) for a in algos), key=lambda t: t[1])
