"""Machine parameter configurations for the performance model (Fig. 4).

``tau_a`` is the reciprocal of peak flop rate; ``tau_b`` the amortized time
to move one 8-byte double between DRAM and cache; ``lam`` the micro-kernel
prefetch-efficiency factor (paper: lambda in [0.5, 1], adapted to match
measured GEMM).

The paper's testbed is one socket of a dual-socket Intel Xeon E5-2680 v2
(Ivy Bridge): 3.54 GHz at 1 core (28.32 GFLOPS peak), 3.10 GHz with all 10
cores busy (24.8 GFLOPS/core), 59.7 GB/s socket bandwidth.  A single core
cannot saturate the socket's four channels; the per-core sustained stream
bandwidth is modeled at 12 GB/s (a typical measured value for this part),
aggregating up to the socket limit as cores are added.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.blis.params import IVY_BRIDGE_BLOCKING, BlockingParams

__all__ = ["MachineParams", "ivy_bridge_e5_2680_v2", "generic_laptop"]


@dataclass(frozen=True)
class MachineParams:
    """Architecture abstraction consumed by the performance model."""

    name: str
    peak_gflops_per_core: float
    bandwidth_gbs: float  # aggregate DRAM bandwidth available to the job
    cores: int = 1
    lam: float = 0.7
    blocking: BlockingParams = IVY_BRIDGE_BLOCKING

    def __post_init__(self) -> None:
        if self.peak_gflops_per_core <= 0 or self.bandwidth_gbs <= 0:
            raise ValueError("peak and bandwidth must be positive")
        if not (0.0 < self.lam <= 1.0):
            raise ValueError(f"lambda must lie in (0, 1], got {self.lam}")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")

    @property
    def tau_a(self) -> float:
        """Seconds per flop on one core."""
        return 1.0 / (self.peak_gflops_per_core * 1e9)

    @property
    def tau_b(self) -> float:
        """Seconds per 8-byte element of DRAM traffic."""
        return 8.0 / (self.bandwidth_gbs * 1e9)

    @property
    def peak_gflops(self) -> float:
        return self.peak_gflops_per_core * self.cores

    def with_lam(self, lam: float) -> "MachineParams":
        return replace(self, lam=lam)


def ivy_bridge_e5_2680_v2(cores: int = 1, lam: float = 0.7) -> MachineParams:
    """The paper's testbed (§5.1), single socket.

    One core peaks at 28.32 GFLOPS (3.54 GHz x 8 flops/cycle); ten cores at
    24.8 GFLOPS/core.  Memory bandwidth aggregates from ~12 GB/s for one
    core to the 59.7 GB/s socket limit — the contention that flattens the
    10-core FMM curves in Figs. 9–10.
    """
    if cores == 1:
        peak = 28.32
    else:
        peak = 24.8
    bw = min(12.0 * cores, 59.7)
    return MachineParams(
        name=f"ivy-bridge-e5-2680v2x{cores}",
        peak_gflops_per_core=peak,
        bandwidth_gbs=bw,
        cores=cores,
        lam=lam,
        blocking=IVY_BRIDGE_BLOCKING,
    )


def generic_laptop(cores: int = 1) -> MachineParams:
    """A deliberately modest config for examples/tests on unknown hardware."""
    return MachineParams(
        name=f"generic-laptop-x{cores}",
        peak_gflops_per_core=8.0,
        bandwidth_gbs=min(10.0 * cores, 30.0),
        cores=cores,
        lam=0.7,
        blocking=IVY_BRIDGE_BLOCKING,
    )
