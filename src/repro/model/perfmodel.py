"""Execution-time prediction: ``T = T_a + T_m`` and Effective GFLOPS.

The headline metric of every figure in the paper is *Effective GFLOPS* =
``2 m n k / T * 1e-9`` — classical flops over wall time, so FMM algorithms
can exceed "peak" by doing less arithmetic.  The multicore extension
divides arithmetic across cores while memory time is bounded by the shared
socket bandwidth already encoded in the machine config, which is precisely
the contention the paper observes at 10 cores (§5.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.kronecker import MultiLevelFMM
from repro.model.machines import MachineParams
from repro.model.terms import TermTable, gemm_term_table, term_table

__all__ = [
    "BACKEND_CALL_OVERHEAD",
    "PROCESS_ATTACH_OVERHEAD",
    "PROCESS_TASK_OVERHEAD",
    "SHM_COPY_BANDWIDTH",
    "THREAD_GIL_FRACTION",
    "ModelPrediction",
    "effective_gflops",
    "predict_backend_overhead",
    "predict_fmm",
    "predict_gemm",
    "predict_ipc_bytes",
    "predict_tile_window_bytes",
    "predict_worker_times",
    "predict_workspace_bytes",
    "predict_fusion_savings",
    "calibrate_lambda",
]

#: Per-call leaf-dispatch overhead (seconds) by backend: the Python task
#: machinery one serial interpreted execution pays versus a compiled
#: whole-core kernel (microsecond scale — measured by
#: ``benchmarks/bench_kernel_backends.py``; it only matters for small
#: cores, which is exactly where the specialized backend wins).  This is
#: how the model prices the ``backend`` dimension of ``engine="auto"``.
BACKEND_CALL_OVERHEAD = {
    "reference": 1.1e-4,
    "specialized": 4.5e-5,
    "numba": 4.5e-5,
}


#: Per-worker session setup the process runtime pays each multiply
#: (segment attach + plan-token/bind round trips), seconds.  Microsecond
#: scale, measured by ``benchmarks/bench_process_runtime.py``.
PROCESS_ATTACH_OVERHEAD = 1.2e-4

#: Per-task descriptor cost on the worker pipes (pickle + transport),
#: seconds — the process twin of the thread pool's per-task submit.
PROCESS_TASK_OVERHEAD = 5.0e-5

#: Sustained rate of the parent's copy-in/copy-out between operand arrays
#: and the shared-memory segment, bytes/second (a memcpy, so DRAM-speed).
SHM_COPY_BANDWIDTH = 8.0e9

#: Fraction of the interpreted task pipeline that stays serialized on the
#: GIL under the thread runtime (Python-side gather/scatter bookkeeping
#: between the BLAS leaves, which do release the GIL).  This is the
#: Amdahl cap that makes processes worth their IPC at scale.
THREAD_GIL_FRACTION = 0.25


def predict_ipc_bytes(m: int, k: int, n: int, dtype=np.float64) -> int:
    """Bytes the process runtime moves through shared memory per multiply.

    The parent copies both operand cores in and the accumulator core in
    *and* out (``|A| + |B| + 2 |C|``) — the exact quantity
    ``ExecutionReport.ipc_bytes`` observes for a 2-D multiply whose core
    covers the problem (fringes stay in the parent, and the model ignores
    fringes everywhere).
    """
    return int(m * k + k * n + 2 * m * n) * np.dtype(dtype).itemsize


def predict_worker_times(
    m: int,
    k: int,
    n: int,
    t_serial: float,
    workers: int,
    tasks: int = 64,
    dtype=np.float64,
) -> tuple[float, float]:
    """Priced ``(thread_time, process_time)`` for one serial-time estimate.

    Threads scale under the Amdahl cap of :data:`THREAD_GIL_FRACTION`
    (``t x (f + (1-f)/p)``); processes scale the full work by ``p`` but
    pay per-worker attach, per-task descriptor transport and the
    shared-memory copy of :func:`predict_ipc_bytes`.  This is how
    ``engine="auto"`` prices the ``workers`` dimension — see
    :func:`repro.core.parallel.pick_workers`.
    """
    p = max(int(workers), 1)
    f = THREAD_GIL_FRACTION
    t_thread = t_serial * (f + (1.0 - f) / p)
    t_proc = (
        t_serial / p
        + PROCESS_ATTACH_OVERHEAD * p
        + PROCESS_TASK_OVERHEAD * max(int(tasks), 0)
        + predict_ipc_bytes(m, k, n, dtype) / SHM_COPY_BANDWIDTH
    )
    return t_thread, t_proc


def predict_backend_overhead(
    backend: str, threads: int = 1, workers: str = "threads"
) -> float:
    """Priced per-call overhead of one leaf backend's dispatch path.

    Compiling backends serve thread-pooled calls through their parallel
    phase emission, but the *process* runtime always interprets (worker
    processes cannot share a kernel's process-local buffers), so with
    ``workers="processes"`` at ``threads > 1`` the priced overhead equals
    the reference backend's — the model never predicts a win a backend
    cannot deliver.  Unknown names price as the reference interpreter
    (the path they would actually execute on).
    """
    if threads > 1 and workers == "processes":
        backend = "reference"
    return BACKEND_CALL_OVERHEAD.get(backend, BACKEND_CALL_OVERHEAD["reference"])


@dataclass(frozen=True)
class ModelPrediction:
    """Predicted time decomposition for one configuration."""

    m: int
    k: int
    n: int
    label: str
    time: float
    arithmetic_time: float
    memory_time: float
    table: TermTable

    @property
    def effective_gflops(self) -> float:
        return effective_gflops(self.m, self.k, self.n, self.time)


def effective_gflops(m: int, k: int, n: int, time: float) -> float:
    """``2 m n k / time * 1e-9`` (Fig. 5, eq. 1)."""
    if time <= 0:
        raise ValueError("time must be positive")
    return 2.0 * m * n * k / time * 1e-9


def predict_fmm(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM,
    variant: str,
    machine: MachineParams,
) -> ModelPrediction:
    """Model prediction for an L-level FMM implementation."""
    tab = term_table(m, k, n, ml, variant, machine)
    ta = tab.arithmetic_time / machine.cores
    tm = tab.memory_time
    return ModelPrediction(
        m=m, k=k, n=n,
        label=f"{ml.name}/{variant}",
        time=ta + tm,
        arithmetic_time=ta,
        memory_time=tm,
        table=tab,
    )


def predict_gemm(m: int, k: int, n: int, machine: MachineParams) -> ModelPrediction:
    """Model prediction for the BLIS dgemm baseline."""
    tab = gemm_term_table(m, k, n, machine)
    ta = tab.arithmetic_time / machine.cores
    tm = tab.memory_time
    return ModelPrediction(
        m=m, k=k, n=n,
        label="gemm",
        time=ta + tm,
        arithmetic_time=ta,
        memory_time=tm,
        table=tab,
    )


def _core_blocks(m: int, k: int, n: int, ml: MultiLevelFMM):
    """Core block sizes and per-operand block counts (fringe ignored,
    like every other term in the model)."""
    Mt, Kt, Nt = ml.dims_total
    bm, bk, bn = m // Mt, k // Kt, n // Nt
    Pa = math.prod(r * c for r, c in ml.grids("A"))
    Pb = math.prod(r * c for r, c in ml.grids("B"))
    Pc = math.prod(r * c for r, c in ml.grids("C"))
    return bm, bk, bn, Pa, Pb, Pc


def predict_workspace_bytes(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM,
    fusion: str = "fused",
    threads: int = 1,
    dtype=np.float64,
) -> int:
    """Peak workspace bytes the runtime's lowering mode checks out.

    This is the model twin of the runtime's arena specs
    (``repro.core.runtime._staged_workspace_spec`` /
    ``_grouped_workspace_spec``) for a 2-D multiply whose core covers the
    problem: both pipelines stage the gathered operand slabs (O(blocks of
    A/B)), but the staged one additionally materializes all ``R`` stacked
    ``S``/``T``/``M`` intermediates plus the scatter staging (O(R) live
    product buffers), while the fused pipeline holds one *group* of
    ``S``/``T``/``M`` strips per worker, plus per-worker ``Cacc``
    accumulators when several workers share ``C`` (O(threads · group)
    live buffers).  Model and runtime agreeing on these numbers is
    asserted in ``tests/core/test_fusion.py``.
    """
    from repro.core.spec import validate_resolved_fusion

    fusion = validate_resolved_fusion(fusion)
    if fusion == "tiled":
        # The tiled lowering's RAM working set is the strip window —
        # everything slab-scale is mmap-spilled and uncharged.
        return predict_tile_window_bytes(
            m, k, n, ml, threads=threads, dtype=dtype
        )
    bm, bk, bn, Pa, Pb, Pc = _core_blocks(m, k, n, ml)
    if min(bm, bk, bn) < 1:
        return 0  # partition coarser than the problem: no core, no slabs
    R = ml.rank_total
    per_product = bm * bk + bk * bn + bm * bn
    operand_slabs = Pa * bm * bk + Pb * bk * bn
    if fusion == "staged":
        elements = operand_slabs + R * per_product + Pc * bm * bn
    else:
        from repro.core.spec import effective_fused_group

        slots = max(1, min(int(threads), R))
        group = min(effective_fused_group(), R)
        elements = operand_slabs + slots * group * per_product
        W = ml.W
        if bool(((W != 0) & (W != 1) & (W != -1)).any()):
            # Mirror of the runtime's per-slot scatter scratch strip
            # (allocated only for plans with non-±1 C coefficients).
            elements += slots * bm * bn
        if slots > 1:
            elements += slots * Pc * bm * bn
    return int(elements) * np.dtype(dtype).itemsize


def predict_tile_window_bytes(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM,
    threads: int = 1,
    dtype=np.float64,
    tile_rows: int = 0,
    batch: int = 1,
) -> int:
    """RAM bytes of the tiled lowering's strip window.

    The byte-exact model twin of the runtime's tiled arena spec
    (``repro.core.runtime._tiled_workspace_spec``'s non-``"mmap"``
    entries, like :func:`predict_workspace_bytes` is of the in-core
    specs): the per-slot group of ``M`` strip buffers — ``slots x group
    x batch x tile_rows x bn`` elements — plus one scratch strip per
    slot for plans with non-±1 scatter coefficients.  ``tile_rows=0``
    (the default) resolves the strip height exactly as the runtime does
    — explicit tunable, else the effective memory budget, else the full
    block (:func:`repro.core.tiles.resolve_tile_rows`) — so the priced
    window and the allocated window agree by construction; the measured
    ``peak_workspace_bytes`` of a tiled execution equals this figure.
    This is the quantity ``selection.auto_config`` and the serve
    admission controller price tiled jobs off (the window, not the
    slab).
    """
    from repro.core.spec import effective_fused_group
    from repro.core.tiles import clamp_tile_rows, resolve_tile_rows

    bm, bk, bn, Pa, Pb, Pc = _core_blocks(m, k, n, ml)
    if min(bm, bk, bn) < 1:
        return 0  # partition coarser than the problem: no core, no window
    R = ml.rank_total
    slots = max(1, min(int(threads), R))
    group = min(effective_fused_group(), R)
    item = np.dtype(dtype).itemsize
    L = max(int(batch), 1)
    W = ml.W
    has_scratch = bool(((W != 0) & (W != 1) & (W != -1)).any())
    if not tile_rows:
        tile_rows = resolve_tile_rows(
            bm, bk, bn, slots, group, lead_elems=L, itemsize=item,
            has_scratch=has_scratch,
        )
    tile_rows = clamp_tile_rows(bm, tile_rows)
    elements = slots * group * L * tile_rows * bn
    if has_scratch:
        elements += slots * L * tile_rows * bn
    return int(elements) * item


def predict_fusion_savings(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM,
    machine: MachineParams,
) -> float:
    """Seconds of temporary-slab DRAM traffic the fused pipeline removes.

    The staged lowering writes and re-reads every ``S_r``/``T_r``/``M_r``
    slab plus the scatter staging; the fused pipeline keeps those in
    per-worker cache-resident buffers.  Priced exactly like the Fig.-5
    temp terms (``tau_b`` seconds per element, one write + one read per
    temporary element), so the §4.4 model and the streaming runtime agree
    on *why* fused wins: the removed traffic is this term.
    """
    Mt, Kt, Nt = ml.dims_total
    if min(m // Mt, k // Kt, n // Nt) < 1:
        return 0.0  # partition coarser than the problem: nothing staged
    sm, sk, sn = m / Mt, k / Kt, n / Nt
    _, _, _, _, _, Pc = _core_blocks(m, k, n, ml)
    R = ml.rank_total
    elements = R * (sm * sk + sk * sn + sm * sn) + Pc * sm * sn
    return 2.0 * elements * machine.tau_b


def calibrate_lambda(
    machine: MachineParams,
    measured_gemm_gflops: float,
    m: int = 14400,
    k: int = 12000,
    n: int = 14400,
    tol: float = 1e-3,
) -> MachineParams:
    """Fit the prefetch-efficiency lambda to a measured GEMM rate (§4.2).

    Bisects lambda in [0.05, 1] so the modeled GEMM matches the observed
    Effective GFLOPS at a large, compute-bound size.  Returns a copy of the
    machine config with the fitted lambda; if even lambda=0.05 cannot reach
    the target (measurement above model peak), the closest endpoint is used.
    """
    lo, hi = 0.05, 1.0

    def rate(lam: float) -> float:
        return predict_gemm(m, k, n, machine.with_lam(lam)).effective_gflops

    if measured_gemm_gflops >= rate(lo):
        return machine.with_lam(lo)
    if measured_gemm_gflops <= rate(hi):
        return machine.with_lam(hi)
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if rate(mid) > measured_gemm_gflops:
            lo = mid
        else:
            hi = mid
    return machine.with_lam(0.5 * (lo + hi))
