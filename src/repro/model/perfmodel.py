"""Execution-time prediction: ``T = T_a + T_m`` and Effective GFLOPS.

The headline metric of every figure in the paper is *Effective GFLOPS* =
``2 m n k / T * 1e-9`` — classical flops over wall time, so FMM algorithms
can exceed "peak" by doing less arithmetic.  The multicore extension
divides arithmetic across cores while memory time is bounded by the shared
socket bandwidth already encoded in the machine config, which is precisely
the contention the paper observes at 10 cores (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kronecker import MultiLevelFMM
from repro.model.machines import MachineParams
from repro.model.terms import TermTable, gemm_term_table, term_table

__all__ = [
    "ModelPrediction",
    "effective_gflops",
    "predict_fmm",
    "predict_gemm",
    "calibrate_lambda",
]


@dataclass(frozen=True)
class ModelPrediction:
    """Predicted time decomposition for one configuration."""

    m: int
    k: int
    n: int
    label: str
    time: float
    arithmetic_time: float
    memory_time: float
    table: TermTable

    @property
    def effective_gflops(self) -> float:
        return effective_gflops(self.m, self.k, self.n, self.time)


def effective_gflops(m: int, k: int, n: int, time: float) -> float:
    """``2 m n k / time * 1e-9`` (Fig. 5, eq. 1)."""
    if time <= 0:
        raise ValueError("time must be positive")
    return 2.0 * m * n * k / time * 1e-9


def predict_fmm(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM,
    variant: str,
    machine: MachineParams,
) -> ModelPrediction:
    """Model prediction for an L-level FMM implementation."""
    tab = term_table(m, k, n, ml, variant, machine)
    ta = tab.arithmetic_time / machine.cores
    tm = tab.memory_time
    return ModelPrediction(
        m=m, k=k, n=n,
        label=f"{ml.name}/{variant}",
        time=ta + tm,
        arithmetic_time=ta,
        memory_time=tm,
        table=tab,
    )


def predict_gemm(m: int, k: int, n: int, machine: MachineParams) -> ModelPrediction:
    """Model prediction for the BLIS dgemm baseline."""
    tab = gemm_term_table(m, k, n, machine)
    ta = tab.arithmetic_time / machine.cores
    tm = tab.memory_time
    return ModelPrediction(
        m=m, k=k, n=n,
        label="gemm",
        time=ta + tm,
        arithmetic_time=ta,
        memory_time=tm,
        table=tab,
    )


def calibrate_lambda(
    machine: MachineParams,
    measured_gemm_gflops: float,
    m: int = 14400,
    k: int = 12000,
    n: int = 14400,
    tol: float = 1e-3,
) -> MachineParams:
    """Fit the prefetch-efficiency lambda to a measured GEMM rate (§4.2).

    Bisects lambda in [0.05, 1] so the modeled GEMM matches the observed
    Effective GFLOPS at a large, compute-bound size.  Returns a copy of the
    machine config with the fitted lambda; if even lambda=0.05 cannot reach
    the target (measurement above model peak), the closest endpoint is used.
    """
    lo, hi = 0.05, 1.0

    def rate(lam: float) -> float:
        return predict_gemm(m, k, n, machine.with_lam(lam)).effective_gflops

    if measured_gemm_gflops >= rate(lo):
        return machine.with_lam(lo)
    if measured_gemm_gflops <= rate(hi):
        return machine.with_lam(hi)
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if rate(mid) > measured_gemm_gflops:
            lo = mid
        else:
            hi = mid
    return machine.with_lam(0.5 * (lo + hi))
