"""The Fig.-5 term table: per-operation times and occurrence coefficients.

The model decomposes execution time into arithmetic terms (``T_a^x`` for
submatrix multiplies, ``T_a^{A+/B+/C+}`` for submatrix additions) and
memory terms (packing reads, micro-kernel C traffic, temporary-buffer
round trips), each multiplied by a variant-dependent occurrence count
``N``.  This module computes both tables exactly as printed in Fig. 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.kronecker import MultiLevelFMM
from repro.model.machines import MachineParams

__all__ = ["TermTable", "term_table", "gemm_term_table"]


@dataclass(frozen=True)
class TermTable:
    """Unit times (seconds) and counts for one (shape, algorithm, variant)."""

    # unit times (tau column of Fig. 5, middle table)
    t_mul: float          # T_a^x
    t_a_add: float        # T_a^{A+}
    t_b_add: float        # T_a^{B+}
    t_c_add: float        # T_a^{C+}
    t_a_pack_read: float  # T_m^{Ax}
    t_b_pack_read: float  # T_m^{Bx}
    t_c_kernel: float     # T_m^{Cx}  (includes the 2*lambda factor)
    t_a_temp: float       # T_m^{A+}
    t_b_temp: float       # T_m^{B+}
    t_c_temp: float       # T_m^{C+}
    # occurrence counts (bottom table of Fig. 5)
    n_mul: float
    n_a_add: float
    n_b_add: float
    n_c_add: float
    n_a_pack_read: float
    n_b_pack_read: float
    n_c_kernel: float
    n_a_temp: float
    n_b_temp: float
    n_c_temp: float

    @property
    def arithmetic_time(self) -> float:
        return (
            self.n_mul * self.t_mul
            + self.n_a_add * self.t_a_add
            + self.n_b_add * self.t_b_add
            + self.n_c_add * self.t_c_add
        )

    @property
    def memory_time(self) -> float:
        return (
            self.n_a_pack_read * self.t_a_pack_read
            + self.n_b_pack_read * self.t_b_pack_read
            + self.n_c_kernel * self.t_c_kernel
            + self.n_a_temp * self.t_a_temp
            + self.n_b_temp * self.t_b_temp
            + self.n_c_temp * self.t_c_temp
        )

    def breakdown(self) -> dict[str, float]:
        """Per-category times in seconds (for plots and tests)."""
        return {
            "mul": self.n_mul * self.t_mul,
            "a_add": self.n_a_add * self.t_a_add,
            "b_add": self.n_b_add * self.t_b_add,
            "c_add": self.n_c_add * self.t_c_add,
            "a_pack_read": self.n_a_pack_read * self.t_a_pack_read,
            "b_pack_read": self.n_b_pack_read * self.t_b_pack_read,
            "c_kernel": self.n_c_kernel * self.t_c_kernel,
            "a_temp": self.n_a_temp * self.t_a_temp,
            "b_temp": self.n_b_temp * self.t_b_temp,
            "c_temp": self.n_c_temp * self.t_c_temp,
        }


def term_table(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM,
    variant: str,
    machine: MachineParams,
) -> TermTable:
    """Fig.-5 table for an L-level FMM on an ``m x k x n`` problem.

    Submatrix sizes ``m/M~_L`` etc. are taken at real-valued precision, as
    in the paper (the model deliberately ignores fringe effects; see §4.4).
    """
    Mt, Kt, Nt = ml.dims_total
    RL = ml.rank_total
    nnz_u, nnz_v, nnz_w = ml.nnz_uvw()
    sm, sk, sn = m / Mt, k / Kt, n / Nt
    ta, tb = machine.tau_a, machine.tau_b
    kc, nc = machine.blocking.kc, machine.blocking.nc
    lam = machine.lam

    times = dict(
        t_mul=2.0 * sm * sn * sk * ta,
        t_a_add=2.0 * sm * sk * ta,
        t_b_add=2.0 * sk * sn * ta,
        t_c_add=2.0 * sm * sn * ta,
        t_a_pack_read=sm * sk * math.ceil(sn / nc) * tb,
        t_b_pack_read=sn * sk * tb,
        t_c_kernel=2.0 * lam * sm * sn * math.ceil(sk / kc) * tb,
        t_a_temp=sm * sk * tb,
        t_b_temp=sk * sn * tb,
        t_c_temp=sm * sn * tb,
    )

    counts = dict(
        n_mul=float(RL),
        n_a_add=float(nnz_u - RL),
        n_b_add=float(nnz_v - RL),
        n_c_add=float(nnz_w),
        n_a_temp=0.0,
        n_b_temp=0.0,
        n_c_temp=0.0,
    )
    if variant == "abc":
        counts.update(
            n_a_pack_read=float(nnz_u),
            n_b_pack_read=float(nnz_v),
            n_c_kernel=float(nnz_w),
        )
    elif variant == "ab":
        counts.update(
            n_a_pack_read=float(nnz_u),
            n_b_pack_read=float(nnz_v),
            n_c_kernel=float(RL),
            n_c_temp=3.0 * nnz_w,
        )
    elif variant == "naive":
        counts.update(
            n_a_pack_read=float(RL),
            n_b_pack_read=float(RL),
            n_c_kernel=float(RL),
            n_a_temp=float(nnz_u + RL),
            n_b_temp=float(nnz_v + RL),
            n_c_temp=3.0 * nnz_w,
        )
    else:
        raise ValueError(f"unknown variant {variant!r}")
    return TermTable(**times, **counts)


def gemm_term_table(m: int, k: int, n: int, machine: MachineParams) -> TermTable:
    """Fig.-5 GEMM column: the BLIS dgemm baseline."""
    ta, tb = machine.tau_a, machine.tau_b
    kc, nc = machine.blocking.kc, machine.blocking.nc
    lam = machine.lam
    return TermTable(
        t_mul=2.0 * m * n * k * ta,
        t_a_add=0.0,
        t_b_add=0.0,
        t_c_add=0.0,
        t_a_pack_read=m * k * math.ceil(n / nc) * tb,
        t_b_pack_read=n * k * tb,
        t_c_kernel=2.0 * lam * m * n * math.ceil(k / kc) * tb,
        t_a_temp=0.0,
        t_b_temp=0.0,
        t_c_temp=0.0,
        n_mul=1.0,
        n_a_add=0.0,
        n_b_add=0.0,
        n_c_add=0.0,
        n_a_pack_read=1.0,
        n_b_pack_read=1.0,
        n_c_kernel=1.0,
        n_a_temp=0.0,
        n_b_temp=0.0,
        n_c_temp=0.0,
    )
