"""Packing routines with fused linear combinations (paper Fig. 1, right).

The key implementation idea of [2] that this paper's generator builds on:
the submatrix additions ``sum_i u_ir A_i`` / ``sum_j v_jr B_j`` of an FMM
product are folded into the packing of the ``A~`` block and ``B~`` panel,
so they cost no extra DRAM round-trip — each source submatrix is read once
and the weighted sum materializes directly in the cache-resident packed
buffer.

In the real BLIS kernel the packed buffers are laid out in ``m_R x k_C`` /
``k_C x n_R`` panels for stride-1 micro-kernel access; here they are plain
row-major arrays (the panel layout is a physical-memory detail with no
NumPy-level semantic effect) and the traffic is charged to the counters
exactly as the performance model prices it.
"""

from __future__ import annotations

import numpy as np

from repro.blis.counters import OpCounters

__all__ = ["Operand", "pack_weighted", "weighted_update"]

#: An operand term ``coeff * view``; all views in a list share one shape.
Operand = tuple[float, np.ndarray]


def pack_weighted(
    operands: list[Operand],
    rows: slice,
    cols: slice,
    counters: OpCounters | None = None,
    which: str = "A",
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pack ``sum_i coeff_i * view_i[rows, cols]`` into a contiguous buffer.

    ``which`` selects the counter category ('A' or 'B').  ``out`` may be a
    preallocated buffer of at least the packed shape (sliced to fit), which
    mirrors BLIS reusing one ``A~``/``B~`` allocation for the whole GEMM.
    """
    if not operands:
        raise ValueError("pack_weighted needs at least one operand")
    first = operands[0][1][rows, cols]
    shape = first.shape
    if out is not None:
        buf = out[: shape[0], : shape[1]]
    else:
        buf = np.empty(shape, dtype=first.dtype)

    c0 = operands[0][0]
    np.multiply(operands[0][1][rows, cols], c0, out=buf) if c0 != 1 else np.copyto(
        buf, operands[0][1][rows, cols]
    )
    for coeff, view in operands[1:]:
        src = view[rows, cols]
        if coeff == 1:
            buf += src
        elif coeff == -1:
            buf -= src
        else:
            buf += coeff * src

    if counters is not None:
        size = float(shape[0] * shape[1])
        nops = len(operands)
        if which == "A":
            counters.a_read += nops * size
            counters.a_pack_write += size
            counters.a_add_flops += 2.0 * (nops - 1) * size
        else:
            counters.b_read += nops * size
            counters.b_pack_write += size
            counters.b_add_flops += 2.0 * (nops - 1) * size
    return buf


def weighted_update(
    targets: list[Operand],
    block: np.ndarray,
    rows: slice,
    cols: slice,
    counters: OpCounters | None = None,
) -> None:
    """Scatter ``target += w * block`` into every destination submatrix.

    This is the fused multi-destination C update of the ABC variant: the
    freshly computed micro/macro-tile ``block`` is added (with the W
    coefficients) to each destination while still cache-hot.
    """
    for w, view in targets:
        dst = view[rows, cols]
        if w == 1:
            dst += block
        elif w == -1:
            dst -= block
        else:
            dst += w * block
    if counters is not None:
        size = float(block.shape[0] * block.shape[1])
        counters.c_traffic += 2.0 * size * len(targets)
        counters.c_add_flops += 2.0 * size * len(targets)
