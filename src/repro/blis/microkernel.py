"""Macro/micro-kernel of the simulated BLIS GEMM.

The real BLIS micro-kernel is a hand-written assembly loop computing an
``m_R x n_R`` tile of C in registers from packed panels.  Here the tile
product is a NumPy matmul, and two granularities are offered:

* ``"micro"`` — faithful tile loop: iterate the 1st/2nd loops around the
  micro-kernel over ``m_R x n_R`` tiles.  Structurally identical to Fig. 1
  but slow in Python; used by tests and small benchmarks.
* ``"slab"`` — the macro-kernel computes the whole ``m_C x n_C`` block in
  one matmul.  The counter accounting is identical (the same elements move
  the same number of times); only the Python-loop overhead differs.  This
  is the default execution mode.

For FMM the kernel's *output* is a list of weighted destinations: the ABC
variant's fused C update writes each computed tile to every destination
submatrix with its W coefficient, never materializing an ``M_r`` buffer.
"""

from __future__ import annotations

import numpy as np

from repro.blis.counters import OpCounters
from repro.blis.packing import Operand, weighted_update
from repro.blis.params import BlockingParams

__all__ = ["macro_kernel"]


def macro_kernel(
    At: np.ndarray,
    Bt: np.ndarray,
    targets: list[Operand],
    row_off: int,
    col_off: int,
    params: BlockingParams,
    counters: OpCounters | None = None,
    mode: str = "slab",
    scratch: np.ndarray | None = None,
) -> None:
    """Compute ``targets += W-weighted (At @ Bt)`` at the given C offset.

    ``At`` is the packed ``m_c' x k_c'`` block, ``Bt`` the packed
    ``k_c' x n_c'`` panel; each target view is updated in its
    ``[row_off : row_off + m_c', col_off : col_off + n_c']`` window.
    """
    mc_eff, kc_eff = At.shape
    nc_eff = Bt.shape[1]
    if counters is not None:
        counters.mul_flops += 2.0 * mc_eff * nc_eff * kc_eff

    if mode == "slab":
        if scratch is not None and scratch.shape[0] >= mc_eff and scratch.shape[1] >= nc_eff:
            tile = scratch[:mc_eff, :nc_eff]
            np.matmul(At, Bt, out=tile)
        else:
            tile = At @ Bt
        weighted_update(
            targets, tile,
            slice(row_off, row_off + mc_eff),
            slice(col_off, col_off + nc_eff),
            counters,
        )
        return

    if mode != "micro":
        raise ValueError(f"unknown macro-kernel mode {mode!r}")

    mr, nr = params.mr, params.nr
    for jr in range(0, nc_eff, nr):
        j1 = min(jr + nr, nc_eff)
        bpan = Bt[:, jr:j1]
        for ir in range(0, mc_eff, mr):
            i1 = min(ir + mr, mc_eff)
            tile = At[ir:i1] @ bpan
            weighted_update(
                targets, tile,
                slice(row_off + ir, row_off + i1),
                slice(col_off + jr, col_off + j1),
                counters,
            )
