"""Loop-walking cost simulator: paper-scale "actual" without the flops.

The blocked engine really moves data, so it cannot execute the paper's
m = n = 14400 problems in Python.  This simulator walks the *identical*
loop structure — five-loop GEMM per product, packing, variant temporaries,
dynamic-peeling fringes — charging the same counters the engine charges,
using closed-form sums over the 3rd/2nd/1st loops (the per-block traffic
depends only on block sizes, so the inner loops collapse exactly).

Because it uses integer loop bounds and real fringe splits, it reproduces
the integer-granularity effects the closed-form model misses (the paper's
"actual performance has some unexpected drops ... not captured by our
performance model", §4.4), making it the analog of the paper's measured
curves.
"""

from __future__ import annotations


from repro.blis.counters import OpCounters
from repro.blis.params import BlockingParams
from repro.core.kronecker import MultiLevelFMM
from repro.core.peeling import peel
from repro.model.machines import MachineParams

__all__ = ["simulate_gemm", "simulate_fmm", "counters_to_time", "simulate_time"]


def _blocks(dim: int, step: int) -> list[int]:
    """Effective sizes of the blocked-loop iterations over ``dim``."""
    if dim <= 0:
        return []
    full, rem = divmod(dim, step)
    return [step] * full + ([rem] if rem else [])


def _gemm_counters(
    m: int,
    k: int,
    n: int,
    n_a_ops: int,
    n_b_ops: int,
    n_c_ops: int,
    params: BlockingParams,
    counters: OpCounters,
) -> None:
    """Exactly what ``packed_gemm`` charges, without touching arrays."""
    if 0 in (m, k, n):
        return
    for nc_eff in _blocks(n, params.nc):  # 5th loop
        for kc_eff in _blocks(k, params.kc):  # 4th loop
            bsz = float(kc_eff * nc_eff)
            counters.b_read += n_b_ops * bsz
            counters.b_pack_write += bsz
            counters.b_add_flops += 2.0 * (n_b_ops - 1) * bsz
            # 3rd loop collapses: the sum of mc_eff over blocks is m.
            counters.a_read += n_a_ops * float(m * kc_eff)
            counters.a_pack_write += float(m * kc_eff)
            counters.a_add_flops += 2.0 * (n_a_ops - 1) * float(m * kc_eff)
            counters.mul_flops += 2.0 * m * nc_eff * kc_eff
            counters.c_traffic += 2.0 * float(m * nc_eff) * n_c_ops
            counters.c_add_flops += 2.0 * float(m * nc_eff) * n_c_ops


def simulate_gemm(
    m: int, k: int, n: int, params: BlockingParams
) -> OpCounters:
    """Counters for one plain packed GEMM."""
    c = OpCounters()
    _gemm_counters(m, k, n, 1, 1, 1, params, c)
    return c


def simulate_fmm(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM,
    variant: str = "abc",
    params: BlockingParams = BlockingParams(),
) -> OpCounters:
    """Counters for a full FMM multiply, peeling and fringes included."""
    counters = OpCounters()
    Mt, Kt, Nt = ml.dims_total
    plan = peel(m, k, n, Mt, Kt, Nt)

    if plan.has_core:
        mp, kp, np_ = plan.core
        sm, sk, sn = mp // Mt, kp // Kt, np_ // Nt
        sub_a = float(sm * sk)
        sub_b = float(sk * sn)
        sub_c = float(sm * sn)
        # Products with identical operand-list lengths cost the same;
        # group columns by (|a|, |b|, |c|) so paper-scale runs stay O(1)-ish.
        groups: dict[tuple[int, int, int], int] = {}
        for ai, _, bi, _, ci, _ in ml.columns:
            key = (len(ai), len(bi), len(ci))
            groups[key] = groups.get(key, 0) + 1
        for (na, nb, nc_), count in groups.items():
            one = OpCounters()
            if variant == "abc":
                _gemm_counters(sm, sk, sn, na, nb, nc_, params, one)
            elif variant == "ab":
                _gemm_counters(sm, sk, sn, na, nb, 1, params, one)
                one.temp_c_traffic += 3.0 * sub_c * nc_
                one.c_add_flops += 2.0 * sub_c * nc_
            elif variant == "naive":
                one.temp_a_traffic += (na + 1.0) * sub_a
                one.a_add_flops += 2.0 * max(na - 1, 0) * sub_a
                one.temp_b_traffic += (nb + 1.0) * sub_b
                one.b_add_flops += 2.0 * max(nb - 1, 0) * sub_b
                _gemm_counters(sm, sk, sn, 1, 1, 1, params, one)
                one.temp_c_traffic += 3.0 * sub_c * nc_
                one.c_add_flops += 2.0 * sub_c * nc_
            else:
                raise ValueError(f"unknown variant {variant!r}")
            for field in one.as_dict():
                setattr(
                    counters, field,
                    getattr(counters, field) + count * getattr(one, field),
                )
    for f in plan.fringes:
        fm, fk, fn = f.shape
        _gemm_counters(fm, fk, fn, 1, 1, 1, params, counters)
    return counters


def counters_to_time(counters: OpCounters, machine: MachineParams) -> float:
    """Price counters with a machine config: arithmetic / cores + DRAM time."""
    ta = counters.total_flops * machine.tau_a / machine.cores
    tm = counters.dram_elements(lam=machine.lam) * machine.tau_b
    return ta + tm


def simulate_time(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM | None,
    variant: str,
    machine: MachineParams,
) -> float:
    """Simulated wall time; ``ml=None`` simulates the GEMM baseline."""
    if ml is None:
        counters = simulate_gemm(m, k, n, machine.blocking)
    else:
        counters = simulate_fmm(m, k, n, ml, variant, machine.blocking)
    return counters_to_time(counters, machine)
