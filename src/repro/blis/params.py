"""Blocking parameters of the GotoBLAS/BLIS algorithm (paper §2.1, Fig. 1).

``{m_C, k_C, n_C}`` size the cache blocks (A-block in L2, B-panel in L3,
C traversal by n_C columns); ``{m_R, n_R}`` size the register micro-tile.
The paper's testbed uses ``m_R=8, n_R=4, k_C=256, m_C=96, n_C=4096`` — the
BLIS dgemm configuration for Intel Ivy Bridge.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BlockingParams", "IVY_BRIDGE_BLOCKING"]


@dataclass(frozen=True)
class BlockingParams:
    """Cache/register blocking for the 5-loop GEMM."""

    mc: int = 96
    kc: int = 256
    nc: int = 4096
    mr: int = 8
    nr: int = 4

    def __post_init__(self) -> None:
        for name in ("mc", "kc", "nc", "mr", "nr"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if self.mc % self.mr:
            raise ValueError(f"mc={self.mc} must be a multiple of mr={self.mr}")
        if self.nc % self.nr:
            raise ValueError(f"nc={self.nc} must be a multiple of nr={self.nr}")

    @property
    def a_buffer_bytes(self) -> int:
        """Size of the packed A~ block (doubles) — should fit L2."""
        return self.mc * self.kc * 8

    @property
    def b_buffer_bytes(self) -> int:
        """Size of the packed B~ panel (doubles) — should fit L3."""
        return self.kc * self.nc * 8

    def scaled(self, **kwargs) -> "BlockingParams":
        """Copy with some fields replaced (for tests and ablations)."""
        cur = {f: getattr(self, f) for f in ("mc", "kc", "nc", "mr", "nr")}
        cur.update(kwargs)
        return BlockingParams(**cur)


#: Paper testbed blocking: A~ is 192 KB (L2 256 KB), B~ is 8 MB (L3 25.6 MB).
IVY_BRIDGE_BLOCKING = BlockingParams(mc=96, kc=256, nc=4096, mr=8, nr=4)
