"""Instrumentation counters for the simulated BLIS engine.

The performance model (paper Fig. 5) prices a specific set of arithmetic
and DRAM-traffic quantities.  The blocked engine and the loop-walking
simulator increment exactly those categories, in units of double-precision
*elements*, so model predictions can be validated against instrumented
executions term by term.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["OpCounters"]


@dataclass
class OpCounters:
    """Arithmetic (flops) and memory traffic (elements) by model category."""

    # arithmetic
    mul_flops: float = 0.0      # 2mnk-style multiply-accumulate flops (T_a^x)
    a_add_flops: float = 0.0    # submatrix additions on A operands (T_a^{A+})
    b_add_flops: float = 0.0    # submatrix additions on B operands (T_a^{B+})
    c_add_flops: float = 0.0    # C / temp-M accumulation flops (T_a^{C+})
    # DRAM traffic, elements
    a_read: float = 0.0         # reading A submatrices while packing (T_m^{Ax})
    a_pack_write: float = 0.0   # writing A~ (hidden by caches; tracked anyway)
    b_read: float = 0.0         # reading B submatrices while packing (T_m^{Bx})
    b_pack_write: float = 0.0   # writing B~
    c_traffic: float = 0.0      # reading+writing C in the micro-kernel (T_m^{Cx})
    temp_a_traffic: float = 0.0  # Naive-FMM A-sum temporaries (T_m^{A+})
    temp_b_traffic: float = 0.0  # Naive-FMM B-sum temporaries (T_m^{B+})
    temp_c_traffic: float = 0.0  # AB/Naive M_r buffer traffic (T_m^{C+})

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0.0)

    def __iadd__(self, other: "OpCounters") -> "OpCounters":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "OpCounters":
        out = OpCounters()
        out += self
        return out

    # ------------------------------------------------------------------ #
    @property
    def total_flops(self) -> float:
        return self.mul_flops + self.a_add_flops + self.b_add_flops + self.c_add_flops

    def dram_elements(self, lam: float = 1.0, count_pack_writes: bool = False) -> float:
        """Total priced DRAM traffic in elements.

        Following the model's assumptions, packed-buffer writes are hidden by
        the caches (lazy write-back) unless ``count_pack_writes`` is set, and
        micro-kernel C traffic is scaled by the prefetch-efficiency factor
        ``lam`` (paper: lambda in [0.5, 1]).
        """
        total = (
            self.a_read
            + self.b_read
            + lam * self.c_traffic
            + self.temp_a_traffic
            + self.temp_b_traffic
            + self.temp_c_traffic
        )
        if count_pack_writes:
            total += self.a_pack_write + self.b_pack_write
        return total

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.3g}" for k, v in self.as_dict().items() if v)
        return f"OpCounters({parts})"
