"""The five-loop GotoBLAS/BLIS GEMM over weighted operand lists.

``packed_gemm`` computes

    sum_p w_p C_p  +=  (sum_i u_i A_i) @ (sum_j v_j B_j)

with the loop structure of Fig. 1: the 5th loop partitions n by ``n_C``,
the 4th partitions k by ``k_C`` (packing the B~ panel), the 3rd partitions
m by ``m_C`` (packing the A~ block), and the macro-kernel runs the two
register loops.  Passing operand lists of length 1 with unit weights gives
plain high-performance GEMM; longer lists give the fused-packing /
fused-update primitives that make the FMM variants workspace-free.

The 3rd loop can be parallelized over a thread pool, mirroring the paper's
OpenMP data parallelism [20]: each worker packs its own A~ block and owns a
disjoint row band of C, so no synchronization is needed beyond the barrier
at the end of each 4th-loop iteration.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.blis.counters import OpCounters
from repro.blis.microkernel import macro_kernel
from repro.blis.packing import Operand, pack_weighted
from repro.blis.params import BlockingParams

__all__ = ["packed_gemm", "loop_bounds"]


def loop_bounds(dim: int, step: int):
    """Block starts and effective sizes for one blocked loop."""
    for start in range(0, dim, step):
        yield start, min(step, dim - start)


def _operand_shapes(a_ops, b_ops, c_ops):
    m, k = a_ops[0][1].shape
    k2, n = b_ops[0][1].shape
    if k != k2:
        raise ValueError(f"inner dims disagree: A has k={k}, B has k={k2}")
    for _, v in a_ops:
        if v.shape != (m, k):
            raise ValueError("all A operands must share one shape")
    for _, v in b_ops:
        if v.shape != (k, n):
            raise ValueError("all B operands must share one shape")
    for _, v in c_ops:
        if v.shape != (m, n):
            raise ValueError("all C destinations must share one shape")
    return m, k, n


def packed_gemm(
    a_ops: list[Operand],
    b_ops: list[Operand],
    c_ops: list[Operand],
    params: BlockingParams = BlockingParams(),
    counters: OpCounters | None = None,
    mode: str = "slab",
    pool: ThreadPoolExecutor | None = None,
) -> None:
    """Blocked, packed computation of the weighted-operand GEMM.

    Parameters
    ----------
    a_ops, b_ops:
        Weighted source submatrices; their sums are formed *inside* packing.
    c_ops:
        Weighted destinations updated by the macro-kernel while the computed
        block is cache-hot (one destination = standard GEMM / AB-variant
        ``M_r`` buffer; several = the ABC variant's fused update).
    pool:
        Optional thread pool parallelizing the 3rd loop (row bands of C).
    """
    m, k, n = _operand_shapes(a_ops, b_ops, c_ops)
    if 0 in (m, k, n):
        return
    # Reusable B~ panel in the operands' dtype (float32 stays float32).
    work_dtype = np.result_type(a_ops[0][1], b_ops[0][1])
    b_buf = np.empty((min(params.kc, k), min(params.nc, n)), dtype=work_dtype)

    for jc, nc_eff in loop_bounds(n, params.nc):  # 5th loop
        jsl = slice(jc, jc + nc_eff)
        for pc, kc_eff in loop_bounds(k, params.kc):  # 4th loop
            psl = slice(pc, pc + kc_eff)
            Bt = pack_weighted(b_ops, psl, jsl, counters, which="B", out=b_buf)

            ic_blocks = list(loop_bounds(m, params.mc))  # 3rd loop
            if counters is not None:
                # Charge A-packing traffic deterministically up front so
                # parallel workers need not touch the shared counters.
                for _, mc_eff in ic_blocks:
                    size = float(mc_eff * kc_eff)
                    counters.a_read += len(a_ops) * size
                    counters.a_pack_write += size
                    counters.a_add_flops += 2.0 * (len(a_ops) - 1) * size

            def run_band(ic: int, mc_eff: int) -> None:
                isl = slice(ic, ic + mc_eff)
                At = pack_weighted(a_ops, isl, psl, None, which="A")
                macro_kernel(
                    At, Bt, c_ops, ic, jc, params,
                    counters=None, mode=mode,
                )

            if counters is not None:
                for _, mc_eff in ic_blocks:
                    counters.mul_flops += 2.0 * mc_eff * nc_eff * kc_eff
                    counters.c_traffic += 2.0 * mc_eff * nc_eff * len(c_ops)
                    counters.c_add_flops += 2.0 * mc_eff * nc_eff * len(c_ops)

            if pool is None:
                for ic, mc_eff in ic_blocks:
                    run_band(ic, mc_eff)
            else:
                futures = [pool.submit(run_band, ic, mc_eff) for ic, mc_eff in ic_blocks]
                for fut in futures:
                    fut.result()
