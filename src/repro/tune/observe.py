"""Seed wisdom from observed serving traffic.

Dedicated tune runs (:mod:`repro.tune.tuner`) measure candidates on
synthetic operands; a serving process, meanwhile, is *already* timing
the real thing — every ``execute_plan`` call publishes an
:class:`~repro.core.runtime.ExecutionReport` into the bounded history of
:mod:`repro.obs.reports`.  This module turns that history into wisdom:
:func:`observed_measurements` re-exports the history's per-configuration
latency summaries, and :func:`seed_wisdom_from_observations` records the
best-observed configuration per problem bucket into a
:class:`~repro.tune.wisdom.WisdomStore` — the first concrete step toward
the ROADMAP's online explore/exploit tuning.

Honesty limits, by construction:

* Only reports whose schedule signature re-parses through the spec
  grammar are seeded (an ad-hoc non-catalog algorithm has no stable
  name to store); batched executions are excluded upstream because
  their duration is not a per-multiply measurement.
* Observations are *passive*: they record what traffic happened to run,
  not a comparison across candidates.  Seeding therefore never
  overwrites a bucket the store already has a verdict for unless
  ``overwrite=True`` — a tuned verdict beats a traffic sample.
* Observed durations come from the direct execution path the runtime
  serves; the blocked simulator engine never publishes competitive
  latencies, so no engine field needs disambiguating — seeds record
  ``engine="direct"`` exactly like the tuner.
"""

from __future__ import annotations

import numpy as np

from repro.model.perfmodel import effective_gflops
from repro.obs import reports as obs_reports
from repro.obs.logcfg import get_logger
from repro.tune.wisdom import WisdomStore, default_store, problem_bucket

_log = get_logger(__name__)

__all__ = ["observed_measurements", "seed_wisdom_from_observations"]


def observed_measurements(min_count: int = 1) -> list[dict]:
    """Per-configuration latency summaries from the live report history.

    Groups the retained ExecutionReports by ``(shape, dtype, schedule,
    variant, threads, backend, worker_mode)`` and summarizes each
    group's durations (``count``, ``best_s``, ``p50_s``, ``mean_s``).
    ``min_count`` drops groups with fewer samples — a single noisy call
    should not become wisdom.
    """
    return obs_reports.observed_measurements(min_count)


def _config_from_observation(obs: dict) -> dict | None:
    """A tuner-style wisdom config doc for one observation group.

    Returns ``None`` when the schedule signature does not re-parse (an
    ad-hoc algorithm object was planned directly) — such traffic cannot
    be replayed from a stored name, so it is skipped rather than
    misattributed.
    """
    from repro.core.spec import resolve_levels

    try:
        ml = resolve_levels(obs["schedule"], 1)
    except Exception:
        return None
    return {
        "algorithm": [list(level.dims) for level in ml.levels],
        "levels": len(ml.levels),
        "variant": obs["variant"],
        "engine": "direct",
        "threads": int(obs["threads"]),
        "backend": obs["backend"],
        "workers": obs["worker_mode"] if obs["worker_mode"] == "processes"
        else "threads",
    }


def seed_wisdom_from_observations(
    store: WisdomStore | None = None,
    *,
    min_count: int = 3,
    overwrite: bool = False,
    save: bool = True,
) -> list[str]:
    """Record the best-observed configuration per problem bucket.

    For every problem bucket with at least ``min_count`` observed
    executions, the configuration with the lowest best-observed latency
    is written to ``store`` (the default wisdom store when ``None``).
    Existing buckets are preserved unless ``overwrite=True`` — a
    deliberate tune verdict outranks passive observation.  Returns the
    buckets written.
    """
    store = default_store() if store is None else store
    # Best observation per bucket: traffic may have hit the same bucket
    # with several configurations; the fastest observed one wins.
    best: dict[str, tuple[float, dict]] = {}
    for obs in observed_measurements(min_count):
        cfg = _config_from_observation(obs)
        if cfg is None:
            continue
        m, k, n = obs["shape"]
        bucket = problem_bucket(m, k, n, obs["dtype"], None)
        prev = best.get(bucket)
        if prev is None or obs["best_s"] < prev[0]:
            best[bucket] = (obs["best_s"], {**obs, "config": cfg})
    written = []
    existing = store.entries()
    for bucket, (best_s, obs) in sorted(best.items()):
        if not overwrite and bucket in existing:
            continue
        m, k, n = obs["shape"]
        store.record(
            m, k, n,
            config=obs["config"],
            gflops=effective_gflops(m, k, n, best_s),
            time_s=best_s,
            samples=obs["count"],
            dtype=np.dtype(obs["dtype"]),
            threads=None,
            save=save,
        )
        written.append(bucket)
    if written:
        _log.info(
            "seeded %d wisdom bucket(s) from %d observed configuration "
            "group(s)", len(written), len(best),
        )
    return written
