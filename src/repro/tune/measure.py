"""Robust wall-clock measurement of compiled plans through the real runtime.

The paper measures its top-2 model picks because fringe effects are
invisible to the model (§4.4); this module is the measuring instrument.
One measurement runs a real :class:`~repro.core.compile.CompiledPlan`
through the PR-2 task-graph runtime (or the blocked substrate) exactly the
way ``multiply`` would, with the standard noise-suppression tricks:

* **warmup** calls first, so plan compilation, arena growth and pool
  spin-up stay out of the timings;
* **GC pinning** — the collector is disabled around the timed region
  (and restored after), so a mid-measurement collection cannot poison a
  sample;
* **median-of-min** — samples are grouped into ``repeats`` groups of
  ``inner`` calls; the minimum of each group discards per-group noise,
  the median across groups discards unlucky groups;
* an optional **time budget** that stops sampling early (budgeted tuning
  sweeps stay budgeted) while always keeping at least one sample.
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import compile as plancache
from repro.core.compile import CompiledPlan
from repro.model.perfmodel import effective_gflops

__all__ = [
    "MeasureConfig",
    "Measurement",
    "measure_plan",
    "measure_candidate",
]


@dataclass(frozen=True)
class MeasureConfig:
    """Knobs of the timing harness (defaults suit sub-ms..ms kernels)."""

    warmup: int = 1          #: untimed calls before sampling
    repeats: int = 3         #: groups (median taken across groups)
    inner: int = 3           #: calls per group (min taken within a group)
    budget_s: float | None = None  #: soft wall-clock cap on the whole run
    pin_gc: bool = True      #: disable the GC around the timed region

    def __post_init__(self) -> None:
        if self.warmup < 0 or self.repeats < 1 or self.inner < 1:
            raise ValueError("warmup must be >= 0; repeats/inner >= 1")
        if self.budget_s is not None and self.budget_s <= 0:
            raise ValueError("budget_s must be positive when given")


@dataclass(frozen=True)
class Measurement:
    """One configuration's measured verdict."""

    shape: tuple[int, int, int]
    label: str
    engine: str
    threads: int
    dtype: str
    time_s: float            #: median of per-group minima — the verdict
    best_s: float            #: global minimum sample
    samples: int             #: timed calls actually taken
    backend: str = "reference"   #: leaf backend the samples executed on
    workers: str = "threads"     #: worker mode the samples executed under
    group_minima: tuple[float, ...] = field(repr=False, default=())

    @property
    def gflops(self) -> float:
        """Effective GFLOPS (classical-flops convention, Fig. 5)."""
        m, k, n = self.shape
        return effective_gflops(m, k, n, self.time_s)


def _runner(cplan: CompiledPlan, engine: str, threads: int, params, mode,
            backend: str = "reference", workers: str | None = None):
    """Build the ``fn(A, B, C)`` the harness times, matching ``multiply``."""
    from repro.core.executor import BlockedEngine, DirectEngine

    if engine == "direct":
        eng = DirectEngine(threads=threads, backend=backend, workers=workers)
    elif engine == "blocked":
        if backend != "reference":
            raise ValueError(
                f"backend={backend!r} is only measurable on the direct engine"
            )
        if workers == "processes":
            raise ValueError(
                "workers='processes' is only measurable on the direct engine"
            )
        eng = BlockedEngine(params=params, variant=cplan.variant,
                            threads=threads, mode=mode)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return lambda A, B, C: eng.execute(cplan, A, B, C)


def measure_plan(
    cplan: CompiledPlan,
    *,
    engine: str = "direct",
    threads: int = 1,
    config: MeasureConfig | None = None,
    params=None,
    mode: str = "slab",
    seed: int = 0,
    backend: str | None = None,
    workers: str | None = None,
) -> Measurement:
    """Time one compiled plan on this machine.

    Operands are seeded-random and allocated once outside the timed
    region; the destination accumulates across calls (``C += A @ B`` is
    the engines' contract), which is harmless for timing and avoids
    paying a re-zero inside the samples.  ``backend`` selects the leaf
    backend (direct engine only); compiling backends pay their one-time
    kernel compile inside the warmup calls, so the timed samples see the
    cached-kernel steady state ``multiply`` reaches.  ``workers``
    selects the runtime's worker mode — ``"processes"`` measures the
    shared-memory process runtime, with pool spin-up and segment
    allocation likewise absorbed by the warmup calls.
    """
    from repro.core.spec import normalize_backend, normalize_threads, normalize_workers

    cfg = config or MeasureConfig()
    threads = normalize_threads(threads) or 1  # fail before any warmup
    backend = normalize_backend(backend)
    workers = normalize_workers(workers)
    m, k, n = cplan.shape
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, k)).astype(cplan.dtype, copy=False)
    B = rng.standard_normal((k, n)).astype(cplan.dtype, copy=False)
    C = np.zeros((m, n), dtype=cplan.dtype)
    fn = _runner(cplan, engine, threads, params, mode, backend, workers)

    deadline = None if cfg.budget_s is None else time.perf_counter() + cfg.budget_s
    for _ in range(cfg.warmup):
        fn(A, B, C)
        if deadline is not None and time.perf_counter() >= deadline:
            break

    group_minima: list[float] = []
    samples = 0
    gc_was_enabled = gc.isenabled()
    if cfg.pin_gc and gc_was_enabled:
        gc.collect()
        gc.disable()
    try:
        for _ in range(cfg.repeats):
            best = float("inf")
            for _ in range(cfg.inner):
                t0 = time.perf_counter()
                fn(A, B, C)
                best = min(best, time.perf_counter() - t0)
                samples += 1
                if deadline is not None and time.perf_counter() >= deadline:
                    break
            group_minima.append(best)
            if deadline is not None and time.perf_counter() >= deadline:
                break
    finally:
        if cfg.pin_gc and gc_was_enabled:
            gc.enable()

    label = f"{cplan.ml.name}/{cplan.variant}"
    return Measurement(
        shape=(m, k, n),
        label=label,
        engine=engine,
        threads=int(threads),
        dtype=cplan.dtype.name,
        time_s=statistics.median(group_minima),
        best_s=min(group_minima),
        samples=samples,
        backend=backend,
        workers=workers or "threads",
        group_minima=tuple(group_minima),
    )


def measure_candidate(
    m: int,
    k: int,
    n: int,
    algorithm,
    *,
    levels: int = 1,
    variant: str = "abc",
    dtype=np.float64,
    engine: str = "direct",
    threads: int = 1,
    config: MeasureConfig | None = None,
    seed: int = 0,
    fusion: str = "auto",
    backend: str | None = None,
    workers: str | None = None,
) -> Measurement:
    """Compile (or fetch from the plan cache) and time one configuration.

    ``algorithm`` accepts every spec form :func:`repro.core.spec.normalize_spec`
    does — ``"classical"`` measures the plain-matmul baseline plan.
    ``fusion`` pins the runtime lowering mode; the default ``"auto"``
    resolves from the variant exactly like dispatch will, so tuned
    verdicts measure what ``multiply`` will actually run (the §4.1
    variants are the staged/fused lowering families — tuning across
    variants is how the wisdom store picks fused vs staged).  ``backend``
    measures one leaf backend the same way the tuner treats any other
    candidate dimension.
    """
    cplan = plancache.compile((int(m), int(k), int(n)), algorithm, levels,
                              variant, dtype=dtype, fusion=fusion)
    return measure_plan(cplan, engine=engine, threads=threads, config=config,
                        seed=seed, backend=backend, workers=workers)
