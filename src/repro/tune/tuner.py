"""Budgeted empirical tuning: measure the model's favorites, write wisdom.

:func:`tune_problem` is the paper's §4.4 poly-algorithm made persistent:
the performance model ranks the generated family, the top-K candidates
*plus the classical baseline* are measured through the real runtime
(:mod:`repro.tune.measure`), and the measured winner is recorded in the
wisdom store (:mod:`repro.tune.wisdom`) so every later
``multiply(engine="auto")`` in any process dispatches on evidence instead
of a cold model.  :func:`tune_sweep` amortizes one budget across many
problems; :func:`calibrate_machine` closes the loop in the other
direction, back-fitting the machine model's effective peak and bandwidth
from measurements so even wisdom *misses* rank candidates with calibrated
constants.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.core.selection import enumerate_candidates, rank_candidates
from repro.core.spec import normalize_threads
from repro.model.machines import MachineParams, generic_laptop
from repro.model.perfmodel import calibrate_lambda, effective_gflops
from repro.obs.logcfg import get_logger
from repro.tune.measure import MeasureConfig, Measurement, measure_candidate
from repro.tune.wisdom import WisdomStore, default_store, fingerprint_digest

_log = get_logger(__name__)

__all__ = [
    "TuneReport",
    "tune_problem",
    "tune_sweep",
    "tune_fused_group",
    "calibrate_machine",
    "fit_machine_params",
]


@dataclass(frozen=True)
class TuneReport:
    """Outcome of tuning one problem."""

    problem: tuple[int, int, int]
    dtype: str
    config: tuple          #: winner as an ``auto_config`` result tuple
    winner: Measurement
    measurements: tuple[Measurement, ...]
    model_rank1: str       #: the cold model's favorite label, for the record
    bucket: str | None     #: wisdom bucket written (None when not recorded)
    elapsed_s: float

    @property
    def beat_model(self) -> bool:
        """Did measurement overturn the model's rank-1 pick?"""
        return self.winner.label != self.model_rank1


def _candidate_threads(threads, m, k, n, ml, variant) -> int:
    from repro.core.parallel import pick_threads

    if threads is not None:
        return int(threads)
    return pick_threads(m, k, n, ml, variant)


def tune_problem(
    m: int,
    k: int,
    n: int,
    *,
    dtype=np.float64,
    threads: int | None = None,
    top: int = 3,
    max_levels: int = 2,
    machine: MachineParams | None = None,
    store: WisdomStore | None = None,
    budget_s: float = 2.0,
    measure_config: MeasureConfig | None = None,
    record: bool = True,
) -> TuneReport:
    """Measure the model's top-``top`` candidates + GEMM baseline; record wisdom.

    Parameters
    ----------
    m, k, n : int
        Problem size to tune for.
    dtype : dtype-like, optional
        Execution dtype of the measured multiplies.  Default float64.
    threads : int or None, optional
        Tune for an explicit worker count; ``None`` (default) lets the
        machine model pick per candidate and buckets the verdict under
        the ``auto`` thread class.
    top : int, optional
        Model finalists to measure (the classical GEMM baseline is always
        measured in addition, and the rank-1 finalist is re-measured
        through every available non-reference leaf backend when its
        thread pick is serial — the backend dimension of the tuned
        config; the measured winner is re-measured through the
        shared-memory process runtime when its thread pick is parallel —
        the workers dimension).  Default 3.
    max_levels : int, optional
        Deepest schedule the model enumerates (mixed per-level stacks
        included).  Default 2.
    machine : MachineParams, optional
        Model constants for the ranking pass; defaults to the store's
        calibrated machine, else :func:`~repro.model.machines.generic_laptop`.
    store : WisdomStore, optional
        Where the verdict is recorded; defaults to
        :func:`~repro.tune.wisdom.default_store`.
    budget_s : float, optional
        Wall-clock budget, split across the finalists — each measurement
        gets the remaining budget divided by the remaining finalists, so
        an expensive early candidate squeezes (never starves: every
        finalist gets at least one timed sample) the later ones.
    measure_config : MeasureConfig, optional
        Warmup/repeat/GC-pinning policy for each measurement.
    record : bool, optional
        Set False to measure without writing wisdom.

    Returns
    -------
    TuneReport
        The winner (as an ``auto_config`` tuple and a
        :class:`~repro.tune.measure.Measurement`), every finalist's
        measurement, the cold model's rank-1 label, and the wisdom
        bucket written (``None`` when ``record=False``).

    See Also
    --------
    tune_sweep : amortize one budget across several problems.
    calibrate_machine : back-fit the machine model this ranking prices with.
    """
    t_start = time.perf_counter()
    threads = normalize_threads(threads)  # bad counts fail before measuring
    store = store if store is not None else default_store()
    machine = machine or store.machine_params() or generic_laptop()
    dt = np.dtype(dtype)

    ranked = rank_candidates(
        enumerate_candidates(m, k, n, machine, max_levels=max_levels)
    )
    # (algorithm_spec, levels, variant, ml_or_None, label, backend)
    finalists: list[tuple] = []
    for c in ranked[: max(1, top)]:
        finalists.append((c.shapes, len(c.shapes), c.variant, c.multilevel(),
                          c.label, "reference"))
    finalists.append(("classical", 1, "abc", None, "classical/abc",
                      "reference"))
    model_rank1 = ranked[0].label if ranked else "classical/abc"

    # The backend dimension: re-enter the model's favorite through each
    # non-reference backend that is available *and* serves the candidate's
    # thread pick (compiling backends are serial-2-D specialists — a
    # threaded duplicate would just re-measure the interpreter).
    from repro import kernels

    if ranked:
        spec0, lv0, var0, ml0, lab0, _ = finalists[0]
        t0 = _candidate_threads(threads, m, k, n, ml0, var0)
        if t0 == 1:
            for b in kernels.available_backends():
                if b.name != "reference":
                    finalists.append((spec0, lv0, var0, ml0, lab0, b.name))

    base_cfg = measure_config or MeasureConfig()
    deadline = t_start + budget_s
    measured: list[tuple[Measurement, tuple]] = []
    for i, (spec, levels, variant, ml, _label, backend) in enumerate(finalists):
        remaining = max(deadline - time.perf_counter(), 1e-3)
        slice_s = remaining / (len(finalists) - i)
        t = _candidate_threads(threads, m, k, n, ml, variant)
        meas = measure_candidate(
            m, k, n, spec, levels=levels, variant=variant, dtype=dt,
            engine="direct", threads=t, backend=backend,
            config=MeasureConfig(
                warmup=base_cfg.warmup, repeats=base_cfg.repeats,
                inner=base_cfg.inner, budget_s=slice_s, pin_gc=base_cfg.pin_gc,
            ),
        )
        algo_doc = ("classical" if spec == "classical"
                    else [list(s) for s in spec])
        cfg_doc = {
            "algorithm": algo_doc,
            "levels": int(levels),
            "variant": variant,
            "engine": "direct",
            "threads": int(t),
            "backend": backend,
            "workers": "threads",
        }
        measured.append((meas, cfg_doc))

    best_i = min(range(len(measured)), key=lambda i: measured[i][0].time_s)
    winner, winner_cfg = measured[best_i]

    # The workers dimension: re-measure the winner through the
    # shared-memory process runtime when its thread pick is parallel
    # (serial execution is either mode at one worker, so there is
    # nothing to compare) — the measured mode is what wisdom replays.
    if int(winner_cfg["threads"]) > 1 and winner_cfg["backend"] == "reference":
        spec_w, lv_w, var_w, _ml_w, _lab_w, _b_w = finalists[best_i]
        remaining = max(deadline - time.perf_counter(), 1e-3)
        meas_p = measure_candidate(
            m, k, n, spec_w, levels=lv_w, variant=var_w, dtype=dt,
            engine="direct", threads=int(winner_cfg["threads"]),
            backend="reference", workers="processes",
            config=MeasureConfig(
                warmup=base_cfg.warmup, repeats=base_cfg.repeats,
                inner=base_cfg.inner, budget_s=remaining,
                pin_gc=base_cfg.pin_gc,
            ),
        )
        measured.append((meas_p, {**winner_cfg, "workers": "processes"}))
        if meas_p.time_s < winner.time_s:
            winner, winner_cfg = measured[-1]

    _log.info(
        "tuned %dx%dx%d (%s): winner %s at %.2f GFLOP/s",
        m, k, n, dt.name, winner.label, winner.gflops,
    )
    bucket = None
    if record:
        bucket = store.record(
            m, k, n,
            config=winner_cfg,
            gflops=winner.gflops,
            time_s=winner.time_s,
            samples=winner.samples,
            dtype=dt,
            threads=threads,
        )

    from repro.tune.wisdom import config_tuple

    return TuneReport(
        problem=(int(m), int(k), int(n)),
        dtype=dt.name,
        config=config_tuple(winner_cfg),
        winner=winner,
        measurements=tuple(ms for ms, _ in measured),
        model_rank1=model_rank1,
        bucket=bucket,
        elapsed_s=time.perf_counter() - t_start,
    )


def tune_sweep(
    problems,
    *,
    budget_s: float = 10.0,
    **kwargs,
) -> list[TuneReport]:
    """Tune several problems under one overall budget.

    The budget is split evenly up front, with unspent time from fast
    problems rolled into the remaining ones.
    """
    problems = [tuple(int(x) for x in p) for p in problems]
    if not problems:
        return []
    deadline = time.perf_counter() + budget_s
    reports = []
    for i, (m, k, n) in enumerate(problems):
        remaining = max(deadline - time.perf_counter(), 1e-3)
        reports.append(
            tune_problem(m, k, n, budget_s=remaining / (len(problems) - i),
                         **kwargs)
        )
    return reports


def tune_fused_group(
    m: int = 240,
    k: int = 240,
    n: int = 240,
    *,
    algorithm="strassen",
    levels: int = 2,
    dtype=np.float64,
    candidates: tuple[int, ...] = (4, 8, 16, 32),
    store: WisdomStore | None = None,
    measure_config: MeasureConfig | None = None,
    record: bool = True,
) -> int:
    """Measure the fused-pipeline group size on this host and record it.

    The fused runtime streams products through per-worker buffer groups
    of ``DEFAULT_FUSED_GROUP`` strips; the sweet spot is a cache
    property, so it is a per-machine tunable, not a constant.  This
    times one representative fused multiply per candidate group size
    (via :func:`repro.core.spec.set_runtime_tunables`) and persists the
    winner in the wisdom store's per-fingerprint tunables section —
    every later process that loads the store runs with the measured
    group (see :meth:`~repro.tune.wisdom.WisdomStore.apply_tunables`).
    Returns the winning group size; the process is left running with it
    (``record=True``) or restored to its prior tunables.
    """
    from repro.core.spec import runtime_tunables, set_runtime_tunables

    store = store if store is not None else default_store()
    if not candidates:
        raise ValueError("need at least one candidate group size")
    prior = runtime_tunables()
    results: list[tuple[float, int]] = []
    try:
        for g in candidates:
            set_runtime_tunables(fused_group=int(g))
            meas = measure_candidate(
                m, k, n, algorithm, levels=levels, variant="abc",
                dtype=dtype, engine="direct", threads=1, fusion="fused",
                config=measure_config,
            )
            results.append((meas.time_s, int(g)))
    finally:
        set_runtime_tunables(
            fused_group=prior["fused_group"],
            fused_auto_threshold=prior["fused_auto_threshold"],
        )
    best = min(results)[1]
    if record:
        store.record_tunables(fused_group=best)
        store.apply_tunables()
    return best


# ---------------------------------------------------------------------- #
# Machine-model back-fit
# ---------------------------------------------------------------------- #
def _time_matmul(m: int, k: int, n: int, repeats: int = 3, seed: int = 0) -> float:
    """Best-of-N wall-clock of one ``np.matmul`` (the real GEMM substrate)."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))
    C = np.empty((m, n))
    np.matmul(A, B, out=C)  # warm
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.matmul(A, B, out=C)
        best = min(best, time.perf_counter() - t0)
    return best


def fit_machine_params(
    compute_gflops: float,
    bandwidth_gbs: float,
    *,
    cores: int | None = None,
    headroom: float = 1.1,
) -> MachineParams:
    """Back-fit a :class:`MachineParams` from two measured rates.

    ``compute_gflops`` is the sustained rate of a large compute-bound
    GEMM on one core; the effective peak is set ``headroom`` above it and
    the prefetch-efficiency lambda is then bisected
    (:func:`repro.model.perfmodel.calibrate_lambda`) so the *model*
    reproduces the measurement exactly.  ``bandwidth_gbs`` comes from a
    memory-bound streaming measurement.
    """
    if compute_gflops <= 0 or bandwidth_gbs <= 0:
        raise ValueError("measured rates must be positive")
    cores = cores or os.cpu_count() or 1
    fitted = MachineParams(
        name=f"tuned-{fingerprint_digest()}",
        peak_gflops_per_core=compute_gflops * headroom,
        bandwidth_gbs=bandwidth_gbs,
        cores=int(cores),
        lam=0.7,
    )
    return calibrate_lambda(fitted, compute_gflops)


def calibrate_machine(
    *,
    store: WisdomStore | None = None,
    size: int = 384,
    record: bool = True,
) -> MachineParams:
    """Measure this host and back-fit the machine model the selector prices with.

    Two quick probes: a ``size``^3 matmul for the sustained compute rate,
    and a wide rank-k update (``size x 8 x size``, traffic-dominated) for
    the effective bandwidth.  The fitted params are persisted in the
    wisdom file so future processes rank candidates with calibrated
    constants even on wisdom misses.
    """
    store = store if store is not None else default_store()

    t_c = _time_matmul(size, size, size)
    compute = effective_gflops(size, size, size, t_c)

    kk = 8
    t_b = _time_matmul(size, kk, size)
    bytes_moved = 8.0 * (size * kk + kk * size + 2 * size * size)
    bandwidth = bytes_moved / t_b / 1e9
    # A cache-resident probe can report absurd bandwidth; clamp to a sane
    # window so the fitted model stays physical.
    bandwidth = min(max(bandwidth, 1.0), 512.0)

    params = fit_machine_params(compute, bandwidth)
    if record:
        store.record_machine(params)
    return params
