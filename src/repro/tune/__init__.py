"""repro.tune — empirical autotuning with persistent wisdom.

The layer between the machine model and the runtime: measure real
compiled plans (:mod:`repro.tune.measure`), persist the verdicts in a
machine-fingerprinted wisdom database (:mod:`repro.tune.wisdom`), and
drive budgeted tuning loops that also back-fit the machine model itself
(:mod:`repro.tune.tuner`).  ``multiply(engine="auto", tune="readonly")``
consults this wisdom before falling back to the cold model; ``tune="on"``
fills it on first miss; the ``repro tune`` / ``repro wisdom`` CLI manage
it from the shell.  :mod:`repro.tune.observe` closes the loop from the
other side: it seeds wisdom from the observability layer's ExecutionReport
history, so live serving traffic becomes measurements for free.
"""

from repro.tune.measure import (
    Measurement,
    MeasureConfig,
    measure_candidate,
    measure_plan,
)
from repro.tune.observe import (
    observed_measurements,
    seed_wisdom_from_observations,
)
from repro.tune.tuner import (
    TuneReport,
    calibrate_machine,
    fit_machine_params,
    tune_fused_group,
    tune_problem,
    tune_sweep,
)
from repro.tune.wisdom import (
    SCHEMA_VERSION,
    WisdomStore,
    default_store,
    default_wisdom_path,
    fingerprint_digest,
    machine_fingerprint,
    problem_bucket,
    set_default_store,
)

__all__ = [
    "MeasureConfig",
    "Measurement",
    "measure_plan",
    "measure_candidate",
    "WisdomStore",
    "SCHEMA_VERSION",
    "machine_fingerprint",
    "fingerprint_digest",
    "problem_bucket",
    "default_store",
    "default_wisdom_path",
    "set_default_store",
    "TuneReport",
    "tune_problem",
    "tune_sweep",
    "tune_fused_group",
    "calibrate_machine",
    "fit_machine_params",
    "observed_measurements",
    "seed_wisdom_from_observations",
]
