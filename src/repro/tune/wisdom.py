"""Persistent autotuning wisdom: measured dispatch verdicts that outlive a process.

The ATLAS/FFTW tradition: empirical measurements are expensive, so their
verdicts are written down.  A :class:`WisdomStore` is a small, versioned
JSON database on disk mapping *problem-class buckets* (shape-ratio class +
size bin + dtype + thread request — see :func:`problem_bucket`) to the
measured-best multiply configuration, scoped to a *machine fingerprint*
(:func:`machine_fingerprint`: CPU count, arch, numpy/BLAS, repro version)
so wisdom tuned on one machine never mis-steers another.

Robustness contract (the store sits on the ``engine="auto"`` dispatch
path, so it must never take the process down):

* writes are atomic — serialize to a sibling temp file, ``os.replace``;
* loads are schema-validated — a corrupt or alien file is set aside as
  ``<path>.corrupt`` (with a warning on the ``repro.tune.wisdom``
  logger) and the store degrades to empty (model-only selection keeps
  working);
* a fingerprint mismatch ignores the stale entries (logged at info);
* lookups go through a small in-process LRU keyed on the exact
  ``(m, k, n, dtype, threads)`` so the hot dispatch path is a dict probe,
  not a log/bucket computation.

The calibrated machine model (back-fit by :mod:`repro.tune.tuner`) rides
in the same file under ``"machine"``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import threading
from collections import OrderedDict
from functools import lru_cache as _lru_cache
from pathlib import Path

import numpy as np

from repro.model.machines import MachineParams
from repro.obs.logcfg import get_logger

_log = get_logger(__name__)

__all__ = [
    "SCHEMA_VERSION",
    "TUNABLE_KEYS",
    "WisdomStore",
    "config_signature",
    "config_tuple",
    "machine_fingerprint",
    "fingerprint_digest",
    "problem_bucket",
    "default_store",
    "default_wisdom_path",
    "set_default_store",
]

#: Bump when the on-disk layout changes; older files degrade to empty.
SCHEMA_VERSION = 1

#: Environment override for the default wisdom location.
WISDOM_ENV = "REPRO_WISDOM"

_CONFIG_KEYS = ("algorithm", "levels", "variant", "engine", "threads")

#: Optional per-fingerprint runtime tunables a wisdom file may carry
#: (:func:`repro.core.spec.set_runtime_tunables` knobs): measured-best
#: overrides of the fused-pipeline group size, the staged->fused
#: auto-fusion footprint threshold, the serve coalescing window, and the
#: out-of-core tiled lowering's strip height / memory budget for *this*
#: machine.
TUNABLE_KEYS = (
    "fused_group",
    "fused_auto_threshold",
    "serve_batch_window_us",
    "serve_max_batch",
    "tile_rows",
    "mem_budget_bytes",
)


# ---------------------------------------------------------------------- #
# Keys: machine fingerprint and problem-class bucket
# ---------------------------------------------------------------------- #
def machine_fingerprint() -> dict:
    """What makes measurements on this host comparable to each other.

    Captures the knobs that move wall-clock: core count, architecture,
    the numpy build (its BLAS dominates classical products), the python
    major.minor and the repro version.  Wisdom recorded under a different
    fingerprint is ignored at load time.
    """
    return dict(_fingerprint_cached())


@_lru_cache(maxsize=1)
def _fingerprint_cached() -> tuple:
    import platform

    from repro import __version__

    try:
        blas = np.show_config(mode="dicts")["Build Dependencies"]["blas"]["name"]
    except Exception:
        blas = "unknown"
    return tuple({
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "python": ".".join(platform.python_version_tuple()[:2]),
        "numpy": np.__version__,
        "blas": blas,
        "repro": __version__,
    }.items())


def fingerprint_digest(fp: dict | None = None) -> str:
    """Short stable digest of a fingerprint (used in tuned-machine names)."""
    fp = fp if fp is not None else machine_fingerprint()
    blob = json.dumps(fp, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def problem_bucket(m: int, k: int, n: int, dtype="float64", threads=None) -> str:
    """Problem-class bucket key: size bin x shape-ratio class x dtype x threads.

    Sizes bin by the rounded log2 of the geometric-mean dimension; shape
    ratios by the rounded log2 of ``m/k`` and ``n/k``, so a 14400x480x14400
    rank-k update and a 12000^3 cube land in different classes while
    nearby sizes share tuned verdicts.  ``threads=None`` (the "let the
    tuner pick" request) buckets as ``auto``, distinct from explicit
    thread counts.
    """
    if min(m, k, n) < 1:
        raise ValueError(f"invalid problem {(m, k, n)}")
    size_bin = round(math.log2((m * k * n) ** (1.0 / 3.0)))
    r1 = round(math.log2(m / k))
    r2 = round(math.log2(n / k))
    t = "auto" if threads is None else str(int(threads))
    return f"s{size_bin}|r{r1},{r2}|{np.dtype(dtype).name}|t{t}"


def _validate_entry(entry) -> dict:
    """Schema-check one stored bucket entry; raises ValueError when malformed.

    Everything :meth:`WisdomStore.record` writes must be present and sane —
    the CLI and lookups consume these fields without re-checking.
    """
    if not isinstance(entry, dict):
        raise ValueError(f"malformed wisdom entry {entry!r}")
    _validate_config(entry.get("config"))
    prob = entry.get("problem")
    if not (isinstance(prob, list) and len(prob) == 3
            and all(isinstance(x, int) and x >= 1 for x in prob)):
        raise ValueError(f"malformed wisdom problem {prob!r}")
    for field in ("gflops", "time_s"):
        if not isinstance(entry.get(field), (int, float)):
            raise ValueError(f"malformed wisdom {field} {entry.get(field)!r}")
    if not isinstance(entry.get("samples"), int):
        raise ValueError(f"malformed wisdom samples {entry.get('samples')!r}")
    np.dtype(entry.get("dtype"))  # raises TypeError on junk
    return entry


def _validate_config(cfg) -> dict:
    """Schema-check one stored config; raises ValueError when malformed."""
    if not isinstance(cfg, dict) or any(key not in cfg for key in _CONFIG_KEYS):
        raise ValueError(f"malformed wisdom config {cfg!r}")
    algo = cfg["algorithm"]
    if algo != "classical":
        if not (
            isinstance(algo, list)
            and algo
            and all(isinstance(s, list) and len(s) == 3 for s in algo)
        ):
            raise ValueError(f"malformed wisdom algorithm {algo!r}")
    if "schedule" in cfg and not isinstance(cfg["schedule"], str):
        raise ValueError(f"malformed wisdom schedule {cfg['schedule']!r}")
    if cfg["variant"] not in ("naive", "ab", "abc"):
        raise ValueError(f"malformed wisdom variant {cfg['variant']!r}")
    if cfg["engine"] not in ("direct", "blocked"):
        raise ValueError(f"malformed wisdom engine {cfg['engine']!r}")
    if int(cfg["levels"]) < 1 or int(cfg["threads"]) < 1:
        raise ValueError("wisdom levels/threads must be >= 1")
    backend = cfg.get("backend", "reference")
    if not isinstance(backend, str) or not backend:
        # Any *name* is storable (a file may record a backend this
        # process lacks); selection degrades unknown/unavailable names
        # to "reference" at dispatch time.
        raise ValueError(f"malformed wisdom backend {backend!r}")
    from repro.core.spec import WORKER_MODES

    workers = cfg.get("workers", "threads")
    if workers not in WORKER_MODES:
        raise ValueError(f"malformed wisdom workers {workers!r}")
    return cfg


def _validate_tunables(tun) -> dict:
    """Schema-check a stored tunables mapping; raises ValueError when bad."""
    if not isinstance(tun, dict):
        raise ValueError(f"malformed wisdom tunables {tun!r}")
    for key, value in tun.items():
        if key not in TUNABLE_KEYS:
            raise ValueError(f"unknown wisdom tunable {key!r}")
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"malformed wisdom tunable {key}={value!r}")
        if key in ("fused_group", "serve_max_batch") and value < 1:
            raise ValueError(f"wisdom {key} must be >= 1")
        if key in (
            "fused_auto_threshold",
            "serve_batch_window_us",
            "tile_rows",
            "mem_budget_bytes",
        ) and value < 0:
            raise ValueError(f"wisdom {key} must be >= 0")
    return tun


def config_signature(cfg: dict) -> str:
    """Canonical schedule signature of a stored config.

    ``"classical@1"`` for the GEMM fallback, else the run-length-encoded
    per-level schedule (e.g. ``"<4,2,4>@1,<2,2,2>@1"``) — the same string
    :attr:`repro.core.spec.Schedule.signature` produces, so wisdom records
    and selection candidates name schedules identically.
    """
    from repro.core.spec import schedule_signature

    algo = cfg["algorithm"]
    if algo == "classical":
        return schedule_signature("classical", int(cfg.get("levels", 1)))
    return schedule_signature([tuple(int(x) for x in s) for s in algo])


def config_tuple(cfg: dict) -> tuple:
    """Stored config -> the ``(algorithm, levels, variant, engine, threads,
    backend, workers)`` tuple :func:`repro.core.selection.auto_config`
    returns.  Configs recorded before the backend / workers dimensions
    existed read as ``"reference"`` / ``"threads"`` (what they actually
    measured)."""
    algo = cfg["algorithm"]
    if algo != "classical":
        algo = tuple(tuple(int(x) for x in s) for s in algo)
    return (algo, int(cfg["levels"]), cfg["variant"], cfg["engine"],
            int(cfg["threads"]), cfg.get("backend", "reference"),
            cfg.get("workers", "threads"))


# ---------------------------------------------------------------------- #
# The store
# ---------------------------------------------------------------------- #
class WisdomStore:
    """JSON-on-disk wisdom database with an in-process LRU lookup layer.

    Thread-safe; every mutation persists immediately (records are rare —
    one per tuned problem class — while lookups are the hot path).

    Parameters
    ----------
    path : str or Path
        The JSON file backing the store; created on first :meth:`save`.
        Use :func:`default_wisdom_path` for the conventional location.
    hot_size : int, optional
        Capacity of the exact-probe LRU in front of the bucket map.

    Attributes
    ----------
    path : Path
        Backing file location.
    recovered_corrupt : bool
        True when the last :meth:`load` set aside an unreadable file.
    ignored_stale : bool
        True when the file was tuned under a different machine
        fingerprint and its entries were ignored.
    hot_hits, hot_misses : int
        LRU telemetry for the dispatch hot path.

    See Also
    --------
    default_store : the process-wide store ``engine="auto"`` consults.
    problem_bucket : how problems map to wisdom buckets.

    Examples
    --------
    >>> import tempfile, os
    >>> store = WisdomStore(os.path.join(tempfile.mkdtemp(), "w.json"))
    >>> store.lookup(256, 256, 256) is None
    True
    """

    def __init__(self, path: str | Path, *, hot_size: int = 1024) -> None:
        self.path = Path(path)
        self._lock = threading.RLock()
        self._entries: dict[str, dict] = {}
        self._machine: dict | None = None
        self._tunables: dict = {}
        self._fingerprint = machine_fingerprint()
        self._hot: OrderedDict[tuple, dict | None] = OrderedDict()
        self._hot_size = int(hot_size)
        self.hot_hits = 0
        self.hot_misses = 0
        #: Diagnostics from the last load.
        self.recovered_corrupt = False
        self.ignored_stale = False
        self.load()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def load(self) -> None:
        """(Re)read the file; never raises on bad content.

        A file that fails JSON parsing or schema validation is moved
        aside to ``<path>.corrupt`` (best effort) and the store starts
        empty; entries recorded under a different machine fingerprint are
        ignored, not deleted — they are dropped at the next save.
        """
        with self._lock:
            self._entries = {}
            self._machine = None
            self._tunables = {}
            self._hot.clear()
            self.recovered_corrupt = False
            self.ignored_stale = False
            if not self.path.exists():
                return
            try:
                doc = json.loads(self.path.read_text())
                if not isinstance(doc, dict) or doc.get("version") != SCHEMA_VERSION:
                    raise ValueError(f"unsupported wisdom schema in {self.path}")
                entries = doc.get("entries", {})
                if not isinstance(entries, dict):
                    raise ValueError("wisdom entries must be a mapping")
                for bucket, entry in entries.items():
                    _validate_entry(entry)
                machine = doc.get("machine")
                if machine is not None:
                    self._machine_params_from(machine)  # validates
                tunables = _validate_tunables(doc.get("tunables", {}))
            except Exception:
                self.recovered_corrupt = True
                _log.warning(
                    "wisdom file %s failed to parse/validate; setting it "
                    "aside as %s and starting empty",
                    self.path, self.path.with_suffix(self.path.suffix + ".corrupt"),
                    exc_info=True,
                )
                self._set_aside_corrupt()
                return
            if doc.get("fingerprint") != self._fingerprint:
                self.ignored_stale = True
                _log.info(
                    "wisdom file %s was tuned on a different machine "
                    "fingerprint; ignoring its entries", self.path,
                )
                return
            self._entries = entries
            self._machine = machine
            self._tunables = dict(tunables)

    def _set_aside_corrupt(self) -> None:
        try:
            os.replace(self.path, self.path.with_suffix(self.path.suffix + ".corrupt"))
        except OSError:
            pass

    def _merge_from_disk(self) -> None:
        """Fold in entries another process persisted since our last load.

        Without this, two long-lived processes sharing one wisdom file
        would each rewrite it from their own in-memory view and silently
        erase the other's tuned verdicts.  On-disk entries only fill
        buckets we have no verdict for (our own records are newer by
        construction); unreadable/stale/corrupt disk state is ignored —
        the atomic write below still wins.
        """
        try:
            doc = json.loads(self.path.read_text())
            if (not isinstance(doc, dict)
                    or doc.get("version") != SCHEMA_VERSION
                    or doc.get("fingerprint") != self._fingerprint):
                return
            entries = doc.get("entries", {})
            if not isinstance(entries, dict):
                return
            merged = False
            for bucket, entry in entries.items():
                if bucket not in self._entries:
                    _validate_entry(entry)
                    self._entries[bucket] = entry
                    merged = True
            if self._machine is None and doc.get("machine") is not None:
                self._machine_params_from(doc["machine"])  # validates
                self._machine = doc["machine"]
            # Tunables are deliberately NOT merged from disk: like a
            # record(), the last record_tunables() wins — otherwise a
            # cleared section would resurrect from the previous save.
            if merged:
                self._hot.clear()
        except Exception:
            return

    def save(self, *, merge: bool = True) -> Path:
        """Atomically serialize the store (temp file + ``os.replace``),
        merging entries concurrently written by other processes first
        (``merge=False`` forces a plain overwrite — used by :meth:`clear`)."""
        with self._lock:
            if merge and self.path.exists():
                self._merge_from_disk()
            doc = {
                "version": SCHEMA_VERSION,
                "fingerprint": self._fingerprint,
                "entries": self._entries,
            }
            if self._machine is not None:
                doc["machine"] = self._machine
            if self._tunables:
                doc["tunables"] = self._tunables
            payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(payload)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return self.path

    # ------------------------------------------------------------------ #
    # Lookup / record
    # ------------------------------------------------------------------ #
    def lookup(self, m: int, k: int, n: int, *, dtype="float64",
               threads=None) -> dict | None:
        """The tuned config for this problem class, or ``None``.

        Exact ``(m, k, n, dtype, threads)`` probes are served from the
        in-process LRU; misses compute the bucket once and cache the
        verdict either way.
        """
        key = (int(m), int(k), int(n), np.dtype(dtype).name,
               None if threads is None else int(threads))
        with self._lock:
            if key in self._hot:
                self._hot.move_to_end(key)
                self.hot_hits += 1
                return self._hot[key]
            self.hot_misses += 1
            entry = self._entries.get(problem_bucket(*key[:3], key[3], key[4]))
            cfg = dict(entry["config"]) if entry is not None else None
            self._hot[key] = cfg
            while len(self._hot) > self._hot_size:
                self._hot.popitem(last=False)
            return cfg

    def lookup_tuple(self, m: int, k: int, n: int, *, dtype="float64",
                     threads=None) -> tuple | None:
        """Like :meth:`lookup` but as an ``auto_config`` result tuple."""
        cfg = self.lookup(m, k, n, dtype=dtype, threads=threads)
        return None if cfg is None else config_tuple(cfg)

    def record(
        self,
        m: int,
        k: int,
        n: int,
        *,
        config: dict,
        gflops: float,
        time_s: float,
        samples: int,
        dtype="float64",
        threads=None,
        save: bool = True,
    ) -> str:
        """Write one tuned verdict (last write per bucket wins) and persist.

        The stored config is stamped with its canonical schedule
        signature (:func:`config_signature`), so entries are
        self-describing about *which* per-level schedule won the bucket.
        """
        import time as _time

        config = dict(config)
        _validate_config(config)
        config["schedule"] = config_signature(config)
        bucket = problem_bucket(m, k, n, dtype, threads)
        entry = {
            "config": config,
            "gflops": float(gflops),
            "time_s": float(time_s),
            "samples": int(samples),
            "problem": [int(m), int(k), int(n)],
            "dtype": np.dtype(dtype).name,
            "created_utc": _time.strftime("%Y-%m-%dT%H:%M:%SZ", _time.gmtime()),
        }
        with self._lock:
            self._entries[bucket] = entry
            self._hot.clear()
            if save:
                self.save()
        return bucket

    # ------------------------------------------------------------------ #
    # Per-fingerprint runtime tunables
    # ------------------------------------------------------------------ #
    def record_tunables(
        self,
        *,
        fused_group: int | None = None,
        fused_auto_threshold: int | None = None,
        serve_batch_window_us: int | None = None,
        serve_max_batch: int | None = None,
        tile_rows: int | None = None,
        mem_budget_bytes: int | None = None,
        save: bool = True,
    ) -> dict:
        """Persist measured-best runtime tunables for this machine.

        Only the knobs passed non-``None`` are overridden; a call with
        every knob ``None`` clears the section (back to the package
        defaults in :data:`repro.core.spec.TUNABLE_DEFAULTS`).  Returns
        the stored mapping.  The overrides take effect process-wide when
        the store is (or becomes) the default store — see
        :meth:`apply_tunables`.
        """
        requested = {
            "fused_group": fused_group,
            "fused_auto_threshold": fused_auto_threshold,
            "serve_batch_window_us": serve_batch_window_us,
            "serve_max_batch": serve_max_batch,
            "tile_rows": tile_rows,
            "mem_budget_bytes": mem_budget_bytes,
        }
        with self._lock:
            tun = dict(self._tunables)
            if all(v is None for v in requested.values()):
                tun = {}
            for key, value in requested.items():
                if value is not None:
                    tun[key] = int(value)
            _validate_tunables(tun)
            self._tunables = tun
            if save:
                self.save()
        return dict(tun)

    def tunables(self) -> dict:
        """The stored per-fingerprint tunable overrides (may be empty)."""
        with self._lock:
            return dict(self._tunables)

    def apply_tunables(self) -> dict:
        """Install this store's tunable overrides into the running process
        (:func:`repro.core.spec.set_runtime_tunables`); knobs the store
        does not override revert to their package defaults.  Returns the
        effective values.  :func:`default_store` calls this on first
        resolution, so a wisdom file's tunables govern every multiply in
        the process without explicit plumbing.
        """
        from repro.core.spec import set_runtime_tunables

        return set_runtime_tunables(**self.tunables())

    # ------------------------------------------------------------------ #
    # Calibrated machine model
    # ------------------------------------------------------------------ #
    def record_machine(self, params: MachineParams, *, save: bool = True) -> None:
        """Persist a back-fit machine model alongside the wisdom entries."""
        with self._lock:
            self._machine = {
                "name": params.name,
                "peak_gflops_per_core": params.peak_gflops_per_core,
                "bandwidth_gbs": params.bandwidth_gbs,
                "cores": params.cores,
                "lam": params.lam,
            }
            if save:
                self.save()

    @staticmethod
    def _machine_params_from(doc: dict) -> MachineParams:
        return MachineParams(
            name=str(doc["name"]),
            peak_gflops_per_core=float(doc["peak_gflops_per_core"]),
            bandwidth_gbs=float(doc["bandwidth_gbs"]),
            cores=int(doc["cores"]),
            lam=float(doc["lam"]),
        )

    def machine_params(self) -> MachineParams | None:
        """The calibrated machine model, if one has been back-fit."""
        with self._lock:
            if self._machine is None:
                return None
            return self._machine_params_from(self._machine)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def entries(self) -> dict[str, dict]:
        with self._lock:
            return {b: dict(e) for b, e in self._entries.items()}

    def clear(self, *, save: bool = True) -> None:
        with self._lock:
            self._entries.clear()
            self._machine = None
            self._tunables = {}
            self._hot.clear()
            if save:
                self.save(merge=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (f"WisdomStore({str(self.path)!r}, entries={len(self)}, "
                f"machine={'yes' if self._machine else 'no'})")


# ---------------------------------------------------------------------- #
# The process-wide default store
# ---------------------------------------------------------------------- #
_default_lock = threading.Lock()
_default: WisdomStore | None = None


def default_wisdom_path() -> Path:
    """``$REPRO_WISDOM`` if set, else ``~/.cache/repro/wisdom.json``."""
    env = os.environ.get(WISDOM_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "wisdom.json"


def default_store() -> WisdomStore:
    """The lazily-created process-wide store ``engine="auto"`` consults.

    First resolution also installs the store's per-fingerprint tunable
    overrides (:meth:`WisdomStore.apply_tunables`).
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = WisdomStore(default_wisdom_path())
            _default.apply_tunables()
        return _default


def set_default_store(store: WisdomStore | str | Path | None) -> None:
    """Swap the process-wide store (``None`` re-resolves lazily from env).

    The incoming store's tunable overrides are applied immediately;
    ``None`` resets the runtime tunables to the package defaults (the
    next :func:`default_store` call re-resolves and re-applies).
    """
    from repro.core.spec import set_runtime_tunables

    global _default
    with _default_lock:
        if store is None or isinstance(store, WisdomStore):
            _default = store
        else:
            _default = WisdomStore(store)
        if _default is None:
            set_runtime_tunables()
        else:
            _default.apply_tunables()
