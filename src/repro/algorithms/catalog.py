"""The Fig.-2 family: a registry of practical FMM algorithms.

The paper evaluates 23 ``<m~,k~,n~>`` algorithms (2 <= dims <= 6, no APA).
This catalog reconstructs the family from scratch:

* the ``<2,2,2>:7`` triple printed in the paper (eq. 4);
* exact rank-preserving transforms (rotations, transpose-duals, direct
  sums, Kronecker composition) that propagate each base case to every
  orientation in the table;
* base cases recovered by our own ALS + gauge-sparsification search,
  shipped as JSON under ``repro/algorithms/data/``;
* documented composition *fallbacks* of slightly higher rank for any base
  case the search did not certify — so the catalog is always complete.

Use :func:`get_algorithm` for lookups and :func:`fig2_family` for the full
table in the paper's row order.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.algorithms.classical import classical
from repro.algorithms.loader import data_dir, load_json
from repro.algorithms.strassen import strassen, winograd
from repro.core.fmm import FMMAlgorithm
from repro.core.transforms import (
    all_orientations,
    direct_sum_k,
    direct_sum_m,
    direct_sum_n,
    kron_compose,
)

__all__ = [
    "CatalogEntry",
    "FIG2_SHAPES",
    "NAMED_ALGORITHMS",
    "get_algorithm",
    "get_entry",
    "fig2_family",
    "base_case",
    "catalog_summary",
    "known_algorithm_names",
]

#: The 23 shapes of Fig. 2 with the paper's best-known rank for each.
FIG2_SHAPES: dict[tuple[int, int, int], int] = {
    (2, 2, 2): 7,
    (2, 3, 2): 11,
    (2, 3, 4): 20,
    (2, 4, 3): 20,
    (2, 5, 2): 18,
    (3, 2, 2): 11,
    (3, 2, 3): 15,
    (3, 2, 4): 20,
    (3, 3, 2): 15,
    (3, 3, 3): 23,
    (3, 3, 6): 40,
    (3, 4, 2): 20,
    (3, 4, 3): 29,
    (3, 5, 3): 36,
    (3, 6, 3): 40,
    (4, 2, 2): 14,
    (4, 2, 3): 20,
    (4, 2, 4): 26,
    (4, 3, 2): 20,
    (4, 3, 3): 29,
    (4, 4, 2): 26,
    (5, 2, 2): 18,
    (6, 3, 3): 40,
}


@dataclass(frozen=True)
class CatalogEntry:
    """One catalog row: the algorithm plus provenance metadata."""

    dims: tuple[int, int, int]
    algorithm: FMMAlgorithm
    paper_rank: int
    #: "exact" when achieved rank equals the paper's; "fallback" otherwise.
    status: str

    @property
    def achieved_rank(self) -> int:
        return self.algorithm.rank

    @property
    def rank_gap(self) -> int:
        return self.achieved_rank - self.paper_rank


def _load_searched(m: int, k: int, n: int, rank: int) -> FMMAlgorithm | None:
    """Load a search-discovered base case from the data directory, if present."""
    d = data_dir()
    exact = d / f"{m}_{k}_{n}_{rank}.json"
    if exact.exists():
        return load_json(exact)
    flt = d / f"{m}_{k}_{n}_{rank}.float.json"
    if flt.exists():
        return load_json(flt)
    return None


@lru_cache(maxsize=None)
def base_case(m: int, k: int, n: int) -> FMMAlgorithm:
    """The base algorithm for a canonical shape (see DESIGN.md §3).

    Constructed exactly where possible, loaded from search data otherwise,
    with a composition fallback of documented higher rank as last resort.
    """
    key = (m, k, n)
    if key == (2, 2, 2):
        return strassen()
    if key == (2, 2, 3):
        return direct_sum_n(strassen(), classical(2, 2, 1))  # rank 11
    if key == (2, 2, 5):
        return direct_sum_n(strassen(), base_case(2, 2, 3))  # rank 18
    if key == (2, 2, 4):
        return kron_compose(strassen(), classical(1, 1, 2))  # rank 14

    searched_rank = {
        (2, 3, 3): 15,
        (3, 3, 3): 23,
        (2, 3, 4): 20,
        (3, 4, 3): 29,
        (4, 2, 4): 26,
        (3, 5, 3): 36,
        (3, 3, 6): 40,
    }.get(key)
    if searched_rank is not None:
        found = _load_searched(m, k, n, searched_rank)
        if found is not None:
            return found
        return _fallback(m, k, n)
    raise KeyError(f"no base case defined for <{m},{k},{n}>")


def _fallback(m: int, k: int, n: int) -> FMMAlgorithm:
    """Composition fallback for a missing searched base case."""
    key = (m, k, n)
    if key == (2, 3, 3):
        # <2,1,3>:6 (+)_k <2,2,3>:11 = <2,3,3>:17
        return direct_sum_k(classical(2, 1, 3), base_case(2, 2, 3))
    if key == (3, 3, 3):
        # <1,3,3>:9 (+)_m <2,3,3> = rank 9 + rank(2,3,3)
        return direct_sum_m(classical(1, 3, 3), base_case(2, 3, 3))
    if key == (2, 3, 4):
        # <2,3,1>:6 (+)_n <2,3,3>
        return direct_sum_n(base_case(2, 3, 3), classical(2, 3, 1))
    if key == (3, 4, 3):
        # <3,3,3> (+)_k <3,1,3>:9
        return direct_sum_k(base_case(3, 3, 3), classical(3, 1, 3))
    if key == (4, 2, 4):
        # <4,2,2>:14 (+)_n <4,2,2>:14 = 28
        a422 = _oriented(4, 2, 2)
        return direct_sum_n(a422, a422)
    if key == (3, 5, 3):
        # <3,2,3> (+)_k <3,3,3>
        return direct_sum_k(_oriented(3, 2, 3), base_case(3, 3, 3))
    if key == (3, 3, 6):
        # <3,3,2> (x) <1,1,3>:3
        return kron_compose(_oriented(3, 3, 2), classical(1, 1, 3))
    raise KeyError(f"no fallback defined for <{m},{k},{n}>")


#: Which base case each Fig.-2 shape is an orientation of.
_ORIENTATION_SOURCE: dict[tuple[int, int, int], tuple[int, int, int]] = {
    (2, 2, 2): (2, 2, 2),
    (2, 3, 2): (2, 2, 3),
    (3, 2, 2): (2, 2, 3),
    (2, 5, 2): (2, 2, 5),
    (5, 2, 2): (2, 2, 5),
    (4, 2, 2): (2, 2, 4),
    (3, 2, 3): (2, 3, 3),
    (3, 3, 2): (2, 3, 3),
    (3, 3, 3): (3, 3, 3),
    (2, 3, 4): (2, 3, 4),
    (2, 4, 3): (2, 3, 4),
    (3, 2, 4): (2, 3, 4),
    (3, 4, 2): (2, 3, 4),
    (4, 2, 3): (2, 3, 4),
    (4, 3, 2): (2, 3, 4),
    (3, 4, 3): (3, 4, 3),
    (4, 3, 3): (3, 4, 3),
    (4, 2, 4): (4, 2, 4),
    (4, 4, 2): (4, 2, 4),
    (3, 5, 3): (3, 5, 3),
    (3, 3, 6): (3, 3, 6),
    (3, 6, 3): (3, 3, 6),
    (6, 3, 3): (3, 3, 6),
}


@lru_cache(maxsize=None)
def _oriented(m: int, k: int, n: int) -> FMMAlgorithm:
    src = _ORIENTATION_SOURCE[(m, k, n)]
    base = base_case(*src)
    oriented = all_orientations(base)
    algo = oriented.get((m, k, n))
    if algo is None:  # pragma: no cover - orientation closure is total
        raise KeyError(f"<{m},{k},{n}> not reachable from base {src}")
    return algo


@lru_cache(maxsize=None)
def get_entry(m: int, k: int, n: int) -> CatalogEntry:
    """Catalog entry (algorithm + provenance) for a Fig.-2 shape."""
    key = (m, k, n)
    if key not in FIG2_SHAPES:
        raise KeyError(
            f"<{m},{k},{n}> is not in the Fig.-2 family; "
            f"use repro.algorithms.classical or the transform API directly"
        )
    algo = _oriented(m, k, n)
    paper_rank = FIG2_SHAPES[key]
    base_source = base_case(*_ORIENTATION_SOURCE[key]).source
    if algo.rank != paper_rank:
        status = "fallback"
    elif "float" in algo.source or "float" in base_source:
        # Paper-rank decomposition whose coefficients are still generic
        # floats (dense nnz): correct, but the performance model penalizes
        # its additions until gauge refinement lands a discrete triple.
        status = "float"
    else:
        status = "exact"
    return CatalogEntry(dims=key, algorithm=algo, paper_rank=paper_rank, status=status)


#: Named catalog aliases beyond the Fig.-2 ``<m,k,n>`` spellings.  Each
#: maps to a zero-argument constructor or a Fig.-2 shape.
NAMED_ALGORITHMS: dict[str, object] = {
    "strassen": strassen,
    "winograd": winograd,
    "classical": lambda: classical(1, 1, 1),
    # literature names for catalog shapes (Smirnov's <3,3,3>:23 family and
    # his <3,3,6>:40; Hopcroft–Kerr's <2,2,3>:11 base case)
    "smirnov333": (3, 3, 3),
    "smirnov336": (3, 3, 6),
    "hopcroft-kerr": lambda: base_case(2, 2, 3),
}


def known_algorithm_names() -> list[str]:
    """Every name/shape spelling :func:`get_algorithm` accepts, sorted.

    Used verbatim in the ``ValueError`` raised for unknown specs, so the
    error message can list the full vocabulary.
    """
    names = sorted(NAMED_ALGORITHMS)
    names += ["<%d,%d,%d>" % s for s in FIG2_SHAPES]
    return names


def _unknown_spec_error(spec) -> ValueError:
    return ValueError(
        f"unknown algorithm {spec!r}; known catalog names and shapes: "
        + ", ".join(known_algorithm_names())
    )


def get_algorithm(spec) -> FMMAlgorithm:
    """Flexible lookup: name, ``(m, k, n)`` tuple, or "<m,k,n>" string.

    Accepted names: any key of :data:`NAMED_ALGORITHMS` (``"strassen"``,
    ``"winograd"``, ``"classical"`` — the ``<1,1,1>`` trivial triple —
    ``"smirnov333"``, ...) or any Fig.-2 shape such as ``"<4,2,4>"`` /
    ``(4, 2, 4)``.  Passing an :class:`FMMAlgorithm` returns it unchanged.
    Unknown or malformed specs raise ``ValueError`` listing every known
    catalog name (never a bare ``KeyError`` from the loader internals).
    """
    if isinstance(spec, FMMAlgorithm):
        return spec
    if isinstance(spec, str):
        low = spec.strip().lower()
        named = NAMED_ALGORITHMS.get(low)
        if named is not None:
            if isinstance(named, tuple):
                return get_entry(*named).algorithm
            return named()
        low = low.strip("<>")
        try:
            parts = tuple(int(x) for x in low.replace(" ", "").split(","))
        except ValueError:
            raise _unknown_spec_error(spec) from None
        if len(parts) != 3:
            raise _unknown_spec_error(spec)
        try:
            return get_entry(*parts).algorithm
        except KeyError:
            raise _unknown_spec_error(spec) from None
    if isinstance(spec, (tuple, list)) and len(spec) == 3:
        try:
            return get_entry(*(int(x) for x in spec)).algorithm
        except KeyError:
            raise _unknown_spec_error(tuple(spec)) from None
    raise TypeError(f"cannot interpret algorithm spec {spec!r}")


def fig2_family() -> list[CatalogEntry]:
    """All 23 entries in the paper's row order."""
    return [get_entry(*dims) for dims in FIG2_SHAPES]


def catalog_summary() -> str:
    """Human-readable table of achieved vs. paper ranks."""
    lines = ["shape      paper-R  ours-R  status    source"]
    for e in fig2_family():
        m, k, n = e.dims
        lines.append(
            f"<{m},{k},{n}>   {e.paper_rank:6d}  {e.achieved_rank:6d}  "
            f"{e.status:8s}  {e.algorithm.source}"
        )
    return "\n".join(lines)
