"""JSON (de)serialization for coefficient triples.

Discovered algorithms are committed as data files under
``repro/algorithms/data/`` so the catalog does not depend on re-running the
(ALS) search.  Every load re-validates the Brent equations.
"""

from __future__ import annotations

import json
from importlib import resources
from pathlib import Path

import numpy as np

from repro.core.fmm import FMMAlgorithm

__all__ = [
    "algorithm_to_dict",
    "algorithm_from_dict",
    "save_json",
    "load_json",
    "load_directory",
    "data_dir",
]


def algorithm_to_dict(algo: FMMAlgorithm) -> dict:
    """Plain-JSON representation of an algorithm."""
    return {
        "m": algo.m,
        "k": algo.k,
        "n": algo.n,
        "rank": algo.rank,
        "name": algo.name,
        "source": algo.source,
        "U": algo.U.tolist(),
        "V": algo.V.tolist(),
        "W": algo.W.tolist(),
    }


def algorithm_from_dict(d: dict) -> FMMAlgorithm:
    """Rebuild and re-validate an algorithm from its JSON dict."""
    algo = FMMAlgorithm(
        m=int(d["m"]),
        k=int(d["k"]),
        n=int(d["n"]),
        U=np.array(d["U"], dtype=np.float64),
        V=np.array(d["V"], dtype=np.float64),
        W=np.array(d["W"], dtype=np.float64),
        name=str(d.get("name", "")),
        source=str(d.get("source", "json")),
    )
    if algo.rank != int(d["rank"]):
        raise ValueError(
            f"{algo.name}: rank field {d['rank']} != matrix width {algo.rank}"
        )
    return algo.validate()


def save_json(algo: FMMAlgorithm, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(algorithm_to_dict(algo), indent=1))
    return path


def load_json(path: str | Path) -> FMMAlgorithm:
    return algorithm_from_dict(json.loads(Path(path).read_text()))


def load_directory(path: str | Path) -> dict[str, FMMAlgorithm]:
    """Load every ``*.json`` coefficient file in a directory, keyed by name.

    Files load in sorted order (deterministic); every triple re-validates
    its Brent equations.  Two files declaring the same algorithm ``name``
    raise ``ValueError`` — a silently-shadowed duplicate entry is exactly
    the kind of catalog drift the docs generator is meant to rule out.
    """
    path = Path(path)
    out: dict[str, FMMAlgorithm] = {}
    sources: dict[str, str] = {}
    for f in sorted(path.glob("*.json")):
        algo = load_json(f)
        if algo.name in out:
            raise ValueError(
                f"duplicate catalog entry name {algo.name!r}: "
                f"{sources[algo.name]} and {f.name} both define it"
            )
        out[algo.name] = algo
        sources[algo.name] = f.name
    return out


def data_dir() -> Path:
    """Directory holding the shipped coefficient data files."""
    return Path(str(resources.files("repro.algorithms") / "data"))
