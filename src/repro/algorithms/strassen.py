"""Strassen's ``<2,2,2>:7`` algorithm.

``strassen()`` is the exact coefficient triple printed in eq. (4) of the
paper (the classical Strassen 1969 products, eq. (2)).  ``winograd()`` is
the Strassen–Winograd variant: with common-subexpression reuse it needs
only 15 additions, but the flat ``[[U,V,W]]`` representation cannot express
that reuse, so as a coefficient triple it has *more* nonzeros than eq. (4)
(28 vs 22 additions).  It is kept as a distinct catalog member precisely to
ablate that effect in the performance model.
"""

from __future__ import annotations

import numpy as np

from repro.core.fmm import FMMAlgorithm

__all__ = ["strassen", "winograd"]


def strassen() -> FMMAlgorithm:
    """The paper's eq.-(4) triple for one-level Strassen.

    Row order: A-blocks A0..A3, B-blocks B0..B3, C-blocks C0..C3 in
    row-major quadrant order (eq. (1)); columns are the products M0..M6 of
    eq. (2).
    """
    U = np.array(
        [
            [1, 0, 1, 0, 1, -1, 0],
            [0, 0, 0, 0, 1, 0, 1],
            [0, 1, 0, 0, 0, 1, 0],
            [1, 1, 0, 1, 0, 0, -1],
        ],
        dtype=np.float64,
    )
    V = np.array(
        [
            [1, 1, 0, -1, 0, 1, 0],
            [0, 0, 1, 0, 0, 1, 0],
            [0, 0, 0, 1, 0, 0, 1],
            [1, 0, -1, 0, 1, 0, 1],
        ],
        dtype=np.float64,
    )
    W = np.array(
        [
            [1, 0, 0, 1, -1, 0, 1],
            [0, 0, 1, 0, 1, 0, 0],
            [0, 1, 0, 1, 0, 0, 0],
            [1, -1, 1, 0, 0, 1, 0],
        ],
        dtype=np.float64,
    )
    return FMMAlgorithm(
        m=2, k=2, n=2, U=U, V=V, W=W,
        name="strassen", source="paper eq.(4)",
    ).validate()


def winograd() -> FMMAlgorithm:
    """Strassen–Winograd ``<2,2,2>:7`` with 15 additions.

    Products (blocks A = [[a0,a1],[a2,a3]], B likewise, C likewise):

        m0 = a0 b0                m4 = (a2 + a3)(b1 - b0)
        m1 = a1 b2                m5 = (a0 + a1 - a2 - a3) b3
        m2 = a3 (b0 - b1 - b2 + b3)
        m3 = (a2 + a3 - a0) (b0 - b1 + b3)
        m6 = (a0 - a2) (b3 - b1)

        c0 = m0 + m1
        c1 = m0 + m3 + m4 + m5
        c2 = m0 - m2 + m3 + m6
        c3 = m0 + m3 + m4 + m6
    """
    U = np.array(
        [
            [1, 0, 0, -1, 0, 1, 1],
            [0, 1, 0, 0, 0, 1, 0],
            [0, 0, 0, 1, 1, -1, -1],
            [0, 0, 1, 1, 1, -1, 0],
        ],
        dtype=np.float64,
    )
    V = np.array(
        [
            [1, 0, 1, 1, -1, 0, 0],
            [0, 0, -1, -1, 1, 0, -1],
            [0, 1, -1, 0, 0, 0, 0],
            [0, 0, 1, 1, 0, 1, 1],
        ],
        dtype=np.float64,
    )
    W = np.array(
        [
            [1, 1, 0, 0, 0, 0, 0],
            [1, 0, 0, 1, 1, 1, 0],
            [1, 0, -1, 1, 0, 0, 1],
            [1, 0, 0, 1, 1, 0, 1],
        ],
        dtype=np.float64,
    )
    return FMMAlgorithm(
        m=2, k=2, n=2, U=U, V=V, W=W,
        name="winograd", source="Strassen-Winograd variant",
    ).validate()
