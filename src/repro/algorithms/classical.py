"""The classical ``<m,k,n>`` algorithm with rank ``m*k*n``.

Not "fast", but an essential building block: direct sums of classical and
fast triples realize several Fig.-2 family members (e.g. ``<2,2,3>:11`` =
Strassen (+)_n ``<2,2,1>:4``), and classical triples are the identity
elements of Kronecker composition (e.g. ``<4,2,2>:14`` = Strassen (x)
``<2,1,1>:2``).
"""

from __future__ import annotations

import numpy as np

from repro.core.fmm import FMMAlgorithm

__all__ = ["classical"]


def classical(m: int, k: int, n: int) -> FMMAlgorithm:
    """The classical ``<m,k,n>`` triple: one rank-1 term per scalar product.

    Term ``r = (i1, i2, j2)`` (row-major over ``m x k x n``) multiplies
    ``A_{i1,i2}`` by ``B_{i2,j2}`` and accumulates into ``C_{i1,j2}``.
    """
    R = m * k * n
    U = np.zeros((m * k, R))
    V = np.zeros((k * n, R))
    W = np.zeros((m * n, R))
    r = 0
    for i1 in range(m):
        for i2 in range(k):
            for j2 in range(n):
                U[i1 * k + i2, r] = 1
                V[i2 * n + j2, r] = 1
                W[i1 * n + j2, r] = 1
                r += 1
    return FMMAlgorithm(
        m=m, k=k, n=n, U=U, V=V, W=W,
        name=f"classical<{m},{k},{n}>",
        source="classical",
    ).validate()
