"""Problem-size sweeps for every figure in the evaluation section.

Each generator yields ``(m, k, n)`` triples exactly as the paper sweeps
them, plus ``reduced``-scale versions (divided by an integer factor) so
wall-clock measurements on the Python engine stay tractable while crossing
the same cache-capacity boundaries relative to the blocking parameters.
"""

from __future__ import annotations

__all__ = [
    "fig6_sweep",
    "fig7_square_sweep",
    "fig7_rank_k_sweep",
    "fig7_fixed_k_sweep",
    "fig9_sweep",
    "reduced",
]


def _steps(lo: int, hi: int, step: int) -> list[int]:
    return list(range(lo, hi + 1, step))


def fig6_sweep() -> list[tuple[int, int, int]]:
    """Fig. 6: m = n = 14400, k from 1024 to 12288 (step 1024), one level."""
    return [(14400, k, 14400) for k in _steps(1024, 12288, 1024)]


def fig7_square_sweep() -> list[tuple[int, int, int]]:
    """Fig. 7 left: m = k = n from 1024 to 12288."""
    return [(x, x, x) for x in _steps(1024, 12288, 1024)]


def fig7_rank_k_sweep() -> list[tuple[int, int, int]]:
    """Fig. 7 middle: m = n = 14400, k varies (same as Fig. 6)."""
    return fig6_sweep()


def fig7_fixed_k_sweep() -> list[tuple[int, int, int]]:
    """Fig. 7 right: k = 1024, m = n from 1024 to 12288."""
    return [(x, 1024, x) for x in _steps(1024, 12288, 1024)]


def fig9_sweep() -> list[tuple[int, int, int]]:
    """Fig. 9: k = 1200, m = n from 1200 to 15600."""
    return [(x, 1200, x) for x in _steps(1200, 15600, 1200)]


def reduced(
    sweep: list[tuple[int, int, int]], factor: int = 10, minimum: int = 48
) -> list[tuple[int, int, int]]:
    """Scale a sweep down for wall-clock runs on the Python engine."""
    out = []
    for m, k, n in sweep:
        out.append(
            (max(m // factor, minimum), max(k // factor, minimum), max(n // factor, minimum))
        )
    return out
