"""Rendering of benchmark series and tables, plus result-file dumps.

The harness prints the same rows/series the paper reports (Effective
GFLOPS per sweep point), renders compact markdown for EXPERIMENTS.md,
writes CSVs under ``benchmarks/results/`` so runs are diffable, and emits
machine-readable ``BENCH_*.json`` telemetry (:func:`write_bench_json`) so
the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import csv
import json
import os
import platform
import time
from pathlib import Path

from repro.bench.runner import Series

__all__ = [
    "format_table",
    "series_table",
    "write_csv",
    "write_bench_json",
    "results_dir",
]


def results_dir() -> Path:
    """benchmarks/results/ relative to the repository root (created lazily)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists() or (parent / "setup.py").exists():
            d = parent / "benchmarks" / "results"
            d.mkdir(parents=True, exist_ok=True)
            return d
    d = Path.cwd() / "benchmark-results"
    d.mkdir(exist_ok=True)
    return d


def write_bench_json(name: str, payload: dict) -> Path:
    """Dump one benchmark run as ``benchmarks/results/BENCH_<name>.json``.

    Wraps ``payload`` (benchmark-specific: shapes, threads, GFLOPS,
    speedups, ...) in a common envelope — benchmark name, UTC timestamp
    and the host fingerprint (python/numpy versions, cpu count) — so runs
    from different PRs/machines are comparable records.
    """
    import numpy as np

    doc = {
        "bench": name,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
        },
        **payload,
    }
    path = results_dir() / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Plain-text aligned table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_table(series_list: list[Series], xlabel: str = "shape") -> str:
    """Render several series as one table keyed by sweep point."""
    if not series_list:
        return "(no series)"
    shapes = series_list[0].shapes()
    headers = [xlabel] + [f"{s.label} [{s.tier}]" for s in series_list]
    rows = []
    for i, shape in enumerate(shapes):
        row = ["x".join(str(d) for d in shape)]
        for s in series_list:
            row.append(f"{s.points[i].gflops:7.2f}")
        rows.append(row)
    return format_table(headers, rows)


def write_csv(path: str | Path, series_list: list[Series]) -> Path:
    """Dump series to CSV: one row per sweep point, one column per series."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    shapes = series_list[0].shapes() if series_list else []
    with path.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["m", "k", "n"] + [f"{s.label}|{s.tier}" for s in series_list])
        for i, (m, k, n) in enumerate(shapes):
            w.writerow(
                [m, k, n] + [f"{s.points[i].gflops:.4f}" for s in series_list]
            )
    return path
