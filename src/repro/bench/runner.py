"""Three-tier experiment runner: model / simulated-actual / measured.

Performance fidelity note (DESIGN.md substitution #2): pure Python cannot
reproduce the paper's absolute GFLOPS, so each experiment is evaluated at
up to three fidelity tiers:

* ``model``   — the paper's closed-form performance model (its "modeled"
  panels);
* ``sim``     — the fringe-aware loop-walking simulator priced with the
  paper's machine constants (analog of its "actual" panels);
* ``wall``    — real wall-clock of the NumPy engines at reduced scale
  (sanity tier: are the crossovers real on this machine?).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.blis.simulator import simulate_time
from repro.core.executor import BlockedEngine, DirectEngine, resolve_levels
from repro.core.kronecker import MultiLevelFMM
from repro.model.machines import MachineParams
from repro.model.perfmodel import effective_gflops, predict_fmm, predict_gemm

__all__ = ["SeriesPoint", "Series", "run_series", "measure_wall"]


@dataclass(frozen=True)
class SeriesPoint:
    shape: tuple[int, int, int]
    gflops: float
    time: float


@dataclass
class Series:
    """One labeled curve of Effective GFLOPS over a sweep."""

    label: str
    tier: str  # model | sim | wall
    points: list[SeriesPoint] = field(default_factory=list)

    def gflops(self) -> list[float]:
        return [p.gflops for p in self.points]

    def shapes(self) -> list[tuple[int, int, int]]:
        return [p.shape for p in self.points]


def run_series(
    sweep: list[tuple[int, int, int]],
    algorithm,
    levels: int,
    variant: str,
    machine: MachineParams,
    tier: str = "model",
    label: str | None = None,
) -> Series:
    """Evaluate one implementation across a sweep at the given tier.

    ``algorithm=None`` evaluates the GEMM baseline.
    """
    ml: MultiLevelFMM | None = None
    if algorithm is not None:
        ml = resolve_levels(algorithm, levels)
    if label is None:
        label = "gemm" if ml is None else f"{ml.name}/{variant}"
    series = Series(label=label, tier=tier)
    for (m, k, n) in sweep:
        if tier == "model":
            if ml is None:
                t = predict_gemm(m, k, n, machine).time
            else:
                t = predict_fmm(m, k, n, ml, variant, machine).time
        elif tier == "sim":
            t = simulate_time(m, k, n, ml, variant, machine)
        elif tier == "wall":
            t = measure_wall(m, k, n, ml, variant)
        else:
            raise ValueError(f"unknown tier {tier!r}")
        series.points.append(
            SeriesPoint(shape=(m, k, n), gflops=effective_gflops(m, k, n, t), time=t)
        )
    return series


def measure_wall(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM | None,
    variant: str,
    engine: str = "direct",
    threads: int = 1,
    repeats: int = 3,
    seed: int = 0,
) -> float:
    """Best-of-N wall-clock for one multiply on this machine."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))
    best = np.inf
    for _ in range(repeats):
        C = np.zeros((m, n))
        t0 = time.perf_counter()
        if ml is None:
            if engine == "blocked":
                BlockedEngine(threads=threads).gemm(A, B, C)
            else:
                np.matmul(A, B, out=C)
        elif engine == "blocked":
            BlockedEngine(variant=variant, threads=threads).multiply(A, B, C, ml)
        else:
            DirectEngine().multiply(A, B, C, ml)
        best = min(best, time.perf_counter() - t0)
    return best
