"""ASCII rendering of benchmark series — figure-shaped terminal output.

The paper's figures are GFLOPS-vs-size line plots.  With no display (and
no matplotlib in the offline environment), this renders the same panels as
Unicode/ASCII charts so `pytest benchmarks/ -s` output visually resembles
the figures being reproduced.
"""

from __future__ import annotations

from repro.bench.runner import Series

__all__ = ["ascii_chart"]

_MARKS = "ox+*#@%&=~^"


def ascii_chart(
    series_list: list[Series],
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_index: int = 1,
) -> str:
    """Render series as an ASCII line chart.

    ``x_index`` selects which of (m, k, n) drives the x axis (default k).
    Values are linearly binned; later series overwrite earlier ones where
    they collide, and a legend maps marks to labels.
    """
    if not series_list:
        return "(no series)"
    xs = [s[x_index] for s in series_list[0].shapes()]
    if len(xs) < 2:
        width = max(width, 8)
    ys_all = [g for s in series_list for g in s.gflops()]
    lo, hi = min(ys_all), max(ys_all)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    x0, x1 = min(xs), max(xs)
    xspan = max(x1 - x0, 1)

    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series_list):
        mark = _MARKS[si % len(_MARKS)]
        for (shape, g) in zip(s.shapes(), s.gflops()):
            x = shape[x_index]
            col = int((x - x0) / xspan * (width - 1))
            row = int((g - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        yval = hi - (hi - lo) * i / (height - 1)
        lines.append(f"{yval:8.1f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x0:<12d}" + " " * max(width - 24, 0) + f"{x1:>12d}")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {s.label}" for i, s in enumerate(series_list)
    )
    lines.append("  " + legend)
    return "\n".join(lines)
