"""Reference numbers transcribed from the paper, for comparison in benches.

Fig. 2 reports, per algorithm: the number of classical multiplies, the FMM
rank, the theoretical per-step speedup, and measured one-level speedups (%)
over GEMM in two regimes on one core — Practical #1 is the rank-k update
(m = n = 14400, k = 480), Practical #2 near-square (m = n = 14400,
k = 12000).  "ours" columns are the paper's generated implementations;
"ref" columns are Benson–Ballard [1] linked with MKL.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Fig2Row", "FIG2_ROWS", "PRACTICAL1_SHAPE", "PRACTICAL2_SHAPE", "PEAK_1CORE", "PEAK_10CORE"]

#: (m, k, n) of the two practical regimes in Fig. 2.
PRACTICAL1_SHAPE = (14400, 480, 14400)
PRACTICAL2_SHAPE = (14400, 12000, 14400)

#: GFLOPS peaks marked in the paper's plots.
PEAK_1CORE = 28.32
PEAK_10CORE = 248.0


@dataclass(frozen=True)
class Fig2Row:
    dims: tuple[int, int, int]
    ref: str                  # literature source cited in the paper
    classical_muls: int       # m~ * k~ * n~
    rank: int                 # R
    theory_pct: float         # theoretical speedup per recursive step, %
    ours_p1_pct: float        # paper's speedup, practical #1 (rank-480)
    bb_p1_pct: float          # [1]'s speedup, practical #1
    ours_p2_pct: float        # paper's speedup, practical #2 (near-square)
    bb_p2_pct: float          # [1]'s speedup, practical #2


FIG2_ROWS: tuple[Fig2Row, ...] = (
    Fig2Row((2, 2, 2), "[11]", 8, 7, 14.3, 11.9, -3.0, 13.1, 13.1),
    Fig2Row((2, 3, 2), "[1]", 12, 11, 9.1, 5.5, -13.1, 7.7, 7.7),
    Fig2Row((2, 3, 4), "[1]", 24, 20, 20.0, 11.9, -8.0, 16.3, 17.0),
    Fig2Row((2, 4, 3), "[10]", 24, 20, 20.0, 4.8, -15.3, 14.9, 16.6),
    Fig2Row((2, 5, 2), "[10]", 20, 18, 11.1, 1.5, -23.1, 8.6, 8.3),
    Fig2Row((3, 2, 2), "[10]", 12, 11, 9.1, 7.1, -6.6, 7.2, 7.5),
    Fig2Row((3, 2, 3), "[10]", 18, 15, 20.0, 14.1, -0.7, 17.2, 16.8),
    Fig2Row((3, 2, 4), "[10]", 24, 20, 20.0, 11.9, -1.8, 16.1, 17.0),
    Fig2Row((3, 3, 2), "[10]", 18, 15, 20.0, 11.4, -8.1, 17.3, 16.5),
    Fig2Row((3, 3, 3), "[12]", 27, 23, 17.4, 8.6, -9.3, 14.4, 14.7),
    Fig2Row((3, 3, 6), "[12]", 54, 40, 35.0, -34.0, -41.6, 24.2, 20.1),
    Fig2Row((3, 4, 2), "[1]", 24, 20, 20.0, 4.9, -15.7, 16.0, 16.8),
    Fig2Row((3, 4, 3), "[12]", 36, 29, 24.1, 8.4, -12.6, 18.1, 20.1),
    Fig2Row((3, 5, 3), "[12]", 45, 36, 25.0, 5.2, -20.6, 19.1, 18.9),
    Fig2Row((3, 6, 3), "[12]", 54, 40, 35.0, -21.6, -64.5, 19.5, 17.8),
    Fig2Row((4, 2, 2), "[10]", 16, 14, 14.3, 9.4, -4.7, 11.9, 12.2),
    Fig2Row((4, 2, 3), "[1]", 24, 20, 20.0, 12.1, -2.3, 15.9, 17.3),
    Fig2Row((4, 2, 4), "[10]", 32, 26, 23.1, 10.4, -2.7, 18.4, 19.1),
    Fig2Row((4, 3, 2), "[10]", 24, 20, 20.0, 11.3, -7.8, 16.8, 15.7),
    Fig2Row((4, 3, 3), "[10]", 36, 29, 24.1, 8.1, -8.4, 19.8, 20.0),
    Fig2Row((4, 4, 2), "[10]", 32, 26, 23.1, -4.2, -18.4, 17.1, 18.5),
    Fig2Row((5, 2, 2), "[10]", 20, 18, 11.1, 7.0, -6.7, 8.2, 8.5),
    Fig2Row((6, 3, 3), "[12]", 54, 40, 35.0, -33.4, -42.2, 24.0, 20.2),
)
