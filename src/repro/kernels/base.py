"""The leaf-kernel backend substrate: one protocol, many implementations.

The paper's performance result comes from *generating specialized kernels*
rather than interpreting coefficient tables per call.  This module defines
the seam that makes the leaf executor pluggable: a :class:`LeafBackend`
supplies (a) the per-product leaf the interpreted task-graph pipeline
drives (gather / fproduct-strip / scatter-accumulate), and (b) optionally
a compiled whole-core kernel for calls it can specialize, keyed per plan
by ``(dtype, variant, fusion)`` (:func:`kernel_key`).

``core/runtime.py`` dispatches every execution through a backend resolved
from the registry (:mod:`repro.kernels`); backends that cannot serve a
particular call (batched operands, mismatched dtype, the process runtime)
return ``None`` from :meth:`LeafBackend.kernel_for` and the call runs on
the reference interpreter — behavior stays identical, only the execution
engine changes, and the :class:`~repro.core.runtime.ExecutionReport`
records which path actually ran.
"""

from __future__ import annotations

import importlib.util
import threading
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "BackendInfo",
    "KernelEntry",
    "LeafBackend",
    "ParallelKernelEntry",
    "kernel_key",
]


def kernel_key(cplan, fusion: str, threads: int = 1) -> tuple:
    """The per-plan kernel cache key: ``(dtype, variant, fusion, threads)``.

    Shape and schedule are the plan's identity already (kernels are cached
    *alongside* their plan), so only the execution-mode axes remain —
    including ``threads``, since a parallel kernel's emitted phase
    partition is specialized to one worker count.
    """
    return (cplan.dtype.name, cplan.variant, fusion, int(threads))


@dataclass(frozen=True)
class BackendInfo:
    """Registry-facing description of one backend (``repro backends``)."""

    name: str
    available: bool
    requires: str | None
    summary: str


@dataclass(eq=False)
class KernelEntry:
    """One compiled whole-core kernel, cached alongside its plan.

    The compiled closure owns preallocated buffers, so concurrent
    executions of the *same* plan serialize on :attr:`lock` (the
    interpreted pipeline keeps serving unrelated concurrency).
    ``hits`` counts cache hits after compilation — the execution report
    derives its ``kernel_cached`` flag from it.
    """

    fn: Callable
    source: str
    path: str  # "compiled" (plain exec) or "jit" (numba-wrapped)
    key: tuple
    group: int
    workspace_bytes: int
    hits: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def run(self, A, B, C):
        with self.lock:
            return self.fn(A, B, C)


@dataclass(eq=False)
class ParallelKernelEntry:
    """One compiled *parallel* whole-core kernel, cached alongside its plan.

    ``phases`` is a grid of per-worker closures over shared preallocated
    buffers (see :class:`repro.core.codegen.ParallelPlanKernel`);
    :meth:`run` drives each phase through the shared ``threads``-worker
    thread pool with a barrier between phases — the same drained
    ``pool.map`` discipline as the interpreter's task phases.  Like
    :class:`KernelEntry`, the closures own their buffers, so concurrent
    executions of the same entry serialize on :attr:`lock`.
    """

    phases: tuple
    source: str
    path: str  # "compiled-parallel" (plain exec) or "jit-parallel"
    key: tuple
    group: int
    workspace_bytes: int
    threads: int
    hits: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def run(self, A, B, C):
        # Deferred import: the runtime imports this package at load time.
        from repro.core.runtime import get_pool

        pool = get_pool(self.threads)
        with self.lock:
            for fns in self.phases:
                if len(fns) == 1:
                    fns[0](A, B, C)
                else:
                    for _ in pool.map(lambda fn: fn(A, B, C), fns):
                        pass
        return C


class LeafBackend:
    """Base class of every leaf-kernel backend.

    Subclasses set :attr:`name` / :attr:`summary` (and :attr:`requires`
    when they depend on an optional import) and override
    :meth:`kernel_for` when they can compile whole-core kernels.  The
    default implementation is a pure interpreter backend: every call runs
    through :meth:`leaf` on the task-graph pipeline.
    """

    name: str = "backend"
    summary: str = ""
    #: Import name of the optional dependency gating this backend, if any.
    requires: str | None = None

    # ------------------------------------------------------------------ #
    # Availability
    # ------------------------------------------------------------------ #
    def missing(self) -> str | None:
        """The unimportable dependency name, or ``None`` when available."""
        if self.requires is None:
            return None
        return None if importlib.util.find_spec(self.requires) else self.requires

    def available(self) -> bool:
        return self.missing() is None

    def info(self) -> BackendInfo:
        return BackendInfo(
            name=self.name,
            available=self.available(),
            requires=self.requires,
            summary=self.summary,
        )

    # ------------------------------------------------------------------ #
    # Execution entry points
    # ------------------------------------------------------------------ #
    def leaf(self):
        """The per-product leaf driving the interpreted task-graph path."""
        from repro.kernels.reference import NUMPY_LEAF

        return NUMPY_LEAF

    def kernel_for(self, cplan, A, B, C, fusion: str, threads: int,
                   vector_cap: int) -> KernelEntry | ParallelKernelEntry | None:
        """A compiled whole-core kernel serving this exact call, or ``None``.

        ``None`` means "interpret this one": the runtime falls back to the
        task-graph pipeline with :meth:`leaf`, so a backend only ever
        accelerates calls it can serve bit-for-bit-compatibly.
        """
        return None

    def cache_stats(self) -> dict:
        """Compile/cache counters (``repro backends``, tests)."""
        return {"plans": 0, "kernels": 0, "compiles": 0, "hits": 0}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
