"""Optional Numba wrapper over the specialized emission.

When ``numba`` is importable the backend registers as available and wraps
each emitted kernel in ``numba.njit`` lazily: the first call attempts the
JIT compile and falls back to the plain exec-compiled kernel on any
failure, logging a warning on the ``repro.kernels.numba_jit`` logger
(numba's nopython mode does not cover every numpy feature the emitter
uses — e.g. ``out=`` on ``take``/``stack`` — and coverage varies by
version).  Numba compiles before executing any of the function
body, so a failed attempt leaves ``C`` untouched and the fallback is
exact.  Without ``numba`` installed the backend stays registered but
unavailable: ``repro backends`` shows the missing dependency, and
explicitly requesting ``backend="numba"`` raises at spec validation.
"""

from __future__ import annotations

from repro.kernels.base import KernelEntry, ParallelKernelEntry
from repro.kernels.specialized import SpecializedBackend
from repro.obs.logcfg import get_logger

_log = get_logger(__name__)

__all__ = ["NumbaBackend"]


def _jit_dispatcher(plain_fn):
    """Try-JIT-once-then-settle wrapper around one emitted kernel."""
    state = {"jit": None, "failed": False}

    def runner(A, B, C):
        if not state["failed"]:
            jit = state["jit"]
            if jit is None:
                try:
                    import numba

                    jit = state["jit"] = numba.njit(plain_fn)
                except Exception:
                    state["failed"] = True
                    _log.warning(
                        "numba njit wrap failed; kernel settles on the "
                        "plain compiled form", exc_info=True,
                    )
                    return plain_fn(A, B, C)
            try:
                # Lazy nopython compilation happens here, before any of
                # the kernel body runs: a typing failure cannot leave C
                # partially updated.
                return jit(A, B, C)
            except Exception:
                state["failed"] = True
                state["jit"] = None
                _log.warning(
                    "numba JIT compile failed; kernel settles on the "
                    "plain compiled form", exc_info=True,
                )
        return plain_fn(A, B, C)

    return runner


class NumbaBackend(SpecializedBackend):
    name = "numba"
    requires = "numba"
    summary = (
        "numba @njit wrapper over the specialized kernels "
        "(logged per-kernel fallback to the plain compiled form)"
    )

    def _compile_entry(
        self, cplan, fusion: str, threads: int = 1
    ) -> KernelEntry | ParallelKernelEntry:
        entry = super()._compile_entry(cplan, fusion, threads)
        if self.available():
            if isinstance(entry, ParallelKernelEntry):
                # Each (phase, worker) closure gets its own dispatcher so a
                # typing failure in one phase falls back only that closure.
                entry.phases = tuple(
                    tuple(_jit_dispatcher(fn) for fn in fns)
                    for fns in entry.phases
                )
                entry.path = "jit-parallel"
            else:
                entry.fn = _jit_dispatcher(entry.fn)
                entry.path = "jit"
        return entry
