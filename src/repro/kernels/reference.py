"""The reference backend: the numpy interpreter's leaf, as a plugin.

This is the former ``core/runtime.py`` leaf machinery — the weighted
block-view gather, the dtype-matched scatter-accumulate, and the
:class:`NumpyProductLeaf` that streams one product at a time — refactored
behind the :class:`~repro.kernels.base.LeafBackend` protocol so the
runtime dispatches *every* backend the same way.  The reference backend
compiles nothing: :meth:`ReferenceBackend.kernel_for` always returns
``None`` and every call runs on the interpreted task-graph pipeline,
which keeps it the bitwise-exactness baseline the parity suite pins all
other backends against.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import LeafBackend

__all__ = [
    "NUMPY_LEAF",
    "NumpyProductLeaf",
    "ReferenceBackend",
    "gather",
    "scatter_accumulate",
]


def gather(terms, views, out) -> None:
    """Weighted sum of block views written into a recycled buffer.

    Coefficients are python floats (plan invariant), so NEP-50 weak-scalar
    promotion never upcasts float32 intermediates.
    """
    (i0, c0) = terms[0]
    v0 = views[i0]
    if c0 == 1.0:
        np.copyto(out, v0)
    elif c0 == -1.0:
        np.negative(v0, out=out)
    else:
        np.multiply(v0, c0, out=out)
    for i, c in terms[1:]:
        v = views[i]
        if c == 1.0:
            out += v
        elif c == -1.0:
            out -= v
        else:
            out += c * v


def scatter_accumulate(step, M, Ct, scratch=None) -> None:
    """Immediately accumulate one computed product into its C tiles.

    The ±1 fast paths cover the discrete catalog.  A non-unit coefficient
    (float-status entries) scales through ``scratch`` — a preallocated
    block-sized strip buffer — when the pipeline provides one, so the
    accumulate stays dtype-matched and allocation-free; without a scratch
    buffer it falls back to one block-sized ``w * M`` temporary per term
    (bounded by a single block, not by R, so the fused pipeline's
    O(workers · group) footprint claim is unaffected either way).
    """
    for i, w in step.c_terms:
        v = Ct[i]
        if w == 1.0:
            v += M
        elif w == -1.0:
            v -= M
        elif scratch is not None:
            np.multiply(M, w, out=scratch)
            v += scratch
        else:
            v += w * M


class NumpyProductLeaf:
    """Default leaf kernel: weighted gathers + one ``matmul`` per product.

    Stateless and shared (:data:`NUMPY_LEAF`); works on 2-D and batched
    operands alike because every operation runs on the trailing two axes.
    """

    supports_batch = True    #: leading batch axes handled natively
    parallel_fringe = True   #: fringe tasks may run on the pool
    #: Per-slot recycled buffers this leaf's ``product`` actually reads:
    #: the ungathered pipeline allocates exactly these (a fully-fused
    #: kernel like the BLIS abc leaf needs none).
    needs_buffers = ("S", "T", "M")

    def begin(self, n_slots: int) -> None:
        """Per-execution setup hook (stateless here)."""

    def finish(self) -> None:
        """Per-execution teardown hook (stateless here)."""

    def product(self, step, Av, Bv, Ct, S, T, M, slot: int) -> None:
        """Stream one product: gather combos, multiply, scatter-accumulate."""
        gather(step.a_terms, Av, S)
        gather(step.b_terms, Bv, T)
        np.matmul(S, T, out=M)
        scatter_accumulate(step, M, Ct)

    def fringe(self, f, A, B, C) -> None:
        C[..., f.c_rows, f.c_cols] += (
            A[..., f.a_rows, f.a_cols] @ B[..., f.b_rows, f.b_cols]
        )


#: The shared stateless default leaf.
NUMPY_LEAF = NumpyProductLeaf()


class ReferenceBackend(LeafBackend):
    """The numpy interpreter as a backend: compiles nothing, serves all."""

    name = "reference"
    summary = (
        "numpy task-graph interpreter (the exactness baseline; "
        "serves every call shape)"
    )
