"""Pluggable leaf-kernel backends and their process-wide registry.

The execution substrate of the runtime: every :func:`repro.core.runtime.
execute_plan` call resolves a :class:`~repro.kernels.base.LeafBackend`
from this registry and dispatches through it.  Shipped backends:

* ``reference`` — the numpy task-graph interpreter (the exactness
  baseline; serves every call shape, batched and threaded included).
* ``specialized`` — per-plan ``exec``-compiled whole-core kernels with
  coefficient loops unrolled and gather/scatter indices precomputed,
  cached alongside the plan (:mod:`repro.kernels.specialized`).
* ``numba`` — the same emitted kernels behind an optional ``numba.njit``
  wrapper with silent per-kernel fallback; registered always, *available*
  only when numba is importable.

Backend choice is one more ``engine="auto"`` dimension: the performance
model prices per-backend leaf cost, the tuner measures backends like any
candidate, and wisdom entries record the winner (see ``tune/``).
"""

from __future__ import annotations

import threading

from repro.kernels.base import BackendInfo, KernelEntry, LeafBackend, kernel_key
from repro.kernels.numba_jit import NumbaBackend
from repro.kernels.reference import (
    NUMPY_LEAF,
    NumpyProductLeaf,
    ReferenceBackend,
)
from repro.kernels.specialized import SpecializedBackend

__all__ = [
    "BackendInfo",
    "KernelEntry",
    "LeafBackend",
    "NUMPY_LEAF",
    "NumbaBackend",
    "NumpyProductLeaf",
    "ReferenceBackend",
    "SpecializedBackend",
    "available_backends",
    "backend_infos",
    "backend_names",
    "get_backend",
    "kernel_key",
    "register_backend",
]

_lock = threading.Lock()
_registry: dict[str, LeafBackend] = {}


def register_backend(backend: LeafBackend, replace: bool = False) -> LeafBackend:
    """Add a backend instance to the registry (keyed by ``backend.name``)."""
    name = backend.name
    with _lock:
        if not replace and name in _registry:
            raise ValueError(f"backend {name!r} is already registered")
        _registry[name] = backend
    return backend


def get_backend(name: str) -> LeafBackend:
    """The registered backend called ``name`` (``ValueError`` if unknown)."""
    with _lock:
        backend = _registry.get(name)
    if backend is None:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {list(_registry)}"
        )
    return backend


def backend_names() -> tuple[str, ...]:
    """Registered backend names, registration order (reference first)."""
    with _lock:
        return tuple(_registry)


def available_backends() -> tuple[LeafBackend, ...]:
    """The registered backends whose dependencies are importable."""
    with _lock:
        backends = tuple(_registry.values())
    return tuple(b for b in backends if b.available())


def backend_infos() -> tuple[BackendInfo, ...]:
    """Registry snapshot for display (``repro backends``, generated docs)."""
    with _lock:
        backends = tuple(_registry.values())
    return tuple(b.info() for b in backends)


#: The shipped backends, registered at import (reference stays first: it
#: is the default and the fallback every other backend delegates to).
REFERENCE_BACKEND = register_backend(ReferenceBackend())
SPECIALIZED_BACKEND = register_backend(SpecializedBackend())
NUMBA_BACKEND = register_backend(NumbaBackend())
