"""The specialized backend: per-plan exec-compiled whole-core kernels.

For each :class:`~repro.core.compile.CompiledPlan` this backend asks
:func:`repro.core.codegen.compile_plan_kernel` to emit a dependency-free
numpy kernel — coefficient loops unrolled into literal expressions,
gather/scatter index arrays precomputed once, every buffer preallocated
in the plan dtype — and caches it *alongside the plan*: the cache is a
``WeakKeyDictionary`` keyed by plan identity, so evicting a plan from the
plan cache (and dropping user references) evicts its kernels with it.
Within a plan, kernels are keyed ``(dtype, variant, fusion, threads)``
(:func:`~repro.kernels.base.kernel_key`).

The backend serves calls it can specialize exactly: 2-D C-contiguous
operands in the plan's own dtype, with the staged shape additionally
honoring the interpreter's ``vector_cap`` gate.  ``threads > 1`` compiles
a *parallel* kernel — one closure per (phase, worker) over shared
preallocated buffers, driven through the shared thread pool
(``backend_path="compiled-parallel"``; see
:func:`repro.core.codegen.generate_parallel_kernel_source`).  Everything
else returns ``None`` and runs on the reference interpreter — the report
then shows ``backend_path="interpreted"``, never a silent behavior
change, and the decline reason (batched / non-contiguous or
mmap-backed operands / dtype mismatch / vector-cap) is logged at debug
level via :mod:`repro.obs.logcfg`.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from repro.core.codegen import compile_parallel_plan_kernel, compile_plan_kernel
from repro.kernels.base import (
    KernelEntry,
    LeafBackend,
    ParallelKernelEntry,
    kernel_key,
)
from repro.obs import trace as _trace
from repro.obs.logcfg import get_logger

_log = get_logger(__name__)

__all__ = ["SpecializedBackend"]


class SpecializedBackend(LeafBackend):
    name = "specialized"
    summary = (
        "per-plan exec-compiled numpy kernels (unrolled coefficients, "
        "precomputed gather/scatter indices, dtype-matched scatter; "
        "phase-parallel emission for threads > 1)"
    )

    def __init__(self) -> None:
        self._kernels: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._lock = threading.Lock()
        self._compiles = 0
        self._hits = 0

    # ------------------------------------------------------------------ #
    def _compile_entry(self, cplan, fusion: str, threads: int = 1):
        if threads > 1:
            kern = compile_parallel_plan_kernel(cplan, threads, fusion=fusion)
            return ParallelKernelEntry(
                phases=kern.phases,
                source=kern.source,
                path="compiled-parallel",
                key=kernel_key(cplan, fusion, threads),
                group=kern.group,
                workspace_bytes=kern.workspace_bytes,
                threads=kern.threads,
            )
        kern = compile_plan_kernel(cplan, fusion=fusion)
        return KernelEntry(
            fn=kern.fn,
            source=kern.source,
            path="compiled",
            key=kernel_key(cplan, fusion),
            group=kern.group,
            workspace_bytes=kern.workspace_bytes,
        )

    def _decline(self, cplan, A, B, C, reason: str) -> None:
        """Log why this call delegates to the interpreter.

        Delegation is correct-by-construction (the reference pipeline
        runs instead) but used to be silent — in particular for
        ``np.memmap``-backed or otherwise non-owned operands, whose
        views are routinely non-contiguous.  The reason lands in the
        ``repro.kernels.specialized`` debug log; the executed path is
        always visible as ``last_report().backend_path`` and in
        ``repro backends --probe``.
        """
        mmapped = [
            name
            for name, X in (("A", A), ("B", B), ("C", C))
            if isinstance(X, np.memmap)
        ]
        note = f"; mmap-backed: {','.join(mmapped)}" if mmapped else ""
        _log.debug(
            "%s backend delegates %s to the interpreter: %s%s",
            self.name, cplan.shape, reason, note,
        )

    def kernel_for(self, cplan, A, B, C, fusion, threads, vector_cap):
        if A.ndim != 2:
            self._decline(cplan, A, B, C, "batched operands")
            return None
        if not (A.flags.c_contiguous and B.flags.c_contiguous
                and C.flags.c_contiguous):
            self._decline(cplan, A, B, C, "non-contiguous operands")
            return None
        dt = cplan.dtype
        if A.dtype != dt or B.dtype != dt or C.dtype != dt:
            self._decline(cplan, A, B, C, "operand dtype != plan dtype")
            return None
        pp = cplan.peel_plan
        if not pp.has_core:
            return None
        if fusion == "staged":
            mp, kp, npp = pp.core
            Mt, Kt, Nt = cplan.dims_total
            bm, bk, bn = mp // Mt, kp // Kt, npp // Nt
            # Same stacked-intermediate bound as the interpreter's arena
            # path: past it the interpreter falls back to the per-step
            # loop, and the kernel's O(R) slabs would be just as oversized.
            if cplan.rank_total * (bm * bk + bk * bn + bm * bn) > vector_cap:
                self._decline(cplan, A, B, C,
                              "staged slabs exceed vector_cap")
                return None
        key = kernel_key(cplan, fusion, threads)
        with self._lock:
            per_plan = self._kernels.get(cplan)
            if per_plan is None:
                per_plan = {}
                self._kernels[cplan] = per_plan
            entry = per_plan.get(key)
            if entry is not None:
                entry.hits += 1
                self._hits += 1
        if entry is not None:
            _trace.instant("kernel.hit", "kernel", backend=self.name)
            return entry
        # emit outside the lock
        with _trace.span("kernel.compile", "kernel",
                         backend=self.name, threads=threads):
            entry = self._compile_entry(cplan, fusion, threads)
        _log.debug(
            "compiled %s kernel for %s (fusion=%s, threads=%d)",
            self.name, cplan.shape, fusion, threads,
        )
        with self._lock:
            winner = per_plan.setdefault(key, entry)
            if winner is entry:
                self._compiles += 1
            else:  # a concurrent compile won the race; count as a hit
                winner.hits += 1
                self._hits += 1
        return winner

    def cache_stats(self) -> dict:
        with self._lock:
            return {
                "plans": len(self._kernels),
                "kernels": sum(len(d) for d in self._kernels.values()),
                "compiles": self._compiles,
                "hits": self._hits,
            }
