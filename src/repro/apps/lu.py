"""Blocked LU factorization with FMM trailing updates.

The paper's introduction motivates FMM for *rank-k updates* because they
dominate blocked dense factorizations.  This module is that workload: a
right-looking blocked LU with partial pivoting whose trailing-matrix update

    A22 := A22 - A21 @ A12        (m' x b x n' rank-b update)

runs through any algorithm of the generated family.  It doubles as an
end-to-end accuracy harness: LU's backward error amplifies any inaccuracy
of the multiply, so factoring with multi-level FMM probes the stability
results of the paper's refs [8-10] on a real algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.executor import multiply

__all__ = ["LUResult", "lu_factor", "lu_solve", "backward_error"]


@dataclass
class LUResult:
    """Packed LU factors with pivot rows, as LAPACK's ``getrf`` returns."""

    lu: np.ndarray      # unit-lower L below the diagonal, U on/above
    piv: np.ndarray     # piv[i] = row swapped with row i at step i
    block: int
    updates: int        # number of FMM trailing updates performed

    @property
    def n(self) -> int:
        return self.lu.shape[0]

    def L(self) -> np.ndarray:
        L = np.tril(self.lu, -1)
        np.fill_diagonal(L, 1.0)
        return L

    def U(self) -> np.ndarray:
        return np.triu(self.lu)

    def permutation(self) -> np.ndarray:
        """The row permutation P with ``P @ A = L @ U``."""
        n = self.n
        perm = np.arange(n)
        for i, p in enumerate(self.piv):
            perm[[i, p]] = perm[[p, i]]
        P = np.zeros((n, n))
        P[np.arange(n), perm] = 1.0
        return P


def _unblocked_lu(A: np.ndarray, piv_off: int, piv: np.ndarray) -> None:
    """In-place partial-pivoting LU on a tall panel."""
    m, b = A.shape
    for j in range(min(m, b)):
        p = j + int(np.argmax(np.abs(A[j:, j])))
        piv[piv_off + j] = piv_off + p
        if p != j:
            A[[j, p], :] = A[[p, j], :]
        if A[j, j] != 0:
            A[j + 1 :, j] /= A[j, j]
            if j + 1 < b:
                A[j + 1 :, j + 1 :] -= np.outer(A[j + 1 :, j], A[j, j + 1 :])


def lu_factor(
    A: np.ndarray,
    block: int = 128,
    algorithm="strassen",
    levels: int = 1,
    use_fmm: bool = True,
) -> LUResult:
    """Blocked right-looking LU with partial pivoting, ``P A = L U``.

    The O(n^3) work is the trailing update, executed with the selected FMM
    algorithm when ``use_fmm`` (classical ``numpy`` matmul otherwise — the
    baseline for accuracy/cost comparisons).
    """
    A = np.array(A, dtype=np.float64)
    n, n2 = A.shape
    if n != n2:
        raise ValueError("lu_factor expects a square matrix")
    if block < 1:
        raise ValueError("block must be positive")
    piv = np.arange(n)
    updates = 0
    for j in range(0, n, block):
        b = min(block, n - j)
        panel = A[j:, j : j + b]
        sub_piv = np.arange(n - j)
        _unblocked_lu(panel, 0, sub_piv)
        # Apply the panel's row swaps across the rest of the matrix.
        for i, p in enumerate(sub_piv[:b]):
            piv[j + i] = j + p
            if p != i:
                A[[j + i, j + p], :j] = A[[j + p, j + i], :j]
                A[[j + i, j + p], j + b :] = A[[j + p, j + i], j + b :]
        if j + b < n:
            # U12 := L11^{-1} A12 (unit-lower triangular solve).
            L11 = A[j : j + b, j : j + b]
            A12 = A[j : j + b, j + b :]
            for r in range(1, b):
                A12[r] -= L11[r, :r] @ A12[:r]
            # Trailing rank-b update: A22 -= A21 @ U12 — the FMM hot spot.
            A21 = A[j + b :, j : j + b]
            if use_fmm:
                neg = multiply(-A21, A12, C=A[j + b :, j + b :],
                               algorithm=algorithm, levels=levels)
                A[j + b :, j + b :] = neg
            else:
                A[j + b :, j + b :] -= A21 @ A12
            updates += 1
    return LUResult(lu=A, piv=piv[:n], block=block, updates=updates)


def lu_solve(res: LUResult, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = rhs`` from the packed factorization."""
    x = np.array(rhs, dtype=np.float64)
    for i, p in enumerate(res.piv):
        if p != i:
            x[[i, p]] = x[[p, i]]
    lu = res.lu
    n = res.n
    for i in range(1, n):  # forward substitution, unit diagonal
        x[i] -= lu[i, :i] @ x[:i]
    for i in range(n - 1, -1, -1):  # back substitution
        x[i] = (x[i] - lu[i, i + 1 :] @ x[i + 1 :]) / lu[i, i]
    return x


def backward_error(A: np.ndarray, res: LUResult) -> float:
    """Normwise backward error ``||P A - L U|| / ||A||`` (Frobenius)."""
    PA = res.permutation() @ A
    return float(
        np.linalg.norm(PA - res.L() @ res.U()) / max(np.linalg.norm(A), 1e-300)
    )
