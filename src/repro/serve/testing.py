"""Deterministic test seams for :class:`repro.serve.MultiplyService`.

The service takes its clock and its batch executor as constructor
parameters; this module supplies the test doubles:

* :class:`ServiceTestClock` — manual time.  ``now()`` only moves when
  the test calls :meth:`~ServiceTestClock.advance`, so a coalescing
  window stays open exactly as long as the test wants it open; waits
  block on the real condition variable (woken by submits, cancels,
  shutdown, and ``advance``) with a short bounded poll as a
  missed-wakeup backstop — no test ever sleeps a wall-clock window.
* :class:`FaultInjectingExecutor` — wraps the default batch executor
  with a command queue: per-batch it can run normally, raise a chosen
  exception into every job of the batch, or block ("deadlock") until
  the test releases a gate — which is how cancellation races and
  queue-full states are set up deterministically (hold the scheduler in
  batch #1, arrange the queue, then release).

Nothing here is imported by the service itself.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.serve.service import execute_batch

__all__ = ["FaultInjectingExecutor", "ServiceTestClock"]

#: Bounded poll the test clock uses as a missed-wakeup backstop.  Short
#: enough that a lost notify costs milliseconds, long enough not to busy
#: spin; it never *gates* progress — every state change notifies.
_POLL_S = 0.02


class ServiceTestClock:
    """A manually advanced scheduler clock.

    Drop-in for :class:`repro.serve.MonotonicClock`: ``now()`` returns
    the test-controlled time, and ``wait()`` ignores the requested
    timeout — the scheduler re-derives its deadline from ``now()`` on
    every wakeup, so waking it is always safe and never closes a window
    early.  :meth:`advance` moves time and notifies every condition that
    has ever waited on this clock.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._lock = threading.Lock()
        self._now = float(start)
        self._conds: set[threading.Condition] = set()

    def now(self) -> float:
        with self._lock:
            return self._now

    def wait(self, cond: threading.Condition, timeout: float | None) -> bool:
        with self._lock:
            self._conds.add(cond)
        return cond.wait(_POLL_S)

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and wake all waiters."""
        if dt < 0:
            raise ValueError("time only moves forward")
        with self._lock:
            self._now += float(dt)
            now = self._now
            conds = list(self._conds)
        for cond in conds:
            with cond:
                cond.notify_all()
        return now

    def run_until(self, predicate, step: float = 1.0,
                  timeout_s: float = 10.0) -> None:
        """Advance simulated time in ``step`` increments until
        ``predicate()`` holds, yielding the CPU between advances so the
        scheduler thread observes each one.  The scheduler re-anchors a
        batch deadline at ``now()`` when it *claims* the batch, so a
        single big jump made before the claim would leave the window
        open; stepping until the predicate holds is the deterministic
        driver.  ``timeout_s`` is a wall-clock safety ceiling only — it
        bounds a hung test, it never gates a passing one.
        """
        deadline = time.monotonic() + timeout_s
        while not predicate():
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"predicate still false after {timeout_s}s of simulated "
                    "stepping"
                )
            self.advance(step)
            time.sleep(0.001)


class FaultInjectingExecutor:
    """A programmable batch executor for fault and race testing.

    Commands queue up via :meth:`push_ok` / :meth:`push_raise` /
    :meth:`push_block`; each arriving batch consumes one (default:
    run normally).  Every call is recorded in :attr:`calls` as the list
    of job ids it carried, in batch order — coalescing assertions read
    it directly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._commands: deque = deque()
        self.calls: list[list[str]] = []

    def push_ok(self, n: int = 1) -> None:
        """Let the next ``n`` batches execute normally."""
        with self._lock:
            for _ in range(n):
                self._commands.append(("ok", None))

    def push_raise(self, exc: BaseException) -> None:
        """Make the next batch raise ``exc`` instead of executing."""
        with self._lock:
            self._commands.append(("raise", exc))

    def push_block(self, gate: threading.Event | None = None) -> threading.Event:
        """Make the next batch block until the returned gate is set.

        The batch executes normally once released — the scheduler is
        effectively frozen mid-batch, which is the window in which
        cancellation races and queue pile-ups are staged.
        """
        gate = gate or threading.Event()
        with self._lock:
            self._commands.append(("block", gate))
        return gate

    def __call__(self, jobs):
        with self._lock:
            self.calls.append([j.id for j in jobs])
            cmd, arg = (self._commands.popleft() if self._commands
                        else ("ok", None))
        if cmd == "block":
            arg.wait()
        elif cmd == "raise":
            raise arg
        return execute_batch(jobs)
