"""The serving layer: async multiply submission with coalescing.

Public surface: :class:`MultiplyService` (``submit`` -> job handle,
scheduler-side same-plan coalescing, byte-budget admission control),
:class:`JobHandle`, and the typed service errors.  The deterministic
test seams live in :mod:`repro.serve.testing`.
"""

from repro.serve.service import (
    JOB_STATUSES,
    JobCancelledError,
    JobHandle,
    MonotonicClock,
    MultiplyService,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    execute_batch,
)

__all__ = [
    "JOB_STATUSES",
    "JobCancelledError",
    "JobHandle",
    "MonotonicClock",
    "MultiplyService",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "execute_batch",
]
