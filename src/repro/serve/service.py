"""Async multiply service: a submission front over the compiled-plan runtime.

Every caller so far blocks in :func:`repro.multiply` /
:func:`repro.multiply_batched`.  :class:`MultiplyService` turns the fast
multiply library into a service that survives load: ``submit(A, B,
**spec)`` validates the request up front (spec normalization + plan
compilation happen in the caller, so bad requests fail synchronously),
prices it against a byte budget, and returns a :class:`JobHandle` whose
status moves ``pending -> running -> complete | error | cancelled``.

A single scheduler thread drains the queue and **coalesces same-plan
requests**: the compiled-plan cache key (:mod:`repro.core.compile`) plus
the execution knobs (threads, backend, worker mode) form the coalescing
key, and matching jobs that arrive within the batch window are stacked
into one batched execution through :func:`repro.core.runtime.execute_plan`
— the same amortization :func:`repro.multiply_batched` gives a caller who
already holds a stack, earned here across callers who do not know about
each other.  Batched execution is bitwise-equal to per-request 2-D
execution under the same plan (the batch folds into the task slabs; the
per-element accumulation order is unchanged), so coalescing is invisible
to results.  The window and batch cap default from the wisdom-tunable
constants (:func:`repro.core.spec.effective_serve_batch_window_us` /
:func:`effective_serve_max_batch`), like ``DEFAULT_FUSED_GROUP`` before
them.

**Admission control** prices each job off the arena's byte accounting:
:func:`repro.model.perfmodel.predict_workspace_bytes` (the model twin of
the runtime's arena specs) plus the operand/result bytes, summed over the
queue, against ``byte_budget``.  Jobs whose plan resolved to the
out-of-core ``tiled`` lowering are charged their bounded RAM window only
— slabs spill to mmap, operands stream through the window.  Over budget, the ``policy`` knob decides:
``"queue"`` blocks the submitter until the queue drains, ``"reject"``
raises :class:`ServiceOverloadedError`, ``"serial"`` degrades the call to
a synchronous in-caller multiply that never enters the queue.

Job state, queue depth, coalesce ratio and per-job latency publish into
the PR-8 observability layer — the :mod:`repro.obs.metrics` registry and
:mod:`repro.obs.reports` history — not a parallel record.  Per-job
ExecutionReports in particular route through
``repro.obs.reports.record_job`` keyed by job id, because
``runtime.last_report()`` is thread-local and therefore racy for anyone
but the executing thread (see its docstring).

The scheduler's clock and batch executor are injectable constructor
seams (``clock=``, ``executor=``): :mod:`repro.serve.testing` provides a
manual :class:`~repro.serve.testing.ServiceTestClock` and a
fault-injecting executor so coalescing windows, cancellation races and
error propagation are tested without wall-clock sleeps.
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref
from collections import deque

import numpy as np

from repro.core import compile as plancache
from repro.core import runtime
from repro.core.executor import _compute_dtype
from repro.core.spec import (
    effective_serve_batch_window_us,
    effective_serve_max_batch,
    normalize_backend,
    normalize_fusion,
    normalize_overload_policy,
    normalize_threads,
    normalize_workers,
)
from repro.model.perfmodel import predict_workspace_bytes
from repro.obs import metrics as obs_metrics
from repro.obs import reports as obs_reports

__all__ = [
    "JOB_STATUSES",
    "JobCancelledError",
    "JobHandle",
    "MultiplyService",
    "MonotonicClock",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "execute_batch",
]

#: The job lifecycle. ``pending`` jobs sit in the queue (cancellable);
#: ``running`` jobs are owned by the scheduler; the other three are
#: terminal.
JOB_STATUSES = ("pending", "running", "complete", "error", "cancelled")


class ServiceError(RuntimeError):
    """Base class for serving-layer errors."""


class ServiceOverloadedError(ServiceError):
    """A submission would push queued work past the service byte budget.

    Raised by ``policy="reject"`` (and by ``policy="queue"`` when the job
    *alone* exceeds the budget, where waiting could never help).  Carries
    the accounting that triggered it.
    """

    def __init__(self, message: str, *, job_bytes: int = 0,
                 pending_bytes: int = 0, byte_budget: int = 0) -> None:
        super().__init__(message)
        self.job_bytes = int(job_bytes)
        self.pending_bytes = int(pending_bytes)
        self.byte_budget = int(byte_budget)


class ServiceClosedError(ServiceError):
    """``submit`` after ``shutdown`` began."""


class JobCancelledError(ServiceError):
    """``result()`` on a job that was cancelled before it ran."""


class MonotonicClock:
    """The default scheduler clock: real monotonic time + condition wait.

    The service never calls ``time`` APIs directly — everything temporal
    goes through this two-method seam so tests can substitute
    :class:`repro.serve.testing.ServiceTestClock` and drive windows
    manually.
    """

    def now(self) -> float:
        return time.monotonic()

    def wait(self, cond: threading.Condition, timeout: float | None) -> bool:
        return cond.wait(timeout)


# ---------------------------------------------------------------------- #
# Service metrics (module-level: the registry is process-wide)
# ---------------------------------------------------------------------- #
_m_submitted = obs_metrics.counter(
    "serve.submitted", "jobs accepted into the service queue")
_m_completed = obs_metrics.counter(
    "serve.completed", "jobs finished with a result")
_m_errors = obs_metrics.counter(
    "serve.errors", "jobs finished with an exception")
_m_cancelled = obs_metrics.counter(
    "serve.cancelled", "jobs cancelled before execution")
_m_rejected = obs_metrics.counter(
    "serve.rejected", "submissions rejected by the byte-budget policy")
_m_degraded = obs_metrics.counter(
    "serve.degraded_serial", "over-budget submissions degraded to serial")
_m_batches = obs_metrics.counter(
    "serve.batches", "coalesced batch executions")
_h_batch_size = obs_metrics.histogram(
    "serve.batch_size", "jobs per coalesced batch")
_h_job_latency = obs_metrics.histogram(
    "serve.job_latency_s", "submit-to-complete latency per job")

#: Live services, for the aggregate queue gauges.
_services: "weakref.WeakSet[MultiplyService]" = weakref.WeakSet()


def _total_queue_depth() -> int:
    return sum(s.queue_depth for s in list(_services))


def _total_pending_bytes() -> int:
    return sum(s.pending_bytes for s in list(_services))


def _coalesce_ratio() -> float:
    """Jobs executed per batch execution, over the process lifetime."""
    done = _m_completed.value() + _m_errors.value()
    batches = _m_batches.value()
    return (done / batches) if batches else 0.0


obs_metrics.gauge("serve.queue_depth",
                  "pending jobs across live services", _total_queue_depth)
obs_metrics.gauge("serve.pending_bytes",
                  "priced bytes queued across live services",
                  _total_pending_bytes)
obs_metrics.gauge("serve.coalesce_ratio",
                  "completed jobs per batch execution", _coalesce_ratio)

_job_ids = itertools.count(1)


class JobHandle:
    """A submitted multiply: queryable status, blocking result, report.

    Created by :meth:`MultiplyService.submit`; never constructed
    directly.  Thread-safe: any thread may poll :attr:`status`, block in
    :meth:`result`, or :meth:`cancel`.
    """

    __slots__ = (
        "id", "_service", "_key", "_cplan", "_A", "_B", "_threads",
        "_backend", "_workers", "_cost_bytes", "_submitted_at",
        "_status", "_result", "_exc", "_batch_size", "_done",
        "__weakref__",
    )

    def __init__(self, service, key, cplan, A, B, threads, backend,
                 workers, cost_bytes, submitted_at) -> None:
        self.id = f"job-{next(_job_ids)}"
        self._service = service
        self._key = key
        self._cplan = cplan
        self._A = A
        self._B = B
        self._threads = threads
        self._backend = backend
        self._workers = workers
        self._cost_bytes = cost_bytes
        self._submitted_at = submitted_at
        self._status = "pending"
        self._result = None
        self._exc: BaseException | None = None
        self._batch_size = 0
        self._done = threading.Event()

    @property
    def status(self) -> str:
        """One of :data:`JOB_STATUSES`."""
        return self._status

    @property
    def shape(self) -> tuple[int, int, int]:
        return self._cplan.shape

    @property
    def dtype(self) -> np.dtype:
        return self._cplan.dtype

    @property
    def batch_size(self) -> int:
        """Jobs in the coalesced batch this job executed in (0 before
        execution, 1 when it ran alone)."""
        return self._batch_size

    def done(self) -> bool:
        return self._done.is_set()

    def cancel(self) -> bool:
        """Withdraw the job if it is still pending.

        True when the job was removed from the queue before the
        scheduler claimed it; False once it is running or terminal
        (results are never discarded retroactively).
        """
        return self._service._cancel(self)

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until terminal and return ``C = A @ B``.

        Raises ``TimeoutError`` if not terminal within ``timeout``
        seconds, :class:`JobCancelledError` if the job was cancelled, or
        re-raises the execution's exception if it errored.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"{self.id} not done within {timeout!r}s (status {self._status})"
            )
        if self._status == "complete":
            return self._result
        if self._status == "cancelled":
            raise JobCancelledError(f"{self.id} was cancelled")
        raise self._exc

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The execution's exception (None on success); blocks like
        :meth:`result`."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"{self.id} not done within {timeout!r}s")
        return self._exc

    def report(self):
        """This job's :class:`~repro.core.runtime.ExecutionReport`.

        Looked up from the bounded report history keyed by job id
        (:func:`repro.obs.reports.report_for`) — *not* from the racy
        thread-local ``runtime.last_report()``.  None until the job
        completes (or after eviction from the bounded history).  Jobs
        coalesced into one batch share one report.
        """
        return obs_reports.report_for(self.id)

    def __repr__(self) -> str:
        m, k, n = self.shape
        return (f"JobHandle({self.id}, {m}x{k}x{n}, {self.dtype.name}, "
                f"{self._status})")


def execute_batch(jobs: list[JobHandle]):
    """The default batch executor: run ``jobs`` (same coalescing key)
    through one plan execution; return ``(results, report)``.

    A single job executes 2-D; several stack into a ``(batch, m, k)``
    operand and run the batched lowering — bitwise-equal per element
    either way.  The report is read via ``last_report()`` *in this
    thread* immediately after the execution, which is the one place that
    thread-local is race-free; the service then attributes it to each
    job id in the history.
    """
    lead = jobs[0]
    cplan = lead._cplan
    m, k, n = cplan.shape
    kwargs = dict(threads=lead._threads, backend=lead._backend,
                  workers=lead._workers)
    if len(jobs) == 1:
        C = np.zeros((m, n), dtype=cplan.dtype)
        runtime.execute_plan(cplan, lead._A, lead._B, C, **kwargs)
        results = [C]
    else:
        A3 = np.stack([j._A for j in jobs])
        B3 = np.stack([j._B for j in jobs])
        C3 = np.zeros((len(jobs), m, n), dtype=cplan.dtype)
        runtime.execute_plan(cplan, A3, B3, C3, **kwargs)
        results = list(C3)
    return results, runtime.last_report()


class MultiplyService:
    """Asynchronous multiply submission front with request coalescing.

    Parameters
    ----------
    batch_window_s:
        Seconds the scheduler holds a batch open for same-plan arrivals
        after claiming its first job.  Default: the wisdom-tunable
        ``serve_batch_window_us`` (resolved per batch, so a tunable
        update reaches a running service).
    max_batch:
        Most jobs coalesced into one execution.  Default: the
        wisdom-tunable ``serve_max_batch``.
    byte_budget:
        Admission budget in bytes: the sum over queued jobs of predicted
        workspace + operand/result bytes may not exceed it.  ``None``
        (default) disables admission control.
    policy:
        Over-budget behavior: ``"queue"`` | ``"reject"`` | ``"serial"``
        (see :data:`repro.core.spec.OVERLOAD_POLICIES`).  Default
        ``"reject"``.
    threads, backend, workers:
        Execution defaults for jobs that do not specify their own.
    clock, executor:
        Test seams (see module docstring).  ``executor(jobs)`` must
        return ``(results, report_or_None)`` aligned with ``jobs``.

    Use as a context manager for a drained shutdown::

        with MultiplyService() as svc:
            h = svc.submit(A, B, levels=2)
            C = h.result(timeout=30)
    """

    def __init__(
        self,
        *,
        batch_window_s: float | None = None,
        max_batch: int | None = None,
        byte_budget: int | None = None,
        policy: str | None = None,
        threads: int | None = None,
        backend: str | None = None,
        workers: str | None = None,
        clock=None,
        executor=None,
    ) -> None:
        self._batch_window_s = (
            None if batch_window_s is None else float(batch_window_s))
        if self._batch_window_s is not None and self._batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        self._max_batch = None if max_batch is None else int(max_batch)
        if self._max_batch is not None and self._max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._byte_budget = None if byte_budget is None else int(byte_budget)
        if self._byte_budget is not None and self._byte_budget < 0:
            raise ValueError("byte_budget must be >= 0")
        self._policy = normalize_overload_policy(policy)
        self._threads = normalize_threads(threads) or 1
        self._backend = normalize_backend(backend)
        self._workers = normalize_workers(workers) or "threads"
        self._clock = clock if clock is not None else MonotonicClock()
        self._executor = executor if executor is not None else execute_batch

        self._cond = threading.Condition()
        self._queue: deque[JobHandle] = deque()
        self._pending_bytes = 0
        self._closed = False
        self._draining = True
        # Per-instance counts (the registry counters are process-wide).
        self._counts = {
            "submitted": 0, "completed": 0, "errors": 0, "cancelled": 0,
            "rejected": 0, "degraded_serial": 0, "batches": 0,
        }
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-scheduler", daemon=True)
        self._thread.start()
        _services.add(self)

    # ------------------------------------------------------------------ #
    # Tunable-backed knobs (resolved per read so live overrides apply)
    # ------------------------------------------------------------------ #
    @property
    def batch_window_s(self) -> float:
        if self._batch_window_s is not None:
            return self._batch_window_s
        return effective_serve_batch_window_us() / 1e6

    @property
    def max_batch(self) -> int:
        if self._max_batch is not None:
            return self._max_batch
        return effective_serve_max_batch()

    @property
    def byte_budget(self) -> int | None:
        return self._byte_budget

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def pending_bytes(self) -> int:
        with self._cond:
            return self._pending_bytes

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """Per-instance lifecycle counts plus queue state and the
        coalesce ratio (jobs executed per batch execution)."""
        with self._cond:
            out = dict(self._counts)
            out["queue_depth"] = len(self._queue)
            out["pending_bytes"] = self._pending_bytes
        done = out["completed"] + out["errors"]
        out["coalesce_ratio"] = done / out["batches"] if out["batches"] else 0.0
        return out

    # ------------------------------------------------------------------ #
    # Submission + admission control
    # ------------------------------------------------------------------ #
    def _price(self, cplan, threads, dt, m, k, n) -> int:
        """Bytes one queued job is charged for: the model's predicted
        peak workspace for its plan (the arena's byte-accounting twin)
        plus its operand and result slabs.

        A plan that resolved to the ``tiled`` lowering is charged its
        bounded RAM window only (``predict_workspace_bytes`` prices
        tiled as :func:`repro.model.perfmodel.predict_tile_window_bytes`
        and the operand term is dropped): its slab-scale temporaries
        spill to mmap and its operands stream through the window, so
        charging the full slabs would starve the queue of exactly the
        jobs the out-of-core path exists to admit.
        """
        workspace = predict_workspace_bytes(
            m, k, n, cplan.ml, fusion=cplan.fusion, threads=threads, dtype=dt
        )
        if cplan.fusion == "tiled":
            return workspace
        operands = (m * k + k * n + m * n) * dt.itemsize
        return workspace + operands

    def submit(
        self,
        A,
        B,
        *,
        algorithm="strassen",
        levels: int = 1,
        variant: str = "abc",
        dtype=None,
        fusion: str = "auto",
        threads: int | None = None,
        backend: str | None = None,
        workers: str | None = None,
    ) -> JobHandle:
        """Queue ``C = A @ B`` and return its :class:`JobHandle`.

        Validation is synchronous: shape/spec errors raise here in the
        caller, never inside the scheduler.  The accepted spec is the
        direct-engine multiply surface (schedule strings and hybrid
        stacks included); ``threads``/``backend``/``workers`` default to
        the service-wide settings.
        """
        A = np.asarray(A)
        B = np.asarray(B)
        if A.ndim != 2 or B.ndim != 2:
            raise ValueError(
                f"submit takes one 2-D multiply per job, got {A.shape} x "
                f"{B.shape}; a stack you already hold batches faster "
                "through multiply_batched()"
            )
        if A.shape[1] != B.shape[0]:
            raise ValueError(f"incompatible operand shapes {A.shape} x {B.shape}")
        dt = _compute_dtype(A, B, dtype=dtype)
        threads = normalize_threads(threads) or self._threads
        backend = (normalize_backend(backend) if backend is not None
                   else self._backend)
        workers = normalize_workers(workers) or self._workers
        fusion = normalize_fusion(fusion)
        m, k, n = A.shape[0], A.shape[1], B.shape[1]
        cplan = plancache.compile(
            (m, k, n), algorithm, levels, variant, dtype=dt, fusion=fusion
        )
        A = np.ascontiguousarray(A, dtype=dt)
        B = np.ascontiguousarray(B, dtype=dt)
        # The coalescing key: the compiled plan's cache key (shape,
        # schedule, variant, dtype, resolved fusion) extended with the
        # execution knobs a batch must share.
        key = (cplan.key, threads, backend, workers)
        cost = self._price(cplan, threads, dt, m, k, n)
        job = JobHandle(self, key, cplan, A, B, threads, backend, workers,
                        cost, self._clock.now())

        degraded = False
        with self._cond:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            budget = self._byte_budget
            if budget is not None and self._pending_bytes + cost > budget:
                if self._policy == "reject" or (
                    self._policy == "queue" and cost > budget
                ):
                    self._counts["rejected"] += 1
                    _m_rejected.inc()
                    raise ServiceOverloadedError(
                        f"job needs {cost} priced bytes; queue holds "
                        f"{self._pending_bytes} of a {budget}-byte budget",
                        job_bytes=cost,
                        pending_bytes=self._pending_bytes,
                        byte_budget=budget,
                    )
                if self._policy == "queue":
                    while (not self._closed
                           and self._pending_bytes + cost > budget):
                        self._clock.wait(self._cond, None)
                    if self._closed:
                        raise ServiceClosedError("service is shut down")
                elif self._policy == "serial":
                    self._counts["degraded_serial"] += 1
                    self._counts["submitted"] += 1
                    degraded = True
            if not degraded:
                self._counts["submitted"] += 1
                self._queue.append(job)
                self._pending_bytes += cost
                self._cond.notify_all()
        _m_submitted.inc()
        if degraded:
            _m_degraded.inc()
            return self._run_serial(job)
        return job

    def _run_serial(self, job: JobHandle) -> JobHandle:
        """Degraded path: execute in the submitting thread, off-queue.

        Runs without holding the service lock beyond status flips, so a
        degraded caller never stalls the scheduler.
        """
        job._status = "running"
        try:
            results, report = execute_batch([job])
        except BaseException as exc:  # noqa: BLE001 - delivered via result()
            self._finish_error([job], exc)
        else:
            self._finish_complete([job], results, report)
        return job

    # ------------------------------------------------------------------ #
    # Cancellation
    # ------------------------------------------------------------------ #
    def _cancel(self, job: JobHandle) -> bool:
        with self._cond:
            if job._status != "pending":
                return False
            try:
                self._queue.remove(job)
            except ValueError:
                return False
            job._status = "cancelled"
            self._pending_bytes -= job._cost_bytes
            self._counts["cancelled"] += 1
            self._cond.notify_all()
        job._done.set()
        _m_cancelled.inc()
        return True

    # ------------------------------------------------------------------ #
    # The scheduler
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._clock.wait(self._cond, None)
                if not self._queue:
                    return  # closed and drained (or queue was cleared)
                batch = self._collect_batch_locked()
            if batch:
                self._run_batch(batch)

    def _collect_batch_locked(self) -> list[JobHandle]:
        """Claim the next coalesced batch (called with the lock held).

        The queue head's key selects the batch; the window holds it open
        for more same-key arrivals until ``max_batch`` jobs matched, the
        deadline passed, or shutdown began.  Pending jobs stay in the
        queue (still cancellable) until the batch closes.
        """
        key = self._queue[0]._key
        max_batch = self.max_batch
        deadline = self._clock.now() + self.batch_window_s
        while True:
            matched = [j for j in self._queue if j._key == key]
            if (len(matched) >= max_batch or self._closed
                    or not matched):
                break
            remaining = deadline - self._clock.now()
            if remaining <= 0:
                break
            self._clock.wait(self._cond, remaining)
        matched = matched[:max_batch]
        for job in matched:
            self._queue.remove(job)
            self._pending_bytes -= job._cost_bytes
            job._status = "running"
        self._cond.notify_all()  # queue-policy submitters may fit now
        return matched

    def _run_batch(self, jobs: list[JobHandle]) -> None:
        try:
            results, report = self._executor(jobs)
        except BaseException as exc:  # noqa: BLE001 - delivered via result()
            self._finish_error(jobs, exc)
        else:
            self._finish_complete(jobs, results, report)

    def _finish_complete(self, jobs, results, report) -> None:
        now = self._clock.now()
        if report is not None:
            for job in jobs:
                obs_reports.record_job(job.id, report)
        with self._cond:
            for job, C in zip(jobs, results):
                job._result = C
                job._batch_size = len(jobs)
                job._status = "complete"
            self._counts["completed"] += len(jobs)
            self._counts["batches"] += 1
        for job in jobs:
            job._done.set()
            _m_completed.inc()
            _h_job_latency.observe(max(0.0, now - job._submitted_at))
        _m_batches.inc()
        _h_batch_size.observe(len(jobs))

    def _finish_error(self, jobs, exc) -> None:
        with self._cond:
            for job in jobs:
                job._exc = exc
                job._batch_size = len(jobs)
                job._status = "error"
            self._counts["errors"] += len(jobs)
            self._counts["batches"] += 1
        for job in jobs:
            job._done.set()
            _m_errors.inc()
        _m_batches.inc()
        _h_batch_size.observe(len(jobs))

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def shutdown(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop accepting submissions and end the scheduler.

        ``drain=True`` executes everything already queued first;
        ``drain=False`` cancels the queue.  Returns True when the
        scheduler thread exited within ``timeout`` (None = wait
        forever).  Idempotent.
        """
        with self._cond:
            self._closed = True
            self._draining = drain
            if not drain:
                cancelled = list(self._queue)
                self._queue.clear()
                self._pending_bytes = 0
                for job in cancelled:
                    job._status = "cancelled"
                self._counts["cancelled"] += len(cancelled)
            else:
                cancelled = []
            self._cond.notify_all()
        for job in cancelled:
            job._done.set()
            _m_cancelled.inc()
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def __enter__(self) -> "MultiplyService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"MultiplyService({state}, queue={self.queue_depth}, "
                f"policy={self._policy!r}, budget={self._byte_budget})")
