"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``catalog``   Print the Fig.-2 family with achieved vs. paper ranks.
``multiply``  Multiply random matrices with a chosen algorithm and verify.
``select``    Model-guided implementation selection for a problem size.
``tune``      Measure the model's favorites; persist the winner as wisdom.
``wisdom``    Inspect or clear the persistent autotuning wisdom store.
``backends``  List leaf-kernel backends, availability and kernel caches.
``trace``     Record a multiply under the span tracer; write a Chrome trace.
``stats``     Print the process-wide metrics snapshot and report history.
``serve``     Drive the async MultiplyService under synthetic load.
``jobs``      Submit a handful of mixed jobs; print the per-job table.
``codegen``   Emit generated Python source for an algorithm/variant.
``model``     Print modeled Effective GFLOPS for a configuration sweep.
``discover``  Run the ALS search for a (m, k, n, rank) target.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


def _add_shape(p: argparse.ArgumentParser) -> None:
    p.add_argument("-m", type=int, default=1024)
    p.add_argument("-k", type=int, default=1024)
    p.add_argument("-n", type=int, default=1024)


def _parse_algorithm(spec: str, levels: int):
    # All spec grammar (names, "<m,k,n>", "+"-joined hybrid stacks) lives in
    # repro.core.spec; the CLI just forwards.
    from repro.core.spec import resolve_levels

    return resolve_levels(spec, levels)


def cmd_catalog(args) -> int:
    from repro.algorithms.catalog import catalog_summary

    print(catalog_summary())
    return 0


def cmd_multiply(args) -> int:
    from repro.core.executor import BlockedEngine, multiply, multiply_batched

    rng = np.random.default_rng(args.seed)
    dtype = np.float32 if args.dtype == "float32" else np.float64
    shape_a, shape_b = (args.m, args.k), (args.k, args.n)
    if args.batch > 1:
        shape_a, shape_b = (args.batch,) + shape_a, (args.batch,) + shape_b
    A = rng.standard_normal(shape_a).astype(dtype)
    B = rng.standard_normal(shape_b).astype(dtype)

    if args.engine == "auto":
        ml, label = None, "auto-dispatch"
    else:
        ml = _parse_algorithm(args.algorithm, args.levels)
        label = str(ml)
    if args.batch > 1:
        C = multiply_batched(
            A, B, algorithm=ml if ml is not None else "strassen",
            variant=args.variant, engine=args.engine, threads=args.threads,
            tune=args.tune, fusion=args.fusion, backend=args.backend,
            workers=args.workers, procs=args.procs,
        )
    elif args.engine == "blocked":
        if args.backend not in (None, "reference"):
            raise SystemExit(
                f"--backend {args.backend} is only valid with --engine direct"
            )
        if args.workers == "processes" or args.procs is not None:
            raise SystemExit(
                "--workers processes / --procs are only valid with "
                "--engine direct or auto"
            )
        # BlockedEngine normalizes threads itself (None -> 1, 0/neg raise).
        eng = BlockedEngine(variant=args.variant, threads=args.threads)
        C = np.zeros((args.m, args.n), dtype=dtype)
        eng.multiply(A, B, C, ml)
        print("counters:", eng.counters)
    else:
        C = multiply(
            A, B, algorithm=ml if ml is not None else "strassen",
            variant=args.variant, engine=args.engine, threads=args.threads,
            tune=args.tune, fusion=args.fusion, backend=args.backend,
            workers=args.workers, procs=args.procs,
        )
    from repro.core.runtime import last_report

    rep = last_report()
    if rep is not None:
        print(f"runtime: {rep.fusion} lowering, {rep.threads} thread(s), "
              f"backend {rep.backend} ({rep.backend_path}), "
              f"peak workspace {rep.peak_workspace_bytes / 2**20:.2f} MiB")
        if args.report:
            print(f"report: worker_mode={rep.worker_mode} "
                  f"n_workers={rep.n_workers} "
                  f"ipc_bytes={rep.ipc_bytes} "
                  f"core_path={rep.core_path} n_tasks={rep.n_tasks} "
                  f"n_chunks={rep.n_chunks}")
            if rep.fusion == "tiled":
                print(f"tiled: n_tiles={rep.n_tiles} "
                      f"io_bytes={rep.io_bytes} "
                      f"window {rep.tile_window_bytes / 2**20:.2f} MiB")
            from repro.core.compile import plan_cache_info
            from repro.obs import reports as obs_reports

            st = obs_reports.stats_for(rep)
            ci = plan_cache_info()
            hit_rate = ci.hits / max(ci.hits + ci.misses, 1)
            if st is not None:
                print(f"history: n={st.count} "
                      f"p50={st.p50_s * 1e3:.2f}ms "
                      f"p95={st.p95_s * 1e3:.2f}ms "
                      f"peak {st.peak_bytes_hw / 2**20:.2f} MiB; "
                      f"plan-cache hit-rate {hit_rate:.0%} "
                      f"({ci.hits}/{ci.hits + ci.misses})")
    err = float(np.abs(C - A @ B).max())
    scale = max(1.0, float(np.abs(C).max()))
    tol = 1e-6 if dtype == np.float64 else 1e-2
    batch_note = f" x{args.batch} batch" if args.batch > 1 else ""
    print(f"{label} on {args.m}x{args.k}x{args.n}{batch_note} "
          f"[{C.dtype}]: max |C - AB| = {err:.3e}")
    return 0 if err / scale < tol else 1


def cmd_trace(args) -> int:
    from repro.core.executor import multiply, multiply_batched
    from repro.obs import trace

    rng = np.random.default_rng(args.seed)
    dtype = np.float32 if args.dtype == "float32" else np.float64
    shape_a, shape_b = (args.m, args.k), (args.k, args.n)
    if args.batch > 1:
        shape_a, shape_b = (args.batch,) + shape_a, (args.batch,) + shape_b
    A = rng.standard_normal(shape_a).astype(dtype)
    B = rng.standard_normal(shape_b).astype(dtype)
    if args.engine == "auto":
        ml = None
    else:
        ml = _parse_algorithm(args.algorithm, args.levels)
    call = multiply_batched if args.batch > 1 else multiply
    repeat = max(args.repeat, 1)
    trace.enable(args.capacity)
    trace.clear()
    try:
        # Run at least twice by default: the cold call records the plan
        # compile, the warm one the plan-cache hit + steady-state phases.
        for _ in range(repeat):
            call(A, B, algorithm=ml if ml is not None else "strassen",
                 variant=args.variant, engine=args.engine,
                 threads=args.threads, tune="off", fusion=args.fusion,
                 backend=args.backend, workers=args.workers,
                 procs=args.procs)
        doc = trace.export_chrome(args.out)
    finally:
        trace.disable()
    events = doc["traceEvents"]
    cats: dict[str, int] = {}
    pids = set()
    for ev in events:
        cats[ev["cat"]] = cats.get(ev["cat"], 0) + 1
        pids.add(ev["pid"])
    print(f"wrote {args.out}: {len(events)} events from {len(pids)} "
          f"process(es) over {repeat} run(s) "
          f"(open in chrome://tracing or Perfetto)")
    for cat in sorted(cats):
        print(f"  {cat:8s} {cats[cat]:6d} events")
    return 0


def cmd_stats(args) -> int:
    # Touch the runtime so its counters/gauges exist even in a process
    # that has not executed anything yet.
    import repro.core.runtime  # noqa: F401
    from dataclasses import asdict

    from repro.obs import metrics, reports

    snap = metrics.snapshot()
    agg = reports.aggregate()
    if args.json:
        print(json.dumps(
            {"metrics": snap,
             "reports": {k: asdict(st) for k, st in sorted(agg.items())}},
            indent=2, sort_keys=True, default=str))
        return 0
    print("counters:")
    for name, val in snap["counters"].items():
        print(f"  {name:28s} {val}")
    print("gauges:")
    for name, val in snap["gauges"].items():
        print(f"  {name:28s} {val}")
    print("histograms:")
    for name, val in snap["histograms"].items():
        print(f"  {name:28s} {val}")
    if agg:
        print(f"report history ({len(reports.recent())} retained):")
        for key, st in sorted(agg.items()):
            tiled = (f" tiles={st.total_tiles} io={st.total_io_bytes}"
                     if st.total_tiles else "")
            print(f"  {key}: n={st.count} p50={st.p50_s * 1e3:.2f}ms "
                  f"p95={st.p95_s * 1e3:.2f}ms best={st.best_s * 1e3:.2f}ms "
                  f"peak {st.peak_bytes_hw / 2**20:.2f} MiB "
                  f"backends={st.backends} modes={st.worker_modes}{tiled}")
    else:
        print("report history: empty (nothing executed in this process)")
    return 0


def cmd_serve(args) -> int:
    """Spin a MultiplyService, fire a burst of same-plan jobs at it from
    concurrent submitter threads, verify a sample, and print what the
    coalescing scheduler made of the load."""
    import threading

    from repro.core.executor import multiply
    from repro.obs import metrics
    from repro.serve import MultiplyService, ServiceOverloadedError

    rng = np.random.default_rng(args.seed)
    dtype = np.float32 if args.dtype == "float32" else np.float64
    workers, threads = args.workers, args.threads
    if args.procs:
        workers, threads = "processes", args.procs
    A = rng.standard_normal((args.m, args.k)).astype(dtype)
    B = rng.standard_normal((args.k, args.n)).astype(dtype)

    svc = MultiplyService(
        batch_window_s=(None if args.window_us is None
                        else args.window_us / 1e6),
        max_batch=args.max_batch,
        byte_budget=(None if args.byte_budget_mb is None
                     else int(args.byte_budget_mb * 2**20)),
        policy=args.policy,
        threads=threads,
        workers=workers,
    )
    handles, errors = [], []
    lock = threading.Lock()

    def submitter(count):
        for _ in range(count):
            try:
                h = svc.submit(A, B, algorithm=args.algorithm,
                               levels=args.levels, variant=args.variant)
            except ServiceOverloadedError as exc:
                with lock:
                    errors.append(exc)
            else:
                with lock:
                    handles.append(h)

    n_sub = max(1, args.submitters)
    per = [args.jobs // n_sub + (1 if i < args.jobs % n_sub else 0)
           for i in range(n_sub)]
    ts = [threading.Thread(target=submitter, args=(c,)) for c in per if c]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    results = [h.result(timeout=120.0) for h in handles]
    svc.shutdown(drain=True)

    if handles:
        C_ref = multiply(A, B, algorithm=args.algorithm, levels=args.levels,
                         variant=args.variant, threads=threads,
                         workers=workers)
        if not np.array_equal(results[0], C_ref):
            print("FAIL: service result != direct multiply")
            return 1
    st = svc.stats()
    snap = metrics.snapshot()
    lat = snap["histograms"].get("serve.job_latency_s", {})
    payload = {
        "shape": [args.m, args.k, args.n],
        "dtype": dtype.__name__ if hasattr(dtype, "__name__") else str(dtype),
        "jobs": args.jobs,
        "submitters": n_sub,
        "policy": svc.policy,
        "workers": workers or "threads",
        "threads": threads or 1,
        "stats": st,
        "rejected_at_submit": len(errors),
        "latency_s": {k: lat.get(k) for k in ("count", "mean", "p50", "p95")},
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return 0
    print(f"served {st['completed']} jobs in {st['batches']} batched runs "
          f"(coalesce ratio {st['coalesce_ratio']:.1f}x, "
          f"max batch {svc.max_batch}, window {svc.batch_window_s * 1e3:.1f}ms)")
    print(f"  policy={svc.policy} rejected={st['rejected']} "
          f"degraded={st['degraded_serial']} cancelled={st['cancelled']} "
          f"errors={st['errors']}")
    if lat:
        print(f"  job latency p50={1e3 * (lat.get('p50') or 0):.2f}ms "
              f"p95={1e3 * (lat.get('p95') or 0):.2f}ms")
    print("  sample result verified against direct multiply: ok")
    return 0


def cmd_jobs(args) -> int:
    """Submit a few mixed-spec jobs (plus one cancellation) and print
    each handle's lifecycle — the job-table view of the service."""
    from repro.serve import JobCancelledError, MultiplyService
    from repro.serve.testing import FaultInjectingExecutor

    rng = np.random.default_rng(args.seed)
    specs = [
        (64, 64, 64, np.float64, "strassen", 1),
        (64, 64, 64, np.float64, "strassen", 1),
        (64, 64, 64, np.float32, "strassen", 1),
        (96, 96, 96, np.float64, "strassen", 2),
        (90, 96, 90, np.float64, "<3,2,3>", 1),
    ]
    ex = FaultInjectingExecutor()
    svc = MultiplyService(executor=ex)
    gate = ex.push_block()  # hold batch #1 so the table shows a cancel
    handles = []
    for m, k, n, dt, algo, lv in specs:
        A = rng.standard_normal((m, k)).astype(dt)
        B = rng.standard_normal((k, n)).astype(dt)
        handles.append(svc.submit(A, B, algorithm=algo, levels=lv))
    victim = handles[-1]
    cancelled = victim.cancel()
    gate.set()
    for h in handles:
        if h is not victim or not cancelled:
            try:
                h.result(timeout=60.0)
            except JobCancelledError:
                pass
    svc.shutdown(drain=True)

    print(f"{'job':8s} {'shape':14s} {'dtype':8s} {'status':10s} "
          f"{'batch':5s} {'duration':>10s}  report")
    for h in handles:
        m, k, n = h.shape
        rep = h.report()
        dur = f"{rep.duration_s * 1e3:9.2f}ms" if rep else f"{'-':>11s}"
        via = (f"{rep.worker_mode}/{rep.backend}" if rep else "-")
        print(f"{h.id:8s} {m}x{k}x{n:<8d} {h.dtype.name:8s} {h.status:10s} "
              f"{h.batch_size or '-':<5} {dur}  {via}")
    st = svc.stats()
    print(f"\n{st['completed']} complete, {st['cancelled']} cancelled, "
          f"{st['batches']} batched runs "
          f"(coalesce ratio {st['coalesce_ratio']:.1f}x)")
    return 0


def cmd_select(args) -> int:
    from repro.core.selection import select
    from repro.model.machines import ivy_bridge_e5_2680_v2

    mach = ivy_bridge_e5_2680_v2(args.cores)
    winner, ranked = select(args.m, args.k, args.n, mach, top=args.top)
    if args.json:
        doc = {
            "problem": [args.m, args.k, args.n],
            "machine": mach.name,
            "selected": {
                "label": winner.label,
                "schedule": winner.signature,
                "shapes": [list(s) for s in winner.shapes],
                "levels": winner.levels,
                "variant": winner.variant,
                "predicted_gflops": winner.prediction.effective_gflops,
                "predicted_time_s": winner.prediction.time,
            },
            "ranked": [
                {
                    "label": c.label,
                    "predicted_gflops": c.prediction.effective_gflops,
                    "predicted_time_s": c.prediction.time,
                }
                for c in ranked[: max(args.top, 5)]
            ],
        }
        print(json.dumps(doc, indent=2))
        return 0
    print(f"problem {args.m}x{args.k}x{args.n} on {mach.name}")
    print(f"selected: {winner.label} "
          f"(predicted {winner.prediction.effective_gflops:.2f} GFLOPS)")
    print("model top-5:")
    for c in ranked[:5]:
        print(f"  {c.label:<28} {c.prediction.effective_gflops:8.2f} GF")
    return 0


def _parse_budget(text: str) -> float:
    """Parse a tuning budget: plain seconds, or with an s/ms suffix."""
    t = text.strip().lower()
    try:
        if t.endswith("ms"):
            val = float(t[:-2]) / 1e3
        elif t.endswith("s"):
            val = float(t[:-1])
        else:
            val = float(t)
    except ValueError:
        raise SystemExit(f"invalid --budget {text!r} (try 5, 5s or 500ms)")
    if val <= 0:
        raise SystemExit(f"--budget must be positive, got {text!r}")
    return val


def _wisdom_store(args):
    from repro.tune.wisdom import WisdomStore, default_store

    return WisdomStore(args.store) if args.store else default_store()


#: Problem classes covered by ``repro tune --sweep small`` — one square,
#: one rank-k and one outer-panel class at serve-friendly sizes.
SWEEP_PRESETS = {
    "small": [(64, 64, 64), (128, 128, 128), (256, 256, 256),
              (256, 32, 256), (96, 384, 96)],
}


def cmd_tune(args) -> int:
    from repro.tune.tuner import calibrate_machine, tune_problem, tune_sweep

    store = _wisdom_store(args)
    budget = _parse_budget(args.budget)
    dtype = np.float32 if args.dtype == "float32" else np.float64

    if args.calibrate or (store.machine_params() is None and not args.no_calibrate):
        mp = calibrate_machine(store=store)
        if not args.json:
            print(f"calibrated machine: {mp.name} "
                  f"(peak {mp.peak_gflops_per_core:.1f} GF/core, "
                  f"bw {mp.bandwidth_gbs:.1f} GB/s, lambda {mp.lam:.2f})")

    if args.sweep:
        problems = SWEEP_PRESETS[args.sweep]
        reports = tune_sweep(problems, budget_s=budget, dtype=dtype,
                             threads=args.threads, top=args.top, store=store)
    else:
        reports = [tune_problem(args.m, args.k, args.n, dtype=dtype,
                                threads=args.threads, top=args.top,
                                store=store, budget_s=budget)]

    if args.json:
        print(json.dumps([
            {
                "problem": list(r.problem),
                "dtype": r.dtype,
                "winner": r.winner.label,
                "gflops": r.winner.gflops,
                "time_s": r.winner.time_s,
                "beat_model": r.beat_model,
                "bucket": r.bucket,
                "measured": [
                    {"label": ms.label, "backend": ms.backend,
                     "time_s": ms.time_s, "gflops": ms.gflops,
                     "samples": ms.samples}
                    for ms in r.measurements
                ],
            }
            for r in reports
        ], indent=2))
        return 0
    for r in reports:
        m, k, n = r.problem
        note = " (overturned the model's pick)" if r.beat_model else ""
        print(f"{m}x{k}x{n} [{r.dtype}]: winner {r.winner.label} "
              f"{r.winner.gflops:.2f} GF over {len(r.measurements)} "
              f"finalists in {r.elapsed_s:.2f}s{note}")
    print(f"wisdom: {len(store)} entr{'y' if len(store) == 1 else 'ies'} "
          f"at {store.path}")
    return 0


def cmd_wisdom(args) -> int:
    store = _wisdom_store(args)
    if args.action == "path":
        print(store.path)
        return 0
    if args.action == "clear":
        n = len(store)
        store.clear()
        print(f"cleared {n} entr{'y' if n == 1 else 'ies'} from {store.path}")
        return 0
    entries = store.entries()
    mp = store.machine_params()
    tunables = store.tunables()
    if args.json:
        print(json.dumps({
            "path": str(store.path),
            "entries": entries,
            "machine": None if mp is None else {
                "name": mp.name,
                "peak_gflops_per_core": mp.peak_gflops_per_core,
                "bandwidth_gbs": mp.bandwidth_gbs,
                "cores": mp.cores,
                "lam": mp.lam,
            },
            "tunables": tunables,
            "recovered_corrupt": store.recovered_corrupt,
            "ignored_stale": store.ignored_stale,
        }, indent=2))
        return 0
    print(f"wisdom store: {store.path}")
    if store.recovered_corrupt:
        print("  (previous file was corrupt; set aside as *.corrupt)")
    if store.ignored_stale:
        print("  (file was tuned on a different machine; entries ignored)")
    if mp is not None:
        print(f"  machine: {mp.name} peak {mp.peak_gflops_per_core:.1f} GF/core"
              f" bw {mp.bandwidth_gbs:.1f} GB/s lambda {mp.lam:.2f}")
    if tunables:
        from repro.core.spec import TUNABLE_DEFAULTS

        knobs = ", ".join(
            f"{key}={val} (default {TUNABLE_DEFAULTS[key]})"
            for key, val in sorted(tunables.items())
        )
        print(f"  tunables: {knobs}")
    if not entries:
        print("  (no tuned entries; run `repro tune`)")
        return 0
    for bucket, e in sorted(entries.items()):
        cfg = e["config"]
        algo = cfg["algorithm"]
        label = cfg.get("schedule") or (
            algo if algo == "classical" else "+".join(
                "<%d,%d,%d>" % tuple(s) for s in algo
            )
        )
        m, k, n = e["problem"]
        backend = cfg.get("backend", "reference")
        bnote = "" if backend == "reference" else f" [{backend}]"
        print(f"  {bucket:<32} {label}/{cfg['variant']} t{cfg['threads']}"
              f"{bnote} {e['gflops']:.2f} GF (tuned at {m}x{k}x{n})")
    return 0


def cmd_backends(args) -> int:
    from repro import kernels

    probe_reports = {}
    if args.probe:
        from repro.core.executor import multiply
        from repro.core.runtime import last_report

        rng = np.random.default_rng(0)
        A = rng.standard_normal((64, 64))
        B = rng.standard_normal((64, 64))
        # Non-contiguous views (as mmap-backed operands routinely are):
        # compiling backends delegate these to the interpreter.
        An = rng.standard_normal((128, 128))[::2, ::2]
        Bn = rng.standard_normal((128, 128))[::2, ::2]
        for b in kernels.available_backends():
            # Two calls: the second shows the cached-kernel steady state.
            multiply(A, B, algorithm="strassen", backend=b.name)
            multiply(A, B, algorithm="strassen", backend=b.name)
            rep = last_report()
            multiply(An, Bn, algorithm="strassen", backend=b.name)
            ncrep = last_report()
            probe_reports[b.name] = {
                "backend_path": rep.backend_path,
                "kernel_cached": rep.kernel_cached,
                "fusion": rep.fusion,
                "noncontiguous_path": ncrep.backend_path,
            }

    rows = []
    for info in kernels.backend_infos():
        stats = kernels.get_backend(info.name).cache_stats()
        rows.append({
            "name": info.name,
            "available": info.available,
            "requires": info.requires,
            "summary": info.summary,
            "cache": stats,
            "probe": probe_reports.get(info.name),
        })
    if args.json:
        print(json.dumps({"backends": rows}, indent=2))
        return 0
    print(f"{'backend':<12} {'available':<10} {'plans':>6} {'kernels':>8} "
          f"{'compiles':>9} {'hits':>6}")
    for row in rows:
        avail = "yes" if row["available"] else f"no ({row['requires']})"
        c = row["cache"]
        print(f"{row['name']:<12} {avail:<10} {c['plans']:>6} "
              f"{c['kernels']:>8} {c['compiles']:>9} {c['hits']:>6}")
        print(f"    {row['summary']}")
        probe = row["probe"]
        if probe is not None:
            cached = ("" if not probe["kernel_cached"]
                      else ", kernel cache hit")
            print(f"    probe 64^3 strassen: {probe['backend_path']} path, "
                  f"{probe['fusion']} lowering{cached}; "
                  f"non-contiguous operands: "
                  f"{probe['noncontiguous_path']} path")
    return 0


def cmd_codegen(args) -> int:
    from repro.core.codegen import generate_source
    from repro.core.plan import build_plan

    ml = _parse_algorithm(args.algorithm, args.levels)
    plan = build_plan(args.m, args.k, args.n, ml, args.variant)
    sys.stdout.write(generate_source(plan))
    return 0


def cmd_model(args) -> int:
    from repro.core.executor import resolve_levels
    from repro.model.machines import ivy_bridge_e5_2680_v2
    from repro.model.perfmodel import predict_fmm, predict_gemm

    mach = ivy_bridge_e5_2680_v2(args.cores)
    ml = _parse_algorithm(args.algorithm, args.levels)
    gemm = predict_gemm(args.m, args.k, args.n, mach)
    print(f"machine: {mach.name}   problem: {args.m}x{args.k}x{args.n}")
    print(f"{'impl':<28} {'GFLOPS':>8} {'T_a (s)':>10} {'T_m (s)':>10}")
    print(f"{'gemm (BLIS model)':<28} {gemm.effective_gflops:8.2f} "
          f"{gemm.arithmetic_time:10.4f} {gemm.memory_time:10.4f}")
    for var in ("naive", "ab", "abc"):
        p = predict_fmm(args.m, args.k, args.n, ml, var, mach)
        print(f"{ml.name + '/' + var:<28} {p.effective_gflops:8.2f} "
              f"{p.arithmetic_time:10.4f} {p.memory_time:10.4f}")
    return 0


def cmd_discover(args) -> int:
    from repro.core.fmm import nnz
    from repro.search.discovery import discover

    algo, rep = discover(
        args.m, args.k, args.n, args.rank,
        max_restarts=args.restarts, time_budget=args.budget, seed=args.seed,
    )
    print(f"<{args.m},{args.k},{args.n}>:{args.rank} -> {rep.found} "
          f"({rep.restarts} restarts, {rep.elapsed:.1f}s, "
          f"best residual {rep.best_residual:.2e})")
    if algo is not None:
        print(f"nnz = {nnz(algo.U)}, {nnz(algo.V)}, {nnz(algo.W)}")
        if args.out:
            from repro.algorithms.loader import save_json

            print("saved to", save_json(algo, args.out))
    return 0 if algo is not None else 1


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="print the algorithm family")

    p = sub.add_parser("multiply", help="multiply random matrices and verify")
    _add_shape(p)
    p.add_argument("--algorithm", default="strassen",
                   help='e.g. strassen, "<3,2,3>", "strassen+<3,3,3>", or a '
                        'schedule string like "strassen@2,smirnov333@1"')
    p.add_argument("--levels", type=int, default=1)
    p.add_argument("--variant", choices=("naive", "ab", "abc"), default="abc")
    p.add_argument("--engine", choices=("direct", "blocked", "auto"),
                   default="direct")
    p.add_argument("--threads", type=int, default=None,
                   help="runtime worker threads (default: 1; with "
                        "--engine auto the machine model picks)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dtype", choices=("float32", "float64"), default="float64")
    p.add_argument("--batch", type=int, default=1,
                   help="multiply a stack of N same-shape problems "
                        "through one compiled plan")
    p.add_argument("--tune", choices=("off", "readonly", "on"),
                   default="readonly",
                   help="autotuning-wisdom use under --engine auto "
                        "(default: readonly)")
    p.add_argument("--fusion", choices=("auto", "staged", "fused", "tiled"),
                   default="auto",
                   help="runtime lowering: staged slabs (O(R) product "
                        "buffers) or the streaming fused pipeline "
                        "(O(threads) buffers); auto resolves per plan. "
                        "The blocked engine's packed kernel always "
                        "streams (staged requests execute fused there)")
    p.add_argument("--backend", choices=("reference", "specialized", "numba"),
                   default=None,
                   help="leaf-kernel backend (direct engine): reference "
                        "interpreter, per-plan compiled kernels, or their "
                        "numba-JIT wrapper; default follows --engine auto's "
                        "pick, else reference")
    p.add_argument("--workers", choices=("threads", "processes"), default=None,
                   help="runtime worker mode (direct engine): the shared "
                        "thread pool, or GIL-free worker processes over "
                        "shared-memory segments; default follows --engine "
                        "auto's pick, else threads")
    p.add_argument("--procs", type=int, default=None,
                   help="shorthand for --workers processes --threads N")
    p.add_argument("--report", action="store_true",
                   help="print the execution report's worker fields "
                        "(worker_mode, n_workers, ipc_bytes, core path)")

    p = sub.add_parser("select", help="model-guided selection")
    _add_shape(p)
    p.add_argument("--cores", type=int, default=1)
    p.add_argument("--top", type=int, default=2)
    p.add_argument("--json", action="store_true",
                   help="emit the selection as machine-readable JSON")

    p = sub.add_parser("tune", help="measure candidates, persist wisdom")
    _add_shape(p)
    p.add_argument("--budget", default="2s",
                   help="wall-clock budget, e.g. 5, 5s or 500ms (default 2s)")
    p.add_argument("--top", type=int, default=3,
                   help="model finalists to measure (plus the GEMM baseline)")
    p.add_argument("--threads", type=int, default=None,
                   help="tune for an explicit thread count "
                        "(default: the model picks per candidate)")
    p.add_argument("--dtype", choices=("float32", "float64"), default="float64")
    p.add_argument("--store", default=None,
                   help="wisdom file (default: $REPRO_WISDOM or "
                        "~/.cache/repro/wisdom.json)")
    p.add_argument("--sweep", choices=sorted(SWEEP_PRESETS), default=None,
                   help="tune a preset problem sweep instead of one shape")
    p.add_argument("--calibrate", action="store_true",
                   help="force re-measuring the machine model back-fit")
    p.add_argument("--no-calibrate", action="store_true",
                   help="skip machine calibration even on first tune")
    p.add_argument("--json", action="store_true")

    p = sub.add_parser("wisdom", help="inspect the autotuning wisdom store")
    p.add_argument("action", nargs="?", choices=("show", "clear", "path"),
                   default="show")
    p.add_argument("--store", default=None,
                   help="wisdom file (default: $REPRO_WISDOM or "
                        "~/.cache/repro/wisdom.json)")
    p.add_argument("--json", action="store_true")

    p = sub.add_parser("backends",
                       help="list leaf-kernel backends and kernel caches")
    p.add_argument("--probe", action="store_true",
                   help="run a small multiply through each available "
                        "backend and report its execution path")
    p.add_argument("--json", action="store_true")

    p = sub.add_parser("trace",
                       help="record a multiply under the span tracer")
    p.add_argument("action", nargs="?", choices=("run",), default="run")
    _add_shape(p)
    p.add_argument("--algorithm", default="strassen")
    p.add_argument("--levels", type=int, default=1)
    p.add_argument("--variant", choices=("naive", "ab", "abc"), default="abc")
    p.add_argument("--engine", choices=("direct", "auto"), default="direct")
    p.add_argument("--threads", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dtype", choices=("float32", "float64"),
                   default="float64")
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--fusion", choices=("auto", "staged", "fused", "tiled"),
                   default="auto")
    p.add_argument("--backend", choices=("reference", "specialized", "numba"),
                   default=None)
    p.add_argument("--workers", choices=("threads", "processes"),
                   default=None)
    p.add_argument("--procs", type=int, default=None,
                   help="shorthand for --workers processes --threads N")
    p.add_argument("--repeat", type=int, default=2,
                   help="runs to record; the first shows the plan compile, "
                        "later ones the cached steady state (default 2)")
    p.add_argument("--capacity", type=int, default=None,
                   help="span ring capacity (default 8192)")
    p.add_argument("-o", "--out", default="trace.json",
                   help="Chrome trace-event JSON output path "
                        "(default trace.json)")

    p = sub.add_parser("stats",
                       help="print the metrics snapshot and report history")
    p.add_argument("--json", action="store_true",
                   help="emit the snapshot as machine-readable JSON")

    p = sub.add_parser("serve",
                       help="drive the async MultiplyService under load")
    _add_shape(p)
    p.add_argument("--algorithm", default="strassen")
    p.add_argument("--levels", type=int, default=1)
    p.add_argument("--variant", choices=("naive", "ab", "abc"), default="abc")
    p.add_argument("--dtype", choices=("float32", "float64"),
                   default="float64")
    p.add_argument("--jobs", type=int, default=64,
                   help="multiply requests to submit (default 64)")
    p.add_argument("--submitters", type=int, default=4,
                   help="concurrent submitter threads (default 4)")
    p.add_argument("--window-us", type=int, default=None,
                   help="coalescing window in microseconds "
                        "(default: the serve_batch_window_us tunable)")
    p.add_argument("--max-batch", type=int, default=None,
                   help="coalesced batch cap (default: the serve_max_batch "
                        "tunable)")
    p.add_argument("--byte-budget-mb", type=float, default=None,
                   help="admission byte budget in MiB (default: unlimited)")
    p.add_argument("--policy", choices=("queue", "reject", "serial"),
                   default=None,
                   help="over-budget behavior (default reject)")
    p.add_argument("--threads", type=int, default=None)
    p.add_argument("--workers", choices=("threads", "processes"),
                   default=None)
    p.add_argument("--procs", type=int, default=None,
                   help="shorthand for --workers processes --threads N")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the serve summary as machine-readable JSON")

    p = sub.add_parser("jobs",
                       help="submit mixed jobs; print the per-job table")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("codegen", help="emit generated Python source")
    _add_shape(p)
    p.add_argument("--algorithm", default="strassen")
    p.add_argument("--levels", type=int, default=1)
    p.add_argument("--variant", choices=("naive", "ab", "abc"), default="abc")

    p = sub.add_parser("model", help="performance-model table")
    _add_shape(p)
    p.add_argument("--algorithm", default="strassen")
    p.add_argument("--levels", type=int, default=1)
    p.add_argument("--cores", type=int, default=1)

    p = sub.add_parser("discover", help="search for an algorithm")
    p.add_argument("-m", type=int, required=True)
    p.add_argument("-k", type=int, required=True)
    p.add_argument("-n", type=int, required=True)
    p.add_argument("--rank", type=int, required=True)
    p.add_argument("--restarts", type=int, default=50)
    p.add_argument("--budget", type=float, default=120.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None)
    return ap


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "catalog": cmd_catalog,
        "multiply": cmd_multiply,
        "select": cmd_select,
        "tune": cmd_tune,
        "wisdom": cmd_wisdom,
        "backends": cmd_backends,
        "trace": cmd_trace,
        "stats": cmd_stats,
        "serve": cmd_serve,
        "jobs": cmd_jobs,
        "codegen": cmd_codegen,
        "model": cmd_model,
        "discover": cmd_discover,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:  # e.g. `python -m repro catalog | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
