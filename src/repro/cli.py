"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``catalog``   Print the Fig.-2 family with achieved vs. paper ranks.
``multiply``  Multiply random matrices with a chosen algorithm and verify.
``select``    Model-guided implementation selection for a problem size.
``codegen``   Emit generated Python source for an algorithm/variant.
``model``     Print modeled Effective GFLOPS for a configuration sweep.
``discover``  Run the ALS search for a (m, k, n, rank) target.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_shape(p: argparse.ArgumentParser) -> None:
    p.add_argument("-m", type=int, default=1024)
    p.add_argument("-k", type=int, default=1024)
    p.add_argument("-n", type=int, default=1024)


def _parse_algorithm(spec: str, levels: int):
    # All spec grammar (names, "<m,k,n>", "+"-joined hybrid stacks) lives in
    # repro.core.spec; the CLI just forwards.
    from repro.core.spec import resolve_levels

    return resolve_levels(spec, levels)


def cmd_catalog(args) -> int:
    from repro.algorithms.catalog import catalog_summary

    print(catalog_summary())
    return 0


def cmd_multiply(args) -> int:
    from repro.core.executor import BlockedEngine, multiply, multiply_batched

    rng = np.random.default_rng(args.seed)
    dtype = np.float32 if args.dtype == "float32" else np.float64
    shape_a, shape_b = (args.m, args.k), (args.k, args.n)
    if args.batch > 1:
        shape_a, shape_b = (args.batch,) + shape_a, (args.batch,) + shape_b
    A = rng.standard_normal(shape_a).astype(dtype)
    B = rng.standard_normal(shape_b).astype(dtype)

    if args.engine == "auto":
        ml, label = None, "auto-dispatch"
    else:
        ml = _parse_algorithm(args.algorithm, args.levels)
        label = str(ml)
    if args.batch > 1:
        C = multiply_batched(
            A, B, algorithm=ml if ml is not None else "strassen",
            variant=args.variant, engine=args.engine, threads=args.threads,
        )
    elif args.engine == "blocked":
        # BlockedEngine normalizes threads itself (None -> 1, 0/neg raise).
        eng = BlockedEngine(variant=args.variant, threads=args.threads)
        C = np.zeros((args.m, args.n), dtype=dtype)
        eng.multiply(A, B, C, ml)
        print("counters:", eng.counters)
    else:
        C = multiply(
            A, B, algorithm=ml if ml is not None else "strassen",
            variant=args.variant, engine=args.engine, threads=args.threads,
        )
    err = float(np.abs(C - A @ B).max())
    scale = max(1.0, float(np.abs(C).max()))
    tol = 1e-6 if dtype == np.float64 else 1e-2
    batch_note = f" x{args.batch} batch" if args.batch > 1 else ""
    print(f"{label} on {args.m}x{args.k}x{args.n}{batch_note} "
          f"[{C.dtype}]: max |C - AB| = {err:.3e}")
    return 0 if err / scale < tol else 1


def cmd_select(args) -> int:
    from repro.core.selection import select
    from repro.model.machines import ivy_bridge_e5_2680_v2

    mach = ivy_bridge_e5_2680_v2(args.cores)
    winner, ranked = select(args.m, args.k, args.n, mach, top=args.top)
    print(f"problem {args.m}x{args.k}x{args.n} on {mach.name}")
    print(f"selected: {winner.label} "
          f"(predicted {winner.prediction.effective_gflops:.2f} GFLOPS)")
    print("model top-5:")
    for c in ranked[:5]:
        print(f"  {c.label:<28} {c.prediction.effective_gflops:8.2f} GF")
    return 0


def cmd_codegen(args) -> int:
    from repro.core.codegen import generate_source
    from repro.core.plan import build_plan

    ml = _parse_algorithm(args.algorithm, args.levels)
    plan = build_plan(args.m, args.k, args.n, ml, args.variant)
    sys.stdout.write(generate_source(plan))
    return 0


def cmd_model(args) -> int:
    from repro.core.executor import resolve_levels
    from repro.model.machines import ivy_bridge_e5_2680_v2
    from repro.model.perfmodel import predict_fmm, predict_gemm

    mach = ivy_bridge_e5_2680_v2(args.cores)
    ml = _parse_algorithm(args.algorithm, args.levels)
    gemm = predict_gemm(args.m, args.k, args.n, mach)
    print(f"machine: {mach.name}   problem: {args.m}x{args.k}x{args.n}")
    print(f"{'impl':<28} {'GFLOPS':>8} {'T_a (s)':>10} {'T_m (s)':>10}")
    print(f"{'gemm (BLIS model)':<28} {gemm.effective_gflops:8.2f} "
          f"{gemm.arithmetic_time:10.4f} {gemm.memory_time:10.4f}")
    for var in ("naive", "ab", "abc"):
        p = predict_fmm(args.m, args.k, args.n, ml, var, mach)
        print(f"{ml.name + '/' + var:<28} {p.effective_gflops:8.2f} "
              f"{p.arithmetic_time:10.4f} {p.memory_time:10.4f}")
    return 0


def cmd_discover(args) -> int:
    from repro.core.fmm import nnz
    from repro.search.discovery import discover

    algo, rep = discover(
        args.m, args.k, args.n, args.rank,
        max_restarts=args.restarts, time_budget=args.budget, seed=args.seed,
    )
    print(f"<{args.m},{args.k},{args.n}>:{args.rank} -> {rep.found} "
          f"({rep.restarts} restarts, {rep.elapsed:.1f}s, "
          f"best residual {rep.best_residual:.2e})")
    if algo is not None:
        print(f"nnz = {nnz(algo.U)}, {nnz(algo.V)}, {nnz(algo.W)}")
        if args.out:
            from repro.algorithms.loader import save_json

            print("saved to", save_json(algo, args.out))
    return 0 if algo is not None else 1


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="print the algorithm family")

    p = sub.add_parser("multiply", help="multiply random matrices and verify")
    _add_shape(p)
    p.add_argument("--algorithm", default="strassen",
                   help='e.g. strassen, "<3,2,3>", "strassen+<3,3,3>"')
    p.add_argument("--levels", type=int, default=1)
    p.add_argument("--variant", choices=("naive", "ab", "abc"), default="abc")
    p.add_argument("--engine", choices=("direct", "blocked", "auto"),
                   default="direct")
    p.add_argument("--threads", type=int, default=None,
                   help="runtime worker threads (default: 1; with "
                        "--engine auto the machine model picks)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dtype", choices=("float32", "float64"), default="float64")
    p.add_argument("--batch", type=int, default=1,
                   help="multiply a stack of N same-shape problems "
                        "through one compiled plan")

    p = sub.add_parser("select", help="model-guided selection")
    _add_shape(p)
    p.add_argument("--cores", type=int, default=1)
    p.add_argument("--top", type=int, default=2)

    p = sub.add_parser("codegen", help="emit generated Python source")
    _add_shape(p)
    p.add_argument("--algorithm", default="strassen")
    p.add_argument("--levels", type=int, default=1)
    p.add_argument("--variant", choices=("naive", "ab", "abc"), default="abc")

    p = sub.add_parser("model", help="performance-model table")
    _add_shape(p)
    p.add_argument("--algorithm", default="strassen")
    p.add_argument("--levels", type=int, default=1)
    p.add_argument("--cores", type=int, default=1)

    p = sub.add_parser("discover", help="search for an algorithm")
    p.add_argument("-m", type=int, required=True)
    p.add_argument("-k", type=int, required=True)
    p.add_argument("-n", type=int, required=True)
    p.add_argument("--rank", type=int, required=True)
    p.add_argument("--restarts", type=int, default=50)
    p.add_argument("--budget", type=float, default=120.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None)
    return ap


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "catalog": cmd_catalog,
        "multiply": cmd_multiply,
        "select": cmd_select,
        "codegen": cmd_codegen,
        "model": cmd_model,
        "discover": cmd_discover,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:  # e.g. `python -m repro catalog | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
