"""Process-wide metrics registry: counters, gauges, and histograms.

Before this module the stack's health counters were scattered behind
module-private APIs — ``plan_cache_info()`` in :mod:`repro.core.compile`,
``arena_stats()``/``shared_arena_stats()`` in :mod:`repro.core.workspace`,
``pool_info()``/``process_pool_info()`` in the runtime and
:mod:`repro.core.procpool`, per-backend ``cache_stats()`` in
:mod:`repro.kernels`, and the wisdom store's hot-cache hit counters.
The registry absorbs all of them behind one :func:`snapshot` call:

* **Counter** — a monotonically increasing integer with thread-safe
  :meth:`~Counter.inc` (e.g. ``runtime.executions``).
* **Gauge** — a read-on-demand callback; the sources above register as
  gauges, so a snapshot always reflects the live structures instead of
  a shadow copy that could drift.
* **Histogram** — streaming count/min/max/mean plus a bounded reservoir
  of recent observations for p50/p95 (e.g. ``runtime.latency_s``).

``repro stats [--json]`` prints a snapshot; :func:`describe` feeds the
generated "Observability" section of ``docs/architecture.md``.  All
built-in gauge callbacks import lazily so this module stays free of
import cycles with the core it observes.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, is_dataclass

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "describe",
    "gauge",
    "histogram",
    "registry",
    "snapshot",
]


def _plain(value):
    """Coerce stat objects (namedtuples, dataclasses) to JSON-able dicts."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _plain(v) for k, v in asdict(value).items()}
    if hasattr(value, "_asdict"):  # namedtuple (CacheInfo and friends)
        return {k: _plain(v) for k, v in value._asdict().items()}
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(v) for v in value]
    return value


class Counter:
    """A monotonically increasing integer (thread-safe)."""

    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A read-on-demand value backed by a callback.

    The callback may return a scalar or a mapping/stats object; snapshot
    failures degrade to ``None`` rather than poisoning the whole report
    (a gauge over an optional subsystem must not break ``repro stats``).
    """

    __slots__ = ("name", "description", "_fn")

    def __init__(self, name: str, description: str, fn) -> None:
        self.name = name
        self.description = description
        self._fn = fn

    def value(self):
        try:
            return _plain(self._fn())
        except Exception:
            return None


class Histogram:
    """Streaming summary stats plus a bounded reservoir for percentiles.

    Tracks exact ``count``/``min``/``max``/``mean`` over every
    observation and keeps the most recent ``reservoir`` values for
    p50/p95 — recency-weighted percentiles are the right shape for a
    serving process, where old traffic should age out.
    """

    __slots__ = ("name", "description", "_lock", "_count", "_sum",
                 "_min", "_max", "_recent", "_limit", "_pos")

    def __init__(self, name: str, description: str = "",
                 reservoir: int = 1024) -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None
        self._limit = max(1, int(reservoir))
        self._recent: list = []
        self._pos = 0

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self._count += 1
            self._sum += v
            self._min = v if self._min is None else min(self._min, v)
            self._max = v if self._max is None else max(self._max, v)
            if len(self._recent) < self._limit:
                self._recent.append(v)
            else:
                self._recent[self._pos] = v
                self._pos = (self._pos + 1) % self._limit

    def value(self) -> dict:
        with self._lock:
            if self._count == 0:
                return {"count": 0}
            window = sorted(self._recent)
            return {
                "count": self._count,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "p50": percentile(window, 0.50),
                "p95": percentile(window, 0.95),
            }

    def reset(self) -> None:
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None
            self._recent = []
            self._pos = 0


def percentile(sorted_values, q: float):
    """Linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class MetricsRegistry:
    """One process-wide namespace of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, description)
            return c

    def gauge(self, name: str, description: str, fn) -> Gauge:
        with self._lock:
            g = Gauge(name, description, fn)
            self._gauges[name] = g
            return g

    def histogram(self, name: str, description: str = "",
                  reservoir: int = 1024) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(
                    name, description, reservoir)
            return h

    def snapshot(self) -> dict:
        """One JSON-able dict with every metric's current value."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value() for n, c in sorted(counters.items())},
            "gauges": {n: g.value() for n, g in sorted(gauges.items())},
            "histograms": {n: h.value() for n, h in sorted(histograms.items())},
        }

    def describe(self) -> list[tuple[str, str, str]]:
        """``(kind, name, description)`` rows for every registered metric."""
        with self._lock:
            rows = [("counter", c.name, c.description)
                    for c in self._counters.values()]
            rows += [("gauge", g.name, g.description)
                     for g in self._gauges.values()]
            rows += [("histogram", h.name, h.description)
                     for h in self._histograms.values()]
        return sorted(rows, key=lambda r: (r[0], r[1]))

    def reset(self) -> None:
        """Zero counters and histograms (gauges read live state anyway)."""
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        for c in counters:
            c.reset()
        for h in histograms:
            h.reset()


#: The process-wide registry every subsystem registers into.
registry = MetricsRegistry()


def counter(name: str, description: str = "") -> Counter:
    return registry.counter(name, description)


def gauge(name: str, description: str, fn) -> Gauge:
    return registry.gauge(name, description, fn)


def histogram(name: str, description: str = "",
              reservoir: int = 1024) -> Histogram:
    return registry.histogram(name, description, reservoir)


def snapshot() -> dict:
    return registry.snapshot()


def describe() -> list[tuple[str, str, str]]:
    return registry.describe()


# ---------------------------------------------------------------------- #
# Built-in gauges over the core's existing stat surfaces.  Callbacks
# import lazily: the core imports this module, not the other way around.
# ---------------------------------------------------------------------- #
def _plan_cache() -> dict:
    from repro.core import compile as plancache
    return plancache.plan_cache_info()._asdict()


def _arena():
    from repro.core.workspace import arena_stats
    return arena_stats()


def _shared_arena():
    from repro.core.workspace import shared_arena_stats
    return shared_arena_stats()


def _thread_pools() -> dict:
    from repro.core.runtime import pool_info
    return {str(k): v for k, v in pool_info().items()}


def _process_pools() -> dict:
    from repro.core.procpool import process_pool_info
    return {f"{w}:{sm}": info
            for (w, sm), info in process_pool_info().items()}


def _kernel_caches() -> dict:
    from repro.kernels import available_backends
    return {b.name: b.cache_stats() for b in available_backends()
            if hasattr(b, "cache_stats")}


def _wisdom_hot_cache() -> dict:
    # Reads the already-loaded default store only; a metrics snapshot
    # must never trigger a wisdom-file load as a side effect.
    from repro.tune import wisdom as _wisdom
    store = getattr(_wisdom, "_default", None)
    if store is None:
        return {"loaded": False}
    return {
        "loaded": True,
        "hot_hits": store.hot_hits,
        "hot_misses": store.hot_misses,
        "entries": len(store),
    }


gauge("plan_cache",
      "Compiled-plan cache: hits, misses, maxsize, currsize", _plan_cache)
gauge("workspace.arena",
      "Thread-runtime workspace arena: allocations, reuses, byte totals, "
      "peak high-water", _arena)
gauge("workspace.shared_arena",
      "Shared-memory arena for the process runtime: segments, reuses, "
      "byte totals", _shared_arena)
gauge("pools.threads",
      "Live thread pools keyed by worker count", _thread_pools)
gauge("pools.processes",
      "Live worker-process pools keyed by workers:start_method",
      _process_pools)
gauge("kernels.cache",
      "Per-backend compiled-kernel caches: plans, kernels, compiles, hits",
      _kernel_caches)
gauge("wisdom.hot_cache",
      "Default wisdom store hot-cache hits/misses (loaded stores only)",
      _wisdom_hot_cache)
