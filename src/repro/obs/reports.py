"""Bounded ExecutionReport history with per-plan aggregation.

``runtime.last_report()`` answers "what did the most recent call do";
this module answers the serving questions — "what is the p95 for this
shape", "which backend actually handled the traffic", "how high did the
workspace peak go" — by keeping every published
:class:`~repro.core.runtime.ExecutionReport` in a bounded ring and
aggregating per plan key.

The history is also the bridge from serving traffic back into the
tuner: :func:`observed_measurements` groups reports by their full
execution configuration (shape, dtype, schedule, variant, threads,
backend, worker mode) and summarizes latency, which
``repro.tune.observe.seed_wisdom_from_observations`` converts into
wisdom records — measurements for free, from traffic the process was
serving anyway.

The runtime publishes into the global :data:`history` from
``_publish_report``; nothing here imports the core, so the dependency
stays one-way.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.obs.metrics import percentile

__all__ = [
    "DEFAULT_CAPACITY",
    "PlanStats",
    "ReportHistory",
    "aggregate",
    "clear",
    "history",
    "observed_measurements",
    "record",
    "record_job",
    "recent",
    "report_for",
    "stats_for",
]

#: Default number of reports retained (oldest evicted first).
DEFAULT_CAPACITY = 1024


@dataclass(frozen=True)
class PlanStats:
    """Aggregate over every retained report sharing one plan key."""

    key: str
    count: int
    p50_s: float
    p95_s: float
    mean_s: float
    best_s: float
    peak_bytes_hw: int          # high-water across the window
    total_ipc_bytes: int
    total_batch: int
    total_io_bytes: int = 0     # tiled-lowering spill traffic (logical)
    total_tiles: int = 0
    backends: dict = field(default_factory=dict)
    worker_modes: dict = field(default_factory=dict)
    core_paths: dict = field(default_factory=dict)


def _plan_key(report) -> str:
    m, k, n = report.shape
    shape = f"{m}x{k}x{n}"
    if report.batch > 1:
        shape += f"[b{report.batch}]"
    sched = report.schedule or "?"
    return f"{shape} {report.dtype} {sched}/{report.variant}"


class ReportHistory:
    """A thread-safe bounded ring of ExecutionReports.

    Besides the ring, the history keeps a bounded job-id index
    (:meth:`record_job` / :meth:`report_for`): the serving layer
    (:mod:`repro.serve`) attributes each job's ExecutionReport here,
    keyed by job id, because ``runtime.last_report()`` is a *thread-local*
    convenience — a job handle read from another thread would observe
    that thread's last call, not its own execution.  The index shares the
    ring's capacity and evicts oldest-first.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=max(1, int(capacity)))
        self._by_job: OrderedDict[str, object] = OrderedDict()

    @property
    def capacity(self) -> int:
        return self._ring.maxlen

    def record(self, report) -> None:
        with self._lock:
            self._ring.append(report)

    def record_job(self, job_id: str, report) -> None:
        """Attribute ``report`` to ``job_id`` (service per-job lookup).

        A coalesced batch shares one execution, so several job ids may
        map to the same report object.  Does *not* append to the ring —
        the runtime already published the execution there.
        """
        with self._lock:
            self._by_job[str(job_id)] = report
            self._by_job.move_to_end(str(job_id))
            while len(self._by_job) > self._ring.maxlen:
                self._by_job.popitem(last=False)

    def report_for(self, job_id: str):
        """The ExecutionReport recorded for ``job_id`` (None if evicted
        or never recorded)."""
        with self._lock:
            return self._by_job.get(str(job_id))

    def recent(self, n: int | None = None) -> list:
        """The retained reports, oldest first (the last ``n`` if given)."""
        with self._lock:
            out = list(self._ring)
        return out if n is None else out[-n:]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._by_job.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate(self) -> dict[str, PlanStats]:
        """Per-plan-key stats over the retained window, keyed for display."""
        groups: dict[str, list] = {}
        for rep in self.recent():
            groups.setdefault(_plan_key(rep), []).append(rep)
        out: dict[str, PlanStats] = {}
        for key, reps in groups.items():
            lat = sorted(r.duration_s for r in reps)
            backends: dict[str, int] = {}
            modes: dict[str, int] = {}
            paths: dict[str, int] = {}
            for r in reps:
                backends[r.backend] = backends.get(r.backend, 0) + 1
                modes[r.worker_mode] = modes.get(r.worker_mode, 0) + 1
                paths[r.core_path] = paths.get(r.core_path, 0) + 1
            out[key] = PlanStats(
                key=key,
                count=len(reps),
                p50_s=percentile(lat, 0.50),
                p95_s=percentile(lat, 0.95),
                mean_s=sum(lat) / len(lat),
                best_s=lat[0],
                peak_bytes_hw=max(r.peak_workspace_bytes for r in reps),
                total_ipc_bytes=sum(r.ipc_bytes for r in reps),
                total_batch=sum(r.batch for r in reps),
                total_io_bytes=sum(getattr(r, "io_bytes", 0) for r in reps),
                total_tiles=sum(getattr(r, "n_tiles", 0) for r in reps),
                backends=backends,
                worker_modes=modes,
                core_paths=paths,
            )
        return out

    def stats_for(self, report) -> PlanStats | None:
        """The aggregate for the plan key ``report`` belongs to."""
        return self.aggregate().get(_plan_key(report))

    def observed_measurements(self, min_count: int = 1) -> list[dict]:
        """Latency summaries grouped by full execution configuration.

        Unlike :meth:`aggregate` (display granularity), groups carry
        every field the tuner needs to reconstruct a wisdom config:
        shape, dtype, schedule signature, variant, threads, backend,
        and worker mode.  Reports without a schedule signature (legacy
        constructors) are skipped; ``min_count`` filters out one-off
        shapes that would seed wisdom from a single noisy sample.
        """
        groups: dict[tuple, list] = {}
        for rep in self.recent():
            if not rep.schedule or rep.batch != 1:
                continue  # batched latency is not a per-multiply measurement
            key = (rep.shape, rep.dtype, rep.schedule, rep.variant,
                   rep.threads, rep.backend, rep.worker_mode)
            groups.setdefault(key, []).append(rep)
        out = []
        for key, reps in sorted(groups.items(), key=lambda kv: repr(kv[0])):
            if len(reps) < min_count:
                continue
            lat = sorted(r.duration_s for r in reps)
            shape, dtype, schedule, variant, threads, backend, mode = key
            out.append({
                "shape": tuple(shape),
                "dtype": dtype,
                "schedule": schedule,
                "variant": variant,
                "threads": threads,
                "backend": backend,
                "worker_mode": mode,
                "count": len(reps),
                "best_s": lat[0],
                "p50_s": percentile(lat, 0.50),
                "mean_s": sum(lat) / len(lat),
            })
        return out


#: The process-wide history the runtime publishes into.
history = ReportHistory()


def record(report) -> None:
    history.record(report)


def record_job(job_id: str, report) -> None:
    history.record_job(job_id, report)


def report_for(job_id: str):
    return history.report_for(job_id)


def recent(n: int | None = None) -> list:
    return history.recent(n)


def aggregate() -> dict[str, PlanStats]:
    return history.aggregate()


def stats_for(report) -> PlanStats | None:
    return history.stats_for(report)


def observed_measurements(min_count: int = 1) -> list[dict]:
    return history.observed_measurements(min_count)


def clear() -> None:
    history.clear()
