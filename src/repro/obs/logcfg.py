"""Namespaced stdlib logging for the ``repro`` package.

Every module logs through ``logging.getLogger("repro.<module>")``, so
one root logger controls the whole stack.  Library rules apply: the
package installs only a ``NullHandler`` (silent by default, no
"no handler" warnings, embedding applications keep full control), and
never configures the root logger.

For ad-hoc debugging the ``REPRO_LOG_LEVEL`` environment variable
attaches a stderr handler at the named level::

    REPRO_LOG_LEVEL=debug python -m repro multiply -m 96 -k 96 -n 96

Events worth the noise budget are logged where they happen: wisdom-file
corruption set-asides (previously silent), numba JIT fallbacks
(previously silent), plan-cache misses, worker-pool lifecycle.
"""

from __future__ import annotations

import logging
import os

__all__ = ["ENV_VAR", "configure_logging", "get_logger"]

ENV_VAR = "REPRO_LOG_LEVEL"

_root = logging.getLogger("repro")
_env_handler: logging.Handler | None = None


def get_logger(name: str) -> logging.Logger:
    """The logger for a dotted module path under the ``repro`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_logging() -> None:
    """Install the NullHandler and honor ``REPRO_LOG_LEVEL`` (idempotent)."""
    global _env_handler
    if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
        _root.addHandler(logging.NullHandler())

    level_name = os.environ.get(ENV_VAR, "").strip()
    if not level_name or _env_handler is not None:
        return
    level = getattr(logging, level_name.upper(), None)
    if not isinstance(level, int):
        return  # an unknown level name must not break import
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(
        "%(asctime)s %(name)s %(levelname)s: %(message)s"))
    _root.addHandler(handler)
    _root.setLevel(level)
    _env_handler = handler
