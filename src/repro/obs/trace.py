"""Near-zero-overhead span tracing for the execution stack.

The runtime's seven ``engine="auto"`` dimensions make "why was this call
slow" unanswerable from a single number; this module provides the
timeline.  A *span* brackets one unit of work — a plan compile, a
gather/product/scatter/reduce phase, an arena checkout, a worker task —
with ``time.perf_counter_ns`` timestamps, and every record lands in one
preallocated ring buffer whose capacity bounds memory no matter how long
the process serves.

The contract that keeps instrumentation safe to leave in hot paths:

* **Disabled is the default and costs almost nothing.**  When tracing is
  off, :func:`span` returns one shared no-op context manager — the whole
  instrumentation point is a module-flag check plus an argument-dict
  build, benchmarked at well under 2% of the plan-cache hot path
  (``benchmarks/bench_observability.py`` gates this in CI).
* **Span ids are thread- and process-aware.**  Ids are allocated from a
  per-thread counter (no cross-thread locking) and recorded together
  with ``(pid, tid)``, so spans from pooled threads and from the
  shared-memory worker processes (:mod:`repro.core.procpool` ships its
  task spans back on the run ack) merge into one coherent timeline.
* **Nesting is explicit.**  Each thread keeps a stack of open spans;
  a record's ``parent_id`` is the enclosing span on the same thread.

Export with :func:`export_chrome` — the Chrome trace-event JSON format
(``chrome://tracing`` / Perfetto) — or inspect :func:`spans` directly.
The ``repro trace run`` CLI wraps the whole flow.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_CAPACITY",
    "SpanRecord",
    "clear",
    "disable",
    "drain",
    "enable",
    "export_chrome",
    "ingest",
    "instant",
    "is_enabled",
    "span",
    "spans",
]

#: Default ring capacity (records); the oldest spans are overwritten.
DEFAULT_CAPACITY = 8192

_lock = threading.Lock()
_enabled = False
_capacity = DEFAULT_CAPACITY
_ring: list = [None] * DEFAULT_CAPACITY
_head = 0          # next write slot
_total = 0         # records ever written (detects wraparound)
_tls = threading.local()


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: what ran, where, and for how long.

    ``span_id`` is unique within ``(pid, tid)`` (per-thread counter);
    ``parent_id`` is the id of the enclosing span on the same thread
    (0 at top level).  ``dur_ns == 0`` marks an instant event.
    """

    name: str
    cat: str
    start_ns: int
    dur_ns: int
    pid: int
    tid: int
    span_id: int
    parent_id: int
    args: dict = field(default_factory=dict)


class _NoopSpan:
    """The shared disabled-path context manager: every method is a no-op."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **kw) -> None:
        pass


_NOOP = _NoopSpan()


class _Span:
    """One live span; records itself into the ring on ``__exit__``."""

    __slots__ = ("name", "cat", "args", "start_ns", "span_id", "parent_id")

    def __init__(self, name: str, cat: str, args: dict) -> None:
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, **kw) -> None:
        """Attach (or update) argument fields while the span is open."""
        self.args.update(kw)

    def __enter__(self):
        tls = _tls
        stack = getattr(tls, "stack", None)
        if stack is None:
            stack = tls.stack = []
            tls.seq = 0
        tls.seq += 1
        self.span_id = tls.seq
        self.parent_id = stack[-1].span_id if stack else 0
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc):
        end_ns = time.perf_counter_ns()
        stack = _tls.stack
        if stack and stack[-1] is self:
            stack.pop()
        _record(SpanRecord(
            name=self.name,
            cat=self.cat,
            start_ns=self.start_ns,
            dur_ns=end_ns - self.start_ns,
            pid=os.getpid(),
            tid=threading.get_ident(),
            span_id=self.span_id,
            parent_id=self.parent_id,
            args=self.args,
        ))
        return False


def span(name: str, cat: str = "runtime", **args):
    """A context manager bracketing one unit of work.

    The hot-path entry point: when tracing is disabled this returns one
    shared no-op object, so instrumentation points stay in production
    code unconditionally.  ``args`` become the span's Chrome-trace
    ``args`` payload; :meth:`~_Span.set` attaches more while open.
    """
    if not _enabled:
        return _NOOP
    return _Span(name, cat, args)


def instant(name: str, cat: str = "runtime", **args) -> None:
    """Record a zero-duration event (cache hit/miss markers and the like)."""
    if not _enabled:
        return
    tls = _tls
    stack = getattr(tls, "stack", None)
    if stack is None:
        stack = tls.stack = []
        tls.seq = 0
    tls.seq += 1
    _record(SpanRecord(
        name=name,
        cat=cat,
        start_ns=time.perf_counter_ns(),
        dur_ns=0,
        pid=os.getpid(),
        tid=threading.get_ident(),
        span_id=tls.seq,
        parent_id=stack[-1].span_id if stack else 0,
        args=args,
    ))


def _record(rec: SpanRecord) -> None:
    global _head, _total
    with _lock:
        if not _enabled:
            return  # raced a disable(): drop rather than resurrect the ring
        _ring[_head] = rec
        _head = (_head + 1) % _capacity
        _total += 1


# ---------------------------------------------------------------------- #
# Control surface
# ---------------------------------------------------------------------- #
def enable(capacity: int | None = None) -> None:
    """Start recording spans (idempotent; ``capacity`` resizes the ring)."""
    global _enabled, _capacity, _ring, _head, _total
    with _lock:
        if capacity is not None:
            cap = int(capacity)
            if cap < 1:
                raise ValueError("capacity must be >= 1")
            _capacity = cap
            _ring = [None] * cap
            _head = 0
            _total = 0
        _enabled = True


def disable() -> None:
    """Stop recording.  Already-recorded spans stay readable."""
    global _enabled
    with _lock:
        _enabled = False


def is_enabled() -> bool:
    return _enabled


def clear() -> None:
    """Drop every recorded span (the ring keeps its capacity)."""
    global _head, _total
    with _lock:
        for i in range(_capacity):
            _ring[i] = None
        _head = 0
        _total = 0


def spans() -> list[SpanRecord]:
    """Recorded spans, oldest first (at most the ring capacity)."""
    with _lock:
        if _total <= _capacity:
            out = _ring[:_head]
        else:
            out = _ring[_head:] + _ring[:_head]
        return [r for r in out if r is not None]


def drain() -> list[SpanRecord]:
    """Return every recorded span and clear the ring (one atomic step).

    The worker-process side of span shipping: after running a task list
    the worker drains its local ring and sends the records back on the
    run ack, so the parent's :func:`ingest` merges them into the main
    timeline.
    """
    global _head, _total
    with _lock:
        if _total <= _capacity:
            out = _ring[:_head]
        else:
            out = _ring[_head:] + _ring[:_head]
        for i in range(_capacity):
            _ring[i] = None
        _head = 0
        _total = 0
        return [r for r in out if r is not None]


def ingest(records) -> int:
    """Merge externally-recorded spans (worker processes) into the ring.

    Records keep their own ``pid``/``tid``/ids, so a merged timeline
    shows worker tasks under their real process.  Returns the number of
    records ingested.
    """
    n = 0
    for rec in records:
        if isinstance(rec, SpanRecord):
            _record(rec)
            n += 1
    return n


# ---------------------------------------------------------------------- #
# Chrome trace-event export
# ---------------------------------------------------------------------- #
def export_chrome(path=None) -> dict:
    """The recorded timeline as a Chrome trace-event document.

    Returns the ``{"traceEvents": [...]}`` dict; with ``path`` it is
    also serialized as JSON (openable in ``chrome://tracing`` or
    Perfetto).  Timestamps are microseconds from ``perf_counter``'s
    epoch; complete events (``"ph": "X"``) carry their duration, instant
    events export as ``"ph": "i"``.
    """
    events = []
    for r in spans():
        ev = {
            "name": r.name,
            "cat": r.cat or "runtime",
            "ts": r.start_ns / 1e3,
            "pid": r.pid,
            "tid": r.tid,
            "args": {"span_id": r.span_id, "parent_id": r.parent_id, **r.args},
        }
        if r.dur_ns > 0:
            ev["ph"] = "X"
            ev["dur"] = r.dur_ns / 1e3
        else:
            ev["ph"] = "i"
            ev["s"] = "t"
        events.append(ev)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if path is not None:
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
    return doc


def _reset_after_fork() -> None:  # pragma: no cover - fork hook
    """A forked child inherits the parent's ring; start it clean.

    Without this, a worker process draining its "own" spans would re-ship
    every span the parent had recorded before the fork (duplicating them
    on ingest), and the inherited lock could be held by a dead thread.
    """
    global _lock, _ring, _head, _total, _tls
    _lock = threading.Lock()
    _ring = [None] * _capacity
    _head = 0
    _total = 0
    _tls = threading.local()


os.register_at_fork(after_in_child=_reset_after_fork)
