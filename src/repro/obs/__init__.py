"""Runtime observability: span tracing, metrics, and report history.

Three cooperating layers, each usable alone:

* :mod:`repro.obs.trace` — a near-zero-overhead span tracer over the
  execution stack (compile, runtime phases, arena, worker-process
  tasks), exportable as Chrome trace-event JSON.
* :mod:`repro.obs.metrics` — a process-wide counter/gauge/histogram
  registry absorbing the core's scattered stat surfaces behind one
  ``snapshot()``.
* :mod:`repro.obs.reports` — a bounded ExecutionReport history with
  per-plan aggregation; ``observed_measurements()`` feeds the tuner.

CLI: ``repro trace run ... -o trace.json`` and ``repro stats [--json]``.
"""

from repro.obs import metrics, reports, trace
from repro.obs.logcfg import configure_logging, get_logger
from repro.obs.metrics import registry
from repro.obs.reports import history
from repro.obs.trace import export_chrome, span

configure_logging()

__all__ = [
    "configure_logging",
    "export_chrome",
    "get_logger",
    "history",
    "metrics",
    "registry",
    "reports",
    "span",
    "trace",
]
