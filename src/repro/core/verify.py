"""Freivalds' randomized verification of matrix products.

FMM implementations are prime targets for subtle coefficient bugs; testing
``C == A @ B`` directly costs another O(n^3) multiply.  Freivalds' check
costs O(n^2) per trial: pick a random vector ``x`` and compare
``A (B x)`` with ``C x``; a wrong product escapes one trial with
probability <= 1/2 (over sign vectors), so ``t`` trials give confidence
``1 - 2^-t``.  The engines' test suites and the CLI use this for large
problems where a dense reference multiply would dominate runtime.
"""

from __future__ import annotations

import numpy as np

__all__ = ["freivalds", "verify_product"]


def freivalds(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    trials: int = 16,
    rtol: float = 1e-8,
    rng: np.random.Generator | None = None,
) -> bool:
    """Probabilistic check that ``C == A @ B`` (within roundoff).

    Uses random sign vectors; the tolerance scales with the operand
    magnitudes so legitimate FMM roundoff (slightly larger than classical)
    is not flagged.
    """
    if A.ndim != 2 or B.ndim != 2 or C.ndim != 2:
        raise ValueError("freivalds expects matrices")
    if A.shape[1] != B.shape[0] or C.shape != (A.shape[0], B.shape[1]):
        raise ValueError(
            f"inconsistent shapes A{A.shape} B{B.shape} C{C.shape}"
        )
    rng = rng or np.random.default_rng(0x5EED)
    scale = (
        float(np.abs(A).sum(axis=1).max() * np.abs(B).max())
        + float(np.abs(C).max())
        + 1e-300
    ) * B.shape[0]
    for _ in range(trials):
        x = rng.choice([-1.0, 1.0], size=B.shape[1])
        lhs = A @ (B @ x)
        rhs = C @ x
        if np.abs(lhs - rhs).max() > rtol * scale:
            return False
    return True


def verify_product(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    exact_threshold: int = 512,
    trials: int = 16,
) -> bool:
    """Exact check for small problems, Freivalds for large ones."""
    m, k = A.shape
    n = B.shape[1]
    if max(m, k, n) <= exact_threshold:
        ref = A @ B
        scale = float(np.abs(ref).max()) + 1e-300
        return bool(np.abs(C - ref).max() <= 1e-8 * scale * max(k, 1))
    return freivalds(A, B, C, trials=trials)
