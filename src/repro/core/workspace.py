"""Workspace arena: preallocated, recycled buffers for the parallel runtime.

The task-graph runtime (:mod:`repro.core.runtime`) stages every core
multiply through temporary slabs — the full gathered/stacked slabs of the
staged pipeline, or the small per-worker S/T/M buffers of the fused
streaming pipeline.  Allocating the temporaries per call would dominate
the serve-many-multiplies workload the ROADMAP targets, so this module
provides an arena: workspaces are built once per ``(plan, lead-shape,
mode)`` configuration, checked out for the duration of one execution, and
returned to a free list for the next call.  Repeated same-plan multiplies
therefore perform **zero** per-call temporary allocations on the hot path
(verified by ``tests/core/test_workspace.py`` and
``benchmarks/bench_parallel_runtime.py``).

Checkout is thread-safe: concurrent executions of the same plan each get
their own workspace (the arena grows to the high-water mark of concurrent
use and then stops allocating).

The arena is also the runtime's **memory instrument**: it tracks the bytes
currently checked out (``bytes_in_use``), the process-lifetime high-water
mark (``peak_bytes``), and per-execution peaks via :class:`PeakMeter`
windows (:meth:`WorkspaceArena.start_meter` /
:meth:`WorkspaceArena.finish_meter`) — this is how the execution report's
``peak_workspace_bytes`` is measured, and how the fused pipeline's memory
win over the staged one is asserted in tests and benchmarks.
"""

from __future__ import annotations

import threading
from collections import namedtuple
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PeakMeter",
    "Workspace",
    "WorkspaceArena",
    "workspace_arena",
    "arena_stats",
    "arena_clear",
]

ArenaStats = namedtuple(
    "ArenaStats",
    "allocations reuses bytes_allocated bytes_pooled bytes_in_use "
    "peak_bytes free in_use",
)


@dataclass(eq=False)
class Workspace:
    """One checked-out set of named buffers for a single execution.

    Buffers are plain C-contiguous ndarrays; the runtime takes reshaped
    views of them (always views, never copies) and writes via ``out=`` /
    ``copyto``, so a workspace is reusable with no clearing between calls.
    """

    key: tuple
    buffers: dict[str, np.ndarray] = field(default_factory=dict)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.buffers[name]

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.buffers.values())


class PeakMeter:
    """One measurement window over the arena's in-use bytes.

    ``baseline`` is the in-use byte count when the window opened; ``peak``
    tracks the maximum observed while it is active.
    :meth:`WorkspaceArena.finish_meter` returns ``peak - baseline`` — for
    a serial execution that is exactly the bytes the execution checked
    out; concurrent executions see each other's checkouts (the meter
    reports pressure on the shared arena, not a per-thread attribution).
    """

    __slots__ = ("baseline", "peak")

    def __init__(self, baseline: int) -> None:
        self.baseline = baseline
        self.peak = baseline


class WorkspaceArena:
    """Keyed pools of reusable :class:`Workspace` objects.

    ``acquire(key, spec_factory)`` returns a free workspace for ``key`` or
    builds one; ``release`` returns it to the pool.  Pooled (idle) memory
    is bounded by ``max_bytes``: a release that would push the pool past
    the bound drops the workspace instead (hot configurations simply
    re-pool on their next release), so a long-running server cycling
    through many shapes cannot grow without limit.  :meth:`clear` drops
    every pooled buffer immediately (tests do this between cases).
    """

    #: Default bound on idle pooled bytes (1 GiB).
    DEFAULT_MAX_BYTES = 1 << 30

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self._lock = threading.Lock()
        self._free: dict[tuple, list[Workspace]] = {}
        self.max_bytes = int(max_bytes)
        self._allocations = 0
        self._reuses = 0
        self._bytes_allocated = 0
        self._bytes_pooled = 0
        self._bytes_in_use = 0
        self._peak_bytes = 0
        self._in_use = 0
        self._meters: list[PeakMeter] = []

    def _note_in_use_locked(self, delta: int) -> None:
        """Adjust the in-use byte count and roll the high-water marks."""
        self._bytes_in_use += delta
        if delta > 0:
            if self._bytes_in_use > self._peak_bytes:
                self._peak_bytes = self._bytes_in_use
            for meter in self._meters:
                if self._bytes_in_use > meter.peak:
                    meter.peak = self._bytes_in_use

    def acquire(self, key: tuple, spec_factory) -> Workspace:
        """Check out a workspace for ``key``.

        ``spec_factory`` is only called on a pool miss — it must return a
        ``name -> (shape, dtype)`` mapping describing the buffers to
        build.  Keeping it a callable keeps the reuse hot path free of
        per-call spec construction.
        """
        with self._lock:
            pool = self._free.get(key)
            if pool:
                ws = pool.pop()
                self._bytes_pooled -= ws.nbytes
                self._reuses += 1
                self._in_use += 1
                self._note_in_use_locked(ws.nbytes)
                return ws
            self._allocations += 1
            self._in_use += 1
        # Build outside the lock: allocation can be slow and concurrent
        # acquires of other keys should not serialize behind it.
        ws = Workspace(
            key=key,
            buffers={
                name: np.empty(shape, dtype=dtype)
                for name, (shape, dtype) in spec_factory().items()
            },
        )
        with self._lock:
            self._bytes_allocated += ws.nbytes
            self._note_in_use_locked(ws.nbytes)
        return ws

    def release(self, ws: Workspace) -> None:
        with self._lock:
            self._in_use -= 1
            self._note_in_use_locked(-ws.nbytes)
            if self._bytes_pooled + ws.nbytes > self.max_bytes:
                return  # over the idle bound: let this workspace go
            self._bytes_pooled += ws.nbytes
            self._free.setdefault(ws.key, []).append(ws)

    # ------------------------------------------------------------------ #
    # Peak metering (per-execution high-water windows)
    # ------------------------------------------------------------------ #
    def start_meter(self) -> PeakMeter:
        """Open a high-water window over the arena's in-use bytes."""
        with self._lock:
            meter = PeakMeter(self._bytes_in_use)
            self._meters.append(meter)
            return meter

    def finish_meter(self, meter: PeakMeter) -> int:
        """Close a window; returns the peak bytes acquired during it."""
        with self._lock:
            try:
                self._meters.remove(meter)
            except ValueError:
                pass  # already closed (idempotent)
            return max(0, meter.peak - meter.baseline)

    def stats(self) -> ArenaStats:
        with self._lock:
            free = sum(len(v) for v in self._free.values())
            return ArenaStats(
                allocations=self._allocations,
                reuses=self._reuses,
                bytes_allocated=self._bytes_allocated,
                bytes_pooled=self._bytes_pooled,
                bytes_in_use=self._bytes_in_use,
                peak_bytes=self._peak_bytes,
                free=free,
                in_use=self._in_use,
            )

    def clear(self) -> None:
        """Drop every pooled workspace and reset the counters."""
        with self._lock:
            self._free.clear()
            self._allocations = 0
            self._reuses = 0
            self._bytes_allocated = 0
            self._bytes_pooled = 0
            self._bytes_in_use = 0
            self._peak_bytes = 0
            self._in_use = 0


#: The process-wide arena the runtime allocates from.
workspace_arena = WorkspaceArena()


def arena_stats() -> ArenaStats:
    """Counters of the global arena (allocations, reuses, bytes, pool sizes)."""
    return workspace_arena.stats()


def arena_clear() -> None:
    """Empty the global arena (drops pooled buffers, resets counters)."""
    workspace_arena.clear()
