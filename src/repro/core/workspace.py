"""Workspace arena: preallocated, recycled buffers for the parallel runtime.

The task-graph runtime (:mod:`repro.core.runtime`) stages every core
multiply through temporary slabs — the full gathered/stacked slabs of the
staged pipeline, or the small per-worker S/T/M buffers of the fused
streaming pipeline.  Allocating the temporaries per call would dominate
the serve-many-multiplies workload the ROADMAP targets, so this module
provides an arena: workspaces are built once per ``(plan, lead-shape,
mode)`` configuration, checked out for the duration of one execution, and
returned to a free list for the next call.  Repeated same-plan multiplies
therefore perform **zero** per-call temporary allocations on the hot path
(verified by ``tests/core/test_workspace.py`` and
``benchmarks/bench_parallel_runtime.py``).

Checkout is thread-safe: concurrent executions of the same plan each get
their own workspace (the arena grows to the high-water mark of concurrent
use and then stops allocating).

The arena is also the runtime's **memory instrument**: it tracks the bytes
currently checked out (``bytes_in_use``), the process-lifetime high-water
mark (``peak_bytes``), and per-execution peaks via :class:`PeakMeter`
windows (:meth:`WorkspaceArena.start_meter` /
:meth:`WorkspaceArena.finish_meter`) — this is how the execution report's
``peak_workspace_bytes`` is measured, and how the fused pipeline's memory
win over the staged one is asserted in tests and benchmarks.

The process runtime (``workers="processes"``) adds a second backend:
:class:`SharedMemoryArena` pools ``multiprocessing.shared_memory``
segments the same keyed way, so the operand slabs, gathered panels and
C-accumulator slots of one execution live in a single named segment every
worker process attaches once and recycles across calls.  The parent owns
segment lifetime exclusively (create + unlink); cleanup is triple-secured
via explicit :meth:`SharedMemoryArena.clear`, a ``weakref.finalize`` per
segment, and an atexit hook — the shared-memory leak test asserts no
``/dev/shm`` entry with the :data:`SHM_PREFIX` survives the suite.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import threading
import weakref
from collections import namedtuple
from dataclasses import dataclass, field

import numpy as np

from repro.obs import trace as _trace

__all__ = [
    "PeakMeter",
    "SHM_ALIGN",
    "SHM_PREFIX",
    "SharedMemoryArena",
    "SharedSegment",
    "Workspace",
    "WorkspaceArena",
    "pack_layout",
    "workspace_arena",
    "shared_arena",
    "arena_stats",
    "arena_clear",
    "shared_arena_stats",
    "shared_arena_clear",
]

ArenaStats = namedtuple(
    "ArenaStats",
    "allocations reuses bytes_allocated bytes_pooled bytes_in_use "
    "peak_bytes free in_use mmap_bytes_in_use mmap_peak_bytes mmap_open",
)

SharedArenaStats = namedtuple(
    "SharedArenaStats",
    "segments reuses bytes_total live_names unlinked",
)


@dataclass(eq=False)
class Workspace:
    """One checked-out set of named buffers for a single execution.

    Buffers are plain C-contiguous ndarrays; the runtime takes reshaped
    views of them (always views, never copies) and writes via ``out=`` /
    ``copyto``, so a workspace is reusable with no clearing between calls.

    A workspace spec may mark buffers ``"mmap"`` (the tiled lowering's
    slab-scale spill storage): those are built as ``np.memmap`` arrays
    over anonymous temp files and accounted separately — they back pages
    with disk, not RAM, so the arena's RAM meters (and the execution
    report's ``peak_workspace_bytes``) must not charge them.
    ``mmap_names`` records which buffers are spilled.
    """

    key: tuple
    buffers: dict[str, np.ndarray] = field(default_factory=dict)
    mmap_names: frozenset = frozenset()

    def __getitem__(self, name: str) -> np.ndarray:
        return self.buffers[name]

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.buffers.values())

    @property
    def ram_nbytes(self) -> int:
        """Bytes of the RAM-resident buffers (what the peak meters charge)."""
        return sum(
            b.nbytes for name, b in self.buffers.items()
            if name not in self.mmap_names
        )

    @property
    def mmap_nbytes(self) -> int:
        """Bytes of the mmap-spilled buffers (disk-backed working set)."""
        return sum(
            b.nbytes for name, b in self.buffers.items()
            if name in self.mmap_names
        )


class PeakMeter:
    """One measurement window over the arena's in-use bytes.

    ``baseline`` is the in-use byte count when the window opened; ``peak``
    tracks the maximum observed while it is active.
    :meth:`WorkspaceArena.finish_meter` returns ``peak - baseline`` — for
    a serial execution that is exactly the bytes the execution checked
    out; concurrent executions see each other's checkouts (the meter
    reports pressure on the shared arena, not a per-thread attribution).
    """

    __slots__ = ("baseline", "peak")

    def __init__(self, baseline: int) -> None:
        self.baseline = baseline
        self.peak = baseline


class WorkspaceArena:
    """Keyed pools of reusable :class:`Workspace` objects.

    ``acquire(key, spec_factory)`` returns a free workspace for ``key`` or
    builds one; ``release`` returns it to the pool.  Pooled (idle) memory
    is bounded by ``max_bytes``: a release that would push the pool past
    the bound drops the workspace instead (hot configurations simply
    re-pool on their next release), so a long-running server cycling
    through many shapes cannot grow without limit.  :meth:`clear` drops
    every pooled buffer immediately (tests do this between cases).
    """

    #: Default bound on idle pooled bytes (1 GiB).
    DEFAULT_MAX_BYTES = 1 << 30

    #: Default bound on idle pooled *mmap* bytes (disk-backed, so larger).
    DEFAULT_MAX_MMAP_BYTES = 4 << 30

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_mmap_bytes: int = DEFAULT_MAX_MMAP_BYTES,
    ) -> None:
        self._lock = threading.Lock()
        self._free: dict[tuple, list[Workspace]] = {}
        self.max_bytes = int(max_bytes)
        self.max_mmap_bytes = int(max_mmap_bytes)
        self._allocations = 0
        self._reuses = 0
        self._bytes_allocated = 0
        self._bytes_pooled = 0
        self._bytes_in_use = 0
        self._peak_bytes = 0
        self._in_use = 0
        self._mmap_bytes_pooled = 0
        self._mmap_bytes_in_use = 0
        self._mmap_peak_bytes = 0
        # The live-mapping count is touched by weakref finalizers, which
        # GC may run at any allocation point — including while a thread
        # holds a lock.  A dedicated re-entrant lock keeps that safe.
        self._mmap_open_lock = threading.RLock()
        self._mmap_open = 0
        self._meters: list[PeakMeter] = []

    def _note_in_use_locked(self, delta: int) -> None:
        """Adjust the in-use byte count and roll the high-water marks."""
        self._bytes_in_use += delta
        if delta > 0:
            if self._bytes_in_use > self._peak_bytes:
                self._peak_bytes = self._bytes_in_use
            for meter in self._meters:
                if self._bytes_in_use > meter.peak:
                    meter.peak = self._bytes_in_use

    def _note_mmap_in_use_locked(self, delta: int) -> None:
        """Adjust the spilled (mmap) in-use bytes and their high-water."""
        self._mmap_bytes_in_use += delta
        if delta > 0 and self._mmap_bytes_in_use > self._mmap_peak_bytes:
            self._mmap_peak_bytes = self._mmap_bytes_in_use

    def _mmap_buffer_closed(self) -> None:
        """Finalizer callback: one spilled buffer's mapping was released."""
        with self._mmap_open_lock:
            self._mmap_open -= 1

    def _new_mmap_buffer(self, shape, dtype) -> np.ndarray:
        """A buffer over an anonymous (already-unlinked) temp file.

        ``TemporaryFile`` unlinks on POSIX at creation, so a crash can
        never strand a spill file; the mapping holds its own reference to
        the underlying pages, so the descriptor closes immediately.  A
        ``weakref.finalize`` on the array keeps :attr:`stats`'s
        ``mmap_open`` an exact live-mapping count — the leak soak test's
        instrument.
        """
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
        f = tempfile.TemporaryFile(prefix="repro_tile_")
        try:
            f.truncate(nbytes)
            buf = np.memmap(f, dtype=dt, mode="w+", shape=tuple(shape))
        finally:
            f.close()
        with self._mmap_open_lock:
            self._mmap_open += 1
        weakref.finalize(buf, self._mmap_buffer_closed)
        return buf

    def acquire(self, key: tuple, spec_factory) -> Workspace:
        """Check out a workspace for ``key``.

        ``spec_factory`` is only called on a pool miss — it must return a
        ``name -> (shape, dtype)`` mapping describing the buffers to
        build; an entry may carry a third ``"mmap"`` element to request a
        disk-backed (``np.memmap``) buffer, which the RAM meters then do
        not charge.  Keeping it a callable keeps the reuse hot path free
        of per-call spec construction.
        """
        with _trace.span("arena.acquire", "arena") as sp:
            with self._lock:
                pool = self._free.get(key)
                if pool:
                    ws = pool.pop()
                    self._bytes_pooled -= ws.ram_nbytes
                    self._mmap_bytes_pooled -= ws.mmap_nbytes
                    self._reuses += 1
                    self._in_use += 1
                    self._note_in_use_locked(ws.ram_nbytes)
                    self._note_mmap_in_use_locked(ws.mmap_nbytes)
                    sp.set(reuse=True, bytes=ws.ram_nbytes)
                    return ws
                self._allocations += 1
                self._in_use += 1
            # Build outside the lock: allocation can be slow and concurrent
            # acquires of other keys should not serialize behind it.
            buffers: dict[str, np.ndarray] = {}
            mmap_names = set()
            for name, entry in spec_factory().items():
                shape, dtype = entry[0], entry[1]
                if len(entry) > 2 and entry[2] == "mmap":
                    buffers[name] = self._new_mmap_buffer(shape, dtype)
                    mmap_names.add(name)
                else:
                    buffers[name] = np.empty(shape, dtype=dtype)
            ws = Workspace(
                key=key, buffers=buffers, mmap_names=frozenset(mmap_names)
            )
            with self._lock:
                self._bytes_allocated += ws.ram_nbytes
                self._note_in_use_locked(ws.ram_nbytes)
                self._note_mmap_in_use_locked(ws.mmap_nbytes)
            sp.set(reuse=False, bytes=ws.ram_nbytes)
            return ws

    def release(self, ws: Workspace) -> None:
        _trace.instant("arena.recycle", "arena", bytes=ws.ram_nbytes)
        with self._lock:
            self._in_use -= 1
            self._note_in_use_locked(-ws.ram_nbytes)
            self._note_mmap_in_use_locked(-ws.mmap_nbytes)
            if (self._bytes_pooled + ws.ram_nbytes > self.max_bytes
                    or self._mmap_bytes_pooled + ws.mmap_nbytes
                    > self.max_mmap_bytes):
                return  # over an idle bound: let this workspace go
            self._bytes_pooled += ws.ram_nbytes
            self._mmap_bytes_pooled += ws.mmap_nbytes
            self._free.setdefault(ws.key, []).append(ws)

    # ------------------------------------------------------------------ #
    # Peak metering (per-execution high-water windows)
    # ------------------------------------------------------------------ #
    def start_meter(self) -> PeakMeter:
        """Open a high-water window over the arena's in-use bytes."""
        with self._lock:
            meter = PeakMeter(self._bytes_in_use)
            self._meters.append(meter)
            return meter

    def finish_meter(self, meter: PeakMeter) -> int:
        """Close a window; returns the peak bytes acquired during it."""
        with self._lock:
            try:
                self._meters.remove(meter)
            except ValueError:
                pass  # already closed (idempotent)
            return max(0, meter.peak - meter.baseline)

    def stats(self) -> ArenaStats:
        with self._mmap_open_lock:
            mmap_open = self._mmap_open
        with self._lock:
            free = sum(len(v) for v in self._free.values())
            return ArenaStats(
                allocations=self._allocations,
                reuses=self._reuses,
                bytes_allocated=self._bytes_allocated,
                bytes_pooled=self._bytes_pooled,
                bytes_in_use=self._bytes_in_use,
                peak_bytes=self._peak_bytes,
                free=free,
                in_use=self._in_use,
                mmap_bytes_in_use=self._mmap_bytes_in_use,
                mmap_peak_bytes=self._mmap_peak_bytes,
                mmap_open=mmap_open,
            )

    def clear(self) -> None:
        """Drop every pooled workspace and reset the counters.

        ``mmap_open`` is *not* reset: it is decremented only by each
        spilled buffer's finalizer, so after a clear + GC it returns to
        the count of mappings still genuinely alive — that exactness is
        what the leak soak asserts on.
        """
        with self._lock:
            self._free.clear()
            self._allocations = 0
            self._reuses = 0
            self._bytes_allocated = 0
            self._bytes_pooled = 0
            self._bytes_in_use = 0
            self._peak_bytes = 0
            self._in_use = 0
            self._mmap_bytes_pooled = 0
            self._mmap_bytes_in_use = 0
            self._mmap_peak_bytes = 0


# ---------------------------------------------------------------------- #
# Shared-memory arena (the process runtime's workspace backend)
# ---------------------------------------------------------------------- #

#: Name prefix of every segment this process creates — the leak test (and
#: a human inspecting ``/dev/shm``) can attribute segments to this runtime.
SHM_PREFIX = "reproshm"

#: Byte alignment of every buffer packed into a segment (cache line ×1).
SHM_ALIGN = 64


def pack_layout(entries) -> tuple[dict, int]:
    """Pack named arrays into one segment: ``{name: (offset, shape, dtype)}``.

    ``entries`` is an iterable of ``(name, shape, dtype)``; offsets are
    :data:`SHM_ALIGN`-aligned.  Returns ``(layout, total_bytes)``.  The
    layout dict is what a bind descriptor ships to the worker processes —
    both sides rebuild identical ``np.ndarray`` views from it, so the
    parent and every worker see the same buffers at the same offsets.
    """
    layout: dict = {}
    offset = 0
    for name, shape, dtype in entries:
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        layout[name] = (offset, tuple(int(s) for s in shape), dt.str)
        offset += (nbytes + SHM_ALIGN - 1) // SHM_ALIGN * SHM_ALIGN
    return layout, max(offset, 1)


def _destroy_shm(shm) -> None:
    """Close + unlink one segment (idempotent; finalizer-safe)."""
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass


@dataclass(eq=False)
class SharedSegment:
    """One owned shared-memory segment, recycled by arena key.

    ``views(layout)`` materializes the named ndarray views of a packed
    layout (see :func:`pack_layout`) over the segment's buffer.  The
    attached ``weakref.finalize`` destroys the segment when the wrapper
    is garbage-collected without an explicit :meth:`destroy` — segments
    can never outlive the arena that created them.
    """

    shm: object
    nbytes: int
    key: tuple
    _finalizer: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._finalizer is None:
            self._finalizer = weakref.finalize(self, _destroy_shm, self.shm)

    @property
    def name(self) -> str:
        return self.shm.name

    def views(self, layout: dict) -> dict:
        return {
            name: np.ndarray(shape, dtype=np.dtype(dt),
                             buffer=self.shm.buf, offset=off)
            for name, (off, shape, dt) in layout.items()
        }

    def destroy(self) -> None:
        self._finalizer()


class SharedMemoryArena:
    """Keyed pools of reusable shared-memory segments (parent side).

    The process twin of :class:`WorkspaceArena`: ``acquire(key, nbytes)``
    returns a pooled segment of at least ``nbytes`` for ``key`` or
    creates one; ``release`` re-pools it for the next same-key call, so a
    steady-state process-mode multiply creates **zero** new segments (and
    its workers re-use their cached attachments — the segment *name* is
    the recycling contract).  Idle bytes are bounded by ``max_bytes``;
    over-bound releases destroy the segment instead.  :meth:`clear`
    destroys everything pooled; an atexit hook clears the global arena,
    and every segment additionally carries its own finalizer.
    """

    DEFAULT_MAX_BYTES = 1 << 30

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self._lock = threading.Lock()
        self._free: dict[tuple, list[SharedSegment]] = {}
        self._live: dict[str, SharedSegment] = {}
        self.max_bytes = int(max_bytes)
        self._seq = 0
        self._created = 0
        self._reuses = 0
        self._unlinked = 0

    def acquire(self, key: tuple, nbytes: int) -> SharedSegment:
        """Check out a segment of at least ``nbytes`` for ``key``."""
        nbytes = int(nbytes)
        with self._lock:
            pool = self._free.get(key)
            if pool:
                seg = pool.pop()
                if seg.nbytes >= nbytes:
                    self._reuses += 1
                    return seg
                # Key layouts grew (e.g. a tunable changed): replace.
                del self._live[seg.name]
                self._unlinked += 1
                stale = seg
            else:
                stale = None
            self._seq += 1
            name = f"{SHM_PREFIX}_{os.getpid()}_{self._seq}"
        if stale is not None:
            stale.destroy()
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        seg = SharedSegment(shm=shm, nbytes=nbytes, key=key)
        with self._lock:
            self._created += 1
            self._live[seg.name] = seg
        return seg

    def release(self, seg: SharedSegment) -> None:
        with self._lock:
            pooled = sum(
                s.nbytes for ss in self._free.values() for s in ss
            )
            if pooled + seg.nbytes <= self.max_bytes:
                self._free.setdefault(seg.key, []).append(seg)
                return
            del self._live[seg.name]
            self._unlinked += 1
        seg.destroy()

    def segment_names(self) -> list[str]:
        """Names of every live segment this arena owns (leak checks)."""
        with self._lock:
            return sorted(self._live)

    def stats(self) -> SharedArenaStats:
        with self._lock:
            return SharedArenaStats(
                segments=self._created,
                reuses=self._reuses,
                bytes_total=sum(s.nbytes for s in self._live.values()),
                live_names=len(self._live),
                unlinked=self._unlinked,
            )

    def clear(self) -> None:
        """Destroy every pooled segment and reset the counters.

        Only idle (released) segments can be pooled, so clearing never
        races an in-flight execution's views.
        """
        with self._lock:
            segs = [s for ss in self._free.values() for s in ss]
            self._free.clear()
            for seg in segs:
                self._live.pop(seg.name, None)
            self._unlinked += len(segs)
            self._created = 0
            self._reuses = 0
        for seg in segs:
            seg.destroy()


#: The process-wide arena the runtime allocates from.
workspace_arena = WorkspaceArena()

#: The process-wide shared-memory arena of the process runtime.
shared_arena = SharedMemoryArena()
atexit.register(shared_arena.clear)


def _disown_shared_after_fork() -> None:  # pragma: no cover - fork hook
    """Forked children inherit the arena dicts but not segment ownership.

    Drop the inherited wrappers — and detach their finalizers — without
    unlinking, so a child's exit (atexit hook or GC) can never destroy
    the parent's live segments.  No lock: the child is single-threaded
    here, and the inherited lock may be in a locked state.
    """
    shared_arena._lock = threading.Lock()
    segs = [s for ss in shared_arena._free.values()
            for s in ss] + list(shared_arena._live.values())
    shared_arena._free = {}
    shared_arena._live = {}
    shared_arena._created = 0
    shared_arena._reuses = 0
    shared_arena._unlinked = 0
    for seg in segs:
        seg._finalizer.detach()


os.register_at_fork(after_in_child=_disown_shared_after_fork)


def arena_stats() -> ArenaStats:
    """Counters of the global arena (allocations, reuses, bytes, pool sizes)."""
    return workspace_arena.stats()


def arena_clear() -> None:
    """Empty the global arena (drops pooled buffers, resets counters)."""
    workspace_arena.clear()


def shared_arena_stats() -> SharedArenaStats:
    """Counters of the global shared-memory arena (process runtime)."""
    return shared_arena.stats()


def shared_arena_clear() -> None:
    """Destroy the global shared-memory arena's pooled segments."""
    shared_arena.clear()
