"""Recursive block storage indexing (Morton-like ordering), paper §3.3.

Multi-level FMM indexes the submatrices of each operand in *recursive block*
order: the matrix is split into an ``r0 x c0`` grid of blocks numbered in
row-major order, each block is split into an ``r1 x c1`` grid numbered
row-major within the block, and so on (Fig. 3 of the paper shows the
``m~ = k~ = 2``, three-level case).

This module provides the index maps between recursive-block order and flat
row-major order, the block-view extraction used by the executors, and the
illustration grid of Fig. 3.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "recursive_to_rowmajor",
    "rowmajor_to_recursive",
    "block_index_grid",
    "block_views",
    "block_shape",
]


def _check_grids(grids: list[tuple[int, int]]) -> None:
    if not grids:
        raise ValueError("need at least one level of partitioning")
    for g in grids:
        if len(g) != 2 or g[0] < 1 or g[1] < 1:
            raise ValueError(f"invalid grid {g}; levels are (rows, cols) pairs")


def recursive_to_rowmajor(grids: list[tuple[int, int]]) -> np.ndarray:
    """Map recursive-block indices to flat row-major indices.

    ``grids`` lists the per-level partition grid ``(rows_l, cols_l)`` from the
    outermost level inward.  Returns an integer array ``perm`` of length
    ``prod(rows_l * cols_l)`` with ``perm[rec] == rowmajor``: the block that
    is visited ``rec``-th in recursive order sits at flat row-major position
    ``perm[rec]`` in the full ``prod(rows_l) x prod(cols_l)`` block grid.
    """
    _check_grids(grids)
    total = 1
    for r, c in grids:
        total *= r * c
    perm = np.empty(total, dtype=np.int64)
    tot_cols = int(np.prod([c for _, c in grids]))
    for rec in range(total):
        rows, cols = _split_recursive(rec, grids)
        row = 0
        col = 0
        for (r, c), a, b in zip(grids, rows, cols):
            row = row * r + a
            col = col * c + b
        perm[rec] = row * tot_cols + col
    return perm


def rowmajor_to_recursive(grids: list[tuple[int, int]]) -> np.ndarray:
    """Inverse of :func:`recursive_to_rowmajor`."""
    perm = recursive_to_rowmajor(grids)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm))
    return inv


def _split_recursive(
    rec: int, grids: list[tuple[int, int]]
) -> tuple[list[int], list[int]]:
    """Decompose a recursive index into per-level (row, col) coordinates."""
    digits: list[tuple[int, int]] = []
    for r, c in reversed(grids):
        rec, d = divmod(rec, r * c)
        digits.append(divmod(d, c))
    digits.reverse()
    rows = [d[0] for d in digits]
    cols = [d[1] for d in digits]
    return rows, cols


def block_index_grid(grids: list[tuple[int, int]]) -> np.ndarray:
    """The Fig.-3 illustration: a block grid holding recursive indices.

    Returns a ``prod(rows_l) x prod(cols_l)`` integer array whose ``(i, j)``
    entry is the recursive-block index of the block at grid position
    ``(i, j)``.  For ``grids=[(2,2)]*3`` this reproduces the 8x8 layout of
    Fig. 3 (values 0..63).
    """
    perm = recursive_to_rowmajor(grids)
    rows = int(np.prod([r for r, _ in grids]))
    cols = int(np.prod([c for _, c in grids]))
    grid = np.empty(rows * cols, dtype=np.int64)
    grid[perm] = np.arange(len(perm))
    return grid.reshape(rows, cols)


def block_shape(
    shape: tuple[int, int], grids: list[tuple[int, int]]
) -> tuple[int, int]:
    """Size of one innermost block; raises if ``shape`` is not divisible."""
    rows = int(np.prod([r for r, _ in grids]))
    cols = int(np.prod([c for _, c in grids]))
    if shape[0] % rows or shape[1] % cols:
        raise ValueError(
            f"shape {shape} not divisible by block grid {rows}x{cols}"
        )
    return shape[0] // rows, shape[1] // cols


def block_views(X: np.ndarray, grids: list[tuple[int, int]]) -> list[np.ndarray]:
    """Views of the blocks of ``X`` in recursive-block order.

    All returned arrays are views (no copies); writing through them updates
    ``X``.  ``X``'s dimensions must be divisible by the total block grid.
    """
    _check_grids(grids)
    br, bc = block_shape(X.shape, grids)
    perm = recursive_to_rowmajor(grids)
    tot_cols = int(np.prod([c for _, c in grids]))
    views: list[np.ndarray] = []
    for rec in range(len(perm)):
        flat = perm[rec]
        i, j = divmod(int(flat), tot_cols)
        views.append(X[i * br : (i + 1) * br, j * bc : (j + 1) * bc])
    return views
