"""Execution engines and the public ``multiply`` entry point.

Two engines run any (multi-level, hybrid) FMM algorithm from the catalog:

* :class:`DirectEngine` — vectorized NumPy execution of eq. (5): operand
  sums, one ``matmul`` per product, W-weighted scatter.  Fast and simple;
  the correctness oracle for everything else.
* :class:`BlockedEngine` — the simulated-BLIS path: every product runs
  through the packed five-loop GEMM with variant-specific fusion
  (:mod:`repro.core.variants`), instrumented with the counters the
  performance model prices.  Optionally thread-parallel over the 3rd loop.

Both engines peel non-divisible sizes dynamically (paper §4.1) and accept a
different algorithm per level (hybrid compositions, §5.2).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.blis.counters import OpCounters
from repro.blis.gemm import packed_gemm
from repro.blis.params import BlockingParams
from repro.core.fmm import FMMAlgorithm
from repro.core.kronecker import MultiLevelFMM
from repro.core.morton import block_views
from repro.core.peeling import peel
from repro.core.variants import run_fmm_blocked

__all__ = ["DirectEngine", "BlockedEngine", "multiply", "resolve_levels"]


def resolve_levels(algorithm, levels: int = 1) -> MultiLevelFMM:
    """Normalize an algorithm spec into a :class:`MultiLevelFMM`.

    ``algorithm`` may be an :class:`FMMAlgorithm`, a catalog spec (name,
    "<m,k,n>" string or tuple), a list of any of those (one per level,
    hybrid allowed), or an existing :class:`MultiLevelFMM`.  ``levels``
    replicates a single algorithm homogeneously.
    """
    from repro.algorithms.catalog import get_algorithm

    if isinstance(algorithm, MultiLevelFMM):
        return algorithm
    if isinstance(algorithm, (list,)) or (
        isinstance(algorithm, tuple) and algorithm and not isinstance(algorithm[0], int)
    ):
        return MultiLevelFMM([get_algorithm(a) for a in algorithm])
    algo = get_algorithm(algorithm)
    if levels < 1:
        raise ValueError("levels must be >= 1")
    return MultiLevelFMM([algo] * levels)


class DirectEngine:
    """Vectorized NumPy reference engine."""

    def __init__(self) -> None:
        self.last_peel = None

    def multiply(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        ml: MultiLevelFMM,
    ) -> np.ndarray:
        """``C += A @ B`` using the multi-level FMM ``ml``."""
        m, k = A.shape
        k2, n = B.shape
        _check_mult_shapes(A, B, C)
        Mt, Kt, Nt = ml.dims_total
        plan = peel(m, k, n, Mt, Kt, Nt)
        self.last_peel = plan

        if plan.has_core:
            mp, kp, np_ = plan.core
            Av = block_views(A[:mp, :kp], ml.grids("A"))
            Bv = block_views(B[:kp, :np_], ml.grids("B"))
            Cv = block_views(C[:mp, :np_], ml.grids("C"))
            sub_m = mp // Mt
            sub_k = kp // Kt
            sub_n = np_ // Nt
            for ai, ac, bi, bc, ci, cc in ml.columns:
                S = _vsum(ai, ac, Av, (sub_m, sub_k), A.dtype)
                T = _vsum(bi, bc, Bv, (sub_k, sub_n), B.dtype)
                M = S @ T
                for i, w in zip(ci, cc):
                    if w == 1:
                        Cv[int(i)] += M
                    elif w == -1:
                        Cv[int(i)] -= M
                    else:
                        Cv[int(i)] += w * M
        for f in plan.fringes:
            if 0 in f.shape:
                continue
            C[f.c_rows, f.c_cols] += A[f.a_rows, f.a_cols] @ B[f.b_rows, f.b_cols]
        return C


class BlockedEngine:
    """Simulated-BLIS engine with instrumentation and variants.

    Parameters
    ----------
    params:
        Cache/register blocking (defaults to the paper's Ivy Bridge config).
    variant:
        ``"naive"``, ``"ab"`` or ``"abc"`` (see :mod:`repro.core.variants`).
    threads:
        Worker count for the 3rd-loop data parallelism; 1 = sequential.
    mode:
        Macro-kernel granularity, ``"slab"`` (fast) or ``"micro"`` (faithful
        register-tile loop).
    """

    def __init__(
        self,
        params: BlockingParams | None = None,
        variant: str = "abc",
        threads: int = 1,
        mode: str = "slab",
    ) -> None:
        self.params = params or BlockingParams()
        self.variant = variant
        self.threads = int(threads)
        self.mode = mode
        self.counters = OpCounters()
        self.last_peel = None

    def multiply(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        ml: MultiLevelFMM,
    ) -> np.ndarray:
        """``C += A @ B`` through the packed five-loop substrate."""
        _check_mult_shapes(A, B, C)
        m, k = A.shape
        n = B.shape[1]
        Mt, Kt, Nt = ml.dims_total
        plan = peel(m, k, n, Mt, Kt, Nt)
        self.last_peel = plan

        pool = ThreadPoolExecutor(self.threads) if self.threads > 1 else None
        try:
            if plan.has_core:
                mp, kp, np_ = plan.core
                Av = block_views(A[:mp, :kp], ml.grids("A"))
                Bv = block_views(B[:kp, :np_], ml.grids("B"))
                Cv = block_views(C[:mp, :np_], ml.grids("C"))
                run_fmm_blocked(
                    Av, Bv, Cv, ml,
                    variant=self.variant,
                    params=self.params,
                    counters=self.counters,
                    pool=pool,
                    mode=self.mode,
                )
            for f in plan.fringes:
                if 0 in f.shape:
                    continue
                packed_gemm(
                    [(1.0, A[f.a_rows, f.a_cols])],
                    [(1.0, B[f.b_rows, f.b_cols])],
                    [(1.0, C[f.c_rows, f.c_cols])],
                    self.params,
                    self.counters,
                    mode=self.mode,
                    pool=pool,
                )
        finally:
            if pool is not None:
                pool.shutdown()
        return C

    def gemm(self, A: np.ndarray, B: np.ndarray, C: np.ndarray) -> np.ndarray:
        """Plain packed GEMM (the BLIS baseline the paper compares against)."""
        _check_mult_shapes(A, B, C)
        pool = ThreadPoolExecutor(self.threads) if self.threads > 1 else None
        try:
            packed_gemm(
                [(1.0, A)], [(1.0, B)], [(1.0, C)],
                self.params, self.counters, mode=self.mode, pool=pool,
            )
        finally:
            if pool is not None:
                pool.shutdown()
        return C


def multiply(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray | None = None,
    algorithm="strassen",
    levels: int = 1,
    variant: str = "abc",
    engine: str = "direct",
    params: BlockingParams | None = None,
    threads: int = 1,
    mode: str = "slab",
) -> np.ndarray:
    """Fast matrix multiplication: returns ``C + A @ B``.

    The one-call public API.  ``algorithm``/``levels`` select any member of
    the generated family (hybrid multi-level via a list, e.g.
    ``algorithm=["strassen", "<3,3,3>"]``); ``engine`` picks the NumPy
    reference path (``"direct"``) or the instrumented simulated-BLIS path
    (``"blocked"``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import multiply
    >>> A = np.random.rand(64, 64); B = np.random.rand(64, 64)
    >>> C = multiply(A, B, algorithm="strassen", levels=2)
    >>> np.allclose(C, A @ B)
    True
    """
    A = np.ascontiguousarray(A, dtype=np.float64)
    B = np.ascontiguousarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible operand shapes {A.shape} x {B.shape}")
    if C is None:
        C = np.zeros((A.shape[0], B.shape[1]))
    ml = resolve_levels(algorithm, levels)
    if engine == "direct":
        DirectEngine().multiply(A, B, C, ml)
    elif engine == "blocked":
        BlockedEngine(params=params, variant=variant, threads=threads, mode=mode).multiply(
            A, B, C, ml
        )
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return C


def _vsum(idx, coef, views, shape, dtype):
    out = None
    for i, c in zip(idx, coef):
        v = views[int(i)]
        if out is None:
            out = v * c if c != 1 else v.astype(dtype, copy=True)
        elif c == 1:
            out += v
        elif c == -1:
            out -= v
        else:
            out += c * v
    if out is None:
        out = np.zeros(shape, dtype=dtype)
    return out


def _check_mult_shapes(A, B, C):
    if A.shape[1] != B.shape[0] or C.shape != (A.shape[0], B.shape[1]):
        raise ValueError(
            f"inconsistent shapes: A {A.shape}, B {B.shape}, C {C.shape}"
        )
