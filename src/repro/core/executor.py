"""Execution engines and the public ``multiply`` entry points.

Every multiply flows through one compiled artifact: the
:class:`~repro.core.compile.CompiledPlan` produced (and LRU-cached) by
:func:`repro.core.compile.compile`.  Since the task-graph refactor the
engines are thin *clients of the runtime*
(:mod:`repro.core.runtime`) — they re-derive nothing per call and own no
execution loop of their own:

* :class:`DirectEngine` — hands the compiled plan to
  :func:`repro.core.runtime.execute_plan`: the plan's task DAG
  (gather/product/scatter over arena workspace) runs on ``threads``
  workers from the shared pool; ``threads=1`` executes the identical
  schedule inline.  Fast and simple; the correctness oracle for
  everything else.
* :class:`BlockedEngine` — the simulated-BLIS path: the *same* task
  graph, with :class:`~repro.core.variants.BlisProductLeaf` as its leaf
  kernel — every product runs through the packed five-loop GEMM with
  variant-specific fusion, instrumented with the counters the
  performance model prices.  Thread-parallel across products using the
  same shared runtime pools.

Public API on top: :func:`multiply` (with model-guided
``engine="auto"`` dispatch, which also picks a thread count from the
machine model), :func:`multiply_batched` (one compiled plan amortized
over a stack of same-shape multiplies), and dtype generality —
float32/float64 operands are preserved end-to-end, everything else is
promoted to float64.  Peeling for non-divisible sizes (paper §4.1) and
per-level hybrid algorithms (§5.2) come with the plan.
"""

from __future__ import annotations

import numpy as np

from repro.blis.counters import OpCounters
from repro.blis.gemm import packed_gemm
from repro.blis.params import BlockingParams
from repro.core import compile as plancache
from repro.core import runtime
from repro.core.compile import SUPPORTED_DTYPES, CompiledPlan
from repro.core.kronecker import MultiLevelFMM
from repro.core.runtime import check_exec_shapes as _check_exec_shapes
from repro.core.spec import (
    normalize_backend,
    normalize_fusion,
    normalize_threads,
    normalize_tune,
    normalize_variant,
    normalize_workers,
    resolve_levels,
)
from repro.core.variants import BlisProductLeaf
from repro.obs.logcfg import get_logger

_log = get_logger(__name__)

__all__ = [
    "ENGINES",
    "DirectEngine",
    "BlockedEngine",
    "multiply",
    "multiply_batched",
    "resolve_levels",
]

#: Engines :func:`multiply` dispatches to (``"auto"`` resolves to one).
ENGINES = ("direct", "blocked")


def _compute_dtype(*arrays, dtype=None) -> np.dtype:
    """Execution dtype: an explicit request, or the operands' common type.

    float32/float64 are preserved; any other input type (ints, float16...)
    promotes to float64 like a NumPy ufunc would round up.
    """
    if dtype is not None:
        dt = np.dtype(dtype)
        if dt not in SUPPORTED_DTYPES:
            raise ValueError(f"unsupported dtype {dt}")
        return dt
    dt = np.result_type(*arrays)
    return dt if dt in SUPPORTED_DTYPES else np.dtype(np.float64)


def _contig_operand(X: np.ndarray, dt: np.dtype, name: str) -> np.ndarray:
    """C-contiguous, dtype-matched operand — logging silent RAM copies.

    A contiguous operand of the right dtype passes through untouched
    (``np.memmap``-backed arrays included: their pages stream through
    the tiled lowering's window on demand).  Anything else must be
    copied for the runtime's gather and kernels — and when the source
    is mmap-backed or a non-owned view, that copy silently materializes
    the full slab in RAM, which defeats an out-of-core input.  That
    case used to be invisible; it now lands in this module's log.
    """
    out = np.ascontiguousarray(X, dtype=dt)
    if out is X or np.may_share_memory(out, X):
        return out
    base, mmapped = X, False
    while isinstance(base, np.ndarray) and not mmapped:
        mmapped = isinstance(base, np.memmap)
        base = base.base
    if mmapped or (X.base is not None and not X.flags.owndata):
        kind = "mmap-backed" if mmapped else "non-owned"
        _log.info(
            "operand %s (%s, shape %s, dtype %s) was copied into a "
            "contiguous %s RAM slab; pass it C-contiguous in the "
            "execution dtype to stream it through the out-of-core path",
            name, kind, X.shape, X.dtype, dt,
        )
    return out


def _compile_for(A: np.ndarray, B: np.ndarray, algorithm, variant: str) -> CompiledPlan:
    """Compile a plan matching already-validated 2-D operands."""
    return plancache.compile(
        (A.shape[0], A.shape[1], B.shape[1]),
        algorithm,
        variant=variant,
        dtype=_compute_dtype(A, B),
    )


def _resolve_workers(workers, procs, threads):
    """Fold the ``workers``/``procs`` knobs into a ``(workers, threads)`` pair.

    ``procs=N`` is shorthand for ``workers="processes", threads=N``; it
    conflicts with an explicit ``workers="threads"`` or a *different*
    explicit ``threads`` count.
    """
    workers = normalize_workers(workers)
    if procs is None:
        return workers, threads
    procs = normalize_threads(procs)
    if workers is not None and workers != "processes":
        raise ValueError(
            f"procs={procs} requests the process runtime; it cannot be "
            f"combined with workers={workers!r}"
        )
    if threads is not None and threads != procs:
        raise ValueError(
            f"procs={procs} conflicts with threads={threads}; pass one "
            "worker count, not two"
        )
    return "processes", procs


class DirectEngine:
    """Thin client of the task-graph runtime (:mod:`repro.core.runtime`).

    Parameters
    ----------
    threads:
        Worker count for the task DAG; 1 (default) executes the same
        schedule inline with no pool involved.
    vector_cap:
        Per-element workload bound (elements across the stacked S/T/M
        intermediates) under which the arena task-graph path is used;
        larger cores use the serial per-step gather loop to bound
        workspace.
    chunk_target:
        Intermediate-size target (elements) for slicing a batch into
        cache-resident chunks on the task-graph path.
    backend:
        Leaf-kernel backend name from the :mod:`repro.kernels` registry
        (``"reference"`` default; ``"specialized"`` / ``"numba"`` compile
        per-plan whole-core kernels and transparently delegate to the
        interpreted pipeline for call shapes they do not serve — check
        ``last_report.backend_path``).
    workers:
        Runtime worker mode: ``"threads"`` (default) runs the task DAG on
        the shared thread pool; ``"processes"`` on the shared-memory
        process pool (GIL-free; see :mod:`repro.core.procpool`).
    """

    def __init__(
        self,
        threads: int = 1,
        vector_cap: int = runtime.DEFAULT_VECTOR_CAP,
        chunk_target: int = runtime.DEFAULT_CHUNK_TARGET,
        backend: str | None = None,
        workers: str | None = None,
    ) -> None:
        self.threads = normalize_threads(threads) or 1
        self.vector_cap = int(vector_cap)
        self.chunk_target = int(chunk_target)
        self.backend = normalize_backend(backend)
        self.workers = normalize_workers(workers)
        self.last_peel = None
        self.last_plan: CompiledPlan | None = None
        self.last_report: runtime.ExecutionReport | None = None

    def multiply(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        ml: MultiLevelFMM,
    ) -> np.ndarray:
        """``C += A @ B`` using the multi-level FMM ``ml`` (compat shim).

        Compiles (or fetches from the plan cache) the matching
        :class:`CompiledPlan` and defers to :meth:`execute`.
        """
        _check_mult_shapes(A, B, C)
        return self.execute(_compile_for(A, B, ml, "abc"), A, B, C)

    def execute(
        self, cplan: CompiledPlan, A: np.ndarray, B: np.ndarray, C: np.ndarray
    ) -> np.ndarray:
        """Run a compiled plan through the runtime: ``C += A @ B``.

        Operands may be 2-D or batched ``(batch, rows, cols)`` stacks whose
        trailing dims match the plan's ``(m, k, n)``.
        """
        self.last_peel = cplan.peel_plan
        self.last_plan = cplan
        out = runtime.execute_plan(
            cplan, A, B, C,
            threads=self.threads,
            vector_cap=self.vector_cap,
            chunk_target=self.chunk_target,
            backend=self.backend,
            workers=self.workers,
        )
        self.last_report = runtime.last_report()
        return out


class BlockedEngine:
    """Simulated-BLIS client of the task-graph runtime.

    Executes the *same* lowered task graphs as :class:`DirectEngine`
    (there is no separate blocked loop nest), with
    :class:`~repro.core.variants.BlisProductLeaf` as the per-product leaf
    kernel: each product streams through the packed five-loop GEMM with
    variant-specific fusion, charging the operation counters the
    performance model prices.

    Parameters
    ----------
    params:
        Cache/register blocking (defaults to the paper's Ivy Bridge config).
    variant:
        ``"naive"``, ``"ab"`` or ``"abc"`` (see :mod:`repro.core.variants`);
        used when compiling plans via :meth:`multiply`.  :meth:`execute`
        honors the variant baked into the plan.
    threads:
        Worker count for the product-level data parallelism; 1 =
        sequential.  Workers come from the shared runtime pools
        (:func:`repro.core.runtime.get_pool`) — no per-call pool churn.
    mode:
        Macro-kernel granularity, ``"slab"`` (fast) or ``"micro"`` (faithful
        register-tile loop).
    """

    def __init__(
        self,
        params: BlockingParams | None = None,
        variant: str = "abc",
        threads: int = 1,
        mode: str = "slab",
    ) -> None:
        self.params = params or BlockingParams()
        self.variant = normalize_variant(variant)
        self.threads = normalize_threads(threads) or 1
        self.mode = mode
        self.counters = OpCounters()
        self.last_peel = None
        self.last_plan: CompiledPlan | None = None
        self.last_report: runtime.ExecutionReport | None = None

    def _pool(self):
        return runtime.get_pool(self.threads) if self.threads > 1 else None

    def multiply(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        ml: MultiLevelFMM,
    ) -> np.ndarray:
        """``C += A @ B`` through the packed five-loop substrate."""
        _check_mult_shapes(A, B, C)
        return self.execute(_compile_for(A, B, ml, self.variant), A, B, C)

    def execute(
        self, cplan: CompiledPlan, A: np.ndarray, B: np.ndarray, C: np.ndarray
    ) -> np.ndarray:
        """Interpret a compiled plan through the blocked substrate.

        Operands may be 2-D or batched ``(batch, rows, cols)`` stacks —
        the runtime walks batch elements through the same task graph
        (the packed leaf kernel is 2-D).
        """
        _check_exec_shapes(cplan, A, B, C)
        self.last_peel = cplan.peel_plan
        self.last_plan = cplan
        leaf = BlisProductLeaf(
            variant=cplan.variant,
            params=self.params,
            counters=self.counters,
            mode=self.mode,
        )
        out = runtime.execute_plan(cplan, A, B, C, threads=self.threads, leaf=leaf)
        self.last_report = runtime.last_report()
        return out

    def gemm(self, A: np.ndarray, B: np.ndarray, C: np.ndarray) -> np.ndarray:
        """Plain packed GEMM (the BLIS baseline the paper compares against)."""
        _check_mult_shapes(A, B, C)
        packed_gemm(
            [(1.0, A)], [(1.0, B)], [(1.0, C)],
            self.params, self.counters, mode=self.mode, pool=self._pool(),
        )
        return C


def _dispatch(
    engine: str, cplan: CompiledPlan, A, B, C, params, threads, mode,
    backend: str = "reference", workers: str | None = None,
):
    if engine == "direct":
        DirectEngine(threads=threads, backend=backend,
                     workers=workers).execute(cplan, A, B, C)
    elif engine == "blocked":
        if backend != "reference":
            raise ValueError(
                "engine='blocked' executes through its packed BLIS leaf "
                f"kernel; backend={backend!r} is only valid with the "
                "direct engine"
            )
        if workers == "processes":
            raise ValueError(
                "engine='blocked' is an in-process instrumented substrate "
                "(its counters live in this process); workers='processes' "
                "is only valid with the direct engine"
            )
        BlockedEngine(
            params=params, variant=cplan.variant, threads=threads, mode=mode
        ).execute(cplan, A, B, C)
    else:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of "
            f"{list(ENGINES) + ['auto']}"
        )


def multiply(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray | None = None,
    algorithm="strassen",
    levels: int = 1,
    variant: str = "abc",
    engine: str = "direct",
    params: BlockingParams | None = None,
    threads: int | None = None,
    mode: str = "slab",
    dtype=None,
    tune: str = "readonly",
    fusion: str = "auto",
    backend: str | None = None,
    workers: str | None = None,
    procs: int | None = None,
) -> np.ndarray:
    """Fast matrix multiplication ``C + A @ B`` — the one-call public API.

    Parameters
    ----------
    A : (m, k) array_like
        Left operand.
    B : (k, n) array_like
        Right operand.
    C : (m, n) ndarray, optional
        Accumulation target; allocated (zeros) when omitted.  The product
        is *added* into it, BLAS-style.
    algorithm : str, tuple, list, Schedule, FMMAlgorithm or MultiLevelFMM, optional
        Which family member to run.  Accepts a catalog name
        (``"strassen"``, ``"smirnov333"``), a shape (``"<3,2,3>"`` or
        ``(3, 2, 3)``), a per-level schedule — list
        (``["strassen", "<3,3,3>"]``), ``"+"``-joined string, schedule
        string (``"strassen@2,smirnov333@1"``), or
        :class:`~repro.core.spec.Schedule` — or an explicit algorithm
        object.  Default ``"strassen"``.
    levels : int, optional
        Recursion depth for single-atom specs; explicit schedules fix
        their own depth.  Default 1.
    variant : {"abc", "ab", "naive"}, optional
        Operand-sum fusion variant (paper §4.2).
    engine : {"direct", "blocked", "auto"}, optional
        ``"direct"`` runs the task-graph runtime (fast NumPy path);
        ``"blocked"`` the instrumented simulated-BLIS substrate;
        ``"auto"`` picks schedule, variant, engine *and thread count*
        from wisdom + the §4.4 performance model, falling back to
        classical GEMM when FMM will not pay off.
    params : BlockingParams, optional
        Cache/register blocking for the blocked engine.
    threads : int, optional
        Worker count for the runtime (``1`` = same schedule, serial).
        Defaults to 1 for explicit engines and to the model's (or
        wisdom's) pick under ``engine="auto"``.  ``threads=0`` or a
        negative count raises ``ValueError`` up front.
    mode : {"slab", "micro"}, optional
        Blocked-engine macro-kernel granularity.
    dtype : dtype-like, optional
        Force float32 or float64 execution; by default float32/float64
        operands are preserved end-to-end and anything else promotes to
        float64.
    tune : {"readonly", "on", "off"}, optional
        Autotuning-wisdom use under ``engine="auto"`` (:mod:`repro.tune`):
        ``"readonly"`` (default) dispatches on the measured-best config
        when one is stored, ``"on"`` additionally tunes on a miss,
        ``"off"`` never touches the store.  Ignored for explicit engines.
    fusion : {"auto", "staged", "fused", "tiled"}, optional
        Runtime lowering mode: ``"staged"`` materializes every
        gather/product/scatter slab (O(R) live product buffers);
        ``"fused"`` streams each product through per-worker recycled
        buffers (O(threads) live buffers — the paper's fused pipeline);
        ``"tiled"`` runs the same task graph out-of-core — operands may
        be ``np.memmap``-backed, slab-scale temporaries spill to
        mmap-backed arena buffers, and the product/scatter phase
        streams through a bounded RAM window sized by the ``tile_rows``
        / ``mem_budget_bytes`` tunables (``REPRO_MEM_BUDGET``) —
        bitwise-equal to ``"fused"`` at the same worker count.
        ``"auto"`` (default) resolves from the variant, the staged slab
        footprint, and the configured memory budget
        (:func:`repro.core.spec.resolve_fusion`: past the budget the
        multiply goes out-of-core by itself).
        The blocked engine's packed leaf kernel has no staged slab
        interpretation, so under ``engine="blocked"`` every plan —
        including an explicit ``"staged"`` request — executes on the
        fused pipeline (check ``last_report().fusion``).
    backend : {"reference", "specialized", "numba"}, optional
        Leaf-kernel backend (:mod:`repro.kernels`): ``"reference"`` is
        the numpy task-graph interpreter; ``"specialized"`` compiles one
        dependency-free whole-core kernel per plan (coefficient loops
        unrolled, gather/scatter indices precomputed) and caches it
        alongside the plan; ``"numba"`` JITs the same emitted kernels
        when numba is importable.  Compiling backends transparently
        delegate to the interpreted pipeline for call shapes they do not
        serve (batched, threaded, non-contiguous) — check
        ``last_report().backend_path``.  Default picks the backend under
        ``engine="auto"`` (wisdom / model priced) and ``"reference"``
        otherwise.  Only valid with the direct engine.
    workers : {"threads", "processes"}, optional
        Runtime worker mode.  ``"threads"`` runs the task DAG on the
        shared thread pool; ``"processes"`` runs the core on a persistent
        pool of worker *processes* over shared-memory operand segments
        (:mod:`repro.core.procpool`) — GIL-free, bitwise-identical to the
        thread path at the same worker count.  Default resolves under
        ``engine="auto"`` (wisdom / model priced, observable via
        ``last_report().worker_mode``) and ``"threads"`` otherwise.
        At ``threads=1`` either mode executes inline (serial).  Only
        valid with the direct engine.
    procs : int, optional
        Shorthand for ``workers="processes", threads=procs``.  Conflicts
        with ``workers="threads"`` and with a *different* explicit
        ``threads`` count.

    Returns
    -------
    C : (m, n) ndarray
        The accumulated product, same array as ``C`` when one was passed.

    Raises
    ------
    ValueError
        Incompatible operand shapes, unknown algorithm/schedule spec
        (with the list of known catalog names), malformed ``atom@count``
        token, bad ``levels``/``threads``/``tune``/``dtype``.
    TypeError
        A spec form the grammar does not recognize at all.

    See Also
    --------
    multiply_batched : one compiled plan amortized over a stack.
    repro.core.compile.compile : the underlying plan compiler/cache.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import multiply
    >>> A = np.random.rand(64, 64); B = np.random.rand(64, 64)
    >>> C = multiply(A, B, algorithm="strassen", levels=2, threads=2)
    >>> np.allclose(C, A @ B)
    True

    Mixed-level schedules pair a rectangular outer split with square
    inner recursion (non-divisible sizes peel automatically):

    >>> A = np.random.rand(97, 65); B = np.random.rand(65, 130)
    >>> C = multiply(A, B, algorithm="<3,2,3>@1,strassen@1")
    >>> np.allclose(C, A @ B)
    True
    """
    threads = normalize_threads(threads)
    tune = normalize_tune(tune)
    fusion = normalize_fusion(fusion)
    workers, threads = _resolve_workers(workers, procs, threads)
    if backend is not None:
        backend = normalize_backend(backend)
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible operand shapes {A.shape} x {B.shape}")
    dt = _compute_dtype(A, B, dtype=dtype)
    A = _contig_operand(A, dt, "A")
    B = _contig_operand(B, dt, "B")
    m, k = A.shape
    n = B.shape[1]
    if engine == "auto":
        from repro.core.selection import auto_config

        (algorithm, levels, variant, engine, auto_threads, auto_backend,
         auto_workers) = (
            auto_config(m, k, n, dtype=dt.name, threads=threads, tune=tune)
        )
        if threads is None:
            threads = auto_threads
        if backend is None:
            backend = auto_backend
        if workers is None:
            workers = auto_workers
    if threads is None:
        threads = 1
    if backend is None:
        backend = "reference"
    if C is None:
        C = np.zeros((m, n), dtype=dt)
    cplan = plancache.compile(
        (m, k, n), algorithm, levels, variant, dtype=dt, fusion=fusion
    )
    _dispatch(engine, cplan, A, B, C, params, threads, mode, backend, workers)
    return C


def multiply_batched(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray | None = None,
    algorithm="strassen",
    levels: int = 1,
    variant: str = "abc",
    engine: str = "direct",
    params: BlockingParams | None = None,
    threads: int | None = None,
    mode: str = "slab",
    dtype=None,
    tune: str = "readonly",
    fusion: str = "auto",
    backend: str | None = None,
    workers: str | None = None,
    procs: int | None = None,
) -> np.ndarray:
    """Batched fast multiply: ``C[i] + A[i] @ B[i]`` for a same-shape stack.

    The configuration is compiled **once** and amortized over the whole
    batch, and both engines route the stack through the same runtime
    pipelines: the direct path folds the batch into its task slabs
    (staged) or per-worker buffers (fused) and fans tasks out over
    ``threads`` workers; the blocked path walks batch elements through
    the identical task graph with the packed leaf kernel.

    Parameters
    ----------
    A : (batch, m, k) or (m, k) array_like
        Left operand stack; 2-D shares one matrix across the batch.
    B : (batch, k, n) or (k, n) array_like
        Right operand stack; 2-D shares one matrix across the batch.
        At least one operand must be 3-D.
    C : (batch, m, n) ndarray, optional
        Accumulation target; allocated (zeros) when omitted.
    algorithm, levels, variant, engine, params, threads, mode, dtype, tune, \
fusion, backend, workers, procs
        As in :func:`multiply` (``algorithm`` accepts the same schedule
        grammar, including ``"atom@count"`` strings); under
        ``engine="auto"`` the thread pick weighs the *whole batch's*
        flops, not one element's.  Compiling backends serve 2-D calls
        only, so a batched request with ``backend="specialized"`` is
        valid but executes on the interpreted pipeline
        (``last_report().backend_path == "interpreted"``).

    Returns
    -------
    C : (batch, m, n) ndarray
        The accumulated result stack.

    Raises
    ------
    ValueError
        Mismatched batch counts or trailing dims, both operands 2-D, or
        any spec error :func:`multiply` raises.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import multiply_batched
    >>> A = np.random.rand(8, 32, 48); B = np.random.rand(8, 48, 32)
    >>> C = multiply_batched(A, B, algorithm="strassen")
    >>> np.allclose(C, A @ B)
    True
    """
    threads = normalize_threads(threads)
    tune = normalize_tune(tune)
    fusion = normalize_fusion(fusion)
    workers, threads = _resolve_workers(workers, procs, threads)
    if backend is not None:
        backend = normalize_backend(backend)
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim == 2 and B.ndim == 2:
        raise ValueError("batched multiply needs a 3-D operand; use multiply()")
    if A.ndim == 2:
        A = A[None]
    if B.ndim == 2:
        B = B[None]
    if A.ndim != 3 or B.ndim != 3:
        raise ValueError(
            f"operands must be (batch, rows, cols) stacks, got {A.shape} x {B.shape}"
        )
    if A.shape[2] != B.shape[1]:
        raise ValueError(f"incompatible operand shapes {A.shape} x {B.shape}")
    batch = max(A.shape[0], B.shape[0])
    if A.shape[0] not in (1, batch) or B.shape[0] not in (1, batch):
        raise ValueError(
            f"batch counts disagree: A has {A.shape[0]}, B has {B.shape[0]}"
        )
    dt = _compute_dtype(A, B, dtype=dtype)
    m, k, n = A.shape[1], A.shape[2], B.shape[2]
    A = np.ascontiguousarray(np.broadcast_to(A, (batch, m, k)), dtype=dt)
    B = np.ascontiguousarray(np.broadcast_to(B, (batch, k, n)), dtype=dt)
    if engine == "auto":
        from repro.core.parallel import pick_threads, pick_workers
        from repro.core.selection import auto_config

        algorithm, levels, variant, engine, _, auto_backend, auto_workers = (
            auto_config(m, k, n, dtype=dt.name, threads=threads, tune=tune)
        )
        if backend is None:
            backend = auto_backend
        if threads is None:
            # Re-pick with the whole batch in view: the runtime folds the
            # batch into its task slabs, so the parallelism threshold is
            # the batch total's flops, not one element's.
            ml = None if algorithm == "classical" else resolve_levels(
                algorithm, levels
            )
            threads = pick_threads(
                m, k, n, ml, variant,
                min_flops=2.0 * 256**3 / max(batch, 1),
            )
            # The worker-mode price depends on the thread count, so the
            # batch-aware re-pick invalidates the auto_config verdict.
            auto_workers = pick_workers(
                m, k, n, ml, variant, threads=threads, dtype=dt
            )
        if workers is None:
            workers = auto_workers
    if threads is None:
        threads = 1
    if backend is None:
        backend = "reference"
    if C is None:
        C = np.zeros((batch, m, n), dtype=dt)
    elif C.shape != (batch, m, n):
        raise ValueError(f"C has shape {C.shape}, expected {(batch, m, n)}")
    cplan = plancache.compile(
        (m, k, n), algorithm, levels, variant, dtype=dt, fusion=fusion
    )
    _dispatch(engine, cplan, A, B, C, params, threads, mode, backend, workers)
    return C


def _check_mult_shapes(A, B, C):
    if A.shape[1] != B.shape[0] or C.shape != (A.shape[0], B.shape[1]):
        raise ValueError(
            f"inconsistent shapes: A {A.shape}, B {B.shape}, C {C.shape}"
        )
