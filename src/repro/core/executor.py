"""Execution engines and the public ``multiply`` entry points.

Every multiply flows through one compiled artifact: the
:class:`~repro.core.compile.CompiledPlan` produced (and LRU-cached) by
:func:`repro.core.compile.compile`.  The engines are thin interpreters of
that object — they re-derive nothing per call:

* :class:`DirectEngine` — vectorized NumPy execution of eq. (5).  Small
  cores run the *batched* path (all ``R`` operand sums via one tensordot
  against the compiled ``Ut``/``Vt`` operators, one stacked matmul, one
  ``W`` scatter); large cores fall back to a memory-light per-step gather
  loop.  Fast and simple; the correctness oracle for everything else.
* :class:`BlockedEngine` — the simulated-BLIS path: every product runs
  through the packed five-loop GEMM with variant-specific fusion
  (:mod:`repro.core.variants`), instrumented with the counters the
  performance model prices.  Optionally thread-parallel over the 3rd loop.

Public API on top: :func:`multiply` (with model-guided
``engine="auto"`` dispatch), :func:`multiply_batched` (one compiled plan
amortized over a stack of same-shape multiplies), and dtype generality —
float32/float64 operands are preserved end-to-end, everything else is
promoted to float64.  Peeling for non-divisible sizes (paper §4.1) and
per-level hybrid algorithms (§5.2) come with the plan.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.blis.counters import OpCounters
from repro.blis.gemm import packed_gemm
from repro.blis.params import BlockingParams
from repro.core import compile as plancache
from repro.core.compile import SUPPORTED_DTYPES, CompiledPlan
from repro.core.kronecker import MultiLevelFMM
from repro.core.spec import resolve_levels
from repro.core.variants import run_fmm_blocked

__all__ = [
    "DirectEngine",
    "BlockedEngine",
    "multiply",
    "multiply_batched",
    "resolve_levels",
]


def _compute_dtype(*arrays, dtype=None) -> np.dtype:
    """Execution dtype: an explicit request, or the operands' common type.

    float32/float64 are preserved; any other input type (ints, float16...)
    promotes to float64 like a NumPy ufunc would round up.
    """
    if dtype is not None:
        dt = np.dtype(dtype)
        if dt not in SUPPORTED_DTYPES:
            raise ValueError(f"unsupported dtype {dt}")
        return dt
    dt = np.result_type(*arrays)
    return dt if dt in SUPPORTED_DTYPES else np.dtype(np.float64)


def _compile_for(A: np.ndarray, B: np.ndarray, algorithm, variant: str) -> CompiledPlan:
    """Compile a plan matching already-validated 2-D operands."""
    return plancache.compile(
        (A.shape[0], A.shape[1], B.shape[1]),
        algorithm,
        variant=variant,
        dtype=_compute_dtype(A, B),
    )


class DirectEngine:
    """Vectorized NumPy interpreter of :class:`CompiledPlan`.

    Parameters
    ----------
    vector_cap:
        Per-element workload bound (elements across the stacked S/T/M
        intermediates) under which the fully vectorized path is used;
        larger cores use the per-step gather loop to bound workspace.
    chunk_target:
        Intermediate-size target (elements) for slicing a batch into
        cache-resident chunks on the vectorized path.
    """

    def __init__(self, vector_cap: int = 1 << 24, chunk_target: int = 1 << 17) -> None:
        self.vector_cap = int(vector_cap)
        self.chunk_target = int(chunk_target)
        self.last_peel = None
        self.last_plan: CompiledPlan | None = None

    def multiply(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        ml: MultiLevelFMM,
    ) -> np.ndarray:
        """``C += A @ B`` using the multi-level FMM ``ml`` (compat shim).

        Compiles (or fetches from the plan cache) the matching
        :class:`CompiledPlan` and defers to :meth:`execute`.
        """
        _check_mult_shapes(A, B, C)
        return self.execute(_compile_for(A, B, ml, "abc"), A, B, C)

    def execute(
        self, cplan: CompiledPlan, A: np.ndarray, B: np.ndarray, C: np.ndarray
    ) -> np.ndarray:
        """Interpret a compiled plan: ``C += A @ B``.

        Operands may be 2-D or batched ``(batch, rows, cols)`` stacks whose
        trailing dims match the plan's ``(m, k, n)``.
        """
        _check_exec_shapes(cplan, A, B, C)
        pp = cplan.peel_plan
        self.last_peel = pp
        self.last_plan = cplan

        if pp.has_core:
            mp, kp, np_ = pp.core
            Mt, Kt, Nt = cplan.dims_total
            bm, bk, bn = mp // Mt, kp // Kt, np_ // Nt
            Ac = A[..., :mp, :kp]
            Bc = B[..., :kp, :np_]
            Cc = C[..., :mp, :np_]
            work = cplan.rank_total * (bm * bk + bk * bn + bm * bn)
            # The fused path computes in the plan dtype; when C cannot
            # absorb that (e.g. integer operands fed straight to the
            # engine), the per-step loop preserves the operand dtype for
            # +-1-coefficient algorithms exactly like the classic engine.
            vectorizable = np.can_cast(cplan.dtype, C.dtype, casting="same_kind")
            if vectorizable and work <= self.vector_cap:
                self._run_vectorized(cplan, Ac, Bc, Cc, bm, bk, bn, work)
            else:
                self._run_steps(cplan, Ac, Bc, Cc, bm, bk, bn)
        for f in pp.fringes:
            if 0 in f.shape:
                continue
            C[..., f.c_rows, f.c_cols] += (
                A[..., f.a_rows, f.a_cols] @ B[..., f.b_rows, f.b_cols]
            )
        return C

    def _run_vectorized(self, cplan, Ac, Bc, Cc, bm, bk, bn, work) -> None:
        """All R products through the compiled operators.

        Batched stacks are sliced into chunks whose S/T/M intermediates
        stay near cache size — one huge fused pass is bandwidth-bound.
        """
        if Ac.ndim != 3:  # plain 2-D multiply (or exotic leading dims)
            self._vectorized_chunk(cplan, Ac, Bc, Cc, bm, bk, bn)
            return
        batch = Ac.shape[0]
        chunk = max(1, min(batch, self.chunk_target // max(work, 1)))
        for i in range(0, batch, chunk):
            self._vectorized_chunk(
                cplan, Ac[i : i + chunk], Bc[i : i + chunk], Cc[i : i + chunk],
                bm, bk, bn,
            )

    def _vectorized_chunk(self, cplan, Ac, Bc, Cc, bm, bk, bn) -> None:
        """One fused pass: every operand sum, product and C update of
        eq. (5) as a handful of large contiguous matmuls."""
        Ablk = np.stack(cplan.block_views(Ac, "A", bm, bk))
        Bblk = np.stack(cplan.block_views(Bc, "B", bk, bn))
        R = cplan.rank_total
        # (R, P) @ (P, batch*br*bc): all R operand sums in one matmul, then
        # merge the (R, batch) leading dims so the product matmul runs over
        # one flat stack of blocks.
        S = (cplan.Ut @ Ablk.reshape(Ablk.shape[0], -1)).reshape(-1, bm, bk)
        T = (cplan.Vt @ Bblk.reshape(Bblk.shape[0], -1)).reshape(-1, bk, bn)
        M = S @ T  # (R*batch, bm, bn)
        upd = (cplan.W @ M.reshape(R, -1)).reshape(
            (-1,) + Cc.shape[:-2] + (bm, bn)
        )
        for p, view in enumerate(cplan.block_views(Cc, "C", bm, bn)):
            view += upd[p]

    def _run_steps(self, cplan, Ac, Bc, Cc, bm, bk, bn) -> None:
        """Memory-light per-product loop over the plan's gather lists."""
        Av = cplan.block_views(Ac, "A", bm, bk)
        Bv = cplan.block_views(Bc, "B", bk, bn)
        Cv = cplan.block_views(Cc, "C", bm, bn)
        lead = Ac.shape[:-2]
        dt = np.result_type(Ac, Bc)
        for s in cplan.steps:
            S = _vsum(s.a_terms, Av, lead + (bm, bk), dt)
            T = _vsum(s.b_terms, Bv, lead + (bk, bn), dt)
            M = S @ T
            for i, w in s.c_terms:
                if w == 1:
                    Cv[i] += M
                elif w == -1:
                    Cv[i] -= M
                else:
                    Cv[i] += w * M


class BlockedEngine:
    """Simulated-BLIS interpreter of :class:`CompiledPlan`.

    Parameters
    ----------
    params:
        Cache/register blocking (defaults to the paper's Ivy Bridge config).
    variant:
        ``"naive"``, ``"ab"`` or ``"abc"`` (see :mod:`repro.core.variants`);
        used when compiling plans via :meth:`multiply`.  :meth:`execute`
        honors the variant baked into the plan.
    threads:
        Worker count for the 3rd-loop data parallelism; 1 = sequential.
    mode:
        Macro-kernel granularity, ``"slab"`` (fast) or ``"micro"`` (faithful
        register-tile loop).
    """

    def __init__(
        self,
        params: BlockingParams | None = None,
        variant: str = "abc",
        threads: int = 1,
        mode: str = "slab",
    ) -> None:
        self.params = params or BlockingParams()
        self.variant = variant
        self.threads = int(threads)
        self.mode = mode
        self.counters = OpCounters()
        self.last_peel = None
        self.last_plan: CompiledPlan | None = None

    def multiply(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        ml: MultiLevelFMM,
    ) -> np.ndarray:
        """``C += A @ B`` through the packed five-loop substrate."""
        _check_mult_shapes(A, B, C)
        return self.execute(_compile_for(A, B, ml, self.variant), A, B, C)

    def execute(
        self, cplan: CompiledPlan, A: np.ndarray, B: np.ndarray, C: np.ndarray
    ) -> np.ndarray:
        """Interpret a compiled plan through the blocked substrate (2-D)."""
        if A.ndim != 2:
            raise ValueError(
                "BlockedEngine executes 2-D operands; use multiply_batched "
                "for stacked inputs"
            )
        _check_exec_shapes(cplan, A, B, C)
        pp = cplan.peel_plan
        self.last_peel = pp
        self.last_plan = cplan

        pool = ThreadPoolExecutor(self.threads) if self.threads > 1 else None
        try:
            if pp.has_core:
                mp, kp, np_ = pp.core
                Mt, Kt, Nt = cplan.dims_total
                bm, bk, bn = mp // Mt, kp // Kt, np_ // Nt
                run_fmm_blocked(
                    cplan.block_views(A[:mp, :kp], "A", bm, bk),
                    cplan.block_views(B[:kp, :np_], "B", bk, bn),
                    cplan.block_views(C[:mp, :np_], "C", bm, bn),
                    cplan.plan,
                    variant=cplan.variant,
                    params=self.params,
                    counters=self.counters,
                    pool=pool,
                    mode=self.mode,
                )
            for f in pp.fringes:
                if 0 in f.shape:
                    continue
                packed_gemm(
                    [(1.0, A[f.a_rows, f.a_cols])],
                    [(1.0, B[f.b_rows, f.b_cols])],
                    [(1.0, C[f.c_rows, f.c_cols])],
                    self.params,
                    self.counters,
                    mode=self.mode,
                    pool=pool,
                )
        finally:
            if pool is not None:
                pool.shutdown()
        return C

    def gemm(self, A: np.ndarray, B: np.ndarray, C: np.ndarray) -> np.ndarray:
        """Plain packed GEMM (the BLIS baseline the paper compares against)."""
        _check_mult_shapes(A, B, C)
        pool = ThreadPoolExecutor(self.threads) if self.threads > 1 else None
        try:
            packed_gemm(
                [(1.0, A)], [(1.0, B)], [(1.0, C)],
                self.params, self.counters, mode=self.mode, pool=pool,
            )
        finally:
            if pool is not None:
                pool.shutdown()
        return C


def _dispatch(engine: str, cplan: CompiledPlan, A, B, C, params, threads, mode):
    if engine == "direct":
        DirectEngine().execute(cplan, A, B, C)
    elif engine == "blocked":
        BlockedEngine(
            params=params, variant=cplan.variant, threads=threads, mode=mode
        ).execute(cplan, A, B, C)
    else:
        raise ValueError(f"unknown engine {engine!r}")


def multiply(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray | None = None,
    algorithm="strassen",
    levels: int = 1,
    variant: str = "abc",
    engine: str = "direct",
    params: BlockingParams | None = None,
    threads: int = 1,
    mode: str = "slab",
    dtype=None,
) -> np.ndarray:
    """Fast matrix multiplication: returns ``C + A @ B``.

    The one-call public API.  ``algorithm``/``levels`` select any member of
    the generated family (hybrid multi-level via a list, e.g.
    ``algorithm=["strassen", "<3,3,3>"]``, or a ``"+"``-joined string);
    ``engine`` picks the NumPy reference path (``"direct"``), the
    instrumented simulated-BLIS path (``"blocked"``), or model-guided
    auto-dispatch (``"auto"``, which selects algorithm stack, levels and
    variant from the §4.4 performance model and falls back to classical
    GEMM when the model says FMM will not pay off).

    float32/float64 operands are preserved end-to-end (pass ``dtype`` to
    force one); other input types promote to float64.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import multiply
    >>> A = np.random.rand(64, 64); B = np.random.rand(64, 64)
    >>> C = multiply(A, B, algorithm="strassen", levels=2)
    >>> np.allclose(C, A @ B)
    True
    """
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible operand shapes {A.shape} x {B.shape}")
    dt = _compute_dtype(A, B, dtype=dtype)
    A = np.ascontiguousarray(A, dtype=dt)
    B = np.ascontiguousarray(B, dtype=dt)
    m, k = A.shape
    n = B.shape[1]
    if engine == "auto":
        from repro.core.selection import auto_config

        algorithm, levels, variant, engine = auto_config(m, k, n)
    if C is None:
        C = np.zeros((m, n), dtype=dt)
    cplan = plancache.compile((m, k, n), algorithm, levels, variant, dtype=dt)
    _dispatch(engine, cplan, A, B, C, params, threads, mode)
    return C


def multiply_batched(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray | None = None,
    algorithm="strassen",
    levels: int = 1,
    variant: str = "abc",
    engine: str = "direct",
    params: BlockingParams | None = None,
    threads: int = 1,
    mode: str = "slab",
    dtype=None,
) -> np.ndarray:
    """Batched fast multiply: ``C[i] + A[i] @ B[i]`` for a same-shape stack.

    ``A`` is ``(batch, m, k)`` and ``B`` ``(batch, k, n)``; either may be
    2-D to share one operand across the batch.  The configuration is
    compiled **once** and amortized over the whole batch: the direct path
    executes all batch elements through stacked 3-D operands (one
    tensordot/matmul sequence covers every product of every element), the
    blocked path interprets the same plan per element.

    Returns the ``(batch, m, n)`` result stack.
    """
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim == 2 and B.ndim == 2:
        raise ValueError("batched multiply needs a 3-D operand; use multiply()")
    if A.ndim == 2:
        A = A[None]
    if B.ndim == 2:
        B = B[None]
    if A.ndim != 3 or B.ndim != 3:
        raise ValueError(
            f"operands must be (batch, rows, cols) stacks, got {A.shape} x {B.shape}"
        )
    if A.shape[2] != B.shape[1]:
        raise ValueError(f"incompatible operand shapes {A.shape} x {B.shape}")
    batch = max(A.shape[0], B.shape[0])
    if A.shape[0] not in (1, batch) or B.shape[0] not in (1, batch):
        raise ValueError(
            f"batch counts disagree: A has {A.shape[0]}, B has {B.shape[0]}"
        )
    dt = _compute_dtype(A, B, dtype=dtype)
    m, k, n = A.shape[1], A.shape[2], B.shape[2]
    A = np.ascontiguousarray(np.broadcast_to(A, (batch, m, k)), dtype=dt)
    B = np.ascontiguousarray(np.broadcast_to(B, (batch, k, n)), dtype=dt)
    if engine == "auto":
        from repro.core.selection import auto_config

        algorithm, levels, variant, engine = auto_config(m, k, n)
    if C is None:
        C = np.zeros((batch, m, n), dtype=dt)
    elif C.shape != (batch, m, n):
        raise ValueError(f"C has shape {C.shape}, expected {(batch, m, n)}")
    cplan = plancache.compile((m, k, n), algorithm, levels, variant, dtype=dt)
    if engine == "direct":
        DirectEngine().execute(cplan, A, B, C)
    elif engine == "blocked":
        eng = BlockedEngine(params=params, variant=cplan.variant,
                            threads=threads, mode=mode)
        for b in range(batch):
            eng.execute(cplan, A[b], B[b], C[b])
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return C


def _vsum(terms, views, shape, dtype):
    """Sparse weighted sum of views; coefficients stay python floats so
    NEP-50 scalar promotion cannot upcast float32 intermediates."""
    out = None
    for i, c in terms:
        v = views[i]
        if out is None:
            if c == 1 or c == -1:
                out = v.astype(dtype, copy=True)
                if c == -1:
                    np.negative(out, out)
            else:
                out = v * c
        elif c == 1:
            out += v
        elif c == -1:
            out -= v
        else:
            out += c * v
    if out is None:
        out = np.zeros(shape, dtype=dtype)
    return out


def _check_mult_shapes(A, B, C):
    if A.shape[1] != B.shape[0] or C.shape != (A.shape[0], B.shape[1]):
        raise ValueError(
            f"inconsistent shapes: A {A.shape}, B {B.shape}, C {C.shape}"
        )


def _check_exec_shapes(cplan: CompiledPlan, A, B, C):
    m, k, n = cplan.shape
    if A.shape[-2:] != (m, k) or B.shape[-2:] != (k, n) or C.shape[-2:] != (m, n):
        raise ValueError(
            f"operands A {A.shape}, B {B.shape}, C {C.shape} do not match "
            f"compiled plan shape {(m, k, n)}"
        )
    if not (A.shape[:-2] == B.shape[:-2] == C.shape[:-2]):
        raise ValueError(
            f"batch dims disagree: A {A.shape}, B {B.shape}, C {C.shape}"
        )
