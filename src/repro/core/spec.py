"""Algorithm-spec normalization: the single parser for every spec form.

Every layer that accepts an "algorithm" argument — :func:`repro.multiply`,
the plan compiler (:mod:`repro.core.compile`), and the CLI — routes it
through :func:`normalize_spec`, so the accepted grammar is defined exactly
once:

====================================  =========================================
spec form                             meaning
====================================  =========================================
``FMMAlgorithm``                      that algorithm, replicated ``levels`` x
``"strassen"`` / ``"winograd"`` /     named catalog entry, replicated
``"classical"`` / ``"smirnov333"``    ``levels`` x
``"<m,k,n>"`` or ``"m,k,n"``          catalog shape, replicated ``levels`` x
``(m, k, n)`` (all ints)              catalog shape, replicated ``levels`` x
``"a+b+..."``                         hybrid stack, one atom per level
                                      (``levels`` is ignored)
``"a@2,b@1"``                         schedule string: each ``atom@count``
                                      contributes ``count`` levels, comma- or
                                      ``+``-separated (``levels`` is ignored)
``[a, b, ...]`` / non-int tuple       hybrid stack, one atom per level
                                      (``levels`` is ignored)
``Schedule``                          its per-level atoms, unchanged
``MultiLevelFMM``                     passed through unchanged
====================================  =========================================

:func:`normalize_spec` returns the flat per-level atom tuple;
:class:`Schedule` wraps that tuple as the first-class *schedule* object —
the heterogeneous per-level algorithm list every layer above the spec
grammar passes around (compiler keys, selection candidates, wisdom
records); :func:`resolve_levels` materializes a spec as a
:class:`MultiLevelFMM`; :func:`spec_key` derives the hashable cache key
the plan cache is keyed on; :func:`normalize_threads` validates the
``threads`` execution knob, :func:`normalize_tune` the autotuning-wisdom
knob, :func:`normalize_variant` the §4.1 write-back variant and
:func:`normalize_fusion`/:func:`resolve_fusion` the runtime's
staged-vs-fused lowering mode, so bad values fail here, up front, rather
than deep inside the runtime.
"""

from __future__ import annotations

import numbers
import os
from dataclasses import dataclass

from repro.core.fmm import FMMAlgorithm
from repro.core.kronecker import MultiLevelFMM

__all__ = [
    "DEFAULT_FUSED_GROUP",
    "DEFAULT_MEM_BUDGET_BYTES",
    "DEFAULT_TILE_ROWS",
    "FUSION_MODES",
    "FUSED_AUTO_THRESHOLD",
    "MEM_BUDGET_ENV",
    "OVERLOAD_POLICIES",
    "SERVE_BATCH_WINDOW_US",
    "SERVE_MAX_BATCH",
    "TUNE_MODES",
    "VARIANTS",
    "WORKER_MODES",
    "Schedule",
    "effective_fused_auto_threshold",
    "effective_fused_group",
    "effective_mem_budget_bytes",
    "effective_serve_batch_window_us",
    "effective_serve_max_batch",
    "effective_tile_rows",
    "normalize_backend",
    "normalize_fusion",
    "normalize_overload_policy",
    "normalize_schedule",
    "normalize_spec",
    "normalize_threads",
    "normalize_tune",
    "normalize_variant",
    "normalize_workers",
    "operand_slab_bytes",
    "resolve_fusion",
    "resolve_levels",
    "runtime_tunables",
    "schedule_signature",
    "set_runtime_tunables",
    "spec_key",
    "staged_slab_elements",
    "validate_resolved_fusion",
]

#: Accepted values of the ``tune`` knob on the auto-dispatch path.
TUNE_MODES = ("off", "readonly", "on")

#: The paper's §4.1 write-back variants (operand-sum / C-update fusion).
VARIANTS = ("naive", "ab", "abc")

#: Accepted values of the ``fusion`` lowering knob.
FUSION_MODES = ("auto", "staged", "fused", "tiled")

#: Accepted values of the ``workers`` execution-mode knob: thread pools
#: (GIL-shared, zero-copy) vs worker-process pools (GIL-free, operands
#: staged through shared memory).
WORKER_MODES = ("threads", "processes")

#: Accepted values of the serving layer's over-budget admission policy
#: (:class:`repro.serve.MultiplyService`): ``"queue"`` blocks the
#: submitter until queued bytes drain below the budget, ``"reject"``
#: raises a typed ``ServiceOverloadedError``, ``"serial"`` degrades the
#: submission to a synchronous in-caller multiply that never enters the
#: queue.
OVERLOAD_POLICIES = ("queue", "reject", "serial")

#: Stacked-intermediate size (elements across all R products' S/T/M slabs)
#: above which ``fusion="auto"`` lowers ab/abc plans to the streaming fused
#: pipeline.  Below it the staged pipeline's big batched matmuls win on
#: kernel efficiency; above it the slabs outgrow the caches and the fused
#: pipeline's O(workers · group) live product buffers run at parity or
#: better while using a fraction of the memory (measured in
#: ``benchmarks/bench_fusion_runtime.py``).
FUSED_AUTO_THRESHOLD = 1 << 23

#: Products per streaming group of the fused pipeline: the coefficient-GEMM
#: strip height.  Large enough to amortize kernel dispatch, small enough
#: that a group's S/T/M buffers stay cache-resident.
DEFAULT_FUSED_GROUP = 8

#: Coalescing window of the serving layer's scheduler, in microseconds:
#: after the first job of a plan key arrives, the scheduler holds the
#: batch open this long for same-key requests before executing.  Long
#: enough to catch a burst, short enough to stay invisible next to a
#: small multiply's latency.
SERVE_BATCH_WINDOW_US = 2000

#: Most multiply jobs the serving scheduler folds into one coalesced
#: batched execution.  Caps the stacked operand slab (and the latency of
#: the jobs that ride at the back of the batch).
SERVE_MAX_BATCH = 32

#: Tile-strip height (rows of stacked products per streamed strip) of the
#: out-of-core tiled lowering.  ``0`` means "auto": the runtime solves the
#: largest strip whose RAM window fits the memory budget (see
#: :func:`repro.core.tiles.pick_tile_rows`).
DEFAULT_TILE_ROWS = 0

#: Memory budget in bytes for the tiled lowering's in-RAM working set.
#: ``0`` means "unlimited" — ``fusion="auto"`` then never picks the tiled
#: path.  The :envvar:`REPRO_MEM_BUDGET` environment variable provides a
#: process-wide fallback when no tunable override is installed.
DEFAULT_MEM_BUDGET_BYTES = 0

#: Environment variable consulted by :func:`effective_mem_budget_bytes`
#: when no ``mem_budget_bytes`` tunable override is installed.  Accepts a
#: plain byte count or a ``K``/``M``/``G`` suffixed size (``"256M"``).
MEM_BUDGET_ENV = "REPRO_MEM_BUDGET"

#: The machine-tunable runtime constants and their shipped defaults.  The
#: wisdom store may install per-machine-fingerprint overrides via
#: :func:`set_runtime_tunables` (ROADMAP's group-size autotuning item);
#: every consumer reads through the ``effective_*`` accessors so an
#: override reaches the runtime, the workspace model, ``fusion="auto"``
#: resolution and the serving scheduler alike.
TUNABLE_DEFAULTS = {
    "fused_group": DEFAULT_FUSED_GROUP,
    "fused_auto_threshold": FUSED_AUTO_THRESHOLD,
    "serve_batch_window_us": SERVE_BATCH_WINDOW_US,
    "serve_max_batch": SERVE_MAX_BATCH,
    "tile_rows": DEFAULT_TILE_ROWS,
    "mem_budget_bytes": DEFAULT_MEM_BUDGET_BYTES,
}

_tunables = dict(TUNABLE_DEFAULTS)


def set_runtime_tunables(
    fused_group=None,
    fused_auto_threshold=None,
    serve_batch_window_us=None,
    serve_max_batch=None,
    tile_rows=None,
    mem_budget_bytes=None,
) -> dict:
    """Install machine-tuned overrides of the runtime lowering constants.

    Each call specifies the complete override state: a ``None`` argument
    restores that constant's shipped default, so ``set_runtime_tunables()``
    resets everything.  Returns the effective tunables after the update.
    The wisdom store calls this when it loads a fingerprint carrying tuned
    values (see ``repro.tune.wisdom``).
    """
    global _tunables
    t = dict(TUNABLE_DEFAULTS)
    if fused_group is not None:
        fg = int(fused_group)
        if fg < 1:
            raise ValueError(f"fused_group must be >= 1, got {fused_group!r}")
        t["fused_group"] = fg
    if fused_auto_threshold is not None:
        th = int(fused_auto_threshold)
        if th < 0:
            raise ValueError(
                f"fused_auto_threshold must be >= 0, got {fused_auto_threshold!r}"
            )
        t["fused_auto_threshold"] = th
    if serve_batch_window_us is not None:
        win = int(serve_batch_window_us)
        if win < 0:
            raise ValueError(
                f"serve_batch_window_us must be >= 0, got {serve_batch_window_us!r}"
            )
        t["serve_batch_window_us"] = win
    if serve_max_batch is not None:
        mb = int(serve_max_batch)
        if mb < 1:
            raise ValueError(
                f"serve_max_batch must be >= 1, got {serve_max_batch!r}"
            )
        t["serve_max_batch"] = mb
    if tile_rows is not None:
        tr = int(tile_rows)
        if tr < 0:
            raise ValueError(f"tile_rows must be >= 0, got {tile_rows!r}")
        t["tile_rows"] = tr
    if mem_budget_bytes is not None:
        budget = int(mem_budget_bytes)
        if budget < 0:
            raise ValueError(
                f"mem_budget_bytes must be >= 0, got {mem_budget_bytes!r}"
            )
        t["mem_budget_bytes"] = budget
    _tunables = t
    return dict(t)


def runtime_tunables() -> dict:
    """The effective runtime tunables (defaults merged with overrides)."""
    return dict(_tunables)


def effective_fused_group() -> int:
    """The fused pipeline's streaming-group size, tunable overrides applied."""
    return _tunables["fused_group"]


def effective_fused_auto_threshold() -> int:
    """The ``fusion="auto"`` staged-slab threshold, tunable overrides applied."""
    return _tunables["fused_auto_threshold"]


def effective_serve_batch_window_us() -> int:
    """The serving coalescing window (µs), tunable overrides applied."""
    return _tunables["serve_batch_window_us"]


def effective_serve_max_batch() -> int:
    """The serving max coalesced batch size, tunable overrides applied."""
    return _tunables["serve_max_batch"]


def effective_tile_rows() -> int:
    """The tiled lowering's strip height, tunable overrides applied.

    ``0`` means "auto": solve from the memory budget at lowering time.
    """
    return _tunables["tile_rows"]


def _parse_mem_budget(text: str) -> int:
    """Parse a byte count with an optional ``K``/``M``/``G`` suffix."""
    text = text.strip()
    scale = 1
    suffixes = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    low = text.lower().rstrip("b")
    if low and low[-1] in suffixes:
        scale = suffixes[low[-1]]
        low = low[:-1]
    try:
        value = int(low) * scale
    except ValueError:
        raise ValueError(
            f"malformed {MEM_BUDGET_ENV} value {text!r}: expected bytes "
            "or a K/M/G suffixed size (e.g. '256M')"
        ) from None
    if value < 0:
        raise ValueError(f"{MEM_BUDGET_ENV} must be >= 0, got {text!r}")
    return value


def effective_mem_budget_bytes() -> int:
    """The out-of-core memory budget in bytes (0 = unlimited).

    A ``mem_budget_bytes`` tunable override (wisdom or
    :func:`set_runtime_tunables`) wins; otherwise the
    :envvar:`REPRO_MEM_BUDGET` environment variable supplies a
    process-wide budget.
    """
    budget = _tunables["mem_budget_bytes"]
    if budget:
        return budget
    env = os.environ.get(MEM_BUDGET_ENV, "").strip()
    return _parse_mem_budget(env) if env else 0


#: Atom forms accepted inside a hybrid stack.
_ATOM_TYPES = (str, FMMAlgorithm)


def _is_shape(spec) -> bool:
    """True for a ``(m, k, n)`` tuple of plain integers."""
    return (
        isinstance(spec, tuple)
        and len(spec) == 3
        and all(isinstance(x, numbers.Integral) for x in spec)
    )


def _split_schedule_string(text: str) -> list[str]:
    """Split a schedule string into ``atom[@count]`` tokens.

    ``+`` always separates; ``,`` separates only outside ``<...>`` shape
    brackets and only when the string uses the ``@`` repeat syntax —
    otherwise bare ``"2,3,2"`` keeps meaning one shape atom.
    """
    comma_splits = "@" in text
    tokens, cur, depth = [], [], 0
    for ch in text:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(depth - 1, 0)
        if ch == "+" or (ch == "," and depth == 0 and comma_splits):
            tokens.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    tokens.append("".join(cur))
    return [t.strip() for t in tokens if t.strip()]


def _expand_token(token: str, spec: str) -> tuple:
    """Expand one ``atom[@count]`` token into its replicated atoms."""
    if "@" not in token:
        return (token,)
    atom, _, count = token.rpartition("@")
    atom = atom.strip()
    try:
        reps = int(count)
    except ValueError:
        reps = -1
    if not atom or reps < 1:
        raise ValueError(
            f"malformed schedule token {token!r} in {spec!r}: expected "
            f"'atom@count' with a positive integer count (e.g. 'strassen@2')"
        )
    return (atom,) * reps


def normalize_spec(algorithm, levels: int = 1) -> tuple:
    """Flatten any accepted spec form into the per-level atom tuple.

    Atoms are left unresolved (names, shape tuples, or
    :class:`FMMAlgorithm` objects); catalog lookup happens in
    :func:`resolve_levels`.  Raises ``TypeError`` for unrecognized forms
    and ``ValueError`` for ``levels < 1``, an empty stack, or a malformed
    ``atom@count`` schedule token.
    """
    if isinstance(algorithm, MultiLevelFMM):
        return algorithm.levels
    if isinstance(algorithm, Schedule):
        return algorithm.atoms
    if isinstance(algorithm, str) and ("+" in algorithm or "@" in algorithm):
        atoms: tuple = ()
        for token in _split_schedule_string(algorithm):
            atoms += _expand_token(token, algorithm)
        if not atoms:
            raise ValueError(f"empty hybrid spec {algorithm!r}")
        return atoms
    if _is_shape(algorithm) or isinstance(algorithm, _ATOM_TYPES):
        if levels < 1:
            raise ValueError("levels must be >= 1")
        return (algorithm,) * int(levels)
    if isinstance(algorithm, (list, tuple)):
        atoms = tuple(algorithm)
        if not atoms:
            raise ValueError("empty algorithm stack")
        for a in atoms:
            if not (_is_shape(a) or isinstance(a, _ATOM_TYPES)):
                raise TypeError(f"cannot interpret per-level atom {a!r}")
        return atoms
    raise TypeError(f"cannot interpret algorithm spec {algorithm!r}")


def normalize_threads(threads) -> int | None:
    """Validate the ``threads`` knob of the execution API.

    Returns ``None`` unchanged (meaning "unspecified — resolve later", e.g.
    from the auto-dispatch machine model) and a positive int for explicit
    requests.  ``threads=0`` or a negative/non-integer count raises here,
    at spec-normalization time, with a message naming the knob — never
    deep inside the executor.
    """
    if threads is None:
        return None
    if isinstance(threads, bool) or not isinstance(threads, numbers.Integral):
        raise TypeError(f"threads must be a positive integer, got {threads!r}")
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    return int(threads)


def normalize_workers(workers) -> str | None:
    """Validate the ``workers`` execution-mode knob.

    ``None`` passes through (meaning "unspecified — resolve later", e.g.
    from the auto-dispatch worker-mode model); ``"threads"`` runs the
    task graph on the shared thread pool, ``"processes"`` on the
    GIL-free worker-process pool with operands staged through shared
    memory.  Anything else raises here, at spec-normalization time.
    Serial execution is not a mode: it is either mode at ``threads=1``.
    """
    if workers is None:
        return None
    if not isinstance(workers, str) or workers.lower() not in WORKER_MODES:
        raise ValueError(
            f"unknown workers mode {workers!r}; expected one of "
            f"{list(WORKER_MODES)}"
        )
    return workers.lower()


def normalize_overload_policy(policy) -> str:
    """Validate the serving layer's over-budget admission policy.

    ``None`` means the default ``"reject"`` — the one policy that can
    never block a submitter or grow the arena past its budget.  See
    :data:`OVERLOAD_POLICIES` for the semantics of each value.
    """
    if policy is None:
        return "reject"
    if not isinstance(policy, str) or policy.lower() not in OVERLOAD_POLICIES:
        raise ValueError(
            f"unknown overload policy {policy!r}; expected one of "
            f"{list(OVERLOAD_POLICIES)}"
        )
    return policy.lower()


def normalize_variant(variant) -> str:
    """Validate a §4.1 write-back variant name.

    Mirrors the unknown-algorithm convention: a bad string raises
    ``ValueError`` listing every valid variant, here at spec level rather
    than deep inside a lowering pass.
    """
    if not isinstance(variant, str) or variant.lower() not in VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {list(VARIANTS)}"
        )
    return variant.lower()


def normalize_fusion(fusion) -> str:
    """Validate the ``fusion`` lowering knob.

    ``staged`` materializes every gather/product/scatter slab (the memory
    behavior of the reference frameworks); ``fused`` streams each product
    through per-worker recycled buffers; ``tiled`` runs the fused
    pipeline out-of-core — slab-scale buffers spill to mmap-backed arena
    storage and the product/scatter phase streams Morton-ordered row
    strips through a bounded RAM window; ``auto`` resolves per plan — see
    :func:`resolve_fusion`.
    """
    if not isinstance(fusion, str) or fusion.lower() not in FUSION_MODES:
        raise ValueError(
            f"unknown fusion mode {fusion!r}; expected one of {list(FUSION_MODES)}"
        )
    return fusion.lower()


def staged_slab_elements(m: int, k: int, n: int, ml) -> int:
    """Elements across all R stacked ``S``/``T``/``M`` slabs of the staged
    lowering for one problem — the quantity ``fusion="auto"`` thresholds
    on.  The single source shared by the plan compiler and selection
    candidates, so their fused-vs-staged resolutions can never drift.
    Returns 0 when the partition is coarser than the problem (no core).
    """
    Mt, Kt, Nt = ml.dims_total
    bm, bk, bn = m // Mt, k // Kt, n // Nt
    if min(bm, bk, bn) < 1:
        return 0
    return ml.rank_total * (bm * bk + bk * bn + bm * bn)


def operand_slab_bytes(m: int, k: int, n: int, ml, itemsize: int = 8) -> int:
    """Bytes of the gathered operand slabs of one execution.

    The A-block slab holds every Morton-ordered ``bm x bk`` block of A
    (``M~_L x K~_L`` of them) and the B-block slab every ``bk x bn``
    block of B — the slab-scale working set the memory budget prices
    ``fusion="auto"`` against (see :func:`resolve_fusion`).  Returns 0
    when the partition is coarser than the problem (no core).
    """
    Mt, Kt, Nt = ml.dims_total
    bm, bk, bn = m // Mt, k // Kt, n // Nt
    if min(bm, bk, bn) < 1:
        return 0
    return (Mt * Kt * bm * bk + Kt * Nt * bk * bn) * int(itemsize)


def validate_resolved_fusion(fusion) -> str:
    """Validate an already-*resolved* lowering mode (``"auto"`` excluded).

    The runtime and the workspace model operate after compile-time
    resolution, where only ``"staged"``/``"fused"``/``"tiled"`` are
    meaningful; this is their shared membership check, so the accepted
    set cannot drift between layers.
    """
    if fusion not in ("staged", "fused", "tiled"):
        raise ValueError(
            f"unknown fusion mode {fusion!r}; expected one of "
            "['staged', 'fused', 'tiled']"
        )
    return fusion


def resolve_fusion(
    fusion, variant: str, staged_elements: int, slab_bytes: int = 0
) -> str:
    """Resolve ``fusion="auto"`` for one compiled plan.

    The write-back variant is the lowering mode family: ``naive`` *means*
    "materialize every temporary", so it always lowers staged; ``ab``/
    ``abc`` fuse operand sums (and C updates) into the pipeline, so they
    lower fused once the staged slabs (``staged_elements`` elements across
    the stacked S/T/M intermediates) outgrow
    :data:`FUSED_AUTO_THRESHOLD` — below that the staged pipeline's
    batched matmuls are cheaper than per-product kernel dispatch.

    When a memory budget is configured (:func:`effective_mem_budget_bytes`
    > 0) and the plan's slab-scale working set (``slab_bytes`` — the
    gathered operand slabs of one execution) exceeds it, ab/abc plans
    lower ``tiled`` instead: the fused pipeline with its slab-scale
    buffers spilled to mmap and the product phase streamed through a
    budget-sized RAM window.  Explicit ``"staged"``/``"fused"``/
    ``"tiled"`` requests pass through unchanged.
    """
    fusion = normalize_fusion(fusion)
    if fusion != "auto":
        return fusion
    if normalize_variant(variant) == "naive":
        return "staged"
    budget = effective_mem_budget_bytes()
    if budget and slab_bytes > budget:
        return "tiled"
    return "fused" if staged_elements > effective_fused_auto_threshold() else "staged"


def normalize_backend(backend) -> str:
    """Validate the ``backend`` leaf-kernel knob against the live registry.

    ``None`` means the reference interpreter (the numpy task-graph leaf).
    Unknown names raise listing every registered backend; explicitly
    requesting a registered backend whose optional dependency is missing
    raises naming the dependency — a silent fallback would misreport what
    executed.  Like catalog lookups, the registry import is deferred so
    spec stays import-light.
    """
    if backend is None:
        return "reference"
    from repro import kernels

    names = kernels.backend_names()
    if not isinstance(backend, str) or backend.lower() not in names:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {list(names)}"
        )
    name = backend.lower()
    missing = kernels.get_backend(name).missing()
    if missing:
        raise ValueError(
            f"backend {name!r} requires the optional dependency "
            f"{missing!r}, which is not installed"
        )
    return name


def normalize_tune(tune) -> str:
    """Validate the ``tune`` knob of the auto-dispatch path.

    ``"off"`` never touches the wisdom store (pure model dispatch);
    ``"readonly"`` consults persisted wisdom and falls back to the model;
    ``"on"`` additionally runs a budgeted tuning pass on a wisdom miss.
    Anything else raises here, at spec-normalization time.
    """
    if not isinstance(tune, str) or tune.lower() not in TUNE_MODES:
        raise ValueError(
            f"tune must be one of {TUNE_MODES}, got {tune!r}"
        )
    return tune.lower()


def resolve_levels(algorithm, levels: int = 1) -> MultiLevelFMM:
    """Normalize an algorithm spec into a :class:`MultiLevelFMM`.

    Accepts every form of the grammar above; ``levels`` replicates a
    single-atom spec homogeneously and is ignored for explicit stacks.
    """
    from repro.algorithms.catalog import get_algorithm

    if isinstance(algorithm, MultiLevelFMM):
        return algorithm
    return MultiLevelFMM(
        [get_algorithm(a) for a in normalize_spec(algorithm, levels)]
    )


def _atom_key(atom):
    """Canonical hashable key for one per-level atom.

    Named shapes and shape tuples that denote the same catalog entry map to
    the same key (``"<2,3,2>"``, ``"2,3,2"`` and ``(2, 3, 2)`` coincide).
    Ad-hoc :class:`FMMAlgorithm` objects are keyed by identity; the plan
    cache holds a strong reference to the algorithm for the lifetime of the
    entry, so an id cannot be recycled while its key is live.
    """
    if isinstance(atom, FMMAlgorithm):
        return ("obj", id(atom))
    if _is_shape(atom):
        return ("shape", tuple(int(x) for x in atom))
    if isinstance(atom, str):
        low = atom.strip().lower()
        stripped = low.strip("<>").replace(" ", "")
        parts = stripped.split(",")
        if len(parts) == 3 and all(p.lstrip("-").isdigit() for p in parts):
            return ("shape", tuple(int(p) for p in parts))
        from repro.algorithms.catalog import NAMED_ALGORITHMS

        named = NAMED_ALGORITHMS.get(low)
        if isinstance(named, tuple):
            # Aliases for catalog shapes ("smirnov333") coincide with their
            # "<3,3,3>" spelling, so plan-cache keys and schedule
            # signatures agree across spellings.
            return ("shape", named)
        return ("name", low)
    raise TypeError(f"cannot key atom {atom!r}")


def spec_key(algorithm, levels: int = 1) -> tuple:
    """Hashable cache key for a spec: the tuple of per-level atom keys."""
    if isinstance(algorithm, MultiLevelFMM):
        return tuple(("obj", id(a)) for a in algorithm.levels)
    return tuple(_atom_key(a) for a in normalize_spec(algorithm, levels))


def _atom_label(atom) -> str:
    """Canonical display token for one per-level atom."""
    kind, val = _atom_key(atom)
    if kind == "shape":
        return "<%d,%d,%d>" % val
    if kind == "name":
        return val
    # Ad-hoc FMMAlgorithm objects: readable, though not round-trippable.
    return atom.name or f"<{atom.m},{atom.k},{atom.n}>:{atom.rank}"


@dataclass(frozen=True, eq=False)
class Schedule:
    """A first-class multi-level algorithm schedule.

    The heterogeneous per-level list of catalog atoms that one compiled
    plan applies, outermost level first — e.g. ``[<3,3,3>, <2,2,2>,
    <2,2,2>]`` instead of "one algorithm x ``levels``".  Schedules are
    what the plan compiler keys on, what selection candidates carry, and
    what the wisdom store serializes (via :attr:`signature`).

    Parameters
    ----------
    atoms:
        Per-level atoms in any form :func:`normalize_spec` accepts inside
        a stack (catalog names, ``(m, k, n)`` shape tuples, or
        :class:`FMMAlgorithm` objects).

    Examples
    --------
    >>> Schedule.from_spec("strassen@2,<3,3,3>@1").signature
    'strassen@2,<3,3,3>@1'
    >>> len(Schedule.from_spec("strassen", levels=3))
    3
    """

    atoms: tuple

    def __post_init__(self) -> None:
        atoms = tuple(self.atoms)
        if not atoms:
            raise ValueError("a schedule needs at least one level")
        for a in atoms:
            if not (_is_shape(a) or isinstance(a, _ATOM_TYPES)):
                raise TypeError(f"cannot interpret per-level atom {a!r}")
        object.__setattr__(self, "atoms", atoms)

    @classmethod
    def from_spec(cls, algorithm, levels: int = 1) -> "Schedule":
        """Parse any accepted spec form (see :func:`normalize_spec`)."""
        if isinstance(algorithm, cls):
            return algorithm
        return cls(normalize_spec(algorithm, levels))

    # ------------------------------------------------------------------ #
    @property
    def levels(self) -> int:
        """Number of recursion levels (one atom per level)."""
        return len(self.atoms)

    @property
    def signature(self) -> str:
        """Canonical run-length-encoded string, e.g. ``"strassen@2,<3,3,3>@1"``.

        Equal consecutive atoms collapse into one ``atom@count`` token;
        the result re-parses to an equal schedule for catalog atoms
        (:class:`FMMAlgorithm` object atoms render their name, which may
        not round-trip).
        """
        runs: list[tuple[str, int]] = []
        for atom in self.atoms:
            label = _atom_label(atom)
            if runs and runs[-1][0] == label:
                runs[-1] = (label, runs[-1][1] + 1)
            else:
                runs.append((label, 1))
        return ",".join(f"{label}@{count}" for label, count in runs)

    @property
    def key(self) -> tuple:
        """The plan-cache key component for this schedule (see :func:`spec_key`)."""
        return tuple(_atom_key(a) for a in self.atoms)

    # ------------------------------------------------------------------ #
    def resolve(self) -> MultiLevelFMM:
        """Materialize as a :class:`MultiLevelFMM` via catalog lookup."""
        return resolve_levels(self.atoms)

    def dims_total(self) -> tuple[int, int, int]:
        """Total partition dims ``(M~_L, K~_L, N~_L)`` of the schedule."""
        return self.resolve().dims_total

    def rank_total(self) -> int:
        """Total product count ``R_L = prod_l R_l`` of the schedule."""
        return self.resolve().rank_total

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self):
        return iter(self.atoms)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"Schedule({self.signature!r})"


def normalize_schedule(algorithm, levels: int = 1) -> Schedule:
    """Normalize any accepted spec form into a :class:`Schedule`."""
    return Schedule.from_spec(algorithm, levels)


def schedule_signature(algorithm, levels: int = 1) -> str:
    """Canonical schedule string for any accepted spec form.

    ``schedule_signature("strassen", 2) == "strassen@2"``; equivalent
    spellings of the same catalog stack produce the same signature.
    """
    return Schedule.from_spec(algorithm, levels).signature
