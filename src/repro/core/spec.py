"""Algorithm-spec normalization: the single parser for every spec form.

Every layer that accepts an "algorithm" argument — :func:`repro.multiply`,
the plan compiler (:mod:`repro.core.compile`), and the CLI — routes it
through :func:`normalize_spec`, so the accepted grammar is defined exactly
once:

====================================  =========================================
spec form                             meaning
====================================  =========================================
``FMMAlgorithm``                      that algorithm, replicated ``levels`` x
``"strassen"`` / ``"winograd"`` /     named catalog entry, replicated
``"classical"``                       ``levels`` x
``"<m,k,n>"`` or ``"m,k,n"``          catalog shape, replicated ``levels`` x
``(m, k, n)`` (all ints)              catalog shape, replicated ``levels`` x
``"a+b+..."``                         hybrid stack, one atom per level
                                      (``levels`` is ignored)
``[a, b, ...]`` / non-int tuple       hybrid stack, one atom per level
                                      (``levels`` is ignored)
``MultiLevelFMM``                     passed through unchanged
====================================  =========================================

:func:`normalize_spec` returns the flat per-level atom tuple;
:func:`resolve_levels` materializes it as a :class:`MultiLevelFMM`;
:func:`spec_key` derives the hashable cache key the plan cache is keyed on;
:func:`normalize_threads` validates the ``threads`` execution knob and
:func:`normalize_tune` the autotuning-wisdom knob, so bad values fail
here, up front, rather than deep inside the runtime.
"""

from __future__ import annotations

import numbers

from repro.core.fmm import FMMAlgorithm
from repro.core.kronecker import MultiLevelFMM

__all__ = [
    "TUNE_MODES",
    "normalize_spec",
    "normalize_threads",
    "normalize_tune",
    "resolve_levels",
    "spec_key",
]

#: Accepted values of the ``tune`` knob on the auto-dispatch path.
TUNE_MODES = ("off", "readonly", "on")

#: Atom forms accepted inside a hybrid stack.
_ATOM_TYPES = (str, FMMAlgorithm)


def _is_shape(spec) -> bool:
    """True for a ``(m, k, n)`` tuple of plain integers."""
    return (
        isinstance(spec, tuple)
        and len(spec) == 3
        and all(isinstance(x, numbers.Integral) for x in spec)
    )


def normalize_spec(algorithm, levels: int = 1) -> tuple:
    """Flatten any accepted spec form into the per-level atom tuple.

    Atoms are left unresolved (names, shape tuples, or
    :class:`FMMAlgorithm` objects); catalog lookup happens in
    :func:`resolve_levels`.  Raises ``TypeError`` for unrecognized forms
    and ``ValueError`` for ``levels < 1`` or an empty stack.
    """
    if isinstance(algorithm, MultiLevelFMM):
        return algorithm.levels
    if isinstance(algorithm, str) and "+" in algorithm:
        atoms = tuple(s.strip() for s in algorithm.split("+") if s.strip())
        if not atoms:
            raise ValueError(f"empty hybrid spec {algorithm!r}")
        return atoms
    if _is_shape(algorithm) or isinstance(algorithm, _ATOM_TYPES):
        if levels < 1:
            raise ValueError("levels must be >= 1")
        return (algorithm,) * int(levels)
    if isinstance(algorithm, (list, tuple)):
        atoms = tuple(algorithm)
        if not atoms:
            raise ValueError("empty algorithm stack")
        for a in atoms:
            if not (_is_shape(a) or isinstance(a, _ATOM_TYPES)):
                raise TypeError(f"cannot interpret per-level atom {a!r}")
        return atoms
    raise TypeError(f"cannot interpret algorithm spec {algorithm!r}")


def normalize_threads(threads) -> int | None:
    """Validate the ``threads`` knob of the execution API.

    Returns ``None`` unchanged (meaning "unspecified — resolve later", e.g.
    from the auto-dispatch machine model) and a positive int for explicit
    requests.  ``threads=0`` or a negative/non-integer count raises here,
    at spec-normalization time, with a message naming the knob — never
    deep inside the executor.
    """
    if threads is None:
        return None
    if isinstance(threads, bool) or not isinstance(threads, numbers.Integral):
        raise TypeError(f"threads must be a positive integer, got {threads!r}")
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    return int(threads)


def normalize_tune(tune) -> str:
    """Validate the ``tune`` knob of the auto-dispatch path.

    ``"off"`` never touches the wisdom store (pure model dispatch);
    ``"readonly"`` consults persisted wisdom and falls back to the model;
    ``"on"`` additionally runs a budgeted tuning pass on a wisdom miss.
    Anything else raises here, at spec-normalization time.
    """
    if not isinstance(tune, str) or tune.lower() not in TUNE_MODES:
        raise ValueError(
            f"tune must be one of {TUNE_MODES}, got {tune!r}"
        )
    return tune.lower()


def resolve_levels(algorithm, levels: int = 1) -> MultiLevelFMM:
    """Normalize an algorithm spec into a :class:`MultiLevelFMM`.

    Accepts every form of the grammar above; ``levels`` replicates a
    single-atom spec homogeneously and is ignored for explicit stacks.
    """
    from repro.algorithms.catalog import get_algorithm

    if isinstance(algorithm, MultiLevelFMM):
        return algorithm
    return MultiLevelFMM(
        [get_algorithm(a) for a in normalize_spec(algorithm, levels)]
    )


def _atom_key(atom):
    """Canonical hashable key for one per-level atom.

    Named shapes and shape tuples that denote the same catalog entry map to
    the same key (``"<2,3,2>"``, ``"2,3,2"`` and ``(2, 3, 2)`` coincide).
    Ad-hoc :class:`FMMAlgorithm` objects are keyed by identity; the plan
    cache holds a strong reference to the algorithm for the lifetime of the
    entry, so an id cannot be recycled while its key is live.
    """
    if isinstance(atom, FMMAlgorithm):
        return ("obj", id(atom))
    if _is_shape(atom):
        return ("shape", tuple(int(x) for x in atom))
    if isinstance(atom, str):
        low = atom.strip().lower()
        stripped = low.strip("<>").replace(" ", "")
        parts = stripped.split(",")
        if len(parts) == 3 and all(p.lstrip("-").isdigit() for p in parts):
            return ("shape", tuple(int(p) for p in parts))
        return ("name", low)
    raise TypeError(f"cannot key atom {atom!r}")


def spec_key(algorithm, levels: int = 1) -> tuple:
    """Hashable cache key for a spec: the tuple of per-level atom keys."""
    if isinstance(algorithm, MultiLevelFMM):
        return tuple(("obj", id(a)) for a in algorithm.levels)
    return tuple(_atom_key(a) for a in normalize_spec(algorithm, levels))
