"""Core representation of a fast matrix multiplication (FMM) algorithm.

The paper (§3.1) specifies a one-level FMM algorithm by its partition
dimensions ``<m~, k~, n~>`` and a coefficient triple ``[[U, V, W]]``.  This
module provides :class:`FMMAlgorithm`, the immutable value object used
throughout the package, with Brent-equation validation at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.search import brent

__all__ = ["FMMAlgorithm", "nnz"]


def nnz(X: np.ndarray, tol: float = 0.0) -> int:
    """Number of entries of ``X`` with magnitude strictly greater than ``tol``.

    The performance model (Fig. 5) prices additions and packing traffic by
    ``nnz`` of the (composed) coefficient matrices.
    """
    return int(np.count_nonzero(np.abs(np.asarray(X)) > tol))


@dataclass(frozen=True)
class FMMAlgorithm:
    """A ``<m, k, n>`` fast matrix multiplication algorithm ``[[U, V, W]]``.

    Attributes
    ----------
    m, k, n:
        Partition dimensions: A is split m x k, B is k x n, C is m x n.
    U, V, W:
        Coefficient matrices of shape ``(m*k, R)``, ``(k*n, R)``, ``(m*n, R)``.
        Row ordering of each matrix follows row-major block indexing of the
        corresponding operand (paper, eq. (3)).
    name:
        Human-readable identifier, e.g. ``"strassen"`` or ``"<2,3,4>:20"``.
    source:
        Provenance note (e.g. "paper eq.(4)", "als-search", "rotation of ...").
    """

    m: int
    k: int
    n: int
    U: np.ndarray
    V: np.ndarray
    W: np.ndarray
    name: str = ""
    source: str = ""
    _validated: bool = field(default=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        U = np.ascontiguousarray(np.asarray(self.U, dtype=np.float64))
        V = np.ascontiguousarray(np.asarray(self.V, dtype=np.float64))
        W = np.ascontiguousarray(np.asarray(self.W, dtype=np.float64))
        object.__setattr__(self, "U", U)
        object.__setattr__(self, "V", V)
        object.__setattr__(self, "W", W)
        brent._check_shapes(U, V, W, self.m, self.k, self.n)
        U.setflags(write=False)
        V.setflags(write=False)
        W.setflags(write=False)
        if not self.name:
            object.__setattr__(self, "name", f"<{self.m},{self.k},{self.n}>:{self.rank}")

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        """Number of submatrix multiplications R."""
        return int(self.U.shape[1])

    @property
    def dims(self) -> tuple[int, int, int]:
        return (self.m, self.k, self.n)

    @property
    def classical_multiplies(self) -> int:
        """``m*k*n`` — multiplications used by the classical algorithm."""
        return self.m * self.k * self.n

    @property
    def theoretical_speedup(self) -> float:
        """Speedup per recursive step, ``m*k*n / R`` (Fig. 2, 'Theory')."""
        return self.classical_multiplies / self.rank

    @property
    def exponent(self) -> float:
        """Asymptotic exponent ``omega_0 = 3 log(R) / log(m*k*n)``.

        For square-ish shapes this is the exponent obtained by recursing on
        this algorithm alone (e.g. Strassen: log2(7) ~ 2.807).
        """
        return 3.0 * np.log(self.rank) / np.log(self.classical_multiplies)

    def nnz_uvw(self) -> tuple[int, int, int]:
        """``(nnz(U), nnz(V), nnz(W))`` — drives the performance model."""
        return (nnz(self.U), nnz(self.V), nnz(self.W))

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def max_residual(self) -> float:
        """Maximum Brent-equation residual of the triple."""
        return brent.brent_max_residual(self.U, self.V, self.W, self.m, self.k, self.n)

    def is_valid(self, tol: float = 1e-10) -> bool:
        """True iff the triple satisfies the Brent equations within ``tol``."""
        return self.max_residual() <= tol

    def validate(self, tol: float = 1e-10) -> "FMMAlgorithm":
        """Return self, raising ``ValueError`` if the Brent check fails."""
        if self._validated:
            return self
        res = self.max_residual()
        if res > tol:
            raise ValueError(
                f"{self.name}: Brent residual {res:.3e} exceeds tolerance {tol:.1e}"
            )
        object.__setattr__(self, "_validated", True)
        return self

    # ------------------------------------------------------------------ #
    # Reference semantics
    # ------------------------------------------------------------------ #
    def apply_once(self, A: np.ndarray, B: np.ndarray, C: np.ndarray) -> np.ndarray:
        """One non-recursive application of the algorithm: ``C += A @ B``.

        Block sizes must divide evenly; multi-level and fringe handling live
        in :mod:`repro.core.executor`.  This method is the executable
        definition of eq. (3), used as the semantic oracle in tests; like
        every other execution path it is a thin interpreter of the
        (cached) compiled plan for this one-level algorithm.
        """
        m, k, n = self.dims
        if A.shape[0] % m or A.shape[1] % k or B.shape[1] % n:
            raise ValueError(
                f"operand shape {A.shape}x{B.shape} not divisible by <{m},{k},{n}>"
            )
        if A.shape[1] != B.shape[0] or C.shape != (A.shape[0], B.shape[1]):
            raise ValueError("inconsistent operand shapes")
        # Lazy imports: executor/compile sit above this module in the stack.
        from repro.core import compile as plancache
        from repro.core.executor import DirectEngine

        dt = np.result_type(A, B)
        if dt not in plancache.SUPPORTED_DTYPES:
            dt = np.dtype(np.float64)
        cplan = plancache.compile(
            (A.shape[0], A.shape[1], B.shape[1]), self, levels=1, dtype=dt
        )
        return DirectEngine().execute(cplan, A, B, C)

    def __str__(self) -> str:
        return (
            f"FMMAlgorithm(<{self.m},{self.k},{self.n}>, R={self.rank}, "
            f"name={self.name!r})"
        )
