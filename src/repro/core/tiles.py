"""Morton tile windows: out-of-core addressing for the tiled lowering.

The paper's recursive-block (Morton-like) operand storage (§3.3,
:mod:`repro.core.morton`) orders submatrix blocks so multi-level FMM
touches operands in locality-preserving order.  The out-of-core tiled
lowering (``fusion="tiled"``) leans on exactly that property: operands
may be ``np.memmap``-backed, slab-scale temporaries spill to mmap files,
and the runtime streams the product/scatter phase through a bounded RAM
window strip by strip — every access walking the Morton block order, so
the page working set stays as small as the window.

This module is the addressing layer of that path:

* :class:`TileMap` maps a Morton recursive-block index to its
  ``(rows, cols)`` slice window over the flat (row-major) operand — the
  same blocks :meth:`repro.core.compile.CompiledPlan.block_views`
  materializes, derived from the same
  :func:`repro.core.morton.recursive_to_rowmajor` permutation, so the
  two layers cannot disagree on which bytes a block covers.
* :func:`strip_bounds` splits a block's rows into the half-open tile
  strips the runtime streams the batched product matmul over.
* :func:`pick_tile_rows` / :func:`resolve_tile_rows` solve the strip
  height from the configured memory budget — the single resolution
  shared by the runtime's tiled workspace spec and the performance
  model's :func:`repro.model.perfmodel.predict_tile_window_bytes`, so
  the priced window and the allocated window are byte-identical.
"""

from __future__ import annotations

import math
from functools import cached_property, lru_cache

import numpy as np

from repro.core.morton import recursive_to_rowmajor
from repro.core.spec import effective_mem_budget_bytes, effective_tile_rows

__all__ = [
    "TileMap",
    "clamp_tile_rows",
    "pick_tile_rows",
    "resolve_tile_rows",
    "strip_bounds",
    "strip_split_is_exact",
]


class TileMap:
    """Morton recursive-block index → tile window over one flat operand.

    Parameters
    ----------
    shape:
        The (core) operand shape ``(rows, cols)`` the windows tile.
    grids:
        Per-level partition stack ``[(rows_l, cols_l), ...]``, outermost
        first — exactly the stack
        :meth:`repro.core.kronecker.MultiLevelFMM.grids` reports for the
        operand.

    The map is pure metadata: :meth:`window` returns the ``(row, col)``
    slice pair of one block, :meth:`view` / :meth:`views` apply windows
    to a concrete array (slicing the trailing two axes, so batched
    stacks and ``np.memmap`` operands work unchanged — a view of a
    memmap reads through the mapping lazily, which is the whole point).
    """

    def __init__(self, shape: tuple[int, int], grids) -> None:
        grids = [(int(r), int(c)) for r, c in grids]
        if not grids:
            raise ValueError("need at least one level of partitioning")
        rows = math.prod(r for r, _ in grids)
        cols = math.prod(c for _, c in grids)
        nr, nc = int(shape[0]), int(shape[1])
        if nr % rows or nc % cols:
            raise ValueError(
                f"shape {tuple(shape)} not divisible by block grid "
                f"{rows}x{cols}"
            )
        self.shape = (nr, nc)
        self.grids = tuple(grids)
        self.block_shape = (nr // rows, nc // cols)
        self.grid_shape = (rows, cols)

    @classmethod
    def for_operand(cls, ml, operand: str, shape: tuple[int, int]) -> "TileMap":
        """The tile map of operand ``'A'|'B'|'C'`` under schedule ``ml``."""
        return cls(shape, ml.grids(operand))

    @cached_property
    def _perm(self) -> np.ndarray:
        return recursive_to_rowmajor(list(self.grids))

    @property
    def n_blocks(self) -> int:
        return len(self._perm)

    def window(self, rec: int) -> tuple[slice, slice]:
        """The ``(rows, cols)`` slice window of Morton block ``rec``."""
        br, bc = self.block_shape
        i, j = divmod(int(self._perm[rec]), self.grid_shape[1])
        return (slice(i * br, (i + 1) * br), slice(j * bc, (j + 1) * bc))

    def windows(self) -> list[tuple[slice, slice]]:
        """All block windows, in Morton (recursive-block) order."""
        return [self.window(rec) for rec in range(self.n_blocks)]

    def view(self, X: np.ndarray, rec: int) -> np.ndarray:
        """The view of block ``rec`` in ``X`` (trailing-axes slicing)."""
        rs, cs = self.window(rec)
        return X[..., rs, cs]

    def views(self, X: np.ndarray) -> list[np.ndarray]:
        """Views of every block of ``X``, in Morton order.

        Identical (same order, same bytes) to
        ``CompiledPlan.block_views`` for the matching operand — asserted
        in ``tests/core/test_tiles.py``.
        """
        return [self.view(X, rec) for rec in range(self.n_blocks)]

    def __repr__(self) -> str:
        return (
            f"TileMap({self.shape[0]}x{self.shape[1]}, "
            f"grid={self.grid_shape[0]}x{self.grid_shape[1]}, "
            f"block={self.block_shape[0]}x{self.block_shape[1]})"
        )


def clamp_tile_rows(rows: int, tile_rows: int) -> int:
    """Clamp a strip height to the bitwise-safe range for ``rows``-row blocks.

    BLAS dispatches a single-row GEMM through a GEMV-style kernel whose
    k-accumulation order differs from the multi-row call, so a height-1
    strip breaks the tiled path's bitwise contract with the fused
    lowering (measured: every strip height >= 2 — including irregular
    tails — is bitwise-stable; height 1 never is).  Hence the floor here
    is 2, not 1, whenever the block has more than one row; and because
    :func:`strip_bounds` keeps tails >= 2 rows by donating a row from
    the preceding strip, an odd row count cannot be covered by strips of
    height exactly 2 — that one case is bumped to 3.  A one-row block is
    necessarily a single full-block strip, which is the unsplit (fused)
    matmul and therefore safe.
    """
    rows = int(rows)
    tr = max(1, int(tile_rows))
    if rows <= 1:
        return 1
    tr = min(tr, rows)
    tr = max(2, tr)
    if rows % 2 and tr == 2:
        tr = 3
    return tr


def strip_bounds(rows: int, tile_rows: int) -> list[tuple[int, int]]:
    """Half-open row strips ``[lo, hi)`` of height ``tile_rows`` over a block.

    The last strip may be shorter — but never one row high (see
    :func:`clamp_tile_rows`): when the natural tail would be a single
    row, the preceding strip donates one row so the final strips are
    ``(tile_rows - 1, 2)``.  All heights stay ``<= tile_rows``, so
    buffers sized for ``tile_rows`` strips always fit.
    ``tile_rows >= rows`` yields the single full-block strip — the
    degenerate case in which the tiled product matmul is literally the
    fused pipeline's.
    """
    rows = int(rows)
    tile_rows = clamp_tile_rows(rows, tile_rows)
    if rows <= tile_rows:
        return [(0, rows)]
    bounds: list[tuple[int, int]] = []
    lo = 0
    while lo < rows:
        hi = min(lo + tile_rows, rows)
        if rows - hi == 1:
            hi -= 1
        bounds.append((lo, hi))
        lo = hi
    return bounds


@lru_cache(maxsize=256)
def strip_split_is_exact(
    bm: int, bk: int, bn: int, tile_rows: int, dtype_str: str = "float64"
) -> bool:
    """Measured bitwise-safety of row-strip-splitting this block's matmul.

    Whether ``np.matmul`` over the strips of :func:`strip_bounds` (bm,
    tile_rows) reproduces the unsplit batched call bit-for-bit for a
    ``(bm, bk) @ (bk, bn)`` block.  This is BLAS-kernel territory — the
    PR-7 row-split tail-kernel caveat: changing a dgemm's row count can
    switch the library's blocking/accumulation kernel, and which shapes
    are affected is an implementation detail (measured here: 32^3 blocks
    are split-stable at every height, 27^3 blocks are unstable at most
    heights, height-1 strips are unstable everywhere).  So the tiled
    lowering does not guess: it probes the actual block shape once per
    process (deterministic fixed-seed operands, cached) and falls back
    to the single full strip — the unsplit fused call — when splitting
    would change bits.  The probe is batched (batch 2) to mirror the
    runtime's call exactly.
    """
    if int(tile_rows) >= int(bm):
        return True
    rng = np.random.default_rng(0xA5)
    dt = np.dtype(dtype_str)
    S = rng.standard_normal((2, bm, bk)).astype(dt)
    T = rng.standard_normal((2, bk, bn)).astype(dt)
    full = np.matmul(S, T)
    out = np.empty_like(full)
    for lo, hi in strip_bounds(bm, tile_rows):
        np.matmul(S[:, lo:hi, :], T, out=out[:, lo:hi, :])
    return bool(np.array_equal(out, full))


def pick_tile_rows(
    budget_bytes: int,
    bm: int,
    bn: int,
    n_slots: int,
    group: int,
    lead_elems: int = 1,
    itemsize: int = 8,
    has_scratch: bool = False,
) -> int:
    """Largest strip height whose RAM window fits ``budget_bytes``.

    The tiled lowering's RAM window is the per-slot group of ``M`` strip
    buffers — ``n_slots × group × lead × tile_rows × bn`` elements —
    plus, for plans with non-±1 scatter coefficients, one scratch strip
    per slot.  Everything slab-scale (operand slabs, ``S``/``T`` group
    buffers, ``Cacc``) lives in mmap-spilled storage and does not count.
    Clamped via :func:`clamp_tile_rows`: even a budget below the
    smallest bitwise-safe window still executes (with a window that
    overshoots the budget by the minimum safe amount).
    """
    per_row = n_slots * group * lead_elems * bn * itemsize
    if has_scratch:
        per_row += n_slots * lead_elems * bn * itemsize
    if per_row <= 0:
        return clamp_tile_rows(bm, bm)
    return clamp_tile_rows(bm, int(budget_bytes) // per_row)


def resolve_tile_rows(
    bm: int,
    bk: int,
    bn: int,
    n_slots: int,
    group: int,
    lead_elems: int = 1,
    itemsize: int = 8,
    has_scratch: bool = False,
) -> int:
    """The strip height one tiled execution uses, tunables applied.

    An explicit ``tile_rows`` tunable (wisdom or
    :func:`repro.core.spec.set_runtime_tunables`) wins, clamped to the
    block height; otherwise the height is solved from the effective
    memory budget via :func:`pick_tile_rows`; with neither configured
    the full block is one strip.  Any height that would actually split
    the block is then gated by :func:`strip_split_is_exact` — when
    splitting this block shape at this height would change bits (the
    PR-7 BLAS tail-kernel caveat), the resolution degrades to the full
    block as one strip, trading the smaller window for unconditional
    bitwise equality with the in-core pipelines.  This is the
    **single** resolution shared by the runtime and
    ``predict_tile_window_bytes`` — the priced window is the allocated
    window by construction.
    """
    explicit = effective_tile_rows()
    if explicit:
        tr = clamp_tile_rows(bm, explicit)
    else:
        budget = effective_mem_budget_bytes()
        if not budget:
            return clamp_tile_rows(bm, bm)
        tr = pick_tile_rows(
            budget, bm, bn, n_slots, group, lead_elems, itemsize, has_scratch
        )
    if tr < bm:
        dt = "float32" if int(itemsize) == 4 else "float64"
        if not strip_split_is_exact(bm, bk, bn, tr, dt):
            return clamp_tile_rows(bm, bm)
    return tr
