"""The plan compiler and cache: one compiled artifact for every execution path.

The paper's generator separates *building* an implementation (composing
coefficients, indexing partitions, planning the peel — §4.1's skeleton)
from *running* it.  :func:`compile` is that separation made explicit for
the runtime: it lowers ``(shape, algorithm, levels, variant, dtype)`` to a
:class:`CompiledPlan` — the :class:`~repro.core.plan.ExecutionPlan` IR plus
every per-call-invariant artifact the interpreters need:

* dtype-cast composed coefficient operators ``Ut``/``Vt``/``W`` for the
  vectorized direct path,
* per-operand block tables (recursive index -> grid position) so operand
  views are sliced without re-deriving the Morton permutation,
* the peel plan and per-step gather vectors.

Compiled plans are memoized in a bounded, thread-safe LRU cache keyed on
the canonical ``(m, k, n, spec_key, variant, fusion, dtype)`` tuple, so serving
many same-shape multiplies pays the lowering cost once —
``benchmarks/bench_plan_cache.py`` measures the effect.

``DirectEngine``, ``BlockedEngine``, ``FMMAlgorithm.apply_once`` and the
source emitter (:mod:`repro.core.codegen`) all consume this one object.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, namedtuple
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.kronecker import MultiLevelFMM
from repro.core.peeling import PeelPlan
from repro.core.plan import ExecutionPlan, build_plan
from repro.core.spec import (
    Schedule,
    normalize_fusion,
    normalize_variant,
    operand_slab_bytes,
    resolve_fusion,
    resolve_levels,
    spec_key,
    staged_slab_elements,
)
from repro.obs import trace as _trace
from repro.obs.logcfg import get_logger

_log = get_logger(__name__)

__all__ = [
    "CompiledPlan",
    "compile",
    "plan_cache_info",
    "plan_cache_clear",
    "set_plan_cache_maxsize",
    "SUPPORTED_DTYPES",
]

#: Dtypes the execution stack preserves end-to-end.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

CacheInfo = namedtuple("CacheInfo", "hits misses maxsize currsize")


def _catalog_atom(alg):
    """Shape atom when ``alg`` *is* the catalog entry for its dims, else ``alg``."""
    from repro.algorithms.catalog import get_entry

    try:
        cat = get_entry(*alg.dims).algorithm
    except KeyError:
        return alg
    if cat is alg or (
        np.array_equal(cat.U, alg.U)
        and np.array_equal(cat.V, alg.V)
        and np.array_equal(cat.W, alg.W)
    ):
        return alg.dims
    return alg


@dataclass(frozen=True, eq=False)
class CompiledPlan:
    """A cached, ready-to-interpret implementation of one multiply config.

    Wraps the :class:`~repro.core.plan.ExecutionPlan` IR with the
    precomputed artifacts that make interpretation allocation- and
    recomposition-free:

    Attributes
    ----------
    plan:
        The underlying IR (steps with gather vectors, peel plan, grids).
    dtype:
        Element type every intermediate is computed in (float32/float64).
    Ut, Vt:
        ``(R, prod m_l k_l)`` / ``(R, prod k_l n_l)`` transposed composed
        coefficients in ``dtype`` — applying them to the stacked operand
        blocks yields *all* operand sums ``S_r``/``T_r`` in one tensordot.
    W:
        ``(prod m_l n_l, R)`` composed C coefficients in ``dtype`` for the
        one-shot scatter of all products into the destination blocks.
    a_table, b_table, c_table:
        Recursive-block index -> ``(row, col)`` grid position per operand.
    """

    key: tuple
    plan: ExecutionPlan
    dtype: np.dtype
    #: Resolved runtime lowering mode: ``"staged"`` (materialize every
    #: gather/product/scatter slab), ``"fused"`` (stream each product
    #: through per-worker buffers) or ``"tiled"`` (the fused pipeline
    #: out-of-core: mmap-spilled slabs, strip-windowed product phase).
    #: ``fusion="auto"`` requests resolve at compile time via
    #: :func:`repro.core.spec.resolve_fusion`.
    fusion: str
    Ut: np.ndarray = field(repr=False)
    Vt: np.ndarray = field(repr=False)
    W: np.ndarray = field(repr=False)
    a_table: tuple[tuple[int, int], ...] = field(repr=False)
    b_table: tuple[tuple[int, int], ...] = field(repr=False)
    c_table: tuple[tuple[int, int], ...] = field(repr=False)

    # ------------------------------------------------------------------ #
    # Delegated IR accessors
    # ------------------------------------------------------------------ #
    @property
    def ml(self) -> MultiLevelFMM:
        return self.plan.ml

    @property
    def variant(self) -> str:
        return self.plan.variant

    @property
    def schedule(self) -> Schedule:
        """The per-level schedule this plan applies.

        One atom per recursion level, outermost first.  A level whose
        coefficients are exactly the catalog entry for its dims becomes a
        shape atom (so ``schedule.signature`` — e.g. ``"<3,3,3>@1,
        <2,2,2>@1"`` — re-parses to the same algorithms); an ad-hoc or
        non-catalog algorithm (Winograd, a hand-built triple) stays an
        :class:`~repro.core.fmm.FMMAlgorithm` atom rather than being
        misattributed to the catalog entry of the same shape.
        """
        return Schedule(tuple(_catalog_atom(a) for a in self.plan.ml.levels))

    @property
    def steps(self):
        return self.plan.steps

    @property
    def peel_plan(self) -> PeelPlan:
        return self.plan.peel_plan

    @property
    def dims_total(self) -> tuple[int, int, int]:
        return self.plan.dims_total

    @property
    def rank_total(self) -> int:
        return self.plan.rank_total

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.plan.m, self.plan.k, self.plan.n)

    @cached_property
    def has_nonunit_c_coeffs(self) -> bool:
        """True when any scatter coefficient is not ±1 (float-status
        entries): the grouped pipeline then checks out a scratch strip so
        its scatter-accumulate stays dtype-matched and allocation-free.
        The workspace model mirrors this flag off the composed ``W``."""
        return any(
            w != 1.0 and w != -1.0
            for s in self.plan.steps
            for _, w in s.c_terms
        )

    @cached_property
    def schedule_signature(self) -> str:
        """The :attr:`schedule`'s string signature (e.g. ``"<2,2,2>@2"``).

        Cached because the telemetry layer stamps it on every
        :class:`~repro.core.runtime.ExecutionReport`: building the
        signature walks the catalog per level, far too slow for the
        per-call hot path, while the cached string is a field read."""
        return self.schedule.signature

    # ------------------------------------------------------------------ #
    # View extraction (works for 2-D and batched ``(..., rows, cols)``)
    # ------------------------------------------------------------------ #
    def _table(self, operand: str) -> tuple[tuple[int, int], ...]:
        try:
            return {"A": self.a_table, "B": self.b_table, "C": self.c_table}[operand]
        except KeyError:
            raise ValueError(f"operand must be A, B or C, not {operand!r}") from None

    def block_views(self, X: np.ndarray, operand: str, br: int, bc: int):
        """Recursive-block-ordered views of a core slab ``X``.

        ``br``/``bc`` are the block sizes (rows, cols); slicing applies to
        the trailing two axes, so batched stacks work unchanged.
        """
        return [
            X[..., r * br : (r + 1) * br, c * bc : (c + 1) * bc]
            for r, c in self._table(operand)
        ]

    def __repr__(self) -> str:  # keep array payloads out of reprs
        m, k, n = self.shape
        return (
            f"CompiledPlan({m}x{k}x{n}, {self.ml.name}, "
            f"variant={self.variant!r}, dtype={self.dtype.name}, "
            f"R={self.rank_total})"
        )


# ---------------------------------------------------------------------- #
# The plan cache
# ---------------------------------------------------------------------- #
_lock = threading.Lock()
_cache: "OrderedDict[tuple, CompiledPlan]" = OrderedDict()
#: requested-``"auto"``-key -> ``(staged_elements, slab_bytes)`` resolution
#: inputs.  :func:`repro.core.spec.resolve_fusion` reads *live* tunables
#: (the fused-auto threshold and the memory budget), so an auto request
#: can never be linked to one canonical key permanently — a budget change
#: must re-route the same request to a different lowering.  Instead the
#: first compile remembers the key's resolution inputs and every later
#: lookup re-resolves against them (cheap arithmetic), deriving the
#: canonical resolved-fusion slot fresh; auto and its current explicit
#: twin still share one cache entry (no duplicate coefficient operators,
#: no halved LRU capacity).
_auto_inputs: dict[tuple, tuple[int, int]] = {}
_maxsize = 128
_hits = 0
_misses = 0


def compile(
    shape: tuple[int, int, int],
    algorithm="strassen",
    levels: int = 1,
    variant: str = "abc",
    dtype=np.float64,
    fusion: str = "auto",
) -> CompiledPlan:
    """Lower one multiply configuration to a cached :class:`CompiledPlan`.

    Parameters
    ----------
    shape : tuple of int
        Problem size ``(m, k, n)``.
    algorithm : spec
        Any form accepted by :func:`repro.core.spec.normalize_spec` —
        a catalog name, ``(m, k, n)`` shape, :class:`Schedule`, schedule
        string (``"strassen@2,<3,3,3>@1"``), hybrid list, or
        :class:`~repro.core.fmm.FMMAlgorithm` /
        :class:`~repro.core.kronecker.MultiLevelFMM` object.
    levels : int, optional
        Recursion depth for single-atom specs (explicit schedules and
        stacks fix their own depth).  Default 1.
    variant : {"abc", "ab", "naive"}, optional
        Operand-sum fusion variant (paper §4.2).
    dtype : dtype-like, optional
        float32 or float64; the compiled coefficient operators are cast so
        execution preserves the dtype end-to-end.  Default float64.
    fusion : {"auto", "staged", "fused", "tiled"}, optional
        Runtime lowering mode.  ``"staged"`` materializes the full
        gather/product/scatter slabs; ``"fused"`` streams each product
        through per-worker recycled buffers (O(workers) live product
        buffers instead of O(R)); ``"tiled"`` runs the fused pipeline
        out-of-core, spilling slab-scale buffers to mmap and streaming
        the product phase through a budget-sized RAM strip window.  The
        default ``"auto"`` resolves from the variant, the staged-slab
        footprint, and — when a memory budget is configured — the
        operand-slab bytes (:func:`repro.core.spec.resolve_fusion`).

    Returns
    -------
    CompiledPlan
        The ready-to-interpret plan.  Repeat calls with an equivalent
        configuration (same canonical schedule — ``"smirnov333"`` and
        ``"<3,3,3>"`` coincide) return the *same* object from the LRU
        cache (see :func:`plan_cache_info`).
    """
    global _hits, _misses
    m, k, n = (int(x) for x in shape)
    dt = np.dtype(dtype)
    if dt not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported dtype {dt}; execution supports "
            f"{[d.name for d in SUPPORTED_DTYPES]}"
        )
    variant = normalize_variant(variant)
    fusion = normalize_fusion(fusion)
    key = (m, k, n, spec_key(algorithm, levels), variant, fusion, dt.str)
    auto_key = key if fusion == "auto" else None
    if auto_key is not None:
        with _lock:
            inputs = _auto_inputs.get(auto_key)
        if inputs is not None:
            # Re-resolve against the live tunables on *every* lookup: a
            # changed budget/threshold must re-route the same auto request
            # to a different lowering, so the canonical slot is derived
            # fresh from the remembered inputs, never linked statically.
            key = key[:5] + (resolve_fusion(fusion, variant, *inputs),) + key[6:]
    with _lock:
        hit = _cache.get(key)
        if hit is not None:
            _cache.move_to_end(key)
            _hits += 1
        else:
            _misses += 1
    if hit is not None:
        _trace.instant("plan_cache.hit", "compile")
        return hit
    _trace.instant("plan_cache.miss", "compile")

    with _trace.span("plan.compile", "compile",
                     shape=f"{m}x{k}x{n}", variant=variant):
        # Resolve the lowering mode before the expensive lowering: the
        # canonical cache slot carries the *resolved* fusion mode, so auto
        # and its current explicit twin share one CompiledPlan — and an
        # auto request whose explicit twin is already cached never
        # rebuilds it.
        ml = resolve_levels(algorithm, levels)
        staged_elements = staged_slab_elements(m, k, n, ml)
        slab_bytes = operand_slab_bytes(m, k, n, ml, dt.itemsize)
        fusion_resolved = resolve_fusion(
            fusion, variant, staged_elements, slab_bytes,
        )
        key_resolved = key[:5] + (fusion_resolved,) + key[6:]
        if key_resolved != key:
            with _lock:
                _auto_inputs[auto_key] = (staged_elements, slab_bytes)
                existing = _cache.get(key_resolved)
                if existing is not None:
                    _cache.move_to_end(key_resolved)
                    return existing

        plan = build_plan(m, k, n, ml, variant)
        Ut = np.ascontiguousarray(ml.U.T, dtype=dt)
        Vt = np.ascontiguousarray(ml.V.T, dtype=dt)
        W = np.ascontiguousarray(ml.W, dtype=dt)
        for arr in (Ut, Vt, W):
            arr.setflags(write=False)
        compiled = CompiledPlan(
            key=key_resolved,  # canonical: downstream caches key on cplan.key
            plan=plan,
            dtype=dt,
            fusion=fusion_resolved,
            Ut=Ut, Vt=Vt, W=W,
            a_table=plan.block_table("A"),
            b_table=plan.block_table("B"),
            c_table=plan.block_table("C"),
        )
    _log.debug(
        "compiled plan %dx%dx%d %s variant=%s fusion=%s dtype=%s",
        m, k, n, ml.name, variant, fusion_resolved, dt.name,
    )
    with _lock:
        # A concurrent compile may have raced us; keep the first entry so
        # callers holding it keep hitting the same object.
        existing = _cache.get(key_resolved)
        if existing is None:
            _cache[key_resolved] = compiled
            existing = compiled
        if auto_key is not None:
            _auto_inputs[auto_key] = (staged_elements, slab_bytes)
        _shrink_locked()
    return existing


def _shrink_locked() -> None:
    """Evict LRU entries past ``_maxsize`` (caller holds ``_lock``).

    Remembered auto-resolution inputs stay valid across evictions (they
    describe the problem, not a cache entry); they are only bounded so a
    shape-churning workload cannot grow the dict without limit.
    """
    while len(_cache) > _maxsize:
        _cache.popitem(last=False)
    while len(_auto_inputs) > 4 * _maxsize:
        _auto_inputs.pop(next(iter(_auto_inputs)))


def plan_cache_info() -> CacheInfo:
    """``(hits, misses, maxsize, currsize)`` of the compiled-plan cache."""
    with _lock:
        return CacheInfo(_hits, _misses, _maxsize, len(_cache))


def plan_cache_clear() -> None:
    """Empty the cache and reset the hit/miss counters."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _auto_inputs.clear()
        _hits = 0
        _misses = 0


def set_plan_cache_maxsize(maxsize: int) -> None:
    """Resize the cache (evicting least-recently-used entries if needed)."""
    global _maxsize
    if maxsize < 1:
        raise ValueError("maxsize must be >= 1")
    with _lock:
        _maxsize = int(maxsize)
        _shrink_locked()
