"""Dynamic peeling for non-divisible problem sizes (paper §4.1, [16]).

An L-level ``<M~, K~, N~>`` FMM requires every operand dimension to be a
multiple of the total partition dims.  Dynamic peeling splits the problem
into a divisible *core* handled by FMM and up to three thin *fringe* GEMM
updates, requiring no extra workspace:

    C[:m', :n'] += A[:m', :k'] B[:k', :n']      (FMM core)
    C[:m', :n'] += A[:m', k':] B[k':, :n']      (k-fringe)
    C[:m', n':] += A[:m', :]   B[:,  n':]       (n-fringe)
    C[m':, :]   += A[m':, :]   B               (m-fringe)

Together the four updates tile ``C += A B`` exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PeelPlan", "FringeCall", "peel"]


@dataclass(frozen=True)
class FringeCall:
    """One fringe GEMM: ``C[c_rows, c_cols] += A[a_rows, a_cols] @ B[b_rows, b_cols]``."""

    a_rows: slice
    a_cols: slice
    b_rows: slice
    b_cols: slice
    c_rows: slice
    c_cols: slice
    #: shape of the fringe product (m, k, n) — used by cost accounting
    shape: tuple[int, int, int]


@dataclass(frozen=True)
class PeelPlan:
    """Core size plus the fringe calls for a ``(m, k, n)`` problem."""

    m: int
    k: int
    n: int
    core: tuple[int, int, int]  # (m', k', n'), possibly containing zeros
    fringes: tuple[FringeCall, ...]

    @property
    def has_core(self) -> bool:
        return all(d > 0 for d in self.core)

    @property
    def core_fraction(self) -> float:
        """Fraction of the 2mnk flops handled by the FMM core."""
        mc, kc, nc = self.core
        total = self.m * self.k * self.n
        return (mc * kc * nc) / total if total else 0.0


def peel(m: int, k: int, n: int, Mt: int, Kt: int, Nt: int) -> PeelPlan:
    """Build the dynamic-peeling plan for an ``(m, k, n)`` multiplication.

    ``Mt, Kt, Nt`` are the total partition dims ``M~_L, K~_L, N~_L`` of the
    multi-level algorithm.  The core is the largest divisible sub-problem;
    fringes are emitted only when non-empty.
    """
    if min(m, k, n) < 0 or min(Mt, Kt, Nt) < 1:
        raise ValueError(f"bad peel arguments {(m, k, n, Mt, Kt, Nt)}")
    mp = (m // Mt) * Mt
    kp = (k // Kt) * Kt
    np_ = (n // Nt) * Nt
    fringes: list[FringeCall] = []
    if mp and np_ and kp < k:
        fringes.append(
            FringeCall(
                a_rows=slice(0, mp), a_cols=slice(kp, k),
                b_rows=slice(kp, k), b_cols=slice(0, np_),
                c_rows=slice(0, mp), c_cols=slice(0, np_),
                shape=(mp, k - kp, np_),
            )
        )
    if mp and np_ < n:
        fringes.append(
            FringeCall(
                a_rows=slice(0, mp), a_cols=slice(0, k),
                b_rows=slice(0, k), b_cols=slice(np_, n),
                c_rows=slice(0, mp), c_cols=slice(np_, n),
                shape=(mp, k, n - np_),
            )
        )
    if mp < m:
        fringes.append(
            FringeCall(
                a_rows=slice(mp, m), a_cols=slice(0, k),
                b_rows=slice(0, k), b_cols=slice(0, n),
                c_rows=slice(mp, m), c_cols=slice(0, n),
                shape=(m - mp, k, n),
            )
        )
    return PeelPlan(m=m, k=k, n=n, core=(mp, kp, np_), fringes=tuple(fringes))
