"""Exact rank-preserving transforms on FMM algorithms.

The Fig.-2 family of the paper is generated from a handful of base triples
using the symmetries of the matrix multiplication tensor:

* :func:`rotate` — cyclic symmetry ``<m,k,n> -> <k,n,m>`` (rank preserved);
* :func:`transpose_dual` — transpose symmetry ``<m,k,n> -> <n,k,m>``;
* :func:`direct_sum_m` / :func:`direct_sum_k` / :func:`direct_sum_n` —
  block-splitting one operand dimension, ``R = R1 + R2``;
* :func:`kron_compose` — the paper's Kronecker composition (§3.4) flattened
  back to a single-level row-major triple.

Every constructor validates its output against the Brent equations, so a
bug in the index bookkeeping cannot silently corrupt the catalog.
"""

from __future__ import annotations

import numpy as np

from repro.core.fmm import FMMAlgorithm
from repro.core.morton import recursive_to_rowmajor

__all__ = [
    "transpose_rows",
    "rotate",
    "rotations",
    "transpose_dual",
    "all_orientations",
    "direct_sum_m",
    "direct_sum_k",
    "direct_sum_n",
    "kron_compose",
]


def transpose_rows(X: np.ndarray, r: int, c: int) -> np.ndarray:
    """Permute rows of ``X`` from an ``(r, c)`` row-major grid to ``(c, r)``.

    Row ``a*c + b`` of ``X`` becomes row ``b*r + a`` of the result; this is
    the row permutation induced by transposing the block grid an operand's
    coefficient rows are indexed by.
    """
    if X.shape[0] != r * c:
        raise ValueError(f"X has {X.shape[0]} rows, expected {r}*{c}")
    Y = np.empty_like(X)
    for a in range(r):
        for b in range(c):
            Y[b * r + a] = X[a * c + b]
    return Y


def rotate(algo: FMMAlgorithm) -> FMMAlgorithm:
    """Cyclic rotation: a ``<m,k,n>`` algorithm yields ``<k,n,m>``.

    Derivation: the trilinear form ``t(A, B, Cbar) = trace(A B Cbar^T)`` is
    invariant under ``(A, B, Cbar) -> (B, Cbar^T, A^T)``; tracking the
    row-major block indices through the two transposes gives

        U' = V,   V' = transpose_rows(W, m, n),   W' = transpose_rows(U, m, k)
    """
    m, k, n = algo.dims
    out = FMMAlgorithm(
        m=k,
        k=n,
        n=m,
        U=algo.V,
        V=transpose_rows(algo.W, m, n),
        W=transpose_rows(algo.U, m, k),
        name=f"<{k},{n},{m}>:{algo.rank}",
        source=f"rotate({algo.name})",
    )
    return out.validate()


def rotations(algo: FMMAlgorithm) -> list[FMMAlgorithm]:
    """The three cyclic rotations ``[algo, rotate(algo), rotate^2(algo)]``."""
    r1 = rotate(algo)
    return [algo, r1, rotate(r1)]


def transpose_dual(algo: FMMAlgorithm) -> FMMAlgorithm:
    """Transpose symmetry: a ``<m,k,n>`` algorithm yields ``<n,k,m>``.

    Derivation: apply the original algorithm to ``C'^T = B'^T A'^T``; block
    (i1, i2) of ``B'^T`` is the transpose of block (i2, i1) of ``B'``, giving

        U' = transpose_rows(V, k, n),  V' = transpose_rows(U, m, k),
        W' = transpose_rows(W, m, n)
    """
    m, k, n = algo.dims
    out = FMMAlgorithm(
        m=n,
        k=k,
        n=m,
        U=transpose_rows(algo.V, k, n),
        V=transpose_rows(algo.U, m, k),
        W=transpose_rows(algo.W, m, n),
        name=f"<{n},{k},{m}>:{algo.rank}",
        source=f"transpose_dual({algo.name})",
    )
    return out.validate()


def all_orientations(algo: FMMAlgorithm) -> dict[tuple[int, int, int], FMMAlgorithm]:
    """All distinct ``<m,k,n>`` orientations reachable by rotation/transpose.

    For a base shape with distinct dimensions this covers all six
    permutations of ``(m, k, n)``; shapes with repeated dimensions collapse
    to fewer entries (first construction wins).
    """
    seen: dict[tuple[int, int, int], FMMAlgorithm] = {}
    for a in rotations(algo):
        seen.setdefault(a.dims, a)
    for a in rotations(transpose_dual(algo)):
        seen.setdefault(a.dims, a)
    return seen


# ---------------------------------------------------------------------- #
# Direct sums (block splitting along one dimension)
# ---------------------------------------------------------------------- #
def _stack_rows_split(
    X1: np.ndarray,
    X2: np.ndarray,
    outer1: int,
    outer2: int,
    inner: int,
    R1: int,
    R2: int,
    outer_major: bool,
) -> np.ndarray:
    """Interleave coefficient rows of two summands over a split grid.

    The combined operand grid has ``outer1 + outer2`` blocks along the split
    dimension and ``inner`` along the other.  ``outer_major`` says whether
    the split dimension is the row-major-major axis of the grid.
    """
    rows = (outer1 + outer2) * inner
    Y = np.zeros((rows, R1 + R2), dtype=X1.dtype)
    for a in range(outer1 + outer2):
        for b in range(inner):
            row = a * inner + b if outer_major else b * (outer1 + outer2) + a
            if a < outer1:
                src = a * inner + b if outer_major else b * outer1 + a
                Y[row, :R1] = X1[src]
            else:
                aa = a - outer1
                src = aa * inner + b if outer_major else b * outer2 + aa
                Y[row, R1:] = X2[src]
    return Y


def direct_sum_n(a1: FMMAlgorithm, a2: FMMAlgorithm) -> FMMAlgorithm:
    """``<m,k,n1> (+) <m,k,n2> -> <m,k,n1+n2>`` with rank ``R1+R2``.

    The columns of B and C are split: A is shared (``U' = [U1 | U2]``) while
    V and W rows are routed to the summand owning each column block.
    """
    if (a1.m, a1.k) != (a2.m, a2.k):
        raise ValueError(f"n-sum needs matching m,k: {a1.dims} vs {a2.dims}")
    m, k = a1.m, a1.k
    n1, n2 = a1.n, a2.n
    R1, R2 = a1.rank, a2.rank
    U = np.concatenate([a1.U, a2.U], axis=1)
    V = _stack_rows_split(a1.V, a2.V, n1, n2, k, R1, R2, outer_major=False)
    W = _stack_rows_split(a1.W, a2.W, n1, n2, m, R1, R2, outer_major=False)
    out = FMMAlgorithm(
        m=m, k=k, n=n1 + n2, U=U, V=V, W=W,
        name=f"<{m},{k},{n1 + n2}>:{R1 + R2}",
        source=f"direct_sum_n({a1.name}, {a2.name})",
    )
    return out.validate()


def direct_sum_m(a1: FMMAlgorithm, a2: FMMAlgorithm) -> FMMAlgorithm:
    """``<m1,k,n> (+) <m2,k,n> -> <m1+m2,k,n>`` with rank ``R1+R2``.

    The rows of A and C are split: B is shared (``V' = [V1 | V2]``).
    """
    if (a1.k, a1.n) != (a2.k, a2.n):
        raise ValueError(f"m-sum needs matching k,n: {a1.dims} vs {a2.dims}")
    k, n = a1.k, a1.n
    m1, m2 = a1.m, a2.m
    R1, R2 = a1.rank, a2.rank
    V = np.concatenate([a1.V, a2.V], axis=1)
    U = _stack_rows_split(a1.U, a2.U, m1, m2, k, R1, R2, outer_major=True)
    W = _stack_rows_split(a1.W, a2.W, m1, m2, n, R1, R2, outer_major=True)
    out = FMMAlgorithm(
        m=m1 + m2, k=k, n=n, U=U, V=V, W=W,
        name=f"<{m1 + m2},{k},{n}>:{R1 + R2}",
        source=f"direct_sum_m({a1.name}, {a2.name})",
    )
    return out.validate()


def direct_sum_k(a1: FMMAlgorithm, a2: FMMAlgorithm) -> FMMAlgorithm:
    """``<m,k1,n> (+) <m,k2,n> -> <m,k1+k2,n>`` with rank ``R1+R2``.

    The inner dimension is split: ``C = A_left B_top + A_right B_bottom``,
    so C is shared (``W' = [W1 | W2]``).
    """
    if (a1.m, a1.n) != (a2.m, a2.n):
        raise ValueError(f"k-sum needs matching m,n: {a1.dims} vs {a2.dims}")
    m, n = a1.m, a1.n
    k1, k2 = a1.k, a2.k
    R1, R2 = a1.rank, a2.rank
    W = np.concatenate([a1.W, a2.W], axis=1)
    U = _stack_rows_split(a1.U, a2.U, k1, k2, m, R1, R2, outer_major=False)
    V = _stack_rows_split(a1.V, a2.V, k1, k2, n, R1, R2, outer_major=True)
    out = FMMAlgorithm(
        m=m, k=k1 + k2, n=n, U=U, V=V, W=W,
        name=f"<{m},{k1 + k2},{n}>:{R1 + R2}",
        source=f"direct_sum_k({a1.name}, {a2.name})",
    )
    return out.validate()


# ---------------------------------------------------------------------- #
# Kronecker composition, flattened to one level
# ---------------------------------------------------------------------- #
def kron_compose(outer: FMMAlgorithm, inner: FMMAlgorithm) -> FMMAlgorithm:
    """Compose two algorithms into one ``<m1*m2, k1*k2, n1*n2>`` triple.

    The paper represents the two-level algorithm by the Kronecker products
    ``U1 (x) U2`` etc., valid with *recursive-block* operand indexing
    (§3.4).  This function additionally permutes the rows back to flat
    row-major indexing so the result is a self-contained one-level
    :class:`FMMAlgorithm` usable anywhere a base triple is.
    """
    m1, k1, n1 = outer.dims
    m2, k2, n2 = inner.dims
    R = outer.rank * inner.rank

    def flat(Xk: np.ndarray, g1: tuple[int, int], g2: tuple[int, int]) -> np.ndarray:
        perm = recursive_to_rowmajor([g1, g2])
        Y = np.empty_like(Xk)
        Y[perm] = Xk
        return Y

    U = flat(np.kron(outer.U, inner.U), (m1, k1), (m2, k2))
    V = flat(np.kron(outer.V, inner.V), (k1, n1), (k2, n2))
    W = flat(np.kron(outer.W, inner.W), (m1, n1), (m2, n2))
    out = FMMAlgorithm(
        m=m1 * m2, k=k1 * k2, n=n1 * n2, U=U, V=V, W=W,
        name=f"<{m1 * m2},{k1 * k2},{n1 * n2}>:{R}",
        source=f"kron_compose({outer.name}, {inner.name})",
    )
    return out.validate()
