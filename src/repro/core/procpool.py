"""Persistent worker-process pools for the GIL-free sharded runtime.

The task-graph runtime's thread pools (:func:`repro.core.runtime.get_pool`)
serialize every non-BLAS task body on the GIL.  This module provides the
process twin: a :class:`ProcessPool` keeps ``workers`` long-lived Python
processes alive across calls, each one attached to the shared-memory
segments of :class:`repro.core.workspace.SharedMemoryArena` and holding a
cache of broadcast :class:`~repro.core.compile.CompiledPlan` objects, so a
steady-state multiply ships only **(task-id, slot-range) descriptors** per
phase — no operand pickling, no per-call process spin-up.

The pool protocol mirrors the thread-pool trio exactly
(:func:`get_process_pool` / :func:`process_pool_info` /
:func:`shutdown_process_pools`), and both pool kinds register atexit
teardown on first use.  Fork safety: ``os.register_at_fork`` clears the
child's inherited registries (a forked child must never message worker
processes it does not own — the pre-PR-7 leak), and the start method is
selectable (``fork`` where available, else ``spawn``; override with the
``REPRO_START_METHOD`` environment variable or the ``start_method``
argument), so the same pool code runs under both CI smoke modes.

Worker loop contract (one duplex pipe per worker, strictly ordered):

``("plan", cplan)``
    Cache a broadcast compiled plan by its key (bounded LRU; no reply).
``("bind", desc)``
    Attach the descriptor's shared segment, rebuild the operand/workspace
    views, construct the same runtime binding the thread path uses, and
    reply ``("ok",)`` — the parent's bind barrier guarantees every worker
    (including the ones that zero a shared ``Cacc``) is bound before any
    task runs.
``("run", tasks)``
    Execute a list of ``(kind, lo, hi, slot)`` descriptors through the
    bound binding; reply ``("ok",)`` or ``("err", traceback)``.  When the
    bind descriptor carried ``trace=True`` the worker wraps each task in
    a :mod:`repro.obs.trace` span and replies ``("ok", spans)`` — the
    parent merges the drained records into its own timeline, so a Chrome
    trace shows worker tasks under their real pid.
``("unbind",)`` / ``("ping",)`` / ``("exit",)``
    Drop the binding / health-check (replies worker pid) / leave the loop.

Because workers run the *same* binding classes over bit-identical operand
copies, a process execution is bitwise-equal to the thread execution at
the same worker count (and staged lowerings to serial as well).
"""

from __future__ import annotations

import atexit
import os
import threading
import traceback
from collections import OrderedDict

from repro.obs.logcfg import get_logger

_log = get_logger(__name__)

__all__ = [
    "DEFAULT_START_METHOD",
    "ProcessPool",
    "default_start_method",
    "get_process_pool",
    "process_pool_info",
    "shutdown_process_pools",
]

#: Plans each worker keeps attached (compiled plans are ~tens of KB).
_WORKER_PLAN_CACHE = 32


def default_start_method() -> str:
    """The start method pools use when none is requested.

    ``REPRO_START_METHOD`` overrides; otherwise ``fork`` where the
    platform offers it (cheap, inherits the imported interpreter) and
    ``spawn`` elsewhere.
    """
    import multiprocessing as mp

    env = os.environ.get("REPRO_START_METHOD", "").strip().lower()
    methods = mp.get_all_start_methods()
    if env:
        if env not in methods:
            raise ValueError(
                f"REPRO_START_METHOD={env!r} is not available here; "
                f"expected one of {methods}"
            )
        return env
    return "fork" if "fork" in methods else "spawn"


#: Documented alias of the no-override resolution (telemetry, docs).
DEFAULT_START_METHOD = "fork"


# ---------------------------------------------------------------------- #
# Worker side
# ---------------------------------------------------------------------- #
def _attach_segment(cache: dict, name: str):
    """Attach (and cache) one shared-memory segment by name.

    Workers are ``multiprocessing`` children, so their attach registers
    with the *parent's* resource-tracker process (the fd is inherited /
    shipped by spawn) — a set, so the re-registration is a no-op and the
    parent's unlink unregisters cleanly exactly once.  No worker-side
    unregister: that would strip the parent's registration and break the
    tracker's crash-leak safety net.
    """
    shm = cache.get(name)
    if shm is not None:
        return shm
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    cache[name] = shm
    return shm


def _build_binding(cplan, desc, shm):
    """Reconstruct the thread path's binding from a bind descriptor."""
    import numpy as np

    from repro.core import runtime as rt
    from repro.core.workspace import Workspace

    arrays = {
        name: np.ndarray(shape, dtype=np.dtype(dt), buffer=shm.buf,
                         offset=off)
        for name, (off, shape, dt) in desc["layout"].items()
    }
    Ac = arrays.pop("Ac")
    Bc = arrays.pop("Bc")
    Cc = arrays.pop("Cc")
    ws = Workspace(key=("shm", desc["segment"]), buffers=arrays)
    bm, bk, bn = desc["bm"], desc["bk"], desc["bn"]
    if desc["mode"] == "staged":
        return rt._StagedBinding(cplan, Ac, Bc, Cc, bm, bk, bn, ws)
    if desc["mode"] == "tiled":
        # The tiled binding over shm-resident buffers: the strip schedule
        # (and therefore the bits) matches the thread path exactly; only
        # the spill backing differs (workers can only share RAM pages).
        return rt._TiledBinding(
            cplan, Ac, Bc, Cc, bm, bk, bn, ws,
            desc["n_slots"], desc["group"], desc["tile_rows"],
        )
    return rt._GroupedFusedBinding(
        cplan, Ac, Bc, Cc, bm, bk, bn, ws,
        desc["n_slots"], desc["group"],
    )


def _worker_main(conn) -> None:  # pragma: no cover - runs in child processes
    """Blocking worker loop: strictly ordered ops over one duplex pipe."""
    from repro.core.runtime import Task
    from repro.obs import trace as obs_trace

    plans: OrderedDict = OrderedDict()
    segments: dict = {}
    binding = None
    tracing = False
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        try:
            if op == "plan":
                token, cplan = msg[1], msg[2]
                if token not in plans:
                    # Insertion-order FIFO, mirrored exactly by the
                    # parent's broadcast tracker: both sides insert the
                    # same tokens in the same order, so neither can
                    # think a plan is cached that the other evicted.
                    plans[token] = cplan
                    while len(plans) > _WORKER_PLAN_CACHE:
                        plans.popitem(last=False)
            elif op == "bind":
                desc = msg[1]
                tracing = bool(desc.get("trace"))
                if tracing and not obs_trace.is_enabled():
                    obs_trace.enable()
                shm = _attach_segment(segments, desc["segment"])
                binding = _build_binding(plans[desc["plan_key"]], desc, shm)
                conn.send(("ok",))
            elif op == "run":
                if tracing:
                    for t in msg[1]:
                        with obs_trace.span("task:" + t[0], "worker",
                                            lo=t[1], hi=t[2], slot=t[3]):
                            binding.run(Task(*t))
                    # Ship this run's spans back on the ack; the parent
                    # ingests them into the merged timeline.
                    conn.send(("ok", obs_trace.drain()))
                else:
                    for t in msg[1]:
                        binding.run(Task(*t))
                    conn.send(("ok",))
            elif op == "unbind":
                binding = None
            elif op == "ping":
                conn.send(("ok", os.getpid()))
            elif op == "exit":
                break
            else:
                conn.send(("err", f"unknown op {op!r}"))
        except Exception:
            try:
                conn.send(("err", traceback.format_exc()))
            except (OSError, BrokenPipeError):
                break
    for shm in segments.values():
        try:
            shm.close()
        except Exception:
            pass
    try:
        conn.close()
    except Exception:
        pass


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #
class ProcessPool:
    """``workers`` persistent worker processes behind one message protocol.

    One execution at a time drives the pool (the :meth:`session` lock —
    concurrent process-mode executions of different *worker counts* use
    different pools and proceed in parallel).  Transport failures mark
    the pool :attr:`broken`; :func:`get_process_pool` replaces broken
    pools transparently.
    """

    def __init__(self, workers: int, start_method: str | None = None):
        import multiprocessing as mp

        workers = int(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.start_method = (
            default_start_method() if start_method is None else start_method
        )
        ctx = mp.get_context(self.start_method)
        # Start the resource tracker *before* the workers exist.  The
        # tracker launches lazily on first shm registration; if workers
        # fork earlier, each child would boot a private tracker whose
        # shutdown unlinks still-live parent segments.  Starting it here
        # guarantees every worker (fork inherits the fd, spawn ships it)
        # shares the parent's tracker, so attach-side registrations are
        # set no-ops and the parent's unlink unregisters exactly once.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self.max_workers = workers
        self.broken = False
        self._lock = threading.RLock()
        self._conns = []
        self._procs = []
        self._plan_fifo: OrderedDict = OrderedDict()
        for i in range(workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child,),
                name=f"repro-pw{workers}-{i}", daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        _log.debug(
            "started process pool: %d workers (%s)",
            workers, self.start_method,
        )

    # ------------------------------------------------------------------ #
    def session(self):
        """Lock serializing one bind→run*→unbind window on this pool."""
        return self._lock

    def _fail(self, exc: BaseException):
        self.broken = True
        _log.warning(
            "process pool (%d workers, %s) lost a worker: %r",
            self.max_workers, self.start_method, exc,
        )
        raise RuntimeError(
            f"process pool ({self.max_workers} workers, "
            f"{self.start_method}) lost a worker: {exc!r}"
        ) from exc

    def _recv_acks(self, conns) -> list:
        """Barrier on one ack per connection; returns the ack payloads.

        An ack is ``("ok",)`` or ``("ok", extra)`` — the ``extra`` slot
        carries shipped-back trace spans on traced runs.  The returned
        list holds one payload (or ``None``) per acked connection.
        """
        errors = []
        extras = []
        for conn in conns:
            try:
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                self._fail(exc)
            if reply[0] == "err":
                errors.append(reply[1])
            else:
                extras.append(reply[1] if len(reply) > 1 else None)
        if errors:
            raise RuntimeError(
                "worker task failed:\n" + "\n".join(errors)
            )
        return extras

    def broadcast_plan(self, cplan) -> tuple:
        """Ship a compiled plan to every worker once; returns its token.

        The token pairs the plan-cache key with the object identity, so
        a re-compiled plan (same key, new object after a plan-cache
        eviction) re-broadcasts instead of aliasing a stale worker copy.
        The broadcast tracker applies the workers' exact FIFO-eviction
        discipline, so parent and workers always agree on what is cached.
        """
        token = (cplan.key, id(cplan))
        if token in self._plan_fifo:
            return token
        try:
            for conn in self._conns:
                conn.send(("plan", token, cplan))
        except (OSError, ValueError) as exc:
            self._fail(exc)
        self._plan_fifo[token] = None
        while len(self._plan_fifo) > _WORKER_PLAN_CACHE:
            self._plan_fifo.popitem(last=False)
        return token

    def bind(self, desc: dict) -> None:
        """Broadcast a bind descriptor; barrier on every worker's ack."""
        try:
            for conn in self._conns:
                conn.send(("bind", desc))
        except (OSError, ValueError) as exc:
            self._fail(exc)
        self._recv_acks(self._conns)

    def run_phase(self, assignments) -> list:
        """Run one phase: ``assignments[i]`` is worker ``i``'s task list.

        Sends every non-empty list, then barriers on the acks — exactly
        the thread path's drained ``pool.map``.  Returns the ack
        payloads (per-worker trace-span batches on traced runs).
        """
        active = []
        try:
            for conn, tasks in zip(self._conns, assignments):
                if tasks:
                    conn.send(("run", tasks))
                    active.append(conn)
        except (OSError, ValueError) as exc:
            self._fail(exc)
        return self._recv_acks(active)

    def unbind(self) -> None:
        try:
            for conn in self._conns:
                conn.send(("unbind",))
        except (OSError, ValueError) as exc:
            self._fail(exc)

    def ping(self) -> list[int]:
        """Round-trip every worker; returns their pids (health check)."""
        with self._lock:
            try:
                for conn in self._conns:
                    conn.send(("ping",))
            except (OSError, ValueError) as exc:
                self._fail(exc)
            pids = []
            for conn in self._conns:
                try:
                    pids.append(conn.recv()[1])
                except (EOFError, OSError) as exc:
                    self._fail(exc)
            return pids

    def alive(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())

    def shutdown(self, timeout: float = 5.0) -> None:
        """Ask every worker to exit; terminate stragglers."""
        self.broken = True
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass


# ---------------------------------------------------------------------- #
# Process-wide registry (the thread-pool trio's twin)
# ---------------------------------------------------------------------- #
_proc_lock = threading.Lock()
_proc_pools: dict[tuple[int, str], ProcessPool] = {}
_atexit_registered = False


def _register_atexit_locked() -> None:
    global _atexit_registered
    if not _atexit_registered:
        atexit.register(shutdown_process_pools)
        _atexit_registered = True


def get_process_pool(workers: int, start_method: str | None = None) -> ProcessPool:
    """The process-wide pool of ``workers`` worker processes.

    Pools persist for the life of the process, keyed by ``(workers,
    start_method)``; a pool that lost a worker is replaced on the next
    request.  Teardown is registered with ``atexit`` on first use.
    """
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    method = default_start_method() if start_method is None else start_method
    key = (workers, method)
    with _proc_lock:
        _register_atexit_locked()
        pool = _proc_pools.get(key)
        if pool is not None and not pool.broken:
            return pool
        stale = _proc_pools.pop(key, None)
    if stale is not None:
        stale.shutdown()
    pool = ProcessPool(workers, method)
    with _proc_lock:
        winner = _proc_pools.setdefault(key, pool)
    if winner is not pool:  # a concurrent create won the race
        pool.shutdown()
    return winner


def process_pool_info() -> dict[tuple[int, str], dict]:
    """``{(workers, start_method): {...}}`` for every live process pool.

    The per-pool dict carries ``workers`` (requested), ``alive`` (worker
    processes currently running) and ``start_method`` — the process twin
    of :func:`repro.core.runtime.pool_info`.
    """
    with _proc_lock:
        pools = dict(_proc_pools)
    return {
        key: {
            "workers": pool.max_workers,
            "alive": pool.alive(),
            "start_method": pool.start_method,
        }
        for key, pool in pools.items()
    }


def shutdown_process_pools() -> None:
    """Shut down and drop every pooled worker process."""
    with _proc_lock:
        pools = list(_proc_pools.values())
        _proc_pools.clear()
    for pool in pools:
        pool.shutdown()


def _reset_after_fork_in_child() -> None:  # pragma: no cover - fork hook
    """Forked children inherit the registry but not the workers.

    Clearing (without messaging) keeps a child from driving — or
    shutting down, via its own atexit — pools owned by the parent, which
    previously leaked process-pool state on interpreter exit in forked
    children.
    """
    global _atexit_registered
    _proc_pools.clear()
    _atexit_registered = False
    try:
        _proc_lock.release()
    except RuntimeError:
        pass


os.register_at_fork(after_in_child=_reset_after_fork_in_child)
