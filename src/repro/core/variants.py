"""The Naive / AB / ABC write-back variants as leaf kernels (paper §4.1).

All three variants compute the same products ``M_r`` (eq. 5); they differ
in where the linear combinations happen and what workspace they require:

* ``naive`` — classical implementation: explicit temporaries for the
  A-sum, the B-sum and the product ``M_r``; every temporary makes a DRAM
  round trip.  Structurally this is what the reference framework [1]
  does, and what the runtime's *staged* lowering materializes.
* ``ab`` — the A/B sums are fused into the packing of ``A~``/``B~`` (no
  A/B temporaries), but ``M_r`` is still materialized and then scattered
  into the destination submatrices of C.
* ``abc`` — additionally fuses the W-weighted C updates into the
  macro/micro-kernel: each computed block is added to every destination
  while cache-hot, so no ``M_r`` buffer exists at all.

Since the streaming-runtime refactor there is **no loop nest here**: the
iteration over products lives in the task graphs of
:mod:`repro.core.runtime`, and this module contributes only the
per-product *leaf kernel* for the simulated-BLIS substrate —
:class:`BlisProductLeaf` — which executes one
:class:`~repro.core.plan.ProductStep` through :func:`packed_gemm` with
the variant's fusion semantics and charges the operation counters the
performance model prices.  ``VARIANTS`` is re-exported from
:mod:`repro.core.spec`, the canonical home of variant validation.
"""

from __future__ import annotations

import numpy as np

from repro.blis.counters import OpCounters
from repro.blis.gemm import packed_gemm
from repro.blis.params import BlockingParams
from repro.core.spec import VARIANTS, normalize_variant

__all__ = ["VARIANTS", "BlisProductLeaf"]


def _scatter_temp(
    M: np.ndarray,
    targets,
    counters: OpCounters | None,
) -> None:
    """``C_p += w * M_r`` from an explicit temporary (naive / AB variants)."""
    size = float(M.size)
    for w, view in targets:
        if w == 1:
            view += M
        elif w == -1:
            view -= M
        else:
            view += w * M
    if counters is not None:
        # Each update reads M_r and C_p and writes C_p: 3 transfers/element.
        counters.temp_c_traffic += 3.0 * size * len(targets)
        counters.c_add_flops += 2.0 * size * len(targets)


def _explicit_sum(ops, out: np.ndarray, counters: OpCounters | None,
                  which: str) -> np.ndarray:
    """Naive-variant operand sum materialized into a recycled buffer."""
    out[...] = 0.0
    for c, view in ops:
        if c == 1:
            out += view
        elif c == -1:
            out -= view
        else:
            out += c * view
    if counters is not None:
        size = float(out.size)
        # Read every source once, write the temporary once.
        traffic = (len(ops) + 1.0) * size
        if which == "A":
            counters.temp_a_traffic += traffic
            counters.a_add_flops += 2.0 * max(len(ops) - 1, 0) * size
        else:
            counters.temp_b_traffic += traffic
            counters.b_add_flops += 2.0 * max(len(ops) - 1, 0) * size
    return out


class BlisProductLeaf:
    """Per-product leaf kernel for the simulated-BLIS substrate.

    Plugged into :func:`repro.core.runtime.execute_plan` by
    :class:`~repro.core.executor.BlockedEngine`: the runtime's fused task
    graph walks the products and calls :meth:`product` once per
    :class:`~repro.core.plan.ProductStep`, with the variant deciding how
    much of the linear algebra is fused into the packed five-loop GEMM.
    2-D only (``supports_batch`` is false — the runtime loops batch
    elements), and staged slab phases are meaningless for a packed
    kernel, so the runtime always lowers fused for this leaf.

    Counter updates are made concurrency-safe by fan-out: :meth:`begin`
    gives every worker slot a private :class:`OpCounters`, and
    :meth:`finish` folds them into the engine's shared counters in
    deterministic slot order.
    """

    supports_batch = False
    parallel_fringe = False  # fringe GEMMs charge the shared counters

    #: Per-variant recycled-buffer needs: abc fuses everything into the
    #: packed kernel (no buffers at all — the paper's "no M_r buffer"
    #: claim holds in the reported peak too), ab materializes only M_r,
    #: naive additionally stages the explicit A/B sums.
    _NEEDS = {"abc": (), "ab": ("M",), "naive": ("S", "T", "M")}

    def __init__(
        self,
        variant: str = "abc",
        params: BlockingParams | None = None,
        counters: OpCounters | None = None,
        mode: str = "slab",
    ) -> None:
        self.variant = normalize_variant(variant)
        self.params = params or BlockingParams()
        self.counters = counters
        self.mode = mode
        self._slot_counters: list[OpCounters] | None = None

    @property
    def needs_buffers(self) -> tuple[str, ...]:
        return self._NEEDS[self.variant]

    def begin(self, n_slots: int) -> None:
        if self.counters is not None:
            self._slot_counters = [OpCounters() for _ in range(n_slots)]

    def finish(self) -> None:
        if self.counters is not None and self._slot_counters:
            for c in self._slot_counters:
                self.counters += c
        self._slot_counters = None

    def product(self, step, Av, Bv, Ct, S, T, M, slot: int) -> None:
        """One ``M_r`` through the packed substrate in the leaf's variant."""
        counters = (
            None if self._slot_counters is None else self._slot_counters[slot]
        )
        a_ops = [(c, Av[i]) for i, c in step.a_terms]
        b_ops = [(c, Bv[i]) for i, c in step.b_terms]
        c_ops = [(c, Ct[i]) for i, c in step.c_terms]

        if self.variant == "abc":
            # Fully fused: sums inside packing, C updates inside the kernel.
            packed_gemm(a_ops, b_ops, c_ops, self.params, counters,
                        mode=self.mode)
            return

        if self.variant == "naive":
            # Explicit A/B sum temporaries (one DRAM round trip each).
            _explicit_sum(a_ops, S, counters, "A")
            _explicit_sum(b_ops, T, counters, "B")
            a_ops = [(1.0, S)]
            b_ops = [(1.0, T)]

        M[...] = 0.0
        packed_gemm(a_ops, b_ops, [(1.0, M)], self.params, counters,
                    mode=self.mode)
        _scatter_temp(M, c_ops, counters)

    def fringe(self, f, A, B, C) -> None:
        """Peel-fringe GEMM through the packed substrate (runs serially)."""
        packed_gemm(
            [(1.0, A[f.a_rows, f.a_cols])],
            [(1.0, B[f.b_rows, f.b_cols])],
            [(1.0, C[f.c_rows, f.c_cols])],
            self.params,
            self.counters,
            mode=self.mode,
        )
