"""The Naive / AB / ABC FMM implementation variants (paper §4.1).

All three compute the same products ``M_r`` (eq. 5); they differ in where
the linear combinations happen and what workspace they require:

* ``naive`` — classical implementation: explicit temporaries for the A-sum,
  the B-sum and the product ``M_r``; every temporary makes a DRAM round
  trip.  Structurally this is what the reference framework [1] does.
* ``ab`` — the A/B sums are fused into the packing of ``A~``/``B~`` (no
  A/B temporaries), but ``M_r`` is still materialized and then scattered
  into the destination submatrices of C.
* ``abc`` — additionally fuses the W-weighted C updates into the
  macro/micro-kernel: each computed block is added to every destination
  while cache-hot, so no ``M_r`` buffer exists at all.

The functions here execute one multi-level FMM *core* (divisible sizes)
over recursive-block views; peeling and fringe handling live in the
executor.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.blis.counters import OpCounters
from repro.blis.gemm import packed_gemm
from repro.blis.params import BlockingParams

__all__ = ["VARIANTS", "run_fmm_blocked"]

VARIANTS = ("naive", "ab", "abc")


def _step_operands(source):
    """Yield ``(a_ops, b_ops, c_ops)`` weighted-view builders per product.

    ``source`` is a compiled/execution plan (anything exposing ``steps`` of
    :class:`~repro.core.plan.ProductStep`) or, for backwards compatibility,
    a bare :class:`MultiLevelFMM` whose composed columns are walked
    directly.  Coefficients are python floats throughout so float32 views
    are never upcast by scalar promotion.
    """
    steps = getattr(source, "steps", None)
    if steps is not None:
        for s in steps:
            yield s.a_terms, s.b_terms, s.c_terms
    else:
        for ai, ac, bi, bc, ci, cc in source.columns:
            yield (
                tuple((int(i), float(c)) for i, c in zip(ai, ac)),
                tuple((int(i), float(c)) for i, c in zip(bi, bc)),
                tuple((int(i), float(c)) for i, c in zip(ci, cc)),
            )


def _scatter_temp(
    M: np.ndarray,
    targets,
    counters: OpCounters | None,
) -> None:
    """``C_p += w * M_r`` from an explicit temporary (naive / AB variants)."""
    size = float(M.size)
    for w, view in targets:
        if w == 1:
            view += M
        elif w == -1:
            view -= M
        else:
            view += w * M
    if counters is not None:
        # Each update reads M_r and C_p and writes C_p: 3 transfers/element.
        counters.temp_c_traffic += 3.0 * size * len(targets)
        counters.c_add_flops += 2.0 * size * len(targets)


def run_fmm_blocked(
    A_views: list[np.ndarray],
    B_views: list[np.ndarray],
    C_views: list[np.ndarray],
    plan,
    variant: str = "abc",
    params: BlockingParams = BlockingParams(),
    counters: OpCounters | None = None,
    pool: ThreadPoolExecutor | None = None,
    mode: str = "slab",
) -> None:
    """Execute the ``R_L`` products of eq. (5) in the chosen variant.

    ``plan`` is the compiled step source — an
    :class:`~repro.core.plan.ExecutionPlan` /
    :class:`~repro.core.compile.CompiledPlan` (or a bare
    :class:`MultiLevelFMM` for backwards compatibility).  The views lists
    must be in recursive-block order matching its composed coefficients
    (see :func:`repro.core.morton.block_views`).
    """
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
    sub_m, sub_k = A_views[0].shape
    sub_n = B_views[0].shape[1]
    work_dtype = np.result_type(A_views[0], B_views[0])

    for a_terms, b_terms, c_terms in _step_operands(plan):
        a_ops = [(c, A_views[i]) for i, c in a_terms]
        b_ops = [(c, B_views[i]) for i, c in b_terms]
        c_ops = [(c, C_views[i]) for i, c in c_terms]

        if variant == "abc":
            packed_gemm(a_ops, b_ops, c_ops, params, counters, mode=mode, pool=pool)
            continue

        if variant == "naive":
            # Explicit A/B sum temporaries (one DRAM round trip each).
            S = _explicit_sum(a_ops, (sub_m, sub_k), counters, "A", work_dtype)
            T = _explicit_sum(b_ops, (sub_k, sub_n), counters, "B", work_dtype)
            a_ops = [(1.0, S)]
            b_ops = [(1.0, T)]

        M = np.zeros((sub_m, sub_n), dtype=work_dtype)
        packed_gemm(a_ops, b_ops, [(1.0, M)], params, counters, mode=mode, pool=pool)
        _scatter_temp(M, c_ops, counters)


def _explicit_sum(
    ops, shape, counters: OpCounters | None, which: str, dtype=np.float64
) -> np.ndarray:
    out = np.zeros(shape, dtype=dtype)
    for c, view in ops:
        if c == 1:
            out += view
        elif c == -1:
            out -= view
        else:
            out += c * view
    if counters is not None:
        size = float(out.size)
        # Read every source once, write the temporary once.
        traffic = (len(ops) + 1.0) * size
        if which == "A":
            counters.temp_a_traffic += traffic
            counters.a_add_flops += 2.0 * max(len(ops) - 1, 0) * size
        else:
            counters.temp_b_traffic += traffic
            counters.b_add_flops += 2.0 * max(len(ops) - 1, 0) * size
    return out
