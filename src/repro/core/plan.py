"""Execution-plan IR: the generator's intermediate representation.

The paper's code generator has two stages (§4.1): build the skeleton
(composed coefficients, partition indexing, peeling) and emit the typical
operations (fused packing, specialized micro-kernel updates).  Our analog
lowers a (multi-level algorithm, variant) pair into a flat list of steps —
one :class:`ProductStep` per ``M_r`` plus fringe GEMMs.

Since the compiled-plan refactor this IR is the *single* execution
artifact: :func:`repro.core.compile.compile` wraps it (with dtype-cast
coefficient matrices and an LRU cache) into a
:class:`~repro.core.compile.CompiledPlan`, and ``DirectEngine``,
``BlockedEngine``, ``FMMAlgorithm.apply_once`` and the code emitter
(:mod:`repro.core.codegen`) are all thin interpreters of that one object.
Every step therefore precomputes its gather indices and coefficients as
NumPy vectors, and the plan carries the per-level grid metadata (block
tables) the engines need, so nothing is re-derived per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property, lru_cache

import numpy as np

from repro.core.kronecker import MultiLevelFMM
from repro.core.morton import recursive_to_rowmajor
from repro.core.peeling import PeelPlan, peel

__all__ = ["ProductStep", "ExecutionPlan", "build_plan", "grid_table"]


def _gather_arrays(terms):
    """Split ``((index, coeff), ...)`` into read-only index/coeff vectors."""
    idx = np.array([i for i, _ in terms], dtype=np.intp)
    coef = np.array([c for _, c in terms], dtype=np.float64)
    idx.setflags(write=False)
    coef.setflags(write=False)
    return idx, coef


@dataclass(frozen=True)
class ProductStep:
    """One product ``M_r`` of eq. (5) with its sparse operand lists.

    ``a_terms``/``b_terms`` hold ``(block_index, coefficient)`` pairs over
    recursive-block operand indices; ``c_terms`` are the W-weighted
    destinations.  The variant dictates whether the sums are fused into
    packing (ab/abc) and whether the update is fused into the kernel (abc).

    The paired ``*_idx``/``*_coef`` properties expose the same data as
    NumPy gather vectors (``intp`` indices, ``float64`` coefficients),
    computed once per step and cached, for array-level consumers (sparse
    or offloaded backends, analysis tools).  The loop interpreters walk
    the plain-tuple forms instead: python-float coefficients keep float32
    operands from being upcast by NEP-50 scalar promotion.
    """

    r: int
    a_terms: tuple[tuple[int, float], ...]
    b_terms: tuple[tuple[int, float], ...]
    c_terms: tuple[tuple[int, float], ...]

    @cached_property
    def _a_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return _gather_arrays(self.a_terms)

    @cached_property
    def _b_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return _gather_arrays(self.b_terms)

    @cached_property
    def _c_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return _gather_arrays(self.c_terms)

    @property
    def a_idx(self) -> np.ndarray:
        return self._a_arrays[0]

    @property
    def a_coef(self) -> np.ndarray:
        return self._a_arrays[1]

    @property
    def b_idx(self) -> np.ndarray:
        return self._b_arrays[0]

    @property
    def b_coef(self) -> np.ndarray:
        return self._b_arrays[1]

    @property
    def c_idx(self) -> np.ndarray:
        return self._c_arrays[0]

    @property
    def c_coef(self) -> np.ndarray:
        return self._c_arrays[1]


@lru_cache(maxsize=512)
def grid_table(grids: tuple[tuple[int, int], ...]) -> tuple[tuple[int, int], ...]:
    """``(row, col)`` block-grid position for each recursive block index.

    ``grids`` is the per-level ``(rows, cols)`` partition stack of one
    operand; the result maps recursive (Morton-like) index -> position in
    the flat ``prod(rows) x prod(cols)`` block grid.  Cached globally: the
    recursive permutation is pure metadata shared by every plan with the
    same partition stack.
    """
    perm = recursive_to_rowmajor(list(grids))
    tot_cols = int(np.prod([c for _, c in grids]))
    return tuple(divmod(int(p), tot_cols) for p in perm)


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything needed to execute/emit one generated implementation.

    Beyond the step list, the plan exposes the per-level grid metadata of
    each operand (:meth:`grids`) and the derived block tables
    (:meth:`block_table`) that interpreters use to slice operands into
    recursive-block views without consulting :mod:`repro.core.morton`
    per call.
    """

    ml: MultiLevelFMM
    variant: str
    m: int
    k: int
    n: int
    peel_plan: PeelPlan
    steps: tuple[ProductStep, ...] = field(default_factory=tuple)

    @property
    def rank_total(self) -> int:
        return len(self.steps)

    @property
    def dims_total(self) -> tuple[int, int, int]:
        """Total partition dims ``(M~_L, K~_L, N~_L)``."""
        return self.ml.dims_total

    def grids(self, operand: str) -> tuple[tuple[int, int], ...]:
        """Per-level partition grid stack for operand ``'A'|'B'|'C'``."""
        return tuple(self.ml.grids(operand))

    def block_table(self, operand: str) -> tuple[tuple[int, int], ...]:
        """Recursive-index -> ``(row, col)`` grid position for one operand."""
        return grid_table(self.grids(operand))

    def operation_counts(self) -> dict[str, int]:
        """Totals used in generator reports: products, adds per operand."""
        a_adds = sum(max(len(s.a_terms) - 1, 0) for s in self.steps)
        b_adds = sum(max(len(s.b_terms) - 1, 0) for s in self.steps)
        c_updates = sum(len(s.c_terms) for s in self.steps)
        return {
            "products": len(self.steps),
            "a_additions": a_adds,
            "b_additions": b_adds,
            "c_updates": c_updates,
            "fringe_gemms": len(self.peel_plan.fringes),
        }


def build_plan(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM,
    variant: str = "abc",
) -> ExecutionPlan:
    """Lower a (shape, algorithm, variant) triple to the step list."""
    from repro.core.spec import normalize_variant

    variant = normalize_variant(variant)
    Mt, Kt, Nt = ml.dims_total
    steps = []
    for r, (ai, ac, bi, bc, ci, cc) in enumerate(ml.columns):
        steps.append(
            ProductStep(
                r=r,
                a_terms=tuple((int(i), float(c)) for i, c in zip(ai, ac)),
                b_terms=tuple((int(i), float(c)) for i, c in zip(bi, bc)),
                c_terms=tuple((int(i), float(c)) for i, c in zip(ci, cc)),
            )
        )
    return ExecutionPlan(
        ml=ml,
        variant=variant,
        m=m, k=k, n=n,
        peel_plan=peel(m, k, n, Mt, Kt, Nt),
        steps=tuple(steps),
    )
